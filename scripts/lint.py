#!/usr/bin/env python3
"""Project lint gate: repo-specific rules the compiler cannot enforce.

Registered as the `lint_gate` ctest target (label `static_analysis`); exits
non-zero with one `path:line: [rule] message` per violation.

Rules
-----
naked-new        No naked `new` / `delete` outside allocator code. Allocator
                 files (device arena, C-API boundary, tensor buffer) are
                 allowlisted; `static` leaky singletons and allocations
                 immediately wrapped in a smart pointer on the same line are
                 allowed anywhere.
endl             No `std::endl` outside the logging sink: it flushes the
                 stream, which is poison on hot paths; use '\\n'.
header-guard     Header guards must be INDBML_<PATH>_H_ derived from the
                 repo-relative path (src/exec/vector.h ->
                 INDBML_EXEC_VECTOR_H_).
raw-thread       No direct std::thread construction outside
                 common/thread_pool.{h,cc}: all engine concurrency goes
                 through ThreadPool so WaitIdle/shutdown semantics hold.
test-status      Test code must not discard a Status/Result returned by
                 engine/op/table calls (`engine.Execute(...)` as a bare
                 statement); assert on it or consume it explicitly.
boxed-hot-path   No per-row Value boxing (`GetValue(` / `SetValue(`) inside
                 inference hot-path kernels (src/modeljoin/, src/nn/, the
                 C-API operator): batches cross the columnar→matrix boundary
                 through the typed gather kernels in exec/gather.h, not one
                 heap-free tagged-union Value per cell.
"""

import re
import sys
from pathlib import Path

# --- naked-new rule configuration -----------------------------------------

# Files whose job is allocation / ownership across an ABI boundary.
NAKED_NEW_ALLOWED_FILES = {
    "src/device/device.cc",      # device memory arena
    "src/mlruntime/trt_c_api.cc",  # C API: caller-owned opaque handles
    "src/nn/tensor.h",           # owning tensor buffer
}

NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new T`, `new T[...]` (not placement)
DELETE_RE = re.compile(r"\bdelete(\[\])?\s")
SMART_WRAP_RE = re.compile(r"(unique_ptr|shared_ptr)\s*<[^;]*>?\s*\(\s*new\b|make_")

# --- test-status rule configuration ----------------------------------------

# Status/Result-returning methods on the objects the rule names. A bare-
# statement call to one of these in a test silently swallows the error.
STATUS_METHODS = {
    "ExecuteQuery", "ExecutePlan", "PlanQuery", "Explain", "ExplainAnalyze",
    "AppendRow", "CreateTable", "DropTable", "Open", "Next",
}
TEST_CALL_RE = re.compile(r"^\s*(engine|op|table)(\.|->)(\w+)\(.*\);\s*$")

GUARD_RE = re.compile(r"^#ifndef\s+(\w+)\s*$")

# --- boxed-hot-path rule configuration --------------------------------------

# Inference hot paths: every batch crossing storage→model here must use the
# typed gather kernels (exec/gather.h). UDF boxing (src/integration/udf.cc)
# is deliberately NOT listed: per-value boxing is the UDF experiment's
# measured tax (paper Table 2).
BOXED_HOT_PATHS = ("src/modeljoin/", "src/nn/", "src/integration/capi_operator.cc")
# Files under the hot paths allowed to box (none today; add `rel` paths with
# a justification if a cold diagnostic path genuinely needs Value).
BOXED_ALLOWED_FILES: set = set()
BOXED_RE = re.compile(r"\b(Get|Set)Value\s*\(")


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string/char literals."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    return line.split("//", 1)[0]


def iter_code_lines(path: Path):
    in_block_comment = False
    for lineno, raw in enumerate(path.read_text(errors="replace").splitlines(), 1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        # Drop /* ... */ sections (single pass is enough for this codebase).
        while "/*" in line:
            start = line.find("/*")
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
        yield lineno, strip_comments_and_strings(line)


def check_naked_new(rel: str, path: Path, errors):
    if rel in NAKED_NEW_ALLOWED_FILES:
        return
    for lineno, line in iter_code_lines(path):
        if "static" in line or SMART_WRAP_RE.search(line):
            continue
        if NEW_RE.search(line):
            errors.append(f"{rel}:{lineno}: [naked-new] naked `new` outside "
                          "allocator code; use std::vector / make_unique")
        if DELETE_RE.search(line):
            errors.append(f"{rel}:{lineno}: [naked-new] naked `delete` outside "
                          "allocator code; let an owner manage the lifetime")


def check_endl(rel: str, path: Path, errors):
    if rel == "src/common/logging.cc":  # the sink flushes deliberately
        return
    for lineno, line in iter_code_lines(path):
        if "std::endl" in line:
            errors.append(f"{rel}:{lineno}: [endl] std::endl flushes the "
                          "stream; write '\\n' instead")


def check_header_guard(rel: str, path: Path, errors):
    expected = "INDBML_" + re.sub(r"[/.]", "_",
                                  rel[len("src/"):]).upper().rstrip("_") + "_"
    for _, line in ((n, l) for n, l in iter_code_lines(path)):
        m = GUARD_RE.match(line)
        if not m:
            continue
        if m.group(1) != expected:
            errors.append(f"{rel}:1: [header-guard] guard {m.group(1)} should "
                          f"be {expected}")
        return
    errors.append(f"{rel}:1: [header-guard] missing #ifndef include guard "
                  f"({expected})")


def check_raw_thread(rel: str, path: Path, errors):
    if rel in ("src/common/thread_pool.h", "src/common/thread_pool.cc"):
        return
    for lineno, line in iter_code_lines(path):
        if re.search(r"\bstd::thread\b", line):
            errors.append(f"{rel}:{lineno}: [raw-thread] direct std::thread "
                          "use outside thread_pool; submit to a ThreadPool")


def check_boxed_hot_path(rel: str, path: Path, errors):
    if not rel.startswith(BOXED_HOT_PATHS) or rel in BOXED_ALLOWED_FILES:
        return
    for lineno, line in iter_code_lines(path):
        if BOXED_RE.search(line):
            errors.append(f"{rel}:{lineno}: [boxed-hot-path] per-row Value "
                          "boxing in an inference hot path; gather through "
                          "exec/gather.h instead")


def check_test_status(rel: str, path: Path, errors):
    for lineno, line in iter_code_lines(path):
        m = TEST_CALL_RE.match(line)
        if m and m.group(3) in STATUS_METHODS:
            errors.append(f"{rel}:{lineno}: [test-status] discarded Status "
                          f"from {m.group(1)}{m.group(2)}{m.group(3)}(); "
                          "ASSERT on it or consume the result")


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    errors = []

    src_files = sorted((root / "src").rglob("*.cc")) + \
        sorted((root / "src").rglob("*.h"))
    for path in src_files:
        rel = path.relative_to(root).as_posix()
        check_naked_new(rel, path, errors)
        check_endl(rel, path, errors)
        check_raw_thread(rel, path, errors)
        check_boxed_hot_path(rel, path, errors)
        if path.suffix == ".h":
            check_header_guard(rel, path, errors)

    for sub in ("tests", "bench", "examples"):
        d = root / sub
        if not d.is_dir():
            continue
        for path in sorted(d.rglob("*.cc")) + sorted(d.rglob("*.h")):
            rel = path.relative_to(root).as_posix()
            check_endl(rel, path, errors)
            check_test_status(rel, path, errors)

    if errors:
        print("\n".join(errors))
        print(f"\nlint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint: OK ({len(src_files)} src files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
