#!/usr/bin/env python3
"""Golden-fixture self-test for indbml-analyze.

Each directory under tests/analysis_fixtures/ is analysed as its own mini
repo-root with the pass it names (suppression/ and baseline/ use `endl`).
Expected findings are `// ^find` (this line) and `// ^find@N` (line N of
this file) markers; the exact (file, line) multiset must match, so both
missed findings and false positives fail. The baseline fixture also
exercises driver exit codes, --update-baseline round-tripping, and --json.

Run as: python3 scripts/analysis/selftest.py [repo-root]
"""

from __future__ import annotations

import contextlib
import io
import json
import re
import sys
import tempfile
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from analysis import driver  # noqa: E402
from analysis.passes import pass_names  # noqa: E402

MARKER_RE = re.compile(r"\^find(?:@(\d+))?")
# Fixtures that exercise the framework rather than a specific pass; both
# use endl as the triggering pass.
FRAMEWORK_FIXTURES = {"suppression": "endl", "baseline": "endl"}


def expected_findings(fixture_root: Path) -> list:
    expected = []
    for path in sorted(fixture_root.rglob("*")):
        if path.suffix not in (".cc", ".h") or not path.is_file():
            continue
        rel = path.relative_to(fixture_root).as_posix()
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            for m in MARKER_RE.finditer(raw):
                expected.append((rel, int(m.group(1)) if m.group(1) else lineno))
    return sorted(expected)


def check_fixture(fixture_root: Path, pass_name: str) -> list:
    """Returns a list of error strings (empty = fixture passes)."""
    findings = driver.run(fixture_root, {pass_name})
    got = Counter((f.rel, f.line) for f in findings)
    want = Counter(expected_findings(fixture_root))
    errors = []
    for (rel, line), n in sorted((want - got).items()):
        errors.append(f"missed expected finding at {rel}:{line} (x{n})")
    for (rel, line), n in sorted((got - want).items()):
        errors.append(f"false positive at {rel}:{line} (x{n})")
    return errors


def run_driver(argv: list) -> tuple:
    """driver.main with captured stdout/stderr -> (exit, stdout)."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = driver.main(argv)
    return code, out.getvalue()


def check_baseline_fixture(fixture_root: Path) -> list:
    errors = []
    root = str(fixture_root)

    # Committed fixture baseline absorbs 2 of 3 findings: gate fails with 1.
    code, out = run_driver([root, "--passes", "endl"])
    if code != 1:
        errors.append(f"baselined run: expected exit 1, got {code}")
    if out.count("[endl]") != 1:
        errors.append(f"baselined run: expected 1 new finding, got:\n{out}")

    # Without the baseline all 3 findings gate.
    code, out = run_driver([root, "--passes", "endl", "--no-baseline"])
    if code != 1 or out.count("[endl]") != 3:
        errors.append(f"--no-baseline run: expected exit 1 with 3 findings, "
                      f"got exit {code}:\n{out}")

    # --update-baseline round-trips: rewrite to a temp file, rerun clean.
    with tempfile.TemporaryDirectory() as tmp:
        tmp_baseline = str(Path(tmp) / "baseline.txt")
        code, _ = run_driver([root, "--passes", "endl",
                              "--update-baseline", "--baseline", tmp_baseline])
        if code != 0:
            errors.append(f"--update-baseline: expected exit 0, got {code}")
        code, out = run_driver([root, "--passes", "endl",
                                "--baseline", tmp_baseline])
        if code != 0:
            errors.append(f"run against regenerated baseline: expected exit "
                          f"0, got {code}:\n{out}")

    # --json emits machine-readable findings with the documented fields.
    code, out = run_driver([root, "--passes", "endl", "--no-baseline", "--json"])
    try:
        payload = json.loads(out)
    except json.JSONDecodeError as e:
        payload = None
        errors.append(f"--json output is not valid JSON: {e}")
    if payload is not None:
        if len(payload) != 3:
            errors.append(f"--json: expected 3 findings, got {len(payload)}")
        for item in payload:
            if set(item) != {"path", "line", "pass", "message"}:
                errors.append(f"--json: unexpected fields in {item}")
    return errors


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    repo_root = Path(args[0]).resolve() if args else Path(
        __file__).resolve().parent.parent.parent
    fixtures = repo_root / "tests" / "analysis_fixtures"
    if not fixtures.is_dir():
        print(f"analysis selftest: no fixture directory at {fixtures}",
              file=sys.stderr)
        return 2

    known = set(pass_names())
    failures = 0
    ran = 0
    for fixture in sorted(p for p in fixtures.iterdir() if p.is_dir()):
        name = fixture.name
        pass_name = FRAMEWORK_FIXTURES.get(name, name)
        if pass_name not in known:
            print(f"FAIL {name}: no pass named '{pass_name}'")
            failures += 1
            continue
        # The baseline fixture's contract is driver exit codes, not markers
        # (its findings are deliberately unmarked so the baseline absorbs
        # them); every other fixture is an exact marker match.
        if name == "baseline":
            errors = check_baseline_fixture(fixture)
        else:
            errors = check_fixture(fixture, pass_name)
        ran += 1
        if errors:
            failures += 1
            print(f"FAIL {name} ({pass_name}):")
            for e in errors:
                print(f"  - {e}")
        else:
            print(f"ok   {name} ({pass_name})")

    covered = {FRAMEWORK_FIXTURES.get(p.name, p.name)
               for p in fixtures.iterdir() if p.is_dir()}
    uncovered = known - covered
    if uncovered:
        failures += 1
        print(f"FAIL coverage: passes without fixtures: "
              f"{', '.join(sorted(uncovered))}")

    print(f"analysis selftest: {ran} fixtures, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
