"""Core types of the indbml-analyze framework: findings, passes, baseline."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class Finding:
    """One structured analysis finding."""

    rel: str  # repo-relative path
    line: int  # 1-based
    pass_name: str  # kebab-case pass name, e.g. "view-escape"
    message: str

    def format(self) -> str:
        return f"{self.rel}:{self.line}: [{self.pass_name}] {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.rel,
            "line": self.line,
            "pass": self.pass_name,
            "message": self.message,
        }

    def baseline_key(self) -> str:
        """Line-number-insensitive identity used by the baseline file, so
        grandfathered findings survive unrelated edits above them."""
        return "\t".join((self.rel, self.pass_name, self.message))


class Pass:
    """Base class for analysis passes.

    Subclasses set:
      - ``name``: kebab-case identifier; ``// NOLINT(indbml-<name>)``
        suppresses it.
      - ``roots``: top-level directories the pass runs over.
      - ``suffixes``: file suffixes the pass looks at.
    and implement ``check_file`` (per file) and/or ``finish`` (once, after
    all files — for project-wide analyses such as include graphs).
    """

    name = ""
    roots = ("src",)
    suffixes = (".cc", ".h")

    def wants(self, sf) -> bool:
        return sf.top_dir in self.roots and sf.path.suffix in self.suffixes

    def check_file(self, sf, ctx) -> list:
        return []

    def finish(self, ctx) -> list:
        return []


class AnalysisContext:
    """Shared state handed to every pass: the root and the full file set."""

    def __init__(self, root: Path):
        self.root = root
        self.files = []  # populated by the driver before passes run


def render_text(findings: list) -> str:
    return "\n".join(f.format() for f in findings)


def render_json(findings: list) -> str:
    return json.dumps([f.to_json() for f in findings], indent=2)


def load_baseline(path: Path) -> dict:
    """Baseline file → {key: count}. Missing file is an empty baseline."""
    counts: dict = {}
    if not path.is_file():
        return counts
    for line in path.read_text().splitlines():
        line = line.rstrip("\n")
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        counts[line] = counts.get(line, 0) + 1
    return counts


def apply_baseline(findings: list, baseline: dict) -> tuple:
    """Splits findings into (new, grandfathered) against the baseline.

    Each baseline entry absorbs at most `count` matching findings, so fixing
    one of N identical grandfathered findings cannot hide a new one.
    """
    remaining = dict(baseline)
    new, grandfathered = [], []
    for f in findings:
        key = f.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(f)
        else:
            new.append(f)
    return new, grandfathered


BASELINE_HEADER = """\
# indbml-analyze baseline: grandfathered findings, one key per line
# (path<TAB>pass<TAB>message). A finding matching a line here is reported
# as grandfathered instead of failing the gate; each line absorbs exactly
# one finding. Regenerate with: scripts/indbml-analyze --update-baseline.
# Policy: new code never adds entries; entries only disappear.
"""


def write_baseline(path: Path, findings: list) -> None:
    lines = sorted(f.baseline_key() for f in findings)
    path.write_text(BASELINE_HEADER + "".join(line + "\n" for line in lines))
