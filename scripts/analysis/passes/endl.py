"""endl: no `std::endl` outside the logging sink.

It flushes the stream, which is poison on hot paths; use '\\n'.
"""

from __future__ import annotations

from ..core import Finding, Pass

ALLOWED_FILES = {"src/common/logging.cc"}  # the sink flushes deliberately


class EndlPass(Pass):
    name = "endl"
    roots = ("src", "tests", "bench", "examples")

    def check_file(self, sf, ctx):
        if sf.rel in ALLOWED_FILES:
            return []
        findings = []
        for lineno, line in sf.iter_code():
            if "std::endl" in line:
                findings.append(
                    Finding(sf.rel, lineno, self.name,
                            "std::endl flushes the stream; write '\\n' instead"))
        return findings


PASS = EndlPass
