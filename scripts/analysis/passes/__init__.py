"""Pass registry: every analysis pass, in stable execution order."""

from __future__ import annotations

from . import (
    boxed_hot_path,
    endl,
    header_guard,
    ignored_error,
    include_layering,
    lock_scope,
    naked_new,
    raw_forward_pass,
    raw_intrinsics,
    raw_thread,
    test_status,
    view_escape,
)

_MODULES = (
    naked_new,
    endl,
    header_guard,
    raw_intrinsics,
    raw_thread,
    test_status,
    boxed_hot_path,
    view_escape,
    lock_scope,
    include_layering,
    raw_forward_pass,
    ignored_error,
)


def all_passes() -> list:
    """Fresh instances of every registered pass, in execution order."""
    return [m.PASS() for m in _MODULES]


def pass_names() -> list:
    return [m.PASS.name for m in _MODULES]
