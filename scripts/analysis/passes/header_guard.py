"""header-guard: guards must be INDBML_<PATH>_H_ from the repo-relative path.

src/exec/vector.h -> INDBML_EXEC_VECTOR_H_.
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

GUARD_RE = re.compile(r"^#ifndef\s+(\w+)\s*$")


def expected_guard(rel: str) -> str:
    stem = rel[len("src/"):] if rel.startswith("src/") else rel
    return "INDBML_" + re.sub(r"[/.]", "_", stem).upper().rstrip("_") + "_"


class HeaderGuardPass(Pass):
    name = "header-guard"
    roots = ("src",)
    suffixes = (".h",)

    def check_file(self, sf, ctx):
        expected = expected_guard(sf.rel)
        for lineno, line in sf.iter_code():
            m = GUARD_RE.match(line)
            if not m:
                continue
            if m.group(1) != expected:
                return [Finding(sf.rel, 1, self.name,
                                f"guard {m.group(1)} should be {expected}")]
            return []
        return [Finding(sf.rel, 1, self.name,
                        f"missing #ifndef include guard ({expected})")]


PASS = HeaderGuardPass
