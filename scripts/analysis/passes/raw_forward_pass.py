"""raw-forward-pass: forward-pass math lives only in src/inference/.

The InferenceRuntime refactor pulled the Dense/LSTM/GRU forward passes out
of the operators so every approach — native ModelJoin, the C-API operator,
mlruntime sessions — shares one implementation, and so cross-query
micro-batching and the result cache sit on the single choke point. A GEMM
issued directly from an operator reintroduces a private forward pass that
silently bypasses batching, the cache, and the inference metrics.

The training path (`src/nn/`) legitimately multiplies matrices, as do the
kernel layers themselves (`src/device/`, `src/common/`); everything above
them must go through `inference::InferenceRuntime::Run`.
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

# Layers that may issue matrix multiplies directly: the shared runtime, the
# device/kernel layers it drives, and the nn training/reference code.
ALLOWED_DIRS = {"inference", "nn", "device", "common"}

# Direct GEMM spellings: the host BLAS entry points and the device method.
GEMM_RE = re.compile(r"\bblas::Sgemm(?:Tight)?\s*\(|(?:->|\.)Gemm\s*\(")


class RawForwardPassPass(Pass):
    name = "raw-forward-pass"
    roots = ("src",)

    def check_file(self, sf, ctx):
        parts = sf.rel.split("/")
        if len(parts) < 3 or parts[0] != "src":
            return []
        if parts[1] in ALLOWED_DIRS:
            return []
        findings = []
        for lineno, line in sf.iter_code():
            if GEMM_RE.search(line):
                findings.append(
                    Finding(sf.rel, lineno, self.name,
                            "direct GEMM outside src/inference/; run the "
                            "forward pass through "
                            "inference::InferenceRuntime::Run so batching, "
                            "the result cache and the inference metrics "
                            "all see it"))
        return findings


PASS = RawForwardPassPass
