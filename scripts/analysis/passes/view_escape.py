"""view-escape: no returning raw pointers into function-local buffers.

The zero-copy substrate (PR 4) makes borrowed pointers pervasive:
`Vector::BaseFloats()`, `Buffer::data()`, `std::vector::data()`. Borrowing
is safe while the owner outlives the borrower — which is exactly what a
`return local.data();` breaks: the local (or by-value parameter) dies at
function exit and the caller receives a dangling pointer. Returning a
*Vector view* is fine (views hold a ref-counted BufferPtr); returning the
raw typed pointer is not.

Detection is scope-tracked, not regex-per-line: the pass walks brace depth,
records owning-type locals (and by-value owning parameters) per function
body, and flags `return x.data()`-shaped statements whose receiver is a
live local. Members are not tracked (returning a pointer into a member is
the accessor pattern, e.g. Vector::BaseFloats itself).
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

# Types that own their storage; a raw pointer into one dies with it.
OWNING_TYPE = (
    r"(?:std::(?:vector|array|deque|basic_string|string|ostringstream|"
    r"stringstream)\b(?:\s*<[^;={}]*>)?"
    r"|(?:exec::)?Vector\b"
    r"|(?:exec::)?DataChunk\b"
    r"|(?:storage::)?Column\b)"
)

# `std::vector<float> name` / `Vector name(...)` / `const std::string name =`
LOCAL_DECL_RE = re.compile(
    r"(?:^\s*|[;{(]\s*|\breturn\b\s+)(?:const\s+)?" + OWNING_TYPE +
    r"\s+(\w+)\s*(?:[;({=]|$)")

# Accessors that hand out a raw pointer into the receiver's storage.
BORROW_RE = re.compile(
    r"\breturn\s+(?:&\s*)?(\w+)\s*\.\s*"
    r"(data|c_str|floats|ints|bools|BaseFloats|BaseInts|BaseBools)\s*\(")
# `return &local[...]` / `return &local` — address of a local object.
ADDR_RE = re.compile(r"\breturn\s+&\s*(\w+)\s*(?:\[|;)")

# Classify the text before a `{`: function bodies end their header with `)`
# plus optional qualifiers; type/namespace bodies do not.
FUNC_HEADER_RE = re.compile(
    r"\)\s*(?:const|noexcept|override|final|mutable|->\s*[\w:<>,\s*&]+"
    r"|INDBML_\w+\s*(?:\([^)]*\))?)*\s*$")
TYPE_HEADER_RE = re.compile(r"\b(?:class|struct|union|enum)\b[^;=()]*$")
NAMESPACE_HEADER_RE = re.compile(r"\bnamespace\b[^;=()]*$")

# By-value owning parameters inside a function header's parameter list.
PARAM_RE = re.compile(r"(?:^|[(,])\s*(?:const\s+)?" + OWNING_TYPE + r"\s+(\w+)\s*(?=[,)=])")


class ViewEscapePass(Pass):
    name = "view-escape"
    roots = ("src",)

    def check_file(self, sf, ctx):
        findings = []
        # Stack of (kind, set-of-local-names-declared-at-this-depth); kind is
        # "func", "type", "ns" or "block".
        stack = []
        in_function = 0  # nesting count of "func" entries on the stack
        locals_live: dict = {}  # name -> depth it was declared at
        header = ""  # statement text accumulated since the last ; { }

        def enter(kind, names=()):
            nonlocal in_function
            stack.append((kind, set(names)))
            if kind == "func":
                in_function += 1
            for name in names:
                locals_live[name] = len(stack)

        def leave():
            nonlocal in_function
            if not stack:
                return
            kind, names = stack.pop()
            if kind == "func":
                in_function -= 1
            for name in names:
                locals_live.pop(name, None)

        for lineno, line in sf.iter_code():
            i = 0
            seg_start = 0
            while i < len(line):
                c = line[i]
                if c == "{":
                    header += " " + line[seg_start:i]
                    head = header.strip()
                    if FUNC_HEADER_RE.search(head):
                        params = PARAM_RE.findall(head) if in_function == 0 else []
                        enter("func", params)
                    elif NAMESPACE_HEADER_RE.search(head):
                        enter("ns")
                    elif TYPE_HEADER_RE.search(head) or head.endswith("="):
                        enter("type")  # aggregate init braces behave like type scope
                    else:
                        enter("block")
                    header = ""
                    seg_start = i + 1
                elif c == "}":
                    header = ""
                    seg_start = i + 1
                    leave()
                elif c == ";":
                    statement = header + " " + line[seg_start:i + 1]
                    self._check_statement(sf, lineno, statement, locals_live,
                                          in_function, findings)
                    if in_function > 0:
                        for m in LOCAL_DECL_RE.finditer(statement):
                            if "return" in statement[:m.start()].split("=")[0]:
                                continue
                            locals_live[m.group(1)] = len(stack)
                            stack[-1][1].add(m.group(1))
                    header = ""
                    seg_start = i + 1
                i += 1
            header += " " + line[seg_start:]
            # Declarations via constructor call `std::vector<float> v(n);`
            # end in ';' and are handled above; `Type v{n};` ends the brace
            # branch — accept the (rare) miss, fixtures pin the common forms.
        return findings

    def _check_statement(self, sf, lineno, statement, locals_live, in_function,
                         findings):
        if in_function == 0:
            return
        for regex in (BORROW_RE, ADDR_RE):
            m = regex.search(statement)
            if m and m.group(1) in locals_live:
                findings.append(
                    Finding(sf.rel, lineno, self.name,
                            f"returns a pointer into function-local buffer "
                            f"'{m.group(1)}', which dies at function exit; "
                            "return an owning value or a ref-counted view "
                            "(BufferPtr/Vector)"))
                return


PASS = ViewEscapePass
