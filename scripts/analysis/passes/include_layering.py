"""include-layering: enforce the dependency direction between src/ layers.

The engine layers bottom-up: `common` underpins everything and includes
nothing above itself; `exec` may not reach into `sql`; the planner (`sql`)
sits above execution; `benchlib` alone sees the whole stack. The map below
is the *entire* allowed include graph — a `#include "dir/..."` whose target
directory is not listed for the including file's directory is a layering
violation, whichever direction it points. This is what keeps a future
serving layer able to link `exec` without dragging in the SQL front-end,
and `common` reusable from anywhere.

Adding a new src/ directory requires adding it here (the pass fails loudly
on unknown directories rather than guessing a layer).
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

# Directory -> directories it may include from (its layer and below).
ALLOWED_DEPS = {
    "common": {"common"},
    "nn": {"nn", "common"},
    "storage": {"storage", "common"},
    "device": {"device", "nn", "common"},
    "exec": {"exec", "storage", "nn", "common"},
    # The shared forward-pass layer: every approach (native ModelJoin, the
    # C-API operator, mlruntime sessions) runs inference through it. It sits
    # beside exec — above storage/device, below sql — so the SQL front-end
    # can never reach into it directly (the planner hands knobs down as a
    # plain struct, see sql/physical_planner.h).
    "inference": {"inference", "device", "storage", "nn", "common"},
    "mlruntime": {"mlruntime", "inference", "device", "nn", "common"},
    "sql": {"sql", "exec", "storage", "nn", "common"},
    "mltosql": {"mltosql", "sql", "exec", "storage", "nn", "common"},
    "modeljoin": {"modeljoin", "sql", "exec", "inference", "device", "storage",
                  "nn", "common"},
    "server": {"server", "sql", "exec", "inference", "storage", "nn", "common"},
    "integration": {"integration", "sql", "mlruntime", "exec", "inference",
                    "device", "storage", "nn", "common"},
    "benchlib": {"benchlib", "integration", "modeljoin", "mltosql", "sql",
                 "mlruntime", "exec", "inference", "device", "storage", "nn",
                 "common"},
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


class IncludeLayeringPass(Pass):
    name = "include-layering"
    roots = ("src",)

    def check_file(self, sf, ctx):
        parts = sf.rel.split("/")
        if len(parts) < 3 or parts[0] != "src":
            return []
        from_dir = parts[1]
        findings = []
        allowed = ALLOWED_DEPS.get(from_dir)
        if allowed is None:
            findings.append(
                Finding(sf.rel, 1, self.name,
                        f"directory src/{from_dir}/ is not in the layering "
                        "map; add it to ALLOWED_DEPS in "
                        "scripts/analysis/passes/include_layering.py"))
            return findings
        for lineno, raw in enumerate(sf.raw_lines, start=1):
            m = INCLUDE_RE.match(raw)
            if not m or "/" not in m.group(1):
                continue
            to_dir = m.group(1).split("/", 1)[0]
            if to_dir not in ALLOWED_DEPS:
                continue  # not a src layer (e.g. generated or external)
            if to_dir not in allowed:
                findings.append(
                    Finding(sf.rel, lineno, self.name,
                            f"src/{from_dir}/ must not include {m.group(1)!r}: "
                            f"allowed layers for {from_dir} are "
                            f"{{{', '.join(sorted(allowed))}}}"))
        return findings


PASS = IncludeLayeringPass
