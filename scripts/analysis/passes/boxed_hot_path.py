"""boxed-hot-path: no per-row Value boxing inside inference hot paths.

Batches cross the columnar→matrix boundary through the typed gather kernels
in exec/gather.h, not one heap-free tagged-union Value per cell.
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

# Inference hot paths. UDF boxing (src/integration/udf.cc) is deliberately
# NOT listed: per-value boxing is the UDF experiment's measured tax (paper
# Table 2).
HOT_PATHS = ("src/modeljoin/", "src/nn/", "src/integration/capi_operator.cc")
# Files under the hot paths allowed to box (none today; add `rel` paths with
# a justification if a cold diagnostic path genuinely needs Value).
ALLOWED_FILES: set = set()

BOXED_RE = re.compile(r"\b(Get|Set)Value\s*\(")


class BoxedHotPathPass(Pass):
    name = "boxed-hot-path"
    roots = ("src",)

    def check_file(self, sf, ctx):
        if not sf.rel.startswith(HOT_PATHS) or sf.rel in ALLOWED_FILES:
            return []
        findings = []
        for lineno, line in sf.iter_code():
            if BOXED_RE.search(line):
                findings.append(
                    Finding(sf.rel, lineno, self.name,
                            "per-row Value boxing in an inference hot path; "
                            "gather through exec/gather.h instead"))
        return findings


PASS = BoxedHotPathPass
