"""lock-scope: no query execution, inference, or blocking join/wait while
holding an engine mutex.

Clang's `-Wthread-safety` proves *which* lock protects *what*; it cannot
say that a critical section is too fat. Calling `Execute*`, running
inference, or blocking on `WaitIdle`/`ParallelFor`/`Barrier::Wait`/
`thread::join` while holding a mutex either serialises the whole engine
behind one lock or deadlocks outright (the blocked-on workers may need the
same lock). Critical sections stay small: copy what you need, unlock, then
do the heavy work.

`CondVar::Wait(mu)` is NOT flagged — releasing the mutex while sleeping is
the whole point of a condition variable; the pass distinguishes it from
`Barrier::Wait()` by the mutex argument.
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

# RAII lock acquisition: the annotated engine wrapper or a std scoped lock.
LOCK_RE = re.compile(
    r"\b(?:MutexLock|std::lock_guard\s*<[^>]*>|std::unique_lock\s*<[^>]*>|"
    r"std::scoped_lock(?:\s*<[^>]*>)?)\s+\w+\s*[({]")

# Calls that execute queries, run inference, or block on other workers.
BLOCKING_RE = re.compile(
    r"\b(?:"
    r"WaitIdle|ParallelFor|"                       # pool barriers
    r"ExecuteQuery|ExecutePlan|ExecutePipeline|"   # query execution
    r"ExecuteParallel|"
    r"BuildPartition|"                             # barrier-synchronised build
    r"trt_session_run|InferChunk|"                 # inference entry points
    r"RunInference|Forward"
    r")\s*\("
    r"|\.\s*Execute\s*\(|->\s*Execute\s*\("
    r"|\.\s*join\s*\(\s*\)"                        # thread join
    r"|\.\s*Wait\s*\(\s*\)")                       # Barrier::Wait (no mutex arg,
                                                   # unlike CondVar::Wait(mu))


class LockScopePass(Pass):
    name = "lock-scope"
    roots = ("src",)

    def check_file(self, sf, ctx):
        findings = []
        depth = 0
        lock_depths = []  # brace depth at which each held lock was declared
        for lineno, line in sf.iter_code():
            # Process the line segment-wise so a lock declared after a call
            # on the same line does not retroactively flag it.
            i = 0
            while i <= len(line):
                brace = _next_brace(line, i)
                segment = line[i:brace] if brace >= 0 else line[i:]
                if lock_depths and BLOCKING_RE.search(segment):
                    call = BLOCKING_RE.search(segment).group(0).strip("(. ->")
                    findings.append(
                        Finding(sf.rel, lineno, self.name,
                                f"blocking/executing call `{call}` while "
                                "holding a mutex (acquired at depth "
                                f"{lock_depths[-1]}); shrink the critical "
                                "section"))
                if LOCK_RE.search(segment):
                    lock_depths.append(depth)
                if brace < 0:
                    break
                if line[brace] == "{":
                    depth += 1
                else:
                    depth -= 1
                    # A lock declared at depth d dies when depth drops below
                    # d (closing an inner block back to d keeps it held).
                    while lock_depths and lock_depths[-1] > depth:
                        lock_depths.pop()
                i = brace + 1
        return findings


def _next_brace(line: str, start: int) -> int:
    for i in range(start, len(line)):
        if line[i] in "{}":
            return i
    return -1


PASS = LockScopePass
