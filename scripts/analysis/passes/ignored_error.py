"""ignored-error: every `IgnoreError()` carries a justification comment.

`Status::IgnoreError()` is the only sanctioned way to drop an error, but
"sanctioned" is not "free": the call must say *why* dropping is correct,
either as a trailing comment on the same line or as a comment on the line
directly above. An audit then only needs to read the justifications, not
reconstruct them.
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

IGNORE_RE = re.compile(r"(?:\.|->)\s*IgnoreError\s*\(\s*\)")
# A comment with at least a few words of content (not just `//` or `//!`).
JUSTIFICATION_RE = re.compile(r"//[/!]?\s*\S+(?:\s+\S+){1,}")


class IgnoredErrorPass(Pass):
    name = "ignored-error"
    roots = ("src", "tests", "bench", "examples")

    def check_file(self, sf, ctx):
        findings = []
        for lineno, line in sf.iter_code():
            if not IGNORE_RE.search(line):
                continue
            # Skip the declaration in status.h itself.
            if re.search(r"\bvoid\s+IgnoreError\b", line):
                continue
            same = sf.raw_lines[lineno - 1]
            prev = sf.raw_lines[lineno - 2] if lineno >= 2 else ""
            trailing = same.split("IgnoreError", 1)[1]
            if JUSTIFICATION_RE.search(trailing) or JUSTIFICATION_RE.search(prev):
                continue
            findings.append(
                Finding(sf.rel, lineno, self.name,
                        "IgnoreError() without a justification comment; say "
                        "why dropping this Status is correct (same line or "
                        "the line above)"))
        return findings


PASS = IgnoredErrorPass
