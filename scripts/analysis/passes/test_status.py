"""test-status: test code must not discard a Status/Result.

A bare-statement call like `engine.ExecuteQuery(...);` in a test silently
swallows the error; assert on it or consume it explicitly.
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

# Status/Result-returning methods on the objects the rule names.
STATUS_METHODS = {
    "ExecuteQuery", "ExecutePlan", "PlanQuery", "Explain", "ExplainAnalyze",
    "AppendRow", "CreateTable", "DropTable", "Open", "Next",
}
CALL_RE = re.compile(r"^\s*(engine|op|table)(\.|->)(\w+)\(.*\);\s*$")


class TestStatusPass(Pass):
    name = "test-status"
    roots = ("tests", "bench", "examples")

    def check_file(self, sf, ctx):
        findings = []
        for lineno, line in sf.iter_code():
            m = CALL_RE.match(line)
            if m and m.group(3) in STATUS_METHODS:
                findings.append(
                    Finding(sf.rel, lineno, self.name,
                            f"discarded Status from "
                            f"{m.group(1)}{m.group(2)}{m.group(3)}(); ASSERT "
                            "on it or consume the result"))
        return findings


PASS = TestStatusPass
