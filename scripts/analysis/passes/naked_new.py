"""naked-new: no naked `new` / `delete` outside allocator code.

Allocator files (device arena, C-API boundary, tensor buffer) are
allowlisted; `static` leaky singletons and allocations immediately wrapped
in a smart pointer on the same line are allowed anywhere.
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

# Files whose job is allocation / ownership across an ABI boundary.
ALLOWED_FILES = {
    "src/device/device.cc",  # device memory arena
    "src/mlruntime/trt_c_api.cc",  # C API: caller-owned opaque handles
    "src/nn/tensor.h",  # owning tensor buffer
}

NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new T`, `new T[...]` (not placement)
DELETE_RE = re.compile(r"\bdelete(\[\])?\s")
SMART_WRAP_RE = re.compile(r"(unique_ptr|shared_ptr)\s*<[^;]*>?\s*\(\s*new\b|make_")


class NakedNewPass(Pass):
    name = "naked-new"
    roots = ("src",)

    def check_file(self, sf, ctx):
        if sf.rel in ALLOWED_FILES:
            return []
        findings = []
        for lineno, line in sf.iter_code():
            if "static" in line or SMART_WRAP_RE.search(line):
                continue
            if NEW_RE.search(line):
                findings.append(
                    Finding(sf.rel, lineno, self.name,
                            "naked `new` outside allocator code; use "
                            "std::vector / make_unique"))
            if DELETE_RE.search(line):
                findings.append(
                    Finding(sf.rel, lineno, self.name,
                            "naked `delete` outside allocator code; let an "
                            "owner manage the lifetime"))
        return findings


PASS = NakedNewPass
