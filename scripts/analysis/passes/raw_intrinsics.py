"""raw-intrinsics: vendor SIMD intrinsics only inside common/simd.h.

The portable SIMD layer exists so every kernel is written once against
F32x8/I64x8/Mask8 and compiles to AVX2, NEON or scalar from one source.
A raw `_mm*`/`v*q`-style intrinsic anywhere else silently breaks the
scalar and NEON builds and bypasses the runtime scalar ablation toggle.
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

ALLOWED_FILES = {"src/common/simd.h"}  # the one place intrinsics may live

# x86 (`_mm...`, `_mm256...`) and ARM NEON (`vld1q_f32`, `vaddq_f32`,
# `vst1q...`, ...) intrinsic calls, plus the headers that provide them.
INTRINSIC_RE = re.compile(
    r"\b_mm\w*\s*\("
    r"|\bv(?:ld|st)\d\w*\s*\("
    r"|\bv(?:add|sub|mul|div|max|min|neg|abs|ceq|cgt|cge|clt|cle|bsl|dup|mov"
    r"|reinterpret|get|set|cvt|and|orr|eor|mvn|addv)q?\w*_[fsu]\d+\s*\(")
INTRINSIC_HEADER_RE = re.compile(
    r'#\s*include\s*[<"](?:immintrin|x86intrin|emmintrin|smmintrin|'
    r'avxintrin|arm_neon)\.h[>"]')


class RawIntrinsicsPass(Pass):
    name = "raw-intrinsics"
    roots = ("src", "tests", "bench", "examples")

    def check_file(self, sf, ctx):
        if sf.rel in ALLOWED_FILES:
            return []
        findings = []
        for lineno, line in sf.iter_code():
            if INTRINSIC_RE.search(line) or INTRINSIC_HEADER_RE.search(line):
                findings.append(
                    Finding(sf.rel, lineno, self.name,
                            "raw SIMD intrinsic outside common/simd.h; use "
                            "the F32x8/I64x8/Mask8 wrappers"))
        return findings


PASS = RawIntrinsicsPass
