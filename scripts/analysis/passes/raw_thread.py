"""raw-thread: no direct std::thread construction outside the thread pool.

All engine concurrency goes through ThreadPool so WaitIdle/shutdown
semantics hold.
"""

from __future__ import annotations

import re

from ..core import Finding, Pass

ALLOWED_FILES = {"src/common/thread_pool.h", "src/common/thread_pool.cc"}

THREAD_RE = re.compile(r"\bstd::thread\b")


class RawThreadPass(Pass):
    name = "raw-thread"
    roots = ("src",)

    def check_file(self, sf, ctx):
        if sf.rel in ALLOWED_FILES:
            return []
        findings = []
        for lineno, line in sf.iter_code():
            if THREAD_RE.search(line):
                findings.append(
                    Finding(sf.rel, lineno, self.name,
                            "direct std::thread use outside thread_pool; "
                            "submit to a ThreadPool"))
        return findings


PASS = RawThreadPass
