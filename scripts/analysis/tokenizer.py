"""Comment/string-aware C++ line tokenizer shared by every analysis pass.

The old regex lint stripped comments with per-line heuristics that broke on
raw strings and multi-line constructs. This tokenizer walks the file once
with a small state machine and produces, per physical line:

 - ``code``: the line with comments removed and string/char literal
   *contents* removed (the quotes remain as ``""`` / ``''`` so regexes that
   anchor on statement shape keep working). Raw strings ``R"delim(...)"``
   are handled, including multi-line bodies.
 - the raw line, for suppression markers that live inside comments.

Suppressions follow the clang-tidy convention:

    do_bad_thing();          // NOLINT(indbml-<pass>)
    // NOLINTNEXTLINE(indbml-<pass>[, indbml-<other-pass>])
    do_bad_thing();

``NOLINT(indbml-*)`` suppresses every pass on that line. A bare ``NOLINT``
without a category is deliberately ignored: suppressions must name what
they silence.
"""

from __future__ import annotations

import re
from pathlib import Path

_NOLINT_RE = re.compile(r"NOLINT(NEXTLINE)?\(([^)]*)\)")


def strip_cpp(text: str) -> str:
    """Returns `text` with comments and literal contents blanked.

    The output has exactly the same line structure (every '\\n' is kept) so
    line numbers map 1:1. Comment characters become spaces; string and char
    literal contents are dropped, keeping the delimiters.
    """
    out = []
    i = 0
    n = len(text)
    # States are handled inline; `i` always advances.
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            # Line comment: blank to end of line.
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            # Block comment: blank to */, keeping newlines.
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == "R" and nxt == '"':
            # Raw string R"delim( ... )delim": keep empty quotes.
            j = i + 2
            while j < n and text[j] not in "(\n":
                j += 1
            delim = text[i + 2 : j]
            close = ")" + delim + '"'
            end = text.find(close, j)
            end = n if end < 0 else end + len(close)
            out.append('""')
            out.extend("\n" for k in range(i, end) if text[k] == "\n")
            i = end
        elif c == '"' or c == "'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1  # skip the escaped character
                if i < n and text[i] == "\n":  # unterminated literal
                    break
                i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceFile:
    """One analysed file: raw lines, code lines, and suppression map."""

    def __init__(self, root: Path, path: Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        text = path.read_text(errors="replace")
        self.raw_lines = text.splitlines()
        self.code_lines = strip_cpp(text).splitlines()
        # strip_cpp preserves line structure; pad defensively for files that
        # end mid-literal.
        while len(self.code_lines) < len(self.raw_lines):
            self.code_lines.append("")
        self._suppressed = self._collect_suppressions()

    @property
    def top_dir(self) -> str:
        """First path component: "src", "tests", "bench", "examples"."""
        return self.rel.split("/", 1)[0]

    def code(self, lineno: int) -> str:
        """Comment/string-stripped text of 1-based line `lineno`."""
        return self.code_lines[lineno - 1]

    def iter_code(self):
        """Yields (lineno, stripped_line) over the whole file."""
        return enumerate(self.code_lines, start=1)

    def _collect_suppressions(self) -> dict:
        suppressed: dict = {}
        for lineno, raw in enumerate(self.raw_lines, start=1):
            for m in _NOLINT_RE.finditer(raw):
                target = lineno + 1 if m.group(1) else lineno
                names = suppressed.setdefault(target, set())
                for item in m.group(2).split(","):
                    item = item.strip()
                    if item == "indbml-*":
                        names.add("*")
                    elif item.startswith("indbml-"):
                        names.add(item[len("indbml-") :])
        return suppressed

    def is_suppressed(self, lineno: int, pass_name: str) -> bool:
        names = self._suppressed.get(lineno)
        return names is not None and (pass_name in names or "*" in names)
