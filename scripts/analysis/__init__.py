"""indbml-analyze: the project's multi-pass static-analysis framework.

Grown out of the original single-file ``scripts/lint.py`` regex gate. The
framework adds what regexes alone could not express:

 - a shared comment/string/raw-string-aware C++ tokenizer (``tokenizer``),
 - structured per-pass findings (``path:line: [pass] message``, ``--json``),
 - inline ``// NOLINT(indbml-<pass>)`` suppressions,
 - a committed baseline file for grandfathered findings,
 - project-wide passes that need the whole file set (include graphs).

Entry point: ``scripts/indbml-analyze`` (registered as the ``lint_gate``
ctest target, label ``static_analysis``). Passes live in
``scripts/analysis/passes/``; see DESIGN.md "Static analysis" for how to
add one.
"""
