"""indbml-analyze driver: walks the tree, runs the passes, gates the build.

Invocation mirrors the old ``scripts/lint.py <repo-root>`` contract so the
``lint_gate`` ctest target keeps working unchanged:

    python3 scripts/indbml-analyze [root] [--passes a,b] [--json]
                                   [--baseline PATH | --no-baseline]
                                   [--update-baseline] [--list-passes]

Exit status is 1 iff there are findings that are neither suppressed with a
``// NOLINT(indbml-<pass>)`` marker nor absorbed by the baseline file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import (AnalysisContext, apply_baseline, load_baseline,
                   render_json, render_text, write_baseline)
from .passes import all_passes, pass_names
from .tokenizer import SourceFile

# Directories scanned for C++ sources, relative to the repo root.
SCAN_ROOTS = ("src", "tests", "bench", "examples")
SUFFIXES = (".cc", ".h")
# The selftest analyses each fixture directory as its own mini repo-root;
# the fixtures contain deliberate violations and must not gate the real tree.
EXCLUDED_PARTS = {"analysis_fixtures"}


def collect_files(root: Path) -> list:
    files = []
    for top in SCAN_ROOTS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SUFFIXES and path.is_file():
                if EXCLUDED_PARTS.intersection(path.relative_to(root).parts):
                    continue
                files.append(SourceFile(root, path))
    return files


def run(root: Path, selected=None):
    """Runs the (optionally filtered) passes; returns unsuppressed findings."""
    ctx = AnalysisContext(root)
    ctx.files = collect_files(root)
    passes = all_passes()
    if selected is not None:
        passes = [p for p in passes if p.name in selected]
    findings = []
    for p in passes:
        raised = []
        for sf in ctx.files:
            if p.wants(sf):
                raised.extend(
                    (sf, f) for f in p.check_file(sf, ctx))
        raised.extend((None, f) for f in p.finish(ctx))
        for sf, f in raised:
            if sf is not None and sf.is_suppressed(f.line, p.name):
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.rel, f.line, f.pass_name))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="indbml-analyze",
        description="Multi-pass static analysis for the indbml tree.")
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root to analyse (default: cwd)")
    parser.add_argument("--passes", metavar="NAMES",
                        help="comma-separated subset of passes to run")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON instead of text")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline file (default: "
                             "<root>/scripts/analysis/baseline.txt)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline: every finding gates")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current findings "
                             "and exit 0")
    parser.add_argument("--list-passes", action="store_true",
                        help="print registered pass names and exit")
    args = parser.parse_args(argv)

    if args.list_passes:
        print("\n".join(pass_names()))
        return 0

    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"indbml-analyze: {root} does not look like a repo root "
              "(no src/ directory)", file=sys.stderr)
        return 2

    selected = None
    if args.passes:
        selected = {name.strip() for name in args.passes.split(",") if name.strip()}
        unknown = selected - set(pass_names())
        if unknown:
            print(f"indbml-analyze: unknown pass(es): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    findings = run(root, selected)

    baseline_path = (Path(args.baseline) if args.baseline
                     else root / "scripts" / "analysis" / "baseline.txt")
    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(f"indbml-analyze: wrote {len(findings)} baseline entries to "
              f"{baseline_path}")
        return 0

    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    new, grandfathered = apply_baseline(findings, baseline)

    if args.json:
        print(render_json(new))
    elif new:
        print(render_text(new))

    if new:
        print(f"\nindbml-analyze: {len(new)} new finding(s)"
              + (f" ({len(grandfathered)} grandfathered)" if grandfathered else ""),
              file=sys.stderr)
        return 1
    if grandfathered:
        print(f"indbml-analyze: clean ({len(grandfathered)} grandfathered)",
              file=sys.stderr)
    else:
        print("indbml-analyze: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
