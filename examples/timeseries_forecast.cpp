// Time-series forecasting with an LSTM, the paper's second workload class:
// a raw (t, value) series is widened into per-timestep columns by
// self-joining the series table (paper §4), then an LSTM ModelJoin forecasts
// the next value for every window — and the forecast error is evaluated
// with SQL right on top of the inference result.

#include <cmath>
#include <cstdio>

#include "benchlib/workloads.h"
#include "mltosql/mltosql.h"
#include "modeljoin/register.h"
#include "nn/model_meta.h"
#include "sql/query_engine.h"

using namespace indbml;

int main() {
  const int64_t kPoints = 5000;
  const int64_t kTimesteps = 3;

  sql::QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  if (!engine.catalog()
           ->CreateTable(benchlib::MakeRawSinusSeries("series", kPoints))
           .ok()) {
    return 1;
  }

  // Widen the raw series by self-joining it (timesteps - 1) times.
  std::string widen = benchlib::BuildSelfJoinSql("series", kTimesteps);
  std::printf("Self-join widening SQL:\n  %s\n\n", widen.c_str());
  auto wide = engine.ExecuteQuery(widen);
  if (!wide.ok()) {
    std::fprintf(stderr, "widening failed: %s\n", wide.status().ToString().c_str());
    return 1;
  }
  engine.catalog()->CreateOrReplaceTable(wide->ToTable("windows"));
  auto windows = engine.catalog()->GetTable("windows");
  (*windows)->SetUniqueIdColumn("id");
  (*windows)->SetSortedBy({"id"});
  std::printf("Built %lld forecast windows of %lld steps each.\n",
              static_cast<long long>(wide->num_rows),
              static_cast<long long>(kTimesteps));

  // An LSTM forecaster (weights are seeded, standing in for a pre-trained
  // Keras model; the runtime behaviour is identical, paper §6.1).
  auto model_or = nn::MakeLstmBenchmarkModel(/*width=*/32, kTimesteps, /*seed=*/3);
  if (!model_or.ok()) return 1;
  nn::Model model = std::move(model_or).ValueOrDie();
  mltosql::MlToSql framework(&model, "forecaster_table");
  if (!framework.Deploy(&engine).ok()) return 1;
  engine.models()->Register(nn::MetaOf(model, "forecaster"));

  // Forecast every window with the native ModelJoin, join the actual next
  // value via the raw series, and compute the mean absolute error in SQL.
  auto result = engine.ExecuteQuery(
      "SELECT COUNT(*) AS windows, AVG(abs(f.prediction - s.value)) AS mae, "
      "MAX(abs(f.prediction - s.value)) AS worst FROM "
      "(SELECT id, prediction FROM windows "
      " MODEL JOIN forecaster_table USING MODEL 'forecaster' "
      " PREDICT (x0, x1, x2)) AS f, series AS s "
      "WHERE s.t = f.id + 3");
  if (!result.ok()) {
    std::fprintf(stderr, "forecast query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nForecast evaluation over %lld windows:\n",
              static_cast<long long>(result->GetValue(0, 0).i));
  std::printf("  mean absolute error: %.4f\n",
              result->GetValue(0, 1).AsDouble());
  std::printf("  worst absolute error: %.4f\n",
              result->GetValue(0, 2).AsDouble());
  std::printf("\n(The untrained forecaster is a runtime stand-in; training "
              "it is orthogonal to the in-database execution shown here.)\n");
  return 0;
}
