// Iris classification end to end: train a dense network in-process (SGD on
// mean squared error against one-hot targets), deploy it into the engine,
// classify with the native ModelJoin, and evaluate the accuracy with plain
// SQL aggregation over the predictions — the "query integration" advantage
// the paper's introduction motivates: inference results keep flowing
// through relational operators.

#include <cstdio>

#include "benchlib/workloads.h"
#include "mltosql/mltosql.h"
#include "modeljoin/register.h"
#include "nn/model_meta.h"
#include "nn/training.h"
#include "sql/query_engine.h"

using namespace indbml;

int main() {
  const int64_t kRows = 1500;

  sql::QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  auto iris = benchlib::MakeIrisTable("iris", kRows);
  if (!engine.catalog()->CreateTable(iris).ok()) return 1;

  // Training data: normalised features, one-hot class targets.
  std::vector<float> features;
  std::vector<int64_t> classes;
  benchlib::IrisFeatures(kRows, &features, &classes);
  nn::Tensor x = nn::Tensor::Matrix(kRows, 4);
  nn::Tensor y = nn::Tensor::Matrix(kRows, 3);
  for (int64_t r = 0; r < kRows; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      x.At(r, c) = features[static_cast<size_t>(r * 4 + c)] / 8.0f;  // scale to ~[0,1]
    }
    y.At(r, classes[static_cast<size_t>(r)]) = 1.0f;
  }

  nn::ModelBuilder builder(4);
  builder.AddDense(16, nn::Activation::kTanh).AddDense(3, nn::Activation::kSigmoid);
  auto model_or = builder.Build(11);
  if (!model_or.ok()) return 1;
  nn::Model model = std::move(model_or).ValueOrDie();

  nn::TrainOptions train_options;
  train_options.epochs = 60;
  train_options.learning_rate = 0.1f;
  auto loss = nn::TrainDenseMse(&model, x, y, train_options);
  if (!loss.ok()) {
    std::fprintf(stderr, "training failed: %s\n", loss.status().ToString().c_str());
    return 1;
  }
  std::printf("Trained dense(16) classifier, final MSE loss: %.4f\n",
              static_cast<double>(*loss));

  // The model was trained on scaled features; add a scaled view via SQL.
  auto scaled = engine.ExecuteQuery(
      "SELECT id, sepal_length / 8.0 AS f0, sepal_width / 8.0 AS f1, "
      "petal_length / 8.0 AS f2, petal_width / 8.0 AS f3, class FROM iris");
  if (!scaled.ok()) return 1;
  engine.catalog()->CreateOrReplaceTable(scaled->ToTable("iris_scaled"));
  auto scaled_table = engine.catalog()->GetTable("iris_scaled");
  (*scaled_table)->SetUniqueIdColumn("id");
  (*scaled_table)->SetSortedBy({"id"});

  mltosql::MlToSql framework(&model, "iris_clf");
  if (!framework.Deploy(&engine).ok()) return 1;
  engine.models()->Register(nn::MetaOf(model, "iris_clf"));

  // Classify in-database and aggregate: predicted class = argmax of the
  // three sigmoid outputs, expressed in SQL with CASE.
  auto result = engine.ExecuteQuery(
      "SELECT class, COUNT(*) AS total, "
      "SUM(CASE WHEN p0 >= p1 AND p0 >= p2 AND class = 0 THEN 1 "
      "         WHEN p1 >= p0 AND p1 >= p2 AND class = 1 THEN 1 "
      "         WHEN p2 >= p0 AND p2 >= p1 AND class = 2 THEN 1 "
      "         ELSE 0 END) AS correct FROM "
      "(SELECT class, prediction_0 AS p0, prediction_1 AS p1, prediction_2 AS p2 "
      " FROM iris_scaled MODEL JOIN iris_clf USING MODEL 'iris_clf' "
      " PREDICT (f0, f1, f2, f3)) AS scored "
      "GROUP BY class ORDER BY class");
  if (!result.ok()) {
    std::fprintf(stderr, "classification query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nPer-class accuracy (inference + aggregation in one query):\n");
  int64_t total = 0;
  int64_t correct = 0;
  for (int64_t r = 0; r < result->num_rows; ++r) {
    int64_t cls = result->GetValue(r, 0).i;
    int64_t n = result->GetValue(r, 1).i;
    int64_t ok = result->GetValue(r, 2).i;
    total += n;
    correct += ok;
    std::printf("  class %lld: %lld/%lld (%.1f%%)\n", static_cast<long long>(cls),
                static_cast<long long>(ok), static_cast<long long>(n),
                100.0 * static_cast<double>(ok) / static_cast<double>(n));
  }
  std::printf("Overall accuracy: %.1f%%\n",
              100.0 * static_cast<double>(correct) / static_cast<double>(total));
  return correct * 10 >= total * 8 ? 0 : 1;  // expect >= 80%
}
