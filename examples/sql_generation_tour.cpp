// A tour of the ML-To-SQL framework's output: the relational model
// representation (paper §4.1), the portable load statements, the generated
// nested inference query (§4.3), the effect of the §4.4 optimizations on
// the query plan, and the structural cost model (§7).

#include <cstdio>

#include "benchlib/workloads.h"
#include "mltosql/mltosql.h"
#include "nn/cost_model.h"
#include "sql/query_engine.h"

using namespace indbml;

namespace {

void PrintSection(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace

int main() {
  sql::QueryEngine engine;
  if (!engine.catalog()->CreateTable(benchlib::MakeIrisTable("iris", 300)).ok()) {
    return 1;
  }

  nn::ModelBuilder builder(4);
  builder.AddDense(3, nn::Activation::kRelu).AddDense(1, nn::Activation::kLinear);
  auto model_or = builder.Build(5);
  if (!model_or.ok()) return 1;
  nn::Model model = std::move(model_or).ValueOrDie();

  PrintSection("Relational model representation (unique node ids)");
  mltosql::MlToSql framework(&model, "tiny_model");
  auto table_or = framework.BuildModelTable();
  if (!table_or.ok()) return 1;
  storage::TablePtr table = std::move(table_or).ValueOrDie();
  std::printf("model table '%s': %lld edges x %lld columns\n",
              table->name().c_str(), static_cast<long long>(table->num_rows()),
              static_cast<long long>(table->num_columns()));
  std::printf("%-8s %-6s %-10s %-10s\n", "node_in", "node", "w_i", "b_i");
  for (int64_t r = 0; r < std::min<int64_t>(8, table->num_rows()); ++r) {
    std::printf("%-8lld %-6lld %-10.4f %-10.4f\n",
                static_cast<long long>(table->column(0).GetInt64(r)),
                static_cast<long long>(table->column(1).GetInt64(r)),
                static_cast<double>(table->column(2).GetFloat(r)),
                static_cast<double>(table->column(10).GetFloat(r)));
  }
  std::printf("...\n");

  PrintSection("Portable load statements (run on any SQL database)");
  auto statements = framework.GenerateLoadStatements();
  if (!statements.ok()) return 1;
  for (size_t i = 0; i < 3 && i < statements->size(); ++i) {
    std::printf("%s\n", (*statements)[i].c_str());
  }
  std::printf("... (%zu statements total)\n", statements->size());

  PrintSection("Generated inference query");
  mltosql::FactTableInfo info;
  info.table = "iris";
  info.input_columns = {"sepal_length", "sepal_width", "petal_length", "petal_width"};
  auto sql_or = framework.GenerateInferenceSql(info);
  if (!sql_or.ok()) return 1;
  std::printf("%s\n", sql_or->c_str());

  PrintSection("Optimized plan (EXPLAIN)");
  if (!framework.Deploy(&engine).ok()) return 1;
  auto plan = engine.Explain(*sql_or);
  if (!plan.ok()) return 1;
  std::printf("%s", plan->c_str());

  PrintSection("Plan without the ordered-aggregation rule");
  sql::QueryEngine::Options no_ordered;
  no_ordered.optimizer.ordered_aggregation = false;
  engine.set_options(no_ordered);
  auto hash_plan = engine.Explain(*sql_or);
  if (hash_plan.ok()) std::printf("%s", hash_plan->c_str());
  engine.set_options(sql::QueryEngine::Options());

  PrintSection("Structural cost model (paper §7)");
  nn::CostEstimate estimate = nn::EstimateCost(model);
  std::printf("parameters:                %lld\n",
              static_cast<long long>(model.NumParameters()));
  std::printf("flops per tuple:           %.0f\n", estimate.flops_per_tuple);
  std::printf("relational rows per tuple: %.0f\n", estimate.relational_rows_per_tuple);
  std::printf("model table rows:          %lld\n",
              static_cast<long long>(estimate.model_table_rows));

  PrintSection("Executing the generated SQL");
  auto result = engine.ExecuteQuery(*sql_or);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%lld predictions computed with plain SQL.\n",
              static_cast<long long>(result->num_rows));
  return 0;
}
