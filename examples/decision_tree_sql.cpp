// Decision trees through ML-To-SQL's building blocks (paper §4 / [33]):
// train a CART regression tree on the Iris replica, deploy it as a node
// table, and classify in-database two ways — by relational traversal
// (self-joins over the node table) and as a single nested CASE expression.

#include <cmath>
#include <cstdio>

#include "benchlib/workloads.h"
#include "mltosql/tree_to_sql.h"
#include "nn/decision_tree.h"
#include "sql/query_engine.h"

using namespace indbml;

int main() {
  const int64_t kRows = 600;
  sql::QueryEngine engine;
  if (!engine.catalog()->CreateTable(benchlib::MakeIrisTable("iris", kRows)).ok()) {
    return 1;
  }

  // Train on the base replica.
  std::vector<float> features;
  std::vector<int64_t> classes;
  benchlib::IrisFeatures(kRows, &features, &classes);
  nn::Tensor x = nn::Tensor::Matrix(kRows, 4);
  std::vector<float> y(static_cast<size_t>(kRows));
  for (int64_t r = 0; r < kRows; ++r) {
    for (int c = 0; c < 4; ++c) {
      x.At(r, c) = features[static_cast<size_t>(r * 4 + c)];
    }
    y[static_cast<size_t>(r)] = static_cast<float>(classes[static_cast<size_t>(r)]);
  }
  auto tree_or = nn::DecisionTree::TrainRegression(x, y);
  if (!tree_or.ok()) return 1;
  nn::DecisionTree tree = std::move(tree_or).ValueOrDie();
  std::printf("Trained CART tree: %zu nodes, depth %d\n", tree.nodes().size(),
              tree.depth());

  const std::vector<std::string> kFeatures = {"sepal_length", "sepal_width",
                                              "petal_length", "petal_width"};
  mltosql::TreeToSql framework(&tree, "iris_tree");
  if (!framework.Deploy(&engine).ok()) return 1;

  // Variant 1: relational traversal over the node table.
  mltosql::FactTableInfo info;
  info.table = "iris";
  info.input_columns = kFeatures;
  info.payload_columns = {"class"};
  auto traversal_sql = framework.GenerateInferenceSql(info);
  if (!traversal_sql.ok()) return 1;
  auto traversal = engine.ExecuteQuery(*traversal_sql);
  if (!traversal.ok()) {
    std::fprintf(stderr, "traversal failed: %s\n",
                 traversal.status().ToString().c_str());
    return 1;
  }

  // Variant 2: one nested CASE expression, with accuracy computed in SQL.
  auto case_expr = framework.GenerateCaseExpression(kFeatures);
  if (!case_expr.ok()) return 1;
  auto accuracy = engine.ExecuteQuery(
      "SELECT COUNT(*) AS total, "
      "SUM(CASE WHEN abs(pred - class) < 0.5 THEN 1 ELSE 0 END) AS correct FROM "
      "(SELECT class, " + *case_expr + " AS pred FROM iris) AS scored");
  if (!accuracy.ok()) {
    std::fprintf(stderr, "accuracy query failed: %s\n",
                 accuracy.status().ToString().c_str());
    return 1;
  }

  int64_t total = accuracy->GetValue(0, 0).i;
  int64_t correct = accuracy->GetValue(0, 1).i;
  std::printf("Relational traversal produced %lld predictions.\n",
              static_cast<long long>(traversal->num_rows));
  std::printf("CASE-expression classification accuracy: %lld/%lld (%.1f%%)\n",
              static_cast<long long>(correct), static_cast<long long>(total),
              100.0 * static_cast<double>(correct) / static_cast<double>(total));

  // Both variants agree row by row.
  auto joined = engine.ExecuteQuery(
      "SELECT COUNT(*) AS diffs FROM "
      "(SELECT id, " + *case_expr + " AS p1 FROM iris) AS a, (" + *traversal_sql +
      ") AS b WHERE a.id = b.id AND abs(a.p1 - b.prediction) > 0.0001");
  if (joined.ok()) {
    std::printf("Rows where the two encodings disagree: %lld\n",
                static_cast<long long>(joined->GetValue(0, 0).i));
  }
  return correct * 10 >= total * 9 ? 0 : 1;
}
