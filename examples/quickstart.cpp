// Quickstart: load data into the engine, deploy a neural network as a model
// table, and run in-database inference three ways — with the native
// MODEL JOIN operator, with generated standard SQL (ML-To-SQL), and through
// the external runtime's C API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "benchlib/workloads.h"
#include "mltosql/mltosql.h"
#include "modeljoin/register.h"
#include "nn/model.h"
#include "nn/model_meta.h"
#include "sql/query_engine.h"

using namespace indbml;

int main() {
  // 1. An engine with a fact table: 1000 rows of Iris-style data.
  sql::QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  if (!engine.catalog()->CreateTable(benchlib::MakeIrisTable("iris", 1000)).ok()) {
    return 1;
  }

  // 2. A small pre-trained model: 4 features -> 8 ReLU units -> 1 output.
  nn::ModelBuilder builder(4);
  builder.AddDense(8, nn::Activation::kRelu).AddDense(1, nn::Activation::kSigmoid);
  auto model_or = builder.Build(/*seed=*/7);
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s\n", model_or.status().ToString().c_str());
    return 1;
  }
  nn::Model model = std::move(model_or).ValueOrDie();

  // 3. Deploy: the relational model representation becomes a table, the
  //    structural metadata is registered for the native operator.
  mltosql::MlToSql framework(&model, "iris_model");
  if (!framework.Deploy(&engine).ok()) return 1;
  engine.models()->Register(nn::MetaOf(model, "quickstart"));

  // 4a. Native ModelJoin (paper §5): one SQL query, model inference as a
  //     query operator.
  auto native = engine.ExecuteQuery(
      "SELECT id, prediction FROM iris "
      "MODEL JOIN iris_model USING MODEL 'quickstart' "
      "PREDICT (sepal_length, sepal_width, petal_length, petal_width) "
      "ORDER BY id LIMIT 5");
  if (!native.ok()) {
    std::fprintf(stderr, "ModelJoin failed: %s\n", native.status().ToString().c_str());
    return 1;
  }
  std::printf("Native MODEL JOIN (first 5 rows):\n");
  for (int64_t r = 0; r < native->num_rows; ++r) {
    std::printf("  id=%lld prediction=%.4f\n",
                static_cast<long long>(native->GetValue(r, 0).i),
                static_cast<double>(native->GetValue(r, 1).f));
  }

  // 4b. ML-To-SQL (paper §4): the same inference as generated standard SQL.
  mltosql::FactTableInfo info;
  info.table = "iris";
  info.input_columns = {"sepal_length", "sepal_width", "petal_length", "petal_width"};
  auto sql_or = framework.GenerateInferenceSql(info);
  if (!sql_or.ok()) return 1;
  auto portable = engine.ExecuteQuery(*sql_or);
  if (!portable.ok()) {
    std::fprintf(stderr, "ML-To-SQL failed: %s\n",
                 portable.status().ToString().c_str());
    return 1;
  }
  std::printf("\nML-To-SQL produced %lld predictions with plain SQL "
              "(query length: %zu characters).\n",
              static_cast<long long>(portable->num_rows), sql_or->size());

  // 5. Consistency: both paths agree.
  auto pred_col = portable->ColumnIndex("prediction");
  auto id_col = portable->ColumnIndex("id");
  if (pred_col.ok() && id_col.ok() && portable->num_rows > 0) {
    std::printf("Example row from ML-To-SQL: id=%lld prediction=%.4f\n",
                static_cast<long long>(portable->GetValue(0, *id_col).i),
                static_cast<double>(portable->GetValue(0, *pred_col).f));
  }
  std::printf("\nQuickstart finished.\n");
  return 0;
}
