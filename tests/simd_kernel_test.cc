// Bit-identity tests for the SIMD kernel layer (common/simd.h): every
// vectorized kernel must produce byte-for-byte the same output as its scalar
// fallback, across all three column types, with and without selection
// vectors, at sizes that exercise empty/partial/full lanes and long runs
// (n in {1, 7, 8, 9, 1023}). In a scalar build (-DINDBML_SIMD=OFF) both
// sides run the scalar path and the tests degenerate to self-comparison,
// which keeps the suite green on every target.

#include "common/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "exec/expression.h"
#include "exec/gather.h"
#include "exec/vector.h"
#include "nn/blas.h"
#include "test_util.h"

namespace indbml {
namespace {

using exec::BinaryOp;
using exec::DataChunk;
using exec::DataType;
using exec::SelectionVector;
using exec::Vector;

const int64_t kSizes[] = {1, 7, 8, 9, 1023};

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

/// Deterministic float fill seasoned with the special values the SIMD/scalar
/// contract is most likely to diverge on.
std::vector<float> MakeFloats(int64_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i)] = rng.NextFloat(-8, 8);
  if (n >= 5) {
    v[0] = 0.0f;
    v[1] = -0.0f;
    v[2] = kNan;
    v[3] = kInf;
    v[4] = -kInf;
  }
  return v;
}

std::vector<int64_t> MakeInts(int64_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<int64_t> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i)] = static_cast<int64_t>(rng.NextUint64(2000)) - 1000;
  }
  if (n >= 3) {
    v[0] = std::numeric_limits<int64_t>::min();
    v[1] = std::numeric_limits<int64_t>::max();
    v[2] = 0;
  }
  return v;
}

std::vector<uint8_t> MakeBools(int64_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<uint8_t> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i)] = rng.NextUint64(2) ? 1 : 0;
  }
  return v;
}

/// Runs `fn` (which writes its result into a caller-owned buffer it captures)
/// once with SIMD enabled and once disabled, returning both buffers for a
/// bitwise comparison by the caller.
template <typename Fn>
void RunBothModes(Fn fn, std::vector<float>* simd_out,
                  std::vector<float>* scalar_out) {
  {
    simd::ScopedEnable on(true);
    fn(simd_out);
  }
  {
    simd::ScopedEnable off(false);
    fn(scalar_out);
  }
}

/// Bit equality with one carve-out: when both sides are NaN they count as
/// equal regardless of payload/sign. IEEE 754 does not pin which NaN a
/// multiply/add propagates or generates, and compilers may commute
/// commutative operands, so NaN *payload* is outside the bit-identity
/// contract — NaN-ness itself must still match positionally.
void ExpectBitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) && std::isnan(b[i])) continue;
    ASSERT_EQ(std::memcmp(&a[i], &b[i], sizeof(float)), 0)
        << "divergence at index " << i << ": " << a[i] << " vs " << b[i];
  }
}

// ---------------------------------------------------------------------------
// BLAS kernels (nn/blas.cc)

TEST(SimdBlasTest, SgemmBitIdentity) {
  struct Shape {
    int64_t m, n, k;
  };
  // Shapes straddling the register-block (4x16), 8-lane and block (64)
  // boundaries, plus degenerate single-element cases.
  const Shape shapes[] = {{1, 1, 1},  {3, 5, 7},    {4, 16, 8},
                          {5, 17, 9}, {8, 33, 16},  {13, 70, 21},
                          {70, 3, 70}, {65, 129, 65}};
  const float alphas[] = {1.0f, 0.5f, 0.0f};
  const float betas[] = {0.0f, 1.0f, 1.25f};
  for (const Shape& s : shapes) {
    for (float alpha : alphas) {
      for (float beta : betas) {
        auto a = MakeFloats(s.m * s.k, 11);
        auto b = MakeFloats(s.k * s.n, 22);
        auto c0 = MakeFloats(s.m * s.n, 33);
        std::vector<float> c_simd, c_scalar;
        RunBothModes(
            [&](std::vector<float>* out) {
              *out = c0;
              blas::SgemmTight(false, false, s.m, s.n, s.k, alpha, a.data(),
                               b.data(), beta, out->data());
            },
            &c_simd, &c_scalar);
        SCOPED_TRACE("m=" + std::to_string(s.m) + " n=" + std::to_string(s.n) +
                     " k=" + std::to_string(s.k) + " alpha=" +
                     std::to_string(alpha) + " beta=" + std::to_string(beta));
        ExpectBitEqual(c_simd, c_scalar);
      }
    }
  }
}

TEST(SimdBlasTest, SgemmTransposedPathsBitIdentity) {
  // The transposed paths are scalar in both modes; assert it stays that way.
  const int64_t m = 9, n = 17, k = 13;
  auto a = MakeFloats(m * k, 5);
  auto b = MakeFloats(k * n, 6);
  auto c0 = MakeFloats(m * n, 7);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      if (!ta && !tb) continue;
      std::vector<float> c_simd, c_scalar;
      RunBothModes(
          [&](std::vector<float>* out) {
            *out = c0;
            blas::SgemmTight(ta, tb, m, n, k, 0.75f, a.data(), b.data(), 0.5f,
                             out->data());
          },
          &c_simd, &c_scalar);
      ExpectBitEqual(c_simd, c_scalar);
    }
  }
}

TEST(SimdBlasTest, ElementwiseKernelsBitIdentity) {
  for (int64_t n : kSizes) {
    auto x = MakeFloats(n, 42);
    auto y = MakeFloats(n, 43);
    std::vector<float> s1, s2;

    RunBothModes(
        [&](std::vector<float>* out) {
          out->assign(static_cast<size_t>(n), 0.0f);
          blas::VsAdd(n, x.data(), y.data(), out->data());
        },
        &s1, &s2);
    ExpectBitEqual(s1, s2);

    RunBothModes(
        [&](std::vector<float>* out) {
          out->assign(static_cast<size_t>(n), 0.0f);
          blas::VsMul(n, x.data(), y.data(), out->data());
        },
        &s1, &s2);
    ExpectBitEqual(s1, s2);

    RunBothModes(
        [&](std::vector<float>* out) {
          *out = y;
          blas::Saxpy(n, 1.5f, x.data(), out->data());
        },
        &s1, &s2);
    ExpectBitEqual(s1, s2);

    // VsRelu input includes NaN, +-0 and +-inf from MakeFloats: the SIMD
    // max-with-zero must clamp them exactly like the scalar ternary.
    RunBothModes(
        [&](std::vector<float>* out) {
          *out = x;
          blas::VsRelu(n, out->data());
        },
        &s1, &s2);
    ExpectBitEqual(s1, s2);

    // Sigmoid/tanh stay scalar by design (libm calls); self-consistency.
    RunBothModes(
        [&](std::vector<float>* out) {
          *out = x;
          blas::VsSigmoid(n, out->data());
        },
        &s1, &s2);
    ExpectBitEqual(s1, s2);

    RunBothModes(
        [&](std::vector<float>* out) {
          *out = x;
          blas::VsTanh(n, out->data());
        },
        &s1, &s2);
    ExpectBitEqual(s1, s2);
  }
}

TEST(SimdBlasTest, SgerBitIdentity) {
  const int64_t m = 9, n = 17;
  auto x = MakeFloats(m, 3);
  auto y = MakeFloats(n, 4);
  auto a0 = MakeFloats(m * n, 5);
  std::vector<float> s1, s2;
  RunBothModes(
      [&](std::vector<float>* out) {
        *out = a0;
        blas::Sger(m, n, 0.25f, x.data(), y.data(), out->data(), n);
      },
      &s1, &s2);
  ExpectBitEqual(s1, s2);
}

// ---------------------------------------------------------------------------
// Expression kernels (exec/expression.cc)

DataChunk MakeChunk(int64_t n, uint64_t seed) {
  DataChunk chunk;
  chunk.Reset({DataType::kFloat, DataType::kFloat, DataType::kInt64,
               DataType::kInt64, DataType::kBool});
  auto f1 = MakeFloats(n, seed);
  auto f2 = MakeFloats(n, seed + 1);
  auto i1 = MakeInts(n, seed + 2);
  auto i2 = MakeInts(n, seed + 3);
  auto b1 = MakeBools(n, seed + 4);
  for (int64_t c = 0; c < 5; ++c) chunk.column(c).Resize(n);
  std::memcpy(chunk.column(0).floats(), f1.data(), f1.size() * sizeof(float));
  std::memcpy(chunk.column(1).floats(), f2.data(), f2.size() * sizeof(float));
  std::memcpy(chunk.column(2).ints(), i1.data(), i1.size() * sizeof(int64_t));
  std::memcpy(chunk.column(3).ints(), i2.data(), i2.size() * sizeof(int64_t));
  std::memcpy(chunk.column(4).bools(), b1.data(), b1.size());
  chunk.size = n;
  return chunk;
}

void ExpectVectorBitEqual(const Vector& a, const Vector& b, int64_t n) {
  ASSERT_EQ(a.type(), b.type());
  ASSERT_EQ(a.size(), n);
  ASSERT_EQ(b.size(), n);
  for (int64_t i = 0; i < n; ++i) {
    exec::Value va = a.GetValue(i);
    exec::Value vb = b.GetValue(i);
    switch (a.type()) {
      case DataType::kBool:
        ASSERT_EQ(va.b, vb.b) << "row " << i;
        break;
      case DataType::kInt64:
        ASSERT_EQ(va.i, vb.i) << "row " << i;
        break;
      case DataType::kFloat:
        if (std::isnan(va.f) && std::isnan(vb.f)) break;  // see ExpectBitEqual
        ASSERT_EQ(std::memcmp(&va.f, &vb.f, sizeof(float)), 0)
            << "row " << i << ": " << va.f << " vs " << vb.f;
        break;
    }
  }
}

void ExpectExprBitIdentity(const exec::Expr& e, const DataChunk& chunk) {
  Vector out_simd(e.type);
  Vector out_scalar(e.type);
  {
    simd::ScopedEnable on(true);
    ASSERT_OK(exec::EvaluateExpr(e, chunk, &out_simd));
  }
  {
    simd::ScopedEnable off(false);
    ASSERT_OK(exec::EvaluateExpr(e, chunk, &out_scalar));
  }
  out_simd.Flatten();
  out_scalar.Flatten();
  ExpectVectorBitEqual(out_simd, out_scalar, chunk.size);
}

exec::ExprPtr Col(int64_t idx, DataType t) {
  return exec::MakeColumnRef(idx, t);
}

TEST(SimdExpressionTest, ComparisonsBitIdentity) {
  const BinaryOp ops[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                          BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
  for (int64_t n : kSizes) {
    DataChunk chunk = MakeChunk(n, 100);
    for (BinaryOp op : ops) {
      SCOPED_TRACE("n=" + std::to_string(n) + " op=" +
                   std::string(exec::BinaryOpName(op)));
      // float x float (columns carry NaN/inf), int64 x int64, and a
      // column-vs-constant comparison for each.
      ExpectExprBitIdentity(*exec::MakeBinary(op, Col(0, DataType::kFloat),
                                              Col(1, DataType::kFloat)),
                            chunk);
      ExpectExprBitIdentity(*exec::MakeBinary(op, Col(2, DataType::kInt64),
                                              Col(3, DataType::kInt64)),
                            chunk);
      ExpectExprBitIdentity(
          *exec::MakeBinary(op, Col(0, DataType::kFloat),
                            exec::MakeConstant(exec::Value::Float(0.5f))),
          chunk);
      ExpectExprBitIdentity(
          *exec::MakeBinary(op, Col(2, DataType::kInt64),
                            exec::MakeConstant(exec::Value::Int64(17))),
          chunk);
      // Mixed int64 x float promotes through the AsFloats cast path.
      ExpectExprBitIdentity(*exec::MakeBinary(op, Col(2, DataType::kInt64),
                                              Col(1, DataType::kFloat)),
                            chunk);
    }
  }
}

TEST(SimdExpressionTest, ArithmeticBitIdentity) {
  const BinaryOp ops[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                          BinaryOp::kDiv};
  for (int64_t n : kSizes) {
    DataChunk chunk = MakeChunk(n, 200);
    for (BinaryOp op : ops) {
      SCOPED_TRACE("n=" + std::to_string(n) + " op=" +
                   std::string(exec::BinaryOpName(op)));
      ExpectExprBitIdentity(*exec::MakeBinary(op, Col(0, DataType::kFloat),
                                              Col(1, DataType::kFloat)),
                            chunk);
      if (op == BinaryOp::kAdd || op == BinaryOp::kSub ||
          op == BinaryOp::kMul) {
        ExpectExprBitIdentity(*exec::MakeBinary(op, Col(2, DataType::kInt64),
                                                Col(3, DataType::kInt64)),
                              chunk);
      }
    }
  }
}

TEST(SimdExpressionTest, CaseAndCastBitIdentity) {
  for (int64_t n : kSizes) {
    DataChunk chunk = MakeChunk(n, 300);
    // CASE WHEN f0 > 0 THEN f0 * 2 WHEN i0 > 10 THEN f1 ELSE -1.0 END
    std::vector<exec::ExprPtr> parts;
    parts.push_back(exec::MakeBinary(BinaryOp::kGt, Col(0, DataType::kFloat),
                                     exec::MakeConstant(exec::Value::Float(0))));
    parts.push_back(exec::MakeBinary(BinaryOp::kMul, Col(0, DataType::kFloat),
                                     exec::MakeConstant(exec::Value::Float(2))));
    parts.push_back(exec::MakeBinary(BinaryOp::kGt, Col(2, DataType::kInt64),
                                     exec::MakeConstant(exec::Value::Int64(10))));
    parts.push_back(Col(1, DataType::kFloat));
    parts.push_back(exec::MakeConstant(exec::Value::Float(-1.0f)));
    ExpectExprBitIdentity(*exec::MakeCase(std::move(parts)), chunk);

    // Casts exercise the typed-pointer AsFloats path.
    ExpectExprBitIdentity(*exec::MakeCast(Col(2, DataType::kInt64),
                                          DataType::kFloat),
                          chunk);
    ExpectExprBitIdentity(*exec::MakeCast(Col(4, DataType::kBool),
                                          DataType::kFloat),
                          chunk);
  }
}

// ---------------------------------------------------------------------------
// Selection-mask kernels (exec/expression.h)

TEST(SimdMaskTest, AndMaskCompareConstBitIdentity) {
  const BinaryOp ops[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                          BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
  for (int64_t n : kSizes) {
    auto f = MakeFloats(n, 7);
    auto x = MakeInts(n, 8);
    auto m0 = MakeBools(n, 9);
    for (BinaryOp op : ops) {
      for (float c : {0.5f, 0.0f, kNan}) {
        std::vector<uint8_t> ms, mv;
        {
          simd::ScopedEnable on(true);
          mv = m0;
          exec::AndMaskCompareConstFloat(op, f.data(), c, n, mv.data());
        }
        {
          simd::ScopedEnable off(false);
          ms = m0;
          exec::AndMaskCompareConstFloat(op, f.data(), c, n, ms.data());
        }
        ASSERT_EQ(mv, ms) << "float op=" << exec::BinaryOpName(op)
                          << " c=" << c << " n=" << n;
      }
      for (int64_t c : {int64_t{0}, int64_t{17}, int64_t{-1000}}) {
        std::vector<uint8_t> ms, mv;
        {
          simd::ScopedEnable on(true);
          mv = m0;
          exec::AndMaskCompareConstInt64(op, x.data(), c, n, mv.data());
        }
        {
          simd::ScopedEnable off(false);
          ms = m0;
          exec::AndMaskCompareConstInt64(op, x.data(), c, n, ms.data());
        }
        ASSERT_EQ(mv, ms) << "int64 op=" << exec::BinaryOpName(op)
                          << " c=" << c << " n=" << n;
      }
    }
  }
}

TEST(SimdMaskTest, AppendMaskIndicesMatchesNaiveScan) {
  for (int64_t n : kSizes) {
    auto mask = MakeBools(n, 77);
    std::vector<int32_t> naive;
    for (int64_t i = 0; i < n; ++i) {
      if (mask[static_cast<size_t>(i)]) naive.push_back(static_cast<int32_t>(i) + 5);
    }
    std::vector<int32_t> got_simd, got_scalar;
    {
      simd::ScopedEnable on(true);
      exec::AppendMaskIndices(mask.data(), n, 5, &got_simd);
    }
    {
      simd::ScopedEnable off(false);
      exec::AppendMaskIndices(mask.data(), n, 5, &got_scalar);
    }
    EXPECT_EQ(got_simd, naive) << "n=" << n;
    EXPECT_EQ(got_scalar, naive) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Gather kernels (exec/gather.cc)

std::shared_ptr<const SelectionVector> MakeSelection(int64_t src_n,
                                                     int64_t out_n,
                                                     uint64_t seed) {
  Random rng(seed);
  std::vector<int32_t> idx(static_cast<size_t>(out_n));
  for (int64_t i = 0; i < out_n; ++i) {
    idx[static_cast<size_t>(i)] =
        static_cast<int32_t>(rng.NextUint64(static_cast<uint64_t>(src_n)));
  }
  return std::make_shared<const SelectionVector>(std::move(idx));
}

Vector MakeColumn(DataType type, const void* data, int64_t n, size_t elem) {
  Vector v(type);
  v.Resize(n);
  void* dst = type == DataType::kFloat
                  ? static_cast<void*>(v.floats())
                  : type == DataType::kInt64 ? static_cast<void*>(v.ints())
                                             : static_cast<void*>(v.bools());
  std::memcpy(dst, data, static_cast<size_t>(n) * elem);
  return v;
}

TEST(SimdGatherTest, GatherToFloatBitIdentity) {
  for (int64_t n : kSizes) {
    const int64_t src_n = n + 16;
    auto f = MakeFloats(src_n, 21);
    auto x = MakeInts(src_n, 22);
    auto b = MakeBools(src_n, 23);
    auto sel = MakeSelection(src_n, n, 24);

    std::vector<Vector> inputs;
    inputs.push_back(MakeColumn(DataType::kFloat, f.data(), src_n, sizeof(float)));
    inputs.push_back(MakeColumn(DataType::kInt64, x.data(), src_n, sizeof(int64_t)));
    inputs.push_back(MakeColumn(DataType::kBool, b.data(), src_n, sizeof(uint8_t)));

    for (Vector& base : inputs) {
      for (bool selected : {false, true}) {
        Vector input = selected ? base.WithSelection(sel)
                                : Vector::View(base.type(), base.buffer(), 0, n);
        std::vector<float> out_simd, out_scalar;
        RunBothModes(
            [&](std::vector<float>* out) {
              out->assign(static_cast<size_t>(n), -99.0f);
              exec::GatherToFloat(input, out->data());
            },
            &out_simd, &out_scalar);
        SCOPED_TRACE("type=" + std::to_string(static_cast<int>(base.type())) +
                     " selected=" + std::to_string(selected) + " n=" +
                     std::to_string(n));
        ExpectBitEqual(out_simd, out_scalar);

        const int64_t stride = 3;
        RunBothModes(
            [&](std::vector<float>* out) {
              out->assign(static_cast<size_t>(n * stride), -99.0f);
              exec::GatherToFloatStrided(input, out->data(), stride);
            },
            &out_simd, &out_scalar);
        ExpectBitEqual(out_simd, out_scalar);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The simd.h primitives themselves

TEST(SimdLayerTest, MaskRoundTrip) {
  for (uint32_t bits = 0; bits < 256; ++bits) {
    simd::Mask8 m = simd::Mask8::FromBits(static_cast<uint8_t>(bits));
    uint8_t bytes[simd::kWidth];
    m.StoreBytes(bytes);
    simd::Mask8 back = simd::Mask8::FromBytes(bytes);
    EXPECT_EQ(back.bits, m.bits);
    int count = 0;
    for (uint8_t byte : bytes) count += byte != 0;
    EXPECT_EQ(count, m.CountTrue());
    EXPECT_EQ(m.AnyTrue(), bits != 0);
    EXPECT_EQ(m.AllTrue(), bits == 255);
  }
}

TEST(SimdLayerTest, RuntimeToggle) {
  const bool initial = simd::Enabled();
  {
    simd::ScopedEnable off(false);
    EXPECT_FALSE(simd::UseSimd());
    {
      simd::ScopedEnable on(true);
      EXPECT_EQ(simd::UseSimd(), simd::kCompiled);
    }
    EXPECT_FALSE(simd::UseSimd());
  }
  EXPECT_EQ(simd::Enabled(), initial);
}

}  // namespace
}  // namespace indbml
