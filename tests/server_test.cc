// Tests of the serving stack (src/server/): session submit/cancel over the
// shared executor, the prepared-statement plan cache (hit/miss/eviction and
// catalog-version invalidation), the process-wide SharedModelRegistry
// (build-once sharing, invalidation on model redeploy), admission control,
// and result identity with the plain QueryEngine path.

#include "server/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchlib/workloads.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "mltosql/mltosql.h"
#include "modeljoin/model_registry.h"
#include "modeljoin/register.h"
#include "nn/model.h"
#include "nn/model_meta.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using testutil::I;

int64_t CounterValue(const std::string& name) {
  return metrics::Registry::Global().counter(name)->value();
}

void ExpectRowIdentical(const exec::QueryResult& got,
                        const exec::QueryResult& want) {
  ASSERT_EQ(got.num_rows, want.num_rows);
  ASSERT_EQ(got.names.size(), want.names.size());
  for (int64_t r = 0; r < want.num_rows; ++r) {
    for (size_t c = 0; c < want.names.size(); ++c) {
      EXPECT_EQ(got.GetValue(r, static_cast<int64_t>(c)).ToString(),
                want.GetValue(r, static_cast<int64_t>(c)).ToString())
          << "row " << r << " col " << c;
    }
  }
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { modeljoin::SharedModelRegistry::Global().Clear(); }

  static std::unique_ptr<server::QueryServer> MakeServer(
      server::QueryServer::Options options = {}) {
    auto srv = std::make_unique<server::QueryServer>(options);
    modeljoin::RegisterNativeModelJoin(srv->engine());
    return srv;
  }

  static void LoadIris(server::QueryServer* srv, int64_t rows) {
    ASSERT_OK(srv->catalog()->CreateTable(benchlib::MakeIrisTable("fact", rows)));
  }

  static void DeployDense(server::QueryServer* srv, int64_t width, int64_t depth,
                          const std::string& name) {
    ASSERT_OK_AND_ASSIGN(nn::Model model,
                         nn::MakeDenseBenchmarkModel(width, depth, 21));
    mltosql::MlToSql framework(&model, "m");
    ASSERT_OK(framework.Deploy(srv->engine()));
    srv->engine()->models()->Register(nn::MetaOf(model, name));
  }

  static std::string DenseQuery(const std::string& model) {
    return "SELECT id, prediction FROM fact MODEL JOIN m USING MODEL '" +
           model +
           "' DEVICE 'cpu' PREDICT (sepal_length, sepal_width, petal_length, "
           "petal_width)";
  }
};

TEST_F(ServerTest, SessionResultsMatchEngine) {
  auto srv = MakeServer();
  LoadIris(srv.get(), 4000);
  auto session = srv->CreateSession();
  const std::string query =
      "SELECT class, COUNT(*) AS n, AVG(sepal_length) AS avg_len FROM fact "
      "WHERE sepal_width > 2.5 GROUP BY class ORDER BY class";
  ASSERT_OK_AND_ASSIGN(auto via_session, session->ExecuteQuery(query));
  ASSERT_OK_AND_ASSIGN(auto via_engine, srv->engine()->ExecuteQuery(query));
  ExpectRowIdentical(via_session, via_engine);
  EXPECT_GT(via_session.num_rows, 0);
}

TEST_F(ServerTest, SerialPlanRunsOnExecutor) {
  auto srv = MakeServer();
  LoadIris(srv.get(), 1000);
  auto session = srv->CreateSession();
  // Global sort + limit is not parallel-safe: exercises the serial job path.
  const std::string query =
      "SELECT id, sepal_length FROM fact ORDER BY sepal_length, id LIMIT 7";
  ASSERT_OK_AND_ASSIGN(auto via_session, session->ExecuteQuery(query));
  ASSERT_OK_AND_ASSIGN(auto via_engine, srv->engine()->ExecuteQuery(query));
  ASSERT_EQ(via_session.num_rows, 7);
  ExpectRowIdentical(via_session, via_engine);
}

TEST_F(ServerTest, EmptyTableQueryKeepsSchema) {
  auto srv = MakeServer();
  ASSERT_OK(srv->catalog()->CreateTable(benchlib::MakeIrisTable("fact", 0)));
  auto session = srv->CreateSession();
  ASSERT_OK_AND_ASSIGN(auto result,
                       session->ExecuteQuery("SELECT id, class FROM fact"));
  EXPECT_EQ(result.num_rows, 0);
  ASSERT_EQ(result.names.size(), 2u);
  EXPECT_EQ(result.names[0], "id");
}

TEST_F(ServerTest, PlanCacheHitSkipsPlanning) {
  auto srv = MakeServer();
  LoadIris(srv.get(), 500);
  auto session = srv->CreateSession();
  const std::string query = "SELECT COUNT(*) AS n FROM fact";
  const int64_t hits0 = CounterValue("server.plan_cache_hits");
  const int64_t misses0 = CounterValue("server.plan_cache_misses");
  ASSERT_OK_AND_ASSIGN(auto first, session->ExecuteQuery(query));
  EXPECT_EQ(CounterValue("server.plan_cache_misses"), misses0 + 1);
  EXPECT_EQ(CounterValue("server.plan_cache_hits"), hits0);
  ASSERT_OK_AND_ASSIGN(auto second, session->ExecuteQuery(query));
  EXPECT_EQ(CounterValue("server.plan_cache_hits"), hits0 + 1);
  EXPECT_EQ(CounterValue("server.plan_cache_misses"), misses0 + 1);
  ExpectRowIdentical(second, first);
  EXPECT_EQ(srv->plan_cache()->size(), 1);
}

TEST_F(ServerTest, PlanCacheEvictsLru) {
  server::QueryServer::Options options;
  options.plan_cache_capacity = 2;
  auto srv = MakeServer(options);
  LoadIris(srv.get(), 100);
  auto session = srv->CreateSession();
  const int64_t evictions0 = CounterValue("server.plan_cache_evictions");
  ASSERT_OK(session->ExecuteQuery("SELECT COUNT(*) AS n FROM fact").status());
  ASSERT_OK(session->ExecuteQuery("SELECT id FROM fact").status());
  ASSERT_OK(session->ExecuteQuery("SELECT class FROM fact").status());
  EXPECT_EQ(srv->plan_cache()->size(), 2);
  EXPECT_EQ(CounterValue("server.plan_cache_evictions"), evictions0 + 1);
}

TEST_F(ServerTest, PlanCacheInvalidatedByCatalogChange) {
  auto srv = MakeServer();
  LoadIris(srv.get(), 200);
  auto session = srv->CreateSession();
  const std::string query = "SELECT COUNT(*) AS n FROM fact";
  ASSERT_OK_AND_ASSIGN(auto before, session->ExecuteQuery(query));
  EXPECT_EQ(before.GetValue(0, 0).i, 200);
  // Replacing the table bumps the catalog version: the cached plan (bound to
  // the old table) must not be reused.
  srv->catalog()->CreateOrReplaceTable(benchlib::MakeIrisTable("fact", 300));
  const int64_t misses0 = CounterValue("server.plan_cache_misses");
  ASSERT_OK_AND_ASSIGN(auto after, session->ExecuteQuery(query));
  EXPECT_EQ(after.GetValue(0, 0).i, 300);
  EXPECT_EQ(CounterValue("server.plan_cache_misses"), misses0 + 1);
}

TEST_F(ServerTest, PlanCacheKeyedOnOptionsFingerprint) {
  auto srv = MakeServer();
  LoadIris(srv.get(), 100);
  auto session = srv->CreateSession();
  const std::string query = "SELECT COUNT(*) AS n FROM fact";
  ASSERT_OK(session->ExecuteQuery(query).status());
  auto opts = session->options();
  opts.optimizer.predicate_pushdown = !opts.optimizer.predicate_pushdown;
  session->set_options(opts);
  const int64_t misses0 = CounterValue("server.plan_cache_misses");
  ASSERT_OK(session->ExecuteQuery(query).status());
  EXPECT_EQ(CounterValue("server.plan_cache_misses"), misses0 + 1)
      << "different options must not share a cached plan";
  EXPECT_EQ(srv->plan_cache()->size(), 2);
}

TEST_F(ServerTest, SharedModelBuiltExactlyOnceAcrossSessions) {
  auto srv = MakeServer();
  LoadIris(srv.get(), 2000);
  DeployDense(srv.get(), 16, 3, "dense16");
  const std::string query = DenseQuery("dense16");

  const int64_t builds0 = CounterValue("modeljoin.registry_builds");
  // The reference runs through the same registry (server engines default to
  // shared models), so it participates in the build-once accounting.
  ASSERT_OK_AND_ASSIGN(auto reference, srv->engine()->ExecuteQuery(query));
  constexpr int kSessions = 4;
  std::vector<std::unique_ptr<server::Session>> sessions;
  std::vector<std::shared_ptr<server::QueryHandle>> handles;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(srv->CreateSession());
    ASSERT_OK_AND_ASSIGN(auto handle, sessions.back()->Submit(query));
    handles.push_back(std::move(handle));
  }
  for (auto& handle : handles) {
    ASSERT_OK_AND_ASSIGN(auto result, handle->Wait());
    ExpectRowIdentical(result, reference);
  }
  EXPECT_EQ(CounterValue("modeljoin.registry_builds"), builds0 + 1)
      << "concurrent sessions over one model must share one build";
}

TEST_F(ServerTest, RegistryInvalidatedOnModelRedeploy) {
  auto srv = MakeServer();
  LoadIris(srv.get(), 500);
  DeployDense(srv.get(), 8, 2, "dense8");
  auto session = srv->CreateSession();
  const std::string query = DenseQuery("dense8");
  const int64_t builds0 = CounterValue("modeljoin.registry_builds");
  ASSERT_OK(session->ExecuteQuery(query).status());
  EXPECT_EQ(CounterValue("modeljoin.registry_builds"), builds0 + 1);
  // Redeploying replaces the model table: the registry must rebuild, not
  // serve the stale weights.
  DeployDense(srv.get(), 8, 2, "dense8");
  const int64_t invalidations0 = CounterValue("modeljoin.registry_invalidations");
  ASSERT_OK(session->ExecuteQuery(query).status());
  EXPECT_EQ(CounterValue("modeljoin.registry_builds"), builds0 + 2);
  EXPECT_EQ(CounterValue("modeljoin.registry_invalidations"), invalidations0 + 1);
}

TEST_F(ServerTest, ModelRegisterBumpsCatalogVersion) {
  auto srv = MakeServer();
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 21));
  const int64_t v0 = srv->catalog()->version();
  srv->engine()->models()->Register(nn::MetaOf(model, "dense8"));
  EXPECT_GT(srv->catalog()->version(), v0)
      << "a model DEPLOY must invalidate cached plans via the catalog version";
}

TEST_F(ServerTest, CachedPlanReresolvesRedeployedModel) {
  auto srv = MakeServer();
  LoadIris(srv.get(), 300);
  DeployDense(srv.get(), 8, 2, "dense8");
  auto session = srv->CreateSession();
  const std::string query = DenseQuery("dense8");
  ASSERT_OK(session->ExecuteQuery(query).status());  // plan now cached

  // Redeploy a *different* model under the same name. The cached plan was
  // bound against the old metadata and weights; reusing it would serve the
  // old model's predictions.
  DeployDense(srv.get(), 16, 3, "dense8");
  const int64_t misses0 = CounterValue("server.plan_cache_misses");
  ASSERT_OK_AND_ASSIGN(auto after, session->ExecuteQuery(query));
  EXPECT_EQ(CounterValue("server.plan_cache_misses"), misses0 + 1)
      << "the redeploy must invalidate the cached plan";
  // The re-resolved plan serves the new model: identical to a fresh
  // engine-path run against the current deployment.
  ASSERT_OK_AND_ASSIGN(auto reference, srv->engine()->ExecuteQuery(query));
  ExpectRowIdentical(after, reference);
}

TEST_F(ServerTest, CancelDuringInferenceWaitReturnsPromptly) {
  server::QueryServer::Options options;
  options.worker_threads = 4;
  auto srv = MakeServer(options);
  // Big enough that inference is still mid-flight when Cancel lands.
  LoadIris(srv.get(), 300000);
  DeployDense(srv.get(), 16, 3, "dense16");
  auto session = srv->CreateSession();
  auto opts = session->options();
  // A pathological window: uncancelled, every coalescing wait could sit for
  // 2 s. Cancel must cut through it.
  opts.inference.batch_window_us = 2'000'000;
  opts.morsel_rows = 512;
  session->set_options(opts);

  Stopwatch watch;
  ASSERT_OK_AND_ASSIGN(auto handle, session->Submit(DenseQuery("dense16")));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  handle->Cancel();
  auto result = handle->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_LT(watch.ElapsedMicros(), 1'500'000)
      << "cancellation must interrupt the batcher wait, not sit it out";

  // The executor and the batcher must keep serving afterwards.
  ASSERT_OK_AND_ASSIGN(auto after, session->ExecuteQuery(DenseQuery("dense16")));
  EXPECT_EQ(after.num_rows, 300000);
}

TEST_F(ServerTest, CancelAbortsMidFlightWithoutWedgingExecutor) {
  server::QueryServer::Options options;
  options.worker_threads = 2;
  auto srv = MakeServer(options);
  // Big enough that the scan cannot finish before Cancel lands; tiny morsels
  // maximise claim checks.
  LoadIris(srv.get(), 400000);
  auto session = srv->CreateSession();
  auto opts = session->options();
  opts.morsel_rows = 64;
  session->set_options(opts);

  // Submit-then-cancel races against query completion: if this thread is
  // descheduled between the two calls (parallel test runs on a loaded
  // machine), the query can finish first and return OK. That outcome is
  // legal — retry until a cancellation lands mid-flight.
  bool cancelled = false;
  for (int attempt = 0; attempt < 10 && !cancelled; ++attempt) {
    ASSERT_OK_AND_ASSIGN(
        auto handle,
        session->Submit("SELECT class, SUM(sepal_length) AS s FROM fact "
                        "GROUP BY class"));
    handle->Cancel();
    auto result = handle->Wait();
    if (result.ok()) continue;  // completed before the cancel landed
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << result.status().ToString();
    cancelled = true;
  }
  EXPECT_TRUE(cancelled) << "cancel never aborted the query in 10 attempts";

  // The executor must keep serving after a cancellation.
  ASSERT_OK_AND_ASSIGN(auto after,
                       session->ExecuteQuery("SELECT COUNT(*) AS n FROM fact"));
  EXPECT_EQ(after.GetValue(0, 0).i, 400000);
}

TEST_F(ServerTest, AdmissionControlRejectsWhenSaturated) {
  server::QueryServer::Options options;
  options.worker_threads = 1;
  options.max_inflight_queries = 1;
  options.max_queued_queries = 0;
  auto srv = MakeServer(options);
  LoadIris(srv.get(), 100);
  auto session = srv->CreateSession();

  // Deterministically occupy the only in-flight slot: a job whose factory
  // blocks until the gate opens.
  Mutex gate_mu;
  CondVar gate_cv;
  bool gate_open = false;
  server::JobSpec blocker;
  blocker.serial = true;
  blocker.factory = [&](int) -> Result<exec::OperatorPtr> {
    MutexLock lock(gate_mu);
    while (!gate_open) gate_cv.Wait(gate_mu);
    return Status::InvalidArgument("blocker done");
  };
  ASSERT_OK_AND_ASSIGN(auto slow, srv->executor()->Submit(std::move(blocker)));

  const int64_t rejects0 = CounterValue("server.admission_rejects");
  auto second = session->Submit("SELECT COUNT(*) AS n FROM fact");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted)
      << second.status().ToString();
  EXPECT_EQ(CounterValue("server.admission_rejects"), rejects0 + 1);

  {
    MutexLock lock(gate_mu);
    gate_open = true;
  }
  gate_cv.NotifyAll();
  EXPECT_FALSE(slow->Wait().ok());  // the blocker reports its sentinel error
  // The slot is free again: the same query is now admitted.
  ASSERT_OK_AND_ASSIGN(auto after,
                       session->ExecuteQuery("SELECT COUNT(*) AS n FROM fact"));
  EXPECT_EQ(after.GetValue(0, 0).i, 100);
}

TEST_F(ServerTest, QueuedQueryRunsAfterInflightFinishes) {
  server::QueryServer::Options options;
  options.worker_threads = 2;
  options.max_inflight_queries = 1;
  options.max_queued_queries = 8;
  auto srv = MakeServer(options);
  LoadIris(srv.get(), 50000);
  auto session = srv->CreateSession();
  ASSERT_OK_AND_ASSIGN(
      auto first, session->Submit("SELECT SUM(sepal_length) AS s FROM fact"));
  ASSERT_OK_AND_ASSIGN(auto second,
                       session->Submit("SELECT COUNT(*) AS n FROM fact"));
  ASSERT_OK_AND_ASSIGN(auto r1, first->Wait());
  ASSERT_OK_AND_ASSIGN(auto r2, second->Wait());
  EXPECT_GT(r1.num_rows, 0);
  EXPECT_EQ(r2.GetValue(0, 0).i, 50000);
}

TEST_F(ServerTest, SessionOptionSnapshotIsolatesRunningQueries) {
  auto srv = MakeServer();
  LoadIris(srv.get(), 100000);
  auto session = srv->CreateSession();
  ASSERT_OK_AND_ASSIGN(
      auto handle, session->Submit("SELECT SUM(petal_width) AS s FROM fact"));
  // Flipping options mid-flight must not affect the submitted query.
  auto opts = session->options();
  opts.fused_pipeline = false;
  opts.morsel_rows = 128;
  session->set_options(opts);
  ASSERT_OK_AND_ASSIGN(auto result, handle->Wait());
  EXPECT_EQ(result.num_rows, 1);
}

TEST(SharedExecutorTest, PriorityClampAndDone) {
  server::QueryServer srv;
  auto session = srv.CreateSession();
  session->set_priority(-3);
  EXPECT_EQ(session->priority(), 1);
  session->set_priority(4);
  EXPECT_EQ(session->priority(), 4);
}

}  // namespace
}  // namespace indbml
