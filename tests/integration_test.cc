#include <gtest/gtest.h>

#include <cmath>

#include "benchlib/workloads.h"
#include "common/random.h"
#include "exec/scan.h"
#include "integration/capi_operator.h"
#include "integration/external_client.h"
#include "integration/udf.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using exec::DataType;
using exec::ExecContext;

std::shared_ptr<const std::vector<uint8_t>> Serialize(const nn::Model& model) {
  auto bytes = model.SaveToBytes();
  INDBML_CHECK(bytes.ok());
  return std::make_shared<const std::vector<uint8_t>>(std::move(bytes).ValueOrDie());
}

std::unique_ptr<exec::TableScanOperator> ScanAll(storage::TablePtr t) {
  std::vector<int> cols;
  for (int i = 0; i < t->num_columns(); ++i) cols.push_back(i);
  return std::make_unique<exec::TableScanOperator>(
      t, storage::PartitionRange{0, t->num_rows()}, cols,
      std::vector<exec::ScanPredicate>{});
}

// ---------- Raven-like C-API operator ----------

TEST(CApiOperatorTest, MatchesReference) {
  auto fact = benchlib::MakeIrisTable("fact", 2500);
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 31));

  integration::CApiInferenceOperator op(ScanAll(fact), Serialize(model), "cpu",
                                        {1, 2, 3, 4}, {"prediction"});
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&op, &ctx));
  ASSERT_EQ(result.num_rows, 2500);
  ASSERT_EQ(result.names.back(), "prediction");

  nn::Tensor x = nn::Tensor::Matrix(2500, 4);
  for (int64_t r = 0; r < 2500; ++r) {
    for (int c = 0; c < 4; ++c) {
      x.At(r, c) = fact->column(c + 1).GetFloat(r);
    }
  }
  ASSERT_OK_AND_ASSIGN(nn::Tensor expected, model.Predict(x));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  for (int64_t r = 0; r < 2500; ++r) {
    ASSERT_NEAR(result.GetValue(r, pred_col).f, expected[r], 1e-4);
  }
  EXPECT_GT(op.SessionMemoryBytes(), 0);
}

TEST(CApiOperatorTest, RejectsWrongArity) {
  auto fact = benchlib::MakeIrisTable("fact", 10);
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2));
  integration::CApiInferenceOperator op(ScanAll(fact), Serialize(model), "cpu",
                                        {1, 2}, {"prediction"});
  ExecContext ctx;
  auto result = DrainOperator(&op, &ctx);
  EXPECT_FALSE(result.ok());
}

// ---------- UDF framework + interpreted runtime ----------

TEST(UdfTest, InterpretedUdfMatchesReferenceAndTracksStats) {
  auto fact = benchlib::MakeIrisTable("fact", 1500);
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 41));
  auto stats = std::make_shared<integration::InterpreterStats>();
  ASSERT_OK_AND_ASSIGN(auto udf, integration::MakeInterpretedInferenceUdf(
                                     Serialize(model), 4, 1, stats));

  integration::UdfOperator op(ScanAll(fact), udf, {1, 2, 3, 4}, {"prediction"},
                              {DataType::kFloat});
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&op, &ctx));
  ASSERT_EQ(result.num_rows, 1500);

  // 1500 rows / 1024-vector chunks = 2 UDF calls.
  EXPECT_EQ(stats->calls, 2);
  EXPECT_EQ(stats->values_boxed, 1500 * 4 + 1500);
  EXPECT_GT(stats->modeled_overhead_seconds, 0);

  nn::Tensor x = nn::Tensor::Matrix(1500, 4);
  for (int64_t r = 0; r < 1500; ++r) {
    for (int c = 0; c < 4; ++c) x.At(r, c) = fact->column(c + 1).GetFloat(r);
  }
  ASSERT_OK_AND_ASSIGN(nn::Tensor expected, model.Predict(x));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  for (int64_t r = 0; r < 1500; ++r) {
    ASSERT_NEAR(result.GetValue(r, pred_col).f, expected[r], 1e-4);
  }
}

TEST(UdfTest, CustomUdfThroughFramework) {
  // The UDF framework is generic, not inference-specific: a plain vectorized
  // function computing a * 2 + b.
  auto fact = testutil::MakeTable(
      "t", {{"a", DataType::kFloat}, {"b", DataType::kFloat}},
      {{testutil::F(1), testutil::F(10)}, {testutil::F(2), testutil::F(20)}});
  integration::VectorizedUdf udf =
      [](const exec::DataChunk& input, const std::vector<int>& args,
         std::vector<exec::Vector>* outputs) -> Status {
    exec::Vector out(DataType::kFloat);
    out.Resize(input.size);
    for (int64_t r = 0; r < input.size; ++r) {
      out.floats()[r] = input.column(args[0]).floats()[r] * 2 +
                        input.column(args[1]).floats()[r];
    }
    outputs->push_back(std::move(out));
    return Status::OK();
  };
  integration::UdfOperator op(ScanAll(fact), udf, {0, 1}, {"c"},
                              {DataType::kFloat});
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&op, &ctx));
  EXPECT_FLOAT_EQ(result.GetValue(0, 2).f, 12.0f);
  EXPECT_FLOAT_EQ(result.GetValue(1, 2).f, 24.0f);
}

TEST(UdfTest, RejectsEmptyModel) {
  auto empty = std::make_shared<const std::vector<uint8_t>>();
  EXPECT_FALSE(integration::MakeInterpretedInferenceUdf(empty, 4, 1).ok());
}

// ---------- external client ----------

TEST(ExternalClientTest, RoundTripMatchesReference) {
  sql::QueryEngine engine;
  auto fact = benchlib::MakeIrisTable("fact", 3000);
  ASSERT_OK(engine.catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 51));

  integration::TransferStats stats;
  ASSERT_OK_AND_ASSIGN(
      auto result,
      integration::RunExternalInference(
          &engine, "fact", "id",
          {"sepal_length", "sepal_width", "petal_length", "petal_width"}, model,
          "cpu", &stats));
  ASSERT_EQ(result.num_rows, 3000);
  EXPECT_EQ(stats.rows, 3000);
  // 3000 rows x (8-byte id + 4 floats) out, (id + 1 float) back.
  EXPECT_EQ(stats.bytes_to_client, 3000 * (8 + 16));
  EXPECT_EQ(stats.bytes_to_server, 3000 * (8 + 4));
  EXPECT_GT(stats.client_peak_bytes, 3000 * 16);
  EXPECT_GT(stats.modeled_overhead_seconds, 0);

  nn::Tensor x = nn::Tensor::Matrix(3000, 4);
  for (int64_t r = 0; r < 3000; ++r) {
    for (int c = 0; c < 4; ++c) x.At(r, c) = fact->column(c + 1).GetFloat(r);
  }
  ASSERT_OK_AND_ASSIGN(nn::Tensor expected, model.Predict(x));
  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  for (int64_t r = 0; r < result.num_rows; ++r) {
    int64_t id = result.GetValue(r, id_col).i;
    ASSERT_NEAR(result.GetValue(r, pred_col).f, expected[id], 1e-4);
  }
}

TEST(ExternalClientTest, MultiOutputModel) {
  sql::QueryEngine engine;
  ASSERT_OK(engine.catalog()->CreateTable(benchlib::MakeIrisTable("fact", 100)));
  nn::ModelBuilder builder(4);
  builder.AddDense(6, nn::Activation::kTanh).AddDense(3, nn::Activation::kSigmoid);
  ASSERT_OK_AND_ASSIGN(nn::Model model, builder.Build(2));

  ASSERT_OK_AND_ASSIGN(
      auto result,
      integration::RunExternalInference(
          &engine, "fact", "id",
          {"sepal_length", "sepal_width", "petal_length", "petal_width"}, model,
          "cpu"));
  EXPECT_EQ(result.num_rows, 100);
  EXPECT_EQ(result.names.size(), 4u);  // id + 3 predictions
  EXPECT_TRUE(result.ColumnIndex("prediction_2").ok());
}

TEST(ExternalClientTest, RejectsWrongColumns) {
  sql::QueryEngine engine;
  ASSERT_OK(engine.catalog()->CreateTable(benchlib::MakeIrisTable("fact", 10)));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 1));
  auto result = integration::RunExternalInference(&engine, "fact", "id",
                                                  {"sepal_length"}, model, "cpu");
  EXPECT_FALSE(result.ok());
}

TEST(ExternalClientTest, PropagatesQueryErrors) {
  sql::QueryEngine engine;  // no fact table registered
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 1));
  auto result = integration::RunExternalInference(
      &engine, "missing", "id", {"a", "b", "c", "d"}, model, "cpu");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace indbml
