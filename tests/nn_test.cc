#include "nn/model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/blas.h"
#include "nn/cost_model.h"
#include "nn/model_meta.h"
#include "common/random.h"
#include "nn/tensor.h"
#include "test_util.h"

namespace indbml {
namespace {

using nn::Activation;
using nn::Model;
using nn::ModelBuilder;
using nn::Tensor;

// ---------- miniblas ----------

/// Naive reference GEMM for validating the blocked kernel.
void NaiveGemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k, float alpha,
               const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
               float* c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        float av = ta ? a[p * lda + i] : a[i * lda + p];
        float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] = alpha * static_cast<float>(acc) + beta * c[i * ldc + j];
    }
  }
}

struct GemmCase {
  bool ta;
  bool tb;
  int64_t m, n, k;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesNaive) {
  GemmCase p = GetParam();
  indbml::Random rng(p.m * 1000 + p.n * 100 + p.k + (p.ta ? 7 : 0) + (p.tb ? 13 : 0));
  int64_t a_elems = p.m * p.k;
  int64_t b_elems = p.k * p.n;
  std::vector<float> a(static_cast<size_t>(a_elems));
  std::vector<float> b(static_cast<size_t>(b_elems));
  std::vector<float> c(static_cast<size_t>(p.m * p.n));
  std::vector<float> expected(static_cast<size_t>(p.m * p.n));
  for (auto& v : a) v = rng.NextFloat(-1, 1);
  for (auto& v : b) v = rng.NextFloat(-1, 1);
  for (size_t i = 0; i < c.size(); ++i) {
    c[i] = rng.NextFloat(-1, 1);
    expected[i] = c[i];
  }
  int64_t lda = p.ta ? p.m : p.k;
  int64_t ldb = p.tb ? p.k : p.n;
  blas::Sgemm(p.ta, p.tb, p.m, p.n, p.k, 0.7f, a.data(), lda, b.data(), ldb, 0.3f,
              c.data(), p.n);
  NaiveGemm(p.ta, p.tb, p.m, p.n, p.k, 0.7f, a.data(), lda, b.data(), ldb, 0.3f,
            expected.data(), p.n);
  for (size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], expected[i], 1e-3) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(GemmCase{false, false, 1, 1, 1},
                      GemmCase{false, false, 3, 5, 7},
                      GemmCase{false, false, 64, 64, 64},
                      GemmCase{false, false, 100, 3, 130},
                      GemmCase{true, false, 17, 9, 23},
                      GemmCase{false, true, 9, 17, 23},
                      GemmCase{true, true, 31, 15, 8}));

TEST(BlasTest, SaxpyAndElementwise) {
  std::vector<float> x = {1, 2, 3, 4};
  std::vector<float> y = {10, 20, 30, 40};
  blas::Saxpy(4, 2.0f, x.data(), y.data());
  EXPECT_FLOAT_EQ(y[0], 12);
  EXPECT_FLOAT_EQ(y[3], 48);

  std::vector<float> z(4);
  blas::VsMul(4, x.data(), y.data(), z.data());
  EXPECT_FLOAT_EQ(z[1], 2 * 24);
  blas::VsAdd(4, x.data(), y.data(), z.data());
  EXPECT_FLOAT_EQ(z[2], 3 + 36);
}

TEST(BlasTest, Sger) {
  std::vector<float> x = {1, 2};
  std::vector<float> y = {3, 4, 5};
  std::vector<float> a(6, 1.0f);
  blas::Sger(2, 3, 2.0f, x.data(), y.data(), a.data(), 3);
  EXPECT_FLOAT_EQ(a[0], 1 + 2 * 1 * 3);
  EXPECT_FLOAT_EQ(a[5], 1 + 2 * 2 * 5);
}

TEST(BlasTest, Activations) {
  EXPECT_FLOAT_EQ(blas::ScalarRelu(-2.0f), 0.0f);
  EXPECT_FLOAT_EQ(blas::ScalarRelu(2.0f), 2.0f);
  EXPECT_NEAR(blas::ScalarSigmoid(0.0f), 0.5f, 1e-7);
  EXPECT_NEAR(blas::ScalarSigmoid(100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(blas::ScalarTanh(0.5f), std::tanh(0.5f), 1e-7);

  std::vector<float> v = {-1.0f, 0.0f, 1.0f};
  blas::VsSigmoid(3, v.data());
  EXPECT_NEAR(v[1], 0.5f, 1e-7);
}

// ---------- Tensor ----------

TEST(TensorTest, ShapesAndAccess) {
  Tensor t = Tensor::Matrix(3, 4);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.size(), 12);
  t.At(2, 3) = 7.5f;
  EXPECT_FLOAT_EQ(t.At(2, 3), 7.5f);
  // Zero-initialised.
  EXPECT_FLOAT_EQ(t.At(0, 0), 0.0f);

  Tensor v = Tensor::Vector(5);
  v[4] = 1.0f;
  EXPECT_FLOAT_EQ(v[4], 1.0f);
}

TEST(TensorTest, SharedStorage) {
  Tensor a = Tensor::Matrix(2, 2);
  Tensor b = a;  // shares the buffer
  b.At(0, 0) = 3.0f;
  EXPECT_FLOAT_EQ(a.At(0, 0), 3.0f);
}

// ---------- Model construction ----------

TEST(ModelBuilderTest, DenseDimensions) {
  ModelBuilder builder(4);
  builder.AddDense(8, Activation::kRelu).AddDense(2, Activation::kLinear);
  ASSERT_OK_AND_ASSIGN(Model model, builder.Build(1));
  EXPECT_EQ(model.input_width(), 4);
  EXPECT_EQ(model.output_dim(), 2);
  EXPECT_EQ(model.layers().size(), 2u);
  EXPECT_EQ(model.NumParameters(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(ModelBuilderTest, LstmDimensions) {
  ModelBuilder builder = ModelBuilder::TimeSeries(3, 1);
  builder.AddLstm(6).AddDense(1, Activation::kLinear);
  ASSERT_OK_AND_ASSIGN(Model model, builder.Build(1));
  EXPECT_EQ(model.input_width(), 3);
  EXPECT_EQ(model.output_dim(), 1);
  // LSTM: 4 gates x (1x6 kernel + 6x6 recurrent + 6 bias) + dense 6x1+1.
  EXPECT_EQ(model.NumParameters(), 4 * (6 + 36 + 6) + 7);
}

TEST(ModelBuilderTest, RejectsLstmAfterDense) {
  ModelBuilder builder(4);
  builder.AddDense(4, Activation::kRelu).AddLstm(4);
  auto result = builder.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
}

TEST(ModelBuilderTest, RejectsMultiTimestepWithoutLstm) {
  ModelBuilder builder = ModelBuilder::TimeSeries(3, 1);
  builder.AddDense(4, Activation::kRelu);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(ModelBuilderTest, RejectsEmptyAndInvalid) {
  EXPECT_FALSE(ModelBuilder(0).AddDense(1, Activation::kLinear).Build().ok());
  EXPECT_FALSE(ModelBuilder(4).Build().ok());
  EXPECT_FALSE(ModelBuilder(4).AddDense(0, Activation::kLinear).Build().ok());
}

// ---------- Inference reference ----------

TEST(ModelPredictTest, HandComputedDense) {
  // 2 inputs -> 1 unit, weights [2, 3], bias 1, relu.
  ModelBuilder builder(2);
  builder.AddDense(1, Activation::kRelu);
  ASSERT_OK_AND_ASSIGN(Model model, builder.Build(1));
  auto& dense = model.mutable_layers()[0].dense;
  dense.kernel.At(0, 0) = 2.0f;
  dense.kernel.At(1, 0) = 3.0f;
  dense.bias[0] = 1.0f;

  Tensor x = Tensor::Matrix(2, 2);
  x.At(0, 0) = 1.0f;
  x.At(0, 1) = 1.0f;   // 2 + 3 + 1 = 6
  x.At(1, 0) = -4.0f;
  x.At(1, 1) = 1.0f;   // -8 + 3 + 1 = -4 -> relu 0
  ASSERT_OK_AND_ASSIGN(Tensor y, model.Predict(x));
  EXPECT_FLOAT_EQ(y.At(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(y.At(1, 0), 0.0f);
}

TEST(ModelPredictTest, HandComputedLstmSingleUnit) {
  // One LSTM unit, one time step, all weights set manually; compare with
  // the Keras equations computed by hand.
  ModelBuilder builder = ModelBuilder::TimeSeries(1, 1);
  builder.AddLstm(1);
  ASSERT_OK_AND_ASSIGN(Model model, builder.Build(1));
  auto& lstm = model.mutable_layers()[0].lstm;
  float w[4] = {0.5f, -0.3f, 0.8f, 0.2f};
  for (int g = 0; g < 4; ++g) {
    lstm.kernel[g].At(0, 0) = w[g];
    lstm.recurrent[g].At(0, 0) = 0.0f;  // irrelevant for a single step
    lstm.bias[g][0] = 0.1f;
  }
  float xv = 0.7f;
  Tensor x = Tensor::Matrix(1, 1);
  x.At(0, 0) = xv;
  ASSERT_OK_AND_ASSIGN(Tensor y, model.Predict(x));

  auto sig = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
  float i = sig(xv * w[0] + 0.1f);
  float c_tilde = std::tanh(xv * w[2] + 0.1f);
  float o = sig(xv * w[3] + 0.1f);
  float c = i * c_tilde;  // first step: no forget contribution
  float expected = o * std::tanh(c);
  EXPECT_NEAR(y.At(0, 0), expected, 1e-6);
}

TEST(ModelPredictTest, RejectsWrongInputShape) {
  ASSERT_OK_AND_ASSIGN(Model model, nn::MakeDenseBenchmarkModel(4, 1));
  Tensor wrong = Tensor::Matrix(3, 7);
  EXPECT_FALSE(model.Predict(wrong).ok());
}

TEST(ModelPredictTest, DeterministicAcrossSeeds) {
  ASSERT_OK_AND_ASSIGN(Model a, nn::MakeDenseBenchmarkModel(8, 2, 5));
  ASSERT_OK_AND_ASSIGN(Model b, nn::MakeDenseBenchmarkModel(8, 2, 5));
  Tensor x = Tensor::Matrix(1, 4);
  x.At(0, 2) = 1.5f;
  ASSERT_OK_AND_ASSIGN(Tensor ya, a.Predict(x));
  ASSERT_OK_AND_ASSIGN(Tensor yb, b.Predict(x));
  EXPECT_FLOAT_EQ(ya.At(0, 0), yb.At(0, 0));
  ASSERT_OK_AND_ASSIGN(Model c, nn::MakeDenseBenchmarkModel(8, 2, 6));
  ASSERT_OK_AND_ASSIGN(Tensor yc, c.Predict(x));
  EXPECT_NE(ya.At(0, 0), yc.At(0, 0));
}

// ---------- Serialisation ----------

TEST(ModelSerializationTest, FileRoundTrip) {
  ASSERT_OK_AND_ASSIGN(Model model, nn::MakeLstmBenchmarkModel(5, 3, 9));
  std::string path = ::testing::TempDir() + "/model_roundtrip.bin";
  ASSERT_OK(model.SaveToFile(path));
  ASSERT_OK_AND_ASSIGN(Model loaded, Model::LoadFromFile(path));
  EXPECT_EQ(loaded.timesteps(), 3);
  EXPECT_EQ(loaded.NumParameters(), model.NumParameters());

  Tensor x = Tensor::Matrix(4, 3);
  for (int64_t i = 0; i < x.size(); ++i) x[i] = 0.1f * static_cast<float>(i);
  ASSERT_OK_AND_ASSIGN(Tensor y1, model.Predict(x));
  ASSERT_OK_AND_ASSIGN(Tensor y2, loaded.Predict(x));
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
  std::remove(path.c_str());
}

TEST(ModelSerializationTest, BytesRoundTrip) {
  ASSERT_OK_AND_ASSIGN(Model model, nn::MakeDenseBenchmarkModel(16, 3, 4));
  ASSERT_OK_AND_ASSIGN(auto bytes, model.SaveToBytes());
  ASSERT_OK_AND_ASSIGN(Model loaded, Model::LoadFromBytes(bytes.data(), bytes.size()));
  EXPECT_EQ(loaded.NumParameters(), model.NumParameters());
}

TEST(ModelSerializationTest, RejectsCorruptData) {
  std::vector<uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(Model::LoadFromBytes(garbage.data(), garbage.size()).ok());
  EXPECT_FALSE(Model::LoadFromFile("/nonexistent/path").ok());
}

// ---------- Meta / cost model ----------

TEST(ModelMetaTest, MetaOfDense) {
  ASSERT_OK_AND_ASSIGN(Model model, nn::MakeDenseBenchmarkModel(32, 4));
  nn::ModelMeta meta = nn::MetaOf(model, "m");
  EXPECT_EQ(meta.layers.size(), 5u);
  EXPECT_EQ(meta.input_width(), 4);
  EXPECT_EQ(meta.output_dim(), 1);
  EXPECT_EQ(meta.layers[0].activation, Activation::kRelu);
  EXPECT_EQ(meta.layers[4].activation, Activation::kLinear);
}

TEST(CostModelTest, LinearInTuplesAndMonotoneInWidth) {
  ASSERT_OK_AND_ASSIGN(Model small, nn::MakeDenseBenchmarkModel(32, 4));
  ASSERT_OK_AND_ASSIGN(Model big, nn::MakeDenseBenchmarkModel(128, 4));
  nn::CostEstimate cs = nn::EstimateCost(small);
  nn::CostEstimate cb = nn::EstimateCost(big);
  EXPECT_GT(cb.flops_per_tuple, cs.flops_per_tuple);
  EXPECT_GT(cb.relational_rows_per_tuple, cs.relational_rows_per_tuple);

  nn::CostCoefficients coeff;
  double t1 = nn::PredictSeconds(cs, coeff, 1000) - coeff.fixed_seconds;
  double t2 = nn::PredictSeconds(cs, coeff, 2000) - coeff.fixed_seconds;
  EXPECT_NEAR(t2, 2 * t1, 1e-12);
}

TEST(CostModelTest, QuadraticParameterGrowth) {
  // §6.2.1: "width 512 depth 8 having ~1.8e6 parameters, width 128 ~115k".
  ASSERT_OK_AND_ASSIGN(Model w512, nn::MakeDenseBenchmarkModel(512, 8));
  ASSERT_OK_AND_ASSIGN(Model w128, nn::MakeDenseBenchmarkModel(128, 8));
  EXPECT_NEAR(static_cast<double>(w512.NumParameters()), 1.8e6, 0.2e6);
  EXPECT_NEAR(static_cast<double>(w128.NumParameters()), 115000, 15000);
}

TEST(CostModelTest, Calibration) {
  ASSERT_OK_AND_ASSIGN(Model model, nn::MakeDenseBenchmarkModel(32, 2));
  nn::CostEstimate estimate = nn::EstimateCost(model);
  nn::CostCoefficients coeff =
      nn::CalibrateFromMeasurement(estimate, 1000, 0.5, /*relational=*/false);
  EXPECT_NEAR(nn::PredictSeconds(estimate, coeff, 1000), 0.5, 1e-9);
  EXPECT_NEAR(nn::PredictSeconds(estimate, coeff, 3000), 1.5, 1e-9);
}

}  // namespace
}  // namespace indbml
