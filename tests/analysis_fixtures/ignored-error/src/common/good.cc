// Fixture: justified IgnoreError() calls — same line or the line above.
#include "common/status.h"

namespace indbml {

void Close(Status s, Status* ptr) {
  s.IgnoreError();  // best-effort cleanup: the file is already gone
  // Shutdown path: the sink this error would be reported to is destroyed.
  ptr->IgnoreError();
}

}  // namespace indbml
