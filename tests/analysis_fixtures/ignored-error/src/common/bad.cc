// Fixture: IgnoreError() without a justification comment.
#include "common/status.h"

namespace indbml {

void Close(Status s, Status* ptr) {
  s.IgnoreError();  // ^find
  ptr->IgnoreError();  // ^find
}

}  // namespace indbml
