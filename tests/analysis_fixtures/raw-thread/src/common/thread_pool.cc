// Fixture: the pool implementation itself is allowlisted.
#include <thread>

namespace indbml {

void PoolSpawn() {
  std::thread t([] {});
  t.join();
}

}  // namespace indbml
