// Fixture: direct std::thread outside the pool breaks WaitIdle/shutdown.
#include <thread>

namespace indbml {

void Spawn() {
  std::thread t([] {});  // ^find
  t.join();
}

}  // namespace indbml
