// Fixture: two endl findings absorbed by this fixture's baseline file; a
// third identical finding must still gate (each baseline line absorbs one).
#include <iostream>

namespace indbml {

void Old1() { std::cerr << std::endl; }
void Old2() { std::cerr << std::endl; }
void New3() { std::cerr << std::endl; }

}  // namespace indbml
