// Fixture: raw pointers returned into function-local owning buffers.
#include <string>
#include <vector>

namespace indbml {

const float* DanglingData() {
  std::vector<float> staging(16, 0.0f);
  return staging.data();  // ^find
}

const char* DanglingCStr(std::string name) {  // by-value param dies too
  return name.c_str();  // ^find
}

const int* DanglingAddr() {
  std::vector<int> ids;
  ids.push_back(7);
  return &ids[0];  // ^find
}

}  // namespace indbml
