// Fixture: borrows that are safe and must NOT be flagged.
#include <string>
#include <vector>

namespace indbml {

// Member accessor: the owner outlives the call (the Vector::BaseFloats
// pattern itself).
class Holder {
 public:
  const float* Floats() const { return storage_.data(); }

 private:
  std::vector<float> storage_;
};

// Borrowed parameter: the caller owns the buffer.
const float* First(const std::vector<float>& v) { return v.data(); }

// Returning the owning value itself moves ownership out — safe.
std::vector<float> MakeBuffer() {
  std::vector<float> staging(16, 0.0f);
  return staging;
}

// A local consumed before return is fine.
float Sum(int n) {
  std::vector<float> scratch(n, 1.0f);
  float total = 0.0f;
  for (float f : scratch) total += f;
  return total;
}

}  // namespace indbml
