// Fixture: a directory missing from ALLOWED_DEPS fails loudly at line 1
// rather than silently passing.  ^find@1
#include "common/status.h"

namespace indbml {}
