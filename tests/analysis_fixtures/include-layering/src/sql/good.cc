// Fixture: sql sits above exec/storage/nn/common — all allowed, as are
// system headers and non-layer includes.
#include "sql/planner.h"
#include "exec/vector.h"
#include "storage/table.h"
#include "nn/model.h"
#include "common/status.h"
#include <memory>

namespace indbml {}
