// Fixture: the execution layer must not depend on the SQL front-end.
#include "exec/vector.h"
#include "sql/planner.h"  // ^find

namespace indbml {}
