// Fixture: inference sits above device/storage/nn/common and must not see
// the SQL front-end (the planner hands knobs down as a plain struct).
#include "inference/runtime.h"
#include "device/device.h"
#include "storage/table.h"
#include "nn/model.h"
#include "common/status.h"
#include "sql/planner.h"  // ^find

namespace indbml {}
