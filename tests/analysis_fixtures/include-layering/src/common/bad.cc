// Fixture: common is the bottom layer; reaching up is a violation.
#include "common/status.h"
#include "exec/vector.h"  // ^find
#include <vector>

namespace indbml {}
