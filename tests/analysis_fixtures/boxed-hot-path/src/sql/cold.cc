// Fixture: boxing outside the hot paths (planner diagnostics) is allowed.
namespace indbml {

void Describe(const Batch& batch) { Print(batch.GetValue(0, 0)); }

}  // namespace indbml
