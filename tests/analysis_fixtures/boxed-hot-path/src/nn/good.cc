// Fixture: typed gather through exec/gather.h — the sanctioned boundary.
namespace indbml {

void FillMatrix(const Batch& batch, float* out) {
  GatherFloats(batch.column(0), batch.selection(), out);
}

}  // namespace indbml
