// Fixture: per-row Value boxing inside an inference hot path.
namespace indbml {

void FillMatrix(const Batch& batch, float* out) {
  for (int r = 0; r < batch.rows(); ++r) {
    out[r] = batch.GetValue(r, 0).AsFloat();  // ^find
  }
}

}  // namespace indbml
