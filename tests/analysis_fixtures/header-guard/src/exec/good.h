// Fixture: canonical INDBML_<PATH>_H_ guard.
#ifndef INDBML_EXEC_GOOD_H_
#define INDBML_EXEC_GOOD_H_

namespace indbml {}

#endif  // INDBML_EXEC_GOOD_H_
