// Fixture: wrong include guard; header-guard reports at line 1.  ^find@1
#ifndef WRONG_GUARD_H_
#define WRONG_GUARD_H_

namespace indbml {}

#endif  // WRONG_GUARD_H_
