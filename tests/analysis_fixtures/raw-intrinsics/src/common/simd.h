// Fixture: common/simd.h is the one allowed home for raw intrinsics; none
// of these may be flagged.
#ifndef FIXTURE_COMMON_SIMD_H_
#define FIXTURE_COMMON_SIMD_H_

#include <immintrin.h>

namespace indbml::simd {

inline __m256 Add(__m256 a, __m256 b) { return _mm256_add_ps(a, b); }
inline __m256 Load(const float* p) { return _mm256_loadu_ps(p); }

}  // namespace indbml::simd

#endif  // FIXTURE_COMMON_SIMD_H_
