// Fixture: raw vendor intrinsics outside common/simd.h must be flagged —
// they break the scalar/NEON builds and skip the runtime ablation toggle.
#include <immintrin.h>  // ^find

namespace indbml {

void AddEight(const float* a, const float* b, float* out) {
  __m256 va = _mm256_loadu_ps(a);  // ^find
  __m256 vb = _mm256_loadu_ps(b);  // ^find
  _mm256_storeu_ps(out, _mm256_add_ps(va, vb));  // ^find
}

void NeonAdd(const float* a, const float* b, float* out) {
  float32x4_t va = vld1q_f32(a);  // ^find
  float32x4_t vb = vld1q_f32(b);  // ^find
  vst1q_f32(out, vaddq_f32(va, vb));  // ^find
}

}  // namespace indbml
