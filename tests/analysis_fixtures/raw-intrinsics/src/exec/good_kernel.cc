// Fixture: kernels written against the portable wrappers are clean, and
// identifiers that merely resemble intrinsics (vstart, mm_total) are not
// false-positived.
#include "common/simd.h"

namespace indbml {

void AddEight(const float* a, const float* b, float* out) {
  simd::F32x8 va = simd::F32x8::Load(a);
  simd::F32x8 vb = simd::F32x8::Load(b);
  (va + vb).Store(out);
}

int Vstart(int vstart, int mm_total) { return vstart + mm_total; }

}  // namespace indbml
