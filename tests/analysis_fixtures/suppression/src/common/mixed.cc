// Fixture: NOLINT suppression semantics, exercised through the endl pass.
#include <iostream>

namespace indbml {

void Report() {
  std::cerr << "a" << std::endl;  // NOLINT(indbml-endl) fixture: suppressed
  // NOLINTNEXTLINE(indbml-endl)
  std::cerr << "b" << std::endl;
  std::cerr << "c" << std::endl;  // NOLINT(indbml-*) wildcard: suppressed
  std::cerr << "d" << std::endl;  // NOLINT without a category: ^find
  std::cerr << "e" << std::endl;  // ^find
}

}  // namespace indbml
