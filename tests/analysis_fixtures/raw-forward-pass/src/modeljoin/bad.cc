// Fixture: an operator issuing GEMMs directly is a private forward pass
// that bypasses the shared InferenceRuntime (batching, cache, metrics).
#include "nn/blas.h"

namespace indbml::modeljoin {

void Forward(float* w, float* x, float* y, void* device) {
  blas::Sgemm(false, false, 4, 4, 4, 1.0f, w, 4, x, 4, 0.0f, y, 4);  // ^find
  blas::SgemmTight(false, false, 4, 4, 4, 1.0f, w, x, 0.0f, y);  // ^find
  static_cast<Device*>(device)->Gemm(false, false, 4, 4, 4, 1.0f, w, x, 0.0f,
                                     y);  // ^find@10
  // A commented-out blas::Sgemm(...) call must not be flagged.
}

}  // namespace indbml::modeljoin
