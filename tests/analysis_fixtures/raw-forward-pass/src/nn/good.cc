// Fixture: training legitimately multiplies matrices (backprop is not a
// forward pass the runtime could serve).
#include "nn/blas.h"

namespace indbml::nn {

void Backprop(float* delta, float* in, float* grad) {
  blas::SgemmTight(true, false, 4, 4, 4, 1.0f, in, delta, 0.0f, grad);
}

}  // namespace indbml::nn
