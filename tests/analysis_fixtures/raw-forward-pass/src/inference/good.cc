// Fixture: the shared runtime is the one place above the kernel layers
// allowed to issue GEMMs.
#include "nn/blas.h"

namespace indbml::inference {

void DenseForward(float* w, float* x, float* y, Device* device) {
  device->Gemm(false, false, 4, 4, 4, 1.0f, w, x, 1.0f, y);
  blas::Sgemm(false, false, 4, 4, 4, 1.0f, w, 4, x, 4, 0.0f, y, 4);
}

}  // namespace indbml::inference
