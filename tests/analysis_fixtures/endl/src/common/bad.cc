// Fixture: std::endl outside the logging sink flushes on every use.
#include <iostream>

namespace indbml {

void Report(int n) {
  std::cerr << "rows=" << n << std::endl;  // ^find
}

}  // namespace indbml
