// Fixture: the logging sink is allowlisted — it flushes deliberately.
#include <iostream>

namespace indbml {

void Flush() { std::cerr << std::endl; }

}  // namespace indbml
