// Fixture: '\n' does not flush and must not be flagged; neither may the
// token std::endl inside a comment or string: std::endl.
#include <iostream>

namespace indbml {

void Report(int n) {
  std::cerr << "rows=" << n << "\n";
  std::cerr << "literal: std::endl\n";  // inside a string: not a use
}

}  // namespace indbml
