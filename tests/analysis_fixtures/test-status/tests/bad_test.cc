// Fixture: bare-statement calls that silently discard a Status in tests.
namespace indbml {

void TestBody(Engine& engine, Table& table) {
  engine.ExecuteQuery("SELECT 1");  // ^find
  table.AppendRow(row);  // ^find
}

}  // namespace indbml
