// Fixture: consumed Status values that test-status must NOT flag.
namespace indbml {

void TestBody(Engine& engine, Table& table) {
  auto result = engine.ExecuteQuery("SELECT 1");
  ASSERT_TRUE(table.AppendRow(row).ok());
  Status s = engine.PlanQuery("SELECT 2");
  engine.Describe("t");  // not a Status-returning method
}

}  // namespace indbml
