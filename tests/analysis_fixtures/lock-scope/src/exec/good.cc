// Fixture: small critical sections and condition-variable waits — clean.
#include "common/mutex.h"

namespace indbml {

// Copy under the lock, execute after it dies with the inner block.
void CopyThenExecute(ThreadPool& pool) {
  std::vector<Task> tasks;
  {
    MutexLock lock(mu_);
    tasks = pending_;
  }
  pool.WaitIdle();
}

// CondVar::Wait(mu) releases the mutex while sleeping: not a fat section.
void WaitForReady() {
  MutexLock lock(mu_);
  while (!ready_) cv_.Wait(mu_);
}

// Closing an inner block back to the lock's depth keeps it held, but a
// plain counter bump is fine.
void NestedOk() {
  MutexLock lock(mu_);
  if (armed_) { hits_++; }
  total_++;
}

}  // namespace indbml
