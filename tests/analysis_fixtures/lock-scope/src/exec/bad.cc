// Fixture: heavy or blocking work inside a critical section.
#include "common/mutex.h"

namespace indbml {

void ExecuteUnderLock(ThreadPool& pool) {
  MutexLock lock(mu_);
  pool.WaitIdle();  // ^find
}

void InferUnderStdLock(Session* s) {
  std::lock_guard<std::mutex> lock(raw_mu_);
  RunInference(s);  // ^find
}

void BarrierUnderLock(Barrier& barrier) {
  MutexLock lock(mu_);
  barrier.Wait();  // ^find
}

}  // namespace indbml
