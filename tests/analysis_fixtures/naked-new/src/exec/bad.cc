// Fixture: naked-new must flag unowned allocations outside allocator files.
namespace indbml {

int* LeakyAlloc(int n) {
  int* scratch = new int[n];  // ^find
  return scratch;
}

void LeakyFree(int* p) {
  delete[] p;  // ^find
}

}  // namespace indbml
