// Fixture: owned allocations that naked-new must NOT flag.
#include <memory>

namespace indbml {

struct Registry {};

Registry& Global() {
  static Registry* r = new Registry();  // leaky singleton: static exempts
  return *r;
}

std::unique_ptr<Registry> Make() {
  return std::unique_ptr<Registry>(new Registry());  // same-line smart wrap
}

std::unique_ptr<Registry> MakeIdiomatic() {
  return std::make_unique<Registry>();
}

}  // namespace indbml
