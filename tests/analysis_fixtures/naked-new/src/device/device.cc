// Fixture: src/device/device.cc is allowlisted (device memory arena), and
// static leaky singletons / same-line smart wraps are allowed anywhere.
namespace indbml {

char* ArenaAlloc(int n) { return new char[n]; }

}  // namespace indbml
