#ifndef INDBML_TESTS_TEST_UTIL_H_
#define INDBML_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/operator.h"
#include "storage/table.h"

#define ASSERT_OK(expr)                                        \
  do {                                                         \
    const ::indbml::Status _st = (expr);                       \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    const ::indbml::Status _st = (expr);                       \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                       \
  auto INDBML_CONCAT(_r_, __LINE__) = (rexpr);                 \
  ASSERT_TRUE(INDBML_CONCAT(_r_, __LINE__).ok())               \
      << INDBML_CONCAT(_r_, __LINE__).status().ToString();     \
  lhs = std::move(INDBML_CONCAT(_r_, __LINE__)).ValueOrDie()

namespace indbml::testutil {

/// Builds a finalized table from a schema and a row-major value list.
inline storage::TablePtr MakeTable(const std::string& name,
                                   std::vector<storage::Field> fields,
                                   std::vector<std::vector<storage::Value>> rows) {
  auto table = std::make_shared<storage::Table>(name, std::move(fields));
  for (const auto& row : rows) {
    INDBML_CHECK(table->AppendRow(row).ok());
  }
  table->Finalize();
  return table;
}

inline storage::Value I(int64_t v) { return storage::Value::Int64(v); }
inline storage::Value F(float v) { return storage::Value::Float(v); }
inline storage::Value B(bool v) { return storage::Value::Bool(v); }

/// Fetches a result cell as double for approximate comparisons.
inline double Cell(const exec::QueryResult& result, int64_t row, int64_t col) {
  return result.GetValue(row, col).AsDouble();
}

}  // namespace indbml::testutil

#endif  // INDBML_TESTS_TEST_UTIL_H_
