#include "modeljoin/shared_model.h"

#include <gtest/gtest.h>

#include <thread>

#include "mltosql/mltosql.h"
#include "nn/model_meta.h"
#include "test_util.h"

namespace indbml {
namespace {

/// Direct tests of the parallel build phase (paper §5.2), including the
/// failure path where all participants must still pass the barrier.
class SharedModelTest : public ::testing::Test {
 protected:
  void Build(int64_t width, int64_t depth) {
    auto model_or = nn::MakeDenseBenchmarkModel(width, depth, 7);
    ASSERT_TRUE(model_or.ok());
    model_ = std::move(model_or).ValueOrDie();
    mltosql::MlToSql framework(&model_, "m");
    auto table_or = framework.BuildModelTable();
    ASSERT_TRUE(table_or.ok());
    table_ = std::move(table_or).ValueOrDie();
  }

  nn::Model model_;
  storage::TablePtr table_;
};

TEST_F(SharedModelTest, SinglePartitionBuildLoadsWeights) {
  Build(8, 2);
  auto cpu = device::MakeCpuDevice();
  modeljoin::SharedModel shared(nn::MetaOf(model_, "m"), cpu.get(), 1, 1024);
  ASSERT_OK(shared.BuildPartition(*table_, 0));

  // First dense layer kernel (transposed [units x in]): spot-check against
  // the model weights.
  const nn::DenseLayer& dense = model_.layers()[0].dense;
  const float* w = shared.dense_kernel(0);
  for (int64_t in = 0; in < dense.input_dim; ++in) {
    for (int64_t out = 0; out < dense.units; ++out) {
      ASSERT_FLOAT_EQ(w[out * dense.input_dim + in], dense.kernel.At(in, out));
    }
  }
  // Bias matrix rows replicate the bias value across the vector size.
  const float* bias_mat = shared.dense_bias_matrix(0);
  for (int64_t u = 0; u < dense.units; ++u) {
    ASSERT_FLOAT_EQ(bias_mat[u * 1024], dense.bias[u]);
    ASSERT_FLOAT_EQ(bias_mat[u * 1024 + 1023], dense.bias[u]);
  }
  EXPECT_GT(shared.DeviceBytes(), 0);
}

TEST_F(SharedModelTest, ParallelBuildMatchesSerialBuild) {
  Build(16, 3);
  auto cpu = device::MakeCpuDevice();
  modeljoin::SharedModel serial(nn::MetaOf(model_, "m"), cpu.get(), 1, 256);
  ASSERT_OK(serial.BuildPartition(*table_, 0));

  constexpr int kPartitions = 6;
  modeljoin::SharedModel parallel(nn::MetaOf(model_, "m"), cpu.get(), kPartitions,
                                  256);
  std::vector<std::thread> threads;
  std::vector<Status> statuses(kPartitions);
  for (int p = 0; p < kPartitions; ++p) {
    threads.emplace_back([&, p] { statuses[static_cast<size_t>(p)] =
                                      parallel.BuildPartition(*table_, p); });
  }
  for (auto& t : threads) t.join();
  for (const Status& s : statuses) ASSERT_OK(s);

  for (size_t li = 0; li < model_.layers().size(); ++li) {
    const nn::DenseLayer& dense = model_.layers()[li].dense;
    int64_t n = dense.units * dense.input_dim;
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_FLOAT_EQ(parallel.dense_kernel(li)[i], serial.dense_kernel(li)[i])
          << "layer " << li << " element " << i;
    }
  }
}

TEST_F(SharedModelTest, BuildFailurePropagatesWithoutDeadlock) {
  Build(8, 1);
  // Corrupt the table: a node id far outside the layout.
  storage::Table bad("m", table_->fields());
  for (int64_t r = 0; r < table_->num_rows(); ++r) {
    std::vector<storage::Value> row;
    for (int c = 0; c < table_->num_columns(); ++c) {
      row.push_back(table_->column(c).GetValue(r));
    }
    if (r == 3) row[1] = storage::Value::Int64(10000);  // 'node' column
    ASSERT_OK(bad.AppendRow(row));
  }
  bad.Finalize();

  auto cpu = device::MakeCpuDevice();
  constexpr int kPartitions = 4;
  modeljoin::SharedModel shared(nn::MetaOf(model_, "m"), cpu.get(), kPartitions, 64);
  std::vector<std::thread> threads;
  std::vector<Status> statuses(kPartitions);
  for (int p = 0; p < kPartitions; ++p) {
    threads.emplace_back(
        [&, p] { statuses[static_cast<size_t>(p)] = shared.BuildPartition(bad, p); });
  }
  for (auto& t : threads) t.join();
  // The corrupt row lives in one partition, but every participant must see
  // the failure (and none may hang on the barrier).
  for (const Status& s : statuses) {
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kExecutionError);
  }
}

TEST_F(SharedModelTest, LstmWeightsLandInGateBuffers) {
  auto model_or = nn::MakeLstmBenchmarkModel(4, 3, 5);
  ASSERT_TRUE(model_or.ok());
  nn::Model model = std::move(model_or).ValueOrDie();
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK_AND_ASSIGN(auto table, framework.BuildModelTable());

  auto cpu = device::MakeCpuDevice();
  modeljoin::SharedModel shared(nn::MetaOf(model, "m"), cpu.get(), 1, 128);
  ASSERT_OK(shared.BuildPartition(*table, 0));

  const nn::LstmLayer& lstm = model.layers()[0].lstm;
  for (int g = 0; g < nn::kNumGates; ++g) {
    // Kernel [units x 1].
    for (int64_t u = 0; u < lstm.units; ++u) {
      ASSERT_FLOAT_EQ(shared.lstm_kernel(0, g)[u], lstm.kernel[g].At(0, u));
    }
    // Recurrent [units x units], transposed.
    for (int64_t j = 0; j < lstm.units; ++j) {
      for (int64_t k = 0; k < lstm.units; ++k) {
        ASSERT_FLOAT_EQ(shared.lstm_recurrent(0, g)[k * lstm.units + j],
                        lstm.recurrent[g].At(j, k));
      }
    }
  }
}

}  // namespace
}  // namespace indbml
