// Serving-stack stress tests, written to run under ThreadSanitizer
// (-DINDBML_SANITIZE=thread): N client sessions hammer one QueryServer with
// identical and distinct queries while options churn and cancellations land
// mid-flight. Functional assertions are deliberately loose where outcomes
// race (a cancel may lose against completion); the point is that every
// interleaving is data-race-free and nothing wedges.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "benchlib/workloads.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "mltosql/mltosql.h"
#include "modeljoin/model_registry.h"
#include "modeljoin/register.h"
#include "nn/model.h"
#include "nn/model_meta.h"
#include "server/server.h"
#include "test_util.h"

namespace indbml {
namespace {

constexpr int kClients = 8;
constexpr int kRepsPerClient = 6;

std::unique_ptr<server::QueryServer> MakeServer(
    server::QueryServer::Options options = {}) {
  auto srv = std::make_unique<server::QueryServer>(options);
  modeljoin::RegisterNativeModelJoin(srv->engine());
  return srv;
}

void DeployDense(server::QueryServer* srv, const std::string& name) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(16, 3, 21));
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(srv->engine()));
  srv->engine()->models()->Register(nn::MetaOf(model, name));
}

/// All clients run the same dense ModelJoin query through private sessions:
/// the shared registry must build the model exactly once and every client
/// must see the full, identical result.
TEST(ServingStressTest, ConcurrentModelJoinSharesOneBuild) {
  modeljoin::SharedModelRegistry::Global().Clear();
  auto srv = MakeServer();
  constexpr int64_t kRows = 2000;
  ASSERT_OK(srv->catalog()->CreateTable(benchlib::MakeIrisTable("fact", kRows)));
  DeployDense(srv.get(), "dense16");
  const std::string query =
      "SELECT id, prediction FROM fact MODEL JOIN m USING MODEL 'dense16' "
      "DEVICE 'cpu' PREDICT (sepal_length, sepal_width, petal_length, "
      "petal_width)";

  const int64_t builds0 =
      metrics::Registry::Global().counter("modeljoin.registry_builds")->value();
  std::atomic<int64_t> ok_queries{0};
  std::atomic<int64_t> row_sum{0};
  ThreadPool clients(kClients);
  clients.ParallelFor(kClients, [&](int /*client*/) {
    auto session = srv->CreateSession();
    for (int rep = 0; rep < kRepsPerClient; ++rep) {
      auto result = session->ExecuteQuery(query);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      row_sum.fetch_add(result.ValueOrDie().num_rows);
      ok_queries.fetch_add(1);
    }
  });
  EXPECT_EQ(ok_queries.load(), kClients * kRepsPerClient);
  EXPECT_EQ(row_sum.load(), kRows * kClients * kRepsPerClient);
  EXPECT_EQ(
      metrics::Registry::Global().counter("modeljoin.registry_builds")->value(),
      builds0 + 1)
      << "N concurrent sessions over one model must share exactly one build";
}

/// Distinct relational queries, per-session option churn and periodic
/// cancellations, all interleaved on the shared executor.
TEST(ServingStressTest, MixedQueriesOptionChurnAndCancellation) {
  modeljoin::SharedModelRegistry::Global().Clear();
  server::QueryServer::Options options;
  options.max_inflight_queries = 4;
  options.max_queued_queries = 256;
  auto srv = MakeServer(options);
  constexpr int64_t kRows = 60000;
  ASSERT_OK(srv->catalog()->CreateTable(benchlib::MakeIrisTable("fact", kRows)));

  const std::vector<std::string> queries = {
      "SELECT COUNT(*) AS n FROM fact",
      "SELECT class, COUNT(*) AS n FROM fact GROUP BY class",
      "SELECT SUM(sepal_length) AS s FROM fact WHERE sepal_width > 2.0",
      "SELECT id, petal_length FROM fact ORDER BY petal_length, id LIMIT 5",
  };

  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> cancelled{0};
  ThreadPool clients(kClients);
  clients.ParallelFor(kClients, [&](int client) {
    auto session = srv->CreateSession();
    session->set_priority(1 + client % 3);
    for (int rep = 0; rep < kRepsPerClient; ++rep) {
      // Option churn: the snapshot contract means in-flight queries are
      // unaffected; later ones pick the new values up.
      auto opts = session->options();
      opts.morsel_rows = (rep % 2 == 0) ? 256 : 1024;
      opts.fused_pipeline = rep % 3 != 0;
      session->set_options(opts);

      const std::string& sql = queries[(client + rep) % queries.size()];
      auto handle = session->Submit(sql);
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      if ((client + rep) % 3 == 0) {
        handle.ValueOrDie()->Cancel();
      }
      auto result = handle.ValueOrDie()->Wait();
      if (result.ok()) {
        completed.fetch_add(1);
      } else {
        ASSERT_EQ(result.status().code(), StatusCode::kCancelled)
            << result.status().ToString();
        cancelled.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(completed.load() + cancelled.load(), kClients * kRepsPerClient);
  // The executor must still be serviceable after the churn.
  auto session = srv->CreateSession();
  ASSERT_OK_AND_ASSIGN(auto result,
                       session->ExecuteQuery("SELECT COUNT(*) AS n FROM fact"));
  EXPECT_EQ(result.GetValue(0, 0).i, kRows);
}

/// ISSUE 10 hot path under TSan: 8 clients hammer one model through the
/// serving defaults (micro-batching and the result cache on), cancellations
/// land inside inference waits, and the model is redeployed mid-stress so
/// registry + inference-cache invalidation races live traffic. Outcomes are
/// loose (a cancel may lose to completion); interleavings must be
/// race-free and nothing may wedge.
TEST(ServingStressTest, SameModelChurnWithBatchingAndCache) {
  modeljoin::SharedModelRegistry::Global().Clear();
  auto srv = MakeServer();  // serving defaults: 100 µs window, cache on
  constexpr int64_t kRows = 4000;
  ASSERT_OK(srv->catalog()->CreateTable(benchlib::MakeIrisTable("fact", kRows)));
  DeployDense(srv.get(), "hot");
  const std::string query =
      "SELECT id, prediction FROM fact MODEL JOIN m USING MODEL 'hot' "
      "DEVICE 'cpu' PREDICT (sepal_length, sepal_width, petal_length, "
      "petal_width)";

  const int64_t batches0 =
      metrics::Registry::Global().counter("inference.batches")->value();
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> cancelled{0};
  std::atomic<bool> stop{false};
  // Deployment churn concurrent with the query storm: every redeploy swaps
  // the model table, invalidates the shared build and drops the model's
  // cached predictions.
  std::thread churn([&] {
    for (int i = 0; i < 5 && !stop.load(); ++i) {
      DeployDense(srv.get(), "hot");
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });
  ThreadPool clients(kClients);
  clients.ParallelFor(kClients, [&](int client) {
    auto session = srv->CreateSession();
    for (int rep = 0; rep < kRepsPerClient; ++rep) {
      auto handle = session->Submit(query);
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      if ((client + rep) % 4 == 0) {
        handle.ValueOrDie()->Cancel();
      }
      auto result = handle.ValueOrDie()->Wait();
      if (result.ok()) {
        EXPECT_EQ(result.ValueOrDie().num_rows, kRows);
        completed.fetch_add(1);
      } else {
        ASSERT_EQ(result.status().code(), StatusCode::kCancelled)
            << result.status().ToString();
        cancelled.fetch_add(1);
      }
    }
  });
  stop.store(true);
  churn.join();
  EXPECT_EQ(completed.load() + cancelled.load(), kClients * kRepsPerClient);
  EXPECT_GT(completed.load(), 0);
  EXPECT_GT(
      metrics::Registry::Global().counter("inference.batches")->value(),
      batches0);
  // Still serviceable, and still correct, after the churn.
  auto session = srv->CreateSession();
  ASSERT_OK_AND_ASSIGN(auto result, session->ExecuteQuery(query));
  EXPECT_EQ(result.num_rows, kRows);
}

/// Saturation: more concurrent submits than run + wait queue slots. Every
/// submit either lands or is rejected with kResourceExhausted; accepted ones
/// all finish.
TEST(ServingStressTest, AdmissionControlUnderSaturation) {
  modeljoin::SharedModelRegistry::Global().Clear();
  server::QueryServer::Options options;
  options.worker_threads = 2;
  options.max_inflight_queries = 2;
  options.max_queued_queries = 4;
  auto srv = MakeServer(options);
  ASSERT_OK(srv->catalog()->CreateTable(benchlib::MakeIrisTable("fact", 20000)));

  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> rejected{0};
  ThreadPool clients(kClients);
  clients.ParallelFor(kClients, [&](int /*client*/) {
    auto session = srv->CreateSession();
    for (int rep = 0; rep < kRepsPerClient; ++rep) {
      auto handle =
          session->Submit("SELECT SUM(petal_width) AS s FROM fact");
      if (!handle.ok()) {
        ASSERT_EQ(handle.status().code(), StatusCode::kResourceExhausted)
            << handle.status().ToString();
        rejected.fetch_add(1);
        continue;
      }
      auto result = handle.ValueOrDie()->Wait();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      accepted.fetch_add(1);
    }
  });
  EXPECT_EQ(accepted.load() + rejected.load(), kClients * kRepsPerClient);
  EXPECT_GT(accepted.load(), 0);
}

}  // namespace
}  // namespace indbml
