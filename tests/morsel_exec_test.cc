// Tests of the morsel-driven pipeline executor (exec/morsel.h): morsel
// generation, the DataChunk buffer-reuse hot path, the engine's worker-pool
// options, and — the core acceptance property — that morsel-driven parallel
// execution is row-for-row identical to serial execution across scans,
// filters, joins, aggregation, sorting and the native ModelJoin.

#include "exec/morsel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchlib/workloads.h"
#include "common/config.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "exec/vector.h"
#include "mltosql/mltosql.h"
#include "modeljoin/register.h"
#include "nn/model.h"
#include "sql/plan_validate.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using testutil::I;

storage::TablePtr MakeIdTable(const std::string& name, int64_t rows,
                              int64_t repeats_per_id) {
  auto table = std::make_shared<storage::Table>(
      name, std::vector<storage::Field>{{"id", exec::DataType::kInt64},
                                        {"x", exec::DataType::kFloat}});
  for (int64_t r = 0; r < rows; ++r) {
    INDBML_CHECK(table
                     ->AppendRow({storage::Value::Int64(r / repeats_per_id),
                                  storage::Value::Float(static_cast<float>(r))})
                     .ok());
  }
  table->Finalize();
  table->SetUniqueIdColumn("id");
  table->SetSortedBy({"id"});
  return table;
}

TEST(MakeMorselsTest, CoversTableContiguously) {
  auto table = MakeIdTable("t", 10000, 1);
  auto morsels = exec::MakeMorsels(*table, 1024);
  ASSERT_FALSE(morsels.empty());
  EXPECT_EQ(morsels.front().begin, 0);
  EXPECT_EQ(morsels.back().end, 10000);
  for (size_t i = 1; i < morsels.size(); ++i) {
    EXPECT_EQ(morsels[i].begin, morsels[i - 1].end) << "gap before morsel " << i;
  }
  // Unique ids: no boundary extension, so every morsel except the last is
  // exactly the requested size.
  for (size_t i = 0; i + 1 < morsels.size(); ++i) {
    EXPECT_EQ(morsels[i].end - morsels[i].begin, 1024);
  }
}

TEST(MakeMorselsTest, AlignsBoundariesOnRepeatedIds) {
  // 7 rows per id and a morsel size that never divides evenly: every raw
  // boundary lands mid-group and must be pushed to the next id change.
  auto table = MakeIdTable("t", 7 * 300, 7);
  auto morsels = exec::MakeMorsels(*table, 10);
  ASSERT_GT(morsels.size(), 1u);
  const storage::Column& id = table->column(0);
  for (size_t i = 0; i + 1 < morsels.size(); ++i) {
    int64_t b = morsels[i].end;
    EXPECT_NE(id.GetInt64(b), id.GetInt64(b - 1))
        << "morsel " << i << " splits id group at row " << b;
  }
  EXPECT_EQ(morsels.back().end, table->num_rows());
}

TEST(MakeMorselsTest, NonPositiveSizeFallsBackToDefault) {
  auto table = MakeIdTable("t", kDefaultMorselRows + 5, 1);
  auto morsels = exec::MakeMorsels(*table, 0);
  EXPECT_EQ(static_cast<int64_t>(morsels.size()), 2);
}

TEST(DataChunkResetTest, ReusesColumnBuffersAcrossResets) {
  std::vector<exec::DataType> types{exec::DataType::kInt64,
                                    exec::DataType::kFloat};
  exec::DataChunk chunk;
  chunk.Reset(types);
  chunk.SetCardinality(512);
  const int64_t* ints_before = chunk.column(0).ints();
  const float* floats_before = chunk.column(1).floats();

  chunk.Reset(types);
  EXPECT_EQ(chunk.size, 0);
  EXPECT_EQ(chunk.column(0).size(), 0);
  chunk.SetCardinality(512);
  // Same capacity request after a same-schema Reset: the buffers must be the
  // ones from the previous iteration, not fresh allocations.
  EXPECT_EQ(chunk.column(0).ints(), ints_before);
  EXPECT_EQ(chunk.column(1).floats(), floats_before);

  // Schema change falls back to a rebuild.
  std::vector<exec::DataType> other{exec::DataType::kFloat};
  chunk.Reset(other);
  ASSERT_EQ(chunk.num_columns(), 1);
  EXPECT_EQ(chunk.column(0).type(), exec::DataType::kFloat);
}

TEST(EngineWorkerPoolTest, HonorsWorkerThreadOptionChanges) {
  sql::QueryEngine::Options options;
  options.worker_threads = 3;
  sql::QueryEngine engine(options);
  EXPECT_EQ(engine.EffectiveWorkers(), 3);
  EXPECT_EQ(engine.pool()->num_threads(), 3);

  options.worker_threads = 2;
  engine.set_options(options);
  EXPECT_EQ(engine.pool()->num_threads(), 2);

  options.worker_threads = 0;
  engine.set_options(options);
  EXPECT_GE(HardwareConcurrency(), 1);
  EXPECT_EQ(engine.EffectiveWorkers(), HardwareConcurrency());
  EXPECT_EQ(engine.pool()->num_threads(), HardwareConcurrency());
}

/// Asserts two results are row-for-row identical: same schema, same row
/// count, bit-equal values at every (row, column).
void ExpectRowIdentical(const exec::QueryResult& actual,
                        const exec::QueryResult& expected) {
  ASSERT_EQ(actual.names, expected.names);
  ASSERT_EQ(actual.num_rows, expected.num_rows);
  for (int64_t r = 0; r < expected.num_rows; ++r) {
    for (size_t c = 0; c < expected.types.size(); ++c) {
      exec::Value va = actual.GetValue(r, static_cast<int>(c));
      exec::Value ve = expected.GetValue(r, static_cast<int>(c));
      ASSERT_EQ(va.type, ve.type) << "row " << r << " col " << c;
      switch (ve.type) {
        case exec::DataType::kBool:
          ASSERT_EQ(va.b, ve.b) << "row " << r << " col " << c;
          break;
        case exec::DataType::kInt64:
          ASSERT_EQ(va.i, ve.i) << "row " << r << " col " << c;
          break;
        case exec::DataType::kFloat:
          ASSERT_EQ(va.f, ve.f) << "row " << r << " col " << c;
          break;
      }
    }
  }
}

storage::TablePtr DeterminismFactTable(int64_t rows) {
  auto table = std::make_shared<storage::Table>(
      "fact", std::vector<storage::Field>{{"id", exec::DataType::kInt64},
                                          {"k", exec::DataType::kInt64},
                                          {"a", exec::DataType::kFloat},
                                          {"b", exec::DataType::kFloat}});
  Random rng(7);
  for (int64_t i = 0; i < rows; ++i) {
    INDBML_CHECK(table
                     ->AppendRow({storage::Value::Int64(i),
                                  storage::Value::Int64(static_cast<int64_t>(
                                      rng.NextUint64(5))),
                                  storage::Value::Float(rng.NextFloat(-10, 10)),
                                  storage::Value::Float(rng.NextFloat(-10, 10))})
                     .ok());
  }
  table->Finalize();
  table->SetUniqueIdColumn("id");
  table->SetSortedBy({"id"});
  return table;
}

class MorselDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fact_ = DeterminismFactTable(20000);
    dim_ = testutil::MakeTable("dim",
                               {{"k", exec::DataType::kInt64},
                                {"v", exec::DataType::kInt64}},
                               {{I(0), I(100)},
                                {I(1), I(101)},
                                {I(2), I(102)},
                                {I(3), I(103)},
                                {I(4), I(104)}});

    sql::QueryEngine::Options serial;
    serial.parallel = false;
    serial_ = std::make_unique<sql::QueryEngine>(serial);

    // Deliberately small morsels (many per worker) and more workers than the
    // query strictly needs: maximises interleaving, so ordering bugs surface.
    sql::QueryEngine::Options morsel;
    morsel.worker_threads = 5;
    morsel.morsel_rows = 64;
    morsel_ = std::make_unique<sql::QueryEngine>(morsel);

    sql::QueryEngine::Options static_part;
    static_part.morsel_driven = false;
    static_part.partitions = 4;
    static_ = std::make_unique<sql::QueryEngine>(static_part);

    for (sql::QueryEngine* engine :
         {serial_.get(), morsel_.get(), static_.get()}) {
      ASSERT_OK(engine->catalog()->CreateTable(fact_));
      ASSERT_OK(engine->catalog()->CreateTable(dim_));
    }
  }

  void ExpectDeterministic(const std::string& query) {
    SCOPED_TRACE(query);
    ASSERT_OK_AND_ASSIGN(auto serial_result, serial_->ExecuteQuery(query));
    ASSERT_OK_AND_ASSIGN(auto morsel_result, morsel_->ExecuteQuery(query));
    ExpectRowIdentical(morsel_result, serial_result);
  }

  storage::TablePtr fact_;
  storage::TablePtr dim_;
  std::unique_ptr<sql::QueryEngine> serial_;
  std::unique_ptr<sql::QueryEngine> morsel_;
  std::unique_ptr<sql::QueryEngine> static_;
};

TEST_F(MorselDeterminismTest, ScanFilterProject) {
  ExpectDeterministic(
      "SELECT f.id, f.a + f.b AS e FROM fact f WHERE f.a >= 0.0");
}

TEST_F(MorselDeterminismTest, StreamingAggregationById) {
  ExpectDeterministic(
      "SELECT f.id AS g, SUM(f.a) AS s, COUNT(*) AS c, MIN(f.b) AS m "
      "FROM fact f GROUP BY f.id");
}

TEST_F(MorselDeterminismTest, HashJoinAgainstDimension) {
  ExpectDeterministic(
      "SELECT f.id, d.v, f.a FROM fact f, dim d WHERE f.k = d.k");
}

TEST_F(MorselDeterminismTest, SortOnPartitionColumn) {
  ExpectDeterministic(
      "SELECT f.id, f.a FROM fact f WHERE f.b >= 0.0 ORDER BY f.id");
}

TEST_F(MorselDeterminismTest, JoinThenAggregation) {
  ExpectDeterministic(
      "SELECT f.id AS g, SUM(f.a + f.b) AS s FROM fact f, dim d "
      "WHERE f.k = d.k AND f.a >= -5.0 GROUP BY f.id");
}

/// A selection-heavy plan (filter → selection vectors over scan views,
/// project evaluated through them) must be bit-identical whether executed
/// serially, morsel-wise with aggressive interleaving, or with the legacy
/// materialising scan (`zero_copy_scan = false`).
TEST_F(MorselDeterminismTest, SelectionProducingFilterMatchesLegacyScan) {
  const std::string query =
      "SELECT f.id, f.a * 2.0 AS a2, f.b FROM fact f "
      "WHERE f.k = 2 AND f.a >= 0.0";
  ASSERT_OK_AND_ASSIGN(auto serial_result, serial_->ExecuteQuery(query));
  ASSERT_GT(serial_result.num_rows, 0);
  ASSERT_OK_AND_ASSIGN(auto morsel_result, morsel_->ExecuteQuery(query));
  ExpectRowIdentical(morsel_result, serial_result);

  sql::QueryEngine::Options legacy;
  legacy.parallel = false;
  legacy.zero_copy_scan = false;
  sql::QueryEngine legacy_engine(legacy);
  ASSERT_OK(legacy_engine.catalog()->CreateTable(fact_));
  ASSERT_OK_AND_ASSIGN(auto legacy_result, legacy_engine.ExecuteQuery(query));
  ExpectRowIdentical(legacy_result, serial_result);
}

TEST_F(MorselDeterminismTest, StaticPathStillMatchesSerial) {
  const std::string query =
      "SELECT f.id, f.a + f.b AS e FROM fact f WHERE f.a >= 0.0";
  ASSERT_OK_AND_ASSIGN(auto serial_result, serial_->ExecuteQuery(query));
  ASSERT_OK_AND_ASSIGN(auto static_result, static_->ExecuteQuery(query));
  ExpectRowIdentical(static_result, serial_result);
}

/// Skewed workload: virtually all filter survivors sit in one contiguous 10%
/// of the table, so static partitioning gives one thread almost all the
/// post-filter work. The morsel path must still produce serial row order.
TEST(MorselSkewTest, SkewedFilterRowIdenticalToSerial) {
  const int64_t kRows = 50000;
  auto table = std::make_shared<storage::Table>(
      "fact", std::vector<storage::Field>{{"id", exec::DataType::kInt64},
                                          {"marker", exec::DataType::kFloat},
                                          {"x", exec::DataType::kFloat}});
  Random rng(13);
  const int64_t hot_begin = kRows * 8 / 10;
  const int64_t hot_end = hot_begin + kRows / 10;
  for (int64_t i = 0; i < kRows; ++i) {
    float marker = (i >= hot_begin && i < hot_end) ? 1.0f : 0.0f;
    INDBML_CHECK(table
                     ->AppendRow({storage::Value::Int64(i),
                                  storage::Value::Float(marker),
                                  storage::Value::Float(rng.NextFloat(-1, 1))})
                     .ok());
  }
  table->Finalize();
  table->SetUniqueIdColumn("id");
  table->SetSortedBy({"id"});

  sql::QueryEngine::Options serial;
  serial.parallel = false;
  sql::QueryEngine serial_engine(serial);
  ASSERT_OK(serial_engine.catalog()->CreateTable(table));

  sql::QueryEngine::Options morsel;
  morsel.worker_threads = 8;
  morsel.morsel_rows = 512;
  sql::QueryEngine morsel_engine(morsel);
  ASSERT_OK(morsel_engine.catalog()->CreateTable(table));

  const std::string query =
      "SELECT f.id, f.x * 2.0 AS y FROM fact f WHERE f.marker >= 0.5";
  ASSERT_OK_AND_ASSIGN(auto serial_result, serial_engine.ExecuteQuery(query));
  ASSERT_OK_AND_ASSIGN(auto morsel_result, morsel_engine.ExecuteQuery(query));
  ASSERT_EQ(serial_result.num_rows, kRows / 10);
  ExpectRowIdentical(morsel_result, serial_result);
}

class ModelJoinMorselTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sql::QueryEngine::Options serial;
    serial.parallel = false;
    serial_ = std::make_unique<sql::QueryEngine>(serial);
    modeljoin::RegisterNativeModelJoin(serial_.get());

    sql::QueryEngine::Options morsel;
    morsel.worker_threads = 4;
    morsel.morsel_rows = 256;
    morsel_ = std::make_unique<sql::QueryEngine>(morsel);
    modeljoin::RegisterNativeModelJoin(morsel_.get());
  }

  void Deploy(nn::Model* model, const std::string& registered_name) {
    for (sql::QueryEngine* engine : {serial_.get(), morsel_.get()}) {
      mltosql::MlToSql framework(model, "m");
      ASSERT_OK(framework.Deploy(engine));
      engine->models()->Register(nn::MetaOf(*model, registered_name));
    }
  }

  std::unique_ptr<sql::QueryEngine> serial_;
  std::unique_ptr<sql::QueryEngine> morsel_;
};

TEST_F(ModelJoinMorselTest, InferenceRowIdenticalToSerial) {
  auto fact = benchlib::MakeIrisTable("fact", 4000);
  ASSERT_OK(serial_->catalog()->CreateTable(fact));
  ASSERT_OK(morsel_->catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(16, 3, 21));
  Deploy(&model, "dense16");

  const std::string query =
      "SELECT id, prediction FROM fact MODEL JOIN m USING MODEL 'dense16' "
      "DEVICE 'cpu' PREDICT (sepal_length, sepal_width, petal_length, "
      "petal_width)";
  ASSERT_OK_AND_ASSIGN(auto serial_result, serial_->ExecuteQuery(query));
  ASSERT_OK_AND_ASSIGN(auto morsel_result, morsel_->ExecuteQuery(query));
  ASSERT_EQ(serial_result.num_rows, 4000);
  ExpectRowIdentical(morsel_result, serial_result);
}

TEST_F(ModelJoinMorselTest, InferenceWithAggregationRowIdenticalToSerial) {
  auto fact = benchlib::MakeIrisTable("fact", 3000);
  ASSERT_OK(serial_->catalog()->CreateTable(fact));
  ASSERT_OK(morsel_->catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 5));
  Deploy(&model, "dense8");

  const std::string query =
      "SELECT id, AVG(prediction) AS p, COUNT(*) AS n FROM fact "
      "MODEL JOIN m USING MODEL 'dense8' DEVICE 'cpu' "
      "PREDICT (sepal_length, sepal_width, petal_length, petal_width) "
      "GROUP BY id";
  ASSERT_OK_AND_ASSIGN(auto serial_result, serial_->ExecuteQuery(query));
  ASSERT_OK_AND_ASSIGN(auto morsel_result, morsel_->ExecuteQuery(query));
  ASSERT_EQ(serial_result.num_rows, 3000);
  ExpectRowIdentical(morsel_result, serial_result);
}

TEST(MorselSafetyValidationTest, AcceptsParallelSafeRejectsSerialOnly) {
  sql::QueryEngine engine;
  auto fact = DeterminismFactTable(100);
  ASSERT_OK(engine.catalog()->CreateTable(fact));

  sql::Optimizer optimizer(engine.options().optimizer);
  const std::string safe_query = "SELECT f.id, f.a FROM fact f";
  ASSERT_OK_AND_ASSIGN(auto safe_plan, engine.PlanQuery(safe_query));
  sql::PlanAnalysis safe_analysis = optimizer.Analyze(*safe_plan);
  ASSERT_TRUE(safe_analysis.parallel_safe);
  ASSERT_OK(sql::ValidateMorselSafety(*safe_plan, safe_analysis));

  // Global LIMIT does not decompose over morsels; the analysis marks it
  // serial-only and the validator must refuse it.
  const std::string limit_query = "SELECT f.id FROM fact f LIMIT 5";
  ASSERT_OK_AND_ASSIGN(auto limit_plan, engine.PlanQuery(limit_query));
  sql::PlanAnalysis limit_analysis = optimizer.Analyze(*limit_plan);
  ASSERT_FALSE(limit_analysis.parallel_safe);
  EXPECT_FALSE(sql::ValidateMorselSafety(*limit_plan, limit_analysis).ok());
}

// ---------------------------------------------------------------------------
// Fused scan→filter→project pipeline (exec/fused_scan.h)

/// Queries that exercise the fusable chain shapes: pushed predicates only,
/// residual float/int conditions, multi-conjunct filters, pure-column
/// projects, and expression projects (which keep the discrete operators but
/// may still fuse the scan+filter below them).
const char* const kFusionQueries[] = {
    "SELECT f.id, f.a, f.b FROM fact f WHERE f.a >= 0.0",
    "SELECT f.id FROM fact f WHERE f.k = 2 AND f.a >= 0.0",
    "SELECT f.b, f.id FROM fact f WHERE f.a > 0.25 AND f.b < 3.5",
    "SELECT f.id, f.a * 2.0 AS a2 FROM fact f WHERE f.k >= 3",
    "SELECT f.id, f.a FROM fact f",
    "SELECT f.id AS g, SUM(f.a) AS s FROM fact f WHERE f.b >= -5.0 GROUP BY f.id",
};

/// Fused and unfused pipelines must produce row-for-row bit-identical
/// results, serially and morsel-driven, and the fused engine must actually
/// build FusedTableScanOperator instances (observed via the
/// "exec.fused_scans" metrics counter).
TEST_F(MorselDeterminismTest, FusedPipelineBitIdenticalToUnfused) {
  sql::QueryEngine::Options unfused;
  unfused.parallel = false;
  unfused.fused_pipeline = false;
  sql::QueryEngine unfused_engine(unfused);
  ASSERT_OK(unfused_engine.catalog()->CreateTable(fact_));

  metrics::Counter* fused_scans =
      metrics::Registry::Global().counter("exec.fused_scans");
  for (const char* query : kFusionQueries) {
    SCOPED_TRACE(query);
    int64_t before = fused_scans->value();
    ASSERT_OK_AND_ASSIGN(auto unfused_result, unfused_engine.ExecuteQuery(query));
    EXPECT_EQ(fused_scans->value(), before)
        << "fused_pipeline=false must not build fused scans";
    // serial_ and morsel_ run with the default fused_pipeline=true.
    ASSERT_OK_AND_ASSIGN(auto fused_result, serial_->ExecuteQuery(query));
    ExpectRowIdentical(fused_result, unfused_result);
    ASSERT_OK_AND_ASSIGN(auto morsel_result, morsel_->ExecuteQuery(query));
    ExpectRowIdentical(morsel_result, unfused_result);
  }
  // At least the predicate-bearing queries fused on the default engines.
  EXPECT_GT(fused_scans->value(), 0);
}

/// Division in a filter condition can fault on rows that would never reach
/// it in the discrete pipeline, so such chains must not fuse — and must
/// still compute the same result through the discrete operators. The
/// condition is the *only* predicate so nothing is pushed into the scan
/// (a pushed conjunct would legitimately fuse as a predicate-only scan).
TEST_F(MorselDeterminismTest, DivisionFilterStaysUnfusedAndCorrect) {
  const std::string query =
      "SELECT f.id FROM fact f WHERE 10.0 / (f.a + 11.0) < 8.0";
  metrics::Counter* fused_scans =
      metrics::Registry::Global().counter("exec.fused_scans");
  int64_t before = fused_scans->value();
  ASSERT_OK_AND_ASSIGN(auto serial_result, serial_->ExecuteQuery(query));
  EXPECT_EQ(fused_scans->value(), before)
      << "conditions containing division must not fuse";
  ASSERT_GT(serial_result.num_rows, 0);
  ASSERT_OK_AND_ASSIGN(auto morsel_result, morsel_->ExecuteQuery(query));
  ExpectRowIdentical(morsel_result, serial_result);
}

/// The fused path rides on zero-copy scans: with zero_copy_scan=false the
/// planner must fall back to the discrete operators even when
/// fused_pipeline=true, and results stay identical.
TEST_F(MorselDeterminismTest, FusionRequiresZeroCopyScan) {
  sql::QueryEngine::Options legacy;
  legacy.parallel = false;
  legacy.zero_copy_scan = false;
  legacy.fused_pipeline = true;
  sql::QueryEngine legacy_engine(legacy);
  ASSERT_OK(legacy_engine.catalog()->CreateTable(fact_));

  const std::string query = "SELECT f.id, f.a FROM fact f WHERE f.a >= 0.0";
  metrics::Counter* fused_scans =
      metrics::Registry::Global().counter("exec.fused_scans");
  int64_t before = fused_scans->value();
  ASSERT_OK_AND_ASSIGN(auto legacy_result, legacy_engine.ExecuteQuery(query));
  EXPECT_EQ(fused_scans->value(), before);
  ASSERT_OK_AND_ASSIGN(auto fused_result, serial_->ExecuteQuery(query));
  ExpectRowIdentical(fused_result, legacy_result);
}

/// SIMD off at runtime (the scalar ablation) must not change a single bit of
/// a fused, selection-heavy query's output.
TEST_F(MorselDeterminismTest, ScalarAblationBitIdentical) {
  const std::string query =
      "SELECT f.id, f.a * 2.0 AS a2, f.b FROM fact f "
      "WHERE f.k = 2 AND f.a >= 0.0";
  ASSERT_OK_AND_ASSIGN(auto simd_result, serial_->ExecuteQuery(query));
  simd::ScopedEnable off(false);
  ASSERT_OK_AND_ASSIGN(auto scalar_result, serial_->ExecuteQuery(query));
  ExpectRowIdentical(scalar_result, simd_result);
}

}  // namespace
}  // namespace indbml
