#include "modeljoin/register.h"

#include <gtest/gtest.h>

#include <map>

#include "benchlib/workloads.h"
#include "mltosql/mltosql.h"
#include "nn/model.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using mltosql::MlToSql;
using sql::QueryEngine;

std::map<int64_t, std::vector<float>> Reference(const nn::Model& model,
                                                const storage::Table& fact,
                                                const std::vector<int>& cols) {
  int64_t n = fact.num_rows();
  nn::Tensor x = nn::Tensor::Matrix(n, model.input_width());
  for (int64_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < cols.size(); ++c) {
      x.At(r, static_cast<int64_t>(c)) = fact.column(cols[c]).GetFloat(r);
    }
  }
  auto pred = model.Predict(x);
  INDBML_CHECK(pred.ok());
  int id_col = *fact.ColumnIndex("id");
  std::map<int64_t, std::vector<float>> by_id;
  for (int64_t r = 0; r < n; ++r) {
    std::vector<float> row;
    for (int64_t c = 0; c < model.output_dim(); ++c) row.push_back(pred->At(r, c));
    by_id[fact.column(id_col).GetInt64(r)] = row;
  }
  return by_id;
}

struct DeviceCase {
  const char* device;
  bool parallel;
};

class ModelJoinTest : public ::testing::TestWithParam<DeviceCase> {
 protected:
  void SetUp() override {
    QueryEngine::Options options;
    options.parallel = GetParam().parallel;
    engine_ = std::make_unique<QueryEngine>(options);
    modeljoin::RegisterNativeModelJoin(engine_.get());
  }

  std::unique_ptr<QueryEngine> engine_;
};

TEST_P(ModelJoinTest, DenseMatchesReference) {
  auto fact = benchlib::MakeIrisTable("fact", 5000);
  ASSERT_OK(engine_->catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(16, 3, 21));
  MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(engine_.get()));
  engine_->models()->Register(nn::MetaOf(model, "dense16"));

  std::string sql =
      "SELECT id, prediction FROM fact MODEL JOIN m USING MODEL 'dense16' "
      "DEVICE '" +
      std::string(GetParam().device) +
      "' PREDICT (sepal_length, sepal_width, petal_length, petal_width)";
  ASSERT_OK_AND_ASSIGN(auto result, engine_->ExecuteQuery(sql));
  ASSERT_EQ(result.num_rows, 5000);

  auto reference = Reference(model, *fact, {1, 2, 3, 4});
  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  for (int64_t r = 0; r < result.num_rows; ++r) {
    int64_t id = result.GetValue(r, id_col).i;
    ASSERT_NEAR(result.GetValue(r, pred_col).f, reference.at(id)[0], 1e-4)
        << "row " << id;
  }
}

TEST_P(ModelJoinTest, LstmMatchesReference) {
  auto fact = benchlib::MakeSinusTable("series", 3000, 3);
  ASSERT_OK(engine_->catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeLstmBenchmarkModel(12, 3, 33));
  MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(engine_.get()));
  engine_->models()->Register(nn::MetaOf(model, "lstm12"));

  std::string sql =
      "SELECT id, prediction FROM series MODEL JOIN m USING MODEL 'lstm12' "
      "DEVICE '" +
      std::string(GetParam().device) + "' PREDICT (x0, x1, x2)";
  ASSERT_OK_AND_ASSIGN(auto result, engine_->ExecuteQuery(sql));
  ASSERT_EQ(result.num_rows, 3000);

  auto reference = Reference(model, *fact, {1, 2, 3});
  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  for (int64_t r = 0; r < result.num_rows; ++r) {
    int64_t id = result.GetValue(r, id_col).i;
    ASSERT_NEAR(result.GetValue(r, pred_col).f, reference.at(id)[0], 1e-4)
        << "row " << id;
  }
}

TEST_P(ModelJoinTest, ComposesWithDownstreamAggregation) {
  // The ModelJoin is a regular operator usable in arbitrary queries (§5.1):
  // aggregate the predictions per class.
  auto fact = benchlib::MakeIrisTable("fact", 600);
  ASSERT_OK(engine_->catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 5));
  MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(engine_.get()));
  engine_->models()->Register(nn::MetaOf(model, "dense8"));

  std::string sql =
      "SELECT class, AVG(prediction) AS avg_pred, COUNT(*) AS n FROM fact "
      "MODEL JOIN m USING MODEL 'dense8' DEVICE '" +
      std::string(GetParam().device) +
      "' PREDICT (sepal_length, sepal_width, petal_length, petal_width) "
      "GROUP BY class ORDER BY class";
  ASSERT_OK_AND_ASSIGN(auto result, engine_->ExecuteQuery(sql));
  ASSERT_EQ(result.num_rows, 3);
  EXPECT_EQ(result.GetValue(0, 2).i, 200);
}

INSTANTIATE_TEST_SUITE_P(
    Devices, ModelJoinTest,
    ::testing::Values(DeviceCase{"cpu", true}, DeviceCase{"cpu", false},
                      DeviceCase{"gpu", true}, DeviceCase{"gpu", false}),
    [](const ::testing::TestParamInfo<DeviceCase>& info) {
      return std::string(info.param.device) +
             (info.param.parallel ? "Parallel" : "Serial");
    });

TEST(ModelJoinErrorsTest, RejectsPairIdModelTable) {
  QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  auto fact = benchlib::MakeIrisTable("fact", 64);
  ASSERT_OK(engine.catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(4, 1, 5));
  mltosql::MlToSqlOptions basic;
  basic.unique_node_ids = false;
  MlToSql framework(&model, "m", basic);
  ASSERT_OK(framework.Deploy(&engine));
  engine.models()->Register(nn::MetaOf(model, "d"));
  auto result = engine.ExecuteQuery(
      "SELECT prediction FROM fact MODEL JOIN m USING MODEL 'd' "
      "PREDICT (sepal_length, sepal_width, petal_length, petal_width)");
  EXPECT_FALSE(result.ok());
}

TEST(ModelJoinErrorsTest, RejectsUnregisteredModel) {
  QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  auto fact = benchlib::MakeIrisTable("fact", 16);
  ASSERT_OK(engine.catalog()->CreateTable(fact));
  auto result = engine.ExecuteQuery(
      "SELECT * FROM fact MODEL JOIN fact USING MODEL 'missing'");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ModelJoinErrorsTest, RejectsWrongInputWidth) {
  QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  auto fact = benchlib::MakeIrisTable("fact", 16);
  ASSERT_OK(engine.catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(4, 1, 5));
  MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(&engine));
  engine.models()->Register(nn::MetaOf(model, "d"));
  auto result = engine.ExecuteQuery(
      "SELECT * FROM fact MODEL JOIN m USING MODEL 'd' PREDICT (sepal_length)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST(ModelJoinErrorsTest, NoImplementationRegistered) {
  QueryEngine engine;  // no RegisterNativeModelJoin
  auto fact = benchlib::MakeIrisTable("fact", 16);
  ASSERT_OK(engine.catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(4, 1, 5));
  MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(&engine));
  engine.models()->Register(nn::MetaOf(model, "d"));
  auto result = engine.ExecuteQuery(
      "SELECT * FROM fact MODEL JOIN m USING MODEL 'd' "
      "PREDICT (sepal_length, sepal_width, petal_length, petal_width)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
}

}  // namespace
}  // namespace indbml
