#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "benchlib/workloads.h"
#include "common/random.h"
#include "common/string_util.h"
#include "mltosql/mltosql.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using testutil::F;
using testutil::I;

/// Canonical multiset form of a result (row order independent).
std::multiset<std::string> Canonical(const exec::QueryResult& result) {
  std::multiset<std::string> rows;
  for (const exec::DataChunk& chunk : result.chunks) {
    for (int64_t r = 0; r < chunk.size; ++r) {
      std::string row;
      for (int64_t c = 0; c < chunk.num_columns(); ++c) {
        exec::Value v = chunk.column(c).GetValue(r);
        // Round floats so hash- vs order-based accumulation noise is
        // ignored.
        row += v.type == exec::DataType::kFloat
                   ? StrFormat("%.3f|", v.AsDouble())
                   : v.ToString() + "|";
      }
      rows.insert(row);
    }
  }
  return rows;
}

storage::TablePtr RandomFactTable(int64_t rows, uint64_t seed) {
  auto table = std::make_shared<storage::Table>(
      "fact", std::vector<storage::Field>{{"id", exec::DataType::kInt64},
                                          {"k", exec::DataType::kInt64},
                                          {"a", exec::DataType::kFloat},
                                          {"b", exec::DataType::kFloat}});
  Random rng(seed);
  for (int64_t i = 0; i < rows; ++i) {
    INDBML_CHECK(table
                     ->AppendRow({storage::Value::Int64(i),
                                  storage::Value::Int64(
                                      static_cast<int64_t>(rng.NextUint64(5))),
                                  storage::Value::Float(rng.NextFloat(-10, 10)),
                                  storage::Value::Float(rng.NextFloat(-10, 10))})
                     .ok());
  }
  table->Finalize();
  table->SetUniqueIdColumn("id");
  table->SetSortedBy({"id"});
  return table;
}

/// Generates a random (valid) query over the fact/dim schema.
std::string RandomQuery(Random* rng) {
  static const char* kNumericCols[] = {"a", "b", "f.a + f.b", "f.a * 2.0"};
  static const char* kCompare[] = {"<", "<=", ">", ">=", "=", "<>"};

  std::string select;
  std::string where;
  std::string tail;
  bool grouped = rng->NextUint64(2) == 0;
  if (grouped) {
    bool by_id = rng->NextUint64(2) == 0;
    std::string key = by_id ? "f.id" : "f.k";
    select = StrFormat("SELECT %s AS g, SUM(%s) AS s, COUNT(*) AS c, MIN(f.b) AS m",
                       key.c_str(), kNumericCols[rng->NextUint64(4)]);
    tail = " GROUP BY " + key;
  } else {
    select = StrFormat("SELECT f.id, d.v, %s AS e",
                       kNumericCols[rng->NextUint64(4)]);
  }
  std::string from = " FROM fact f, dim d";
  where = StrFormat(" WHERE f.k = d.k AND f.a %s %.2f",
                    kCompare[rng->NextUint64(6)],
                    static_cast<double>(rng->NextFloat(-8, 8)));
  if (rng->NextUint64(2) == 0) {
    where += StrFormat(" AND f.b %s %.2f", kCompare[rng->NextUint64(6)],
                       static_cast<double>(rng->NextFloat(-8, 8)));
  }
  return select + from + where + tail;
}

/// Property: parallel execution with all optimizations produces the same
/// multiset of rows as serial execution with all optimizations disabled,
/// for randomly generated join/filter/aggregate queries.
TEST(ParallelSerialEquivalenceTest, RandomQueries) {
  auto fact = RandomFactTable(3000, 11);
  auto dim = testutil::MakeTable("dim",
                                 {{"k", exec::DataType::kInt64},
                                  {"v", exec::DataType::kInt64}},
                                 {{I(0), I(100)},
                                  {I(1), I(101)},
                                  {I(2), I(102)},
                                  {I(3), I(103)},
                                  {I(4), I(104)}});

  sql::QueryEngine::Options parallel_options;
  parallel_options.partitions = 4;
  sql::QueryEngine parallel_engine(parallel_options);
  ASSERT_OK(parallel_engine.catalog()->CreateTable(fact));
  ASSERT_OK(parallel_engine.catalog()->CreateTable(dim));

  sql::QueryEngine::Options naive_options;
  naive_options.parallel = false;
  naive_options.optimizer.predicate_pushdown = false;
  naive_options.optimizer.join_conversion = false;
  naive_options.optimizer.projection_pruning = false;
  naive_options.optimizer.ordered_aggregation = false;
  sql::QueryEngine naive_engine(naive_options);
  ASSERT_OK(naive_engine.catalog()->CreateTable(fact));
  ASSERT_OK(naive_engine.catalog()->CreateTable(dim));

  Random rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    std::string query = RandomQuery(&rng);
    SCOPED_TRACE(query);
    ASSERT_OK_AND_ASSIGN(auto optimized, parallel_engine.ExecuteQuery(query));
    ASSERT_OK_AND_ASSIGN(auto naive, naive_engine.ExecuteQuery(query));
    EXPECT_EQ(optimized.num_rows, naive.num_rows);
    EXPECT_EQ(Canonical(optimized), Canonical(naive));
  }
}

/// Property: ML-To-SQL matches the in-memory reference for arbitrary dense
/// architectures, including degenerate ones.
struct ArchCase {
  int64_t features;
  std::vector<int64_t> layer_widths;
};

class ArchitectureSweepTest : public ::testing::TestWithParam<ArchCase> {};

TEST_P(ArchitectureSweepTest, MlToSqlMatchesReference) {
  const ArchCase& arch = GetParam();
  sql::QueryEngine engine;

  // Fact table with the right number of float input columns.
  std::vector<storage::Field> fields{{"id", exec::DataType::kInt64}};
  for (int64_t f = 0; f < arch.features; ++f) {
    fields.push_back({StrFormat("x%lld", static_cast<long long>(f)),
                      exec::DataType::kFloat});
  }
  auto fact = std::make_shared<storage::Table>("fact", fields);
  Random rng(arch.features * 131 + arch.layer_widths.size());
  const int64_t kRows = 257;  // deliberately not a multiple of the vector size
  for (int64_t r = 0; r < kRows; ++r) {
    std::vector<storage::Value> row{storage::Value::Int64(r)};
    for (int64_t f = 0; f < arch.features; ++f) {
      row.push_back(storage::Value::Float(rng.NextFloat(-2, 2)));
    }
    INDBML_CHECK(fact->AppendRow(row).ok());
  }
  fact->Finalize();
  fact->SetUniqueIdColumn("id");
  fact->SetSortedBy({"id"});
  ASSERT_OK(engine.catalog()->CreateTable(fact));

  nn::ModelBuilder builder(arch.features);
  nn::Activation acts[] = {nn::Activation::kRelu, nn::Activation::kTanh,
                           nn::Activation::kSigmoid, nn::Activation::kLinear};
  for (size_t i = 0; i < arch.layer_widths.size(); ++i) {
    builder.AddDense(arch.layer_widths[i], acts[i % 4]);
  }
  ASSERT_OK_AND_ASSIGN(nn::Model model, builder.Build(99));

  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(&engine));
  mltosql::FactTableInfo info;
  info.table = "fact";
  for (int64_t f = 0; f < arch.features; ++f) {
    info.input_columns.push_back(StrFormat("x%lld", static_cast<long long>(f)));
  }
  ASSERT_OK_AND_ASSIGN(std::string sqltext, framework.GenerateInferenceSql(info));
  ASSERT_OK_AND_ASSIGN(auto result, engine.ExecuteQuery(sqltext));
  ASSERT_EQ(result.num_rows, kRows);

  nn::Tensor x = nn::Tensor::Matrix(kRows, arch.features);
  for (int64_t r = 0; r < kRows; ++r) {
    for (int64_t f = 0; f < arch.features; ++f) {
      x.At(r, f) = fact->column(static_cast<int>(f + 1)).GetFloat(r);
    }
  }
  ASSERT_OK_AND_ASSIGN(auto expected, model.Predict(x));
  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  const int64_t out_dim = model.output_dim();
  for (int64_t r = 0; r < result.num_rows; ++r) {
    int64_t id = result.GetValue(r, id_col).i;
    for (int64_t o = 0; o < out_dim; ++o) {
      std::string col_name =
          out_dim == 1 ? "prediction"
                       : StrFormat("prediction_%lld", static_cast<long long>(o));
      ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex(col_name));
      ASSERT_NEAR(result.GetValue(r, pred_col).f, expected.At(id, o), 2e-4)
          << "id " << id << " output " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ArchitectureSweepTest,
    ::testing::Values(ArchCase{1, {1}},                  // minimal
                      ArchCase{1, {7, 1}},               // single input column
                      ArchCase{5, {3, 3, 3, 3, 3, 1}},   // deep and thin
                      ArchCase{2, {40, 1}},              // wide hidden
                      ArchCase{3, {4, 5}},               // multi-output
                      ArchCase{6, {2, 9, 2}}),           // bottleneck
    [](const ::testing::TestParamInfo<ArchCase>& info) {
      // Appended piecewise: GCC 12 -Wrestrict false-positives on inlined
      // string operator+ chains at -O2, fatal under -Werror.
      std::string name = "f";
      name += std::to_string(info.param.features);
      for (int64_t w : info.param.layer_widths) {
        name += "_";
        name += std::to_string(w);
      }
      return name;
    });

}  // namespace
}  // namespace indbml
