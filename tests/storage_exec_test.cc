#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/memory_tracker.h"
#include "common/random.h"
#include "exec/aggregate.h"
#include "exec/basic_operators.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "storage/table.h"
#include "test_util.h"

namespace indbml {
namespace {

using exec::DataChunk;
using exec::DataType;
using exec::ExecContext;
using exec::Value;
using testutil::F;
using testutil::I;
using testutil::MakeTable;

// ---------- storage ----------

TEST(TableTest, AppendAndFinalize) {
  auto t = MakeTable("t", {{"a", DataType::kInt64}, {"b", DataType::kFloat}},
                     {{I(1), F(1.5f)}, {I(2), F(2.5f)}});
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->column(0).GetInt64(1), 2);
  EXPECT_FLOAT_EQ(t->column(1).GetFloat(0), 1.5f);
  ASSERT_OK_AND_ASSIGN(int idx, t->ColumnIndex("B"));  // case-insensitive
  EXPECT_EQ(idx, 1);
  EXPECT_FALSE(t->ColumnIndex("zz").ok());
}

TEST(TableTest, RejectsBadRows) {
  storage::Table t("t", {{"a", DataType::kInt64}});
  EXPECT_FALSE(t.AppendRow({I(1), I(2)}).ok());
  ASSERT_OK(t.AppendRow({I(1)}));
  t.Finalize();
  EXPECT_FALSE(t.AppendRow({I(2)}).ok());  // after finalize
}

TEST(TableTest, BlockStats) {
  storage::Table t("t", {{"a", DataType::kInt64}});
  for (int64_t i = 0; i < 10000; ++i) {
    ASSERT_OK(t.AppendRow({I(i)}));
  }
  t.Finalize();
  ASSERT_EQ(t.num_blocks(), (10000 + t.rows_per_block() - 1) / t.rows_per_block());
  const auto& stats = t.block_stats(0);
  EXPECT_EQ(stats[0].min.i, 0);
  EXPECT_EQ(stats[0].max.i, t.rows_per_block() - 1);
}

TEST(TableTest, Partitions) {
  storage::Table t("t", {{"a", DataType::kInt64}});
  for (int64_t i = 0; i < 10; ++i) ASSERT_OK(t.AppendRow({I(i)}));
  t.Finalize();
  auto parts = t.MakePartitions(3);
  ASSERT_EQ(parts.size(), 3u);
  int64_t total = 0;
  int64_t expect_begin = 0;
  for (const auto& p : parts) {
    EXPECT_EQ(p.begin, expect_begin);
    total += p.end - p.begin;
    expect_begin = p.end;
  }
  EXPECT_EQ(total, 10);
}

TEST(CatalogTest, CreateGetDrop) {
  storage::Catalog catalog;
  ASSERT_OK(catalog.CreateTable(MakeTable("t1", {{"a", DataType::kInt64}}, {})));
  EXPECT_FALSE(
      catalog.CreateTable(MakeTable("T1", {{"a", DataType::kInt64}}, {})).ok());
  ASSERT_OK_AND_ASSIGN(auto t, catalog.GetTable("t1"));
  EXPECT_EQ(t->name(), "t1");
  EXPECT_EQ(catalog.ListTables().size(), 1u);
  ASSERT_OK(catalog.DropTable("t1"));
  EXPECT_FALSE(catalog.GetTable("t1").ok());
}

// ---------- scan + zone maps ----------

TEST(ScanTest, BlockPruning) {
  storage::Table table("t", {{"a", DataType::kInt64}});
  for (int64_t i = 0; i < 5 * 4096; ++i) {
    INDBML_CHECK(table.AppendRow({I(i)}).ok());
  }
  table.Finalize();
  auto shared = std::make_shared<storage::Table>(std::move(table));

  exec::ScanPredicate pred;
  pred.column = 0;
  pred.op = exec::BinaryOp::kGe;
  pred.value = storage::Value::Int64(4 * 4096);
  exec::TableScanOperator scan(shared, {0, shared->num_rows()}, {0}, {pred});
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&scan, &ctx));
  EXPECT_EQ(result.num_rows, 4096);
  EXPECT_EQ(scan.stats().blocks_pruned, 4);
}

TEST(ScanTest, PartitionRangeRespected) {
  auto t = MakeTable("t", {{"a", DataType::kInt64}},
                     {{I(0)}, {I(1)}, {I(2)}, {I(3)}, {I(4)}});
  exec::TableScanOperator scan(t, {1, 4}, {0}, {});
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&scan, &ctx));
  EXPECT_EQ(result.num_rows, 3);
  EXPECT_EQ(result.GetValue(0, 0).i, 1);
  EXPECT_EQ(result.GetValue(2, 0).i, 3);
}

// ---------- expressions ----------

TEST(ExpressionTest, DivisionByZeroFails) {
  DataChunk chunk;
  chunk.Reset({DataType::kInt64});
  chunk.SetCardinality(1);
  chunk.column(0).ints()[0] = 0;
  auto expr = exec::MakeBinary(exec::BinaryOp::kDiv,
                               exec::MakeConstant(Value::Int64(10)),
                               exec::MakeColumnRef(0, DataType::kInt64));
  exec::Vector out(DataType::kInt64);
  EXPECT_FALSE(exec::EvaluateExpr(*expr, chunk, &out).ok());
}

TEST(ExpressionTest, MixedTypePromotion) {
  DataChunk chunk;
  chunk.Reset({DataType::kInt64, DataType::kFloat});
  chunk.SetCardinality(2);
  chunk.column(0).ints()[0] = 3;
  chunk.column(0).ints()[1] = -2;
  chunk.column(1).floats()[0] = 0.5f;
  chunk.column(1).floats()[1] = 1.5f;
  auto expr = exec::MakeBinary(exec::BinaryOp::kMul,
                               exec::MakeColumnRef(0, DataType::kInt64),
                               exec::MakeColumnRef(1, DataType::kFloat));
  EXPECT_EQ(expr->type, DataType::kFloat);
  exec::Vector out(DataType::kFloat);
  ASSERT_OK(exec::EvaluateExpr(*expr, chunk, &out));
  EXPECT_FLOAT_EQ(out.floats()[0], 1.5f);
  EXPECT_FLOAT_EQ(out.floats()[1], -3.0f);
}

TEST(ExpressionTest, CloneAndRemap) {
  auto expr = exec::MakeBinary(exec::BinaryOp::kAdd,
                               exec::MakeColumnRef(100, DataType::kInt64),
                               exec::MakeColumnRef(200, DataType::kInt64));
  auto clone = exec::CloneExpr(*expr);
  std::unordered_map<int64_t, int64_t> mapping{{100, 0}, {200, 1}};
  EXPECT_TRUE(exec::RemapColumnIds(clone.get(), mapping));
  EXPECT_EQ(clone->children[0]->column_id, 0);
  EXPECT_EQ(expr->children[0]->column_id, 100);  // original untouched
  std::unordered_map<int64_t, int64_t> incomplete{{100, 0}};
  auto clone2 = exec::CloneExpr(*expr);
  EXPECT_FALSE(exec::RemapColumnIds(clone2.get(), incomplete));
}

// ---------- joins ----------

std::unique_ptr<exec::TableScanOperator> ScanAll(storage::TablePtr t) {
  std::vector<int> cols;
  for (int i = 0; i < t->num_columns(); ++i) cols.push_back(i);
  return std::make_unique<exec::TableScanOperator>(
      t, storage::PartitionRange{0, t->num_rows()}, cols,
      std::vector<exec::ScanPredicate>{});
}

TEST(HashJoinTest, DuplicateKeys) {
  auto left = MakeTable("l", {{"k", DataType::kInt64}},
                        {{I(1)}, {I(2)}, {I(2)}, {I(3)}});
  auto right = MakeTable("r", {{"k", DataType::kInt64}, {"v", DataType::kInt64}},
                         {{I(2), I(20)}, {I(2), I(21)}, {I(3), I(30)}});
  exec::HashJoinOperator join(
      ScanAll(left), ScanAll(right),
      [] {
        std::vector<exec::ExprPtr> keys;
        keys.push_back(exec::MakeColumnRef(0, DataType::kInt64));
        return keys;
      }(),
      [] {
        std::vector<exec::ExprPtr> keys;
        keys.push_back(exec::MakeColumnRef(0, DataType::kInt64));
        return keys;
      }());
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&join, &ctx));
  // 2 left "2" rows x 2 right "2" rows + 1x1 for "3".
  EXPECT_EQ(result.num_rows, 5);
}

TEST(HashJoinTest, EmptySides) {
  auto empty = MakeTable("e", {{"k", DataType::kInt64}}, {});
  auto data = MakeTable("d", {{"k", DataType::kInt64}}, {{I(1)}});
  auto make_keys = [] {
    std::vector<exec::ExprPtr> keys;
    keys.push_back(exec::MakeColumnRef(0, DataType::kInt64));
    return keys;
  };
  {
    exec::HashJoinOperator join(ScanAll(data), ScanAll(empty), make_keys(),
                                make_keys());
    ExecContext ctx;
    ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&join, &ctx));
    EXPECT_EQ(result.num_rows, 0);
  }
  {
    exec::HashJoinOperator join(ScanAll(empty), ScanAll(data), make_keys(),
                                make_keys());
    ExecContext ctx;
    ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&join, &ctx));
    EXPECT_EQ(result.num_rows, 0);
  }
}

TEST(HashJoinTest, LargeProbePreservesOrder) {
  storage::Table big("big", {{"k", DataType::kInt64}});
  for (int64_t i = 0; i < 5000; ++i) {
    INDBML_CHECK(big.AppendRow({I(i % 7)}).ok());
  }
  big.Finalize();
  auto big_ptr = std::make_shared<storage::Table>(std::move(big));
  auto small = MakeTable("small", {{"k", DataType::kInt64}, {"v", DataType::kInt64}},
                         {{I(0), I(100)}, {I(3), I(103)}});
  auto make_key = [](int col) {
    std::vector<exec::ExprPtr> keys;
    keys.push_back(exec::MakeColumnRef(col, DataType::kInt64));
    return keys;
  };
  exec::HashJoinOperator join(ScanAll(big_ptr), ScanAll(small), make_key(0),
                              make_key(0));
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&join, &ctx));
  // 5000 rows of k in [0,7): k==0 appears ceil counts...
  int64_t expected = 0;
  for (int64_t i = 0; i < 5000; ++i) {
    if (i % 7 == 0 || i % 7 == 3) ++expected;
  }
  EXPECT_EQ(result.num_rows, expected);
  EXPECT_GT(join.BuildBytes(), 0);
}

TEST(CrossJoinTest, Cardinality) {
  auto l = MakeTable("l", {{"a", DataType::kInt64}}, {{I(1)}, {I(2)}, {I(3)}});
  auto r = MakeTable("r", {{"b", DataType::kInt64}}, {{I(10)}, {I(20)}});
  exec::CrossJoinOperator join(ScanAll(l), ScanAll(r));
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&join, &ctx));
  EXPECT_EQ(result.num_rows, 6);
  // Left-major order: first two rows have a=1.
  EXPECT_EQ(result.GetValue(0, 0).i, 1);
  EXPECT_EQ(result.GetValue(1, 0).i, 1);
  EXPECT_EQ(result.GetValue(2, 0).i, 2);
}

TEST(CrossJoinTest, EmptyRight) {
  auto l = MakeTable("l", {{"a", DataType::kInt64}}, {{I(1)}});
  auto r = MakeTable("r", {{"b", DataType::kInt64}}, {});
  exec::CrossJoinOperator join(ScanAll(l), ScanAll(r));
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&join, &ctx));
  EXPECT_EQ(result.num_rows, 0);
}

// ---------- aggregation: hash vs streaming equivalence (property) ----------

struct AggCase {
  int64_t rows;
  int64_t groups_per_prefix;
  int prefix_count;
};

class AggregateEquivalenceTest : public ::testing::TestWithParam<AggCase> {};

TEST_P(AggregateEquivalenceTest, HashAndStreamingAgree) {
  AggCase p = GetParam();
  // Build a table sorted by (id) with a secondary key 'node' and a value;
  // grouping by (id, node) must give identical results for both strategies.
  storage::Table t("t", {{"id", DataType::kInt64},
                         {"node", DataType::kInt64},
                         {"v", DataType::kFloat}});
  Random rng(p.rows + p.groups_per_prefix);
  int64_t id = 0;
  for (int64_t r = 0; r < p.rows; ++r) {
    if (rng.NextUint64(3) == 0) ++id;
    INDBML_CHECK(
        t.AppendRow({I(id),
                     I(static_cast<int64_t>(rng.NextUint64(
                         static_cast<uint64_t>(p.groups_per_prefix)))),
                     F(rng.NextFloat(-1, 1))})
            .ok());
  }
  t.Finalize();
  auto table = std::make_shared<storage::Table>(std::move(t));

  auto make_groups = [] {
    std::vector<exec::ExprPtr> groups;
    groups.push_back(exec::MakeColumnRef(0, DataType::kInt64));
    groups.push_back(exec::MakeColumnRef(1, DataType::kInt64));
    return groups;
  };
  auto make_aggs = [] {
    std::vector<exec::AggregateSpec> aggs;
    exec::AggregateSpec sum;
    sum.function = exec::AggFunction::kSum;
    sum.argument = exec::MakeColumnRef(2, DataType::kFloat);
    sum.result_type = DataType::kFloat;
    sum.name = "s";
    aggs.push_back(std::move(sum));
    exec::AggregateSpec count;
    count.function = exec::AggFunction::kCount;
    count.argument = nullptr;
    count.result_type = DataType::kInt64;
    count.name = "c";
    aggs.push_back(std::move(count));
    return aggs;
  };

  ExecContext ctx;
  exec::HashAggregateOperator hash_agg(ScanAll(table), make_groups(), {"id", "node"},
                                       make_aggs());
  ASSERT_OK_AND_ASSIGN(auto hash_result, DrainOperator(&hash_agg, &ctx));

  exec::StreamingAggregateOperator stream_agg(ScanAll(table), make_groups(),
                                              {"id", "node"}, make_aggs(),
                                              p.prefix_count);
  ASSERT_OK_AND_ASSIGN(auto stream_result, DrainOperator(&stream_agg, &ctx));

  ASSERT_EQ(hash_result.num_rows, stream_result.num_rows);
  // Compare as maps (emission orders differ).
  std::map<std::pair<int64_t, int64_t>, std::pair<double, int64_t>> expected;
  for (int64_t r = 0; r < hash_result.num_rows; ++r) {
    expected[{hash_result.GetValue(r, 0).i, hash_result.GetValue(r, 1).i}] = {
        hash_result.GetValue(r, 2).AsDouble(), hash_result.GetValue(r, 3).i};
  }
  for (int64_t r = 0; r < stream_result.num_rows; ++r) {
    auto it = expected.find(
        {stream_result.GetValue(r, 0).i, stream_result.GetValue(r, 1).i});
    ASSERT_NE(it, expected.end());
    EXPECT_NEAR(stream_result.GetValue(r, 2).AsDouble(), it->second.first, 1e-4);
    EXPECT_EQ(stream_result.GetValue(r, 3).i, it->second.second);
  }
  // The streaming operator's state is bounded by groups per prefix.
  EXPECT_LE(stream_agg.peak_group_count(),
            p.prefix_count == 2 ? 1 : p.groups_per_prefix);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggregateEquivalenceTest,
                         ::testing::Values(AggCase{100, 4, 1}, AggCase{5000, 16, 1},
                                           AggCase{3000, 1, 1}, AggCase{1, 1, 1},
                                           AggCase{0, 1, 1}));

TEST(AggregateTest, MinMaxAvgOverNegative) {
  auto t = MakeTable("t", {{"g", DataType::kInt64}, {"v", DataType::kFloat}},
                     {{I(0), F(-5.0f)}, {I(0), F(3.0f)}, {I(0), F(-1.0f)}});
  std::vector<exec::ExprPtr> groups;
  groups.push_back(exec::MakeColumnRef(0, DataType::kInt64));
  std::vector<exec::AggregateSpec> aggs;
  for (auto fn : {exec::AggFunction::kMin, exec::AggFunction::kMax,
                  exec::AggFunction::kAvg}) {
    exec::AggregateSpec spec;
    spec.function = fn;
    spec.argument = exec::MakeColumnRef(1, DataType::kFloat);
    spec.result_type = DataType::kFloat;
    spec.name = "x";
    aggs.push_back(std::move(spec));
  }
  exec::HashAggregateOperator agg(ScanAll(t), std::move(groups), {"g"},
                                  std::move(aggs));
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&agg, &ctx));
  ASSERT_EQ(result.num_rows, 1);
  EXPECT_FLOAT_EQ(static_cast<float>(result.GetValue(0, 1).AsDouble()), -5.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(result.GetValue(0, 2).AsDouble()), 3.0f);
  EXPECT_NEAR(result.GetValue(0, 3).AsDouble(), -1.0, 1e-6);
}

// ---------- sort / limit ----------

TEST(SortTest, MultiKeyMixedDirections) {
  auto t = MakeTable("t", {{"a", DataType::kInt64}, {"b", DataType::kInt64}},
                     {{I(1), I(5)}, {I(2), I(1)}, {I(1), I(9)}, {I(2), I(7)}});
  std::vector<exec::ExprPtr> keys;
  keys.push_back(exec::MakeColumnRef(0, DataType::kInt64));
  keys.push_back(exec::MakeColumnRef(1, DataType::kInt64));
  exec::SortOperator sort(ScanAll(t), std::move(keys), {true, false});
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, DrainOperator(&sort, &ctx));
  EXPECT_EQ(result.GetValue(0, 1).i, 9);  // a=1 desc b
  EXPECT_EQ(result.GetValue(1, 1).i, 5);
  EXPECT_EQ(result.GetValue(2, 1).i, 7);  // a=2
  EXPECT_EQ(result.GetValue(3, 1).i, 1);
}

// ---------- memory tracking ----------

TEST(MemoryTrackerTest, VectorTracking) {
  MemoryTracker& tracker = MemoryTracker::Global();
  int64_t before = tracker.current_bytes();
  {
    exec::Vector v(DataType::kFloat);
    v.Resize(100000);
    EXPECT_GE(tracker.current_bytes(), before + 400000);
  }
  EXPECT_EQ(tracker.current_bytes(), before);
}

TEST(MemoryTrackerTest, MoveTransfersOwnership) {
  MemoryTracker& tracker = MemoryTracker::Global();
  int64_t before = tracker.current_bytes();
  exec::Vector a(DataType::kInt64);
  a.Resize(1000);
  int64_t with_a = tracker.current_bytes();
  exec::Vector b = std::move(a);
  EXPECT_EQ(tracker.current_bytes(), with_a);  // no double count
  b.Clear();
  exec::Vector c(DataType::kInt64);
  c = std::move(b);
  (void)c;
  EXPECT_GE(tracker.current_bytes(), before);
}

}  // namespace
}  // namespace indbml
