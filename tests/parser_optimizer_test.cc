#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/optimizer.h"
#include "sql/parser.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using sql::ParseSelect;
using sql::Tokenize;
using testutil::F;
using testutil::I;
using testutil::MakeTable;

// ---------- lexer ----------

TEST(LexerTest, TokenKinds) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("SELECT a1, 3.5e2 FROM t WHERE x <> 'abc' -- c\n;"));
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].type, sql::TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, sql::TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "a1");
  EXPECT_EQ(tokens[3].type, sql::TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 350.0);
  bool found_string = false;
  for (const auto& t : tokens) {
    if (t.type == sql::TokenType::kStringLiteral) {
      EXPECT_EQ(t.text, "abc");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
  EXPECT_EQ(tokens.back().type, sql::TokenType::kEnd);
}

TEST(LexerTest, Operators) {
  ASSERT_OK_AND_ASSIGN(auto tokens, Tokenize("<= >= <> < > = + - * / %"));
  std::vector<std::string> expected = {"<=", ">=", "<>", "<", ">", "=",
                                       "+",  "-",  "*",  "/", "%"};
  ASSERT_EQ(tokens.size(), expected.size() + 1);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].text, expected[i]);
  }
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

// ---------- parser ----------

TEST(ParserTest, PrecedenceAndAssociativity) {
  ASSERT_OK_AND_ASSIGN(auto stmt, ParseSelect("SELECT 1 + 2 * 3 - 4 FROM t"));
  // ((1 + (2*3)) - 4)
  EXPECT_EQ(stmt->select_list[0].expr->ToString(), "((1 + (2 * 3)) - 4)");
}

TEST(ParserTest, LogicalPrecedence) {
  ASSERT_OK_AND_ASSIGN(auto stmt,
                       ParseSelect("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3"));
  EXPECT_EQ(stmt->where->ToString(), "((a = 1) OR ((b = 2) AND (c = 3)))");
}

TEST(ParserTest, CaseExpression) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      ParseSelect("SELECT CASE WHEN a = 1 THEN 10 ELSE 20 END AS x FROM t"));
  EXPECT_EQ(stmt->select_list[0].alias, "x");
  EXPECT_TRUE(stmt->select_list[0].expr->has_else);
}

TEST(ParserTest, ModelJoinClause) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      ParseSelect("SELECT * FROM fact MODEL JOIN mt USING MODEL 'm' "
                  "DEVICE 'gpu' PREDICT (a, b)"));
  ASSERT_NE(stmt->from, nullptr);
  EXPECT_EQ(stmt->from->kind, sql::TableRef::Kind::kModelJoin);
  EXPECT_EQ(stmt->from->model_table, "mt");
  EXPECT_EQ(stmt->from->model_name, "m");
  EXPECT_EQ(stmt->from->device, "gpu");
  ASSERT_EQ(stmt->from->predict_columns.size(), 2u);
}

TEST(ParserTest, NestedSubqueries) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt,
      ParseSelect("SELECT x FROM (SELECT y AS x FROM (SELECT 1 AS y FROM t) AS a) AS b"));
  EXPECT_EQ(stmt->from->kind, sql::TableRef::Kind::kSubquery);
  EXPECT_EQ(stmt->from->subquery->from->kind, sql::TableRef::Kind::kSubquery);
}

TEST(ParserTest, OrderLimitGroup) {
  ASSERT_OK_AND_ASSIGN(
      auto stmt, ParseSelect("SELECT a, SUM(b) s FROM t GROUP BY a "
                             "ORDER BY a DESC, s ASC LIMIT 7"));
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
  EXPECT_EQ(stmt->limit, 7);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM (SELECT b FROM t)").ok());  // no alias
  EXPECT_FALSE(ParseSelect("SELECT CASE END FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage ; nonsense").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t MODEL JOIN m USING MODEL").ok());
}

// ---------- optimizer plan shapes ----------

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<sql::QueryEngine>();
    auto fact = MakeTable("fact",
                          {{"id", exec::DataType::kInt64},
                           {"x", exec::DataType::kFloat},
                           {"payload", exec::DataType::kFloat}},
                          {{I(0), F(1), F(9)}, {I(1), F(2), F(8)}});
    fact->SetUniqueIdColumn("id");
    fact->SetSortedBy({"id"});
    ASSERT_OK(engine_->catalog()->CreateTable(fact));
    auto dim = MakeTable("dim",
                         {{"k", exec::DataType::kInt64},
                          {"w", exec::DataType::kFloat},
                          {"unused", exec::DataType::kFloat}},
                         {{I(0), F(0.5f), F(0)}, {I(1), F(2.5f), F(0)}});
    ASSERT_OK(engine_->catalog()->CreateTable(dim));
  }

  std::string Plan(const std::string& sql) {
    auto plan = engine_->PlanQuery(sql);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? (*plan)->ToString() : "";
  }

  std::unique_ptr<sql::QueryEngine> engine_;
};

TEST_F(OptimizerTest, PredicatePushedIntoScan) {
  std::string plan = Plan("SELECT id FROM fact WHERE x > 1.5");
  // The comparison becomes a scan predicate, not a Filter node.
  EXPECT_EQ(plan.find("Filter"), std::string::npos) << plan;
  EXPECT_NE(plan.find("{col1 >"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, EqualityBecomesHashJoin) {
  std::string plan =
      Plan("SELECT f.id FROM fact f, dim d WHERE f.id = d.k AND f.x > 0.0");
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("CrossJoin"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, NonEquiJoinStaysCrossJoinWithFilter) {
  std::string plan = Plan("SELECT f.id FROM fact f, dim d WHERE f.x < d.w");
  EXPECT_NE(plan.find("CrossJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Filter"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, ProjectionPruningTrimsScan) {
  std::string plan = Plan("SELECT id FROM fact");
  // The payload and x columns must not be scanned.
  EXPECT_EQ(plan.find("payload"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Scan fact [id]"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, PruningKeepsJoinKeys) {
  std::string plan = Plan("SELECT d.w FROM fact f, dim d WHERE f.id = d.k");
  // id is needed as a join key even though not selected; 'unused' is not.
  EXPECT_NE(plan.find("Scan fact [id]"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("unused"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, OrderedAggregationChosenOnSortedPrefix) {
  std::string plan = Plan("SELECT id, SUM(x) s FROM fact GROUP BY id");
  EXPECT_NE(plan.find("streaming, prefix=1"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, HashAggregationWhenNoOrder) {
  // Grouping by a non-prefix column cannot stream.
  std::string plan = Plan("SELECT payload, SUM(x) s FROM fact GROUP BY payload");
  EXPECT_NE(plan.find("(hash)"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, OrderedAggregationDisabledByOption) {
  sql::QueryEngine::Options options;
  options.optimizer.ordered_aggregation = false;
  engine_->set_options(options);
  std::string plan = Plan("SELECT id, SUM(x) s FROM fact GROUP BY id");
  EXPECT_NE(plan.find("(hash)"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, ParallelSafetyAnalysis) {
  auto check = [&](const std::string& sql, bool expect_safe) {
    auto plan = engine_->PlanQuery(sql);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    sql::Optimizer optimizer(engine_->options().optimizer);
    sql::PlanAnalysis analysis = optimizer.Analyze(**plan);
    EXPECT_EQ(analysis.parallel_safe, expect_safe) << sql;
  };
  check("SELECT id, SUM(x) s FROM fact GROUP BY id", true);
  check("SELECT payload, SUM(x) s FROM fact GROUP BY payload", false);
  check("SELECT id FROM fact ORDER BY id", true);
  check("SELECT id FROM fact ORDER BY id DESC", false);
  check("SELECT id, payload FROM fact ORDER BY payload", false);
  check("SELECT id FROM fact LIMIT 1", false);
  check("SELECT f.id FROM fact f, dim d WHERE f.id = d.k", true);
  // Fact joined with itself: aligned on id -> safe.
  check("SELECT a.id FROM fact a, fact b WHERE a.id = b.id", true);
  // Fact joined with itself on a non-partition key -> unsafe.
  check("SELECT a.id FROM fact a, fact b WHERE a.x = b.x", false);
}

TEST_F(OptimizerTest, DisabledPushdownKeepsFilter) {
  sql::QueryEngine::Options options;
  options.optimizer.predicate_pushdown = false;
  options.optimizer.join_conversion = false;
  engine_->set_options(options);
  std::string plan = Plan("SELECT id FROM fact WHERE x > 1.5");
  EXPECT_NE(plan.find("Filter"), std::string::npos) << plan;
}

}  // namespace
}  // namespace indbml
