#include <gtest/gtest.h>

#include <cmath>

#include "benchlib/approaches.h"
#include "benchlib/workloads.h"
#include "mltosql/mltosql.h"
#include "modeljoin/validate.h"
#include "nn/model.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

/// GRU layers are the second recurrent class the paper names as relevant
/// for relational workloads (§2). These tests validate the extension across
/// every inference path against the hand-written reference equations.

TEST(GruModelTest, HandComputedSingleUnitTwoSteps) {
  nn::ModelBuilder builder = nn::ModelBuilder::TimeSeries(2, 1);
  builder.AddGru(1);
  ASSERT_OK_AND_ASSIGN(nn::Model model, builder.Build(1));
  auto& gru = model.mutable_layers()[0].gru;
  float wz = 0.4f, wr = -0.2f, wh = 0.9f;
  float uz = 0.3f, ur = 0.5f, uh = -0.6f;
  float bz = 0.05f, br = -0.02f, bh = 0.1f;
  gru.kernel[nn::kGruZ].At(0, 0) = wz;
  gru.kernel[nn::kGruR].At(0, 0) = wr;
  gru.kernel[nn::kGruH].At(0, 0) = wh;
  gru.recurrent[nn::kGruZ].At(0, 0) = uz;
  gru.recurrent[nn::kGruR].At(0, 0) = ur;
  gru.recurrent[nn::kGruH].At(0, 0) = uh;
  gru.bias[nn::kGruZ][0] = bz;
  gru.bias[nn::kGruR][0] = br;
  gru.bias[nn::kGruH][0] = bh;

  float x0 = 0.8f;
  float x1 = -0.3f;
  nn::Tensor x = nn::Tensor::Matrix(1, 2);
  x.At(0, 0) = x0;
  x.At(0, 1) = x1;
  ASSERT_OK_AND_ASSIGN(nn::Tensor y, model.Predict(x));

  auto sig = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
  // Step 1 (h0 = 0).
  float z1 = sig(x0 * wz + bz);
  float h1_cand = std::tanh(x0 * wh + bh);
  float h1 = (1.0f - z1) * h1_cand;
  // Step 2.
  float z2 = sig(x1 * wz + h1 * uz + bz);
  float r2 = sig(x1 * wr + h1 * ur + br);
  float h2_cand = std::tanh(x1 * wh + (r2 * h1) * uh + bh);
  float h2 = z2 * h1 + (1.0f - z2) * h2_cand;
  EXPECT_NEAR(y.At(0, 0), h2, 1e-6);
}

TEST(GruModelTest, SerializationRoundTrip) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeGruBenchmarkModel(6, 3, 21));
  ASSERT_OK_AND_ASSIGN(auto bytes, model.SaveToBytes());
  ASSERT_OK_AND_ASSIGN(nn::Model loaded,
                       nn::Model::LoadFromBytes(bytes.data(), bytes.size()));
  EXPECT_EQ(loaded.NumParameters(), model.NumParameters());
  EXPECT_EQ(loaded.ToString(), "gru(w=6,t=3)");

  nn::Tensor x = nn::Tensor::Matrix(5, 3);
  for (int64_t i = 0; i < x.size(); ++i) x[i] = 0.05f * static_cast<float>(i);
  ASSERT_OK_AND_ASSIGN(auto y1, model.Predict(x));
  ASSERT_OK_AND_ASSIGN(auto y2, loaded.Predict(x));
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(GruModelTest, ModelTableShape) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeGruBenchmarkModel(5, 3));
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK_AND_ASSIGN(auto table, framework.BuildModelTable());
  // 1x5 kernel + 5x5 recurrent + 5x1 dense output edges.
  EXPECT_EQ(table->num_rows(), 5 + 25 + 5);
  ASSERT_OK_AND_ASSIGN(auto report,
                       modeljoin::ValidateModelTable(*table, nn::MetaOf(model)));
  EXPECT_EQ(report.lstm_kernel_edges, 5);
  EXPECT_EQ(report.lstm_recurrent_edges, 25);
}

/// All eight approaches must agree on GRU inference, exactly as for dense
/// and LSTM models.
TEST(GruConsistencyTest, AllApproachesAgree) {
  sql::QueryEngine engine;
  const int64_t kRows = 2000;
  ASSERT_OK(engine.catalog()->CreateTable(benchlib::MakeSinusTable("fact", kRows, 3)));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeGruBenchmarkModel(7, 3, 123));
  ASSERT_OK_AND_ASSIGN(auto context,
                       benchlib::PrepareApproachContext(&engine, &model, "m", "fact",
                                                        {"x0", "x1", "x2"}));

  // Reference checksum.
  ASSERT_OK_AND_ASSIGN(auto fact, engine.catalog()->GetTable("fact"));
  nn::Tensor x = nn::Tensor::Matrix(kRows, 3);
  for (int64_t r = 0; r < kRows; ++r) {
    for (int c = 0; c < 3; ++c) x.At(r, c) = fact->column(c + 1).GetFloat(r);
  }
  ASSERT_OK_AND_ASSIGN(auto pred, model.Predict(x));
  double reference = 0;
  for (int64_t i = 0; i < pred.size(); ++i) reference += pred[i];

  for (benchlib::Approach approach : benchlib::AllApproaches()) {
    SCOPED_TRACE(benchlib::ApproachName(approach));
    ASSERT_OK_AND_ASSIGN(auto m, benchlib::RunApproach(approach, context));
    EXPECT_EQ(m.rows, kRows);
    EXPECT_NEAR(m.prediction_checksum, reference,
                1e-3 * (1.0 + std::fabs(reference)));
  }
}

TEST(GruMlToSqlTest, PairIdVariantAlsoMatches) {
  sql::QueryEngine engine;
  ASSERT_OK(engine.catalog()->CreateTable(benchlib::MakeSinusTable("fact", 300, 3)));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeGruBenchmarkModel(4, 3, 9));

  mltosql::MlToSqlOptions basic;
  basic.unique_node_ids = false;
  mltosql::MlToSql framework(&model, "m", basic);
  ASSERT_OK(framework.Deploy(&engine));
  mltosql::FactTableInfo info;
  info.table = "fact";
  info.input_columns = {"x0", "x1", "x2"};
  ASSERT_OK_AND_ASSIGN(std::string sqltext, framework.GenerateInferenceSql(info));
  ASSERT_OK_AND_ASSIGN(auto result, engine.ExecuteQuery(sqltext));
  ASSERT_EQ(result.num_rows, 300);

  ASSERT_OK_AND_ASSIGN(auto fact, engine.catalog()->GetTable("fact"));
  nn::Tensor x = nn::Tensor::Matrix(300, 3);
  for (int64_t r = 0; r < 300; ++r) {
    for (int c = 0; c < 3; ++c) x.At(r, c) = fact->column(c + 1).GetFloat(r);
  }
  ASSERT_OK_AND_ASSIGN(auto expected, model.Predict(x));
  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  for (int64_t r = 0; r < result.num_rows; ++r) {
    int64_t id = result.GetValue(r, id_col).i;
    ASSERT_NEAR(result.GetValue(r, pred_col).f, expected[id], 1e-4) << "row " << id;
  }
}

TEST(GruModelTest, RejectsGruAfterDense) {
  nn::ModelBuilder builder(4);
  builder.AddDense(4, nn::Activation::kRelu).AddGru(4);
  EXPECT_FALSE(builder.Build().ok());
}

}  // namespace
}  // namespace indbml
