#include "inference/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "benchlib/workloads.h"
#include "common/stopwatch.h"
#include "device/device.h"
#include "inference/batcher.h"
#include "inference/cache.h"
#include "mltosql/mltosql.h"
#include "modeljoin/register.h"
#include "nn/model.h"
#include "nn/model_meta.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using inference::InferenceBatcher;
using inference::InferenceCache;
using inference::InferenceCallStats;
using inference::InferenceOptions;
using inference::InferenceRuntime;
using inference::SharedModel;

/// Builds a SharedModel from a generated benchmark model via its table form
/// (the same path the native ModelJoin takes).
std::shared_ptr<SharedModel> BuildShared(const nn::Model& model,
                                         device::Device* device,
                                         int vector_size = 1024) {
  mltosql::MlToSql framework(const_cast<nn::Model*>(&model), "m");
  auto table = framework.BuildModelTable();
  INDBML_CHECK(table.ok()) << table.status().ToString();
  auto shared = std::make_shared<SharedModel>(nn::MetaOf(model, "m"), device, 1,
                                              vector_size);
  Status built = shared->BuildSerial(*table.ValueOrDie());
  INDBML_CHECK(built.ok()) << built.ToString();
  return shared;
}

/// Random feature-major input matrix [d x n].
std::vector<float> RandomInput(int64_t d, int64_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> in(static_cast<size_t>(d * n));
  for (float& v : in) v = dist(rng);
  return in;
}

/// Extracts columns [j0, j0+sn) of a feature-major [d x n] matrix into a
/// dense [d x sn] slice — what a selection-compacted operator chunk looks
/// like to the batcher.
std::vector<float> Slice(const std::vector<float>& in, int64_t d, int64_t n,
                         int64_t j0, int64_t sn) {
  std::vector<float> out(static_cast<size_t>(d * sn));
  for (int64_t f = 0; f < d; ++f) {
    std::memcpy(out.data() + f * sn, in.data() + f * n + j0,
                static_cast<size_t>(sn) * sizeof(float));
  }
  return out;
}

class InferenceRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cpu_ = device::MakeCpuDevice();
    InferenceCache::Global().Clear();
  }
  void TearDown() override {
    InferenceCache::Global().Clear();
    InferenceCache::Global().set_capacity_bytes(32 << 20);
  }
  std::unique_ptr<device::Device> cpu_;
};

// ---------------------------------------------------------------------------
// Bit-identity: coalesced launches vs. per-slice launches. The batcher and
// the cache both rest on this property (column-independent kernels).
// ---------------------------------------------------------------------------

void CheckBatchedMatchesUnbatched(const nn::Model& model, device::Device* cpu,
                                  uint64_t seed) {
  auto shared = BuildShared(model, cpu, 256);
  const int64_t d = model.input_width();
  const int64_t o = model.output_dim();
  // Uneven odd-sized slices straddling the vector size, as selections
  // produce: 300 + 17 + 511 + 172 = 1000 rows.
  const int64_t n = 1000;
  const int64_t sizes[] = {300, 17, 511, 172};
  auto in = RandomInput(d, n, seed);

  std::vector<float> reference(static_cast<size_t>(o * n));
  ASSERT_OK(InferenceRuntime::Global().Run(*shared, in.data(), n,
                                           reference.data()));

  // The same rows, submitted as concurrent per-slice calls through the
  // batcher with a wide-open window so they coalesce whenever the timing
  // allows (the property must hold whether or not they do).
  InferenceOptions opts;
  opts.batch_window_us = 20000;
  opts.max_batch_rows = 4096;
  std::vector<std::vector<float>> slice_in, slice_out;
  int64_t j0 = 0;
  for (int64_t sn : sizes) {
    slice_in.push_back(Slice(in, d, n, j0, sn));
    slice_out.emplace_back(static_cast<size_t>(o * sn));
    j0 += sn;
  }
  std::vector<std::thread> threads;
  std::vector<Status> statuses(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      statuses[static_cast<size_t>(t)] = InferenceBatcher::Global().Run(
          shared, slice_in[static_cast<size_t>(t)].data(), sizes[t],
          slice_out[static_cast<size_t>(t)].data(), opts, nullptr, nullptr);
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& s : statuses) ASSERT_OK(s);

  j0 = 0;
  for (size_t t = 0; t < 4; ++t) {
    for (int64_t p = 0; p < o; ++p) {
      for (int64_t j = 0; j < sizes[t]; ++j) {
        float batched = slice_out[t][static_cast<size_t>(p * sizes[t] + j)];
        float expected = reference[static_cast<size_t>(p * n + j0 + j)];
        // Bit-exact, not approximate: memcmp through the float bits.
        ASSERT_EQ(0, std::memcmp(&batched, &expected, sizeof(float)))
            << "slice " << t << " output " << p << " row " << j << ": "
            << batched << " vs " << expected;
      }
    }
    j0 += sizes[t];
  }
}

TEST_F(InferenceRuntimeTest, BatchedMatchesUnbatchedDense) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(16, 3, 7));
  CheckBatchedMatchesUnbatched(model, cpu_.get(), 11);
}

TEST_F(InferenceRuntimeTest, BatchedMatchesUnbatchedLstm) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeLstmBenchmarkModel(12, 3, 9));
  CheckBatchedMatchesUnbatched(model, cpu_.get(), 13);
}

TEST_F(InferenceRuntimeTest, BatchedMatchesUnbatchedGru) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeGruBenchmarkModel(12, 3, 9));
  CheckBatchedMatchesUnbatched(model, cpu_.get(), 17);
}

// Blocking at the vector size: n far above vector_size runs in blocks that
// each match a direct single-block pass.
TEST_F(InferenceRuntimeTest, RunBlocksAtVectorSize) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 3));
  auto shared = BuildShared(model, cpu_.get(), 128);
  const int64_t d = model.input_width();
  const int64_t o = model.output_dim();
  const int64_t n = 1000;  // 7 full blocks of 128 + a 104-row tail
  auto in = RandomInput(d, n, 5);
  std::vector<float> big(static_cast<size_t>(o * n));
  ASSERT_OK(InferenceRuntime::Global().Run(*shared, in.data(), n, big.data()));
  for (int64_t j0 = 0; j0 < n; j0 += 128) {
    int64_t bn = std::min<int64_t>(128, n - j0);
    auto block = Slice(in, d, n, j0, bn);
    std::vector<float> out(static_cast<size_t>(o * bn));
    ASSERT_OK(
        InferenceRuntime::Global().Run(*shared, block.data(), bn, out.data()));
    for (int64_t p = 0; p < o; ++p) {
      for (int64_t j = 0; j < bn; ++j) {
        ASSERT_EQ(out[static_cast<size_t>(p * bn + j)],
                  big[static_cast<size_t>(p * n + j0 + j)]);
      }
    }
  }
}

TEST_F(InferenceRuntimeTest, RejectsUnbuiltModel) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 3));
  SharedModel shared(nn::MetaOf(model, "m"), cpu_.get(), 1, 128);
  float in = 0.0f, out = 0.0f;
  Status status = InferenceRuntime::Global().Run(shared, &in, 1, &out);
  EXPECT_FALSE(status.ok());
}

// BuildFromModel (the mlruntime path) must produce the same weights — and
// therefore bit-identical predictions — as the model-table build.
TEST_F(InferenceRuntimeTest, BuildFromModelMatchesTableBuild) {
  for (auto make : {&nn::MakeLstmBenchmarkModel, &nn::MakeGruBenchmarkModel}) {
    ASSERT_OK_AND_ASSIGN(nn::Model model, make(8, 3, 19));
    auto from_table = BuildShared(model, cpu_.get(), 256);
    auto from_model = std::make_shared<SharedModel>(nn::MetaOf(model, "m"),
                                                    cpu_.get(), 1, 256);
    ASSERT_OK(from_model->BuildFromModel(model));

    const int64_t d = model.input_width();
    const int64_t o = model.output_dim();
    const int64_t n = 200;
    auto in = RandomInput(d, n, 23);
    std::vector<float> a(static_cast<size_t>(o * n)), b(a);
    ASSERT_OK(InferenceRuntime::Global().Run(*from_table, in.data(), n, a.data()));
    ASSERT_OK(InferenceRuntime::Global().Run(*from_model, in.data(), n, b.data()));
    for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "index " << i;
  }
}

// ---------------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------------

TEST_F(InferenceRuntimeTest, CacheHitsSkipTheRuntimeAndAreExact) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(16, 3, 7));
  auto shared = BuildShared(model, cpu_.get());
  const int64_t d = model.input_width();
  const int64_t o = model.output_dim();
  const int64_t n = 100;
  auto in = RandomInput(d, n, 31);

  InferenceOptions opts;
  opts.use_cache = true;
  std::vector<float> first(static_cast<size_t>(o * n));
  InferenceCallStats stats1;
  ASSERT_OK(InferenceBatcher::Global().Run(shared, in.data(), n, first.data(),
                                           opts, nullptr, &stats1));
  EXPECT_EQ(stats1.cache_hits, 0);

  std::vector<float> second(static_cast<size_t>(o * n), -99.0f);
  InferenceCallStats stats2;
  ASSERT_OK(InferenceBatcher::Global().Run(shared, in.data(), n, second.data(),
                                           opts, nullptr, &stats2));
  EXPECT_EQ(stats2.cache_hits, n);  // every row answered without the NN
  for (size_t i = 0; i < first.size(); ++i) ASSERT_EQ(first[i], second[i]);

  // Partial overlap: half old rows, half new → exactly n/2 hits, and the
  // scattered mix still matches a fresh full run.
  auto in2 = RandomInput(d, n, 32);
  std::vector<float> mixed_in(static_cast<size_t>(d * n));
  for (int64_t f = 0; f < d; ++f) {
    for (int64_t j = 0; j < n; ++j) {
      mixed_in[static_cast<size_t>(f * n + j)] =
          (j % 2 == 0) ? in[static_cast<size_t>(f * n + j)]
                       : in2[static_cast<size_t>(f * n + j)];
    }
  }
  std::vector<float> mixed_out(static_cast<size_t>(o * n));
  InferenceCallStats stats3;
  ASSERT_OK(InferenceBatcher::Global().Run(shared, mixed_in.data(), n,
                                           mixed_out.data(), opts, nullptr,
                                           &stats3));
  EXPECT_EQ(stats3.cache_hits, n / 2);
  std::vector<float> mixed_ref(static_cast<size_t>(o * n));
  ASSERT_OK(InferenceRuntime::Global().Run(*shared, mixed_in.data(), n,
                                           mixed_ref.data()));
  for (size_t i = 0; i < mixed_out.size(); ++i) {
    ASSERT_EQ(mixed_out[i], mixed_ref[i]);
  }
}

TEST_F(InferenceRuntimeTest, CacheEvictsToCapacityLru) {
  InferenceCache& cache = InferenceCache::Global();
  cache.set_capacity_bytes(4096);
  const int64_t d = 4, o = 1, n = 1;
  float out[1];
  for (int64_t i = 0; i < 1000; ++i) {
    float in[4] = {static_cast<float>(i), 1.0f, 2.0f, 3.0f};
    float result[1] = {static_cast<float>(i) * 2.0f};
    cache.Insert(/*model_id=*/777, in, n, d, o, result);
  }
  auto stats = cache.GetStats();
  EXPECT_LE(stats.bytes, 4096);
  EXPECT_GT(stats.entries, 0);
  // The most recent insert survived; the oldest was evicted.
  float newest[4] = {999.0f, 1.0f, 2.0f, 3.0f};
  std::vector<char> hits(1, 0);
  EXPECT_EQ(cache.Lookup(777, newest, n, d, o, out, &hits), 1);
  EXPECT_EQ(out[0], 1998.0f);
  float oldest[4] = {0.0f, 1.0f, 2.0f, 3.0f};
  hits.assign(1, 0);
  EXPECT_EQ(cache.Lookup(777, oldest, n, d, o, out, &hits), 0);
}

TEST_F(InferenceRuntimeTest, CacheInvalidateModelDropsOnlyThatModel) {
  InferenceCache& cache = InferenceCache::Global();
  float in[2] = {1.0f, 2.0f};
  float r1[1] = {10.0f}, r2[1] = {20.0f};
  cache.Insert(1, in, 1, 2, 1, r1);
  cache.Insert(2, in, 1, 2, 1, r2);
  cache.InvalidateModel(1);
  float out[1];
  std::vector<char> hits(1, 0);
  EXPECT_EQ(cache.Lookup(1, in, 1, 2, 1, out, &hits), 0);
  hits.assign(1, 0);
  EXPECT_EQ(cache.Lookup(2, in, 1, 2, 1, out, &hits), 1);
  EXPECT_EQ(out[0], 20.0f);
}

TEST_F(InferenceRuntimeTest, CacheCapacityZeroDisables) {
  InferenceCache& cache = InferenceCache::Global();
  cache.set_capacity_bytes(0);
  float in[2] = {1.0f, 2.0f};
  float r[1] = {10.0f};
  cache.Insert(5, in, 1, 2, 1, r);
  float out[1];
  std::vector<char> hits(1, 0);
  EXPECT_EQ(cache.Lookup(5, in, 1, 2, 1, out, &hits), 0);
  EXPECT_EQ(cache.GetStats().entries, 0);
}

// ---------------------------------------------------------------------------
// Cancellation: interrupting calls blocked in batcher waits returns them
// promptly — far inside the 2-second window they would otherwise sit out.
// ---------------------------------------------------------------------------

TEST_F(InferenceRuntimeTest, InterruptedWaitersReturnPromptly) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 3));
  auto shared = BuildShared(model, cpu_.get());
  const int64_t d = model.input_width();
  const int64_t o = model.output_dim();
  InferenceOptions opts;
  opts.batch_window_us = 2'000'000;  // a wedge would cost 2 s per launch

  constexpr int kThreads = 4;
  std::atomic<bool> interrupt{false};
  auto in = RandomInput(d, 64 * kThreads, 41);
  std::vector<std::vector<float>> outs(kThreads,
                                       std::vector<float>(static_cast<size_t>(o * 64)));
  std::vector<Status> statuses(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      statuses[static_cast<size_t>(t)] = InferenceBatcher::Global().Run(
          shared, in.data() + t * 64, 64, outs[static_cast<size_t>(t)].data(),
          opts, &interrupt, nullptr);
    });
  }
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  interrupt.store(true, std::memory_order_release);
  InferenceBatcher::Global().KickWaiters();
  for (auto& t : threads) t.join();
  // Every call returned — leaders launched despite the interrupt, followers
  // either rode the launch or detached with Cancelled — well inside the
  // window they were prepared to wait.
  EXPECT_LT(watch.ElapsedMicros(), 1'500'000);
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok() || s.code() == StatusCode::kCancelled) << s.ToString();
  }
}

// ---------------------------------------------------------------------------
// End-to-end through SQL: a filtered ModelJoin under the serving defaults
// (batching + cache on) returns bit-identical predictions to the plain
// engine path, for every model family.
// ---------------------------------------------------------------------------

void CheckSqlBatchingAblation(const char* family) {
  auto make_engine = [&](bool serving_knobs) {
    sql::QueryEngine::Options options;
    if (serving_knobs) {
      options.inference.batch_window_us = 200;
      options.inference.max_batch_rows = 4096;
      options.inference.result_cache = true;
    }
    auto engine = std::make_unique<sql::QueryEngine>(options);
    modeljoin::RegisterNativeModelJoin(engine.get());
    return engine;
  };

  std::string sql;
  nn::Model model;
  storage::TablePtr fact;
  if (std::string(family) == "dense") {
    fact = benchlib::MakeIrisTable("fact", 4000);
    ASSERT_OK_AND_ASSIGN(model, nn::MakeDenseBenchmarkModel(16, 3, 21));
    sql =
        "SELECT id, prediction FROM fact MODEL JOIN m USING MODEL 'mm' "
        "DEVICE 'cpu' PREDICT (sepal_length, sepal_width, petal_length, "
        "petal_width) WHERE sepal_length > 5.0 ORDER BY id";
  } else {
    fact = benchlib::MakeSinusTable("fact", 3000, 3);
    if (std::string(family) == "lstm") {
      ASSERT_OK_AND_ASSIGN(model, nn::MakeLstmBenchmarkModel(12, 3, 33));
    } else {
      ASSERT_OK_AND_ASSIGN(model, nn::MakeGruBenchmarkModel(12, 3, 33));
    }
    sql =
        "SELECT id, prediction FROM fact MODEL JOIN m USING MODEL 'mm' "
        "DEVICE 'cpu' PREDICT (x0, x1, x2) WHERE x0 > 0.0 ORDER BY id";
  }

  exec::QueryResult results[2];
  for (int pass = 0; pass < 2; ++pass) {
    auto engine = make_engine(pass == 1);
    ASSERT_OK(engine->catalog()->CreateTable(fact));
    mltosql::MlToSql framework(&model, "m");
    ASSERT_OK(framework.Deploy(engine.get()));
    engine->models()->Register(nn::MetaOf(model, "mm"));
    ASSERT_OK_AND_ASSIGN(results[pass], engine->ExecuteQuery(sql));
  }
  ASSERT_EQ(results[0].num_rows, results[1].num_rows);
  ASSERT_GT(results[0].num_rows, 0);
  ASSERT_OK_AND_ASSIGN(int pred_col, results[0].ColumnIndex("prediction"));
  for (int64_t r = 0; r < results[0].num_rows; ++r) {
    float plain = results[0].GetValue(r, pred_col).f;
    float served = results[1].GetValue(r, pred_col).f;
    ASSERT_EQ(0, std::memcmp(&plain, &served, sizeof(float)))
        << family << " row " << r << ": " << plain << " vs " << served;
  }
}

TEST_F(InferenceRuntimeTest, SqlServingKnobsBitIdenticalDense) {
  CheckSqlBatchingAblation("dense");
}

TEST_F(InferenceRuntimeTest, SqlServingKnobsBitIdenticalLstm) {
  CheckSqlBatchingAblation("lstm");
}

TEST_F(InferenceRuntimeTest, SqlServingKnobsBitIdenticalGru) {
  CheckSqlBatchingAblation("gru");
}

}  // namespace
}  // namespace indbml
