#include <gtest/gtest.h>

#include <cmath>

#include "benchlib/approaches.h"
#include "benchlib/workloads.h"
#include "mltosql/encoding.h"
#include "mltosql/mltosql.h"
#include "modeljoin/register.h"
#include "nn/model_meta.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

/// Full in-database pipelines combining several features, the way a
/// downstream user would compose them.
class EndToEndTest : public ::testing::Test {};

TEST_F(EndToEndTest, SelfJoinWideningFeedsMlToSqlLstm) {
  // Raw series -> widen via self-joins (paper §4) -> LSTM inference with
  // generated SQL -> compare against the reference.
  sql::QueryEngine engine;
  ASSERT_OK(engine.catalog()->CreateTable(benchlib::MakeRawSinusSeries("raw", 300)));

  std::string widen = benchlib::BuildSelfJoinSql("raw", 3);
  ASSERT_OK_AND_ASSIGN(auto wide, engine.ExecuteQuery(widen));
  auto windows = wide.ToTable("windows");
  windows->SetUniqueIdColumn("id");
  windows->SetSortedBy({"id"});
  engine.catalog()->CreateOrReplaceTable(windows);

  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeLstmBenchmarkModel(5, 3, 77));
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(&engine));
  mltosql::FactTableInfo info;
  info.table = "windows";
  info.input_columns = {"x0", "x1", "x2"};
  ASSERT_OK_AND_ASSIGN(std::string sqltext, framework.GenerateInferenceSql(info));
  ASSERT_OK_AND_ASSIGN(auto result, engine.ExecuteQuery(sqltext));
  ASSERT_EQ(result.num_rows, 298);

  nn::Tensor x = nn::Tensor::Matrix(windows->num_rows(), 3);
  for (int64_t r = 0; r < windows->num_rows(); ++r) {
    for (int c = 0; c < 3; ++c) x.At(r, c) = windows->column(c + 1).GetFloat(r);
  }
  ASSERT_OK_AND_ASSIGN(auto expected, model.Predict(x));
  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  for (int64_t r = 0; r < result.num_rows; ++r) {
    int64_t id = result.GetValue(r, id_col).i;
    // Window ids are the raw positions; they map 1:1 to the table order.
    ASSERT_NEAR(result.GetValue(r, pred_col).f, expected[id], 1e-4);
  }
}

TEST_F(EndToEndTest, MinMaxEncodingBeforeModelJoin) {
  // Encode in SQL, materialise, then infer with the native operator —
  // the encode-then-predict pipeline the paper's §4 references.
  sql::QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  auto iris = benchlib::MakeIrisTable("iris", 450);
  ASSERT_OK(engine.catalog()->CreateTable(iris));

  ASSERT_OK_AND_ASSIGN(
      std::string encode_sql,
      mltosql::GenerateMinMaxEncodingSql(
          *iris, "id",
          {"sepal_length", "sepal_width", "petal_length", "petal_width"}));
  ASSERT_OK_AND_ASSIGN(auto encoded, engine.ExecuteQuery(encode_sql));
  auto scaled = encoded.ToTable("iris_scaled");
  scaled->SetUniqueIdColumn("id");
  scaled->SetSortedBy({"id"});
  engine.catalog()->CreateOrReplaceTable(scaled);

  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 13));
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(&engine));
  engine.models()->Register(nn::MetaOf(model, "m"));

  ASSERT_OK_AND_ASSIGN(
      auto result,
      engine.ExecuteQuery(
          "SELECT id, prediction FROM iris_scaled MODEL JOIN m "
          "USING MODEL 'm' PREDICT (sepal_length, sepal_width, petal_length, "
          "petal_width)"));
  ASSERT_EQ(result.num_rows, 450);

  nn::Tensor x = nn::Tensor::Matrix(450, 4);
  for (int64_t r = 0; r < 450; ++r) {
    for (int c = 0; c < 4; ++c) x.At(r, c) = scaled->column(c + 1).GetFloat(r);
  }
  ASSERT_OK_AND_ASSIGN(auto expected, model.Predict(x));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  for (int64_t r = 0; r < 450; ++r) {
    int64_t id = result.GetValue(r, id_col).i;
    ASSERT_NEAR(result.GetValue(r, pred_col).f, expected[id], 1e-4);
  }
}

TEST_F(EndToEndTest, ModelJoinInsideComplexQuery) {
  // The ModelJoin composes with filters, aggregation and ordering in one
  // statement ("can be used in arbitrary queries", §5.1).
  sql::QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  ASSERT_OK(engine.catalog()->CreateTable(benchlib::MakeIrisTable("iris", 900)));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 3));
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(&engine));
  engine.models()->Register(nn::MetaOf(model, "m"));

  ASSERT_OK_AND_ASSIGN(
      auto result,
      engine.ExecuteQuery(
          "SELECT class, COUNT(*) n, AVG(prediction) avg_p, MIN(prediction) min_p "
          "FROM (SELECT class, prediction FROM iris "
          "      MODEL JOIN m USING MODEL 'm' "
          "      PREDICT (sepal_length, sepal_width, petal_length, petal_width)) "
          "AS scored WHERE prediction > -1000.0 GROUP BY class ORDER BY class"));
  ASSERT_EQ(result.num_rows, 3);
  int64_t total = 0;
  for (int64_t r = 0; r < 3; ++r) {
    total += result.GetValue(r, 1).i;
    EXPECT_LE(result.GetValue(r, 3).AsDouble(), result.GetValue(r, 2).AsDouble());
  }
  EXPECT_EQ(total, 900);
}

TEST_F(EndToEndTest, TwoModelsInOneEngine) {
  // Several deployed models coexist; each MODEL JOIN picks its own.
  sql::QueryEngine engine;
  modeljoin::RegisterNativeModelJoin(&engine);
  ASSERT_OK(engine.catalog()->CreateTable(benchlib::MakeIrisTable("iris", 128)));

  ASSERT_OK_AND_ASSIGN(nn::Model a, nn::MakeDenseBenchmarkModel(4, 1, 1));
  ASSERT_OK_AND_ASSIGN(nn::Model b, nn::MakeDenseBenchmarkModel(4, 1, 2));
  mltosql::MlToSql fa(&a, "ta");
  mltosql::MlToSql fb(&b, "tb");
  ASSERT_OK(fa.Deploy(&engine));
  ASSERT_OK(fb.Deploy(&engine));
  engine.models()->Register(nn::MetaOf(a, "ma"));
  engine.models()->Register(nn::MetaOf(b, "mb"));

  const std::string predict =
      " PREDICT (sepal_length, sepal_width, petal_length, petal_width)";
  ASSERT_OK_AND_ASSIGN(auto ra, engine.ExecuteQuery(
      "SELECT prediction FROM iris MODEL JOIN ta USING MODEL 'ma'" + predict));
  ASSERT_OK_AND_ASSIGN(auto rb, engine.ExecuteQuery(
      "SELECT prediction FROM iris MODEL JOIN tb USING MODEL 'mb'" + predict));
  // Different seeds -> different predictions.
  EXPECT_NE(ra.GetValue(0, 0).f, rb.GetValue(0, 0).f);
}

TEST_F(EndToEndTest, LargeMultiBlockFactTable) {
  // Spans multiple storage blocks and all 12 partitions; checksum parity
  // between the native operator and the runtime-backed operator.
  sql::QueryEngine engine;
  auto fact = benchlib::MakeIrisTable("fact", 50000);
  ASSERT_OK(engine.catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 4));
  ASSERT_OK_AND_ASSIGN(
      auto context,
      benchlib::PrepareApproachContext(
          &engine, &model, "m", "fact",
          {"sepal_length", "sepal_width", "petal_length", "petal_width"}));

  ASSERT_OK_AND_ASSIGN(auto native,
                       benchlib::RunApproach(benchlib::Approach::kModelJoinCpu,
                                             context));
  ASSERT_OK_AND_ASSIGN(
      auto capi, benchlib::RunApproach(benchlib::Approach::kCApiCpu, context));
  EXPECT_EQ(native.rows, 50000);
  EXPECT_EQ(capi.rows, 50000);
  EXPECT_NEAR(native.prediction_checksum, capi.prediction_checksum,
              1e-3 * (1 + std::fabs(native.prediction_checksum)));
}

}  // namespace
}  // namespace indbml
