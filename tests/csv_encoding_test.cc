#include <gtest/gtest.h>

#include <cstdio>

#include "benchlib/workloads.h"
#include "mltosql/encoding.h"
#include "sql/query_engine.h"
#include "storage/csv.h"
#include "test_util.h"

namespace indbml {
namespace {

using storage::DataType;

// ---------- CSV ----------

TEST(CsvTest, RoundTrip) {
  auto iris = benchlib::MakeIrisTable("iris", 150);
  std::string path = ::testing::TempDir() + "/iris_roundtrip.csv";
  ASSERT_OK(storage::WriteCsv(*iris, path));
  ASSERT_OK_AND_ASSIGN(auto loaded, storage::LoadCsv(path, "iris2"));
  ASSERT_EQ(loaded->num_rows(), 150);
  ASSERT_EQ(loaded->num_columns(), 6);
  EXPECT_EQ(loaded->fields()[0].name, "id");
  EXPECT_EQ(loaded->fields()[0].type, DataType::kInt64);
  EXPECT_EQ(loaded->fields()[1].type, DataType::kFloat);
  for (int64_t r : {0L, 77L, 149L}) {
    EXPECT_EQ(loaded->column(0).GetInt64(r), iris->column(0).GetInt64(r));
    EXPECT_NEAR(loaded->column(2).GetFloat(r), iris->column(2).GetFloat(r), 1e-5);
  }
  std::remove(path.c_str());
}

TEST(CsvTest, HeaderlessAndExplicitTypes) {
  std::string path = ::testing::TempDir() + "/headerless.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "1,2.5\n2,3.5\n");
  std::fclose(f);

  storage::CsvOptions options;
  options.has_header = false;
  ASSERT_OK_AND_ASSIGN(auto table, storage::LoadCsv(path, "t", options));
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->fields()[0].name, "c0");
  EXPECT_EQ(table->fields()[0].type, DataType::kInt64);

  options.types = {DataType::kFloat, DataType::kFloat};
  ASSERT_OK_AND_ASSIGN(auto all_float, storage::LoadCsv(path, "t2", options));
  EXPECT_EQ(all_float->fields()[0].type, DataType::kFloat);
  std::remove(path.c_str());
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(storage::LoadCsv("/no/such/file.csv", "t").ok());

  std::string path = ::testing::TempDir() + "/bad.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "a,b\n1,2\n3\n");  // ragged row
  std::fclose(f);
  EXPECT_FALSE(storage::LoadCsv(path, "t").ok());

  f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "a\nhello\n");  // non-numeric
  std::fclose(f);
  EXPECT_FALSE(storage::LoadCsv(path, "t").ok());
  std::remove(path.c_str());
}

TEST(CsvTest, LoadedTableIsQueryable) {
  auto iris = benchlib::MakeIrisTable("iris", 60);
  std::string path = ::testing::TempDir() + "/queryable.csv";
  ASSERT_OK(storage::WriteCsv(*iris, path));
  ASSERT_OK_AND_ASSIGN(auto loaded, storage::LoadCsv(path, "iris_csv"));
  sql::QueryEngine engine;
  ASSERT_OK(engine.catalog()->CreateTable(loaded));
  ASSERT_OK_AND_ASSIGN(auto result,
                       engine.ExecuteQuery("SELECT COUNT(*) c, AVG(sepal_length) a "
                                           "FROM iris_csv GROUP BY 1 = 1"));
  std::remove(path.c_str());
  ASSERT_EQ(result.num_rows, 1);
  EXPECT_EQ(result.GetValue(0, 0).i, 60);
}

// ---------- encoding SQL ----------

TEST(EncodingTest, MinMaxNormalisesToUnitRange) {
  sql::QueryEngine engine;
  auto iris = benchlib::MakeIrisTable("iris", 150);
  ASSERT_OK(engine.catalog()->CreateTable(iris));

  ASSERT_OK_AND_ASSIGN(
      std::string sqltext,
      mltosql::GenerateMinMaxEncodingSql(*iris, "id",
                                         {"sepal_length", "petal_width"}, {"class"}));
  ASSERT_OK_AND_ASSIGN(auto result, engine.ExecuteQuery(sqltext));
  ASSERT_EQ(result.num_rows, 150);
  ASSERT_OK_AND_ASSIGN(int col, result.ColumnIndex("sepal_length"));
  double lo = 1e9;
  double hi = -1e9;
  for (int64_t r = 0; r < result.num_rows; ++r) {
    double v = result.GetValue(r, col).AsDouble();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(lo, 0.0, 1e-5);
  EXPECT_NEAR(hi, 1.0, 1e-5);
  EXPECT_TRUE(result.ColumnIndex("class").ok());
}

TEST(EncodingTest, ComputeRangesUsesZoneMaps) {
  auto iris = benchlib::MakeIrisTable("iris", 150);
  ASSERT_OK_AND_ASSIGN(auto ranges,
                       mltosql::ComputeRanges(*iris, {"sepal_length"}));
  ASSERT_EQ(ranges.size(), 1u);
  // Verify against a direct scan.
  float lo = 1e9f;
  float hi = -1e9f;
  for (int64_t r = 0; r < 150; ++r) {
    lo = std::min(lo, iris->column(1).GetFloat(r));
    hi = std::max(hi, iris->column(1).GetFloat(r));
  }
  EXPECT_NEAR(ranges[0].min, lo, 1e-6);
  EXPECT_NEAR(ranges[0].max, hi, 1e-6);
}

TEST(EncodingTest, OneHot) {
  sql::QueryEngine engine;
  ASSERT_OK(engine.catalog()->CreateTable(benchlib::MakeIrisTable("iris", 150)));
  std::string sqltext =
      mltosql::GenerateOneHotEncodingSql("iris", "id", "class", {0, 1, 2});
  ASSERT_OK_AND_ASSIGN(auto result, engine.ExecuteQuery(sqltext));
  ASSERT_EQ(result.num_rows, 150);
  ASSERT_EQ(result.names.size(), 4u);
  // Each row has exactly one hot bit.
  for (int64_t r = 0; r < result.num_rows; ++r) {
    double sum = result.GetValue(r, 1).AsDouble() + result.GetValue(r, 2).AsDouble() +
                 result.GetValue(r, 3).AsDouble();
    ASSERT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(EncodingTest, ConstantColumnMapsToZero) {
  auto t = testutil::MakeTable("t",
                               {{"id", DataType::kInt64}, {"x", DataType::kFloat}},
                               {{testutil::I(0), testutil::F(5.0f)},
                                {testutil::I(1), testutil::F(5.0f)}});
  sql::QueryEngine engine;
  ASSERT_OK(engine.catalog()->CreateTable(t));
  ASSERT_OK_AND_ASSIGN(std::string sqltext,
                       mltosql::GenerateMinMaxEncodingSql(*t, "id", {"x"}));
  ASSERT_OK_AND_ASSIGN(auto result, engine.ExecuteQuery(sqltext));
  EXPECT_DOUBLE_EQ(result.GetValue(0, 1).AsDouble(), 0.0);
}

}  // namespace
}  // namespace indbml
