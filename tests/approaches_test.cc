#include "benchlib/approaches.h"

#include <gtest/gtest.h>

#include <cmath>

#include "benchlib/workloads.h"
#include "test_util.h"

namespace indbml {
namespace {

using benchlib::Approach;
using benchlib::ApproachContext;
using benchlib::PrepareApproachContext;
using benchlib::RunApproach;
using benchlib::RunMeasurement;

/// "We use the same model for each implementation variant and ensure
/// consistent results" (paper §6.1): every approach must agree with the
/// in-memory reference on row count and prediction checksum.
class ApproachConsistencyTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 4000;

  void SetUpDense(int64_t width, int64_t depth) {
    engine_ = std::make_unique<sql::QueryEngine>();
    ASSERT_OK(engine_->catalog()->CreateTable(benchlib::MakeIrisTable("fact", kRows)));
    ASSERT_OK_AND_ASSIGN(model_, nn::MakeDenseBenchmarkModel(width, depth, 99));
    ASSERT_OK_AND_ASSIGN(
        context_,
        PrepareApproachContext(engine_.get(), &model_, "m", "fact",
                               {"sepal_length", "sepal_width", "petal_length",
                                "petal_width"}));
    ComputeReference();
  }

  void SetUpLstm(int64_t width) {
    engine_ = std::make_unique<sql::QueryEngine>();
    ASSERT_OK(
        engine_->catalog()->CreateTable(benchlib::MakeSinusTable("fact", kRows, 3)));
    ASSERT_OK_AND_ASSIGN(model_, nn::MakeLstmBenchmarkModel(width, 3, 99));
    ASSERT_OK_AND_ASSIGN(context_, PrepareApproachContext(engine_.get(), &model_, "m",
                                                          "fact", {"x0", "x1", "x2"}));
    ComputeReference();
  }

  void ComputeReference() {
    ASSERT_OK_AND_ASSIGN(auto fact, engine_->catalog()->GetTable("fact"));
    nn::Tensor x = nn::Tensor::Matrix(kRows, model_.input_width());
    for (int64_t r = 0; r < kRows; ++r) {
      for (size_t c = 0; c < context_.input_columns.size(); ++c) {
        int col = *fact->ColumnIndex(context_.input_columns[c]);
        x.At(r, static_cast<int64_t>(c)) = fact->column(col).GetFloat(r);
      }
    }
    ASSERT_OK_AND_ASSIGN(auto pred, model_.Predict(x));
    reference_checksum_ = 0;
    for (int64_t i = 0; i < pred.size(); ++i) reference_checksum_ += pred[i];
  }

  void CheckApproach(Approach approach) {
    ASSERT_OK_AND_ASSIGN(RunMeasurement m, RunApproach(approach, context_));
    EXPECT_EQ(m.rows, kRows) << benchlib::ApproachName(approach);
    // Checksums across n=4000 float predictions; allow accumulated-order
    // noise proportional to the magnitude.
    double tolerance = 1e-3 * (1.0 + std::fabs(reference_checksum_));
    EXPECT_NEAR(m.prediction_checksum, reference_checksum_, tolerance)
        << benchlib::ApproachName(approach);
    EXPECT_GT(m.wall_seconds, 0);
    EXPECT_GT(m.adjusted_seconds, 0);
    if (benchlib::IsGpuApproach(approach)) {
      EXPECT_GT(m.gpu_stats.kernel_launches, 0) << benchlib::ApproachName(approach);
    }
  }

  std::unique_ptr<sql::QueryEngine> engine_;
  nn::Model model_;
  ApproachContext context_;
  double reference_checksum_ = 0;
};

TEST_F(ApproachConsistencyTest, DenseAllApproachesAgree) {
  SetUpDense(16, 2);
  for (Approach approach : benchlib::AllApproaches()) {
    SCOPED_TRACE(benchlib::ApproachName(approach));
    CheckApproach(approach);
  }
}

TEST_F(ApproachConsistencyTest, LstmAllApproachesAgree) {
  SetUpLstm(8);
  for (Approach approach : benchlib::AllApproaches()) {
    SCOPED_TRACE(benchlib::ApproachName(approach));
    CheckApproach(approach);
  }
}

TEST_F(ApproachConsistencyTest, GpuAdjustmentUsesModeledTime) {
  SetUpDense(32, 2);
  ASSERT_OK_AND_ASSIGN(RunMeasurement m,
                       RunApproach(Approach::kModelJoinGpu, context_));
  EXPECT_GT(m.gpu_stats.modeled_seconds, 0);
  EXPECT_GT(m.gpu_stats.bytes_to_device, 0);
  EXPECT_GT(m.gpu_stats.bytes_to_host, 0);
  EXPECT_NEAR(m.adjusted_seconds,
              m.wall_seconds - m.gpu_stats.real_seconds + m.gpu_stats.modeled_seconds,
              1e-9);
}

TEST_F(ApproachConsistencyTest, MemoryFootprintOrdering) {
  SetUpDense(32, 4);
  ASSERT_OK_AND_ASSIGN(RunMeasurement native,
                       RunApproach(Approach::kModelJoinCpu, context_));
  ASSERT_OK_AND_ASSIGN(RunMeasurement sql_based,
                       RunApproach(Approach::kMlToSql, context_));
  // Table 3's qualitative shape: the generic relational plan holds larger
  // intermediate state than the native operator.
  EXPECT_GT(sql_based.peak_delta_bytes, native.peak_delta_bytes);
}

}  // namespace
}  // namespace indbml
