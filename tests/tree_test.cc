#include "nn/decision_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "benchlib/workloads.h"
#include "common/random.h"
#include "mltosql/tree_to_sql.h"
#include "modeljoin/validate.h"
#include "mltosql/mltosql.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using nn::DecisionTree;
using nn::Tensor;

// ---------- CART training ----------

TEST(DecisionTreeTest, LearnsAxisAlignedStep) {
  // y = 1 if x0 >= 0.5 else 0: a single split suffices.
  Tensor x = Tensor::Matrix(100, 1);
  std::vector<float> y(100);
  for (int64_t i = 0; i < 100; ++i) {
    x.At(i, 0) = static_cast<float>(i) / 100.0f;
    y[static_cast<size_t>(i)] = x.At(i, 0) >= 0.5f ? 1.0f : 0.0f;
  }
  ASSERT_OK_AND_ASSIGN(DecisionTree tree, DecisionTree::TrainRegression(x, y));
  EXPECT_GE(tree.depth(), 1);
  float lo = 0.2f;
  float hi = 0.8f;
  EXPECT_NEAR(tree.Predict(&lo), 0.0f, 1e-5);
  EXPECT_NEAR(tree.Predict(&hi), 1.0f, 1e-5);
}

TEST(DecisionTreeTest, SeparatesIrisClasses) {
  std::vector<float> features;
  std::vector<int64_t> classes;
  benchlib::IrisFeatures(150, &features, &classes);
  Tensor x = Tensor::Matrix(150, 4);
  std::vector<float> y(150);
  for (int64_t r = 0; r < 150; ++r) {
    for (int c = 0; c < 4; ++c) x.At(r, c) = features[static_cast<size_t>(r * 4 + c)];
    y[static_cast<size_t>(r)] = static_cast<float>(classes[static_cast<size_t>(r)]);
  }
  ASSERT_OK_AND_ASSIGN(DecisionTree tree, DecisionTree::TrainRegression(x, y));
  int correct = 0;
  for (int64_t r = 0; r < 150; ++r) {
    float pred = tree.Predict(&x.At(r, 0));
    if (std::lround(pred) == classes[static_cast<size_t>(r)]) ++correct;
  }
  EXPECT_GE(correct, 135);  // >= 90% training accuracy
}

TEST(DecisionTreeTest, DepthLimitRespected) {
  Random rng(4);
  Tensor x = Tensor::Matrix(500, 2);
  std::vector<float> y(500);
  for (int64_t i = 0; i < 500; ++i) {
    x.At(i, 0) = rng.NextFloat(0, 1);
    x.At(i, 1) = rng.NextFloat(0, 1);
    y[static_cast<size_t>(i)] = rng.NextFloat(0, 1);
  }
  DecisionTree::TrainOptions options;
  options.max_depth = 3;
  ASSERT_OK_AND_ASSIGN(DecisionTree tree, DecisionTree::TrainRegression(x, y, options));
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTreeTest, FromNodesValidation) {
  std::vector<DecisionTree::Node> bad(1);
  bad[0].is_leaf = false;
  bad[0].feature = 0;
  bad[0].left = 0;  // self-reference
  bad[0].right = 0;
  EXPECT_FALSE(DecisionTree::FromNodes(bad, 1).ok());

  std::vector<DecisionTree::Node> leaf(1);
  leaf[0].value = 2.5f;
  ASSERT_OK_AND_ASSIGN(DecisionTree tree, DecisionTree::FromNodes(leaf, 1));
  float v = 0;
  EXPECT_FLOAT_EQ(tree.Predict(&v), 2.5f);
}

TEST(DecisionTreeTest, RejectsBadTrainingInput) {
  Tensor x = Tensor::Matrix(3, 2);
  std::vector<float> y(5);  // mismatch
  EXPECT_FALSE(DecisionTree::TrainRegression(x, y).ok());
}

// ---------- Tree-To-SQL ----------

class TreeToSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<sql::QueryEngine>();
    ASSERT_OK(engine_->catalog()->CreateTable(benchlib::MakeIrisTable("iris", 450)));
    ASSERT_OK_AND_ASSIGN(auto fact, engine_->catalog()->GetTable("iris"));
    fact_ = fact;

    std::vector<float> features;
    std::vector<int64_t> classes;
    benchlib::IrisFeatures(450, &features, &classes);
    Tensor x = Tensor::Matrix(450, 4);
    std::vector<float> y(450);
    for (int64_t r = 0; r < 450; ++r) {
      for (int c = 0; c < 4; ++c) {
        x.At(r, c) = features[static_cast<size_t>(r * 4 + c)];
      }
      y[static_cast<size_t>(r)] = static_cast<float>(classes[static_cast<size_t>(r)]);
    }
    ASSERT_OK_AND_ASSIGN(tree_, DecisionTree::TrainRegression(x, y));
  }

  storage::TablePtr fact_;
  std::unique_ptr<sql::QueryEngine> engine_;
  DecisionTree tree_;
  const std::vector<std::string> kFeatures = {"sepal_length", "sepal_width",
                                              "petal_length", "petal_width"};
};

TEST_F(TreeToSqlTest, RelationalTraversalMatchesInMemory) {
  mltosql::TreeToSql framework(&tree_, "iris_tree");
  ASSERT_OK(framework.Deploy(engine_.get()));

  mltosql::FactTableInfo info;
  info.table = "iris";
  info.input_columns = kFeatures;
  info.payload_columns = {"class"};
  ASSERT_OK_AND_ASSIGN(std::string sqltext, framework.GenerateInferenceSql(info));
  ASSERT_OK_AND_ASSIGN(auto result, engine_->ExecuteQuery(sqltext));
  ASSERT_EQ(result.num_rows, 450);

  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  for (int64_t r = 0; r < result.num_rows; ++r) {
    int64_t id = result.GetValue(r, id_col).i;
    float row[4];
    for (int c = 0; c < 4; ++c) row[c] = fact_->column(c + 1).GetFloat(id);
    ASSERT_NEAR(result.GetValue(r, pred_col).f, tree_.Predict(row), 1e-5)
        << "row " << id;
  }
}

TEST_F(TreeToSqlTest, CaseExpressionMatchesInMemory) {
  mltosql::TreeToSql framework(&tree_, "iris_tree");
  ASSERT_OK_AND_ASSIGN(std::string expr, framework.GenerateCaseExpression(kFeatures));
  ASSERT_OK_AND_ASSIGN(
      auto result,
      engine_->ExecuteQuery("SELECT id, " + expr + " AS prediction FROM iris"));
  ASSERT_EQ(result.num_rows, 450);
  for (int64_t r = 0; r < result.num_rows; ++r) {
    int64_t id = result.GetValue(r, 0).i;
    float row[4];
    for (int c = 0; c < 4; ++c) row[c] = fact_->column(c + 1).GetFloat(id);
    ASSERT_NEAR(result.GetValue(r, 1).f, tree_.Predict(row), 1e-5);
  }
}

TEST_F(TreeToSqlTest, TreeTableShape) {
  mltosql::TreeToSql framework(&tree_, "t");
  ASSERT_OK_AND_ASSIGN(auto table, framework.BuildTreeTable());
  EXPECT_EQ(table->num_rows(), static_cast<int64_t>(tree_.nodes().size()));
  EXPECT_EQ(table->num_columns(), 6);
}

TEST_F(TreeToSqlTest, RejectsWrongFeatureCount) {
  mltosql::TreeToSql framework(&tree_, "t");
  mltosql::FactTableInfo info;
  info.table = "iris";
  info.input_columns = {"sepal_length"};
  EXPECT_FALSE(framework.GenerateInferenceSql(info).ok());
  EXPECT_FALSE(framework.GenerateCaseExpression({"a", "b"}).ok());
}

// ---------- model table validation (paper §5.5) ----------

TEST(ValidateModelTableTest, AcceptsGeneratedTables) {
  ASSERT_OK_AND_ASSIGN(auto dense, nn::MakeDenseBenchmarkModel(8, 2));
  mltosql::MlToSql framework(&dense, "m");
  ASSERT_OK_AND_ASSIGN(auto table, framework.BuildModelTable());
  ASSERT_OK_AND_ASSIGN(auto report,
                       modeljoin::ValidateModelTable(*table, nn::MetaOf(dense)));
  EXPECT_EQ(report.input_edges, 4);
  EXPECT_EQ(report.dense_edges, 4 * 8 + 8 * 8 + 8);
  EXPECT_TRUE(report.sorted);

  ASSERT_OK_AND_ASSIGN(auto lstm, nn::MakeLstmBenchmarkModel(6, 3));
  mltosql::MlToSql lstm_framework(&lstm, "m2");
  ASSERT_OK_AND_ASSIGN(auto lstm_table, lstm_framework.BuildModelTable());
  ASSERT_OK_AND_ASSIGN(auto lstm_report,
                       modeljoin::ValidateModelTable(*lstm_table, nn::MetaOf(lstm)));
  EXPECT_EQ(lstm_report.lstm_kernel_edges, 6);
  EXPECT_EQ(lstm_report.lstm_recurrent_edges, 36);
}

TEST(ValidateModelTableTest, RejectsWrongMeta) {
  ASSERT_OK_AND_ASSIGN(auto model, nn::MakeDenseBenchmarkModel(8, 2));
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK_AND_ASSIGN(auto table, framework.BuildModelTable());
  // Meta for a different width: edge counts cannot line up.
  ASSERT_OK_AND_ASSIGN(auto other, nn::MakeDenseBenchmarkModel(16, 2));
  EXPECT_FALSE(modeljoin::ValidateModelTable(*table, nn::MetaOf(other)).ok());
}

TEST(ValidateModelTableTest, RejectsPairIdSchema) {
  ASSERT_OK_AND_ASSIGN(auto model, nn::MakeDenseBenchmarkModel(4, 1));
  mltosql::MlToSqlOptions basic;
  basic.unique_node_ids = false;
  mltosql::MlToSql framework(&model, "m", basic);
  ASSERT_OK_AND_ASSIGN(auto table, framework.BuildModelTable());
  EXPECT_FALSE(modeljoin::ValidateModelTable(*table, nn::MetaOf(model)).ok());
}

TEST(ValidateModelTableTest, RejectsTamperedTable) {
  ASSERT_OK_AND_ASSIGN(auto model, nn::MakeDenseBenchmarkModel(4, 1));
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK_AND_ASSIGN(auto table, framework.BuildModelTable());
  // Rebuild the table with one edge dropped.
  storage::Table tampered("m", table->fields());
  for (int64_t r = 1; r < table->num_rows(); ++r) {
    std::vector<storage::Value> row;
    for (int c = 0; c < table->num_columns(); ++c) {
      row.push_back(table->column(c).GetValue(r));
    }
    ASSERT_OK(tampered.AppendRow(row));
  }
  tampered.Finalize();
  EXPECT_FALSE(modeljoin::ValidateModelTable(tampered, nn::MetaOf(model)).ok());
}

}  // namespace
}  // namespace indbml
