#include "nn/training.h"

#include <gtest/gtest.h>

#include "benchlib/workloads.h"
#include "common/random.h"
#include "test_util.h"

namespace indbml {
namespace {

using nn::Activation;
using nn::Model;
using nn::ModelBuilder;
using nn::Tensor;

TEST(TrainingTest, LearnsXor) {
  // The motivating example of the multi-layer perceptron (paper §2).
  Tensor x = Tensor::Matrix(4, 2);
  Tensor y = Tensor::Matrix(4, 1);
  float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  float targets[4] = {0, 1, 1, 0};
  for (int r = 0; r < 4; ++r) {
    x.At(r, 0) = inputs[r][0];
    x.At(r, 1) = inputs[r][1];
    y.At(r, 0) = targets[r];
  }

  ModelBuilder builder(2);
  builder.AddDense(8, Activation::kTanh).AddDense(1, Activation::kSigmoid);
  ASSERT_OK_AND_ASSIGN(Model model, builder.Build(3));

  nn::TrainOptions options;
  options.epochs = 2000;
  options.learning_rate = 0.5f;
  options.batch_size = 4;
  ASSERT_OK_AND_ASSIGN(float loss, nn::TrainDenseMse(&model, x, y, options));
  EXPECT_LT(loss, 0.05f);

  ASSERT_OK_AND_ASSIGN(Tensor pred, model.Predict(x));
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(pred.At(r, 0), targets[r], 0.3f) << "XOR row " << r;
  }
}

TEST(TrainingTest, LossDecreases) {
  Random rng(9);
  const int64_t n = 200;
  Tensor x = Tensor::Matrix(n, 3);
  Tensor y = Tensor::Matrix(n, 1);
  for (int64_t r = 0; r < n; ++r) {
    float a = rng.NextFloat(-1, 1);
    float b = rng.NextFloat(-1, 1);
    float c = rng.NextFloat(-1, 1);
    x.At(r, 0) = a;
    x.At(r, 1) = b;
    x.At(r, 2) = c;
    y.At(r, 0) = 0.3f * a - 0.7f * b + 0.1f * c;
  }
  ModelBuilder builder(3);
  builder.AddDense(4, Activation::kTanh).AddDense(1, Activation::kLinear);
  ASSERT_OK_AND_ASSIGN(Model model, builder.Build(5));

  ASSERT_OK_AND_ASSIGN(Tensor before, model.Predict(x));
  float loss_before = nn::MeanSquaredError(before, y);

  nn::TrainOptions options;
  options.epochs = 100;
  ASSERT_OK_AND_ASSIGN(float loss_after, nn::TrainDenseMse(&model, x, y, options));
  EXPECT_LT(loss_after, loss_before * 0.2f);
}

TEST(TrainingTest, RejectsLstmModels) {
  ASSERT_OK_AND_ASSIGN(Model model, nn::MakeLstmBenchmarkModel(4));
  Tensor x = Tensor::Matrix(2, 3);
  Tensor y = Tensor::Matrix(2, 1);
  auto result = nn::TrainDenseMse(&model, x, y);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
}

TEST(TrainingTest, RejectsShapeMismatch) {
  ASSERT_OK_AND_ASSIGN(Model model, nn::MakeDenseBenchmarkModel(4, 1));
  Tensor x = Tensor::Matrix(4, 4);
  Tensor y = Tensor::Matrix(3, 1);  // row count mismatch
  EXPECT_FALSE(nn::TrainDenseMse(&model, x, y).ok());
  Tensor y2 = Tensor::Matrix(4, 2);  // output width mismatch
  EXPECT_FALSE(nn::TrainDenseMse(&model, x, y2).ok());
}

TEST(TrainingTest, MeanSquaredError) {
  Tensor a = Tensor::Matrix(2, 1);
  Tensor b = Tensor::Matrix(2, 1);
  a.At(0, 0) = 1.0f;
  a.At(1, 0) = 3.0f;
  b.At(0, 0) = 2.0f;
  b.At(1, 0) = 1.0f;
  EXPECT_FLOAT_EQ(nn::MeanSquaredError(a, b), (1.0f + 4.0f) / 2.0f);
}

// ---------- workload generators ----------

TEST(WorkloadTest, IrisDeterministicAndTiled) {
  auto a = benchlib::MakeIrisTable("a", 300);
  auto b = benchlib::MakeIrisTable("b", 300);
  EXPECT_EQ(a->num_rows(), 300);
  for (int64_t r : {0L, 149L, 299L}) {
    EXPECT_FLOAT_EQ(a->column(1).GetFloat(r), b->column(1).GetFloat(r));
  }
  // Tiling: row 150 repeats row 0 features.
  EXPECT_FLOAT_EQ(a->column(1).GetFloat(150), a->column(1).GetFloat(0));
  EXPECT_EQ(a->column(5).GetInt64(0), 0);    // class setosa block
  EXPECT_EQ(a->column(5).GetInt64(149), 2);  // class virginica block
  EXPECT_EQ(a->unique_id_column(), "id");
}

TEST(WorkloadTest, SinusSeries) {
  auto t = benchlib::MakeSinusTable("s", 10, 3);
  EXPECT_EQ(t->num_columns(), 4);
  // x1 of row i equals x0 of row i+1.
  for (int64_t r = 0; r + 1 < 10; ++r) {
    EXPECT_NEAR(t->column(2).GetFloat(r), t->column(1).GetFloat(r + 1), 1e-6);
  }
}

}  // namespace
}  // namespace indbml
