// Tests of the zero-copy data-flow layer: the shared Buffer, the three
// Vector representations (owned / view / view + selection), Flatten()
// round-trips, copy-on-write, Buffer-level MemoryTracker accounting, and —
// the tentpole acceptance property — that scan→filter→project plans share
// table storage instead of copying it.

#include "exec/vector.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "exec/basic_operators.h"
#include "exec/expression.h"
#include "exec/gather.h"
#include "exec/scan.h"
#include "sql/query_engine.h"
#include "storage/table.h"
#include "test_util.h"

namespace indbml {
namespace {

using exec::DataChunk;
using exec::DataType;
using exec::ExecContext;
using exec::SelectionVector;
using exec::Vector;

int64_t Metric(const std::string& name) {
  return metrics::Registry::Global().counter(name)->value();
}

/// A finalized one-column int64 table with values 0..rows-1.
storage::TablePtr IotaTable(int64_t rows) {
  auto table = std::make_shared<storage::Table>(
      "t", std::vector<storage::Field>{{"a", DataType::kInt64},
                                       {"x", DataType::kFloat}});
  table->Reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    INDBML_CHECK(table
                     ->AppendRow({storage::Value::Int64(i),
                                  storage::Value::Float(static_cast<float>(i) / 2)})
                     .ok());
  }
  table->Finalize();
  return table;
}

// ---------- representations ----------

TEST(VectorViewTest, ViewSharesBufferAndReadsThrough) {
  BufferPtr buf = Buffer::New(8 * sizeof(int64_t));
  auto* data = reinterpret_cast<int64_t*>(buf->data());
  for (int64_t i = 0; i < 8; ++i) data[i] = 100 + i;

  Vector v = Vector::View(DataType::kInt64, buf, 2, 4);  // rows 102..105
  EXPECT_EQ(v.size(), 4);
  EXPECT_FALSE(v.has_selection());
  EXPECT_EQ(v.buffer().get(), buf.get());
  EXPECT_EQ(std::as_const(v).ints()[0], 102);
  EXPECT_EQ(v.GetInt64At(3), 105);
  // Two owners: the view and `buf` — no data was copied.
  EXPECT_EQ(buf.use_count(), 2);
}

TEST(VectorViewTest, SelectionComposes) {
  BufferPtr buf = Buffer::New(8 * sizeof(int64_t));
  auto* data = reinterpret_cast<int64_t*>(buf->data());
  for (int64_t i = 0; i < 8; ++i) data[i] = i;

  Vector v = Vector::View(DataType::kInt64, buf, 0, 8);
  auto evens = std::make_shared<const SelectionVector>(
      std::vector<int32_t>{0, 2, 4, 6});
  Vector selected = v.WithSelection(evens);
  EXPECT_EQ(selected.size(), 4);
  EXPECT_TRUE(selected.has_selection());
  EXPECT_EQ(selected.GetInt64At(1), 2);
  EXPECT_EQ(selected.buffer().get(), buf.get());

  // Selecting a selected view composes indices: logical rows {1, 3} of
  // `selected` are base rows {2, 6}.
  auto odd_positions =
      std::make_shared<const SelectionVector>(std::vector<int32_t>{1, 3});
  Vector composed = selected.WithSelection(odd_positions);
  EXPECT_EQ(composed.size(), 2);
  EXPECT_EQ(composed.GetInt64At(0), 2);
  EXPECT_EQ(composed.GetInt64At(1), 6);
  EXPECT_EQ(composed.buffer().get(), buf.get());
}

TEST(VectorViewTest, FlattenMaterializesSelectedRows) {
  BufferPtr buf = Buffer::New(6 * sizeof(float));
  auto* data = reinterpret_cast<float*>(buf->data());
  for (int64_t i = 0; i < 6; ++i) data[i] = static_cast<float>(i) * 1.5f;

  Vector v = Vector::View(DataType::kFloat, buf, 0, 6)
                 .WithSelection(std::make_shared<const SelectionVector>(
                     std::vector<int32_t>{5, 1, 3}));
  const int64_t flattens_before = Metric("vector.flattens");
  v.Flatten();
  EXPECT_EQ(Metric("vector.flattens"), flattens_before + 1);
  EXPECT_FALSE(v.has_selection());
  EXPECT_EQ(v.size(), 3);
  // Private contiguous copy in gather order; the source is untouched.
  EXPECT_NE(v.buffer().get(), buf.get());
  const float* flat = std::as_const(v).floats();
  EXPECT_FLOAT_EQ(flat[0], 7.5f);
  EXPECT_FLOAT_EQ(flat[1], 1.5f);
  EXPECT_FLOAT_EQ(flat[2], 4.5f);
  // Second Flatten is a no-op.
  v.Flatten();
  EXPECT_EQ(Metric("vector.flattens"), flattens_before + 1);
}

TEST(VectorViewTest, CopyIsZeroCopyUntilWrite) {
  Vector owned(DataType::kInt64);
  owned.Resize(4);
  for (int64_t i = 0; i < 4; ++i) owned.ints()[i] = i * 10;

  Vector copy = owned;
  EXPECT_EQ(copy.buffer().get(), owned.buffer().get());

  // First write through the copy triggers copy-on-write: the original keeps
  // its values and its buffer.
  const Buffer* original_buffer = owned.buffer().get();
  copy.ints()[0] = 999;
  EXPECT_NE(copy.buffer().get(), original_buffer);
  EXPECT_EQ(owned.buffer().get(), original_buffer);
  EXPECT_EQ(owned.GetInt64At(0), 0);
  EXPECT_EQ(copy.GetInt64At(0), 999);
  EXPECT_EQ(copy.GetInt64At(3), 30);
}

// ---------- memory accounting ----------

TEST(BufferAccountingTest, SharedBufferCountedExactlyOnce) {
  MemoryTracker& tracker = MemoryTracker::Global();
  const int64_t before = tracker.current_bytes();
  BufferPtr buf = Buffer::New(1 << 20);
  EXPECT_EQ(tracker.current_bytes(), before + (1 << 20));

  // A thousand views over the same buffer add nothing.
  std::vector<Vector> views;
  for (int i = 0; i < 1000; ++i) {
    views.push_back(Vector::View(DataType::kFloat, buf, 0, 16));
  }
  EXPECT_EQ(tracker.current_bytes(), before + (1 << 20));

  // The buffer is freed exactly once, when the last owner lets go.
  buf.reset();
  EXPECT_EQ(tracker.current_bytes(), before + (1 << 20));
  views.clear();
  EXPECT_EQ(tracker.current_bytes(), before);
}

/// Regression for the Table-3 experiment: base-table storage used to be
/// invisible to the tracker; loading a table must move the peak gauge.
TEST(BufferAccountingTest, TableLoadMovesPeakGauge) {
  MemoryTracker& tracker = MemoryTracker::Global();
  const int64_t before = tracker.current_bytes();
  constexpr int64_t kRows = 100000;
  auto table = IotaTable(kRows);
  // int64 + float columns: at least 12 bytes per row must be visible.
  EXPECT_GE(tracker.current_bytes() - before, kRows * 12);
  EXPECT_GE(tracker.peak_bytes(), tracker.current_bytes());
  table.reset();
  EXPECT_EQ(tracker.current_bytes(), before);
}

// ---------- gather kernels ----------

TEST(GatherTest, TypedGatherThroughSelection) {
  BufferPtr buf = Buffer::New(5 * sizeof(int64_t));
  auto* data = reinterpret_cast<int64_t*>(buf->data());
  for (int64_t i = 0; i < 5; ++i) data[i] = i + 1;
  Vector v = Vector::View(DataType::kInt64, buf, 0, 5)
                 .WithSelection(std::make_shared<const SelectionVector>(
                     std::vector<int32_t>{4, 0, 2}));

  float dense[3] = {0, 0, 0};
  exec::GatherToFloat(v, dense);
  EXPECT_FLOAT_EQ(dense[0], 5.0f);
  EXPECT_FLOAT_EQ(dense[1], 1.0f);
  EXPECT_FLOAT_EQ(dense[2], 3.0f);

  // Row-major pack: write the same column at stride 2, offset 1.
  float row_major[6] = {0, 0, 0, 0, 0, 0};
  exec::GatherToFloatStrided(v, row_major + 1, 2);
  EXPECT_FLOAT_EQ(row_major[1], 5.0f);
  EXPECT_FLOAT_EQ(row_major[3], 1.0f);
  EXPECT_FLOAT_EQ(row_major[5], 3.0f);

  exec::TypedDoubleReader reader(v);
  EXPECT_DOUBLE_EQ(reader.DoubleAt(0), 5.0);
  EXPECT_DOUBLE_EQ(reader.DoubleAt(2), 3.0);
}

// ---------- the zero-copy pipeline ----------

TEST(ZeroCopyScanTest, ScanEmitsViewsOverTableStorage) {
  auto table = IotaTable(3000);
  exec::TableScanOperator scan(table, {0, table->num_rows()}, {0, 1}, {});
  ExecContext ctx;
  ASSERT_OK(scan.Open(&ctx));
  DataChunk chunk;
  chunk.Reset(scan.output_types());
  bool eof = false;
  ASSERT_OK(scan.Next(&ctx, &chunk, &eof));
  ASSERT_EQ(chunk.size, kDefaultVectorSize);
  // The chunk's columns ARE the table's buffers — no copy happened.
  EXPECT_EQ(chunk.column(0).buffer().get(), table->column(0).buffer().get());
  EXPECT_EQ(chunk.column(1).buffer().get(), table->column(1).buffer().get());
  EXPECT_EQ(chunk.column(0).GetInt64At(17), 17);

  // Second chunk: a view at offset kDefaultVectorSize.
  chunk.Reset(scan.output_types());
  ASSERT_OK(scan.Next(&ctx, &chunk, &eof));
  EXPECT_EQ(chunk.column(0).GetInt64At(0), kDefaultVectorSize);
  scan.Close(&ctx);
}

TEST(ZeroCopyScanTest, FilterEmitsSelectionsWithoutCopyingBaseColumns) {
  auto table = IotaTable(3000);
  auto scan = std::make_unique<exec::TableScanOperator>(
      table, storage::PartitionRange{0, table->num_rows()},
      std::vector<int>{0, 1}, std::vector<exec::ScanPredicate>{});
  // a % 3 = 0
  auto cond = exec::MakeBinary(
      exec::BinaryOp::kEq,
      exec::MakeBinary(exec::BinaryOp::kMod,
                       exec::MakeColumnRef(0, DataType::kInt64),
                       exec::MakeConstant(storage::Value::Int64(3))),
      exec::MakeConstant(storage::Value::Int64(0)));
  exec::FilterOperator filter(std::move(scan), std::move(cond));

  const int64_t flattens_before = Metric("vector.flattens");
  const int64_t cow_before = Metric("vector.cow_copies");
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto result, exec::DrainOperator(&filter, &ctx));
  ASSERT_EQ(result.num_rows, 1000);
  // Survivor columns are selections over the table's own buffers...
  ASSERT_FALSE(result.chunks.empty());
  for (const DataChunk& chunk : result.chunks) {
    EXPECT_TRUE(chunk.column(0).has_selection());
    EXPECT_EQ(chunk.column(0).buffer().get(), table->column(0).buffer().get());
    EXPECT_EQ(chunk.column(1).buffer().get(), table->column(1).buffer().get());
  }
  // ...and no base column was flattened or copy-on-written to get here.
  EXPECT_EQ(Metric("vector.flattens"), flattens_before);
  EXPECT_EQ(Metric("vector.cow_copies"), cow_before);
  EXPECT_EQ(result.GetValue(1, 0).i, 3);
  EXPECT_EQ(result.GetValue(999, 0).i, 2997);
}

TEST(ZeroCopyScanTest, ScanViewsKeepTableStorageAliveAfterTableIsGone) {
  exec::QueryResult result;
  {
    auto table = IotaTable(2000);
    exec::TableScanOperator scan(table, {0, table->num_rows()}, {0, 1}, {});
    ExecContext ctx;
    ASSERT_OK_AND_ASSIGN(result, exec::DrainOperator(&scan, &ctx));
    // `table` (the last external owner) dies here; the result's views must
    // pin the column buffers (ASan guards the read below).
  }
  ASSERT_EQ(result.num_rows, 2000);
  int64_t sum = 0;
  for (int64_t r = 0; r < result.num_rows; ++r) sum += result.GetValue(r, 0).i;
  EXPECT_EQ(sum, 2000 * 1999 / 2);
}

TEST(ZeroCopyScanTest, LegacyMaterializedScanBitIdentical) {
  auto table = IotaTable(5000);
  exec::ScanPredicate pred;
  pred.column = 0;
  pred.op = exec::BinaryOp::kGe;
  pred.value = storage::Value::Int64(1234);

  exec::TableScanOperator zero_copy(table, {0, table->num_rows()}, {0, 1},
                                    {pred});
  exec::TableScanOperator legacy(table, {0, table->num_rows()}, {0, 1}, {pred},
                                 /*zero_copy=*/false);
  ExecContext ctx;
  ASSERT_OK_AND_ASSIGN(auto a, exec::DrainOperator(&zero_copy, &ctx));
  ASSERT_OK_AND_ASSIGN(auto b, exec::DrainOperator(&legacy, &ctx));
  ASSERT_EQ(a.num_rows, b.num_rows);
  for (int64_t r = 0; r < a.num_rows; ++r) {
    ASSERT_EQ(a.GetValue(r, 0).i, b.GetValue(r, 0).i) << "row " << r;
    ASSERT_EQ(a.GetValue(r, 1).f, b.GetValue(r, 1).f) << "row " << r;
  }
}

/// End-to-end over the engine: the zero_copy_scan Options toggle changes the
/// execution strategy but must not change a single output bit.
TEST(ZeroCopyScanTest, EngineToggleProducesIdenticalResults) {
  auto table = IotaTable(4000);
  const std::string query =
      "SELECT t.a, t.x * 2.0 AS y FROM t WHERE t.a % 7 = 0";

  sql::QueryEngine::Options on;
  on.parallel = false;
  sql::QueryEngine engine_on(on);
  ASSERT_OK(engine_on.catalog()->CreateTable(table));

  sql::QueryEngine::Options off = on;
  off.zero_copy_scan = false;
  sql::QueryEngine engine_off(off);
  ASSERT_OK(engine_off.catalog()->CreateTable(table));

  ASSERT_OK_AND_ASSIGN(auto result_on, engine_on.ExecuteQuery(query));
  ASSERT_OK_AND_ASSIGN(auto result_off, engine_off.ExecuteQuery(query));
  ASSERT_EQ(result_on.num_rows, result_off.num_rows);
  ASSERT_GT(result_on.num_rows, 0);
  for (int64_t r = 0; r < result_on.num_rows; ++r) {
    ASSERT_EQ(result_on.GetValue(r, 0).i, result_off.GetValue(r, 0).i);
    ASSERT_EQ(result_on.GetValue(r, 1).f, result_off.GetValue(r, 1).f);
  }
}

}  // namespace
}  // namespace indbml
