// Tests for the runtime invariant validators (INDBML_VALIDATE=1): chunk
// checks between operators, logical-plan validation after optimizer passes,
// shared-model shape invariants, and the zero-cost-when-disabled contract.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "benchlib/report.h"
#include "common/metrics.h"
#include "common/validation.h"
#include "exec/validate.h"
#include "mltosql/mltosql.h"
#include "modeljoin/shared_model.h"
#include "modeljoin/validate.h"
#include "nn/model.h"
#include "nn/model_meta.h"
#include "sql/optimizer.h"
#include "sql/plan_validate.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using exec::DataChunk;
using exec::DataType;
using exec::Value;

/// Every test in this file restores the environment-driven default.
class ValidationTest : public ::testing::Test {
 protected:
  void TearDown() override { validation::SetEnabledForTesting(-1); }
};

DataChunk MakeChunk(const std::vector<DataType>& types, int64_t rows) {
  DataChunk chunk;
  chunk.Reset(types);
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < types.size(); ++c) {
      switch (types[c]) {
        case DataType::kInt64:
          chunk.column(static_cast<int64_t>(c)).Append(Value::Int64(r));
          break;
        case DataType::kFloat:
          chunk.column(static_cast<int64_t>(c)).Append(Value::Float(0.5f));
          break;
        case DataType::kBool:
          chunk.column(static_cast<int64_t>(c)).Append(Value::Bool(true));
          break;
      }
    }
  }
  chunk.size = rows;
  return chunk;
}

TEST_F(ValidationTest, WellFormedChunkPasses) {
  DataChunk chunk = MakeChunk({DataType::kInt64, DataType::kFloat}, 4);
  EXPECT_OK(exec::ValidateChunk(chunk, {DataType::kInt64, DataType::kFloat},
                                "test"));
}

TEST_F(ValidationTest, MismatchedColumnLengthsCaught) {
  DataChunk chunk = MakeChunk({DataType::kInt64, DataType::kFloat}, 4);
  chunk.column(1).Append(Value::Float(1.0f));  // column 1 now longer
  Status status = exec::ValidateChunk(
      chunk, {DataType::kInt64, DataType::kFloat}, "test");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("length"), std::string::npos)
      << status.ToString();
}

TEST_F(ValidationTest, ColumnTypeMismatchCaught) {
  DataChunk chunk = MakeChunk({DataType::kInt64, DataType::kFloat}, 2);
  Status status = exec::ValidateChunk(
      chunk, {DataType::kFloat, DataType::kFloat}, "test");
  EXPECT_FALSE(status.ok());
}

TEST_F(ValidationTest, NonFiniteFloatCaughtUnlessAllowed) {
  DataChunk chunk = MakeChunk({DataType::kFloat}, 3);
  chunk.column(0).floats()[1] = std::nanf("");
  Status status = exec::ValidateChunk(chunk, {DataType::kFloat}, "test");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("non-finite"), std::string::npos)
      << status.ToString();

  exec::ChunkValidationOptions model_output;
  model_output.allow_non_finite = true;
  EXPECT_OK(exec::ValidateChunk(chunk, {DataType::kFloat}, "test",
                                model_output));
}

TEST_F(ValidationTest, SelectionIndicesBoundsChecked) {
  const int32_t good[] = {0, 3, 7};
  EXPECT_OK(exec::ValidateSelection(good, 3, 8, "test"));
  const int32_t out_of_range[] = {0, 8};
  EXPECT_FALSE(exec::ValidateSelection(out_of_range, 2, 8, "test").ok());
  const int32_t negative[] = {-1};
  EXPECT_FALSE(exec::ValidateSelection(negative, 1, 8, "test").ok());
}

// ---------------------------------------------------------------------------
// Logical-plan validation.

/// Engine with a small fact table for planning test queries.
class PlanValidationTest : public ValidationTest {
 protected:
  void SetUp() override {
    table_ = testutil::MakeTable(
        "t", {{"id", storage::DataType::kInt64}, {"x", storage::DataType::kFloat}},
        {{testutil::I(1), testutil::F(1.5f)},
         {testutil::I(2), testutil::F(2.5f)},
         {testutil::I(3), testutil::F(3.5f)}});
    ASSERT_OK(engine_.catalog()->CreateTable(table_));
  }

  /// Hand-built Scan(t) node with binder ids 1 (id) and 2 (x).
  sql::LogicalOpPtr MakeScan() {
    auto scan = std::make_unique<sql::LogicalOp>();
    scan->kind = sql::LogicalKind::kScan;
    scan->table = table_;
    scan->outputs = {{1, "id", exec::DataType::kInt64},
                     {2, "x", exec::DataType::kFloat}};
    scan->scan_columns = {0, 1};
    return scan;
  }

  sql::QueryEngine engine_;
  storage::TablePtr table_;
};

TEST_F(PlanValidationTest, OptimizedPlanIsValid) {
  ASSERT_OK_AND_ASSIGN(sql::LogicalOpPtr plan,
                       engine_.PlanQuery("SELECT id, x FROM t WHERE id > 1"));
  EXPECT_OK(sql::ValidateLogicalPlan(*plan));
}

TEST_F(PlanValidationTest, DanglingColumnReferenceCaught) {
  // Filter whose condition references a column id no child produces — the
  // signature of a rewrite that re-bound expressions incorrectly.
  auto filter = std::make_unique<sql::LogicalOp>();
  filter->kind = sql::LogicalKind::kFilter;
  filter->children.push_back(MakeScan());
  filter->outputs = filter->children[0]->outputs;
  filter->condition =
      exec::MakeColumnRef(9999, exec::DataType::kBool, "ghost");
  Status status = sql::ValidateLogicalPlan(*filter);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("9999"), std::string::npos)
      << status.ToString();
}

TEST_F(PlanValidationTest, WrongChildCountCaught) {
  sql::LogicalOp broken;
  broken.kind = sql::LogicalKind::kFilter;  // filter needs exactly one child
  broken.outputs = {{1, "id", exec::DataType::kInt64}};
  EXPECT_FALSE(sql::ValidateLogicalPlan(broken).ok());
}

TEST_F(PlanValidationTest, ScanColumnBookkeepingCaught) {
  sql::LogicalOpPtr scan = MakeScan();
  EXPECT_OK(sql::ValidateLogicalPlan(*scan));
  scan->scan_columns.pop_back();  // outputs and scan_columns out of sync
  EXPECT_FALSE(sql::ValidateLogicalPlan(*scan).ok());
}

TEST_F(PlanValidationTest, BrokenRewriteCaughtInsideOptimize) {
  validation::SetEnabledForTesting(1);
  ASSERT_OK_AND_ASSIGN(sql::LogicalOpPtr plan,
                       engine_.PlanQuery("SELECT id FROM t"));
  // Corrupt the bound plan, then re-run the optimizer: the validation hook
  // after each pass must refuse it instead of silently planning garbage.
  plan->outputs.clear();
  sql::Optimizer optimizer;
  auto result = optimizer.Optimize(std::move(plan));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("invalid plan"), std::string::npos)
      << result.status().ToString();
}

TEST_F(PlanValidationTest, OptimizeWithValidationAcceptsGoodPlans) {
  validation::SetEnabledForTesting(1);
  ASSERT_OK_AND_ASSIGN(
      auto result,
      engine_.ExecuteQuery("SELECT id, x FROM t WHERE id > 1 ORDER BY id"));
  EXPECT_EQ(result.num_rows, 2);
}

// ---------------------------------------------------------------------------
// Shared-model shape invariants.

TEST_F(ValidationTest, SharedModelShapeInvariantsHold) {
  auto model_or = nn::MakeDenseBenchmarkModel(/*width=*/8, /*depth=*/2, 11);
  ASSERT_TRUE(model_or.ok());
  nn::Model model = std::move(model_or).ValueOrDie();
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK_AND_ASSIGN(storage::TablePtr table, framework.BuildModelTable());
  auto cpu = device::MakeCpuDevice();
  modeljoin::SharedModel shared(nn::MetaOf(model, "m"), cpu.get(), 1, 64);
  ASSERT_OK(shared.BuildPartition(*table, 0));
  EXPECT_OK(modeljoin::ValidateSharedModelShape(shared));
}

TEST_F(ValidationTest, SharedModelBuildRunsShapeCheckWhenEnabled) {
  validation::SetEnabledForTesting(1);
  auto model_or = nn::MakeDenseBenchmarkModel(/*width=*/6, /*depth=*/2, 13);
  ASSERT_TRUE(model_or.ok());
  nn::Model model = std::move(model_or).ValueOrDie();
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK_AND_ASSIGN(storage::TablePtr table, framework.BuildModelTable());
  auto cpu = device::MakeCpuDevice();
  modeljoin::SharedModel shared(nn::MetaOf(model, "m"), cpu.get(), 1, 32);
  EXPECT_OK(shared.BuildPartition(*table, 0));
}

// ---------------------------------------------------------------------------
// Cost contract: with validation disabled nothing is checked (the planner
// never instantiates ValidatingOperator), so the chunk counter stays flat.

TEST_F(PlanValidationTest, DisabledValidationChecksNothing) {
  metrics::Counter* checked =
      metrics::Registry::Global().counter("validate.chunks_checked");

  validation::SetEnabledForTesting(0);
  int64_t before = checked->value();
  ASSERT_OK_AND_ASSIGN(auto off_result,
                       engine_.ExecuteQuery("SELECT id, x FROM t"));
  EXPECT_EQ(off_result.num_rows, 3);
  int64_t off_delta = checked->value() - before;
  EXPECT_EQ(off_delta, 0);

  validation::SetEnabledForTesting(1);
  before = checked->value();
  ASSERT_OK_AND_ASSIGN(auto on_result,
                       engine_.ExecuteQuery("SELECT id, x FROM t"));
  EXPECT_EQ(on_result.num_rows, 3);
  int64_t on_delta = checked->value() - before;
  EXPECT_GT(on_delta, 0);

  // Benchlib smoke row: the overhead table every bench could emit.
  benchlib::ReportTable report("validate_smoke",
                               {"mode", "chunks_checked_delta"});
  report.AddRow({"off", std::to_string(off_delta)});
  report.AddRow({"on", std::to_string(on_delta)});
  report.Finish();
}

}  // namespace
}  // namespace indbml
