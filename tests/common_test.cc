#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/memory_tracker.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "test_util.h"

namespace indbml {
namespace {

double benchmark_sink_ = 0;

// ---------- Status / Result ----------

TEST(StatusTest, CodesAndMessages) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::InvalidArgument("bad input");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad input");
}

TEST(ResultTest, ValueAndError) {
  Result<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  EXPECT_TRUE(value.status().ok());

  Result<int> error = Status::NotFound("nope");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  INDBML_ASSIGN_OR_RETURN(int half, Half(x));
  INDBML_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_OK_AND_ASSIGN(int q, Quarter(8));
  EXPECT_EQ(q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
}

// ---------- string utils ----------

TEST(StringUtilTest, Basics) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("Node_In", "node_in"));
  EXPECT_FALSE(EqualsIgnoreCase("node", "nodes"));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(Trim("  x \t"), "x");
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

// ---------- random ----------

TEST(RandomTest, DeterministicPerSeed) {
  Random a(123);
  Random b(123);
  Random c(124);
  bool all_equal = true;
  bool any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextUint64();
    if (va != b.NextUint64()) all_equal = false;
    if (va != c.NextUint64()) any_diff_c = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_c);
}

TEST(RandomTest, RangesRespected) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    float f = rng.NextFloat(-2.0f, 3.0f);
    EXPECT_GE(f, -2.0f);
    EXPECT_LT(f, 3.0f);
    EXPECT_LT(rng.NextUint64(7), 7u);
  }
}

TEST(RandomTest, GaussianMoments) {
  Random rng(17);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// ---------- thread pool + barrier ----------

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { ++done; });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 10);
}

TEST(BarrierTest, ReleasesAllAndIsReusable) {
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::atomic<int> phase1{0};
  std::atomic<int> phase2{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ++phase1;
      barrier.Wait();
      // Everyone must have finished phase 1.
      EXPECT_EQ(phase1.load(), kThreads);
      ++phase2;
      barrier.Wait();
      EXPECT_EQ(phase2.load(), kThreads);
    });
  }
  for (auto& t : threads) t.join();
}

// ---------- memory tracker ----------

TEST(MemoryTrackerTest, PeakSemantics) {
  MemoryTracker& tracker = MemoryTracker::Global();
  int64_t base = tracker.current_bytes();
  tracker.ResetPeak();
  tracker.Allocate(1000);
  tracker.Allocate(2000);
  tracker.Free(2500);
  EXPECT_EQ(tracker.current_bytes(), base + 500);
  EXPECT_GE(tracker.peak_bytes(), base + 3000);
  tracker.Free(500);
  tracker.ResetPeak();
  EXPECT_EQ(tracker.peak_bytes(), tracker.current_bytes());
}

TEST(MemoryTrackerTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(MemoryTrackerTest, RssReadable) { EXPECT_GT(ReadProcessRssBytes(), 0); }

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  benchmark_sink_ = sink;  // keep the loop observable
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMicros(), 0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace indbml
