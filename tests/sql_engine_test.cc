#include <gtest/gtest.h>

#include <set>

#include "benchlib/workloads.h"
#include "mltosql/mltosql.h"
#include "modeljoin/register.h"
#include "nn/model.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using sql::QueryEngine;
using testutil::Cell;
using testutil::F;
using testutil::I;
using testutil::MakeTable;

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<QueryEngine>();
    auto t = MakeTable(
        "points",
        {{"id", storage::DataType::kInt64},
         {"x", storage::DataType::kFloat},
         {"y", storage::DataType::kFloat},
         {"tag", storage::DataType::kInt64}},
        {
            {I(0), F(1.0f), F(10.0f), I(1)},
            {I(1), F(2.0f), F(20.0f), I(1)},
            {I(2), F(3.0f), F(30.0f), I(2)},
            {I(3), F(4.0f), F(40.0f), I(2)},
            {I(4), F(5.0f), F(50.0f), I(3)},
        });
    t->SetUniqueIdColumn("id");
    t->SetSortedBy({"id"});
    ASSERT_OK(engine_->catalog()->CreateTable(t));

    auto small = MakeTable("tags",
                           {{"tag", storage::DataType::kInt64},
                            {"label", storage::DataType::kInt64}},
                           {
                               {I(1), I(100)},
                               {I(2), I(200)},
                               {I(3), I(300)},
                           });
    ASSERT_OK(engine_->catalog()->CreateTable(small));
  }

  exec::QueryResult Run(const std::string& sql) {
    auto result = engine_->ExecuteQuery(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\nSQL: " << sql;
    return result.ok() ? std::move(result).ValueOrDie() : exec::QueryResult{};
  }

  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(SqlEngineTest, SelectStar) {
  auto r = Run("SELECT * FROM points");
  EXPECT_EQ(r.num_rows, 5);
  EXPECT_EQ(r.names.size(), 4u);
  EXPECT_EQ(Cell(r, 2, 1), 3.0);
}

TEST_F(SqlEngineTest, Projection) {
  auto r = Run("SELECT x + y AS s, x * 2 AS d FROM points");
  EXPECT_EQ(r.num_rows, 5);
  EXPECT_EQ(r.names[0], "s");
  EXPECT_DOUBLE_EQ(Cell(r, 0, 0), 11.0);
  EXPECT_DOUBLE_EQ(Cell(r, 4, 1), 10.0);
}

TEST_F(SqlEngineTest, Filter) {
  auto r = Run("SELECT id FROM points WHERE x > 2.5");
  EXPECT_EQ(r.num_rows, 3);
  EXPECT_EQ(Cell(r, 0, 0), 2);
}

TEST_F(SqlEngineTest, FilterConjunction) {
  auto r = Run("SELECT id FROM points WHERE x > 1.5 AND y < 45.0");
  EXPECT_EQ(r.num_rows, 3);
}

TEST_F(SqlEngineTest, NegativeLiteralComparison) {
  auto r = Run("SELECT id FROM points WHERE tag <> -1");
  EXPECT_EQ(r.num_rows, 5);
}

TEST_F(SqlEngineTest, CaseExpression) {
  auto r = Run(
      "SELECT CASE WHEN x < 2.5 THEN 0 WHEN x < 4.5 THEN 1 ELSE 2 END AS bucket "
      "FROM points");
  EXPECT_EQ(r.num_rows, 5);
  EXPECT_EQ(Cell(r, 0, 0), 0);
  EXPECT_EQ(Cell(r, 2, 0), 1);
  EXPECT_EQ(Cell(r, 4, 0), 2);
}

TEST_F(SqlEngineTest, ScalarFunctions) {
  auto r = Run("SELECT sigmoid(0.0) AS s, tanh(0.0) AS t, relu(-3.0) AS re "
               "FROM points LIMIT 1");
  EXPECT_NEAR(Cell(r, 0, 0), 0.5, 1e-6);
  EXPECT_NEAR(Cell(r, 0, 1), 0.0, 1e-6);
  EXPECT_NEAR(Cell(r, 0, 2), 0.0, 1e-6);
}

TEST_F(SqlEngineTest, HashJoin) {
  auto r = Run(
      "SELECT p.id, t.label FROM points AS p, tags AS t "
      "WHERE p.tag = t.tag ORDER BY p.id");
  EXPECT_EQ(r.num_rows, 5);
  EXPECT_EQ(Cell(r, 0, 1), 100);
  EXPECT_EQ(Cell(r, 4, 1), 300);
}

TEST_F(SqlEngineTest, ExplicitJoinSyntax) {
  auto r = Run(
      "SELECT p.id, t.label FROM points p INNER JOIN tags t ON p.tag = t.tag "
      "ORDER BY p.id");
  EXPECT_EQ(r.num_rows, 5);
}

TEST_F(SqlEngineTest, CrossJoin) {
  auto r = Run("SELECT p.id, t.tag FROM points p CROSS JOIN tags t");
  EXPECT_EQ(r.num_rows, 15);
}

TEST_F(SqlEngineTest, GroupByAggregate) {
  auto r = Run(
      "SELECT tag, SUM(x) AS sx, COUNT(*) AS c FROM points GROUP BY tag "
      "ORDER BY tag");
  EXPECT_EQ(r.num_rows, 3);
  EXPECT_DOUBLE_EQ(Cell(r, 0, 1), 3.0);
  EXPECT_EQ(Cell(r, 0, 2), 2);
  EXPECT_DOUBLE_EQ(Cell(r, 2, 1), 5.0);
}

TEST_F(SqlEngineTest, AggregateExpressionOnTop) {
  auto r = Run(
      "SELECT tag, SUM(x) + MIN(y) AS combo FROM points GROUP BY tag ORDER BY tag");
  EXPECT_EQ(r.num_rows, 3);
  EXPECT_DOUBLE_EQ(Cell(r, 0, 1), 13.0);
}

TEST_F(SqlEngineTest, AvgMinMax) {
  auto r = Run("SELECT tag, AVG(x) a, MIN(x) mn, MAX(x) mx FROM points "
               "GROUP BY tag ORDER BY tag");
  EXPECT_DOUBLE_EQ(Cell(r, 0, 1), 1.5);
  EXPECT_DOUBLE_EQ(Cell(r, 1, 2), 3.0);
  EXPECT_DOUBLE_EQ(Cell(r, 2, 3), 5.0);
}

TEST_F(SqlEngineTest, Subquery) {
  auto r = Run(
      "SELECT s.id2 FROM (SELECT id + 1 AS id2 FROM points WHERE x > 3.5) AS s "
      "ORDER BY s.id2");
  EXPECT_EQ(r.num_rows, 2);
  EXPECT_EQ(Cell(r, 0, 0), 4);
  EXPECT_EQ(Cell(r, 1, 0), 5);
}

TEST_F(SqlEngineTest, NestedSubqueryWithAggregation) {
  auto r = Run(
      "SELECT t.tag, SUM(t.sx) AS total FROM "
      "(SELECT tag, SUM(x) AS sx FROM points GROUP BY tag) AS t "
      "GROUP BY t.tag ORDER BY t.tag");
  EXPECT_EQ(r.num_rows, 3);
  EXPECT_DOUBLE_EQ(Cell(r, 0, 1), 3.0);
}

TEST_F(SqlEngineTest, OrderByDesc) {
  auto r = Run("SELECT id FROM points ORDER BY id DESC");
  EXPECT_EQ(Cell(r, 0, 0), 4);
  EXPECT_EQ(Cell(r, 4, 0), 0);
}

TEST_F(SqlEngineTest, Limit) {
  auto r = Run("SELECT id FROM points ORDER BY id LIMIT 2");
  EXPECT_EQ(r.num_rows, 2);
}

TEST_F(SqlEngineTest, GroupByIdUsesStreamingAggregate) {
  // Sorted-by-id scan + grouping on id should select the streaming strategy.
  ASSERT_OK_AND_ASSIGN(auto plan,
                       engine_->PlanQuery("SELECT id, SUM(x) s FROM points GROUP BY id"));
  std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("streaming"), std::string::npos) << rendered;
}

TEST_F(SqlEngineTest, ErrorUnknownTable) {
  auto result = engine_->ExecuteQuery("SELECT * FROM nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(SqlEngineTest, ErrorUnknownColumn) {
  auto result = engine_->ExecuteQuery("SELECT zzz FROM points");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST_F(SqlEngineTest, ErrorAmbiguousColumn) {
  auto result =
      engine_->ExecuteQuery("SELECT tag FROM points p, tags t WHERE p.tag = t.tag");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST_F(SqlEngineTest, ErrorBareColumnWithGroupBy) {
  auto result = engine_->ExecuteQuery("SELECT x FROM points GROUP BY tag");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST_F(SqlEngineTest, ErrorParse) {
  auto result = engine_->ExecuteQuery("SELEKT * FROM points");
  EXPECT_FALSE(result.ok());
}

TEST_F(SqlEngineTest, ExplainAnalyzeModelJoin) {
  modeljoin::RegisterNativeModelJoin(engine_.get());
  auto fact = benchlib::MakeIrisTable("fact", 3000);
  ASSERT_OK(engine_->catalog()->CreateTable(fact));
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(64, 3, 21));
  mltosql::MlToSql framework(&model, "m");
  ASSERT_OK(framework.Deploy(engine_.get()));
  engine_->models()->Register(nn::MetaOf(model, "dense64"));

  // Programmatic profile: the ModelJoin node reports the correct row count
  // and nonzero build and inference phase timings per partition aggregate.
  exec::QueryProfile profile;
  std::string sql =
      "SELECT id, prediction FROM fact MODEL JOIN m USING MODEL 'dense64' "
      "DEVICE 'cpu' PREDICT (sepal_length, sepal_width, petal_length, "
      "petal_width)";
  ASSERT_OK_AND_ASSIGN(auto result, engine_->ExecuteQuery(sql, &profile));
  EXPECT_EQ(result.num_rows, 3000);
  ASSERT_GT(profile.num_nodes(), 0);
  int modeljoin_node = -1;
  for (int n = 0; n < profile.num_nodes(); ++n) {
    if (profile.node_label(n).find("ModelJoin") != std::string::npos) {
      modeljoin_node = n;
    }
  }
  ASSERT_GE(modeljoin_node, 0);
  exec::OperatorStats stats = profile.Aggregate(modeljoin_node);
  EXPECT_EQ(stats.rows, 3000);
  EXPECT_GT(stats.chunks, 0);
  EXPECT_GT(stats.phase_nanos.at("build"), 0);
  EXPECT_GT(stats.phase_nanos.at("inference"), 0);
  EXPECT_GT(stats.phase_nanos.at("convert"), 0);
  EXPECT_GT(profile.wall_nanos(), 0);
  EXPECT_GE(profile.peak_memory_bytes(), 0);

  // Rendered form: annotated plan tree with rows and phase breakdowns.
  ASSERT_OK_AND_ASSIGN(std::string text, engine_->ExplainAnalyze(sql));
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos) << text;
  EXPECT_NE(text.find("ModelJoin"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan fact"), std::string::npos) << text;
  EXPECT_NE(text.find("rows=3000"), std::string::npos) << text;
  EXPECT_NE(text.find("build="), std::string::npos) << text;
  EXPECT_NE(text.find("inference="), std::string::npos) << text;
  EXPECT_NE(text.find("peak_memory="), std::string::npos) << text;
}

TEST_F(SqlEngineTest, ExplainAnalyzePlainQueryCountsRows) {
  ASSERT_OK_AND_ASSIGN(std::string text,
                       engine_->ExplainAnalyze("SELECT id FROM points WHERE x > 2.5"));
  EXPECT_NE(text.find("Scan points"), std::string::npos) << text;
  EXPECT_NE(text.find("rows=3"), std::string::npos) << text;
}

TEST_F(SqlEngineTest, ProfilingOffByDefaultStillExecutes) {
  // No profile requested: same results, no ProfiledOperator in the tree
  // (nothing observable to assert beyond correct execution).
  auto r = Run("SELECT COUNT(*) AS n FROM points");
  EXPECT_EQ(Cell(r, 0, 0), 5);
}

}  // namespace
}  // namespace indbml
