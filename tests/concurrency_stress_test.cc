// Concurrency stress tests, written to run under ThreadSanitizer
// (-DINDBML_SANITIZE=thread). Each test hammers one of the engine's shared
// concurrency primitives hard enough that a missing happens-before edge
// shows up as a TSan report (or, without TSan, as a flaky count mismatch).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "exec/morsel.h"
#include "mltosql/mltosql.h"
#include "modeljoin/shared_model.h"
#include "nn/model.h"
#include "nn/model_meta.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

// Small under TSan-free builds would finish instantly; sized so a TSan build
// still completes in seconds on one core.
constexpr int kRounds = 50;
constexpr int kTasksPerRound = 64;

/// Submit/WaitIdle churn: WaitIdle() is the engine's pipeline barrier, so a
/// task counted as finished must have all its writes visible to the waiter.
TEST(ThreadPoolStressTest, SubmitWaitIdleHammer) {
  ThreadPool pool(4);
  int64_t plain_counter = 0;  // deliberately non-atomic: WaitIdle must order it
  std::atomic<int64_t> atomic_counter{0};
  for (int round = 0; round < kRounds; ++round) {
    std::vector<int64_t> results(kTasksPerRound, 0);
    for (int t = 0; t < kTasksPerRound; ++t) {
      pool.Submit([&results, &atomic_counter, t] {
        results[static_cast<size_t>(t)] = t + 1;
        atomic_counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.WaitIdle();
    // Every task's write must be visible after WaitIdle returns.
    for (int t = 0; t < kTasksPerRound; ++t) {
      ASSERT_EQ(results[static_cast<size_t>(t)], t + 1) << "round " << round;
      plain_counter += 1;
    }
  }
  EXPECT_EQ(plain_counter, int64_t{kRounds} * kTasksPerRound);
  EXPECT_EQ(atomic_counter.load(), int64_t{kRounds} * kTasksPerRound);
}

/// WaitIdle on an empty pool and zero-task rounds must not hang or race.
TEST(ThreadPoolStressTest, WaitIdleWithoutWork) {
  ThreadPool pool(2);
  for (int i = 0; i < 100; ++i) pool.WaitIdle();
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1);
}

/// ParallelFor writes to disjoint slots; the implicit wait must publish them.
TEST(ThreadPoolStressTest, ParallelForDisjointWrites) {
  ThreadPool pool(4);
  constexpr int kN = 512;
  std::vector<int64_t> data(kN, 0);
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(kN, [&data, round](int i) {
      data[static_cast<size_t>(i)] = int64_t{round} * kN + i;
    });
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(data[static_cast<size_t>(i)], int64_t{round} * kN + i);
    }
  }
}

/// Barrier reuse across many generations (paper §5.2 uses one barrier per
/// phase; the implementation is generation-counted so one object can gate
/// many rounds). Each participant increments before the barrier and checks
/// the full sum after it; a second Wait() per round keeps the check phase
/// from racing with the next round's increments.
TEST(BarrierStressTest, MultiGenerationReuse) {
  constexpr int kParticipants = 4;
  constexpr int kGenerations = 200;
  ThreadPool pool(kParticipants);
  Barrier barrier(kParticipants);
  std::atomic<int64_t> sum{0};
  std::atomic<int64_t> mismatches{0};
  for (int p = 0; p < kParticipants; ++p) {
    pool.Submit([&barrier, &sum, &mismatches] {
      for (int gen = 1; gen <= kGenerations; ++gen) {
        sum.fetch_add(1, std::memory_order_relaxed);
        barrier.Wait();  // everyone incremented for this generation
        if (sum.load(std::memory_order_relaxed) !=
            int64_t{gen} * kParticipants) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        barrier.Wait();  // everyone checked; next generation may start
      }
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(sum.load(), int64_t{kGenerations} * kParticipants);
}

/// A Barrier sized 1 degenerates to a no-op and must never block.
TEST(BarrierStressTest, SingleParticipant) {
  Barrier barrier(1);
  for (int i = 0; i < 1000; ++i) barrier.Wait();
}

/// Concurrent metric updates while another thread snapshots the registry.
/// Update paths are relaxed atomics; snapshots take the registry mutex, so
/// the only requirement is absence of data races, not a consistent cut.
TEST(MetricsStressTest, ConcurrentUpdatesAndSnapshots) {
  auto& registry = metrics::Registry::Global();
  metrics::Counter* counter = registry.counter("stress.counter");
  metrics::Gauge* gauge = registry.gauge("stress.gauge");
  metrics::Histogram* histogram = registry.histogram("stress.histogram");
  counter->Reset();
  histogram->Reset();

  constexpr int kWriters = 3;
  constexpr int kUpdates = 5000;
  ThreadPool pool(kWriters + 1);
  std::atomic<bool> done{false};
  // Snapshot reader: exercises TextSnapshot/JsonSnapshot/FlatValues against
  // live writers.
  pool.Submit([&registry, &done] {
    while (!done.load(std::memory_order_acquire)) {
      std::string text = registry.TextSnapshot();
      ASSERT_NE(text.find("stress.counter"), std::string::npos);
      (void)registry.JsonSnapshot();
      (void)registry.FlatValues();
    }
  });
  for (int w = 0; w < kWriters; ++w) {
    pool.Submit([counter, gauge, histogram, w] {
      for (int i = 0; i < kUpdates; ++i) {
        counter->Increment();
        gauge->Set(w * kUpdates + i);
        histogram->Record(i);
      }
    });
  }
  // Writers finish, then release the reader. WaitIdle would deadlock with a
  // spinning reader, so flip the flag once the counter shows all updates.
  while (counter->value() < int64_t{kWriters} * kUpdates) {
  }
  done.store(true, std::memory_order_release);
  pool.WaitIdle();

  EXPECT_EQ(counter->value(), int64_t{kWriters} * kUpdates);
  EXPECT_EQ(histogram->count(), int64_t{kWriters} * kUpdates);
  EXPECT_GE(gauge->max(), kUpdates - 1);
}

/// MorselSource under contention: 8 workers hammer one source of tiny
/// morsels. Every morsel must be handed out exactly once with its correct
/// row range. The per-morsel payload slot is written with a deliberately
/// plain (non-atomic) store — a double hand-out becomes a data race TSan
/// reports, and without TSan the claim counters catch it.
TEST(MorselSourceStressTest, ContendedClaimsAreExactlyOnce) {
  constexpr int kWorkers = 8;
  constexpr int64_t kMorsels = 4096;
  std::vector<storage::PartitionRange> morsels;
  morsels.reserve(static_cast<size_t>(kMorsels));
  for (int64_t i = 0; i < kMorsels; ++i) {
    morsels.push_back({i * 4, i * 4 + 4});
  }
  ThreadPool pool(kWorkers);
  for (int round = 0; round < 10; ++round) {
    exec::MorselSource source(morsels);
    std::vector<std::atomic<int>> claims(static_cast<size_t>(kMorsels));
    for (auto& c : claims) c.store(0, std::memory_order_relaxed);
    std::vector<int64_t> payload(static_cast<size_t>(kMorsels), -1);
    std::atomic<int64_t> range_mismatches{0};
    for (int w = 0; w < kWorkers; ++w) {
      pool.Submit([&source, &claims, &payload, &range_mismatches] {
        exec::Morsel m;
        while (source.Next(&m)) {
          if (m.begin != m.index * 4 || m.end != m.index * 4 + 4) {
            range_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          payload[static_cast<size_t>(m.index)] = m.begin;  // plain write
          claims[static_cast<size_t>(m.index)].fetch_add(
              1, std::memory_order_relaxed);
        }
      });
    }
    pool.WaitIdle();
    EXPECT_EQ(range_mismatches.load(), 0);
    for (int64_t i = 0; i < kMorsels; ++i) {
      ASSERT_EQ(claims[static_cast<size_t>(i)].load(), 1)
          << "morsel " << i << " in round " << round;
      ASSERT_EQ(payload[static_cast<size_t>(i)], i * 4);
    }
    // Dry source keeps returning false without handing out more work.
    exec::Morsel extra;
    EXPECT_FALSE(source.Next(&extra));
  }
}

/// Abort mid-drain: workers racing Next against an Abort must stop without
/// double-claims; an aborted source never hands out another morsel.
TEST(MorselSourceStressTest, AbortStopsHandouts) {
  constexpr int kWorkers = 4;
  std::vector<storage::PartitionRange> morsels;
  for (int64_t i = 0; i < 100000; ++i) morsels.push_back({i, i + 1});
  ThreadPool pool(kWorkers);
  exec::MorselSource source(std::move(morsels));
  std::atomic<int64_t> claimed{0};
  for (int w = 0; w < kWorkers; ++w) {
    pool.Submit([&source, &claimed, w] {
      exec::Morsel m;
      while (source.Next(&m)) {
        if (claimed.fetch_add(1, std::memory_order_relaxed) > 500 && w == 0) {
          source.Abort();
        }
      }
    });
  }
  pool.WaitIdle();
  EXPECT_TRUE(source.aborted());
  EXPECT_LT(claimed.load(), 100000);
  exec::Morsel extra;
  EXPECT_FALSE(source.Next(&extra));
}

/// Concurrent ModelJoin shared-model builds: every partition thread parses
/// its slice into the shared weight matrices and rendezvouses on the build
/// barrier. Repeated rounds catch generation/reuse races in the barriers.
TEST(SharedModelStressTest, ConcurrentBuildRounds) {
  auto model_or = nn::MakeDenseBenchmarkModel(/*width=*/12, /*depth=*/3, 7);
  ASSERT_TRUE(model_or.ok());
  nn::Model model = std::move(model_or).ValueOrDie();
  mltosql::MlToSql framework(&model, "m");
  auto table_or = framework.BuildModelTable();
  ASSERT_TRUE(table_or.ok());
  storage::TablePtr table = std::move(table_or).ValueOrDie();
  auto cpu = device::MakeCpuDevice();

  constexpr int kPartitions = 5;
  ThreadPool pool(kPartitions);
  for (int round = 0; round < 10; ++round) {
    modeljoin::SharedModel shared(nn::MetaOf(model, "m"), cpu.get(),
                                  kPartitions, 256);
    std::vector<Status> statuses(kPartitions);
    for (int p = 0; p < kPartitions; ++p) {
      pool.Submit([&shared, &table, &statuses, p] {
        statuses[static_cast<size_t>(p)] = shared.BuildPartition(*table, p);
      });
    }
    pool.WaitIdle();
    for (const Status& s : statuses) ASSERT_OK(s);
    // Spot-check: all partitions' writes are visible after the barrier.
    const nn::DenseLayer& dense = model.layers()[0].dense;
    const float* w = shared.dense_kernel(0);
    for (int64_t in = 0; in < dense.input_dim; ++in) {
      for (int64_t out = 0; out < dense.units; ++out) {
        ASSERT_FLOAT_EQ(w[out * dense.input_dim + in],
                        dense.kernel.At(in, out));
      }
    }
  }
}

/// Shared-Buffer lifetime under concurrency: a morsel-driven filter query
/// returns chunks that are selection views sharing the base table's column
/// buffers across worker threads. Dropping the table from the catalog,
/// destroying the engine, and releasing the last named TablePtr must leave
/// every view readable — the ref-counted buffers are the only thing keeping
/// the data alive (TSan/ASan guard the reads below).
TEST(SharedBufferStressTest, ResultViewsOutliveEngineAndTable) {
  constexpr int64_t kRows = 50000;
  exec::QueryResult result;
  {
    auto table = std::make_shared<storage::Table>(
        "t", std::vector<storage::Field>{{"id", storage::DataType::kInt64},
                                         {"k", storage::DataType::kInt64},
                                         {"x", storage::DataType::kFloat}});
    table->Reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      ASSERT_OK(table->AppendRow({storage::Value::Int64(i),
                                  storage::Value::Int64(i % 5),
                                  storage::Value::Float(static_cast<float>(i))}));
    }
    table->Finalize();
    table->SetUniqueIdColumn("id");
    table->SetSortedBy({"id"});

    sql::QueryEngine::Options options;
    options.worker_threads = 5;
    options.morsel_rows = 64;
    auto engine = std::make_unique<sql::QueryEngine>(options);
    ASSERT_OK(engine->catalog()->CreateTable(table));
    ASSERT_OK_AND_ASSIGN(result, engine->ExecuteQuery(
                                     "SELECT t.id, t.x FROM t WHERE t.k = 3"));
    ASSERT_OK(engine->catalog()->DropTable("t"));
    engine.reset();
    // `table` — the last named owner — dies at scope end.
  }

  ASSERT_EQ(result.num_rows, kRows / 5);
  // Hammer the orphaned views from several threads at once: concurrent
  // readers of the shared immutable buffers must be race-free.
  constexpr int kReaders = 4;
  ThreadPool pool(kReaders);
  std::vector<int64_t> sums(kReaders, 0);
  for (int p = 0; p < kReaders; ++p) {
    pool.Submit([&result, &sums, p] {
      const int64_t stripe = (result.num_rows + kReaders - 1) / kReaders;
      const int64_t begin = p * stripe;
      const int64_t end = std::min(result.num_rows, begin + stripe);
      int64_t sum = 0;
      for (int64_t r = begin; r < end; ++r) sum += result.GetValue(r, 0).i;
      sums[static_cast<size_t>(p)] = sum;
    });
  }
  pool.WaitIdle();
  int64_t total = 0;
  for (int64_t s : sums) total += s;
  // ids ≡ 3 (mod 5) over [0, kRows): 10000 survivors summing to 250005000.
  EXPECT_EQ(total, 250005000);
}

}  // namespace
}  // namespace indbml
