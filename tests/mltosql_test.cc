#include "mltosql/mltosql.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "benchlib/workloads.h"
#include "nn/model.h"
#include "sql/query_engine.h"
#include "test_util.h"

namespace indbml {
namespace {

using mltosql::FactTableInfo;
using mltosql::MlToSql;
using mltosql::MlToSqlOptions;
using sql::QueryEngine;

/// Reference predictions keyed by row id.
std::map<int64_t, std::vector<float>> ReferencePredictions(
    const nn::Model& model, const storage::Table& fact,
    const std::vector<std::string>& input_columns) {
  int64_t n = fact.num_rows();
  nn::Tensor x = nn::Tensor::Matrix(n, model.input_width());
  std::vector<int> col_idx;
  for (const auto& name : input_columns) {
    auto idx = fact.ColumnIndex(name);
    INDBML_CHECK(idx.ok());
    col_idx.push_back(*idx);
  }
  int id_col = *fact.ColumnIndex("id");
  for (int64_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < col_idx.size(); ++c) {
      x.At(r, static_cast<int64_t>(c)) = fact.column(col_idx[c]).GetFloat(r);
    }
  }
  auto pred = model.Predict(x);
  INDBML_CHECK(pred.ok());
  std::map<int64_t, std::vector<float>> by_id;
  for (int64_t r = 0; r < n; ++r) {
    std::vector<float> row(static_cast<size_t>(model.output_dim()));
    for (int64_t c = 0; c < model.output_dim(); ++c) row[static_cast<size_t>(c)] = pred->At(r, c);
    by_id[fact.column(id_col).GetInt64(r)] = row;
  }
  return by_id;
}

struct OptionCase {
  bool unique_ids;
  bool range_filters;
  bool sorted;
};

class MlToSqlOptionsTest : public ::testing::TestWithParam<OptionCase> {};

TEST_P(MlToSqlOptionsTest, DensePredictionsMatchReference) {
  OptionCase oc = GetParam();
  QueryEngine engine;
  auto fact = benchlib::MakeIrisTable("fact", 300);
  ASSERT_OK(engine.catalog()->CreateTable(fact));

  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 7));
  MlToSqlOptions options;
  options.unique_node_ids = oc.unique_ids;
  options.range_filters = oc.range_filters;
  options.sorted_model_table = oc.sorted;
  MlToSql framework(&model, "iris_model", options);
  ASSERT_OK(framework.Deploy(&engine));

  FactTableInfo info;
  info.table = "fact";
  info.input_columns = {"sepal_length", "sepal_width", "petal_length", "petal_width"};
  info.payload_columns = {"class"};
  ASSERT_OK_AND_ASSIGN(std::string sqltext, framework.GenerateInferenceSql(info));

  ASSERT_OK_AND_ASSIGN(auto result, engine.ExecuteQuery(sqltext));
  ASSERT_EQ(result.num_rows, 300);

  auto reference = ReferencePredictions(model, *fact, info.input_columns);
  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  for (int64_t r = 0; r < result.num_rows; ++r) {
    int64_t id = result.GetValue(r, id_col).i;
    float expected = reference.at(id)[0];
    float actual = result.GetValue(r, pred_col).f;
    ASSERT_NEAR(actual, expected, 1e-4)
        << "row id " << id << " options(u=" << oc.unique_ids
        << ",f=" << oc.range_filters << ",s=" << oc.sorted << ")";
  }
}

TEST_P(MlToSqlOptionsTest, LstmPredictionsMatchReference) {
  OptionCase oc = GetParam();
  QueryEngine engine;
  auto fact = benchlib::MakeSinusTable("series", 200, 3);
  ASSERT_OK(engine.catalog()->CreateTable(fact));

  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeLstmBenchmarkModel(6, 3, 11));
  MlToSqlOptions options;
  options.unique_node_ids = oc.unique_ids;
  options.range_filters = oc.range_filters;
  options.sorted_model_table = oc.sorted;
  MlToSql framework(&model, "lstm_model", options);
  ASSERT_OK(framework.Deploy(&engine));

  FactTableInfo info;
  info.table = "series";
  info.input_columns = {"x0", "x1", "x2"};
  ASSERT_OK_AND_ASSIGN(std::string sqltext, framework.GenerateInferenceSql(info));

  ASSERT_OK_AND_ASSIGN(auto result, engine.ExecuteQuery(sqltext));
  ASSERT_EQ(result.num_rows, 200);

  auto reference = ReferencePredictions(model, *fact, info.input_columns);
  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  ASSERT_OK_AND_ASSIGN(int pred_col, result.ColumnIndex("prediction"));
  for (int64_t r = 0; r < result.num_rows; ++r) {
    int64_t id = result.GetValue(r, id_col).i;
    ASSERT_NEAR(result.GetValue(r, pred_col).f, reference.at(id)[0], 1e-4)
        << "row id " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOptionCombinations, MlToSqlOptionsTest,
    ::testing::Values(OptionCase{true, true, true}, OptionCase{true, true, false},
                      OptionCase{true, false, true}, OptionCase{true, false, false},
                      OptionCase{false, true, true}, OptionCase{false, true, false},
                      OptionCase{false, false, true},
                      OptionCase{false, false, false}),
    [](const ::testing::TestParamInfo<OptionCase>& info) {
      std::string name;
      name += info.param.unique_ids ? "UniqueIds" : "PairIds";
      name += info.param.range_filters ? "Filters" : "NoFilters";
      name += info.param.sorted ? "Sorted" : "Unsorted";
      return name;
    });

TEST(MlToSqlTest, MultiOutputPivot) {
  QueryEngine engine;
  auto fact = benchlib::MakeIrisTable("fact", 120);
  ASSERT_OK(engine.catalog()->CreateTable(fact));

  nn::ModelBuilder builder(4);
  builder.AddDense(8, nn::Activation::kRelu).AddDense(3, nn::Activation::kSigmoid);
  ASSERT_OK_AND_ASSIGN(nn::Model model, builder.Build(3));

  MlToSql framework(&model, "multi_model");
  ASSERT_OK(framework.Deploy(&engine));
  FactTableInfo info;
  info.table = "fact";
  info.input_columns = {"sepal_length", "sepal_width", "petal_length", "petal_width"};
  ASSERT_OK_AND_ASSIGN(std::string sqltext, framework.GenerateInferenceSql(info));
  ASSERT_OK_AND_ASSIGN(auto result, engine.ExecuteQuery(sqltext));
  ASSERT_EQ(result.num_rows, 120);

  auto reference = ReferencePredictions(model, *fact, info.input_columns);
  ASSERT_OK_AND_ASSIGN(int id_col, result.ColumnIndex("id"));
  for (int64_t j = 0; j < 3; ++j) {
    ASSERT_OK_AND_ASSIGN(
        int pred_col,
        result.ColumnIndex("prediction_" + std::to_string(j)));
    for (int64_t r = 0; r < result.num_rows; ++r) {
      int64_t id = result.GetValue(r, id_col).i;
      ASSERT_NEAR(result.GetValue(r, pred_col).f,
                  reference.at(id)[static_cast<size_t>(j)], 1e-4);
    }
  }
}

TEST(MlToSqlTest, ModelTableShape) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(4, 1, 5));
  MlToSql framework(&model, "m");
  ASSERT_OK_AND_ASSIGN(auto table, framework.BuildModelTable());
  // 4 input edges + 4x4 hidden edges + 4x1 output edges.
  EXPECT_EQ(table->num_rows(), 4 + 16 + 4);
  EXPECT_EQ(table->num_columns(), 14);  // unique ids drop layer columns

  MlToSqlOptions basic;
  basic.unique_node_ids = false;
  MlToSql framework16(&model, "m16", basic);
  ASSERT_OK_AND_ASSIGN(auto table16, framework16.BuildModelTable());
  EXPECT_EQ(table16->num_columns(), 16);  // §4.1: 16-column model table
  EXPECT_EQ(table16->num_rows(), table->num_rows());
}

TEST(MlToSqlTest, LstmModelTableStoresRecurrentKernelOnce) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeLstmBenchmarkModel(5, 3, 5));
  MlToSql framework(&model, "m");
  ASSERT_OK_AND_ASSIGN(auto table, framework.BuildModelTable());
  // 1x5 kernel edges + 5x5 recurrent edges + 5x1 dense output edges,
  // independent of the number of time steps (§4.3.3).
  EXPECT_EQ(table->num_rows(), 5 + 25 + 5);
}

TEST(MlToSqlTest, GenerateLoadStatements) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(4, 1, 5));
  MlToSql framework(&model, "m");
  ASSERT_OK_AND_ASSIGN(auto statements, framework.GenerateLoadStatements());
  ASSERT_EQ(statements.size(), 1u + 24u);  // CREATE + one INSERT per edge
  EXPECT_NE(statements[0].find("CREATE TABLE m"), std::string::npos);
  EXPECT_NE(statements[1].find("INSERT INTO m VALUES"), std::string::npos);
}

TEST(MlToSqlTest, SelfJoinWideningMatchesDirectTable) {
  QueryEngine engine;
  ASSERT_OK(engine.catalog()->CreateTable(benchlib::MakeRawSinusSeries("raw", 50)));
  std::string widen = benchlib::BuildSelfJoinSql("raw", 3);
  ASSERT_OK_AND_ASSIGN(auto wide, engine.ExecuteQuery(widen + " ORDER BY id"));
  // 48 anchors have two successors.
  ASSERT_EQ(wide.num_rows, 48);
  auto direct = benchlib::MakeSinusTable("direct", 48, 3);
  for (int64_t r = 0; r < wide.num_rows; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      ASSERT_NEAR(wide.GetValue(r, c).AsDouble(),
                  direct->column(static_cast<int>(c)).GetValue(r).AsDouble(), 1e-5);
    }
  }
}

TEST(MlToSqlTest, RejectsMismatchedInputColumns) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(4, 1, 5));
  MlToSql framework(&model, "m");
  FactTableInfo info;
  info.table = "fact";
  info.input_columns = {"a", "b"};  // model expects 4
  auto result = framework.GenerateInferenceSql(info);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace indbml
