#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "exec/profile.h"

namespace indbml {
namespace {

/// Minimal structural JSON check: non-empty, starts '{' ends '}', and all
/// braces/brackets balance outside of string literals.
bool JsonWellFormed(const std::string& json) {
  if (json.empty() || json.front() != '{' || json.back() != '}') return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(MetricsTest, CounterAndGauge) {
  metrics::Registry registry;
  metrics::Counter* c = registry.counter("test.count");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);
  // Get-or-create returns the same object.
  EXPECT_EQ(registry.counter("test.count"), c);

  metrics::Gauge* g = registry.gauge("test.level");
  g->Set(10);
  g->Set(100);
  g->Set(30);
  EXPECT_EQ(g->value(), 30);
  EXPECT_EQ(g->max(), 100);

  registry.ResetAll();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->max(), 0);
}

TEST(MetricsTest, HistogramPercentiles) {
  metrics::Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.sum(), 1000 * 1001 / 2);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
  // Log-scale buckets bound the error by one octave.
  double p50 = h.Percentile(50);
  double p95 = h.Percentile(95);
  double p99 = h.Percentile(99);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p95, p50);
  EXPECT_GE(p99, p95);
  EXPECT_LE(p99, 1100.0);

  metrics::Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
  // Zero/negative samples land in the bottom bucket, not UB.
  empty.Record(0);
  empty.Record(-5);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_EQ(empty.sum(), 0);
}

TEST(MetricsTest, RegistryConcurrency) {
  metrics::Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Registration races get-or-create; updates race relaxed atomics.
      metrics::Counter* c = registry.counter("conc.count");
      metrics::Histogram* h = registry.histogram("conc.histo_micros");
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        h->Record(i % 128);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("conc.count")->value(), kThreads * kIters);
  EXPECT_EQ(registry.histogram("conc.histo_micros")->count(), kThreads * kIters);
}

TEST(MetricsTest, Snapshots) {
  metrics::Registry registry;
  registry.counter("snap.rows")->Increment(7);
  registry.gauge("snap.bytes")->Set(1024);
  registry.histogram("snap.micros")->Record(33);

  std::string text = registry.TextSnapshot();
  EXPECT_NE(text.find("counter snap.rows 7"), std::string::npos);
  EXPECT_NE(text.find("gauge snap.bytes 1024"), std::string::npos);
  EXPECT_NE(text.find("histogram snap.micros count=1"), std::string::npos);

  std::string json = registry.JsonSnapshot();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"snap.rows\":7"), std::string::npos);

  auto flat = registry.FlatValues();
  EXPECT_EQ(flat.at("snap.rows"), 7);
  EXPECT_EQ(flat.at("snap.micros.count"), 1);
  EXPECT_EQ(flat.at("snap.micros.sum"), 33);
}

TEST(TraceTest, SpansFromMultipleThreadsExportAsValidChromeTrace) {
  trace::Clear();
  trace::Start();
  trace::SetThreadName("main-test-thread");
  {
    trace::Span outer("outer");
    trace::Span inner("inner \"quoted\"");
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t] {
      trace::SetThreadName("trace-worker-" + std::to_string(t));
      trace::Span span("thread-span-" + std::to_string(t));
    });
  }
  for (auto& t : threads) t.join();
  trace::Stop();

  std::string json = trace::ToJson();
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("inner \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("thread-span-2"), std::string::npos);
  EXPECT_NE(json.find("trace-worker-1"), std::string::npos);
  // Complete events carry the fields Perfetto requires.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  // WriteTo produces the same document on disk and clears the buffers.
  std::string path = ::testing::TempDir() + "/indbml_trace_test.json";
  ASSERT_TRUE(trace::WriteTo(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonWellFormed(buffer.str()));
  EXPECT_NE(buffer.str().find("\"outer\""), std::string::npos);
  std::remove(path.c_str());

  // After Clear/WriteTo no spans remain.
  std::string drained = trace::ToJson();
  EXPECT_EQ(drained.find("\"outer\""), std::string::npos);
}

TEST(TraceTest, DisabledSpansCostNothingAndRecordNothing) {
  trace::Stop();
  trace::Clear();
  {
    trace::Span span("should-not-appear");
  }
  EXPECT_EQ(trace::ToJson().find("should-not-appear"), std::string::npos);
}

TEST(QueryProfileTest, AggregatesAcrossWorkersAndRenders) {
  exec::QueryProfile profile;
  int root = profile.RegisterNode("Project [p]", 0);
  int leaf = profile.RegisterNode("Scan fact [x]", 1);
  profile.SetNumWorkers(2);

  profile.slot(root, 0)->rows = 10;
  profile.slot(root, 1)->rows = 20;
  profile.slot(root, 0)->next_nanos = 1500000;
  profile.slot(root, 0)->AddPhase("inference", 1000000);
  profile.slot(root, 1)->AddPhase("inference", 500000);
  profile.slot(leaf, 0)->rows = 10;
  profile.slot(leaf, 1)->rows = 20;
  profile.set_wall_nanos(2000000);
  profile.set_peak_memory_bytes(4096);

  exec::OperatorStats agg = profile.Aggregate(root);
  EXPECT_EQ(agg.rows, 30);
  EXPECT_EQ(agg.phase_nanos.at("inference"), 1500000);

  std::string text = profile.ToString();
  EXPECT_NE(text.find("workers=2"), std::string::npos);
  EXPECT_NE(text.find("Project [p]"), std::string::npos);
  EXPECT_NE(text.find("  Scan fact [x]"), std::string::npos);
  EXPECT_NE(text.find("rows=30"), std::string::npos);
  EXPECT_NE(text.find("inference=1.500ms"), std::string::npos);
  EXPECT_NE(text.find("peak_memory="), std::string::npos);
}

}  // namespace
}  // namespace indbml
