#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "device/device.h"
#include "mlruntime/runtime.h"
#include "mlruntime/trt_c_api.h"
#include "nn/model.h"
#include "test_util.h"

namespace indbml {
namespace {

// ---------- device abstraction ----------

TEST(DeviceTest, CpuAndSimGpuComputeIdentically) {
  auto cpu = device::MakeCpuDevice();
  auto gpu = device::MakeSimGpuDevice();
  std::vector<float> a = {1, 2, 3, 4};
  std::vector<float> b = {5, 6, 7, 8};
  for (device::Device* d : {cpu.get(), gpu.get()}) {
    float* da = d->Allocate(4);
    float* db = d->Allocate(4);
    float* dc = d->Allocate(4);
    d->CopyToDevice(da, a.data(), 4);
    d->CopyToDevice(db, b.data(), 4);
    d->Gemm(false, false, 2, 2, 2, 1.0f, da, 2, db, 2, 0.0f, dc, 2);
    std::vector<float> out(4);
    d->CopyToHost(out.data(), dc, 4);
    EXPECT_FLOAT_EQ(out[0], 1 * 5 + 2 * 7);
    EXPECT_FLOAT_EQ(out[3], 3 * 6 + 4 * 8);
    d->Free(da, 4);
    d->Free(db, 4);
    d->Free(dc, 4);
  }
}

TEST(DeviceTest, SimGpuAccountsKernelsAndTransfers) {
  device::SimGpuOptions options;
  options.compute_speedup = 4.0;
  options.kernel_launch_seconds = 1e-5;
  options.transfer_latency_seconds = 2e-5;
  options.transfer_bandwidth = 1e9;
  auto gpu = device::MakeSimGpuDevice(options);
  float* buf = gpu->Allocate(1000);
  std::vector<float> host(1000, 1.0f);
  gpu->CopyToDevice(buf, host.data(), 1000);
  gpu->Activate(nn::Activation::kRelu, 1000, buf);
  gpu->CopyToHost(host.data(), buf, 1000);
  device::DeviceStats stats = gpu->stats();
  EXPECT_EQ(stats.transfers, 2);
  EXPECT_EQ(stats.kernel_launches, 1);
  EXPECT_EQ(stats.bytes_to_device, 4000);
  EXPECT_EQ(stats.bytes_to_host, 4000);
  // Two transfer latencies + bandwidth + one kernel launch minimum.
  EXPECT_GE(stats.modeled_seconds, 2 * 2e-5 + 8000.0 / 1e9 + 1e-5);
  gpu->ResetStats();
  EXPECT_EQ(gpu->stats().kernel_launches, 0);
  gpu->Free(buf, 1000);
}

TEST(DeviceTest, BiasRowAdd) {
  auto cpu = device::MakeCpuDevice();
  std::vector<float> matrix = {1, 2, 3, 4, 5, 6};  // 2 rows x 3 cols
  std::vector<float> bias = {10, 20, 30};
  cpu->BiasRowAdd(2, 3, bias.data(), matrix.data());
  EXPECT_FLOAT_EQ(matrix[0], 11);
  EXPECT_FLOAT_EQ(matrix[4], 25);
}

TEST(DeviceTest, SharedDevicesAreStable) {
  EXPECT_EQ(device::SharedCpuDevice(), device::SharedCpuDevice());
  EXPECT_EQ(device::SharedSimGpuDevice(), device::SharedSimGpuDevice());
  EXPECT_NE(device::SharedCpuDevice(), device::SharedSimGpuDevice());
  EXPECT_TRUE(device::SharedSimGpuDevice()->is_gpu());
}

// ---------- tensorrt_lite runtime ----------

struct RuntimeCase {
  bool lstm;
  int64_t width;
  const char* device;
};

class RuntimeSessionTest : public ::testing::TestWithParam<RuntimeCase> {};

TEST_P(RuntimeSessionTest, MatchesNnReference) {
  RuntimeCase p = GetParam();
  Result<nn::Model> model_or = p.lstm ? nn::MakeLstmBenchmarkModel(p.width, 3, 17)
                                      : nn::MakeDenseBenchmarkModel(p.width, 3, 17);
  ASSERT_OK_AND_ASSIGN(nn::Model model, std::move(model_or));

  const int64_t n = 777;
  Random rng(5);
  nn::Tensor x = nn::Tensor::Matrix(n, model.input_width());
  for (int64_t i = 0; i < x.size(); ++i) x[i] = rng.NextFloat(-1, 1);
  ASSERT_OK_AND_ASSIGN(nn::Tensor expected, model.Predict(x));

  ASSERT_OK_AND_ASSIGN(auto session, mlruntime::Session::Create(model, p.device));
  EXPECT_EQ(session->input_width(), model.input_width());
  EXPECT_EQ(session->output_dim(), 1);
  std::vector<float> output(static_cast<size_t>(n));
  ASSERT_OK(session->Run(x.data(), n, output.data()));
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_NEAR(output[static_cast<size_t>(i)], expected[i], 1e-4) << "row " << i;
  }
  EXPECT_GT(session->MemoryBytes(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Models, RuntimeSessionTest,
    ::testing::Values(RuntimeCase{false, 8, "cpu"}, RuntimeCase{false, 32, "gpu"},
                      RuntimeCase{true, 8, "cpu"}, RuntimeCase{true, 16, "gpu"}));

TEST(RuntimeSessionTest, ScratchGrowsAcrossBatchSizes) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(16, 2, 3));
  ASSERT_OK_AND_ASSIGN(auto session, mlruntime::Session::Create(model, "cpu"));
  Random rng(6);
  for (int64_t n : {1, 100, 5000, 10, 6000}) {
    nn::Tensor x = nn::Tensor::Matrix(n, 4);
    for (int64_t i = 0; i < x.size(); ++i) x[i] = rng.NextFloat(-1, 1);
    ASSERT_OK_AND_ASSIGN(nn::Tensor expected, model.Predict(x));
    std::vector<float> output(static_cast<size_t>(n));
    ASSERT_OK(session->Run(x.data(), n, output.data()));
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(output[static_cast<size_t>(i)], expected[i], 1e-4);
    }
  }
}

TEST(RuntimeSessionTest, ZeroRowsIsNoop) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 1));
  ASSERT_OK_AND_ASSIGN(auto session, mlruntime::Session::Create(model, "cpu"));
  ASSERT_OK(session->Run(nullptr, 0, nullptr));
}

// ---------- C API ----------

TEST(TrtCApiTest, FileBasedSession) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeDenseBenchmarkModel(8, 2, 23));
  std::string path = ::testing::TempDir() + "/capi_model.bin";
  ASSERT_OK(model.SaveToFile(path));

  trt_session* session = nullptr;
  ASSERT_EQ(trt_session_create(path.c_str(), "cpu", &session), TRT_OK);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(trt_session_input_width(session), 4);
  EXPECT_EQ(trt_session_output_dim(session), 1);
  EXPECT_GT(trt_session_memory_bytes(session), 0);

  std::vector<float> input = {1.0f, 2.0f, 3.0f, 4.0f};
  float output = 0;
  ASSERT_EQ(trt_session_run(session, input.data(), 1, &output), TRT_OK);

  nn::Tensor x = nn::Tensor::Matrix(1, 4);
  for (int i = 0; i < 4; ++i) x[i] = input[static_cast<size_t>(i)];
  ASSERT_OK_AND_ASSIGN(nn::Tensor expected, model.Predict(x));
  EXPECT_NEAR(output, expected[0], 1e-5);

  trt_session_destroy(session);
  std::remove(path.c_str());
}

TEST(TrtCApiTest, BufferBasedSession) {
  ASSERT_OK_AND_ASSIGN(nn::Model model, nn::MakeLstmBenchmarkModel(4, 3));
  ASSERT_OK_AND_ASSIGN(auto bytes, model.SaveToBytes());
  trt_session* session = nullptr;
  ASSERT_EQ(trt_session_create_from_buffer(bytes.data(), bytes.size(), "gpu",
                                           &session),
            TRT_OK);
  EXPECT_EQ(trt_session_input_width(session), 3);
  trt_session_destroy(session);
}

TEST(TrtCApiTest, ErrorHandling) {
  trt_session* session = nullptr;
  EXPECT_EQ(trt_session_create("/no/such/model", "cpu", &session), TRT_RUNTIME_ERROR);
  EXPECT_NE(std::string(trt_last_error()).size(), 0u);
  EXPECT_EQ(trt_session_create(nullptr, "cpu", &session), TRT_INVALID_ARGUMENT);
  EXPECT_EQ(trt_session_run(nullptr, nullptr, 0, nullptr), TRT_INVALID_ARGUMENT);
  EXPECT_EQ(trt_session_input_width(nullptr), -1);
  trt_session_destroy(nullptr);  // must be safe
}

}  // namespace
}  // namespace indbml
