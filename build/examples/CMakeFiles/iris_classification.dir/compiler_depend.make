# Empty compiler generated dependencies file for iris_classification.
# This may be replaced when dependencies are built.
