file(REMOVE_RECURSE
  "CMakeFiles/iris_classification.dir/iris_classification.cpp.o"
  "CMakeFiles/iris_classification.dir/iris_classification.cpp.o.d"
  "iris_classification"
  "iris_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iris_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
