# Empty dependencies file for decision_tree_sql.
# This may be replaced when dependencies are built.
