file(REMOVE_RECURSE
  "CMakeFiles/decision_tree_sql.dir/decision_tree_sql.cpp.o"
  "CMakeFiles/decision_tree_sql.dir/decision_tree_sql.cpp.o.d"
  "decision_tree_sql"
  "decision_tree_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_tree_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
