# Empty compiler generated dependencies file for sql_generation_tour.
# This may be replaced when dependencies are built.
