file(REMOVE_RECURSE
  "CMakeFiles/sql_generation_tour.dir/sql_generation_tour.cpp.o"
  "CMakeFiles/sql_generation_tour.dir/sql_generation_tour.cpp.o.d"
  "sql_generation_tour"
  "sql_generation_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_generation_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
