file(REMOVE_RECURSE
  "libindbml_storage.a"
)
