# Empty dependencies file for indbml_storage.
# This may be replaced when dependencies are built.
