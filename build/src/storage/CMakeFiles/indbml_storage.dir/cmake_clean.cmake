file(REMOVE_RECURSE
  "CMakeFiles/indbml_storage.dir/csv.cc.o"
  "CMakeFiles/indbml_storage.dir/csv.cc.o.d"
  "CMakeFiles/indbml_storage.dir/table.cc.o"
  "CMakeFiles/indbml_storage.dir/table.cc.o.d"
  "libindbml_storage.a"
  "libindbml_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
