# Empty compiler generated dependencies file for indbml_common.
# This may be replaced when dependencies are built.
