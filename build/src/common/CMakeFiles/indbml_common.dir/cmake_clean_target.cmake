file(REMOVE_RECURSE
  "libindbml_common.a"
)
