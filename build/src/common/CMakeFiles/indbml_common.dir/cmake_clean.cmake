file(REMOVE_RECURSE
  "CMakeFiles/indbml_common.dir/logging.cc.o"
  "CMakeFiles/indbml_common.dir/logging.cc.o.d"
  "CMakeFiles/indbml_common.dir/memory_tracker.cc.o"
  "CMakeFiles/indbml_common.dir/memory_tracker.cc.o.d"
  "CMakeFiles/indbml_common.dir/status.cc.o"
  "CMakeFiles/indbml_common.dir/status.cc.o.d"
  "CMakeFiles/indbml_common.dir/string_util.cc.o"
  "CMakeFiles/indbml_common.dir/string_util.cc.o.d"
  "CMakeFiles/indbml_common.dir/thread_pool.cc.o"
  "CMakeFiles/indbml_common.dir/thread_pool.cc.o.d"
  "libindbml_common.a"
  "libindbml_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
