# Empty compiler generated dependencies file for indbml_sql.
# This may be replaced when dependencies are built.
