file(REMOVE_RECURSE
  "libindbml_sql.a"
)
