
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/binder.cc" "src/sql/CMakeFiles/indbml_sql.dir/binder.cc.o" "gcc" "src/sql/CMakeFiles/indbml_sql.dir/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/sql/CMakeFiles/indbml_sql.dir/lexer.cc.o" "gcc" "src/sql/CMakeFiles/indbml_sql.dir/lexer.cc.o.d"
  "/root/repo/src/sql/optimizer.cc" "src/sql/CMakeFiles/indbml_sql.dir/optimizer.cc.o" "gcc" "src/sql/CMakeFiles/indbml_sql.dir/optimizer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/indbml_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/indbml_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/physical_planner.cc" "src/sql/CMakeFiles/indbml_sql.dir/physical_planner.cc.o" "gcc" "src/sql/CMakeFiles/indbml_sql.dir/physical_planner.cc.o.d"
  "/root/repo/src/sql/plan_printer.cc" "src/sql/CMakeFiles/indbml_sql.dir/plan_printer.cc.o" "gcc" "src/sql/CMakeFiles/indbml_sql.dir/plan_printer.cc.o.d"
  "/root/repo/src/sql/query_engine.cc" "src/sql/CMakeFiles/indbml_sql.dir/query_engine.cc.o" "gcc" "src/sql/CMakeFiles/indbml_sql.dir/query_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/indbml_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/indbml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/indbml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/indbml_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
