file(REMOVE_RECURSE
  "CMakeFiles/indbml_sql.dir/binder.cc.o"
  "CMakeFiles/indbml_sql.dir/binder.cc.o.d"
  "CMakeFiles/indbml_sql.dir/lexer.cc.o"
  "CMakeFiles/indbml_sql.dir/lexer.cc.o.d"
  "CMakeFiles/indbml_sql.dir/optimizer.cc.o"
  "CMakeFiles/indbml_sql.dir/optimizer.cc.o.d"
  "CMakeFiles/indbml_sql.dir/parser.cc.o"
  "CMakeFiles/indbml_sql.dir/parser.cc.o.d"
  "CMakeFiles/indbml_sql.dir/physical_planner.cc.o"
  "CMakeFiles/indbml_sql.dir/physical_planner.cc.o.d"
  "CMakeFiles/indbml_sql.dir/plan_printer.cc.o"
  "CMakeFiles/indbml_sql.dir/plan_printer.cc.o.d"
  "CMakeFiles/indbml_sql.dir/query_engine.cc.o"
  "CMakeFiles/indbml_sql.dir/query_engine.cc.o.d"
  "libindbml_sql.a"
  "libindbml_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
