file(REMOVE_RECURSE
  "libindbml_modeljoin.a"
)
