file(REMOVE_RECURSE
  "CMakeFiles/indbml_modeljoin.dir/modeljoin_operator.cc.o"
  "CMakeFiles/indbml_modeljoin.dir/modeljoin_operator.cc.o.d"
  "CMakeFiles/indbml_modeljoin.dir/register.cc.o"
  "CMakeFiles/indbml_modeljoin.dir/register.cc.o.d"
  "CMakeFiles/indbml_modeljoin.dir/shared_model.cc.o"
  "CMakeFiles/indbml_modeljoin.dir/shared_model.cc.o.d"
  "CMakeFiles/indbml_modeljoin.dir/validate.cc.o"
  "CMakeFiles/indbml_modeljoin.dir/validate.cc.o.d"
  "libindbml_modeljoin.a"
  "libindbml_modeljoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_modeljoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
