
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modeljoin/modeljoin_operator.cc" "src/modeljoin/CMakeFiles/indbml_modeljoin.dir/modeljoin_operator.cc.o" "gcc" "src/modeljoin/CMakeFiles/indbml_modeljoin.dir/modeljoin_operator.cc.o.d"
  "/root/repo/src/modeljoin/register.cc" "src/modeljoin/CMakeFiles/indbml_modeljoin.dir/register.cc.o" "gcc" "src/modeljoin/CMakeFiles/indbml_modeljoin.dir/register.cc.o.d"
  "/root/repo/src/modeljoin/shared_model.cc" "src/modeljoin/CMakeFiles/indbml_modeljoin.dir/shared_model.cc.o" "gcc" "src/modeljoin/CMakeFiles/indbml_modeljoin.dir/shared_model.cc.o.d"
  "/root/repo/src/modeljoin/validate.cc" "src/modeljoin/CMakeFiles/indbml_modeljoin.dir/validate.cc.o" "gcc" "src/modeljoin/CMakeFiles/indbml_modeljoin.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/indbml_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/indbml_device.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/indbml_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/indbml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/indbml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/indbml_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
