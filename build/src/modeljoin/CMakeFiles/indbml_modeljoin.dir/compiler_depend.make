# Empty compiler generated dependencies file for indbml_modeljoin.
# This may be replaced when dependencies are built.
