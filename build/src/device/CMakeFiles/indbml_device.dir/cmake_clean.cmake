file(REMOVE_RECURSE
  "CMakeFiles/indbml_device.dir/device.cc.o"
  "CMakeFiles/indbml_device.dir/device.cc.o.d"
  "libindbml_device.a"
  "libindbml_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
