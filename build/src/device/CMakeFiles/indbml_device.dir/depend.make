# Empty dependencies file for indbml_device.
# This may be replaced when dependencies are built.
