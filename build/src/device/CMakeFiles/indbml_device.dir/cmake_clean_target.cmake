file(REMOVE_RECURSE
  "libindbml_device.a"
)
