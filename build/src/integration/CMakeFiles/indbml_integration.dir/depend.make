# Empty dependencies file for indbml_integration.
# This may be replaced when dependencies are built.
