file(REMOVE_RECURSE
  "libindbml_integration.a"
)
