file(REMOVE_RECURSE
  "CMakeFiles/indbml_integration.dir/capi_operator.cc.o"
  "CMakeFiles/indbml_integration.dir/capi_operator.cc.o.d"
  "CMakeFiles/indbml_integration.dir/external_client.cc.o"
  "CMakeFiles/indbml_integration.dir/external_client.cc.o.d"
  "CMakeFiles/indbml_integration.dir/udf.cc.o"
  "CMakeFiles/indbml_integration.dir/udf.cc.o.d"
  "libindbml_integration.a"
  "libindbml_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
