# Empty dependencies file for indbml_mltosql.
# This may be replaced when dependencies are built.
