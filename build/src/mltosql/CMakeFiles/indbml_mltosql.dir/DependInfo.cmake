
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mltosql/encoding.cc" "src/mltosql/CMakeFiles/indbml_mltosql.dir/encoding.cc.o" "gcc" "src/mltosql/CMakeFiles/indbml_mltosql.dir/encoding.cc.o.d"
  "/root/repo/src/mltosql/mltosql.cc" "src/mltosql/CMakeFiles/indbml_mltosql.dir/mltosql.cc.o" "gcc" "src/mltosql/CMakeFiles/indbml_mltosql.dir/mltosql.cc.o.d"
  "/root/repo/src/mltosql/tree_to_sql.cc" "src/mltosql/CMakeFiles/indbml_mltosql.dir/tree_to_sql.cc.o" "gcc" "src/mltosql/CMakeFiles/indbml_mltosql.dir/tree_to_sql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/indbml_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/indbml_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/indbml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/indbml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/indbml_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
