file(REMOVE_RECURSE
  "libindbml_mltosql.a"
)
