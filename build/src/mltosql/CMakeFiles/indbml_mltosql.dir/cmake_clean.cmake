file(REMOVE_RECURSE
  "CMakeFiles/indbml_mltosql.dir/encoding.cc.o"
  "CMakeFiles/indbml_mltosql.dir/encoding.cc.o.d"
  "CMakeFiles/indbml_mltosql.dir/mltosql.cc.o"
  "CMakeFiles/indbml_mltosql.dir/mltosql.cc.o.d"
  "CMakeFiles/indbml_mltosql.dir/tree_to_sql.cc.o"
  "CMakeFiles/indbml_mltosql.dir/tree_to_sql.cc.o.d"
  "libindbml_mltosql.a"
  "libindbml_mltosql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_mltosql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
