# CMake generated Testfile for 
# Source directory: /root/repo/src/mltosql
# Build directory: /root/repo/build/src/mltosql
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
