file(REMOVE_RECURSE
  "CMakeFiles/indbml_benchlib.dir/approaches.cc.o"
  "CMakeFiles/indbml_benchlib.dir/approaches.cc.o.d"
  "CMakeFiles/indbml_benchlib.dir/report.cc.o"
  "CMakeFiles/indbml_benchlib.dir/report.cc.o.d"
  "CMakeFiles/indbml_benchlib.dir/workloads.cc.o"
  "CMakeFiles/indbml_benchlib.dir/workloads.cc.o.d"
  "libindbml_benchlib.a"
  "libindbml_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
