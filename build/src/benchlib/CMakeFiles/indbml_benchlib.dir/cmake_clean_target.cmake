file(REMOVE_RECURSE
  "libindbml_benchlib.a"
)
