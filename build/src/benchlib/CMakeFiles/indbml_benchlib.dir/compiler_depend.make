# Empty compiler generated dependencies file for indbml_benchlib.
# This may be replaced when dependencies are built.
