
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/approaches.cc" "src/benchlib/CMakeFiles/indbml_benchlib.dir/approaches.cc.o" "gcc" "src/benchlib/CMakeFiles/indbml_benchlib.dir/approaches.cc.o.d"
  "/root/repo/src/benchlib/report.cc" "src/benchlib/CMakeFiles/indbml_benchlib.dir/report.cc.o" "gcc" "src/benchlib/CMakeFiles/indbml_benchlib.dir/report.cc.o.d"
  "/root/repo/src/benchlib/workloads.cc" "src/benchlib/CMakeFiles/indbml_benchlib.dir/workloads.cc.o" "gcc" "src/benchlib/CMakeFiles/indbml_benchlib.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/integration/CMakeFiles/indbml_integration.dir/DependInfo.cmake"
  "/root/repo/build/src/modeljoin/CMakeFiles/indbml_modeljoin.dir/DependInfo.cmake"
  "/root/repo/build/src/mltosql/CMakeFiles/indbml_mltosql.dir/DependInfo.cmake"
  "/root/repo/build/src/mlruntime/CMakeFiles/indbml_mlruntime.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/indbml_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/indbml_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/indbml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/indbml_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/indbml_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/indbml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
