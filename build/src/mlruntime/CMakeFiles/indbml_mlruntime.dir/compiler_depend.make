# Empty compiler generated dependencies file for indbml_mlruntime.
# This may be replaced when dependencies are built.
