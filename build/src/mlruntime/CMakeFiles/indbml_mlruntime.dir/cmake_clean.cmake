file(REMOVE_RECURSE
  "CMakeFiles/indbml_mlruntime.dir/runtime.cc.o"
  "CMakeFiles/indbml_mlruntime.dir/runtime.cc.o.d"
  "CMakeFiles/indbml_mlruntime.dir/trt_c_api.cc.o"
  "CMakeFiles/indbml_mlruntime.dir/trt_c_api.cc.o.d"
  "libindbml_mlruntime.a"
  "libindbml_mlruntime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_mlruntime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
