file(REMOVE_RECURSE
  "libindbml_mlruntime.a"
)
