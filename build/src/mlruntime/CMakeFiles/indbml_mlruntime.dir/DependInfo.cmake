
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mlruntime/runtime.cc" "src/mlruntime/CMakeFiles/indbml_mlruntime.dir/runtime.cc.o" "gcc" "src/mlruntime/CMakeFiles/indbml_mlruntime.dir/runtime.cc.o.d"
  "/root/repo/src/mlruntime/trt_c_api.cc" "src/mlruntime/CMakeFiles/indbml_mlruntime.dir/trt_c_api.cc.o" "gcc" "src/mlruntime/CMakeFiles/indbml_mlruntime.dir/trt_c_api.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/indbml_device.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/indbml_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/indbml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
