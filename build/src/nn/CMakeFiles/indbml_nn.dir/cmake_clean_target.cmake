file(REMOVE_RECURSE
  "libindbml_nn.a"
)
