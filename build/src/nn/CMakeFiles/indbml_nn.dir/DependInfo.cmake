
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/blas.cc" "src/nn/CMakeFiles/indbml_nn.dir/blas.cc.o" "gcc" "src/nn/CMakeFiles/indbml_nn.dir/blas.cc.o.d"
  "/root/repo/src/nn/cost_model.cc" "src/nn/CMakeFiles/indbml_nn.dir/cost_model.cc.o" "gcc" "src/nn/CMakeFiles/indbml_nn.dir/cost_model.cc.o.d"
  "/root/repo/src/nn/decision_tree.cc" "src/nn/CMakeFiles/indbml_nn.dir/decision_tree.cc.o" "gcc" "src/nn/CMakeFiles/indbml_nn.dir/decision_tree.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/nn/CMakeFiles/indbml_nn.dir/model.cc.o" "gcc" "src/nn/CMakeFiles/indbml_nn.dir/model.cc.o.d"
  "/root/repo/src/nn/training.cc" "src/nn/CMakeFiles/indbml_nn.dir/training.cc.o" "gcc" "src/nn/CMakeFiles/indbml_nn.dir/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/indbml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
