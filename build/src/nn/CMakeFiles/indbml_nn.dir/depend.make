# Empty dependencies file for indbml_nn.
# This may be replaced when dependencies are built.
