file(REMOVE_RECURSE
  "CMakeFiles/indbml_nn.dir/blas.cc.o"
  "CMakeFiles/indbml_nn.dir/blas.cc.o.d"
  "CMakeFiles/indbml_nn.dir/cost_model.cc.o"
  "CMakeFiles/indbml_nn.dir/cost_model.cc.o.d"
  "CMakeFiles/indbml_nn.dir/decision_tree.cc.o"
  "CMakeFiles/indbml_nn.dir/decision_tree.cc.o.d"
  "CMakeFiles/indbml_nn.dir/model.cc.o"
  "CMakeFiles/indbml_nn.dir/model.cc.o.d"
  "CMakeFiles/indbml_nn.dir/training.cc.o"
  "CMakeFiles/indbml_nn.dir/training.cc.o.d"
  "libindbml_nn.a"
  "libindbml_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
