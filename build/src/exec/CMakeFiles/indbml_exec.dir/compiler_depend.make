# Empty compiler generated dependencies file for indbml_exec.
# This may be replaced when dependencies are built.
