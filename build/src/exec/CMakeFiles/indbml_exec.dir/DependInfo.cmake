
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregate.cc" "src/exec/CMakeFiles/indbml_exec.dir/aggregate.cc.o" "gcc" "src/exec/CMakeFiles/indbml_exec.dir/aggregate.cc.o.d"
  "/root/repo/src/exec/basic_operators.cc" "src/exec/CMakeFiles/indbml_exec.dir/basic_operators.cc.o" "gcc" "src/exec/CMakeFiles/indbml_exec.dir/basic_operators.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/exec/CMakeFiles/indbml_exec.dir/expression.cc.o" "gcc" "src/exec/CMakeFiles/indbml_exec.dir/expression.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/exec/CMakeFiles/indbml_exec.dir/join.cc.o" "gcc" "src/exec/CMakeFiles/indbml_exec.dir/join.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/exec/CMakeFiles/indbml_exec.dir/operator.cc.o" "gcc" "src/exec/CMakeFiles/indbml_exec.dir/operator.cc.o.d"
  "/root/repo/src/exec/parallel.cc" "src/exec/CMakeFiles/indbml_exec.dir/parallel.cc.o" "gcc" "src/exec/CMakeFiles/indbml_exec.dir/parallel.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/exec/CMakeFiles/indbml_exec.dir/scan.cc.o" "gcc" "src/exec/CMakeFiles/indbml_exec.dir/scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/indbml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/indbml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/indbml_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
