file(REMOVE_RECURSE
  "CMakeFiles/indbml_exec.dir/aggregate.cc.o"
  "CMakeFiles/indbml_exec.dir/aggregate.cc.o.d"
  "CMakeFiles/indbml_exec.dir/basic_operators.cc.o"
  "CMakeFiles/indbml_exec.dir/basic_operators.cc.o.d"
  "CMakeFiles/indbml_exec.dir/expression.cc.o"
  "CMakeFiles/indbml_exec.dir/expression.cc.o.d"
  "CMakeFiles/indbml_exec.dir/join.cc.o"
  "CMakeFiles/indbml_exec.dir/join.cc.o.d"
  "CMakeFiles/indbml_exec.dir/operator.cc.o"
  "CMakeFiles/indbml_exec.dir/operator.cc.o.d"
  "CMakeFiles/indbml_exec.dir/parallel.cc.o"
  "CMakeFiles/indbml_exec.dir/parallel.cc.o.d"
  "CMakeFiles/indbml_exec.dir/scan.cc.o"
  "CMakeFiles/indbml_exec.dir/scan.cc.o.d"
  "libindbml_exec.a"
  "libindbml_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indbml_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
