file(REMOVE_RECURSE
  "libindbml_exec.a"
)
