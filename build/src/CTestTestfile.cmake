# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("device")
subdirs("nn")
subdirs("storage")
subdirs("exec")
subdirs("sql")
subdirs("mlruntime")
subdirs("mltosql")
subdirs("modeljoin")
subdirs("integration")
subdirs("benchlib")
