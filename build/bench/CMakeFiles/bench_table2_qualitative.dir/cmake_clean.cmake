file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_qualitative.dir/bench_table2_qualitative.cc.o"
  "CMakeFiles/bench_table2_qualitative.dir/bench_table2_qualitative.cc.o.d"
  "bench_table2_qualitative"
  "bench_table2_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
