# Empty dependencies file for bench_ablation_mltosql_opts.
# This may be replaced when dependencies are built.
