file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_modeljoin.dir/bench_ablation_modeljoin.cc.o"
  "CMakeFiles/bench_ablation_modeljoin.dir/bench_ablation_modeljoin.cc.o.d"
  "bench_ablation_modeljoin"
  "bench_ablation_modeljoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_modeljoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
