# Empty compiler generated dependencies file for bench_ablation_modeljoin.
# This may be replaced when dependencies are built.
