file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_lstm.dir/bench_fig9_lstm.cc.o"
  "CMakeFiles/bench_fig9_lstm.dir/bench_fig9_lstm.cc.o.d"
  "bench_fig9_lstm"
  "bench_fig9_lstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
