# Empty dependencies file for bench_fig9_lstm.
# This may be replaced when dependencies are built.
