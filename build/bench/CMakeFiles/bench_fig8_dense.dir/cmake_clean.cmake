file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dense.dir/bench_fig8_dense.cc.o"
  "CMakeFiles/bench_fig8_dense.dir/bench_fig8_dense.cc.o.d"
  "bench_fig8_dense"
  "bench_fig8_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
