# Empty compiler generated dependencies file for bench_ablation_simgpu.
# This may be replaced when dependencies are built.
