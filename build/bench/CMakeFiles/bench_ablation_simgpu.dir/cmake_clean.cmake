file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_simgpu.dir/bench_ablation_simgpu.cc.o"
  "CMakeFiles/bench_ablation_simgpu.dir/bench_ablation_simgpu.cc.o.d"
  "bench_ablation_simgpu"
  "bench_ablation_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
