# Empty dependencies file for parser_optimizer_test.
# This may be replaced when dependencies are built.
