file(REMOVE_RECURSE
  "CMakeFiles/parser_optimizer_test.dir/parser_optimizer_test.cc.o"
  "CMakeFiles/parser_optimizer_test.dir/parser_optimizer_test.cc.o.d"
  "parser_optimizer_test"
  "parser_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
