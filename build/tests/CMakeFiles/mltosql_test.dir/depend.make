# Empty dependencies file for mltosql_test.
# This may be replaced when dependencies are built.
