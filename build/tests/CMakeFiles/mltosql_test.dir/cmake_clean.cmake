file(REMOVE_RECURSE
  "CMakeFiles/mltosql_test.dir/mltosql_test.cc.o"
  "CMakeFiles/mltosql_test.dir/mltosql_test.cc.o.d"
  "mltosql_test"
  "mltosql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltosql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
