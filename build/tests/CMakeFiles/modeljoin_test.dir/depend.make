# Empty dependencies file for modeljoin_test.
# This may be replaced when dependencies are built.
