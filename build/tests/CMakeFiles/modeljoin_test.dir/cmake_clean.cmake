file(REMOVE_RECURSE
  "CMakeFiles/modeljoin_test.dir/modeljoin_test.cc.o"
  "CMakeFiles/modeljoin_test.dir/modeljoin_test.cc.o.d"
  "modeljoin_test"
  "modeljoin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modeljoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
