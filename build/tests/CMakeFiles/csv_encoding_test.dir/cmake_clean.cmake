file(REMOVE_RECURSE
  "CMakeFiles/csv_encoding_test.dir/csv_encoding_test.cc.o"
  "CMakeFiles/csv_encoding_test.dir/csv_encoding_test.cc.o.d"
  "csv_encoding_test"
  "csv_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
