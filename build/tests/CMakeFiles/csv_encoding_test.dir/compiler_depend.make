# Empty compiler generated dependencies file for csv_encoding_test.
# This may be replaced when dependencies are built.
