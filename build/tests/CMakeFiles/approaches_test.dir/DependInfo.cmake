
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/approaches_test.cc" "tests/CMakeFiles/approaches_test.dir/approaches_test.cc.o" "gcc" "tests/CMakeFiles/approaches_test.dir/approaches_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/indbml_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/integration/CMakeFiles/indbml_integration.dir/DependInfo.cmake"
  "/root/repo/build/src/modeljoin/CMakeFiles/indbml_modeljoin.dir/DependInfo.cmake"
  "/root/repo/build/src/mltosql/CMakeFiles/indbml_mltosql.dir/DependInfo.cmake"
  "/root/repo/build/src/mlruntime/CMakeFiles/indbml_mlruntime.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/indbml_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/indbml_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/indbml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/indbml_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/indbml_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/indbml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
