file(REMOVE_RECURSE
  "CMakeFiles/approaches_test.dir/approaches_test.cc.o"
  "CMakeFiles/approaches_test.dir/approaches_test.cc.o.d"
  "approaches_test"
  "approaches_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approaches_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
