# Empty compiler generated dependencies file for approaches_test.
# This may be replaced when dependencies are built.
