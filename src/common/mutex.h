#ifndef INDBML_COMMON_MUTEX_H_
#define INDBML_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.h"

namespace indbml {

/// \brief `std::mutex` carrying clang thread-safety capability attributes.
///
/// The standard library's mutex types are not annotated, so clang's
/// `-Wthread-safety` analysis cannot see a `std::lock_guard` acquire
/// anything. All engine locking goes through this wrapper (and `MutexLock`
/// / `CondVar` below) so that `INDBML_GUARDED_BY(mu_)` members are actually
/// checked. Zero overhead: everything is an inline forward to `std::mutex`.
class INDBML_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() INDBML_ACQUIRE() { mu_.lock(); }
  void Unlock() INDBML_RELEASE() { mu_.unlock(); }
  bool TryLock() INDBML_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the lock is held on paths it cannot follow.
  void AssertHeld() INDBML_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex (the annotated `std::lock_guard`).
class INDBML_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) INDBML_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() INDBML_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with `Mutex`.
///
/// `Wait` must be called with the mutex held (`INDBML_REQUIRES`), and the
/// caller re-checks its predicate in a loop:
///
/// \code
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
/// \endcode
///
/// Writing the predicate loop in the caller (instead of passing a lambda)
/// keeps the guarded-member accesses inside the annotated function body,
/// where the analysis can check them — lambda bodies are analysed as
/// separate unannotated functions and would produce false positives.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, re-acquires `mu`.
  void Wait(Mutex& mu) INDBML_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// Timed wait: atomically releases `mu`, blocks until notified or
  /// `timeout_micros` elapsed, re-acquires `mu`. Returns false on timeout.
  /// Like Wait, callers re-check their predicate in a loop — the inference
  /// batcher's latency-budget wait is the canonical user.
  bool WaitFor(Mutex& mu, int64_t timeout_micros) INDBML_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status =
        cv_.wait_for(lock, std::chrono::microseconds(timeout_micros));
    lock.release();  // ownership stays with the caller's MutexLock
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace indbml

#endif  // INDBML_COMMON_MUTEX_H_
