#ifndef INDBML_COMMON_SIMD_H_
#define INDBML_COMMON_SIMD_H_

// Portable 8-wide SIMD wrappers for the hot kernels (blas, expression eval,
// gather, fused scan).
//
// This header is the ONLY place in the tree where raw vendor intrinsics
// (_mm*, vld*, __m256, float32x4_t, ...) may appear; the `raw-intrinsics`
// analyzer pass enforces that. Kernels program against three types:
//
//   F32x8  - 8 float32 lanes
//   I64x8  - 8 int64 lanes
//   Mask8  - 8 boolean lanes, stored as a bitmask (bit i = lane i)
//
// Backend selection is compile-time: the INDBML_SIMD CMake option defines
// the INDBML_SIMD macro, and the header picks AVX2 (x86-64), NEON (aarch64)
// or the scalar-struct fallback from the architecture macros. On top of
// that, `Enabled()` / `SetEnabled()` is a runtime switch: every kernel in
// the tree keeps its scalar loop compiled and dispatches on `UseSimd()`, so
// tests and benchmarks can force the scalar path in a SIMD build for
// bit-identity checks and ablation.
//
// Bit-identity contract: every wrapper maps to exactly one IEEE-754
// operation per lane (separate mul + add, never FMA; the build adds
// -ffp-contract=off so the compiler cannot contract the scalar loops
// either). A kernel written with the same per-element operation order in
// its scalar and SIMD paths therefore produces bit-identical output.
// Comparison wrappers match C scalar semantics exactly, including NaN:
// Eq/Lt/Le/Gt/Ge are false on unordered operands, Ne is true.

#include <atomic>
#include <cstdint>
#include <cstring>

#if defined(INDBML_SIMD) && defined(__AVX2__)
#define INDBML_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(INDBML_SIMD) && defined(__ARM_NEON) && defined(__aarch64__)
#define INDBML_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace indbml::simd {

/// All kernels are written against 8-wide vectors regardless of backend.
inline constexpr int kWidth = 8;

#if defined(INDBML_SIMD_AVX2)
inline constexpr bool kCompiled = true;
inline constexpr const char* kBackend = "avx2";
#elif defined(INDBML_SIMD_NEON)
inline constexpr bool kCompiled = true;
inline constexpr const char* kBackend = "neon";
#else
inline constexpr bool kCompiled = false;
inline constexpr const char* kBackend = "scalar";
#endif

namespace detail {
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

// 256-entry table expanding a lane bitmask into eight 0/1 bytes (one uint64
// word), so mask<->byte-vector conversions are a lookup + 8-byte store.
constexpr uint64_t ExpandMaskToBytes(unsigned bits) {
  uint64_t w = 0;
  for (int i = 0; i < 8; ++i) {
    if ((bits >> i) & 1u) w |= uint64_t{1} << (8 * i);
  }
  return w;
}

struct ByteLut {
  uint64_t word[256];
  constexpr ByteLut() : word() {
    for (unsigned b = 0; b < 256; ++b) word[b] = ExpandMaskToBytes(b);
  }
};
inline constexpr ByteLut kByteLut{};
}  // namespace detail

/// Runtime kill switch for the vector paths (default on). Relaxed atomics:
/// flipping it mid-kernel is benign, both paths compute identical results.
inline bool Enabled() {
  return detail::EnabledFlag().load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  detail::EnabledFlag().store(on, std::memory_order_relaxed);
}

/// True when a kernel should take its vector path.
inline bool UseSimd() { return kCompiled && Enabled(); }

/// RAII toggle used by tests/benches to force the scalar path in a scope.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) : prev_(Enabled()) { SetEnabled(on); }
  ~ScopedEnable() { SetEnabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

/// 8 boolean lanes as a bitmask. Canonical interchange format between the
/// compare kernels (which produce it) and selection building / blends
/// (which consume it).
struct Mask8 {
  uint8_t bits = 0;

  static Mask8 None() { return {0}; }
  static Mask8 All() { return {0xFF}; }
  static Mask8 FromBits(uint8_t b) { return {b}; }

  /// Reads 8 bytes; a nonzero byte sets the lane. Branchless: per-byte
  /// nonzero detection into each byte's MSB (the add cannot carry across
  /// byte boundaries), then one multiply packs the MSBs into the top byte —
  /// cross terms of the multiply land at pairwise-distinct bit positions
  /// below it, so no carries corrupt the result.
  static Mask8 FromBytes(const uint8_t* p) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    const uint64_t nz =
        (((w & 0x7F7F7F7F7F7F7F7FULL) + 0x7F7F7F7F7F7F7F7FULL) | w) &
        0x8080808080808080ULL;
    return {static_cast<uint8_t>(((nz >> 7) * 0x0102040810204080ULL) >> 56)};
  }

  /// Writes 8 bytes of 0/1.
  void StoreBytes(uint8_t* p) const {
    const uint64_t w = detail::kByteLut.word[bits];
    std::memcpy(p, &w, 8);
  }

  /// p[i] |= lane i (bytes must be 0/1 normalized, which StoreBytes emits).
  void OrIntoBytes(uint8_t* p) const {
    uint64_t w;
    std::memcpy(&w, p, 8);
    w |= detail::kByteLut.word[bits];
    std::memcpy(p, &w, 8);
  }

  bool AnyTrue() const { return bits != 0; }
  bool AllTrue() const { return bits == 0xFF; }
  int CountTrue() const { return __builtin_popcount(bits); }

  friend Mask8 operator&(Mask8 a, Mask8 b) {
    return {static_cast<uint8_t>(a.bits & b.bits)};
  }
  friend Mask8 operator|(Mask8 a, Mask8 b) {
    return {static_cast<uint8_t>(a.bits | b.bits)};
  }
  Mask8 operator~() const { return {static_cast<uint8_t>(~bits & 0xFF)}; }
};

#if defined(INDBML_SIMD_AVX2)

namespace detail {
// Expands a Mask8 into a per-lane 32-bit (resp. 64-bit) all-ones mask.
inline __m256i MaskTo32(Mask8 m) {
  const __m256i lanes = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i b = _mm256_set1_epi32(m.bits);
  return _mm256_cmpeq_epi32(_mm256_and_si256(b, lanes), lanes);
}
inline __m256i MaskTo64(uint8_t nibble) {
  const __m256i lanes = _mm256_setr_epi64x(1, 2, 4, 8);
  const __m256i b = _mm256_set1_epi64x(nibble);
  return _mm256_cmpeq_epi64(_mm256_and_si256(b, lanes), lanes);
}
}  // namespace detail

struct F32x8 {
  __m256 v;

  static F32x8 Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static F32x8 Broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static F32x8 Zero() { return {_mm256_setzero_ps()}; }
  /// dst lane i = base[idx[i]].
  static F32x8 Gather(const float* base, const int32_t* idx) {
    const __m256i iv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
    return {_mm256_i32gather_ps(base, iv, 4)};
  }
  void Store(float* p) const { _mm256_storeu_ps(p, v); }

  friend F32x8 operator+(F32x8 a, F32x8 b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend F32x8 operator-(F32x8 a, F32x8 b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend F32x8 operator*(F32x8 a, F32x8 b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend F32x8 operator/(F32x8 a, F32x8 b) { return {_mm256_div_ps(a.v, b.v)}; }
  /// Matches `a > b ? a : b` per lane, including NaN/-0 behavior of
  /// maxps (returns b on unordered), which is what the scalar relu uses.
  static F32x8 Max(F32x8 a, F32x8 b) { return {_mm256_max_ps(a.v, b.v)}; }
  /// IEEE negate (sign-bit flip), identical to scalar `-x`.
  F32x8 Neg() const {
    return {_mm256_xor_ps(v, _mm256_set1_ps(-0.0f))};
  }

  static Mask8 Eq(F32x8 a, F32x8 b) {
    return {static_cast<uint8_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(a.v, b.v, _CMP_EQ_OQ)))};
  }
  static Mask8 Ne(F32x8 a, F32x8 b) {
    return {static_cast<uint8_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(a.v, b.v, _CMP_NEQ_UQ)))};
  }
  static Mask8 Lt(F32x8 a, F32x8 b) {
    return {static_cast<uint8_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)))};
  }
  static Mask8 Le(F32x8 a, F32x8 b) {
    return {static_cast<uint8_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(a.v, b.v, _CMP_LE_OQ)))};
  }
  static Mask8 Gt(F32x8 a, F32x8 b) {
    return {static_cast<uint8_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)))};
  }
  static Mask8 Ge(F32x8 a, F32x8 b) {
    return {static_cast<uint8_t>(
        _mm256_movemask_ps(_mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ)))};
  }

  /// Lane i = m[i] ? a[i] : b[i].
  static F32x8 Select(Mask8 m, F32x8 a, F32x8 b) {
    return {_mm256_blendv_ps(b.v, a.v,
                             _mm256_castsi256_ps(detail::MaskTo32(m)))};
  }
};

struct I64x8 {
  __m256i lo, hi;  // lanes 0..3 and 4..7

  static I64x8 Load(const int64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4))};
  }
  static I64x8 Broadcast(int64_t x) {
    const __m256i b = _mm256_set1_epi64x(x);
    return {b, b};
  }
  static I64x8 Zero() {
    const __m256i z = _mm256_setzero_si256();
    return {z, z};
  }
  void Store(int64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 4), hi);
  }

  friend I64x8 operator+(I64x8 a, I64x8 b) {
    return {_mm256_add_epi64(a.lo, b.lo), _mm256_add_epi64(a.hi, b.hi)};
  }
  friend I64x8 operator-(I64x8 a, I64x8 b) {
    return {_mm256_sub_epi64(a.lo, b.lo), _mm256_sub_epi64(a.hi, b.hi)};
  }
  I64x8 Neg() const { return Zero() - *this; }

  static Mask8 Eq(I64x8 a, I64x8 b) {
    const int l = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(a.lo, b.lo)));
    const int h = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(a.hi, b.hi)));
    return {static_cast<uint8_t>(l | (h << 4))};
  }
  static Mask8 Gt(I64x8 a, I64x8 b) {  // signed
    const int l = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(a.lo, b.lo)));
    const int h = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(a.hi, b.hi)));
    return {static_cast<uint8_t>(l | (h << 4))};
  }
  static Mask8 Ne(I64x8 a, I64x8 b) { return ~Eq(a, b); }
  static Mask8 Lt(I64x8 a, I64x8 b) { return Gt(b, a); }
  static Mask8 Le(I64x8 a, I64x8 b) { return ~Gt(a, b); }
  static Mask8 Ge(I64x8 a, I64x8 b) { return ~Gt(b, a); }

  /// Lane i = m[i] ? a[i] : b[i].
  static I64x8 Select(Mask8 m, I64x8 a, I64x8 b) {
    const __m256i ml = detail::MaskTo64(m.bits & 0x0F);
    const __m256i mh = detail::MaskTo64((m.bits >> 4) & 0x0F);
    return {_mm256_blendv_epi8(b.lo, a.lo, ml),
            _mm256_blendv_epi8(b.hi, a.hi, mh)};
  }
};

#elif defined(INDBML_SIMD_NEON)

struct F32x8 {
  float32x4_t lo, hi;  // lanes 0..3 and 4..7

  static F32x8 Load(const float* p) { return {vld1q_f32(p), vld1q_f32(p + 4)}; }
  static F32x8 Broadcast(float x) { return {vdupq_n_f32(x), vdupq_n_f32(x)}; }
  static F32x8 Zero() { return Broadcast(0.0f); }
  static F32x8 Gather(const float* base, const int32_t* idx) {
    float tmp[8];
    for (int i = 0; i < 8; ++i) tmp[i] = base[idx[i]];
    return Load(tmp);
  }
  void Store(float* p) const {
    vst1q_f32(p, lo);
    vst1q_f32(p + 4, hi);
  }

  friend F32x8 operator+(F32x8 a, F32x8 b) {
    return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)};
  }
  friend F32x8 operator-(F32x8 a, F32x8 b) {
    return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)};
  }
  friend F32x8 operator*(F32x8 a, F32x8 b) {
    return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)};
  }
  friend F32x8 operator/(F32x8 a, F32x8 b) {
    return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)};
  }
  static F32x8 Max(F32x8 a, F32x8 b) {
    // vmaxq returns the non-NaN operand on unordered input; the relu kernel
    // only relies on Max(x, 0) == (x > 0 ? x : 0), which both satisfy for
    // the propagating-NaN convention used by the scalar path via Select.
    return Select(Gt(a, b), a, b);
  }
  F32x8 Neg() const {
    return {vnegq_f32(lo), vnegq_f32(hi)};
  }

 private:
  static uint8_t Pack(uint32x4_t mlo, uint32x4_t mhi) {
    const uint32x4_t bl = {1, 2, 4, 8};
    const uint32x4_t bh = {16, 32, 64, 128};
    return static_cast<uint8_t>(vaddvq_u32(vandq_u32(mlo, bl)) |
                                vaddvq_u32(vandq_u32(mhi, bh)));
  }

 public:
  static Mask8 Eq(F32x8 a, F32x8 b) {
    return {Pack(vceqq_f32(a.lo, b.lo), vceqq_f32(a.hi, b.hi))};
  }
  static Mask8 Ne(F32x8 a, F32x8 b) { return ~Eq(a, b); }
  static Mask8 Lt(F32x8 a, F32x8 b) {
    return {Pack(vcltq_f32(a.lo, b.lo), vcltq_f32(a.hi, b.hi))};
  }
  static Mask8 Le(F32x8 a, F32x8 b) {
    return {Pack(vcleq_f32(a.lo, b.lo), vcleq_f32(a.hi, b.hi))};
  }
  static Mask8 Gt(F32x8 a, F32x8 b) {
    return {Pack(vcgtq_f32(a.lo, b.lo), vcgtq_f32(a.hi, b.hi))};
  }
  static Mask8 Ge(F32x8 a, F32x8 b) {
    return {Pack(vcgeq_f32(a.lo, b.lo), vcgeq_f32(a.hi, b.hi))};
  }

  static F32x8 Select(Mask8 m, F32x8 a, F32x8 b) {
    float av[8], bv[8], out[8];
    a.Store(av);
    b.Store(bv);
    for (int i = 0; i < 8; ++i) out[i] = ((m.bits >> i) & 1u) ? av[i] : bv[i];
    return Load(out);
  }
};

// NEON int64 lacks the full compare set on all cores; keep the lanes in a
// plain array (the compiler still keeps them in registers) so the API is
// uniform across backends.
struct I64x8 {
  int64_t lane[8];

  static I64x8 Load(const int64_t* p) {
    I64x8 r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  static I64x8 Broadcast(int64_t x) {
    I64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = x;
    return r;
  }
  static I64x8 Zero() { return Broadcast(0); }
  void Store(int64_t* p) const { std::memcpy(p, lane, sizeof(lane)); }

  friend I64x8 operator+(I64x8 a, I64x8 b) {
    I64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend I64x8 operator-(I64x8 a, I64x8 b) {
    I64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  I64x8 Neg() const { return Zero() - *this; }

  static Mask8 Eq(I64x8 a, I64x8 b) {
    uint8_t m = 0;
    for (int i = 0; i < 8; ++i) m |= (a.lane[i] == b.lane[i]) << i;
    return {m};
  }
  static Mask8 Gt(I64x8 a, I64x8 b) {
    uint8_t m = 0;
    for (int i = 0; i < 8; ++i) m |= (a.lane[i] > b.lane[i]) << i;
    return {m};
  }
  static Mask8 Ne(I64x8 a, I64x8 b) { return ~Eq(a, b); }
  static Mask8 Lt(I64x8 a, I64x8 b) { return Gt(b, a); }
  static Mask8 Le(I64x8 a, I64x8 b) { return ~Gt(a, b); }
  static Mask8 Ge(I64x8 a, I64x8 b) { return ~Gt(b, a); }

  static I64x8 Select(Mask8 m, I64x8 a, I64x8 b) {
    I64x8 r;
    for (int i = 0; i < 8; ++i) {
      r.lane[i] = ((m.bits >> i) & 1u) ? a.lane[i] : b.lane[i];
    }
    return r;
  }
};

#else  // scalar fallback

struct F32x8 {
  float lane[8];

  static F32x8 Load(const float* p) {
    F32x8 r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  static F32x8 Broadcast(float x) {
    F32x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = x;
    return r;
  }
  static F32x8 Zero() { return Broadcast(0.0f); }
  static F32x8 Gather(const float* base, const int32_t* idx) {
    F32x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = base[idx[i]];
    return r;
  }
  void Store(float* p) const { std::memcpy(p, lane, sizeof(lane)); }

  friend F32x8 operator+(F32x8 a, F32x8 b) {
    F32x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend F32x8 operator-(F32x8 a, F32x8 b) {
    F32x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  friend F32x8 operator*(F32x8 a, F32x8 b) {
    F32x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
  friend F32x8 operator/(F32x8 a, F32x8 b) {
    F32x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] / b.lane[i];
    return r;
  }
  static F32x8 Max(F32x8 a, F32x8 b) {
    F32x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
    return r;
  }
  F32x8 Neg() const {
    F32x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = -lane[i];
    return r;
  }

  static Mask8 Eq(F32x8 a, F32x8 b) {
    uint8_t m = 0;
    for (int i = 0; i < 8; ++i) m |= (a.lane[i] == b.lane[i]) << i;
    return {m};
  }
  static Mask8 Ne(F32x8 a, F32x8 b) {
    uint8_t m = 0;
    for (int i = 0; i < 8; ++i) m |= (a.lane[i] != b.lane[i]) << i;
    return {m};
  }
  static Mask8 Lt(F32x8 a, F32x8 b) {
    uint8_t m = 0;
    for (int i = 0; i < 8; ++i) m |= (a.lane[i] < b.lane[i]) << i;
    return {m};
  }
  static Mask8 Le(F32x8 a, F32x8 b) {
    uint8_t m = 0;
    for (int i = 0; i < 8; ++i) m |= (a.lane[i] <= b.lane[i]) << i;
    return {m};
  }
  static Mask8 Gt(F32x8 a, F32x8 b) {
    uint8_t m = 0;
    for (int i = 0; i < 8; ++i) m |= (a.lane[i] > b.lane[i]) << i;
    return {m};
  }
  static Mask8 Ge(F32x8 a, F32x8 b) {
    uint8_t m = 0;
    for (int i = 0; i < 8; ++i) m |= (a.lane[i] >= b.lane[i]) << i;
    return {m};
  }

  static F32x8 Select(Mask8 m, F32x8 a, F32x8 b) {
    F32x8 r;
    for (int i = 0; i < 8; ++i) {
      r.lane[i] = ((m.bits >> i) & 1u) ? a.lane[i] : b.lane[i];
    }
    return r;
  }
};

struct I64x8 {
  int64_t lane[8];

  static I64x8 Load(const int64_t* p) {
    I64x8 r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  static I64x8 Broadcast(int64_t x) {
    I64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = x;
    return r;
  }
  static I64x8 Zero() { return Broadcast(0); }
  void Store(int64_t* p) const { std::memcpy(p, lane, sizeof(lane)); }

  friend I64x8 operator+(I64x8 a, I64x8 b) {
    I64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend I64x8 operator-(I64x8 a, I64x8 b) {
    I64x8 r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  I64x8 Neg() const { return Zero() - *this; }

  static Mask8 Eq(I64x8 a, I64x8 b) {
    uint8_t m = 0;
    for (int i = 0; i < 8; ++i) m |= (a.lane[i] == b.lane[i]) << i;
    return {m};
  }
  static Mask8 Gt(I64x8 a, I64x8 b) {
    uint8_t m = 0;
    for (int i = 0; i < 8; ++i) m |= (a.lane[i] > b.lane[i]) << i;
    return {m};
  }
  static Mask8 Ne(I64x8 a, I64x8 b) { return ~Eq(a, b); }
  static Mask8 Lt(I64x8 a, I64x8 b) { return Gt(b, a); }
  static Mask8 Le(I64x8 a, I64x8 b) { return ~Gt(a, b); }
  static Mask8 Ge(I64x8 a, I64x8 b) { return ~Gt(b, a); }

  static I64x8 Select(Mask8 m, I64x8 a, I64x8 b) {
    I64x8 r;
    for (int i = 0; i < 8; ++i) {
      r.lane[i] = ((m.bits >> i) & 1u) ? a.lane[i] : b.lane[i];
    }
    return r;
  }
};

#endif  // backend selection

}  // namespace indbml::simd

#endif  // INDBML_COMMON_SIMD_H_
