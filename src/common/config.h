#ifndef INDBML_COMMON_CONFIG_H_
#define INDBML_COMMON_CONFIG_H_

#include <cstdint>

namespace indbml {

/// Engine-wide constants chosen to match the paper's evaluation setup (§6.1).

/// Number of values processed per vector / DataChunk. "For all experiments the
/// batch size is equal to the database engine's vector size of 1024."
inline constexpr int kDefaultVectorSize = 1024;

/// Number of table partitions and the engine parallelism level.
/// "Tables are partitioned into 12 partitions and the engine runs with a
/// parallelism level of 12."
inline constexpr int kDefaultPartitions = 12;

/// Rows per storage block; each block keeps MinMax (zone map) statistics used
/// for block pruning (paper §4.4, Small Materialized Aggregates).
inline constexpr int64_t kRowsPerBlock = 4096;

/// Rows per scheduling morsel of the work-stealing pipeline executor
/// (exec/morsel.h). A multiple of kRowsPerBlock so morsel boundaries stay
/// aligned with zone-map blocks; overridable per engine via
/// QueryEngine::Options::morsel_rows.
inline constexpr int64_t kDefaultMorselRows = 16 * 1024;

}  // namespace indbml

#endif  // INDBML_COMMON_CONFIG_H_
