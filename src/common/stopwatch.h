#ifndef INDBML_COMMON_STOPWATCH_H_
#define INDBML_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace indbml {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

  /// Nanosecond resolution for sub-microsecond phases (per-chunk profiling).
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace indbml

#endif  // INDBML_COMMON_STOPWATCH_H_
