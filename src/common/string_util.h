#ifndef INDBML_COMMON_STRING_UTIL_H_
#define INDBML_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace indbml {

/// Lower-cases ASCII characters (SQL keywords / identifiers are matched
/// case-insensitively).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Joins the elements with `sep` ("a, b, c").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` equals `keyword` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view keyword);

}  // namespace indbml

#endif  // INDBML_COMMON_STRING_UTIL_H_
