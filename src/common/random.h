#ifndef INDBML_COMMON_RANDOM_H_
#define INDBML_COMMON_RANDOM_H_

#include <cstdint>

namespace indbml {

/// Deterministic xorshift128+ generator.
///
/// Used everywhere randomness is needed (weight init, workload generation) so
/// that every run of the test suite and benchmark harness sees identical data
/// regardless of platform or standard library.
class Random {
 public:
  explicit Random(uint64_t seed = 42) {
    s0_ = seed * 0x9E3779B97F4A7C15ULL + 1;
    s1_ = (seed ^ 0xBF58476D1CE4E5B9ULL) * 0x94D049BB133111EBULL + 1;
    // Warm up to decorrelate from the seed.
    for (int i = 0; i < 8; ++i) NextUint64();
  }

  uint64_t NextUint64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t NextUint64(uint64_t n) { return n == 0 ? 0 : NextUint64() % n; }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// Approximate standard normal via the sum of uniforms (Irwin–Hall with
  /// 12 terms); accurate enough for weight initialisation.
  float NextGaussian() {
    double sum = 0;
    for (int i = 0; i < 12; ++i) sum += NextDouble();
    return static_cast<float>(sum - 6.0);
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace indbml

#endif  // INDBML_COMMON_RANDOM_H_
