#ifndef INDBML_COMMON_THREAD_POOL_H_
#define INDBML_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace indbml {

/// Number of hardware threads, clamped to >= 1 (the standard allows
/// hardware_concurrency() to report 0 when unknown).
int HardwareConcurrency();

/// Fixed-size worker pool.
///
/// The query engine creates one pool per query with `parallelism` workers
/// (paper setup: 12) and submits one task per table partition. `WaitIdle()`
/// blocks until every submitted task has finished, which doubles as the
/// pipeline barrier between the ModelJoin build and probe phases.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Convenience: run `fn(i)` for i in [0, n) across the pool and wait.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int worker_index);

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

/// Reusable rendezvous point: every participating thread calls Wait() and
/// blocks until all `count` threads arrived. Used by the parallel ModelJoin
/// build phase (paper §5.2: "a barrier before leaving the build phase").
class Barrier {
 public:
  explicit Barrier(int count) : threshold_(count), count_(count) {}

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    int gen = generation_;
    if (--count_ == 0) {
      ++generation_;
      count_ = threshold_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return gen != generation_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const int threshold_;
  int count_;
  int generation_ = 0;
};

}  // namespace indbml

#endif  // INDBML_COMMON_THREAD_POOL_H_
