#ifndef INDBML_COMMON_THREAD_POOL_H_
#define INDBML_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace indbml {

/// Number of hardware threads, clamped to >= 1 (the standard allows
/// hardware_concurrency() to report 0 when unknown).
int HardwareConcurrency();

/// Fixed-size worker pool.
///
/// The query engine creates one pool per query with `parallelism` workers
/// (paper setup: 12) and submits one task per table partition. `WaitIdle()`
/// blocks until every submitted task has finished, which doubles as the
/// pipeline barrier between the ModelJoin build and probe phases.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs as soon as a worker is free. Must not be called
  /// once destruction has begun.
  void Submit(std::function<void()> task) INDBML_EXCLUDES(mu_);

  /// Blocks until the queue is empty and all workers are idle. Never call
  /// from a pool worker (it would wait for itself).
  void WaitIdle() INDBML_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Convenience: run `fn(i)` for i in [0, n) across the pool and wait.
  void ParallelFor(int n, const std::function<void(int)>& fn)
      INDBML_EXCLUDES(mu_);

 private:
  void WorkerLoop(int worker_index) INDBML_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_task_;
  CondVar cv_idle_;
  std::deque<std::function<void()>> queue_ INDBML_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;  ///< set in ctor, joined in dtor only
  int active_ INDBML_GUARDED_BY(mu_) = 0;
  bool shutdown_ INDBML_GUARDED_BY(mu_) = false;
};

/// Reusable rendezvous point: every participating thread calls Wait() and
/// blocks until all `count` threads arrived. Used by the parallel ModelJoin
/// build phase (paper §5.2: "a barrier before leaving the build phase").
class Barrier {
 public:
  explicit Barrier(int count) : threshold_(count), count_(count) {}

  void Wait() INDBML_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    int gen = generation_;
    if (--count_ == 0) {
      ++generation_;
      count_ = threshold_;
      cv_.NotifyAll();
      return;
    }
    while (gen == generation_) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  const int threshold_;
  int count_ INDBML_GUARDED_BY(mu_);
  int generation_ INDBML_GUARDED_BY(mu_) = 0;
};

}  // namespace indbml

#endif  // INDBML_COMMON_THREAD_POOL_H_
