#ifndef INDBML_COMMON_VALIDATION_H_
#define INDBML_COMMON_VALIDATION_H_

namespace indbml::validation {

/// \brief Process-wide switch for the runtime invariant validators.
///
/// When enabled (environment variable `INDBML_VALIDATE=1`, or
/// `SetEnabledForTesting`), the engine checks data-chunk invariants between
/// operators, re-validates the logical plan after every optimizer pass, and
/// asserts the shared-model shape invariants at ModelJoin build-phase exit.
/// When disabled (the default) every validation hook is a single branch on a
/// cached flag — no per-row or per-chunk work is done.
bool Enabled();

/// Test hook: 1 = force on, 0 = force off, -1 = follow the environment.
void SetEnabledForTesting(int mode);

}  // namespace indbml::validation

#endif  // INDBML_COMMON_VALIDATION_H_
