#ifndef INDBML_COMMON_LOGGING_H_
#define INDBML_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace indbml {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
/// Default is kWarning so library users see problems but not chatter.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log sink. Writes a single line to stderr on destruction;
/// aborts the process for kFatal (used for programming errors only).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace indbml

#define INDBML_LOG(level)                                                       \
  ::indbml::internal::LogMessage(::indbml::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check for programming errors; always on (not only in debug
/// builds) because the cost is negligible outside of inner loops.
#define INDBML_CHECK(cond)                                        \
  if (!(cond)) INDBML_LOG(Fatal) << "Check failed: " #cond " "

/// Debug-only invariant check: full INDBML_CHECK in debug builds, a no-op
/// in NDEBUG builds (the condition is parsed but never evaluated), so it is
/// safe in per-value inner loops.
#ifdef NDEBUG
#define INDBML_DCHECK(cond) \
  if (false && (cond)) INDBML_LOG(Fatal)
#else
#define INDBML_DCHECK(cond) INDBML_CHECK(cond)
#endif

#endif  // INDBML_COMMON_LOGGING_H_
