#ifndef INDBML_COMMON_MEMORY_TRACKER_H_
#define INDBML_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace indbml {

/// \brief Process-wide accounting of the library's large allocations.
///
/// Columns, hash tables, tensors and device arenas report their
/// allocations here, which lets the Table-3 benchmark report the peak
/// memory of each inference approach without relying on RSS (noisy and
/// allocator-dependent). `ResetPeak()` is called between measurements.
class MemoryTracker {
 public:
  static MemoryTracker& Global();

  void Allocate(int64_t bytes) {
    int64_t cur = current_.fetch_add(bytes) + bytes;
    int64_t peak = peak_.load();
    while (cur > peak && !peak_.compare_exchange_weak(peak, cur)) {
    }
  }

  void Free(int64_t bytes) { current_.fetch_sub(bytes); }

  int64_t current_bytes() const { return current_.load(); }
  int64_t peak_bytes() const { return peak_.load(); }

  /// Resets the peak to the current level (call before a measurement).
  void ResetPeak() { peak_.store(current_.load()); }

 private:
  /// lock-free: current_ is a plain counter; peak_ advances via a CAS loop
  /// against the post-add level, so racing Allocate() calls cannot lose a
  /// high-water mark. ResetPeak() is only meaningful between measurements
  /// (quiescent point), not under concurrent allocation.
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// RAII accounting for a block of `bytes` tracked memory.
class ScopedTracked {
 public:
  explicit ScopedTracked(int64_t bytes) : bytes_(bytes) {
    MemoryTracker::Global().Allocate(bytes_);
  }
  ~ScopedTracked() { MemoryTracker::Global().Free(bytes_); }

  ScopedTracked(const ScopedTracked&) = delete;
  ScopedTracked& operator=(const ScopedTracked&) = delete;

 private:
  int64_t bytes_;
};

/// Formats a byte count as a human-readable string ("1.4 GB").
std::string FormatBytes(int64_t bytes);

/// Reads the process resident-set size from /proc (Linux); 0 if unavailable.
/// Used as a cross-check next to the tracked peak in EXPERIMENTS.md.
int64_t ReadProcessRssBytes();

}  // namespace indbml

#endif  // INDBML_COMMON_MEMORY_TRACKER_H_
