#include "common/memory_tracker.h"

#include <unistd.h>

#include <cstdio>

namespace indbml {

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

std::string FormatBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return buf;
}

int64_t ReadProcessRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long pages_total = 0;
  long pages_rss = 0;
  int n = std::fscanf(f, "%ld %ld", &pages_total, &pages_rss);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<int64_t>(pages_rss) * sysconf(_SC_PAGESIZE);
}

}  // namespace indbml
