#include "common/logging.h"

#include <atomic>

namespace indbml {

namespace {
/// lock-free: relaxed-equivalent level gate; a racing SetLogLevel may drop
/// or admit one in-flight message, which is acceptable for a log filter.
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }
void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    // One insertion per message: two chained << calls are not atomic with
    // respect to other logging threads, which interleaves half-lines on a
    // shared stderr. Flushing per line is deliberate (this is the sink).
    std::string line = stream_.str();
    line.push_back('\n');
    std::cerr << line << std::flush;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace indbml
