#ifndef INDBML_COMMON_TRACE_H_
#define INDBML_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace indbml::trace {

/// \brief Lightweight scoped spans exported as Chrome trace JSON.
///
/// Spans nest naturally (query → phase → operator → kernel) and every
/// thread gets its own track, so partition parallelism and thread-pool
/// scheduling gaps are visible on a timeline. Collection is off by default;
/// a `Span` then costs one relaxed atomic load. Enable it either with
/// `Start()` or by setting the `INDBML_TRACE=<path>` environment variable,
/// which also installs an atexit hook writing `<path>` — loadable in
/// `chrome://tracing` or https://ui.perfetto.dev.
bool Enabled();

/// Starts span collection (idempotent; `INDBML_TRACE` calls this at init).
void Start();
/// Stops span collection; already-collected spans stay buffered for export.
void Stop();

/// Serialises all collected spans as a Chrome trace JSON document.
std::string ToJson();

/// Writes ToJson() to `path` and clears the span buffers.
Status WriteTo(const std::string& path);

/// Drops all buffered spans (between measurements).
void Clear();

/// Labels the calling thread's track ("worker-3"); shown by the trace UI.
void SetThreadName(const std::string& name);

namespace internal {
extern std::atomic<bool> g_enabled;
void RecordSpan(std::string name, int64_t start_micros, int64_t end_micros);
int64_t NowMicros();
/// Reads INDBML_TRACE once and installs the atexit writer; returns enabled.
bool InitFromEnv();
}  // namespace internal

inline bool Enabled() {
  static const bool env_init = internal::InitFromEnv();
  (void)env_init;
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// RAII span covering its C++ scope. When tracing is disabled at
/// construction the span is a no-op (no name copy, no clock read).
class Span {
 public:
  explicit Span(const char* name) {
    if (Enabled()) {
      name_ = name;
      start_ = internal::NowMicros();
      active_ = true;
    }
  }
  explicit Span(std::string name) {
    if (Enabled()) {
      owned_name_ = std::move(name);
      name_ = owned_name_.c_str();
      start_ = internal::NowMicros();
      active_ = true;
    }
  }
  ~Span() {
    if (active_) {
      internal::RecordSpan(owned_name_.empty() ? std::string(name_)
                                               : std::move(owned_name_),
                           start_, internal::NowMicros());
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::string owned_name_;
  int64_t start_ = 0;
  bool active_ = false;
};

}  // namespace indbml::trace

#endif  // INDBML_COMMON_TRACE_H_
