#include "common/validation.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace indbml::validation {

namespace {

bool EnvEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("INDBML_VALIDATE");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  return enabled;
}

/// lock-free: relaxed flag; -1 defers to the (immutable once computed)
/// environment value. Tests toggle it between queries, never concurrently
/// with execution, so no ordering is needed.
std::atomic<int> g_override{-1};

}  // namespace

bool Enabled() {
  int mode = g_override.load(std::memory_order_relaxed);
  if (mode >= 0) return mode != 0;
  return EnvEnabled();
}

void SetEnabledForTesting(int mode) {
  g_override.store(mode, std::memory_order_relaxed);
}

}  // namespace indbml::validation
