#ifndef INDBML_COMMON_BUFFER_H_
#define INDBML_COMMON_BUFFER_H_

#include <cstdint>
#include <memory>

namespace indbml {

/// \brief Reference-counted, type-erased block of raw storage.
///
/// A Buffer is the single unit of data ownership in the engine: base-table
/// columns (storage::Column), operator vectors (exec::Vector) and
/// materialised results all hold BufferPtr references to the same
/// allocation instead of copying it. A scan therefore emits *views* over
/// table storage, a filter narrows a view with a selection vector, and the
/// bytes are only duplicated when an operator explicitly flattens.
///
/// The MemoryTracker accounting lives here and nowhere else: each Buffer
/// reports its capacity exactly once for its whole lifetime, however many
/// vectors/columns share it. That keeps the Table-3 peak-memory experiment
/// honest — a chunk viewing a 1 GB column adds ~0 bytes, not another 1 GB.
///
/// Buffers are fixed-capacity; "growth" is the owner's job (allocate a
/// larger Buffer, copy, drop the old reference). Contents are shared
/// read-only the moment a second reference exists; writers must hold the
/// only reference (see exec::Vector's copy-on-write discipline).
///
/// Thread-safety: the reference count is `shared_ptr`'s own lock-free
/// atomic, so BufferPtr copies/destructions may race freely across worker
/// threads; the final release publishes the MemoryTracker::Free via the
/// control block's acquire/release ordering. The *bytes* carry no lock:
/// the single-writer-before-sharing rule above (checked at runtime by
/// exec::Vector::EnsureWritable's use_count()==1 test) is the discipline
/// that makes concurrent readers safe.
class Buffer {
 public:
  /// Allocates an untyped buffer of `bytes` (uninitialised) and reports it
  /// to the global MemoryTracker.
  static std::shared_ptr<Buffer> New(int64_t bytes);

  ~Buffer();

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  uint8_t* data() { return data_.get(); }
  const uint8_t* data() const { return data_.get(); }
  int64_t capacity() const { return capacity_; }

 private:
  explicit Buffer(int64_t bytes);

  std::unique_ptr<uint8_t[]> data_;
  int64_t capacity_ = 0;
};

using BufferPtr = std::shared_ptr<Buffer>;

}  // namespace indbml

#endif  // INDBML_COMMON_BUFFER_H_
