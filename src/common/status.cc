#include "common/status.h"

namespace indbml {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kDeviceError:
      return "DeviceError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += msg_;
  return result;
}

}  // namespace indbml
