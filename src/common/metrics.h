#ifndef INDBML_COMMON_METRICS_H_
#define INDBML_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace indbml::metrics {

/// \brief Process-wide named counters, gauges and log-scale histograms.
///
/// Naming scheme (see DESIGN.md "Observability"): dotted lower-case
/// `<component>.<metric>[_<unit>]`, e.g. `modeljoin.rows`,
/// `modeljoin.infer_micros`, `memory.query_peak_bytes`. Update paths use
/// relaxed atomics only, so per-chunk increments from all partition threads
/// are safe and cheap; registration (name lookup) takes a mutex and should
/// be done once, outside hot loops.

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};  ///< lock-free: relaxed; no ordering implied
};

/// Last-written level plus the maximum level ever written (peak tracking).
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    int64_t peak = max_.load(std::memory_order_relaxed);
    while (v > peak && !max_.compare_exchange_weak(peak, v)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  /// lock-free: value_ is a plain relaxed level; max_ advances through a CAS
  /// loop, so concurrent Set() calls never lose a peak.
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Log-scale histogram over non-negative int64 samples (durations, sizes).
///
/// Bucket b holds samples with bit-width b, i.e. [2^(b-1), 2^b); negative
/// or zero samples land in bucket 0. Percentile() interpolates linearly
/// inside the winning bucket, which bounds the error by the bucket width
/// (a factor of two) — plenty for p50/p95/p99 latency reporting.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(int64_t v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Mean of all recorded samples (0 when empty).
  double Mean() const;
  /// Approximate p-th percentile, p in [0, 100].
  double Percentile(double p) const;
  void Reset();

 private:
  /// lock-free: relaxed per-bucket adds; a concurrent snapshot may observe a
  /// sample in count_ before its bucket (bounded skew, fine for reporting).
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// \brief Name → metric map. Metric objects are never deleted, so pointers
/// returned here stay valid for the process lifetime and can be cached by
/// hot-path code.
class Registry {
 public:
  /// The process-wide registry used by the engine's instrumentation.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name; one name is one kind of metric (registering
  /// the same name as two kinds is a programming error and fatal).
  Counter* counter(const std::string& name) INDBML_EXCLUDES(mu_);
  Gauge* gauge(const std::string& name) INDBML_EXCLUDES(mu_);
  Histogram* histogram(const std::string& name) INDBML_EXCLUDES(mu_);

  /// One metric per line, sorted by name ("counter modeljoin.rows 5000").
  std::string TextSnapshot() const INDBML_EXCLUDES(mu_);
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string JsonSnapshot() const INDBML_EXCLUDES(mu_);
  /// Flattened integer view used for before/after deltas: counters as
  /// `name`, histograms as `name.count` / `name.sum`. Gauges are levels,
  /// not event counts, so they are excluded.
  std::map<std::string, int64_t> FlatValues() const INDBML_EXCLUDES(mu_);
  /// Zeroes every registered metric (benchmark reruns, tests).
  void ResetAll() INDBML_EXCLUDES(mu_);

 private:
  /// Guards the name→metric maps only. The metric objects themselves are
  /// lock-free: update paths touch relaxed atomics, and unique_ptr targets
  /// are never deleted, so cached Counter*/Gauge*/Histogram* stay valid
  /// without the registry lock.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ INDBML_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ INDBML_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      INDBML_GUARDED_BY(mu_);
};

}  // namespace indbml::metrics

#endif  // INDBML_COMMON_METRICS_H_
