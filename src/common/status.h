#ifndef INDBML_COMMON_STATUS_H_
#define INDBML_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace indbml {

/// Error categories used across the library. Mirrors the Arrow/RocksDB idiom
/// of returning rich status objects instead of throwing exceptions on hot
/// query-execution paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kIOError,
  kParseError,
  kBindError,
  kExecutionError,
  kDeviceError,
  kCancelled,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Operation outcome carrying an error code and message.
///
/// `Status` is cheap to copy in the OK case (empty message) and is the
/// only error-reporting channel of the library: no exceptions are thrown
/// from query-processing or inference code. Marked [[nodiscard]] so a
/// dropped error is a compile error under -Werror; consume deliberately
/// ignored statuses with `.IgnoreError()`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status DeviceError(std::string msg) {
    return Status(StatusCode::kDeviceError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Explicitly discards this status. The only sanctioned way to drop an
  /// error (e.g. best-effort cleanup paths); greppable, unlike a cast.
  void IgnoreError() const {}

  /// Formats as "InvalidArgument: <message>" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// The usual accessor pattern is:
/// \code
///   Result<Plan> r = Planner::Plan(stmt);
///   if (!r.ok()) return r.status();
///   Plan plan = std::move(r).ValueOrDie();
/// \endcode
/// or via the `INDBML_ASSIGN_OR_RETURN` macro.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or a (non-OK) status keeps call
  /// sites terse, matching the Arrow convention.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the error status (OK if a value is held).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& ValueOrDie() const& { return std::get<T>(data_); }
  T& ValueOrDie() & { return std::get<T>(data_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace indbml

/// Propagates a non-OK Status from the current function.
#define INDBML_RETURN_IF_ERROR(expr)               \
  do {                                             \
    ::indbml::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Historical spelling of INDBML_RETURN_IF_ERROR (Arrow idiom).
#define INDBML_RETURN_NOT_OK(expr) INDBML_RETURN_IF_ERROR(expr)

#define INDBML_CONCAT_IMPL(x, y) x##y
#define INDBML_CONCAT(x, y) INDBML_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define INDBML_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto INDBML_CONCAT(_res_, __LINE__) = (rexpr);                    \
  if (!INDBML_CONCAT(_res_, __LINE__).ok())                         \
    return INDBML_CONCAT(_res_, __LINE__).status();                 \
  lhs = std::move(INDBML_CONCAT(_res_, __LINE__)).ValueOrDie()

#endif  // INDBML_COMMON_STATUS_H_
