#include "common/buffer.h"

#include "common/memory_tracker.h"
#include "common/metrics.h"

namespace indbml {

Buffer::Buffer(int64_t bytes) : capacity_(bytes) {
  if (bytes > 0) {
    // make_unique_for_overwrite: no value-initialisation — callers fill the
    // buffer themselves, and zeroing large column allocations twice shows
    // up in scan-heavy profiles.
    data_ = std::make_unique_for_overwrite<uint8_t[]>(static_cast<size_t>(bytes));
  }
  MemoryTracker::Global().Allocate(capacity_);
}

Buffer::~Buffer() { MemoryTracker::Global().Free(capacity_); }

std::shared_ptr<Buffer> Buffer::New(int64_t bytes) {
  static metrics::Counter* allocations =
      metrics::Registry::Global().counter("buffer.allocations");
  static metrics::Counter* allocated_bytes =
      metrics::Registry::Global().counter("buffer.allocated_bytes");
  allocations->Increment();
  allocated_bytes->Increment(bytes);
  return std::shared_ptr<Buffer>(new Buffer(bytes));
}

}  // namespace indbml
