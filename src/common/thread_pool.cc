#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"
#include "common/trace.h"

namespace indbml {

int HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

ThreadPool::ThreadPool(int num_threads) {
  INDBML_CHECK(num_threads > 0) << "thread pool needs at least one worker";
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_task_.NotifyAll();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    // A task enqueued during shutdown would never run and a later WaitIdle
    // would hang on it; make the misuse loud instead of a silent hang.
    INDBML_CHECK(!shutdown_) << "Submit on a ThreadPool being destroyed";
    queue_.push_back(std::move(task));
  }
  cv_task_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) cv_idle_.Wait(mu_);
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  std::atomic<int> next{0};
  int tasks = std::min<int>(n, num_threads());
  for (int t = 0; t < tasks; ++t) {
    Submit([&] {
      int i;
      while ((i = next.fetch_add(1)) < n) fn(i);
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop(int worker_index) {
  if (trace::Enabled()) {
    trace::SetThreadName("worker-" + std::to_string(worker_index));
  }
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_task_.Wait(mu_);
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.NotifyAll();
    }
  }
}

}  // namespace indbml
