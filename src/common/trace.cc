#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/string_util.h"

namespace indbml::trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

struct SpanEvent {
  std::string name;
  int64_t start_micros;
  int64_t end_micros;
};

/// One per thread that ever recorded a span; owned by the global list so
/// events survive thread exit (pool workers finish before export).
struct ThreadBuffer {
  uint32_t tid;  ///< assigned once under GlobalState::mu, read-only after
  Mutex mu;      ///< guards events/name against a concurrent export
  std::string thread_name INDBML_GUARDED_BY(mu);
  std::vector<SpanEvent> events INDBML_GUARDED_BY(mu);
};

// Lock order: GlobalState::mu before any ThreadBuffer::mu (Clear holds
// both); never the reverse.
struct GlobalState {
  Mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> threads INDBML_GUARDED_BY(mu);
  uint32_t next_tid INDBML_GUARDED_BY(mu) = 1;
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
};

GlobalState& Global() {
  static GlobalState* state = new GlobalState();
  return *state;
}

ThreadBuffer* LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> local = [] {
    auto buffer = std::make_shared<ThreadBuffer>();
    GlobalState& g = Global();
    MutexLock lock(g.mu);
    buffer->tid = g.next_tid++;
    g.threads.push_back(buffer);
    return buffer;
  }();
  return local.get();
}

void JsonEscapeTo(const std::string& in, std::string* out) {
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += StrFormat("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
    } else {
      out->push_back(c);
    }
  }
}

void AtExitWriter();

const char* EnvTracePath() {
  static const char* path = std::getenv("INDBML_TRACE");
  return path;
}

}  // namespace

namespace internal {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Global().epoch)
      .count();
}

void RecordSpan(std::string name, int64_t start_micros, int64_t end_micros) {
  ThreadBuffer* buffer = LocalBuffer();
  MutexLock lock(buffer->mu);
  buffer->events.push_back(SpanEvent{std::move(name), start_micros, end_micros});
}

bool InitFromEnv() {
  const char* path = EnvTracePath();
  if (path != nullptr && path[0] != '\0') {
    g_enabled.store(true, std::memory_order_relaxed);
    std::atexit(AtExitWriter);
  }
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace internal

void Start() { internal::g_enabled.store(true, std::memory_order_relaxed); }

void Stop() { internal::g_enabled.store(false, std::memory_order_relaxed); }

void SetThreadName(const std::string& name) {
  ThreadBuffer* buffer = LocalBuffer();
  MutexLock lock(buffer->mu);
  buffer->thread_name = name;
}

void Clear() {
  GlobalState& g = Global();
  MutexLock lock(g.mu);
  for (auto& t : g.threads) {
    MutexLock tlock(t->mu);
    t->events.clear();
  }
}

std::string ToJson() {
  GlobalState& g = Global();
  std::vector<std::shared_ptr<ThreadBuffer>> threads;
  {
    MutexLock lock(g.mu);
    threads = g.threads;
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& t : threads) {
    MutexLock tlock(t->mu);
    if (!t->thread_name.empty()) {
      out += first ? "" : ",";
      first = false;
      out += StrFormat(
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
          "\"args\":{\"name\":\"",
          t->tid);
      JsonEscapeTo(t->thread_name, &out);
      out += "\"}}";
    }
    for (const SpanEvent& e : t->events) {
      out += first ? "" : ",";
      first = false;
      out += "{\"name\":\"";
      JsonEscapeTo(e.name, &out);
      out += StrFormat(
          "\",\"cat\":\"indbml\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
          "\"ts\":%lld,\"dur\":%lld}",
          t->tid, static_cast<long long>(e.start_micros),
          static_cast<long long>(e.end_micros - e.start_micros));
    }
  }
  out += "]}";
  return out;
}

Status WriteTo(const std::string& path) {
  std::string json = ToJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace output file: " + path);
  }
  Clear();
  return Status::OK();
}

namespace {

void AtExitWriter() {
  const char* path = EnvTracePath();
  if (path == nullptr || path[0] == '\0') return;
  Status status = WriteTo(path);
  if (!status.ok()) {
    INDBML_LOG(Warning) << "trace export failed: " << status.ToString();
  } else {
    std::fprintf(stderr, "indbml trace written to %s\n", path);
  }
}

}  // namespace

}  // namespace indbml::trace
