#include "common/metrics.h"

#include <bit>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace indbml::metrics {

namespace {

int BucketIndex(int64_t v) {
  if (v <= 0) return 0;
  return std::bit_width(static_cast<uint64_t>(v));
}

/// Lower/upper sample bound of bucket `b` (bucket 0 is the point {<=0}).
int64_t BucketLow(int b) { return b == 0 ? 0 : int64_t{1} << (b - 1); }
int64_t BucketHigh(int b) {
  return b == 0 ? 0 : (b >= 63 ? INT64_MAX : (int64_t{1} << b) - 1);
}

}  // namespace

void Histogram::Record(int64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v > 0 ? v : 0, std::memory_order_relaxed);
}

double Histogram::Mean() const {
  int64_t n = count();
  return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

double Histogram::Percentile(double p) const {
  int64_t n = count();
  if (n == 0) return 0.0;
  double rank = p / 100.0 * static_cast<double>(n);
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    int64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Linear interpolation across the bucket's value range.
      double frac = (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      double lo = static_cast<double>(BucketLow(b));
      double hi = static_cast<double>(BucketHigh(b));
      return lo + frac * (hi - lo);
    }
    seen += in_bucket;
  }
  return static_cast<double>(BucketHigh(kNumBuckets - 1));
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* global = new Registry();
  return *global;
}

Counter* Registry::counter(const std::string& name) {
  MutexLock lock(mu_);
  INDBML_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  INDBML_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  INDBML_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0)
      << "metric '" << name << "' already registered with another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string Registry::TextSnapshot() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("counter %s %lld\n", name.c_str(),
                     static_cast<long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("gauge %s %lld max=%lld\n", name.c_str(),
                     static_cast<long long>(g->value()),
                     static_cast<long long>(g->max()));
  }
  for (const auto& [name, h] : histograms_) {
    out += StrFormat("histogram %s count=%lld sum=%lld p50=%.0f p95=%.0f p99=%.0f\n",
                     name.c_str(), static_cast<long long>(h->count()),
                     static_cast<long long>(h->sum()), h->Percentile(50),
                     h->Percentile(95), h->Percentile(99));
  }
  return out;
}

std::string Registry::JsonSnapshot() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%s\"%s\":%lld", first ? "" : ",", name.c_str(),
                     static_cast<long long>(c->value()));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%s\"%s\":{\"value\":%lld,\"max\":%lld}", first ? "" : ",",
                     name.c_str(), static_cast<long long>(g->value()),
                     static_cast<long long>(g->max()));
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += StrFormat(
        "%s\"%s\":{\"count\":%lld,\"sum\":%lld,\"p50\":%.1f,\"p95\":%.1f,"
        "\"p99\":%.1f}",
        first ? "" : ",", name.c_str(), static_cast<long long>(h->count()),
        static_cast<long long>(h->sum()), h->Percentile(50), h->Percentile(95),
        h->Percentile(99));
    first = false;
  }
  out += "}}";
  return out;
}

std::map<std::string, int64_t> Registry::FlatValues() const {
  MutexLock lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  for (const auto& [name, h] : histograms_) {
    out[name + ".count"] = h->count();
    out[name + ".sum"] = h->sum();
  }
  return out;
}

void Registry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace indbml::metrics
