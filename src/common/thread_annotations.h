#ifndef INDBML_COMMON_THREAD_ANNOTATIONS_H_
#define INDBML_COMMON_THREAD_ANNOTATIONS_H_

/// \file
/// \brief Clang thread-safety-analysis capability macros.
///
/// These wrap clang's `-Wthread-safety` attributes so lock discipline is a
/// compile-time contract instead of tribal knowledge: every mutex-protected
/// member is declared `INDBML_GUARDED_BY(mu_)`, every method that must be
/// called with a lock held is `INDBML_REQUIRES(mu_)`, and every method that
/// takes the lock itself is `INDBML_EXCLUDES(mu_)`. The clang CI job builds
/// with `-Wthread-safety -Werror`; under GCC (which has no such analysis)
/// every macro expands to nothing.
///
/// Conventions (see DESIGN.md "Static analysis"):
///  - Use the annotated wrappers in common/mutex.h (`Mutex`, `MutexLock`,
///    `CondVar`), never raw `std::mutex` / `std::lock_guard`: the standard
///    library types carry no capability attributes, so the analysis cannot
///    see their acquisitions.
///  - Lock-free atomics cannot be capability-annotated; document their
///    ordering contract in a comment at the member declaration instead
///    (grep for "lock-free:").
///  - `INDBML_NO_THREAD_SAFETY_ANALYSIS` is an escape hatch of last resort
///    and must carry a justification comment; it is forbidden in
///    src/common/ and src/exec/ (enforced by review, the directories build
///    clean without it).

#if defined(__clang__)
#define INDBML_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define INDBML_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Declares a type to be a capability ("mutex"-like resource).
#define INDBML_CAPABILITY(x) INDBML_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define INDBML_SCOPED_CAPABILITY INDBML_THREAD_ANNOTATION(scoped_lockable)

/// Member is protected by the given capability (read and write access
/// require holding it).
#define INDBML_GUARDED_BY(x) INDBML_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define INDBML_PT_GUARDED_BY(x) INDBML_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) when calling.
#define INDBML_REQUIRES(...) \
  INDBML_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared when calling.
#define INDBML_REQUIRES_SHARED(...) \
  INDBML_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define INDBML_ACQUIRE(...) \
  INDBML_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared and holds it on return.
#define INDBML_ACQUIRE_SHARED(...) \
  INDBML_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which the caller held on entry).
#define INDBML_RELEASE(...) \
  INDBML_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define INDBML_RELEASE_SHARED(...) \
  INDBML_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire the capability; first argument is the return
/// value that signals success.
#define INDBML_TRY_ACQUIRE(...) \
  INDBML_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must *not* hold the capability (the function acquires it itself;
/// calling with it held would deadlock or double-lock).
#define INDBML_EXCLUDES(...) INDBML_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code paths the
/// analysis cannot follow, e.g. a lock taken by a caller through a pointer).
#define INDBML_ASSERT_CAPABILITY(x) \
  INDBML_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define INDBML_RETURN_CAPABILITY(x) INDBML_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function. Last resort; justify in a
/// comment. Forbidden in src/common/ and src/exec/.
#define INDBML_NO_THREAD_SAFETY_ANALYSIS \
  INDBML_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // INDBML_COMMON_THREAD_ANNOTATIONS_H_
