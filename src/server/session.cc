#include "server/session.h"

#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "exec/morsel.h"
#include "server/server.h"

namespace indbml::server {

namespace {

/// True if any node of the plan is a ModelJoin. Without shared models such
/// plans must run single-instance: the per-query build barrier requires all
/// worker instances inside Open concurrently, which the shared executor's
/// lazy opens cannot guarantee.
bool PlanHasModelJoin(const sql::LogicalOp& node) {
  if (node.kind == sql::LogicalKind::kModelJoin) return true;
  for (const auto& child : node.children) {
    if (child != nullptr && PlanHasModelJoin(*child)) return true;
  }
  return false;
}

}  // namespace

Session::Session(QueryServer* server, sql::QueryEngine::Options options)
    : server_(server), options_(std::move(options)) {}

sql::QueryEngine::Options Session::options() const {
  MutexLock lock(mu_);
  return options_;
}

void Session::set_options(const sql::QueryEngine::Options& options) {
  MutexLock lock(mu_);
  options_ = options;
}

int Session::priority() const {
  MutexLock lock(mu_);
  return priority_;
}

void Session::set_priority(int priority) {
  MutexLock lock(mu_);
  priority_ = priority < 1 ? 1 : priority;
}

Result<std::shared_ptr<QueryHandle>> Session::Submit(const std::string& sql) {
  const sql::QueryEngine::Options opts = options();
  const int prio = priority();
  sql::QueryEngine* engine = server_->engine();

  std::shared_ptr<const sql::LogicalOp> plan;
  PlanCache* cache = server_->plan_cache();
  PlanCache::Key key;
  if (cache != nullptr) {
    key.sql = sql;
    key.options_fingerprint = OptionsFingerprint(opts);
    key.catalog_version = engine->catalog()->version();
    plan = cache->Lookup(key);
  }
  if (plan == nullptr) {
    INDBML_ASSIGN_OR_RETURN(auto planned, engine->PlanQuery(sql, opts));
    plan = std::shared_ptr<const sql::LogicalOp>(std::move(planned));
    if (cache != nullptr) cache->Insert(key, plan);
  }
  return SubmitPlan(std::move(plan), opts, prio);
}

Result<std::shared_ptr<QueryHandle>> Session::SubmitPlan(
    std::shared_ptr<const sql::LogicalOp> plan,
    const sql::QueryEngine::Options& opts, int priority) {
  sql::QueryEngine* engine = server_->engine();
  const bool single_instance =
      !opts.shared_models && PlanHasModelJoin(*plan);
  const int max_workers =
      single_instance ? 1 : server_->executor()->num_threads();

  // The static-partition path never runs under the shared executor: plans
  // that don't qualify for morsel scheduling execute as one serial drain,
  // so prepare them single-worker (full scan range in instance 0).
  sql::QueryEngine::Options prep_opts = opts;
  prep_opts.partitions = 1;
  INDBML_ASSIGN_OR_RETURN(
      auto prep,
      engine->PreparePhysical(*plan, prep_opts, max_workers, nullptr));

  // The job may outlive this call (non-blocking submit): the factory keeps
  // the planner and the cached logical plan alive until the query finishes.
  std::shared_ptr<sql::PhysicalPlanner> planner(std::move(prep.planner));
  JobSpec spec;
  spec.factory = [planner, plan](int worker) {
    return planner->Instantiate(worker);
  };
  spec.catalog = engine->catalog();
  spec.priority = priority;
  if (prep.use_morsel) {
    spec.morsels =
        exec::MakeMorsels(*prep.analysis.partitioned_table, opts.morsel_rows);
    spec.num_instances = planner->num_workers();
  } else {
    spec.serial = true;
    spec.num_instances = 1;
  }
  return server_->executor()->Submit(std::move(spec));
}

Result<exec::QueryResult> Session::ExecuteQuery(const std::string& sql) {
  Stopwatch stopwatch;
  INDBML_ASSIGN_OR_RETURN(auto handle, Submit(sql));
  auto result = handle->Wait();
  metrics::Registry::Global()
      .histogram("server.query_micros")
      ->Record(stopwatch.ElapsedMicros());
  return result;
}

}  // namespace indbml::server
