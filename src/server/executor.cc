#include "server/executor.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "inference/batcher.h"

namespace indbml::server {

namespace {

/// Stride numerator: pass advances by kStrideUnit / priority per dispatch,
/// so priorities act as proportional shares (classic stride scheduling).
constexpr int64_t kStrideUnit = 1 << 20;

}  // namespace

// ---------------------------------------------------------------- QueryHandle

QueryHandle::QueryHandle(JobSpec spec)
    : spec_(std::move(spec)),
      source_(std::move(spec_.morsels)),
      collector_(source_.num_morsels()) {
  if (spec_.priority < 1) spec_.priority = 1;
  if (spec_.num_instances < 1) spec_.num_instances = 1;
  if (spec_.serial) spec_.num_instances = 1;
  stride_ = kStrideUnit / spec_.priority;
  instances_.resize(static_cast<size_t>(spec_.num_instances));
}

void QueryHandle::Cancel() {
  cancelled_.store(true, std::memory_order_release);
  // The cancellation token is wired straight to the morsel source: workers
  // observe the abort at their next claim and stop mid-query.
  source_.Abort();
  // A worker blocked inside the inference batcher's coalescing wait is not
  // claiming morsels; kick it so it re-checks the flag (ExecContext's
  // interrupt points at cancelled_) and returns promptly.
  inference::InferenceBatcher::Global().KickWaiters();
  metrics::Registry::Global().counter("server.cancellations")->Increment();
}

bool QueryHandle::done() const {
  MutexLock lock(done_mu_);
  return done_;
}

Result<exec::QueryResult> QueryHandle::Wait() {
  MutexLock lock(done_mu_);
  while (!done_) done_cv_.Wait(done_mu_);
  if (!status_.ok()) return status_;
  return std::move(result_);
}

// -------------------------------------------------------------- SharedExecutor

SharedExecutor::SharedExecutor(const Options& options)
    : options_(options),
      num_threads_(options.worker_threads > 0 ? options.worker_threads
                                              : HardwareConcurrency()) {
  pool_ = std::make_unique<ThreadPool>(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

SharedExecutor::~SharedExecutor() {
  std::vector<std::shared_ptr<QueryHandle>> orphans;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    for (auto& job : running_) {
      job->source_.Abort();
      orphans.push_back(job);
    }
    for (auto& job : queued_) orphans.push_back(job);
    running_.clear();
    queued_.clear();
  }
  cv_work_.NotifyAll();
  pool_.reset();  // joins the worker loops; no dispatch outlives this
  // Jobs stranded by the shutdown complete with kCancelled so a concurrent
  // Wait() never hangs. Workers are gone: finalizing here is single-threaded.
  for (auto& job : orphans) {
    if (!job->done()) FinalizeJob(job);
  }
}

int64_t SharedExecutor::inflight() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(running_.size());
}

int64_t SharedExecutor::queue_depth() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(queued_.size());
}

int64_t SharedExecutor::MinPassLocked() const {
  int64_t min_pass = std::numeric_limits<int64_t>::max();
  for (const auto& job : running_) min_pass = std::min(min_pass, job->pass_);
  return min_pass == std::numeric_limits<int64_t>::max() ? 0 : min_pass;
}

Result<std::shared_ptr<QueryHandle>> SharedExecutor::Submit(JobSpec spec) {
  INDBML_CHECK(spec.factory != nullptr) << "JobSpec without a plan factory";
  INDBML_CHECK(!spec.serial || spec.num_instances <= 1)
      << "serial jobs run exactly one instance";
  // A morsel job with an empty source would finish without ever opening an
  // instance and lose its output schema; run it as one serial drain instead
  // (an empty partitioned table produces zero morsels).
  if (!spec.serial && spec.morsels.empty()) {
    spec.serial = true;
    spec.num_instances = 1;
  }
  auto job = std::shared_ptr<QueryHandle>(new QueryHandle(std::move(spec)));
  metrics::Registry& registry = metrics::Registry::Global();
  {
    MutexLock lock(mu_);
    INDBML_CHECK(!shutdown_) << "Submit on a SharedExecutor being destroyed";
    if (static_cast<int>(running_.size()) < options_.max_inflight) {
      // New jobs enter at the current minimum pass so they compete
      // immediately without erasing the shares already consumed.
      job->pass_ = MinPassLocked();
      running_.push_back(job);
    } else if (static_cast<int>(queued_.size()) < options_.max_queued) {
      queued_.push_back(job);
    } else {
      registry.counter("server.admission_rejects")->Increment();
      return Status::ResourceExhausted(
          "serving queue full: " + std::to_string(running_.size()) +
          " in flight, " + std::to_string(queued_.size()) + " queued");
    }
    registry.gauge("server.inflight")->Set(static_cast<int64_t>(running_.size()));
    registry.gauge("server.queue_depth")
        ->Set(static_cast<int64_t>(queued_.size()));
  }
  registry.counter("server.queries")->Increment();
  cv_work_.NotifyAll();
  return job;
}

bool SharedExecutor::FindWorkLocked(Dispatch* d) {
  QueryHandle* best = nullptr;
  std::shared_ptr<QueryHandle> best_ref;
  for (const auto& job : running_) {
    if (job->no_more_work_) continue;
    if (!job->spec_.serial && job->free_instances_.empty() &&
        job->created_instances_ >= job->spec_.num_instances) {
      continue;  // all instances busy; its own dispatches will drain it
    }
    if (best == nullptr || job->pass_ < best->pass_) {
      best = job.get();
      best_ref = job;
    }
  }
  if (best == nullptr) return false;

  d->job = std::move(best_ref);
  best->pass_ += best->stride_;
  best->active_dispatches_++;
  if (best->spec_.serial) {
    best->no_more_work_ = true;  // the single dispatch is the whole query
    d->serial = true;
    d->instance = 0;
    return true;
  }
  if (!best->source_.Next(&d->morsel)) {
    // Source dry or aborted (cancellation): this dispatch only carries the
    // finalize duty once the remaining active dispatches finish.
    best->no_more_work_ = true;
    d->finalize_only = true;
    return true;
  }
  if (!best->free_instances_.empty()) {
    d->instance = best->free_instances_.back();
    best->free_instances_.pop_back();
  } else {
    d->instance = best->created_instances_++;
  }
  return true;
}

void SharedExecutor::RunDispatch(Dispatch* d) {
  QueryHandle* job = d->job.get();
  if (d->finalize_only) return;

  if (d->serial) {
    trace::Span span("serving serial query");
    Result<exec::OperatorPtr> op = job->spec_.factory(0);
    if (!op.ok()) {
      job->errors_.Record(op.status());
      return;
    }
    exec::ExecContext ctx;
    ctx.catalog = job->spec_.catalog;
    ctx.worker_id = 0;
    ctx.interrupt = &job->cancelled_;
    auto result = exec::DrainOperator(op.ValueOrDie().get(), &ctx);
    if (!result.ok()) {
      job->errors_.Record(result.status());
      return;
    }
    job->serial_result_ = std::move(result.ValueOrDie());
    job->serial_result_set_ = true;
    return;
  }

  // Morsel dispatch. The instance index was claimed exclusively under mu_,
  // so this worker owns instances_[d->instance] until CompleteDispatchLocked
  // returns it to the free list.
  auto& slot = job->instances_[static_cast<size_t>(d->instance)];
  if (slot == nullptr) {
    slot = std::make_unique<QueryHandle::Instance>();
    slot->ctx.catalog = job->spec_.catalog;
    slot->ctx.worker_id = d->instance;
    slot->ctx.interrupt = &job->cancelled_;
    Result<exec::OperatorPtr> op = job->spec_.factory(d->instance);
    if (!op.ok()) {
      job->errors_.Record(op.status());
      job->source_.Abort();
      d->instance_dead = true;
      return;
    }
    slot->op = std::move(op.ValueOrDie());
    Status open_status = slot->op->Open(&slot->ctx);
    if (!open_status.ok()) {
      job->errors_.Record(open_status);
      job->source_.Abort();
      d->instance_dead = true;  // still Closed at finalize (op exists)
      return;
    }
    slot->open_ok = true;
    job->collector_.SetSchema(slot->op->output_names(),
                              slot->op->output_types());
  }
  INDBML_CHECK(slot->open_ok) << "dead instance handed back out";
  Status status = exec::RunMorsel(slot->op.get(), &slot->ctx, d->morsel,
                                  &job->collector_);
  if (!status.ok()) {
    job->errors_.Record(status);
    job->source_.Abort();
  }
}

bool SharedExecutor::CompleteDispatchLocked(Dispatch* d) {
  QueryHandle* job = d->job.get();
  job->active_dispatches_--;
  if (!d->serial && !d->finalize_only && !d->instance_dead) {
    job->free_instances_.push_back(d->instance);
  }
  if (!(job->no_more_work_ && job->active_dispatches_ == 0)) return false;
  // Fully drained: retire from the run queue and admit the next waiter.
  running_.erase(std::remove_if(running_.begin(), running_.end(),
                                [job](const std::shared_ptr<QueryHandle>& j) {
                                  return j.get() == job;
                                }),
                 running_.end());
  if (!queued_.empty()) {
    std::shared_ptr<QueryHandle> next = std::move(queued_.front());
    queued_.pop_front();
    next->pass_ = MinPassLocked();
    running_.push_back(std::move(next));
    cv_work_.NotifyAll();
  }
  metrics::Registry& registry = metrics::Registry::Global();
  registry.gauge("server.inflight")->Set(static_cast<int64_t>(running_.size()));
  registry.gauge("server.queue_depth")
      ->Set(static_cast<int64_t>(queued_.size()));
  return true;
}

void SharedExecutor::FinalizeJob(const std::shared_ptr<QueryHandle>& job) {
  // Exclusive access: the job left running_ and has no active dispatches
  // (or the workers are already joined, in the destructor path).
  for (auto& instance : job->instances_) {
    if (instance != nullptr && instance->op != nullptr) {
      instance->op->Close(&instance->ctx);
    }
  }
  Status status = job->errors_.Get();
  if (status.ok() && job->cancelled()) {
    status = Status::Cancelled("query cancelled");
  }
  exec::QueryResult result;
  if (status.ok()) {
    result = job->spec_.serial && job->serial_result_set_
                 ? std::move(job->serial_result_)
                 : job->collector_.Assemble();
  }
  MutexLock lock(job->done_mu_);
  job->status_ = std::move(status);
  job->result_ = std::move(result);
  job->done_ = true;
  job->done_cv_.NotifyAll();
}

void SharedExecutor::WorkerLoop() {
  while (true) {
    Dispatch d;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && !FindWorkLocked(&d)) cv_work_.Wait(mu_);
      if (d.job == nullptr) return;  // shutdown; the destructor finalizes
    }
    RunDispatch(&d);
    bool finalize;
    {
      MutexLock lock(mu_);
      finalize = CompleteDispatchLocked(&d);
    }
    if (finalize) FinalizeJob(d.job);
    d.job.reset();
  }
}

}  // namespace indbml::server
