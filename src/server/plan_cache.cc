#include "server/plan_cache.h"

#include <limits>
#include <utility>

#include "common/metrics.h"

namespace indbml::server {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void Mix(uint64_t* h, uint64_t v) {
  // Hash every byte so adjacent small fields cannot alias.
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= kFnvPrime;
  }
}

}  // namespace

uint64_t OptionsFingerprint(const sql::QueryEngine::Options& options) {
  uint64_t h = kFnvOffset;
  Mix(&h, static_cast<uint64_t>(options.partitions));
  Mix(&h, static_cast<uint64_t>(options.worker_threads));
  Mix(&h, static_cast<uint64_t>(options.morsel_rows));
  Mix(&h, static_cast<uint64_t>(options.inference.batch_window_us));
  Mix(&h, static_cast<uint64_t>(options.inference.max_batch_rows));
  uint64_t flags = 0;
  flags = flags << 1 | (options.morsel_driven ? 1 : 0);
  flags = flags << 1 | (options.parallel ? 1 : 0);
  flags = flags << 1 | (options.zero_copy_scan ? 1 : 0);
  flags = flags << 1 | (options.fused_pipeline ? 1 : 0);
  flags = flags << 1 | (options.shared_models ? 1 : 0);
  flags = flags << 1 | (options.inference.result_cache ? 1 : 0);
  flags = flags << 1 | (options.optimizer.predicate_pushdown ? 1 : 0);
  flags = flags << 1 | (options.optimizer.join_conversion ? 1 : 0);
  flags = flags << 1 | (options.optimizer.projection_pruning ? 1 : 0);
  flags = flags << 1 | (options.optimizer.ordered_aggregation ? 1 : 0);
  Mix(&h, flags);
  return h;
}

PlanCache::PlanCache(int64_t capacity) : capacity_(capacity) {}

std::string PlanCache::Encode(const Key& key) {
  return key.sql + "|" + std::to_string(key.options_fingerprint) + "|" +
         std::to_string(key.catalog_version);
}

std::shared_ptr<const sql::LogicalOp> PlanCache::Lookup(const Key& key) {
  metrics::Registry& registry = metrics::Registry::Global();
  MutexLock lock(mu_);
  auto it = entries_.find(Encode(key));
  if (it == entries_.end()) {
    registry.counter("server.plan_cache_misses")->Increment();
    return nullptr;
  }
  it->second.last_used = ++use_tick_;
  registry.counter("server.plan_cache_hits")->Increment();
  return it->second.plan;
}

void PlanCache::Insert(const Key& key,
                       std::shared_ptr<const sql::LogicalOp> plan) {
  if (capacity_ <= 0 || plan == nullptr) return;
  MutexLock lock(mu_);
  Entry& entry = entries_[Encode(key)];
  entry.plan = std::move(plan);
  entry.last_used = ++use_tick_;
  EvictOverCapacityLocked();
  metrics::Registry::Global()
      .gauge("server.plan_cache_size")
      ->Set(static_cast<int64_t>(entries_.size()));
}

void PlanCache::EvictOverCapacityLocked() {
  while (static_cast<int64_t>(entries_.size()) > capacity_) {
    auto lru = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    entries_.erase(lru);
    metrics::Registry::Global().counter("server.plan_cache_evictions")->Increment();
  }
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  metrics::Registry::Global().gauge("server.plan_cache_size")->Set(0);
}

int64_t PlanCache::size() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace indbml::server
