#ifndef INDBML_SERVER_EXECUTOR_H_
#define INDBML_SERVER_EXECUTOR_H_

#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "exec/morsel.h"
#include "exec/operator.h"
#include "storage/table.h"

namespace indbml::server {

class SharedExecutor;

/// One query's unit of admission to the shared executor.
struct JobSpec {
  /// Builds the private operator tree of one worker instance (bound to the
  /// prepared physical plan; see session.cc). Instances are created lazily,
  /// one per concurrently scheduled morsel, up to `num_instances`.
  exec::WorkerPlanFactory factory;
  /// Upper bound on concurrently running instances (the planner's worker
  /// count). Must be 1 when `serial`.
  int num_instances = 1;
  /// The query's morsels (empty when `serial`). Ignored when `serial`.
  std::vector<storage::PartitionRange> morsels;
  /// True = the plan cannot be morsel-scheduled (serial or static plans):
  /// the job runs as one dispatch that drains instance 0 end-to-end.
  bool serial = false;
  /// Stride-scheduling weight: a priority-2 query receives ~2x the morsel
  /// dispatches of a priority-1 query under contention. Clamped to >= 1.
  int priority = 1;
  storage::Catalog* catalog = nullptr;
};

/// \brief Caller-side handle on one submitted query.
///
/// Returned by SharedExecutor::Submit. Wait() blocks until the query
/// finished (or was cancelled) and consumes the result — call it once.
/// Cancel() is the session-facing cancellation token: it aborts the query's
/// MorselSource so in-flight workers stop claiming morsels mid-query; the
/// query then completes with StatusCode::kCancelled.
class QueryHandle {
 public:
  QueryHandle(const QueryHandle&) = delete;
  QueryHandle& operator=(const QueryHandle&) = delete;

  /// Blocks until the query finished; returns the assembled result or the
  /// first error (kCancelled after Cancel). Consumes the result.
  Result<exec::QueryResult> Wait() INDBML_EXCLUDES(done_mu_);

  /// Requests cancellation: stops morsel hand-outs immediately (running
  /// morsels finish; the query never wedges the executor) and completes the
  /// query with kCancelled. Idempotent, callable from any thread.
  void Cancel();

  bool done() const INDBML_EXCLUDES(done_mu_);
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  friend class SharedExecutor;

  /// One lazily created worker-plan instance. The executor hands an
  /// instance to at most one dispatch at a time (free-list), so its
  /// operator tree and context need no locking of their own.
  struct Instance {
    exec::OperatorPtr op;
    exec::ExecContext ctx;
    bool open_ok = false;
  };

  explicit QueryHandle(JobSpec spec);

  JobSpec spec_;  ///< morsels moved out into source_
  exec::MorselSource source_;
  exec::ResultCollector collector_;
  exec::FirstError errors_;
  std::atomic<bool> cancelled_{false};

  // --- Scheduling state, guarded by the owning SharedExecutor's mu_ (a
  // member of another object cannot be named in GUARDED_BY; executor.cc
  // only touches these under mu_, except during finalize when the job has
  // been removed from the run queue and has no active dispatches).
  std::vector<std::unique_ptr<Instance>> instances_;
  std::vector<int> free_instances_;
  int created_instances_ = 0;
  int active_dispatches_ = 0;
  bool no_more_work_ = false;
  bool serial_result_set_ = false;
  int64_t pass_ = 0;
  int64_t stride_ = 0;
  exec::QueryResult serial_result_;

  mutable Mutex done_mu_;
  CondVar done_cv_;
  bool done_ INDBML_GUARDED_BY(done_mu_) = false;
  Status status_ INDBML_GUARDED_BY(done_mu_);
  exec::QueryResult result_ INDBML_GUARDED_BY(done_mu_);
};

/// \brief The process-wide morsel executor shared by all sessions.
///
/// Replaces the per-query worker pools of exec::ExecutePipeline for the
/// serving path: one fixed set of worker threads interleaves morsels from
/// every in-flight query. Scheduling is stride-based — each dispatch picks
/// the runnable job with the smallest pass value and advances it by
/// 1/priority — so concurrent queries share the workers fairly and a
/// higher-priority query drains proportionally faster. Dispatch granularity
/// is one morsel, so a long scan never blocks a short query for more than
/// one morsel's worth of work.
///
/// Admission control: at most `max_inflight` jobs run concurrently; up to
/// `max_queued` more wait in FIFO order; beyond that Submit fails fast with
/// kResourceExhausted. The wait-queue depth is exported as the
/// server.queue_depth gauge (the ISSUE's overload signal).
///
/// Worker-plan instances are created and Opened lazily on worker threads.
/// Plans whose Open synchronises across instances (the per-query ModelJoin
/// build barrier) must not be submitted with num_instances > 1 — the
/// serving session guarantees this by routing ModelJoins through the
/// pre-built SharedModelRegistry (barrier-free Open) or forcing a serial
/// job (see session.cc).
class SharedExecutor {
 public:
  struct Options {
    /// Worker threads; 0 = one per hardware thread.
    int worker_threads = 0;
    /// Jobs running concurrently before new submits queue.
    int max_inflight = 8;
    /// Queued jobs before Submit rejects with kResourceExhausted.
    int max_queued = 64;
  };

  explicit SharedExecutor(const Options& options);
  ~SharedExecutor();

  SharedExecutor(const SharedExecutor&) = delete;
  SharedExecutor& operator=(const SharedExecutor&) = delete;

  /// Admits one query. Returns the handle to Wait/Cancel on, or
  /// kResourceExhausted when both the run and wait queues are full.
  Result<std::shared_ptr<QueryHandle>> Submit(JobSpec spec)
      INDBML_EXCLUDES(mu_);

  int num_threads() const { return num_threads_; }
  /// Jobs currently running (admitted, not finished).
  int64_t inflight() const INDBML_EXCLUDES(mu_);
  /// Jobs waiting for admission.
  int64_t queue_depth() const INDBML_EXCLUDES(mu_);

 private:
  /// One claimed unit of work: a (job, instance, morsel) triple, a serial
  /// whole-query drain, or a bare finalize pass for a job that drained.
  struct Dispatch {
    std::shared_ptr<QueryHandle> job;
    exec::Morsel morsel;
    int instance = 0;
    bool serial = false;
    bool finalize_only = false;
    bool instance_dead = false;
  };

  void WorkerLoop() INDBML_EXCLUDES(mu_);
  bool FindWorkLocked(Dispatch* d) INDBML_REQUIRES(mu_);
  void RunDispatch(Dispatch* d);
  /// Returns true when the job fully drained and this worker must finalize.
  bool CompleteDispatchLocked(Dispatch* d) INDBML_REQUIRES(mu_);
  /// Closes instances, assembles the result, wakes waiters. Called without
  /// mu_ — the job is out of running_ with no active dispatches.
  void FinalizeJob(const std::shared_ptr<QueryHandle>& job);
  int64_t MinPassLocked() const INDBML_REQUIRES(mu_);

  const Options options_;
  const int num_threads_;
  mutable Mutex mu_;
  CondVar cv_work_;
  std::vector<std::shared_ptr<QueryHandle>> running_ INDBML_GUARDED_BY(mu_);
  std::deque<std::shared_ptr<QueryHandle>> queued_ INDBML_GUARDED_BY(mu_);
  bool shutdown_ INDBML_GUARDED_BY(mu_) = false;
  /// Workers run WorkerLoop as long-lived pool tasks (all engine threads
  /// come from common::ThreadPool); destroyed first in ~SharedExecutor.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace indbml::server

#endif  // INDBML_SERVER_EXECUTOR_H_
