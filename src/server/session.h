#ifndef INDBML_SERVER_SESSION_H_
#define INDBML_SERVER_SESSION_H_

#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "server/executor.h"
#include "sql/query_engine.h"

namespace indbml::server {

class QueryServer;

/// \brief One client connection to the QueryServer.
///
/// A session carries its own mutable copy of the engine options; every
/// query takes an immutable snapshot of them at submit time, so a
/// concurrent set_options (from this or any other thread) never affects a
/// query in flight — the per-query counterpart of QueryEngine's snapshot
/// contract. Submission is non-blocking: Submit returns a QueryHandle
/// immediately (admission permitting) and the shared executor interleaves
/// the query's morsels with every other in-flight query; Cancel on the
/// handle aborts the query's morsel source mid-flight.
///
/// Thread-safe; typically used one per client thread.
class Session {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses (or plan-cache-loads), prepares and enqueues the query;
  /// non-blocking apart from planning. kResourceExhausted when the server
  /// is saturated past its wait queue.
  Result<std::shared_ptr<QueryHandle>> Submit(const std::string& sql)
      INDBML_EXCLUDES(mu_);

  /// Submit + Wait, recording the end-to-end latency into the
  /// server.query_micros histogram.
  Result<exec::QueryResult> ExecuteQuery(const std::string& sql)
      INDBML_EXCLUDES(mu_);

  /// Per-session options (snapshot copy; applied to queries submitted after
  /// the set_options call).
  sql::QueryEngine::Options options() const INDBML_EXCLUDES(mu_);
  void set_options(const sql::QueryEngine::Options& options)
      INDBML_EXCLUDES(mu_);

  /// Stride-scheduling weight of this session's queries (>= 1).
  int priority() const INDBML_EXCLUDES(mu_);
  void set_priority(int priority) INDBML_EXCLUDES(mu_);

 private:
  friend class QueryServer;

  Session(QueryServer* server, sql::QueryEngine::Options options);

  Result<std::shared_ptr<QueryHandle>> SubmitPlan(
      std::shared_ptr<const sql::LogicalOp> plan,
      const sql::QueryEngine::Options& opts, int priority);

  QueryServer* server_;  ///< not owned; outlives every session
  mutable Mutex mu_;
  sql::QueryEngine::Options options_ INDBML_GUARDED_BY(mu_);
  int priority_ INDBML_GUARDED_BY(mu_) = 1;
};

}  // namespace indbml::server

#endif  // INDBML_SERVER_SESSION_H_
