#ifndef INDBML_SERVER_SERVER_H_
#define INDBML_SERVER_SERVER_H_

#include <memory>

#include "server/executor.h"
#include "server/plan_cache.h"
#include "server/session.h"
#include "sql/query_engine.h"

namespace indbml::server {

/// \brief The serving stack: session handles over a shared scheduler over
/// one embedded QueryEngine (ISSUE 9 / DESIGN.md §3g).
///
/// Layering:
///   Session (per client: options snapshot, submit, cancel)
///     → SharedExecutor (process-wide morsel scheduler: stride-fair
///       interleaving, admission control)
///     → shared plan/model layer (PlanCache keyed on catalog version;
///       modeljoin::SharedModelRegistry building each (model, device) once)
///     → QueryEngine (catalog, binder, optimizer, physical planner).
///
/// The embedded engine stays fully usable directly — existing callers
/// (RegisterNativeModelJoin, benchlib) take server.engine() — but queries
/// through sessions share one worker pool instead of each dragging their
/// own, which is what turns N back-to-back queries into concurrent ones.
class QueryServer {
 public:
  struct Options {
    Options() {
      // Serving default: concurrent queries over the same model share one
      // build through the registry (flip off to measure per-query builds).
      engine.shared_models = true;
      // Serving default: inference requests coalesce across queries and
      // memoize per-tuple predictions — the paper's small-per-query-batch
      // problem is a serving problem, so the knobs default on here and off
      // in the bare engine. batch_window_us trades per-chunk latency for
      // batch partners; 100µs is far below per-query wall times at CI
      // scale while long enough for concurrently scheduled morsels to
      // meet.
      engine.inference.batch_window_us = 100;
      engine.inference.max_batch_rows = 4096;
      engine.inference.result_cache = true;
    }
    /// Default options inherited by new sessions (and applied to the
    /// embedded engine).
    sql::QueryEngine::Options engine;
    /// Shared executor sizing; 0 = one worker per hardware thread.
    int worker_threads = 0;
    /// Queries running concurrently before new submits queue.
    int max_inflight_queries = 8;
    /// Queued queries before Submit rejects with kResourceExhausted.
    int max_queued_queries = 64;
    /// Cached prepared statements; 0 disables the plan cache.
    int64_t plan_cache_capacity = 64;
    bool enable_plan_cache = true;
    /// LRU bound of the process-wide inference result cache (keys +
    /// values). 0 disables memoization even if sessions request it.
    int64_t inference_cache_mb = 32;
  };

  QueryServer() : QueryServer(Options()) {}
  explicit QueryServer(const Options& options);

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// New session starting from the server's default engine options.
  std::unique_ptr<Session> CreateSession();

  sql::QueryEngine* engine() { return &engine_; }
  storage::Catalog* catalog() { return engine_.catalog(); }
  SharedExecutor* executor() { return &executor_; }
  /// Null when the plan cache is disabled.
  PlanCache* plan_cache() { return plan_cache_.get(); }
  const Options& options() const { return options_; }

 private:
  Options options_;
  sql::QueryEngine engine_;
  std::unique_ptr<PlanCache> plan_cache_;
  SharedExecutor executor_;
};

}  // namespace indbml::server

#endif  // INDBML_SERVER_SERVER_H_
