#ifndef INDBML_SERVER_PLAN_CACHE_H_
#define INDBML_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sql/logical_plan.h"
#include "sql/query_engine.h"

namespace indbml::server {

/// FNV-1a over every planning-relevant engine option, so two sessions with
/// different optimizer or execution settings never share a cached plan.
uint64_t OptionsFingerprint(const sql::QueryEngine::Options& options);

/// \brief Process-wide prepared-statement cache.
///
/// Maps (SQL text, options fingerprint, catalog version) to the optimized
/// logical plan, so repeated queries skip parse/bind/optimize entirely. The
/// catalog version is part of the key: any CREATE/REPLACE/DROP bumps it and
/// naturally invalidates every cached plan (stale entries age out of the
/// LRU). Cached plans are immutable (`const LogicalOp`) and shared — the
/// PhysicalPlanner only reads the logical tree, so any number of concurrent
/// sessions can lower the same cached plan.
///
/// Metrics: server.plan_cache_hits / _misses / _evictions counters and the
/// server.plan_cache_size gauge.
class PlanCache {
 public:
  struct Key {
    std::string sql;
    uint64_t options_fingerprint = 0;
    int64_t catalog_version = 0;
  };

  explicit PlanCache(int64_t capacity);

  /// The cached plan, or nullptr on miss.
  std::shared_ptr<const sql::LogicalOp> Lookup(const Key& key)
      INDBML_EXCLUDES(mu_);

  /// Caches `plan` (last writer wins on a racing double-plan; both plans
  /// are equivalent). Evicts least-recently-used entries over capacity.
  void Insert(const Key& key, std::shared_ptr<const sql::LogicalOp> plan)
      INDBML_EXCLUDES(mu_);

  void Clear() INDBML_EXCLUDES(mu_);
  int64_t size() const INDBML_EXCLUDES(mu_);
  int64_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const sql::LogicalOp> plan;
    int64_t last_used = 0;
  };

  static std::string Encode(const Key& key);
  void EvictOverCapacityLocked() INDBML_REQUIRES(mu_);

  const int64_t capacity_;
  mutable Mutex mu_;
  int64_t use_tick_ INDBML_GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, Entry> entries_ INDBML_GUARDED_BY(mu_);
};

}  // namespace indbml::server

#endif  // INDBML_SERVER_PLAN_CACHE_H_
