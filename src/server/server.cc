#include "server/server.h"

#include "inference/cache.h"

namespace indbml::server {

namespace {

SharedExecutor::Options ExecutorOptions(const QueryServer::Options& options) {
  SharedExecutor::Options out;
  out.worker_threads = options.worker_threads;
  out.max_inflight = options.max_inflight_queries;
  out.max_queued = options.max_queued_queries;
  return out;
}

}  // namespace

QueryServer::QueryServer(const Options& options)
    : options_(options),
      engine_(options.engine),
      executor_(ExecutorOptions(options)) {
  if (options_.enable_plan_cache && options_.plan_cache_capacity > 0) {
    plan_cache_ = std::make_unique<PlanCache>(options_.plan_cache_capacity);
  }
  // The inference result cache is process-wide (predictions are keyed by
  // model instance, not by server), so the server merely sizes it.
  inference::InferenceCache::Global().set_capacity_bytes(
      options_.inference_cache_mb << 20);
}

std::unique_ptr<Session> QueryServer::CreateSession() {
  return std::unique_ptr<Session>(new Session(this, engine_.options()));
}

}  // namespace indbml::server
