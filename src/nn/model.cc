#include "nn/model.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/random.h"
#include "common/string_util.h"

namespace indbml::nn {

namespace {

void InitGlorot(Tensor& t, int64_t fan_in, int64_t fan_out, Random& rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  float* d = t.data();
  for (int64_t i = 0; i < t.size(); ++i) d[i] = rng.NextFloat(-limit, limit);
}

/// One LSTM time step for a whole batch, Keras equations:
///   i = sigmoid(x W_i + h U_i + b_i)      f = sigmoid(x W_f + h U_f + b_f)
///   c~ = tanh(x W_c + h U_c + b_c)        o = sigmoid(x W_o + h U_o + b_o)
///   c' = f*c + i*c~                       h' = o * tanh(c')
void LstmStep(const LstmLayer& layer, int64_t batch, const float* x_t, float* h,
              float* c, bool first_step) {
  const int64_t units = layer.units;
  const int64_t in = layer.input_dim;
  const int64_t n = batch * units;
  std::vector<float> z[kNumGates];
  for (int g = 0; g < kNumGates; ++g) {
    z[g].resize(static_cast<size_t>(n));
    // Broadcast bias.
    for (int64_t r = 0; r < batch; ++r) {
      std::memcpy(&z[g][static_cast<size_t>(r * units)], layer.bias[g].data(),
                  static_cast<size_t>(units) * sizeof(float));
    }
    // x_t [batch, in] * W_g [in, units]
    blas::SgemmTight(false, false, batch, units, in, 1.0f, x_t,
                     layer.kernel[g].data(), 1.0f, z[g].data());
    if (!first_step) {
      // h [batch, units] * U_g [units, units]
      blas::SgemmTight(false, false, batch, units, units, 1.0f, h,
                       layer.recurrent[g].data(), 1.0f, z[g].data());
    }
  }
  blas::VsSigmoid(n, z[kGateI].data());
  blas::VsSigmoid(n, z[kGateF].data());
  blas::VsTanh(n, z[kGateC].data());
  blas::VsSigmoid(n, z[kGateO].data());

  if (first_step) {
    // c = i * c~
    blas::VsMul(n, z[kGateI].data(), z[kGateC].data(), c);
  } else {
    // c = f * c + i * c~
    blas::VsMul(n, z[kGateF].data(), c, c);
    std::vector<float> ic(static_cast<size_t>(n));
    blas::VsMul(n, z[kGateI].data(), z[kGateC].data(), ic.data());
    blas::VsAdd(n, c, ic.data(), c);
  }
  // h = o * tanh(c)
  std::memcpy(h, c, static_cast<size_t>(n) * sizeof(float));
  blas::VsTanh(n, h);
  blas::VsMul(n, z[kGateO].data(), h, h);
}

/// One GRU time step for a whole batch (classic equations, see GruLayer).
void GruStep(const GruLayer& layer, int64_t batch, const float* x_t, float* h,
             bool first_step) {
  const int64_t units = layer.units;
  const int64_t in = layer.input_dim;
  const int64_t n = batch * units;
  std::vector<float> z[kNumGruGates];
  for (int g = 0; g < kNumGruGates; ++g) {
    z[g].resize(static_cast<size_t>(n));
    for (int64_t r = 0; r < batch; ++r) {
      std::memcpy(&z[g][static_cast<size_t>(r * units)], layer.bias[g].data(),
                  static_cast<size_t>(units) * sizeof(float));
    }
    blas::SgemmTight(false, false, batch, units, in, 1.0f, x_t,
                     layer.kernel[g].data(), 1.0f, z[g].data());
  }
  if (!first_step) {
    // Update and reset gates see the raw previous state.
    blas::SgemmTight(false, false, batch, units, units, 1.0f, h,
                     layer.recurrent[kGruZ].data(), 1.0f, z[kGruZ].data());
    blas::SgemmTight(false, false, batch, units, units, 1.0f, h,
                     layer.recurrent[kGruR].data(), 1.0f, z[kGruR].data());
  }
  blas::VsSigmoid(n, z[kGruZ].data());
  blas::VsSigmoid(n, z[kGruR].data());
  if (!first_step) {
    // Candidate sees the reset-scaled previous state.
    std::vector<float> rh(static_cast<size_t>(n));
    blas::VsMul(n, z[kGruR].data(), h, rh.data());
    blas::SgemmTight(false, false, batch, units, units, 1.0f, rh.data(),
                     layer.recurrent[kGruH].data(), 1.0f, z[kGruH].data());
  }
  blas::VsTanh(n, z[kGruH].data());
  // h' = z * h + (1 - z) * h~
  for (int64_t i = 0; i < n; ++i) {
    float zv = z[kGruZ][static_cast<size_t>(i)];
    float prev = first_step ? 0.0f : h[i];
    h[i] = zv * prev + (1.0f - zv) * z[kGruH][static_cast<size_t>(i)];
  }
}

}  // namespace

int64_t Model::NumParameters() const {
  int64_t total = 0;
  for (const Layer& layer : layers_) {
    if (layer.kind == LayerKind::kDense) {
      total += layer.dense.kernel.size() + layer.dense.bias.size();
    } else if (layer.kind == LayerKind::kLstm) {
      for (int g = 0; g < kNumGates; ++g) {
        total += layer.lstm.kernel[g].size() + layer.lstm.recurrent[g].size() +
                 layer.lstm.bias[g].size();
      }
    } else {
      for (int g = 0; g < kNumGruGates; ++g) {
        total += layer.gru.kernel[g].size() + layer.gru.recurrent[g].size() +
                 layer.gru.bias[g].size();
      }
    }
  }
  return total;
}

Result<Tensor> Model::Predict(const Tensor& x) const {
  if (x.rank() != 2 || x.dim(1) != input_width()) {
    return Status::InvalidArgument(StrFormat(
        "model expects [batch, %lld] input, got [%lld, %lld]",
        static_cast<long long>(input_width()), static_cast<long long>(x.dim(0)),
        static_cast<long long>(x.rank() == 2 ? x.dim(1) : -1)));
  }
  const int64_t batch = x.dim(0);
  Tensor current = x;

  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    if (layer.kind == LayerKind::kLstm || layer.kind == LayerKind::kGru) {
      const int64_t f = layer.input_dim();
      Tensor h = Tensor::Matrix(batch, layer.units());
      Tensor c = Tensor::Matrix(batch, layer.units());
      // Gather the t-th step columns into a contiguous [batch, f] slice.
      Tensor x_t = Tensor::Matrix(batch, f);
      for (int64_t t = 0; t < timesteps_; ++t) {
        for (int64_t r = 0; r < batch; ++r) {
          std::memcpy(&x_t.At(r, 0), &current.At(r, t * f),
                      static_cast<size_t>(f) * sizeof(float));
        }
        if (layer.kind == LayerKind::kLstm) {
          LstmStep(layer.lstm, batch, x_t.data(), h.data(), c.data(), t == 0);
        } else {
          GruStep(layer.gru, batch, x_t.data(), h.data(), t == 0);
        }
      }
      current = h;
    } else {
      const DenseLayer& dense = layer.dense;
      Tensor out = Tensor::Matrix(batch, dense.units);
      for (int64_t r = 0; r < batch; ++r) {
        std::memcpy(&out.At(r, 0), dense.bias.data(),
                    static_cast<size_t>(dense.units) * sizeof(float));
      }
      blas::SgemmTight(false, false, batch, dense.units, dense.input_dim, 1.0f,
                       current.data(), dense.kernel.data(), 1.0f, out.data());
      ApplyActivation(dense.activation, out.size(), out.data());
      current = out;
    }
  }
  return current;
}

void Model::InitRandom(uint64_t seed) {
  Random rng(seed);
  for (Layer& layer : layers_) {
    if (layer.kind == LayerKind::kDense) {
      InitGlorot(layer.dense.kernel, layer.dense.input_dim, layer.dense.units, rng);
      for (int64_t i = 0; i < layer.dense.bias.size(); ++i) {
        layer.dense.bias[i] = rng.NextFloat(-0.1f, 0.1f);
      }
    } else if (layer.kind == LayerKind::kLstm) {
      for (int g = 0; g < kNumGates; ++g) {
        InitGlorot(layer.lstm.kernel[g], layer.lstm.input_dim, layer.lstm.units, rng);
        InitGlorot(layer.lstm.recurrent[g], layer.lstm.units, layer.lstm.units, rng);
        for (int64_t i = 0; i < layer.lstm.bias[g].size(); ++i) {
          layer.lstm.bias[g][i] = rng.NextFloat(-0.1f, 0.1f);
        }
      }
    } else {
      for (int g = 0; g < kNumGruGates; ++g) {
        InitGlorot(layer.gru.kernel[g], layer.gru.input_dim, layer.gru.units, rng);
        InitGlorot(layer.gru.recurrent[g], layer.gru.units, layer.gru.units, rng);
        for (int64_t i = 0; i < layer.gru.bias[g].size(); ++i) {
          layer.gru.bias[g][i] = rng.NextFloat(-0.1f, 0.1f);
        }
      }
    }
  }
}

std::string Model::ToString() const {
  if (!layers_.empty() && layers_[0].kind == LayerKind::kLstm) {
    return StrFormat("lstm(w=%lld,t=%lld)", static_cast<long long>(layers_[0].units()),
                     static_cast<long long>(timesteps_));
  }
  if (!layers_.empty() && layers_[0].kind == LayerKind::kGru) {
    return StrFormat("gru(w=%lld,t=%lld)", static_cast<long long>(layers_[0].units()),
                     static_cast<long long>(timesteps_));
  }
  int64_t width = layers_.empty() ? 0 : layers_[0].units();
  return StrFormat("dense(w=%lld,d=%lld)", static_cast<long long>(width),
                   static_cast<long long>(layers_.size() > 0 ? layers_.size() - 1 : 0));
}

namespace {
constexpr uint32_t kModelMagic = 0x4D4C4442;  // "MLDB"

void WriteTensor(FILE* f, const Tensor& t) {
  int32_t rank = static_cast<int32_t>(t.rank());
  std::fwrite(&rank, sizeof(rank), 1, f);
  for (int i = 0; i < rank; ++i) {
    int64_t d = t.dim(i);
    std::fwrite(&d, sizeof(d), 1, f);
  }
  std::fwrite(t.data(), sizeof(float), static_cast<size_t>(t.size()), f);
}

Result<Tensor> ReadTensor(FILE* f) {
  int32_t rank = 0;
  if (std::fread(&rank, sizeof(rank), 1, f) != 1 || rank < 0 || rank > 4) {
    return Status::IOError("corrupt tensor header");
  }
  std::vector<int64_t> shape(static_cast<size_t>(rank));
  for (auto& d : shape) {
    if (std::fread(&d, sizeof(d), 1, f) != 1 || d < 0 || d > (1 << 28)) {
      return Status::IOError("corrupt tensor shape");
    }
  }
  Tensor t(shape);
  if (std::fread(t.data(), sizeof(float), static_cast<size_t>(t.size()), f) !=
      static_cast<size_t>(t.size())) {
    return Status::IOError("truncated tensor data");
  }
  return t;
}
}  // namespace

Status Model::SaveToFile(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path + " for writing");
  WriteToStream(f);
  std::fclose(f);
  return Status::OK();
}

void Model::WriteToStream(FILE* f) const {
  std::fwrite(&kModelMagic, sizeof(kModelMagic), 1, f);
  std::fwrite(&timesteps_, sizeof(timesteps_), 1, f);
  std::fwrite(&features_, sizeof(features_), 1, f);
  int32_t num_layers = static_cast<int32_t>(layers_.size());
  std::fwrite(&num_layers, sizeof(num_layers), 1, f);
  for (const Layer& layer : layers_) {
    int32_t kind = layer.kind == LayerKind::kDense ? 0
                   : layer.kind == LayerKind::kLstm ? 1
                                                    : 2;
    std::fwrite(&kind, sizeof(kind), 1, f);
    if (layer.kind == LayerKind::kDense) {
      int32_t act = static_cast<int32_t>(layer.dense.activation);
      std::fwrite(&act, sizeof(act), 1, f);
      WriteTensor(f, layer.dense.kernel);
      WriteTensor(f, layer.dense.bias);
    } else if (layer.kind == LayerKind::kLstm) {
      for (int g = 0; g < kNumGates; ++g) WriteTensor(f, layer.lstm.kernel[g]);
      for (int g = 0; g < kNumGates; ++g) WriteTensor(f, layer.lstm.recurrent[g]);
      for (int g = 0; g < kNumGates; ++g) WriteTensor(f, layer.lstm.bias[g]);
    } else {
      for (int g = 0; g < kNumGruGates; ++g) WriteTensor(f, layer.gru.kernel[g]);
      for (int g = 0; g < kNumGruGates; ++g) WriteTensor(f, layer.gru.recurrent[g]);
      for (int g = 0; g < kNumGruGates; ++g) WriteTensor(f, layer.gru.bias[g]);
    }
  }
}

Result<Model> Model::LoadFromFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  return ReadFromStream(f, path);
}

Result<Model> Model::ReadFromStream(FILE* f, const std::string& path) {
  auto fail = [&](const std::string& msg) -> Status {
    std::fclose(f);
    return Status::IOError(msg + " in " + path);
  };
  uint32_t magic = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1 || magic != kModelMagic) {
    return fail("bad magic");
  }
  Model model;
  int32_t num_layers = 0;
  if (std::fread(&model.timesteps_, sizeof(model.timesteps_), 1, f) != 1 ||
      std::fread(&model.features_, sizeof(model.features_), 1, f) != 1 ||
      std::fread(&num_layers, sizeof(num_layers), 1, f) != 1 || num_layers < 0) {
    return fail("bad header");
  }
  for (int32_t i = 0; i < num_layers; ++i) {
    int32_t kind = -1;
    if (std::fread(&kind, sizeof(kind), 1, f) != 1) return fail("bad layer kind");
    Layer layer;
    if (kind == 0) {
      layer.kind = LayerKind::kDense;
      int32_t act = 0;
      if (std::fread(&act, sizeof(act), 1, f) != 1) return fail("bad activation");
      layer.dense.activation = static_cast<Activation>(act);
      auto k = ReadTensor(f);
      if (!k.ok()) return fail(k.status().message());
      auto b = ReadTensor(f);
      if (!b.ok()) return fail(b.status().message());
      layer.dense.kernel = *k;
      layer.dense.bias = *b;
      layer.dense.input_dim = layer.dense.kernel.dim(0);
      layer.dense.units = layer.dense.kernel.dim(1);
    } else if (kind == 1) {
      layer.kind = LayerKind::kLstm;
      Tensor tensors[3 * kNumGates];
      for (auto& t : tensors) {
        auto r = ReadTensor(f);
        if (!r.ok()) return fail(r.status().message());
        t = *r;
      }
      for (int g = 0; g < kNumGates; ++g) {
        layer.lstm.kernel[g] = tensors[g];
        layer.lstm.recurrent[g] = tensors[kNumGates + g];
        layer.lstm.bias[g] = tensors[2 * kNumGates + g];
      }
      layer.lstm.input_dim = layer.lstm.kernel[0].dim(0);
      layer.lstm.units = layer.lstm.kernel[0].dim(1);
    } else if (kind == 2) {
      layer.kind = LayerKind::kGru;
      Tensor tensors[3 * kNumGruGates];
      for (auto& t : tensors) {
        auto r = ReadTensor(f);
        if (!r.ok()) return fail(r.status().message());
        t = *r;
      }
      for (int g = 0; g < kNumGruGates; ++g) {
        layer.gru.kernel[g] = tensors[g];
        layer.gru.recurrent[g] = tensors[kNumGruGates + g];
        layer.gru.bias[g] = tensors[2 * kNumGruGates + g];
      }
      layer.gru.input_dim = layer.gru.kernel[0].dim(0);
      layer.gru.units = layer.gru.kernel[0].dim(1);
    } else {
      return fail("unknown layer kind");
    }
    model.layers_.push_back(std::move(layer));
  }
  std::fclose(f);
  return model;
}

Result<std::vector<uint8_t>> Model::SaveToBytes() const {
  char* buffer = nullptr;
  size_t size = 0;
  FILE* f = open_memstream(&buffer, &size);
  if (f == nullptr) return Status::IOError("open_memstream failed");
  WriteToStream(f);
  std::fclose(f);
  std::vector<uint8_t> out(reinterpret_cast<uint8_t*>(buffer),
                           reinterpret_cast<uint8_t*>(buffer) + size);
  free(buffer);
  return out;
}

Result<Model> Model::LoadFromBytes(const uint8_t* data, size_t size) {
  FILE* f = fmemopen(const_cast<uint8_t*>(data), size, "rb");
  if (f == nullptr) return Status::IOError("fmemopen failed");
  return ReadFromStream(f, "<memory>");
}

ModelBuilder& ModelBuilder::AddDense(int64_t units, Activation activation) {
  specs_.push_back({LayerKind::kDense, units, activation});
  return *this;
}

ModelBuilder& ModelBuilder::AddLstm(int64_t units) {
  specs_.push_back({LayerKind::kLstm, units, Activation::kTanh});
  return *this;
}

ModelBuilder& ModelBuilder::AddGru(int64_t units) {
  specs_.push_back({LayerKind::kGru, units, Activation::kTanh});
  return *this;
}

Result<Model> ModelBuilder::Build(uint64_t seed) const {
  if (features_ <= 0) return Status::InvalidArgument("features must be positive");
  if (timesteps_ <= 0) return Status::InvalidArgument("timesteps must be positive");
  if (specs_.empty()) return Status::InvalidArgument("model needs at least one layer");

  Model model;
  model.timesteps_ = timesteps_;
  model.features_ = features_;

  int64_t current_dim = features_;
  bool after_first = false;
  for (const Spec& spec : specs_) {
    if (spec.units <= 0) return Status::InvalidArgument("layer units must be positive");
    Layer layer;
    if (spec.kind == LayerKind::kLstm) {
      if (after_first) {
        return Status::NotImplemented(
            "recurrent layers are only supported as the first layer");
      }
      layer.kind = LayerKind::kLstm;
      layer.lstm.input_dim = current_dim;
      layer.lstm.units = spec.units;
      for (int g = 0; g < kNumGates; ++g) {
        layer.lstm.kernel[g] = Tensor::Matrix(current_dim, spec.units);
        layer.lstm.recurrent[g] = Tensor::Matrix(spec.units, spec.units);
        layer.lstm.bias[g] = Tensor::Vector(spec.units);
      }
    } else if (spec.kind == LayerKind::kGru) {
      if (after_first) {
        return Status::NotImplemented(
            "recurrent layers are only supported as the first layer");
      }
      layer.kind = LayerKind::kGru;
      layer.gru.input_dim = current_dim;
      layer.gru.units = spec.units;
      for (int g = 0; g < kNumGruGates; ++g) {
        layer.gru.kernel[g] = Tensor::Matrix(current_dim, spec.units);
        layer.gru.recurrent[g] = Tensor::Matrix(spec.units, spec.units);
        layer.gru.bias[g] = Tensor::Vector(spec.units);
      }
    } else {
      if (!after_first && timesteps_ > 1) {
        return Status::InvalidArgument(
            "a multi-timestep model must start with a recurrent layer");
      }
      layer.kind = LayerKind::kDense;
      layer.dense.input_dim = current_dim;
      layer.dense.units = spec.units;
      layer.dense.activation = spec.activation;
      layer.dense.kernel = Tensor::Matrix(current_dim, spec.units);
      layer.dense.bias = Tensor::Vector(spec.units);
    }
    current_dim = spec.units;
    after_first = true;
    model.layers_.push_back(std::move(layer));
  }
  model.InitRandom(seed);
  return model;
}

Result<Model> MakeDenseBenchmarkModel(int64_t width, int64_t depth, uint64_t seed) {
  ModelBuilder b(/*features=*/4);
  for (int64_t i = 0; i < depth; ++i) b.AddDense(width, Activation::kRelu);
  b.AddDense(1, Activation::kLinear);
  return b.Build(seed);
}

Result<Model> MakeLstmBenchmarkModel(int64_t width, int64_t timesteps, uint64_t seed) {
  ModelBuilder b = ModelBuilder::TimeSeries(timesteps, /*features=*/1);
  b.AddLstm(width);
  b.AddDense(1, Activation::kLinear);
  return b.Build(seed);
}

Result<Model> MakeGruBenchmarkModel(int64_t width, int64_t timesteps, uint64_t seed) {
  ModelBuilder b = ModelBuilder::TimeSeries(timesteps, /*features=*/1);
  b.AddGru(width);
  b.AddDense(1, Activation::kLinear);
  return b.Build(seed);
}

Result<Activation> ActivationFromName(const std::string& name) {
  if (name == "linear") return Activation::kLinear;
  if (name == "relu") return Activation::kRelu;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  return Status::InvalidArgument("unknown activation: " + name);
}

}  // namespace indbml::nn
