#ifndef INDBML_NN_MODEL_H_
#define INDBML_NN_MODEL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/activation.h"
#include "nn/tensor.h"

namespace indbml::nn {

/// Gate order used for all LSTM weight arrays, matching Keras:
/// input, forget, cell (candidate), output.
enum LstmGate { kGateI = 0, kGateF = 1, kGateC = 2, kGateO = 3 };
inline constexpr int kNumGates = 4;

/// Gate order for GRU weight arrays: update (z), reset (r), candidate (h).
enum GruGate { kGruZ = 0, kGruR = 1, kGruH = 2 };
inline constexpr int kNumGruGates = 3;

enum class LayerKind { kDense, kLstm, kGru };

/// \brief Fully-connected layer: out = activation(x * kernel + bias).
struct DenseLayer {
  int64_t input_dim = 0;
  int64_t units = 0;
  Tensor kernel;  ///< [input_dim, units]
  Tensor bias;    ///< [units]
  Activation activation = Activation::kLinear;
};

/// \brief LSTM layer with Keras semantics (recurrent_activation = sigmoid,
/// activation = tanh), processing `timesteps` steps of `input_dim` features
/// and emitting the final hidden state h_T.
struct LstmLayer {
  int64_t input_dim = 0;  ///< features per time step
  int64_t units = 0;
  Tensor kernel[kNumGates];     ///< W_g: [input_dim, units]
  Tensor recurrent[kNumGates];  ///< U_g: [units, units]
  Tensor bias[kNumGates];       ///< b_g: [units]
};

/// \brief GRU layer (classic / reset-before-matmul formulation, §2's GRUs):
///   z = sigmoid(x W_z + h U_z + b_z)      r = sigmoid(x W_r + h U_r + b_r)
///   h~ = tanh(x W_h + (r * h) U_h + b_h)  h' = z * h + (1 - z) * h~
/// Processes `timesteps` steps and emits the final hidden state.
struct GruLayer {
  int64_t input_dim = 0;  ///< features per time step
  int64_t units = 0;
  Tensor kernel[kNumGruGates];     ///< W_g: [input_dim, units]
  Tensor recurrent[kNumGruGates];  ///< U_g: [units, units]
  Tensor bias[kNumGruGates];       ///< b_g: [units]
};

/// A layer is dense, LSTM or GRU; only the first layer of a model may be
/// recurrent (the paper's evaluation uses a single recurrent layer followed
/// by a dense output layer, §6.1).
struct Layer {
  LayerKind kind;
  DenseLayer dense;
  LstmLayer lstm;
  GruLayer gru;

  int64_t units() const {
    switch (kind) {
      case LayerKind::kDense:
        return dense.units;
      case LayerKind::kLstm:
        return lstm.units;
      case LayerKind::kGru:
        return gru.units;
    }
    return 0;
  }
  int64_t input_dim() const {
    switch (kind) {
      case LayerKind::kDense:
        return dense.input_dim;
      case LayerKind::kLstm:
        return lstm.input_dim;
      case LayerKind::kGru:
        return gru.input_dim;
    }
    return 0;
  }
};

/// \brief A feed-forward / recurrent neural network (paper §2 scope:
/// dense layers and LSTM layers).
///
/// The model input is a flat row of `timesteps * features` float columns
/// (time-major: step 0 first). For pure dense models `timesteps == 1` and
/// `features` is the number of input columns.
class Model {
 public:
  int64_t timesteps() const { return timesteps_; }
  int64_t features() const { return features_; }
  /// Number of input columns a fact table must provide.
  int64_t input_width() const { return timesteps_ * features_; }
  int64_t output_dim() const {
    return layers_.empty() ? input_width() : layers_.back().units();
  }

  const std::vector<Layer>& layers() const { return layers_; }
  std::vector<Layer>& mutable_layers() { return layers_; }

  /// Total number of trainable parameters (weights + biases). The paper uses
  /// this to discuss quadratic parameter growth (§6.2.1) and the cost model
  /// sketch (§7).
  int64_t NumParameters() const;

  /// Reference batch inference: `x` is [batch, input_width()], returns
  /// [batch, output_dim()]. This is the numerical ground truth every other
  /// approach is validated against.
  Result<Tensor> Predict(const Tensor& x) const;

  /// Initialises all weights Glorot-uniform and biases to small constants,
  /// deterministically from `seed`.
  void InitRandom(uint64_t seed);

  /// Binary model serialisation (the stand-in for a saved Keras model).
  Status SaveToFile(const std::string& path) const;
  static Result<Model> LoadFromFile(const std::string& path);

  /// In-memory variants of the same format (used by the external runtime's
  /// C API to create sessions without touching the filesystem).
  Result<std::vector<uint8_t>> SaveToBytes() const;
  static Result<Model> LoadFromBytes(const uint8_t* data, size_t size);

  /// Short description, e.g. "dense(w=32,d=4)" or "lstm(w=128,t=3)".
  std::string ToString() const;

 private:
  friend class ModelBuilder;

  /// Stream helpers shared by the file and byte serialisation paths.
  /// ReadFromStream closes `f`.
  void WriteToStream(std::FILE* f) const;
  static Result<Model> ReadFromStream(std::FILE* f, const std::string& path);

  int64_t timesteps_ = 1;
  int64_t features_ = 0;
  std::vector<Layer> layers_;
};

/// \brief Fluent construction of models.
///
/// \code
///   ModelBuilder b(/*features=*/4);
///   b.AddDense(32, Activation::kRelu).AddDense(1, Activation::kLinear);
///   INDBML_ASSIGN_OR_RETURN(Model m, b.Build(/*seed=*/7));
/// \endcode
class ModelBuilder {
 public:
  /// Dense-model builder with `features` input columns.
  explicit ModelBuilder(int64_t features) : timesteps_(1), features_(features) {}

  /// Time-series builder: `timesteps` steps of `features` columns each.
  static ModelBuilder TimeSeries(int64_t timesteps, int64_t features) {
    ModelBuilder b(features);
    b.timesteps_ = timesteps;
    return b;
  }

  ModelBuilder& AddDense(int64_t units, Activation activation);
  ModelBuilder& AddLstm(int64_t units);
  ModelBuilder& AddGru(int64_t units);

  /// Validates the layer stack, allocates weights and initialises them from
  /// `seed`. Fails if an LSTM appears anywhere but the first layer or if a
  /// dense model was given >1 timestep without a leading LSTM.
  Result<Model> Build(uint64_t seed = 42) const;

 private:
  struct Spec {
    LayerKind kind;
    int64_t units;
    Activation activation;
  };
  int64_t timesteps_;
  int64_t features_;
  std::vector<Spec> specs_;
};

/// Builds the paper's dense benchmark network (§6.1): `depth` hidden layers
/// of `width` ReLU units over 4 Iris features plus a 1-unit linear output.
Result<Model> MakeDenseBenchmarkModel(int64_t width, int64_t depth, uint64_t seed = 42);

/// Builds the paper's LSTM benchmark network (§6.1): one LSTM of `width`
/// units over 3 time steps of a univariate series plus a 1-unit linear output.
Result<Model> MakeLstmBenchmarkModel(int64_t width, int64_t timesteps = 3,
                                     uint64_t seed = 42);

/// GRU analogue of the LSTM benchmark network (§2 names GRUs alongside
/// LSTMs as the recurrent layers relevant for relational workloads).
Result<Model> MakeGruBenchmarkModel(int64_t width, int64_t timesteps = 3,
                                    uint64_t seed = 42);

}  // namespace indbml::nn

#endif  // INDBML_NN_MODEL_H_
