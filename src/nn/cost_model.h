#ifndef INDBML_NN_COST_MODEL_H_
#define INDBML_NN_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "nn/model.h"

namespace indbml::nn {

/// \brief Structural inference-cost estimate for a model.
///
/// The paper's conclusion (§7) names a cost model for ModelJoin queries as
/// the key missing piece for optimizing queries that embed inference, and
/// observes that "costs increase linearly with model size". This implements
/// that proposal: costs are derived purely from the model structure
/// (parameters, FLOPs, intermediate sizes) and a small set of per-approach
/// calibration coefficients.
struct CostEstimate {
  /// Multiply-accumulate operations needed to infer one tuple.
  double flops_per_tuple = 0;
  /// Bytes of intermediate state per tuple (max across layers).
  double intermediate_bytes_per_tuple = 0;
  /// Rows the relational (ML-To-SQL) representation materialises per tuple,
  /// summed over layers — the driver of the SQL approach's cost.
  double relational_rows_per_tuple = 0;
  /// Model-table rows (one per edge, §4.1).
  int64_t model_table_rows = 0;
};

/// Computes the structural estimate for `model`.
CostEstimate EstimateCost(const Model& model);

/// Calibration coefficients translating the structural estimate into
/// seconds for one approach class. Defaults are placeholders; use
/// `CalibrateFromMeasurement` with a small probe run.
struct CostCoefficients {
  double seconds_per_flop = 1e-9;
  double seconds_per_relational_row = 1e-7;
  double fixed_seconds = 1e-3;
};

/// Predicted runtime in seconds for `tuples` input rows.
double PredictSeconds(const CostEstimate& estimate, const CostCoefficients& coeff,
                      int64_t tuples);

/// Fits `seconds_per_flop` (compute-bound approaches) or
/// `seconds_per_relational_row` (ML-To-SQL) from one measured probe point.
CostCoefficients CalibrateFromMeasurement(const CostEstimate& estimate,
                                          int64_t probe_tuples, double probe_seconds,
                                          bool relational);

}  // namespace indbml::nn

#endif  // INDBML_NN_COST_MODEL_H_
