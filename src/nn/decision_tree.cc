#include "nn/decision_tree.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace indbml::nn {

namespace {

/// One candidate split's bookkeeping.
struct BestSplit {
  bool found = false;
  int feature = -1;
  float threshold = 0;
  double score = 0;  ///< weighted child variance (smaller is better)
};

double SumSquares(const std::vector<float>& y, const std::vector<int64_t>& rows) {
  double sum = 0;
  double sq = 0;
  for (int64_t r : rows) {
    sum += y[static_cast<size_t>(r)];
    sq += static_cast<double>(y[static_cast<size_t>(r)]) * y[static_cast<size_t>(r)];
  }
  double n = static_cast<double>(rows.size());
  return n > 0 ? sq - sum * sum / n : 0;
}

float Mean(const std::vector<float>& y, const std::vector<int64_t>& rows) {
  double sum = 0;
  for (int64_t r : rows) sum += y[static_cast<size_t>(r)];
  return rows.empty() ? 0.0f : static_cast<float>(sum / static_cast<double>(rows.size()));
}

}  // namespace

Result<DecisionTree> DecisionTree::FromNodes(std::vector<Node> nodes,
                                             int num_features) {
  if (nodes.empty()) return Status::InvalidArgument("tree needs at least one node");
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.is_leaf) continue;
    if (n.feature < 0 || n.feature >= num_features) {
      return Status::InvalidArgument(
          StrFormat("node %zu splits on invalid feature %d", i, n.feature));
    }
    if (n.left < 0 || n.right < 0 ||
        static_cast<size_t>(n.left) >= nodes.size() ||
        static_cast<size_t>(n.right) >= nodes.size()) {
      return Status::InvalidArgument(StrFormat("node %zu has invalid children", i));
    }
    if (static_cast<size_t>(n.left) <= i || static_cast<size_t>(n.right) <= i) {
      return Status::InvalidArgument(
          StrFormat("node %zu children must have larger ids (no cycles)", i));
    }
  }
  DecisionTree tree;
  tree.nodes_ = std::move(nodes);
  tree.num_features_ = num_features;
  return tree;
}

float DecisionTree::Predict(const float* features) const {
  const Node* node = &nodes_[0];
  while (!node->is_leaf) {
    node = features[node->feature] < node->threshold
               ? &nodes_[static_cast<size_t>(node->left)]
               : &nodes_[static_cast<size_t>(node->right)];
  }
  return node->value;
}

int DecisionTree::depth() const {
  // Nodes are in topological order; compute depth by propagation.
  std::vector<int> depth(nodes_.size(), 0);
  int max_depth = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_leaf) continue;
    depth[static_cast<size_t>(nodes_[i].left)] = depth[i] + 1;
    depth[static_cast<size_t>(nodes_[i].right)] = depth[i] + 1;
    max_depth = std::max(max_depth, depth[i] + 1);
  }
  return max_depth;
}

Result<DecisionTree> DecisionTree::TrainRegression(const Tensor& x,
                                                   const std::vector<float>& y) {
  return TrainRegression(x, y, TrainOptions());
}

Result<DecisionTree> DecisionTree::TrainRegression(const Tensor& x,
                                                   const std::vector<float>& y,
                                                   const TrainOptions& options) {
  if (x.rank() != 2 || x.dim(0) != static_cast<int64_t>(y.size())) {
    return Status::InvalidArgument("x must be [n, features] matching y");
  }
  if (x.dim(0) == 0) return Status::InvalidArgument("empty training set");
  const int features = static_cast<int>(x.dim(1));

  DecisionTree tree;
  tree.num_features_ = features;

  struct WorkItem {
    size_t node_index;
    std::vector<int64_t> rows;
    int depth;
  };
  std::vector<WorkItem> queue;
  tree.nodes_.push_back(Node{});
  {
    std::vector<int64_t> all(static_cast<size_t>(x.dim(0)));
    std::iota(all.begin(), all.end(), 0);
    queue.push_back({0, std::move(all), 0});
  }

  // Breadth-first growth keeps child ids larger than parents (FromNodes'
  // topological invariant).
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    WorkItem item = std::move(queue[qi]);
    Node& node = tree.nodes_[item.node_index];
    node.value = Mean(y, item.rows);

    if (item.depth >= options.max_depth ||
        static_cast<int64_t>(item.rows.size()) < 2 * options.min_leaf_rows) {
      continue;  // stays a leaf
    }

    double parent_score = SumSquares(y, item.rows);
    BestSplit best;
    std::vector<int64_t> sorted = item.rows;
    for (int f = 0; f < features; ++f) {
      std::sort(sorted.begin(), sorted.end(), [&](int64_t a, int64_t b) {
        return x.At(a, f) < x.At(b, f);
      });
      // Prefix sums over the sorted order.
      double left_sum = 0;
      double left_sq = 0;
      double total_sum = 0;
      double total_sq = 0;
      for (int64_t r : sorted) {
        total_sum += y[static_cast<size_t>(r)];
        total_sq += static_cast<double>(y[static_cast<size_t>(r)]) *
                    y[static_cast<size_t>(r)];
      }
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        float yv = y[static_cast<size_t>(sorted[i])];
        left_sum += yv;
        left_sq += static_cast<double>(yv) * yv;
        float lo = x.At(sorted[i], f);
        float hi = x.At(sorted[i + 1], f);
        if (lo == hi) continue;  // no split point between equal values
        int64_t nl = static_cast<int64_t>(i) + 1;
        int64_t nr = static_cast<int64_t>(sorted.size()) - nl;
        if (nl < options.min_leaf_rows || nr < options.min_leaf_rows) continue;
        double right_sum = total_sum - left_sum;
        double right_sq = total_sq - left_sq;
        double score = (left_sq - left_sum * left_sum / static_cast<double>(nl)) +
                       (right_sq - right_sum * right_sum / static_cast<double>(nr));
        if (!best.found || score < best.score) {
          best.found = true;
          best.feature = f;
          best.threshold = 0.5f * (lo + hi);
          best.score = score;
        }
      }
    }
    if (!best.found || best.score >= parent_score - 1e-12) continue;

    std::vector<int64_t> left_rows;
    std::vector<int64_t> right_rows;
    for (int64_t r : item.rows) {
      (x.At(r, best.feature) < best.threshold ? left_rows : right_rows).push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) continue;

    // Reserve child slots first: push_back may reallocate and would
    // invalidate a reference into nodes_.
    int32_t left_index = static_cast<int32_t>(tree.nodes_.size());
    int32_t right_index = left_index + 1;
    tree.nodes_.push_back(Node{});
    tree.nodes_.push_back(Node{});
    Node& parent = tree.nodes_[item.node_index];
    parent.is_leaf = false;
    parent.feature = best.feature;
    parent.threshold = best.threshold;
    parent.left = left_index;
    parent.right = right_index;
    queue.push_back(
        {static_cast<size_t>(left_index), std::move(left_rows), item.depth + 1});
    queue.push_back(
        {static_cast<size_t>(right_index), std::move(right_rows), item.depth + 1});
  }
  return tree;
}

}  // namespace indbml::nn
