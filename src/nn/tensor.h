#ifndef INDBML_NN_TENSOR_H_
#define INDBML_NN_TENSOR_H_

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "common/memory_tracker.h"

namespace indbml::nn {

/// \brief Dense row-major float32 tensor.
///
/// The library follows the paper in using 4-byte floats for all weights and
/// activations. Storage is shared (copy-on-write is *not* provided; copies
/// share the buffer) and reported to the global MemoryTracker so peak-memory
/// experiments capture model and intermediate sizes.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
    int64_t n = size();
    buffer_ = std::shared_ptr<Buffer>(new Buffer(n));
  }

  /// Convenience constructors for vectors and matrices.
  static Tensor Vector(int64_t n) { return Tensor({n}); }
  static Tensor Matrix(int64_t rows, int64_t cols) { return Tensor({rows, cols}); }

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  int64_t dim(int i) const { return shape_[static_cast<size_t>(i)]; }

  int64_t size() const {
    return std::accumulate(shape_.begin(), shape_.end(), int64_t{1},
                           std::multiplies<int64_t>());
  }

  float* data() { return buffer_ ? buffer_->data.get() : nullptr; }
  const float* data() const { return buffer_ ? buffer_->data.get() : nullptr; }

  /// 2-D element access (row-major).
  float& At(int64_t r, int64_t c) {
    INDBML_DCHECK(rank() == 2);
    return data()[r * dim(1) + c];
  }
  float At(int64_t r, int64_t c) const {
    INDBML_DCHECK(rank() == 2);
    return data()[r * dim(1) + c];
  }

  /// 1-D element access.
  float& operator[](int64_t i) { return data()[i]; }
  float operator[](int64_t i) const { return data()[i]; }

  bool defined() const { return buffer_ != nullptr; }

 private:
  struct Buffer {
    explicit Buffer(int64_t n)
        : data(new float[static_cast<size_t>(n)]()), tracked(n * 4) {}
    std::unique_ptr<float[]> data;
    ScopedTracked tracked;
  };

  std::vector<int64_t> shape_;
  std::shared_ptr<Buffer> buffer_;
};

}  // namespace indbml::nn

#endif  // INDBML_NN_TENSOR_H_
