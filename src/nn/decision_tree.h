#ifndef INDBML_NN_DECISION_TREE_H_
#define INDBML_NN_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace indbml::nn {

/// \brief Binary regression tree (CART, variance-reduction splits).
///
/// The paper notes ML-To-SQL's building-block design also covers "the
/// existing approaches for decision trees or classifiers" (§4, citing
/// Sattler & Dunemann [33]); this is that model class. Classification over
/// k classes is done by regressing the class id and rounding, or by one
/// tree per class — both exercised in the tests.
class DecisionTree {
 public:
  struct Node {
    bool is_leaf = true;
    int feature = -1;       ///< split feature index (internal nodes)
    float threshold = 0;    ///< go left if x[feature] < threshold
    float value = 0;        ///< prediction (leaves)
    int32_t left = -1;      ///< child node ids (internal nodes)
    int32_t right = -1;
  };

  /// Training options for the CART builder.
  struct TrainOptions {
    int max_depth = 6;
    int64_t min_leaf_rows = 4;
  };

  /// Fits a regression tree on `x` [n, features] against targets `y` [n].
  static Result<DecisionTree> TrainRegression(const Tensor& x,
                                              const std::vector<float>& y);
  static Result<DecisionTree> TrainRegression(const Tensor& x,
                                              const std::vector<float>& y,
                                              const TrainOptions& options);

  /// Builds directly from a node list (node 0 is the root).
  static Result<DecisionTree> FromNodes(std::vector<Node> nodes, int num_features);

  float Predict(const float* features) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  int num_features() const { return num_features_; }
  int depth() const;

 private:
  std::vector<Node> nodes_;
  int num_features_ = 0;
};

}  // namespace indbml::nn

#endif  // INDBML_NN_DECISION_TREE_H_
