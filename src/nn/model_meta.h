#ifndef INDBML_NN_MODEL_META_H_
#define INDBML_NN_MODEL_META_H_

#include <string>
#include <vector>

#include "nn/model.h"

namespace indbml::nn {

/// Structural description of one layer — what the native ModelJoin operator
/// needs to allocate and parse the relational model representation, without
/// the weights themselves (those are read from the model *table*).
struct LayerMeta {
  LayerKind kind;
  int64_t input_dim = 0;
  int64_t units = 0;
  Activation activation = Activation::kLinear;
};

/// Model metadata passed to the ModelJoin call (paper §5.5: layer
/// dimensions, layer types and activation functions; a future DBMS would
/// keep this in the catalog — our QueryEngine registers it by name).
struct ModelMeta {
  std::string name;
  int64_t timesteps = 1;
  int64_t features = 0;
  std::vector<LayerMeta> layers;

  int64_t input_width() const { return timesteps * features; }
  int64_t output_dim() const { return layers.empty() ? 0 : layers.back().units; }
};

/// Extracts the metadata of a model.
inline ModelMeta MetaOf(const Model& model, std::string name = "model") {
  ModelMeta meta;
  meta.name = std::move(name);
  meta.timesteps = model.timesteps();
  meta.features = model.features();
  for (const Layer& layer : model.layers()) {
    LayerMeta lm;
    lm.kind = layer.kind;
    lm.input_dim = layer.input_dim();
    lm.units = layer.units();
    lm.activation = layer.kind == LayerKind::kDense ? layer.dense.activation
                                                    : Activation::kTanh;
    meta.layers.push_back(lm);
  }
  return meta;
}

}  // namespace indbml::nn

#endif  // INDBML_NN_MODEL_META_H_
