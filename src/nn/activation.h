#ifndef INDBML_NN_ACTIVATION_H_
#define INDBML_NN_ACTIVATION_H_

#include <string>

#include "common/status.h"
#include "nn/blas.h"

namespace indbml::nn {

/// Activation functions supported across every inference approach
/// (paper §4.3.5: linear, ReLU, sigmoid and tanh).
enum class Activation { kLinear = 0, kRelu = 1, kSigmoid = 2, kTanh = 3 };

inline const char* ActivationName(Activation a) {
  switch (a) {
    case Activation::kLinear:
      return "linear";
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
  }
  return "?";
}

/// Parses "relu" / "sigmoid" / "tanh" / "linear" (case-sensitive lowercase,
/// matching the names produced by ActivationName).
Result<Activation> ActivationFromName(const std::string& name);

inline float ApplyActivation(Activation a, float x) {
  switch (a) {
    case Activation::kLinear:
      return x;
    case Activation::kRelu:
      return blas::ScalarRelu(x);
    case Activation::kSigmoid:
      return blas::ScalarSigmoid(x);
    case Activation::kTanh:
      return blas::ScalarTanh(x);
  }
  return x;
}

/// In-place vector activation.
inline void ApplyActivation(Activation a, int64_t n, float* x) {
  switch (a) {
    case Activation::kLinear:
      return;
    case Activation::kRelu:
      return blas::VsRelu(n, x);
    case Activation::kSigmoid:
      return blas::VsSigmoid(n, x);
    case Activation::kTanh:
      return blas::VsTanh(n, x);
  }
}

}  // namespace indbml::nn

#endif  // INDBML_NN_ACTIVATION_H_
