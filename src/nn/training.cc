#include "nn/training.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "nn/blas.h"

namespace indbml::nn {

namespace {

/// Derivative of the activation given its *output* value (valid for the
/// activations we support: relu/sigmoid/tanh/linear).
float ActivationGradFromOutput(Activation a, float out) {
  switch (a) {
    case Activation::kLinear:
      return 1.0f;
    case Activation::kRelu:
      return out > 0.0f ? 1.0f : 0.0f;
    case Activation::kSigmoid:
      return out * (1.0f - out);
    case Activation::kTanh:
      return 1.0f - out * out;
  }
  return 1.0f;
}

}  // namespace

float MeanSquaredError(const Tensor& pred, const Tensor& y) {
  double sum = 0;
  for (int64_t i = 0; i < pred.size(); ++i) {
    double d = pred[i] - y[i];
    sum += d * d;
  }
  return pred.size() > 0 ? static_cast<float>(sum / static_cast<double>(pred.size()))
                         : 0.0f;
}

Result<float> TrainDenseMse(Model* model, const Tensor& x, const Tensor& y,
                            const TrainOptions& options) {
  for (const Layer& layer : model->layers()) {
    if (layer.kind != LayerKind::kDense) {
      return Status::NotImplemented("training supports dense-only models");
    }
  }
  if (x.rank() != 2 || y.rank() != 2 || x.dim(0) != y.dim(0)) {
    return Status::InvalidArgument("x and y must be 2-D with matching row counts");
  }
  if (x.dim(1) != model->input_width() || y.dim(1) != model->output_dim()) {
    return Status::InvalidArgument("x/y widths do not match the model");
  }

  const int64_t n = x.dim(0);
  auto& layers = model->mutable_layers();
  const size_t num_layers = layers.size();
  Random rng(options.shuffle_seed);
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  float last_loss = 0.0f;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (int64_t i = n - 1; i > 0; --i) {
      std::swap(order[static_cast<size_t>(i)],
                order[rng.NextUint64(static_cast<uint64_t>(i + 1))]);
    }
    double epoch_loss = 0;
    int64_t batches = 0;
    for (int64_t start = 0; start < n; start += options.batch_size) {
      int64_t bs = std::min<int64_t>(options.batch_size, n - start);
      // Forward pass, keeping every layer's activated output.
      std::vector<Tensor> acts;
      acts.reserve(num_layers + 1);
      Tensor input = Tensor::Matrix(bs, x.dim(1));
      for (int64_t r = 0; r < bs; ++r) {
        std::memcpy(&input.At(r, 0),
                    x.data() + order[static_cast<size_t>(start + r)] * x.dim(1),
                    static_cast<size_t>(x.dim(1)) * sizeof(float));
      }
      acts.push_back(input);
      for (const Layer& layer : layers) {
        const DenseLayer& d = layer.dense;
        Tensor out = Tensor::Matrix(bs, d.units);
        for (int64_t r = 0; r < bs; ++r) {
          std::memcpy(&out.At(r, 0), d.bias.data(),
                      static_cast<size_t>(d.units) * sizeof(float));
        }
        blas::SgemmTight(false, false, bs, d.units, d.input_dim, 1.0f,
                         acts.back().data(), d.kernel.data(), 1.0f, out.data());
        ApplyActivation(d.activation, out.size(), out.data());
        acts.push_back(out);
      }

      // Output-layer delta from the MSE gradient.
      Tensor delta = Tensor::Matrix(bs, model->output_dim());
      const Tensor& pred = acts.back();
      for (int64_t r = 0; r < bs; ++r) {
        for (int64_t j = 0; j < delta.dim(1); ++j) {
          float target = y.At(order[static_cast<size_t>(start + r)], j);
          float out = pred.At(r, j);
          float grad = 2.0f * (out - target) / static_cast<float>(bs * delta.dim(1));
          epoch_loss += (out - target) * (out - target);
          delta.At(r, j) =
              grad * ActivationGradFromOutput(layers.back().dense.activation, out);
        }
      }

      // Backward pass with SGD update.
      for (size_t li = num_layers; li-- > 0;) {
        DenseLayer& d = layers[li].dense;
        const Tensor& layer_in = acts[li];
        // Kernel gradient: in^T * delta.
        Tensor kernel_grad = Tensor::Matrix(d.input_dim, d.units);
        blas::SgemmTight(true, false, d.input_dim, d.units, bs, 1.0f, layer_in.data(),
                         delta.data(), 0.0f, kernel_grad.data());
        // Delta for the previous layer (before updating the kernel).
        Tensor prev_delta;
        if (li > 0) {
          prev_delta = Tensor::Matrix(bs, d.input_dim);
          blas::SgemmTight(false, true, bs, d.input_dim, d.units, 1.0f, delta.data(),
                           d.kernel.data(), 0.0f, prev_delta.data());
          const DenseLayer& prev = layers[li - 1].dense;
          for (int64_t i = 0; i < prev_delta.size(); ++i) {
            prev_delta[i] *=
                ActivationGradFromOutput(prev.activation, acts[li][i]);
          }
        }
        blas::Saxpy(kernel_grad.size(), -options.learning_rate, kernel_grad.data(),
                    d.kernel.data());
        for (int64_t j = 0; j < d.units; ++j) {
          float g = 0;
          for (int64_t r = 0; r < bs; ++r) g += delta.At(r, j);
          d.bias[j] -= options.learning_rate * g;
        }
        if (li > 0) delta = prev_delta;
      }
      ++batches;
    }
    last_loss = static_cast<float>(
        epoch_loss / static_cast<double>(n * model->output_dim()));
    (void)batches;
  }
  return last_loss;
}

}  // namespace indbml::nn
