#ifndef INDBML_NN_BLAS_H_
#define INDBML_NN_BLAS_H_

#include <cstdint>

namespace indbml::blas {

/// \file Minimal BLAS subset ("miniblas").
///
/// Stands in for Intel MKL / cuBLAS in the paper's ModelJoin design (§5.4,
/// Listing 5). Only the routines the inference kernels need are provided;
/// all matrices are dense row-major float32.

/// C := alpha * op(A) * op(B) + beta * C
/// op(X) = X or X^T depending on the transpose flags.
/// A is m x k (after op), B is k x n (after op), C is m x n.
/// lda/ldb are the *stored* leading dimensions (row strides) of A and B.
void Sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
           const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
           float* c, int64_t ldc);

/// Convenience wrapper for the common row-major case with tight strides.
void SgemmTight(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                float alpha, const float* a, const float* b, float beta, float* c);

/// y := alpha * x + y (vectors of length n).
void Saxpy(int64_t n, float alpha, const float* x, float* y);

/// Rank-1 update used by the LSTM kernel step for 1-feature inputs
/// (paper Listing 5, `sger`): A := alpha * x * y^T + A, A is m x n.
void Sger(int64_t m, int64_t n, float alpha, const float* x, const float* y, float* a,
          int64_t lda);

/// Elementwise z := x * y (MKL vsMul).
void VsMul(int64_t n, const float* x, const float* y, float* z);

/// Elementwise z := x + y (MKL vsAdd).
void VsAdd(int64_t n, const float* x, const float* y, float* z);

/// Elementwise activations, in place.
void VsSigmoid(int64_t n, float* x);
void VsTanh(int64_t n, float* x);
void VsRelu(int64_t n, float* x);

/// Scalar activation helpers (shared with the SQL expression evaluator so
/// every approach computes bit-identical activations).
float ScalarSigmoid(float x);
float ScalarTanh(float x);
float ScalarRelu(float x);

}  // namespace indbml::blas

#endif  // INDBML_NN_BLAS_H_
