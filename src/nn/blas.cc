#include "nn/blas.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace indbml::blas {

namespace {

// Block size for the cache-blocked GEMM kernel. 64x64 float blocks fit
// comfortably in L1/L2 on commodity hardware.
constexpr int64_t kBlock = 64;

inline float Fetch(const float* a, int64_t ld, bool trans, int64_t r, int64_t c) {
  return trans ? a[c * ld + r] : a[r * ld + c];
}

}  // namespace

void Sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
           const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
           float* c, int64_t ldc) {
  // Scale C by beta first.
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  if (!trans_a && !trans_b) {
    // Fast path: row-major A (m x k) times row-major B (k x n), i-k-j loop
    // order with blocking, which keeps B rows streaming through cache.
    for (int64_t ii = 0; ii < m; ii += kBlock) {
      int64_t imax = std::min(ii + kBlock, m);
      for (int64_t kk = 0; kk < k; kk += kBlock) {
        int64_t kmax = std::min(kk + kBlock, k);
        for (int64_t i = ii; i < imax; ++i) {
          float* crow = c + i * ldc;
          const float* arow = a + i * lda;
          for (int64_t p = kk; p < kmax; ++p) {
            float av = alpha * arow[p];
            if (av == 0.0f) continue;
            const float* brow = b + p * ldb;
            for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
    return;
  }

  // Generic path for transposed operands.
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += Fetch(a, lda, trans_a, i, p) * Fetch(b, ldb, trans_b, p, j);
      }
      crow[j] += alpha * acc;
    }
  }
}

void SgemmTight(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                float alpha, const float* a, const float* b, float beta, float* c) {
  int64_t lda = trans_a ? m : k;
  int64_t ldb = trans_b ? k : n;
  Sgemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

void Saxpy(int64_t n, float alpha, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Sger(int64_t m, int64_t n, float alpha, const float* x, const float* y, float* a,
          int64_t lda) {
  for (int64_t i = 0; i < m; ++i) {
    float av = alpha * x[i];
    float* arow = a + i * lda;
    for (int64_t j = 0; j < n; ++j) arow[j] += av * y[j];
  }
}

void VsMul(int64_t n, const float* x, const float* y, float* z) {
  for (int64_t i = 0; i < n; ++i) z[i] = x[i] * y[i];
}

void VsAdd(int64_t n, const float* x, const float* y, float* z) {
  for (int64_t i = 0; i < n; ++i) z[i] = x[i] + y[i];
}

float ScalarSigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
float ScalarTanh(float x) { return std::tanh(x); }
float ScalarRelu(float x) { return x > 0.0f ? x : 0.0f; }

void VsSigmoid(int64_t n, float* x) {
  for (int64_t i = 0; i < n; ++i) x[i] = ScalarSigmoid(x[i]);
}

void VsTanh(int64_t n, float* x) {
  for (int64_t i = 0; i < n; ++i) x[i] = ScalarTanh(x[i]);
}

void VsRelu(int64_t n, float* x) {
  for (int64_t i = 0; i < n; ++i) x[i] = ScalarRelu(x[i]);
}

}  // namespace indbml::blas
