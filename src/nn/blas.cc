#include "nn/blas.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/simd.h"

namespace indbml::blas {

namespace {

using simd::F32x8;

// Cache block size for the blocked GEMM. 64x64 float blocks fit comfortably
// in L1/L2 on commodity hardware.
constexpr int64_t kBlock = 64;

// Register tile of the SIMD microkernel: kMr rows x (2 * kWidth) columns of
// C held in accumulator registers across a whole k-block.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 2 * simd::kWidth;  // 16

inline float Fetch(const float* a, int64_t ld, bool trans, int64_t r, int64_t c) {
  return trans ? a[c * ld + r] : a[r * ld + c];
}

// Both block kernels below compute the identical i-k-j update sequence for
// every C element: av = alpha * A[i][p] (one rounding), then
// C[i][j] += av * B[p][j] (mul then add, two roundings), for p ascending.
// The SIMD kernel only changes *where* the partial sums live (registers
// instead of a memory round-trip per p), not the value sequence, so the two
// paths are bit-identical. Keeping them identical is load-bearing: the
// bit-identity suite diffs their raw output bytes, and all four inference
// approaches must agree exactly regardless of build flags.

void SgemmBlockScalar(int64_t ii, int64_t imax, int64_t kk, int64_t kmax,
                      int64_t n, float alpha, const float* a, int64_t lda,
                      const float* b, int64_t ldb, float* c, int64_t ldc) {
  for (int64_t i = ii; i < imax; ++i) {
    float* crow = c + i * ldc;
    const float* arow = a + i * lda;
    for (int64_t p = kk; p < kmax; ++p) {
      // No skip on av == 0.0f: skipping would drop -0.0/NaN propagation and
      // diverge from the SIMD lanes, which never branch per element.
      const float av = alpha * arow[p];
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// Tail columns [j0, n) of rows [i0, i0+rows): same i-p-j scalar order.
void SgemmColumnTail(int64_t i0, int64_t rows, int64_t kk, int64_t kmax,
                     int64_t j0, int64_t n, float alpha, const float* a,
                     int64_t lda, const float* b, int64_t ldb, float* c,
                     int64_t ldc) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* arow = a + (i0 + r) * lda;
    float* crow = c + (i0 + r) * ldc;
    for (int64_t p = kk; p < kmax; ++p) {
      const float av = alpha * arow[p];
      const float* brow = b + p * ldb;
      for (int64_t j = j0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void SgemmBlockSimd(int64_t ii, int64_t imax, int64_t kk, int64_t kmax,
                    int64_t n, float alpha, const float* a, int64_t lda,
                    const float* b, int64_t ldb, float* c, int64_t ldc) {
  int64_t i = ii;
  for (; i + kMr <= imax; i += kMr) {
    const float* arow0 = a + (i + 0) * lda;
    const float* arow1 = a + (i + 1) * lda;
    const float* arow2 = a + (i + 2) * lda;
    const float* arow3 = a + (i + 3) * lda;
    float* crow0 = c + (i + 0) * ldc;
    float* crow1 = c + (i + 1) * ldc;
    float* crow2 = c + (i + 2) * ldc;
    float* crow3 = c + (i + 3) * ldc;
    int64_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      F32x8 c00 = F32x8::Load(crow0 + j), c01 = F32x8::Load(crow0 + j + 8);
      F32x8 c10 = F32x8::Load(crow1 + j), c11 = F32x8::Load(crow1 + j + 8);
      F32x8 c20 = F32x8::Load(crow2 + j), c21 = F32x8::Load(crow2 + j + 8);
      F32x8 c30 = F32x8::Load(crow3 + j), c31 = F32x8::Load(crow3 + j + 8);
      for (int64_t p = kk; p < kmax; ++p) {
        const float* brow = b + p * ldb;
        const F32x8 b0 = F32x8::Load(brow + j);
        const F32x8 b1 = F32x8::Load(brow + j + 8);
        const F32x8 a0 = F32x8::Broadcast(alpha * arow0[p]);
        c00 = c00 + a0 * b0;
        c01 = c01 + a0 * b1;
        const F32x8 a1 = F32x8::Broadcast(alpha * arow1[p]);
        c10 = c10 + a1 * b0;
        c11 = c11 + a1 * b1;
        const F32x8 a2 = F32x8::Broadcast(alpha * arow2[p]);
        c20 = c20 + a2 * b0;
        c21 = c21 + a2 * b1;
        const F32x8 a3 = F32x8::Broadcast(alpha * arow3[p]);
        c30 = c30 + a3 * b0;
        c31 = c31 + a3 * b1;
      }
      c00.Store(crow0 + j);
      c01.Store(crow0 + j + 8);
      c10.Store(crow1 + j);
      c11.Store(crow1 + j + 8);
      c20.Store(crow2 + j);
      c21.Store(crow2 + j + 8);
      c30.Store(crow3 + j);
      c31.Store(crow3 + j + 8);
    }
    for (; j + simd::kWidth <= n; j += simd::kWidth) {
      F32x8 c0 = F32x8::Load(crow0 + j);
      F32x8 c1 = F32x8::Load(crow1 + j);
      F32x8 c2 = F32x8::Load(crow2 + j);
      F32x8 c3 = F32x8::Load(crow3 + j);
      for (int64_t p = kk; p < kmax; ++p) {
        const F32x8 b0 = F32x8::Load(b + p * ldb + j);
        c0 = c0 + F32x8::Broadcast(alpha * arow0[p]) * b0;
        c1 = c1 + F32x8::Broadcast(alpha * arow1[p]) * b0;
        c2 = c2 + F32x8::Broadcast(alpha * arow2[p]) * b0;
        c3 = c3 + F32x8::Broadcast(alpha * arow3[p]) * b0;
      }
      c0.Store(crow0 + j);
      c1.Store(crow1 + j);
      c2.Store(crow2 + j);
      c3.Store(crow3 + j);
    }
    if (j < n) {
      SgemmColumnTail(i, kMr, kk, kmax, j, n, alpha, a, lda, b, ldb, c, ldc);
    }
  }
  // Leftover rows, one at a time.
  for (; i < imax; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    int64_t j = 0;
    for (; j + simd::kWidth <= n; j += simd::kWidth) {
      F32x8 acc = F32x8::Load(crow + j);
      for (int64_t p = kk; p < kmax; ++p) {
        acc = acc + F32x8::Broadcast(alpha * arow[p]) * F32x8::Load(b + p * ldb + j);
      }
      acc.Store(crow + j);
    }
    if (j < n) {
      SgemmColumnTail(i, 1, kk, kmax, j, n, alpha, a, lda, b, ldb, c, ldc);
    }
  }
}

}  // namespace

void Sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
           const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
           float* c, int64_t ldc) {
  // Scale C by beta first.
  const bool use_simd = simd::UseSimd();
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
    } else if (beta != 1.0f) {
      int64_t j = 0;
      if (use_simd) {
        const F32x8 bv = F32x8::Broadcast(beta);
        for (; j + simd::kWidth <= n; j += simd::kWidth) {
          (F32x8::Load(crow + j) * bv).Store(crow + j);
        }
      }
      for (; j < n; ++j) crow[j] *= beta;
    }
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  if (!trans_a && !trans_b) {
    // Fast path: row-major A (m x k) times row-major B (k x n), i-k-j loop
    // order with blocking, which keeps B rows streaming through cache. The
    // SIMD kernel additionally register-blocks a kMr x kNr tile of C.
    for (int64_t ii = 0; ii < m; ii += kBlock) {
      int64_t imax = std::min(ii + kBlock, m);
      for (int64_t kk = 0; kk < k; kk += kBlock) {
        int64_t kmax = std::min(kk + kBlock, k);
        if (use_simd) {
          SgemmBlockSimd(ii, imax, kk, kmax, n, alpha, a, lda, b, ldb, c, ldc);
        } else {
          SgemmBlockScalar(ii, imax, kk, kmax, n, alpha, a, lda, b, ldb, c, ldc);
        }
      }
    }
    return;
  }

  // Generic path for transposed operands (cold: only training-style calls
  // use it, inference GEMMs are all non-transposed).
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += Fetch(a, lda, trans_a, i, p) * Fetch(b, ldb, trans_b, p, j);
      }
      crow[j] += alpha * acc;
    }
  }
}

void SgemmTight(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                float alpha, const float* a, const float* b, float beta, float* c) {
  int64_t lda = trans_a ? m : k;
  int64_t ldb = trans_b ? k : n;
  Sgemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

void Saxpy(int64_t n, float alpha, const float* x, float* y) {
  int64_t i = 0;
  if (simd::UseSimd()) {
    const F32x8 av = F32x8::Broadcast(alpha);
    for (; i + simd::kWidth <= n; i += simd::kWidth) {
      (F32x8::Load(y + i) + av * F32x8::Load(x + i)).Store(y + i);
    }
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Sger(int64_t m, int64_t n, float alpha, const float* x, const float* y, float* a,
          int64_t lda) {
  const bool use_simd = simd::UseSimd();
  for (int64_t i = 0; i < m; ++i) {
    float av = alpha * x[i];
    float* arow = a + i * lda;
    int64_t j = 0;
    if (use_simd) {
      const F32x8 avv = F32x8::Broadcast(av);
      for (; j + simd::kWidth <= n; j += simd::kWidth) {
        (F32x8::Load(arow + j) + avv * F32x8::Load(y + j)).Store(arow + j);
      }
    }
    for (; j < n; ++j) arow[j] += av * y[j];
  }
}

void VsMul(int64_t n, const float* x, const float* y, float* z) {
  int64_t i = 0;
  if (simd::UseSimd()) {
    for (; i + simd::kWidth <= n; i += simd::kWidth) {
      (F32x8::Load(x + i) * F32x8::Load(y + i)).Store(z + i);
    }
  }
  for (; i < n; ++i) z[i] = x[i] * y[i];
}

void VsAdd(int64_t n, const float* x, const float* y, float* z) {
  int64_t i = 0;
  if (simd::UseSimd()) {
    for (; i + simd::kWidth <= n; i += simd::kWidth) {
      (F32x8::Load(x + i) + F32x8::Load(y + i)).Store(z + i);
    }
  }
  for (; i < n; ++i) z[i] = x[i] + y[i];
}

float ScalarSigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
float ScalarTanh(float x) { return std::tanh(x); }
float ScalarRelu(float x) { return x > 0.0f ? x : 0.0f; }

// Sigmoid/tanh stay scalar-per-element even in SIMD builds: they bottom out
// in libm's exp/tanh, and no vector polynomial approximation reproduces
// libm bit-for-bit, which would break the cross-approach identity checks.
// The win is captured elsewhere (GEMM dominates dense inference).

void VsSigmoid(int64_t n, float* x) {
  for (int64_t i = 0; i < n; ++i) x[i] = ScalarSigmoid(x[i]);
}

void VsTanh(int64_t n, float* x) {
  for (int64_t i = 0; i < n; ++i) x[i] = ScalarTanh(x[i]);
}

void VsRelu(int64_t n, float* x) {
  int64_t i = 0;
  if (simd::UseSimd()) {
    // max(x, +0) matches `x > 0 ? x : 0` exactly, including NaN -> 0 and
    // -0 -> +0 (the second operand wins on ties/unordered in every backend).
    const F32x8 zero = F32x8::Zero();
    for (; i + simd::kWidth <= n; i += simd::kWidth) {
      F32x8::Max(F32x8::Load(x + i), zero).Store(x + i);
    }
  }
  for (; i < n; ++i) x[i] = ScalarRelu(x[i]);
}

}  // namespace indbml::blas
