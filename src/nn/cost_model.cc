#include "nn/cost_model.h"

#include <algorithm>

namespace indbml::nn {

CostEstimate EstimateCost(const Model& model) {
  CostEstimate est;
  for (const Layer& layer : model.layers()) {
    if (layer.kind == LayerKind::kDense) {
      const DenseLayer& d = layer.dense;
      // One MAC per kernel weight plus the bias add and activation.
      est.flops_per_tuple += 2.0 * static_cast<double>(d.input_dim) *
                                 static_cast<double>(d.units) +
                             2.0 * static_cast<double>(d.units);
      est.intermediate_bytes_per_tuple =
          std::max(est.intermediate_bytes_per_tuple, 4.0 * d.units);
      // ML-To-SQL materialises one row per (tuple, node) after each layer
      // and one join partner per edge during the aggregation.
      est.relational_rows_per_tuple +=
          static_cast<double>(d.input_dim) * static_cast<double>(d.units) +
          static_cast<double>(d.units);
      est.model_table_rows += d.input_dim * d.units;
    } else {
      const LstmLayer& l = layer.lstm;
      double steps = static_cast<double>(model.timesteps());
      double per_step = 2.0 * kNumGates *
                        (static_cast<double>(l.input_dim) + l.units + 1.0) *
                        static_cast<double>(l.units);
      est.flops_per_tuple += steps * per_step;
      est.intermediate_bytes_per_tuple =
          std::max(est.intermediate_bytes_per_tuple, 8.0 * l.units);
      est.relational_rows_per_tuple +=
          steps * (static_cast<double>(l.units) * l.units +
                   static_cast<double>(l.input_dim) * l.units + l.units);
      est.model_table_rows +=
          l.input_dim * l.units + l.units * l.units;
    }
  }
  return est;
}

double PredictSeconds(const CostEstimate& estimate, const CostCoefficients& coeff,
                      int64_t tuples) {
  double t = static_cast<double>(tuples);
  return coeff.fixed_seconds + t * estimate.flops_per_tuple * coeff.seconds_per_flop +
         t * estimate.relational_rows_per_tuple * coeff.seconds_per_relational_row;
}

CostCoefficients CalibrateFromMeasurement(const CostEstimate& estimate,
                                          int64_t probe_tuples, double probe_seconds,
                                          bool relational) {
  CostCoefficients coeff;
  coeff.fixed_seconds = 0;
  coeff.seconds_per_flop = 0;
  coeff.seconds_per_relational_row = 0;
  double t = static_cast<double>(probe_tuples);
  if (t <= 0) return coeff;
  if (relational && estimate.relational_rows_per_tuple > 0) {
    coeff.seconds_per_relational_row =
        probe_seconds / (t * estimate.relational_rows_per_tuple);
  } else if (estimate.flops_per_tuple > 0) {
    coeff.seconds_per_flop = probe_seconds / (t * estimate.flops_per_tuple);
  }
  return coeff;
}

}  // namespace indbml::nn
