#ifndef INDBML_NN_TRAINING_H_
#define INDBML_NN_TRAINING_H_

#include <cstdint>

#include "common/status.h"
#include "nn/model.h"

namespace indbml::nn {

/// Options for mini-batch SGD training of dense models.
///
/// Training is out of scope for the paper's evaluation (it uses pre-trained
/// Keras models), but the examples use it to produce *meaningful* weights so
/// the Iris example actually classifies rather than emitting random scores.
struct TrainOptions {
  float learning_rate = 0.05f;
  int epochs = 200;
  int batch_size = 32;
  uint64_t shuffle_seed = 7;
};

/// Trains a dense-only model in place against mean-squared-error loss.
/// `x` is [n, input_width], `y` is [n, output_dim]. Returns the final
/// epoch's mean loss. Fails for models containing LSTM layers.
Result<float> TrainDenseMse(Model* model, const Tensor& x, const Tensor& y,
                            const TrainOptions& options = {});

/// Mean squared error between a prediction matrix and targets.
float MeanSquaredError(const Tensor& pred, const Tensor& y);

}  // namespace indbml::nn

#endif  // INDBML_NN_TRAINING_H_
