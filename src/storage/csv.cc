#include "storage/csv.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace indbml::storage {

namespace {

/// Splits one CSV line (no quoting support — the workloads are numeric).
std::vector<std::string> SplitLine(const std::string& line, char sep) {
  std::vector<std::string> out = Split(line, sep);
  for (auto& field : out) field = std::string(Trim(field));
  return out;
}

bool LooksLikeInteger(const std::string& s) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' || s[0] == '+' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

Result<Value> ParseCell(const std::string& cell, DataType type, int64_t line_no) {
  char* end = nullptr;
  switch (type) {
    case DataType::kInt64: {
      long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end == cell.c_str() || *end != '\0') {
        return Status::ParseError(StrFormat("line %lld: '%s' is not an integer",
                                            static_cast<long long>(line_no),
                                            cell.c_str()));
      }
      return Value::Int64(v);
    }
    case DataType::kFloat: {
      double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return Status::ParseError(StrFormat("line %lld: '%s' is not numeric",
                                            static_cast<long long>(line_no),
                                            cell.c_str()));
      }
      return Value::Float(static_cast<float>(v));
    }
    case DataType::kBool:
      return Value::Bool(cell == "1" || EqualsIgnoreCase(cell, "true"));
  }
  return Status::Internal("bad type");
}

}  // namespace

Result<TablePtr> LoadCsv(const std::string& path, const std::string& table_name) {
  return LoadCsv(path, table_name, CsvOptions());
}

Result<TablePtr> LoadCsv(const std::string& path, const std::string& table_name,
                         const CsvOptions& options) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);

  std::vector<std::string> lines;
  {
    std::string current;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), f) != nullptr) {
      current += buf;
      if (!current.empty() && current.back() == '\n') {
        current.pop_back();
        if (!current.empty() && current.back() == '\r') current.pop_back();
        lines.push_back(current);
        current.clear();
      }
    }
    if (!current.empty()) lines.push_back(current);
  }
  std::fclose(f);
  if (lines.empty()) return Status::ParseError(path + " is empty");

  size_t first_data = 0;
  std::vector<std::string> names;
  if (options.has_header) {
    names = SplitLine(lines[0], options.separator);
    first_data = 1;
    if (lines.size() < 2) return Status::ParseError(path + " has no data rows");
  } else {
    size_t width = SplitLine(lines[0], options.separator).size();
    for (size_t i = 0; i < width; ++i) names.push_back(StrFormat("c%zu", i));
  }

  // Type inference from the first data row.
  std::vector<DataType> types = options.types;
  std::vector<std::string> probe = SplitLine(lines[first_data], options.separator);
  if (probe.size() != names.size()) {
    return Status::ParseError("header/data width mismatch");
  }
  if (types.empty()) {
    for (const std::string& cell : probe) {
      types.push_back(LooksLikeInteger(cell) ? DataType::kInt64 : DataType::kFloat);
    }
  }
  if (types.size() != names.size()) {
    return Status::InvalidArgument("explicit types do not match the column count");
  }

  std::vector<Field> fields;
  for (size_t i = 0; i < names.size(); ++i) fields.push_back({names[i], types[i]});
  auto table = std::make_shared<Table>(table_name, fields);
  table->Reserve(static_cast<int64_t>(lines.size() - first_data));

  for (size_t li = first_data; li < lines.size(); ++li) {
    if (lines[li].empty()) continue;
    std::vector<std::string> cells = SplitLine(lines[li], options.separator);
    if (cells.size() != names.size()) {
      return Status::ParseError(StrFormat("line %zu: expected %zu fields, got %zu",
                                          li + 1, names.size(), cells.size()));
    }
    std::vector<Value> row;
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      INDBML_ASSIGN_OR_RETURN(Value v, ParseCell(cells[c], types[c],
                                                 static_cast<int64_t>(li + 1)));
      row.push_back(v);
    }
    INDBML_RETURN_NOT_OK(table->AppendRow(row));
  }
  table->Finalize();
  return table;
}

Status WriteCsv(const Table& table, const std::string& path, char separator) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path + " for writing");
  for (int c = 0; c < table.num_columns(); ++c) {
    std::fprintf(f, "%s%s", c ? std::string(1, separator).c_str() : "",
                 table.fields()[static_cast<size_t>(c)].name.c_str());
  }
  std::fprintf(f, "\n");
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c) std::fprintf(f, "%c", separator);
      Value v = table.column(c).GetValue(r);
      if (v.type == DataType::kInt64) {
        std::fprintf(f, "%lld", static_cast<long long>(v.i));
      } else if (v.type == DataType::kFloat) {
        std::fprintf(f, "%.9g", static_cast<double>(v.f));
      } else {
        std::fprintf(f, "%d", v.b ? 1 : 0);
      }
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace indbml::storage
