#ifndef INDBML_STORAGE_TABLE_H_
#define INDBML_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/column.h"
#include "storage/types.h"

namespace indbml::storage {

/// MinMax statistics of one column within one storage block — the paper's
/// Small Materialized Aggregates / zone maps (§4.4), used by scans for
/// block pruning of model tables.
struct BlockStats {
  Value min;
  Value max;
};

/// Contiguous range of rows forming one partition of a table. Partitions are
/// contiguous in row order, which keeps partitioned execution
/// order-preserving (paper §4.4: partitioning on the unique id, no
/// repartitioning needed for (ID, Node) grouping).
struct PartitionRange {
  int64_t begin = 0;
  int64_t end = 0;  // exclusive
};

/// \brief In-memory columnar table.
///
/// After loading, call `Finalize()` to compute per-block MinMax statistics
/// and freeze the contents. `sorted_by` documents a physical sort order the
/// loader guarantees (e.g. the model table sorted by node id); the optimizer
/// uses it to replace hash aggregation with order-based aggregation.
class Table {
 public:
  Table(std::string name, std::vector<Field> fields);

  const std::string& name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }
  int64_t num_columns() const { return static_cast<int64_t>(fields_.size()); }
  int64_t num_rows() const { return num_rows_; }

  /// Index of the column named `name`, or error.
  Result<int> ColumnIndex(const std::string& name) const;

  Column& column(int i) { return columns_[static_cast<size_t>(i)]; }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }

  /// Appends one row given as a value list matching the schema.
  Status AppendRow(const std::vector<Value>& values);

  /// Bulk reserve for n additional rows.
  void Reserve(int64_t n);

  /// Marks loading finished: rows counted, block statistics computed.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Per-block MinMax stats for column `col`; valid after Finalize().
  const std::vector<BlockStats>& block_stats(int col) const {
    return stats_[static_cast<size_t>(col)];
  }
  int64_t rows_per_block() const { return rows_per_block_; }
  int64_t num_blocks() const {
    return (num_rows_ + rows_per_block_ - 1) / rows_per_block_;
  }

  /// Declares that rows are physically sorted by these columns
  /// (lexicographically, ascending). Must be set by the loader truthfully;
  /// `Finalize` validates the claim in debug builds.
  void SetSortedBy(std::vector<std::string> columns) { sorted_by_ = std::move(columns); }
  const std::vector<std::string>& sorted_by() const { return sorted_by_; }

  /// Declares the unique row-identifier column (paper §4.2). Partitioning is
  /// aligned with it (contiguous row ranges = contiguous id ranges when the
  /// loader appends rows in id order), which is what makes per-partition
  /// aggregation on id-rooted grouping keys repartitioning-free (§4.4).
  void SetUniqueIdColumn(std::string name) { unique_id_column_ = std::move(name); }
  const std::string& unique_id_column() const { return unique_id_column_; }

  /// Splits the table into `n` contiguous, balanced partitions.
  std::vector<PartitionRange> MakePartitions(int n) const;

  /// Total bytes held by all columns.
  int64_t MemoryBytes() const;

 private:
  std::string name_;
  std::vector<Field> fields_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
  bool finalized_ = false;
  int64_t rows_per_block_ = kRowsPerBlock;
  std::vector<std::vector<BlockStats>> stats_;
  std::vector<std::string> sorted_by_;
  std::string unique_id_column_;
};

using TablePtr = std::shared_ptr<Table>;

/// \brief Thread-safe name → table registry (the database catalog).
///
/// The map is guarded; the Table objects handed out are shared_ptrs whose
/// contents are frozen by Finalize() before registration, so readers never
/// race table mutation through the catalog.
class Catalog {
 public:
  /// Registers a table; fails if the name exists.
  Status CreateTable(TablePtr table) INDBML_EXCLUDES(mu_);

  /// Replaces or registers a table.
  void CreateOrReplaceTable(TablePtr table) INDBML_EXCLUDES(mu_);

  Result<TablePtr> GetTable(const std::string& name) const INDBML_EXCLUDES(mu_);
  Status DropTable(const std::string& name) INDBML_EXCLUDES(mu_);
  std::vector<std::string> ListTables() const INDBML_EXCLUDES(mu_);

  /// Monotonically increasing schema version, bumped by every DDL mutation
  /// (create / replace / drop). Cached plans key on it: a plan bound against
  /// version v is stale once the catalog reports a later version
  /// (server/plan_cache.h).
  int64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Explicit bump for DDL-like mutations that do not go through the table
  /// map — a model DEPLOY re-registering metadata must invalidate cached
  /// plans bound against the old model version (ModelMetaRegistry wires its
  /// mutation callback here).
  void BumpVersion() { version_.fetch_add(1, std::memory_order_release); }

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, TablePtr> tables_ INDBML_GUARDED_BY(mu_);
  /// lock-free: release on bump / acquire on read, so a reader that sees the
  /// new version also sees the table map change that caused it published by
  /// the mutex release preceding the bump.
  std::atomic<int64_t> version_{0};
};

}  // namespace indbml::storage

#endif  // INDBML_STORAGE_TABLE_H_
