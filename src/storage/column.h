#ifndef INDBML_STORAGE_COLUMN_H_
#define INDBML_STORAGE_COLUMN_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/memory_tracker.h"
#include "storage/types.h"

namespace indbml::storage {

/// \brief A fully materialised table column (columnar storage layout).
///
/// Values are stored in type-specific contiguous arrays; the allocation is
/// reported to the MemoryTracker in coarse steps so peak-memory experiments
/// see table storage.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  int64_t size() const { return size_; }

  void AppendBool(bool v) {
    INDBML_DCHECK(type_ == DataType::kBool);
    bools_.push_back(v);
    ++size_;
  }
  void AppendInt64(int64_t v) {
    INDBML_DCHECK(type_ == DataType::kInt64);
    ints_.push_back(v);
    ++size_;
  }
  void AppendFloat(float v) {
    INDBML_DCHECK(type_ == DataType::kFloat);
    floats_.push_back(v);
    ++size_;
  }
  void AppendValue(const Value& v);

  bool GetBool(int64_t row) const { return bools_[static_cast<size_t>(row)] != 0; }
  int64_t GetInt64(int64_t row) const { return ints_[static_cast<size_t>(row)]; }
  float GetFloat(int64_t row) const { return floats_[static_cast<size_t>(row)]; }
  Value GetValue(int64_t row) const;

  const int64_t* int_data() const { return ints_.data(); }
  const float* float_data() const { return floats_.data(); }
  const uint8_t* bool_data() const { return bools_.data(); }

  /// Reserves capacity for n rows (avoids growth reallocation churn).
  void Reserve(int64_t n);

  /// Bytes of storage currently held.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(ints_.capacity() * 8 + floats_.capacity() * 4 +
                                bools_.capacity());
  }

 private:
  DataType type_;
  int64_t size_ = 0;
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<float> floats_;
};

}  // namespace indbml::storage

#endif  // INDBML_STORAGE_COLUMN_H_
