#ifndef INDBML_STORAGE_COLUMN_H_
#define INDBML_STORAGE_COLUMN_H_

#include <cstdint>
#include <vector>

#include "common/buffer.h"
#include "common/logging.h"
#include "storage/types.h"

namespace indbml::storage {

/// \brief A fully materialised table column (columnar storage layout).
///
/// Values live in one type-erased, reference-counted Buffer
/// (common/buffer.h), which reports itself to the MemoryTracker exactly
/// once — so base-table storage is visible to the Table-3 peak-memory
/// experiment, and the zero-copy scan views (exec::Vector) that share the
/// buffer add nothing to the count. Sharing also pins the storage: a result
/// chunk viewing this column keeps the bytes alive after the Table is gone.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  /// Columns deep-copy: a copy sharing the buffer while either side keeps
  /// appending would corrupt the other, and column copies are cold-path
  /// (table construction only).
  Column(const Column& other) { *this = other; }
  Column& operator=(const Column& other);
  Column(Column&&) noexcept = default;
  Column& operator=(Column&&) noexcept = default;

  DataType type() const { return type_; }
  int64_t size() const { return size_; }

  void AppendBool(bool v) {
    INDBML_DCHECK(type_ == DataType::kBool);
    EnsureCapacity(size_ + 1);
    buf_->data()[size_++] = v ? 1 : 0;
  }
  void AppendInt64(int64_t v) {
    INDBML_DCHECK(type_ == DataType::kInt64);
    EnsureCapacity(size_ + 1);
    reinterpret_cast<int64_t*>(buf_->data())[size_++] = v;
  }
  void AppendFloat(float v) {
    INDBML_DCHECK(type_ == DataType::kFloat);
    EnsureCapacity(size_ + 1);
    reinterpret_cast<float*>(buf_->data())[size_++] = v;
  }
  void AppendValue(const Value& v);

  bool GetBool(int64_t row) const { return bool_data()[row] != 0; }
  int64_t GetInt64(int64_t row) const { return int_data()[row]; }
  float GetFloat(int64_t row) const { return float_data()[row]; }
  Value GetValue(int64_t row) const;

  const int64_t* int_data() const {
    return buf_ != nullptr ? reinterpret_cast<const int64_t*>(buf_->data())
                           : nullptr;
  }
  const float* float_data() const {
    return buf_ != nullptr ? reinterpret_cast<const float*>(buf_->data())
                           : nullptr;
  }
  const uint8_t* bool_data() const {
    return buf_ != nullptr ? buf_->data() : nullptr;
  }

  /// The shared storage buffer; scans hand this to exec::Vector::View for
  /// zero-copy chunks. Stable once the table is finalized (appends may
  /// reallocate).
  const BufferPtr& buffer() const { return buf_; }

  /// Reserves capacity for n rows (avoids growth reallocation churn).
  void Reserve(int64_t n) { EnsureCapacity(n); }

  /// Bytes of storage currently held.
  int64_t MemoryBytes() const { return buf_ != nullptr ? buf_->capacity() : 0; }

 private:
  /// Grows the buffer (geometrically) to hold at least `rows` elements. A
  /// shared buffer is never grown in place: readers holding views keep the
  /// old buffer, the column moves to a private copy.
  void EnsureCapacity(int64_t rows);

  DataType type_;
  int64_t size_ = 0;
  BufferPtr buf_;
};

}  // namespace indbml::storage

#endif  // INDBML_STORAGE_COLUMN_H_
