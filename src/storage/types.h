#ifndef INDBML_STORAGE_TYPES_H_
#define INDBML_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

#include "common/logging.h"

namespace indbml::storage {

/// Column types supported by the engine.
///
/// The workloads of the paper (fact tables of float features + integer ids,
/// model tables of integer node identifiers + float weights) only need
/// these; NULLs are not supported (the generated ModelJoin queries use
/// inner joins over complete data only — see DESIGN.md).
enum class DataType { kBool, kInt64, kFloat };

inline const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kFloat:
      return "FLOAT";
  }
  return "?";
}

inline int64_t DataTypeSize(DataType t) {
  switch (t) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
      return 8;
    case DataType::kFloat:
      return 4;
  }
  return 0;
}

/// A single constant of any supported type (used for literals and MinMax
/// block statistics).
struct Value {
  DataType type = DataType::kInt64;
  bool b = false;
  int64_t i = 0;
  float f = 0;

  static Value Bool(bool v) {
    Value out;
    out.type = DataType::kBool;
    out.b = v;
    return out;
  }
  static Value Int64(int64_t v) {
    Value out;
    out.type = DataType::kInt64;
    out.i = v;
    return out;
  }
  static Value Float(float v) {
    Value out;
    out.type = DataType::kFloat;
    out.f = v;
    return out;
  }

  /// Numeric view used by comparisons across int/float.
  double AsDouble() const {
    switch (type) {
      case DataType::kBool:
        return b ? 1 : 0;
      case DataType::kInt64:
        return static_cast<double>(i);
      case DataType::kFloat:
        return f;
    }
    return 0;
  }

  std::string ToString() const;
};

/// A named, typed column of a schema.
struct Field {
  std::string name;
  DataType type;
};

}  // namespace indbml::storage

#endif  // INDBML_STORAGE_TYPES_H_
