#ifndef INDBML_STORAGE_CSV_H_
#define INDBML_STORAGE_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace indbml::storage {

/// Options for CSV import.
struct CsvOptions {
  char separator = ',';
  bool has_header = true;
  /// Explicit column types; empty = infer from the first data row
  /// (integers -> BIGINT, everything else numeric -> FLOAT).
  std::vector<DataType> types;
};

/// Loads a CSV file into a finalized table. Column names come from the
/// header (or c0, c1, ... without one). Fails on ragged rows or
/// non-numeric cells (the engine is numeric-only).
Result<TablePtr> LoadCsv(const std::string& path, const std::string& table_name,
                         const CsvOptions& options);
Result<TablePtr> LoadCsv(const std::string& path, const std::string& table_name);

/// Writes a table as CSV (header + rows).
Status WriteCsv(const Table& table, const std::string& path, char separator = ',');

}  // namespace indbml::storage

#endif  // INDBML_STORAGE_CSV_H_
