#include "storage/table.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace indbml::storage {

std::string Value::ToString() const {
  switch (type) {
    case DataType::kBool:
      return b ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(i);
    case DataType::kFloat:
      return StrFormat("%g", static_cast<double>(f));
  }
  return "?";
}

Column& Column::operator=(const Column& other) {
  if (this == &other) return *this;
  type_ = other.type_;
  size_ = other.size_;
  buf_.reset();
  if (other.buf_ != nullptr && other.size_ > 0) {
    const int64_t bytes = other.size_ * DataTypeSize(type_);
    buf_ = Buffer::New(bytes);
    std::memcpy(buf_->data(), other.buf_->data(), static_cast<size_t>(bytes));
  }
  return *this;
}

void Column::EnsureCapacity(int64_t rows) {
  const int64_t elem = DataTypeSize(type_);
  const bool private_buf = buf_ != nullptr && buf_.use_count() == 1;
  if (private_buf && buf_->capacity() >= rows * elem) return;
  int64_t new_rows =
      std::max<int64_t>(rows, std::max<int64_t>(size_ * 2, int64_t{64}));
  BufferPtr fresh = Buffer::New(new_rows * elem);
  if (size_ > 0 && buf_ != nullptr) {
    std::memcpy(fresh->data(), buf_->data(),
                static_cast<size_t>(size_ * elem));
  }
  buf_ = std::move(fresh);
}

void Column::AppendValue(const Value& v) {
  switch (type_) {
    case DataType::kBool:
      AppendBool(v.b);
      return;
    case DataType::kInt64:
      AppendInt64(v.type == DataType::kFloat ? static_cast<int64_t>(v.f) : v.i);
      return;
    case DataType::kFloat:
      AppendFloat(v.type == DataType::kInt64 ? static_cast<float>(v.i) : v.f);
      return;
  }
}

Value Column::GetValue(int64_t row) const {
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(GetBool(row));
    case DataType::kInt64:
      return Value::Int64(GetInt64(row));
    case DataType::kFloat:
      return Value::Float(GetFloat(row));
  }
  return Value();
}

Table::Table(std::string name, std::vector<Field> fields)
    : name_(std::move(name)), fields_(std::move(fields)) {
  columns_.reserve(fields_.size());
  for (const Field& f : fields_) columns_.emplace_back(f.type);
}

Result<int> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return Status::NotFound("column '" + name + "' not in table '" + name_ + "'");
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != fields_.size()) {
    return Status::InvalidArgument(
        StrFormat("row width %zu does not match schema width %zu", values.size(),
                  fields_.size()));
  }
  if (finalized_) return Status::Internal("appending to a finalized table");
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i].AppendValue(values[i]);
  }
  ++num_rows_;
  return Status::OK();
}

void Table::Reserve(int64_t n) {
  for (auto& c : columns_) c.Reserve(num_rows_ + n);
}

void Table::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  num_rows_ = columns_.empty() ? 0 : columns_[0].size();
  stats_.assign(columns_.size(), {});
  for (size_t ci = 0; ci < columns_.size(); ++ci) {
    const Column& col = columns_[ci];
    int64_t blocks = num_blocks();
    stats_[ci].reserve(static_cast<size_t>(blocks));
    for (int64_t b = 0; b < blocks; ++b) {
      int64_t begin = b * rows_per_block_;
      int64_t end = std::min(begin + rows_per_block_, num_rows_);
      BlockStats bs;
      bs.min = col.GetValue(begin);
      bs.max = bs.min;
      for (int64_t r = begin + 1; r < end; ++r) {
        Value v = col.GetValue(r);
        if (v.AsDouble() < bs.min.AsDouble()) bs.min = v;
        if (v.AsDouble() > bs.max.AsDouble()) bs.max = v;
      }
      stats_[ci].push_back(bs);
    }
  }
}

std::vector<PartitionRange> Table::MakePartitions(int n) const {
  std::vector<PartitionRange> out;
  if (n <= 0) n = 1;
  int64_t per = (num_rows_ + n - 1) / n;
  for (int i = 0; i < n; ++i) {
    PartitionRange r;
    r.begin = std::min<int64_t>(static_cast<int64_t>(i) * per, num_rows_);
    r.end = std::min<int64_t>(r.begin + per, num_rows_);
    out.push_back(r);
  }
  return out;
}

int64_t Table::MemoryBytes() const {
  int64_t total = 0;
  for (const auto& c : columns_) total += c.MemoryBytes();
  return total;
}

Status Catalog::CreateTable(TablePtr table) {
  MutexLock lock(mu_);
  std::string key = ToLower(table->name());
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + table->name() + "' already exists");
  }
  tables_[key] = std::move(table);
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

void Catalog::CreateOrReplaceTable(TablePtr table) {
  MutexLock lock(mu_);
  tables_[ToLower(table->name())] = std::move(table);
  version_.fetch_add(1, std::memory_order_release);
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table '" + name + "' not found");
  return it->second;
}

Status Catalog::DropTable(const std::string& name) {
  MutexLock lock(mu_);
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("table '" + name + "' not found");
  }
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, v] : tables_) names.push_back(v->name());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace indbml::storage
