#include "mltosql/tree_to_sql.h"

#include "common/string_util.h"

namespace indbml::mltosql {

using nn::DecisionTree;
using storage::DataType;
using storage::Field;
using storage::Value;

Result<storage::TablePtr> TreeToSql::BuildTreeTable() const {
  auto table = std::make_shared<storage::Table>(
      table_name_, std::vector<Field>{{"node_id", DataType::kInt64},
                                      {"feature", DataType::kInt64},
                                      {"threshold", DataType::kFloat},
                                      {"left_child", DataType::kInt64},
                                      {"right_child", DataType::kInt64},
                                      {"value", DataType::kFloat}});
  const auto& nodes = tree_->nodes();
  table->Reserve(static_cast<int64_t>(nodes.size()));
  for (size_t i = 0; i < nodes.size(); ++i) {
    const DecisionTree::Node& n = nodes[i];
    INDBML_RETURN_NOT_OK(table->AppendRow(
        {Value::Int64(static_cast<int64_t>(i)),
         Value::Int64(n.is_leaf ? -1 : n.feature),
         Value::Float(n.threshold),
         Value::Int64(n.is_leaf ? -1 : n.left),
         Value::Int64(n.is_leaf ? -1 : n.right),
         Value::Float(n.value)}));
  }
  table->Finalize();
  table->SetSortedBy({"node_id"});
  return table;
}

Status TreeToSql::Deploy(sql::QueryEngine* engine) const {
  INDBML_ASSIGN_OR_RETURN(auto table, BuildTreeTable());
  engine->catalog()->CreateOrReplaceTable(std::move(table));
  return Status::OK();
}

Result<std::string> TreeToSql::GenerateInferenceSql(const FactTableInfo& fact) const {
  if (static_cast<int>(fact.input_columns.size()) != tree_->num_features()) {
    return Status::InvalidArgument(
        StrFormat("tree expects %d feature columns, fact table provides %zu",
                  tree_->num_features(), fact.input_columns.size()));
  }
  const int depth = tree_->depth();

  // Feature selection per node: CASE over the split feature index.
  std::string feature_value = "CASE";
  for (size_t f = 0; f < fact.input_columns.size(); ++f) {
    feature_value += StrFormat(" WHEN t.feature = %zu THEN d.%s", f,
                               fact.input_columns[f].c_str());
  }
  feature_value += " ELSE 0.0 END";

  // Level 0: every tuple starts at the root.
  std::string sql = StrFormat("SELECT d.%s AS id, 0 AS node FROM %s AS d",
                              fact.id_column.c_str(), fact.table.c_str());

  // One traversal step per level. Leaves keep the tuple in place
  // (left_child = -1 marks a leaf row).
  for (int level = 0; level < depth; ++level) {
    sql = StrFormat(
        "SELECT s.id AS id, "
        "CASE WHEN t.left_child = -1 THEN t.node_id "
        "WHEN (%s) < t.threshold THEN t.left_child "
        "ELSE t.right_child END AS node "
        "FROM (%s) AS s, %s AS t, %s AS d "
        "WHERE s.node = t.node_id AND s.id = d.%s",
        feature_value.c_str(), sql.c_str(), table_name_.c_str(), fact.table.c_str(),
        fact.id_column.c_str());
  }

  // Resolve the final node's value and attach payload columns.
  std::string payload;
  for (const std::string& c : fact.payload_columns) {
    payload += StrFormat(", f.%s AS %s", c.c_str(), c.c_str());
  }
  return StrFormat(
      "SELECT r.id AS id%s, t.value AS prediction "
      "FROM (%s) AS r, %s AS t, %s AS f "
      "WHERE r.node = t.node_id AND r.id = f.%s",
      payload.c_str(), sql.c_str(), table_name_.c_str(), fact.table.c_str(),
      fact.id_column.c_str());
}

Result<std::string> TreeToSql::GenerateCaseExpression(
    const std::vector<std::string>& feature_columns) const {
  if (static_cast<int>(feature_columns.size()) != tree_->num_features()) {
    return Status::InvalidArgument("feature column count mismatch");
  }
  // Recursive nested-CASE rendering.
  struct Renderer {
    const std::vector<DecisionTree::Node>& nodes;
    const std::vector<std::string>& columns;
    std::string Render(int32_t index) const {
      const DecisionTree::Node& n = nodes[static_cast<size_t>(index)];
      if (n.is_leaf) return StrFormat("%.9g", static_cast<double>(n.value));
      return StrFormat("CASE WHEN %s < %.9g THEN %s ELSE %s END",
                       columns[static_cast<size_t>(n.feature)].c_str(),
                       static_cast<double>(n.threshold), Render(n.left).c_str(),
                       Render(n.right).c_str());
    }
  };
  Renderer renderer{tree_->nodes(), feature_columns};
  return renderer.Render(0);
}

}  // namespace indbml::mltosql
