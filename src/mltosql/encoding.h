#ifndef INDBML_MLTOSQL_ENCODING_H_
#define INDBML_MLTOSQL_ENCODING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/query_engine.h"

namespace indbml::mltosql {

/// \file Data-encoding SQL generation.
///
/// The paper waives encoding "as basic approaches like Min-Max-Encoding or
/// One-Hot-Encoding can be implemented in SQL in a straight-forward way"
/// (§4). These helpers generate that straightforward SQL so an inference
/// pipeline can normalise features in-database before the ModelJoin.

/// One column's min/max statistics (from the table's zone maps).
struct ColumnRange {
  std::string column;
  double min = 0;
  double max = 0;
};

/// Reads min/max of the given float columns from the table's block
/// statistics (no scan needed).
Result<std::vector<ColumnRange>> ComputeRanges(
    const storage::Table& table, const std::vector<std::string>& columns);

/// Generates `SELECT id, (c - min) / (max - min) AS c, ... FROM t`
/// min-max-normalising the given columns; `passthrough` columns are copied
/// unchanged. Constant columns map to 0.
Result<std::string> GenerateMinMaxEncodingSql(
    const storage::Table& table, const std::string& id_column,
    const std::vector<std::string>& columns,
    const std::vector<std::string>& passthrough = {});

/// Generates `SELECT id, CASE WHEN c = v1 THEN 1.0 ELSE 0.0 END AS c_v1,
/// ... FROM t` one-hot-encoding an integer column over the given values.
std::string GenerateOneHotEncodingSql(const std::string& table,
                                      const std::string& id_column,
                                      const std::string& column,
                                      const std::vector<int64_t>& values);

}  // namespace indbml::mltosql

#endif  // INDBML_MLTOSQL_ENCODING_H_
