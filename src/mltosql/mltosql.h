#ifndef INDBML_MLTOSQL_MLTOSQL_H_
#define INDBML_MLTOSQL_MLTOSQL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/model.h"
#include "sql/query_engine.h"
#include "storage/table.h"

namespace indbml::mltosql {

/// Optimizations from paper §4.4, individually toggleable so the ablation
/// benchmark can quantify each.
struct MlToSqlOptions {
  /// Replace (Layer, Node) pairs with one globally unique node id assigned
  /// by graph traversal; the artificial input node gets id -1. Shrinks the
  /// model table (14 instead of 16 columns) and the join predicate.
  bool unique_node_ids = true;
  /// Emit node-range (unique ids) / layer (pair ids) filter predicates on
  /// the model side of every layer-forward join, enabling zone-map block
  /// pruning and smaller hash tables.
  bool range_filters = true;
  /// Physically sort the model table; combined with a fact table sorted on
  /// its unique id this lets the engine run the aggregations order-based
  /// (pipelined, low memory) instead of hash-based.
  bool sorted_model_table = true;
};

/// Which fact table the generated query runs against.
struct FactTableInfo {
  std::string table;
  std::string id_column = "id";
  /// Model input columns in model input order (for LSTM: time-step order).
  std::vector<std::string> input_columns;
  /// Extra columns to carry into the result via the final output join
  /// ("late projection", §4.2).
  std::vector<std::string> payload_columns;
};

/// \brief The ML-To-SQL framework (paper §4): converts a neural network
/// into the generic relational model representation and generates standard
/// SQL performing the ModelJoin as nested queries built from the four
/// function types of Table 1 (input / layer forward / activation / output).
///
/// \code
///   MlToSql framework(model, "iris_model");
///   INDBML_RETURN_NOT_OK(framework.Deploy(&engine));
///   INDBML_ASSIGN_OR_RETURN(std::string sql, framework.GenerateInferenceSql(fact));
///   auto result = engine.ExecuteQuery(sql);
/// \endcode
class MlToSql {
 public:
  MlToSql(const nn::Model* model, std::string model_table_name,
          MlToSqlOptions options = {});

  /// Builds the relational model representation (§4.1): one row per edge of
  /// the internal graph (Fig. 4) with the 12-element weight vector spread
  /// over typed columns. Rows are emitted sorted when the option is set.
  Result<storage::TablePtr> BuildModelTable() const;

  /// Registers the model table in the engine's catalog (replacing any
  /// previous version).
  Status Deploy(sql::QueryEngine* engine) const;

  /// Generates the nested inference query (Listing 1 structure). The result
  /// columns are the fact id, payload columns, and `prediction` /
  /// `prediction_<i>`.
  Result<std::string> GenerateInferenceSql(const FactTableInfo& fact) const;

  /// Portability demonstration: CREATE TABLE + INSERT statements that load
  /// the relational representation into any SQL database.
  Result<std::vector<std::string>> GenerateLoadStatements() const;

  const std::string& model_table_name() const { return table_name_; }
  const MlToSqlOptions& options() const { return options_; }

 private:
  struct LayerLayout {
    nn::LayerKind kind;
    int64_t graph_layer;  ///< layer number in the (Layer, Node) scheme
    int64_t first_node;   ///< first unique node id of this layer
    int64_t units;
  };

  /// Unique-node-id layout of the model graph (§4.4): input nodes first,
  /// then each layer's nodes consecutively.
  std::vector<LayerLayout> ComputeLayout() const;

  /// Model-side join condition for edges of layer `layout` arriving from
  /// `from` ("kernel" selects node_in = -1 edges of an LSTM).
  std::string EdgeFilter(const LayerLayout& layout, bool kernel_edges) const;

  // SQL builders for the four function types (§4.3).
  std::string InputFunctionSql(const FactTableInfo& fact,
                               const std::vector<LayerLayout>& layout) const;
  std::string DenseForwardSql(const std::string& input_sql,
                              const LayerLayout& layer) const;
  std::string ActivationSql(const std::string& input_sql,
                            nn::Activation activation) const;
  Result<std::string> LstmSql(const FactTableInfo& fact,
                              const std::vector<LayerLayout>& layout) const;
  Result<std::string> GruSql(const FactTableInfo& fact,
                             const std::vector<LayerLayout>& layout) const;
  std::string OutputFunctionSql(const std::string& inference_sql,
                                const FactTableInfo& fact,
                                const LayerLayout& last_layer) const;

  const nn::Model* model_;
  std::string table_name_;
  MlToSqlOptions options_;
};

}  // namespace indbml::mltosql

#endif  // INDBML_MLTOSQL_MLTOSQL_H_
