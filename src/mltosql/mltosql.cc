#include "mltosql/mltosql.h"

#include <algorithm>

#include "common/string_util.h"

namespace indbml::mltosql {

using nn::Activation;
using nn::LayerKind;
using storage::DataType;
using storage::Field;
using storage::Value;

namespace {

/// Names of the 12 weight columns (§4.1): kernel, recurrent kernel and bias
/// weights for the four LSTM gates; dense layers only use w_i / b_i.
const char* kWeightColumns[12] = {"w_i", "w_f", "w_c", "w_o", "u_i", "u_f",
                                  "u_c", "u_o", "b_i", "b_f", "b_c", "b_o"};

/// A model-table row under construction: identifiers + 12 weights.
struct EdgeRow {
  int64_t layer_in = -1;
  int64_t node_in = -1;
  int64_t layer = -1;
  int64_t node = -1;
  float w[12] = {0};
};

std::string FormatFloat(float v) {
  // Shortest representation that round-trips float32.
  return StrFormat("%.9g", static_cast<double>(v));
}

}  // namespace

MlToSql::MlToSql(const nn::Model* model, std::string model_table_name,
                 MlToSqlOptions options)
    : model_(model), table_name_(std::move(model_table_name)), options_(options) {}

std::vector<MlToSql::LayerLayout> MlToSql::ComputeLayout() const {
  std::vector<LayerLayout> layouts;
  const bool has_input_nodes =
      model_->layers().empty() || model_->layers()[0].kind == LayerKind::kDense;
  int64_t next_node = has_input_nodes ? model_->input_width() : 0;
  int64_t graph_layer = 1;
  for (const auto& layer : model_->layers()) {
    LayerLayout layout;
    layout.kind = layer.kind;
    layout.graph_layer = graph_layer++;
    layout.first_node = next_node;
    layout.units = layer.units();
    next_node += layout.units;
    layouts.push_back(layout);
  }
  return layouts;
}

Result<storage::TablePtr> MlToSql::BuildModelTable() const {
  std::vector<LayerLayout> layouts = ComputeLayout();
  std::vector<EdgeRow> rows;

  const bool dense_input =
      !model_->layers().empty() && model_->layers()[0].kind == LayerKind::kDense;
  if (dense_input) {
    // Artificial input node (-1) -> one input node per input column, each
    // edge with weight W_i = 1 (§4.3.1).
    for (int64_t i = 0; i < model_->input_width(); ++i) {
      EdgeRow row;
      row.layer_in = -1;
      row.node_in = -1;
      row.layer = 0;
      row.node = options_.unique_node_ids ? i : i;
      row.w[0] = 1.0f;
      rows.push_back(row);
    }
  }

  for (size_t li = 0; li < model_->layers().size(); ++li) {
    const nn::Layer& layer = model_->layers()[li];
    const LayerLayout& layout = layouts[li];
    // Unique id of node `a` in the previous graph layer.
    int64_t prev_first = li == 0 ? 0 : layouts[li - 1].first_node;
    int64_t prev_layer = layout.graph_layer - 1;

    if (layer.kind == LayerKind::kDense) {
      const nn::DenseLayer& dense = layer.dense;
      for (int64_t a = 0; a < dense.input_dim; ++a) {
        for (int64_t b = 0; b < dense.units; ++b) {
          EdgeRow row;
          row.layer_in = prev_layer;
          row.layer = layout.graph_layer;
          if (options_.unique_node_ids) {
            row.node_in = prev_first + a;
            row.node = layout.first_node + b;
          } else {
            row.node_in = a;
            row.node = b;
          }
          row.w[0] = dense.kernel.At(a, b);  // w_i
          row.w[8] = dense.bias[b];          // b_i
          rows.push_back(row);
        }
      }
    } else if (layer.kind == LayerKind::kGru) {
      // GRU gates occupy the i/f/c weight slots (update, reset, candidate).
      const nn::GruLayer& gru = layer.gru;
      for (int64_t a = 0; a < gru.input_dim; ++a) {
        for (int64_t b = 0; b < gru.units; ++b) {
          EdgeRow row;
          row.layer_in = -1;
          row.node_in = -1;
          row.layer = layout.graph_layer;
          row.node = options_.unique_node_ids ? layout.first_node + b : b;
          for (int g = 0; g < nn::kNumGruGates; ++g) {
            row.w[g] = gru.kernel[g].At(a, b);
            row.w[8 + g] = gru.bias[g][b];
          }
          rows.push_back(row);
        }
      }
      for (int64_t j = 0; j < gru.units; ++j) {
        for (int64_t k = 0; k < gru.units; ++k) {
          EdgeRow row;
          row.layer_in = layout.graph_layer;
          row.layer = layout.graph_layer;
          if (options_.unique_node_ids) {
            row.node_in = layout.first_node + j;
            row.node = layout.first_node + k;
          } else {
            row.node_in = j;
            row.node = k;
          }
          for (int g = 0; g < nn::kNumGruGates; ++g) {
            row.w[4 + g] = gru.recurrent[g].At(j, k);
          }
          rows.push_back(row);
        }
      }
    } else {
      const nn::LstmLayer& lstm = layer.lstm;
      // Kernel edges: artificial input (-1) -> unit, one row per
      // (feature, unit); biases ride on the kernel edges.
      for (int64_t a = 0; a < lstm.input_dim; ++a) {
        for (int64_t b = 0; b < lstm.units; ++b) {
          EdgeRow row;
          row.layer_in = -1;
          row.node_in = -1;
          row.layer = layout.graph_layer;
          row.node = options_.unique_node_ids ? layout.first_node + b : b;
          for (int g = 0; g < nn::kNumGates; ++g) {
            row.w[g] = lstm.kernel[g].At(a, b);
            row.w[8 + g] = lstm.bias[g][b];
          }
          rows.push_back(row);
        }
      }
      // Recurrent kernel edges: unit j -> unit k (stored once although the
      // computation replays them per time step, §4.3.3).
      for (int64_t j = 0; j < lstm.units; ++j) {
        for (int64_t k = 0; k < lstm.units; ++k) {
          EdgeRow row;
          row.layer_in = layout.graph_layer;
          row.layer = layout.graph_layer;
          if (options_.unique_node_ids) {
            row.node_in = layout.first_node + j;
            row.node = layout.first_node + k;
          } else {
            row.node_in = j;
            row.node = k;
          }
          for (int g = 0; g < nn::kNumGates; ++g) {
            row.w[4 + g] = lstm.recurrent[g].At(j, k);
          }
          rows.push_back(row);
        }
      }
    }
  }

  if (options_.sorted_model_table) {
    std::sort(rows.begin(), rows.end(), [](const EdgeRow& a, const EdgeRow& b) {
      if (a.layer != b.layer) return a.layer < b.layer;
      if (a.node != b.node) return a.node < b.node;
      return a.node_in < b.node_in;
    });
  }

  std::vector<Field> fields;
  if (!options_.unique_node_ids) {
    fields.push_back({"layer_in", DataType::kInt64});
  }
  fields.push_back({"node_in", DataType::kInt64});
  if (!options_.unique_node_ids) {
    fields.push_back({"layer", DataType::kInt64});
  }
  fields.push_back({"node", DataType::kInt64});
  for (const char* name : kWeightColumns) {
    fields.push_back({name, DataType::kFloat});
  }
  auto table = std::make_shared<storage::Table>(table_name_, fields);
  table->Reserve(static_cast<int64_t>(rows.size()));
  for (const EdgeRow& row : rows) {
    std::vector<Value> values;
    values.reserve(fields.size());
    if (!options_.unique_node_ids) values.push_back(Value::Int64(row.layer_in));
    values.push_back(Value::Int64(row.node_in));
    if (!options_.unique_node_ids) values.push_back(Value::Int64(row.layer));
    values.push_back(Value::Int64(row.node));
    for (float w : row.w) values.push_back(Value::Float(w));
    INDBML_RETURN_NOT_OK(table->AppendRow(values));
  }
  table->Finalize();
  if (options_.sorted_model_table) {
    table->SetSortedBy(options_.unique_node_ids
                           ? std::vector<std::string>{"node", "node_in"}
                           : std::vector<std::string>{"layer", "node", "node_in"});
  }
  return table;
}

Status MlToSql::Deploy(sql::QueryEngine* engine) const {
  INDBML_ASSIGN_OR_RETURN(auto table, BuildModelTable());
  engine->catalog()->CreateOrReplaceTable(std::move(table));
  return Status::OK();
}

std::string MlToSql::EdgeFilter(const LayerLayout& layout, bool kernel_edges) const {
  // The correctness-critical part of the predicate is node_in (-1 for
  // kernel/input edges); layer / node-range filters narrow the model scan
  // (§4.4) and are required whenever node_in ranges collide (LSTM models).
  bool need_filter =
      options_.range_filters || model_->layers()[0].kind != LayerKind::kDense;
  if (!need_filter) return "";
  if (options_.unique_node_ids) {
    int64_t lo = layout.first_node;
    int64_t hi = layout.first_node + layout.units - 1;
    return StrFormat(" AND m.node >= %lld AND m.node <= %lld",
                     static_cast<long long>(lo), static_cast<long long>(hi));
  }
  (void)kernel_edges;
  return StrFormat(" AND m.layer = %lld",
                   static_cast<long long>(layout.graph_layer));
}

std::string MlToSql::InputFunctionSql(const FactTableInfo& fact,
                                      const std::vector<LayerLayout>& layout) const {
  // Dense input function (Listing 3): cross join the fact table with the
  // artificial-input edges, rename the input columns generically and select
  // the i-th column for node i via CASE.
  const int64_t n = model_->input_width();
  std::string inner_cols;
  for (int64_t i = 0; i < n; ++i) {
    inner_cols += StrFormat(", d.%s AS c%lld", fact.input_columns[i].c_str(),
                            static_cast<long long>(i));
  }
  std::string filter = "m.node_in = -1";
  if (options_.range_filters) {
    if (options_.unique_node_ids) {
      filter += StrFormat(" AND m.node <= %lld", static_cast<long long>(n - 1));
    } else {
      filter += " AND m.layer = 0";
    }
  }
  std::string layer_col = options_.unique_node_ids ? "" : "layer, ";
  std::string inner_layer = options_.unique_node_ids ? "" : "m.layer AS layer, ";

  std::string cases;
  for (int64_t i = 0; i < n; ++i) {
    cases += StrFormat(" WHEN node = %lld THEN c%lld", static_cast<long long>(i),
                       static_cast<long long>(i));
  }
  (void)layout;
  return StrFormat(
      "SELECT id, %snode, CASE%s ELSE 0.0 END AS output_activated FROM "
      "(SELECT d.%s AS id, %sm.node AS node%s FROM %s AS d, %s AS m WHERE %s) AS t",
      layer_col.c_str(), cases.c_str(), fact.id_column.c_str(), inner_layer.c_str(),
      inner_cols.c_str(), fact.table.c_str(), table_name_.c_str(), filter.c_str());
}

std::string MlToSql::DenseForwardSql(const std::string& input_sql,
                                     const LayerLayout& layer) const {
  // Layer forward function for dense layers (Listing 4): join the
  // intermediate result with the model on the edge identifiers, multiply
  // with the kernel weights, aggregate per (tuple, node) and add the bias.
  std::string join_cond;
  std::string layer_sel;
  std::string layer_group;
  std::string layer_out;
  if (options_.unique_node_ids) {
    join_cond = "input.node = m.node_in";
  } else {
    join_cond = "input.node = m.node_in AND input.layer = m.layer_in";
    layer_sel = "m.layer AS layer, ";
    layer_group = ", m.layer";
    layer_out = "layer, ";
  }
  join_cond += EdgeFilter(layer, /*kernel_edges=*/false);
  return StrFormat(
      "SELECT id, %snode, s + bias AS output FROM "
      "(SELECT input.id AS id, %sm.node AS node, "
      "SUM(input.output_activated * m.w_i) AS s, m.b_i AS bias "
      "FROM (%s) AS input, %s AS m WHERE %s "
      "GROUP BY input.id%s, m.node, m.b_i) AS t",
      layer_out.c_str(), layer_sel.c_str(), input_sql.c_str(), table_name_.c_str(),
      join_cond.c_str(), layer_group.c_str());
}

std::string MlToSql::ActivationSql(const std::string& input_sql,
                                   Activation activation) const {
  // Activation function (§4.3.5): projection applying the scalar function.
  std::string layer_col = options_.unique_node_ids ? "" : "layer, ";
  const char* fn = nullptr;
  switch (activation) {
    case Activation::kLinear:
      return StrFormat("SELECT id, %snode, output AS output_activated FROM (%s) AS a",
                       layer_col.c_str(), input_sql.c_str());
    case Activation::kRelu:
      fn = "relu";
      break;
    case Activation::kSigmoid:
      fn = "sigmoid";
      break;
    case Activation::kTanh:
      fn = "tanh";
      break;
  }
  return StrFormat("SELECT id, %snode, %s(output) AS output_activated FROM (%s) AS a",
                   layer_col.c_str(), fn, input_sql.c_str());
}

Result<std::string> MlToSql::LstmSql(const FactTableInfo& fact,
                                     const std::vector<LayerLayout>& layout) const {
  const nn::LstmLayer& lstm = model_->layers()[0].lstm;
  if (lstm.input_dim != 1) {
    return Status::NotImplemented(
        "ML-To-SQL supports univariate LSTM input (one feature per time step)");
  }
  const LayerLayout& ll = layout[0];
  const int64_t timesteps = model_->timesteps();

  // Kernel part of step t: cross join of the fact table with the kernel
  // edges (node_in = -1); z_g = x_t * W_g + b_g per gate. With one feature
  // per step each unit has exactly one kernel edge, so no aggregation is
  // needed here.
  auto kernel_sql = [&](int64_t t) {
    std::string filter = "m.node_in = -1";
    filter += EdgeFilter(ll, /*kernel_edges=*/true);
    const char* x = fact.input_columns[static_cast<size_t>(t)].c_str();
    return StrFormat(
        "SELECT d.%s AS id, m.node AS node, "
        "d.%s * m.w_i + m.b_i AS zi, d.%s * m.w_f + m.b_f AS zf, "
        "d.%s * m.w_c + m.b_c AS zc, d.%s * m.w_o + m.b_o AS zo "
        "FROM %s AS d, %s AS m WHERE %s",
        fact.id_column.c_str(), x, x, x, x, fact.table.c_str(), table_name_.c_str(),
        filter.c_str());
  };

  // H_1 from the kernel part only (initial cell state is zero).
  std::string h = StrFormat(
      "SELECT id, node, sigmoid(zi) * tanh(zc) AS c, "
      "sigmoid(zo) * tanh(sigmoid(zi) * tanh(zc)) AS h FROM (%s) AS k",
      kernel_sql(0).c_str());

  // Steps 2..T: combine the kernel part with the recurrent part computed
  // from H_{t-1} joined to the recurrent-kernel edges. The previous cell
  // state is smuggled through the same aggregation via a CASE that matches
  // the diagonal (p.node = m.node), so H_{t-1} is referenced exactly once
  // per step and nesting depth stays linear in the number of time steps.
  for (int64_t t = 1; t < timesteps; ++t) {
    std::string rec_join = "p.node = m.node_in";
    rec_join += EdgeFilter(ll, /*kernel_edges=*/false);
    std::string recurrent = StrFormat(
        "SELECT p.id AS id, m.node AS node, "
        "SUM(p.h * m.u_i) AS ri, SUM(p.h * m.u_f) AS rf, "
        "SUM(p.h * m.u_c) AS rc, SUM(p.h * m.u_o) AS ro, "
        "SUM(CASE WHEN p.node = m.node THEN p.c ELSE 0.0 END) AS c_prev "
        "FROM (%s) AS p, %s AS m WHERE %s GROUP BY p.id, m.node",
        h.c_str(), table_name_.c_str(), rec_join.c_str());
    std::string combined = StrFormat(
        "SELECT k.id AS id, k.node AS node, "
        "k.zi + r.ri AS zi, k.zf + r.rf AS zf, k.zc + r.rc AS zc, "
        "k.zo + r.ro AS zo, r.c_prev AS c_prev "
        "FROM (%s) AS k, (%s) AS r WHERE k.id = r.id AND k.node = r.node",
        kernel_sql(t).c_str(), recurrent.c_str());
    h = StrFormat(
        "SELECT id, node, "
        "sigmoid(zi) * tanh(zc) + sigmoid(zf) * c_prev AS c, "
        "sigmoid(zo) * tanh(sigmoid(zi) * tanh(zc) + sigmoid(zf) * c_prev) AS h "
        "FROM (%s) AS g",
        combined.c_str());
  }

  // Adapt H_T to the layer-forward interface: h is the activated output.
  if (options_.unique_node_ids) {
    return StrFormat("SELECT id, node, h AS output_activated FROM (%s) AS ht",
                     h.c_str());
  }
  return StrFormat("SELECT id, %lld AS layer, node, h AS output_activated "
                   "FROM (%s) AS ht",
                   static_cast<long long>(ll.graph_layer), h.c_str());
}


Result<std::string> MlToSql::GruSql(const FactTableInfo& fact,
                                    const std::vector<LayerLayout>& layout) const {
  const nn::GruLayer& gru = model_->layers()[0].gru;
  if (gru.input_dim != 1) {
    return Status::NotImplemented(
        "ML-To-SQL supports univariate GRU input (one feature per time step)");
  }
  const LayerLayout& ll = layout[0];
  const int64_t timesteps = model_->timesteps();

  // Kernel part of step t: z/r/candidate pre-activations from the input
  // column (GRU gates live in the i/f/c weight slots).
  auto kernel_sql = [&](int64_t t) {
    std::string filter = "m.node_in = -1";
    filter += EdgeFilter(ll, /*kernel_edges=*/true);
    const char* x = fact.input_columns[static_cast<size_t>(t)].c_str();
    return StrFormat(
        "SELECT d.%s AS id, m.node AS node, "
        "d.%s * m.w_i + m.b_i AS kz, d.%s * m.w_f + m.b_f AS kr, "
        "d.%s * m.w_c + m.b_c AS kh "
        "FROM %s AS d, %s AS m WHERE %s",
        fact.id_column.c_str(), x, x, x, fact.table.c_str(), table_name_.c_str(),
        filter.c_str());
  };

  // H_1: zero initial state — h = (1 - sigmoid(kz)) * tanh(kh).
  std::string h = StrFormat(
      "SELECT id, node, (1.0 - sigmoid(kz)) * tanh(kh) AS h FROM (%s) AS k",
      kernel_sql(0).c_str());

  // Steps 2..T need two aggregation rounds: the update/reset recurrent sums
  // first, then the candidate sum over the reset-scaled state. The previous
  // state rides along via the diagonal-CASE trick, so nesting stays linear.
  for (int64_t t = 1; t < timesteps; ++t) {
    std::string rec_join = "p.node = m.node_in";
    rec_join += EdgeFilter(ll, /*kernel_edges=*/false);
    std::string r1 = StrFormat(
        "SELECT p.id AS id, m.node AS node, "
        "SUM(p.h * m.u_i) AS rz, SUM(p.h * m.u_f) AS rr, "
        "SUM(CASE WHEN p.node = m.node THEN p.h ELSE 0.0 END) AS hp "
        "FROM (%s) AS p, %s AS m WHERE %s GROUP BY p.id, m.node",
        h.c_str(), table_name_.c_str(), rec_join.c_str());
    std::string gates = StrFormat(
        "SELECT k.id AS id, k.node AS node, sigmoid(k.kz + r1.rz) AS z, "
        "sigmoid(k.kr + r1.rr) * r1.hp AS rh, k.kh AS kh, r1.hp AS hp "
        "FROM (%s) AS k, (%s) AS r1 WHERE k.id = r1.id AND k.node = r1.node",
        kernel_sql(t).c_str(), r1.c_str());
    std::string a_join = "a.node = m.node_in";
    a_join += EdgeFilter(ll, /*kernel_edges=*/false);
    std::string r2 = StrFormat(
        "SELECT a.id AS id, m.node AS node, SUM(a.rh * m.u_c) AS ch, "
        "SUM(CASE WHEN a.node = m.node THEN a.z ELSE 0.0 END) AS z, "
        "SUM(CASE WHEN a.node = m.node THEN a.kh ELSE 0.0 END) AS kh, "
        "SUM(CASE WHEN a.node = m.node THEN a.hp ELSE 0.0 END) AS hp "
        "FROM (%s) AS a, %s AS m WHERE %s GROUP BY a.id, m.node",
        gates.c_str(), table_name_.c_str(), a_join.c_str());
    h = StrFormat(
        "SELECT id, node, z * hp + (1.0 - z) * tanh(kh + ch) AS h FROM (%s) AS g",
        r2.c_str());
  }

  if (options_.unique_node_ids) {
    return StrFormat("SELECT id, node, h AS output_activated FROM (%s) AS ht",
                     h.c_str());
  }
  return StrFormat("SELECT id, %lld AS layer, node, h AS output_activated "
                   "FROM (%s) AS ht",
                   static_cast<long long>(ll.graph_layer), h.c_str());
}

std::string MlToSql::OutputFunctionSql(const std::string& inference_sql,
                                       const FactTableInfo& fact,
                                       const LayerLayout& last_layer) const {
  // Output function (§4.3.4): join the inference result back to the fact
  // table on the unique id ("late projection" of payload columns).
  std::string fact_cols = StrFormat("f.%s AS %s", fact.id_column.c_str(),
                                    fact.id_column.c_str());
  for (const std::string& c : fact.payload_columns) {
    fact_cols += StrFormat(", f.%s AS %s", c.c_str(), c.c_str());
  }
  if (last_layer.units == 1) {
    return StrFormat(
        "SELECT %s, r.output_activated AS prediction "
        "FROM (%s) AS r, %s AS f WHERE r.id = f.%s",
        fact_cols.c_str(), inference_sql.c_str(), fact.table.c_str(),
        fact.id_column.c_str());
  }
  // Multi-output: pivot the (id, node, value) rows into one column per
  // output node, then attach the payload.
  std::string pivots;
  for (int64_t j = 0; j < last_layer.units; ++j) {
    int64_t node = options_.unique_node_ids ? last_layer.first_node + j : j;
    pivots += StrFormat(
        ", SUM(CASE WHEN node = %lld THEN output_activated ELSE 0.0 END) "
        "AS prediction_%lld",
        static_cast<long long>(node), static_cast<long long>(j));
  }
  std::string pivot_sql =
      StrFormat("SELECT id%s FROM (%s) AS r GROUP BY id", pivots.c_str(),
                inference_sql.c_str());
  return StrFormat("SELECT %s%s FROM (%s) AS r, %s AS f WHERE r.id = f.%s",
                   fact_cols.c_str(),
                   [&] {
                     std::string preds;
                     for (int64_t j = 0; j < last_layer.units; ++j) {
                       preds += StrFormat(", r.prediction_%lld AS prediction_%lld",
                                          static_cast<long long>(j),
                                          static_cast<long long>(j));
                     }
                     return preds;
                   }()
                       .c_str(),
                   pivot_sql.c_str(), fact.table.c_str(), fact.id_column.c_str());
}

Result<std::string> MlToSql::GenerateInferenceSql(const FactTableInfo& fact) const {
  if (model_->layers().empty()) {
    return Status::InvalidArgument("model has no layers");
  }
  if (static_cast<int64_t>(fact.input_columns.size()) != model_->input_width()) {
    return Status::InvalidArgument(StrFormat(
        "fact table provides %zu input columns, model expects %lld",
        fact.input_columns.size(), static_cast<long long>(model_->input_width())));
  }
  std::vector<LayerLayout> layouts = ComputeLayout();

  std::string sql;
  size_t first_dense = 0;
  if (model_->layers()[0].kind == LayerKind::kLstm) {
    INDBML_ASSIGN_OR_RETURN(sql, LstmSql(fact, layouts));
    first_dense = 1;
  } else if (model_->layers()[0].kind == LayerKind::kGru) {
    INDBML_ASSIGN_OR_RETURN(sql, GruSql(fact, layouts));
    first_dense = 1;
  } else {
    sql = InputFunctionSql(fact, layouts);
  }
  for (size_t li = first_dense; li < model_->layers().size(); ++li) {
    if (model_->layers()[li].kind != LayerKind::kDense) {
      return Status::NotImplemented(
          "recurrent layers are only supported as the first layer");
    }
    sql = DenseForwardSql(sql, layouts[li]);
    sql = ActivationSql(sql, model_->layers()[li].dense.activation);
  }
  return OutputFunctionSql(sql, fact, layouts.back());
}

Result<std::vector<std::string>> MlToSql::GenerateLoadStatements() const {
  INDBML_ASSIGN_OR_RETURN(auto table, BuildModelTable());
  std::vector<std::string> statements;

  std::string create = "CREATE TABLE " + table_name_ + " (";
  for (int i = 0; i < table->num_columns(); ++i) {
    if (i) create += ", ";
    const Field& f = table->fields()[static_cast<size_t>(i)];
    create += f.name + " ";
    create += f.type == DataType::kInt64 ? "BIGINT" : "REAL";
  }
  create += ");";
  statements.push_back(create);

  for (int64_t r = 0; r < table->num_rows(); ++r) {
    std::string insert = "INSERT INTO " + table_name_ + " VALUES (";
    for (int c = 0; c < table->num_columns(); ++c) {
      if (c) insert += ", ";
      Value v = table->column(c).GetValue(r);
      insert += v.type == DataType::kInt64 ? std::to_string(v.i) : FormatFloat(v.f);
    }
    insert += ");";
    statements.push_back(insert);
  }
  return statements;
}

}  // namespace indbml::mltosql
