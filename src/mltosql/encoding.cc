#include "mltosql/encoding.h"

#include <algorithm>

#include "common/string_util.h"

namespace indbml::mltosql {

Result<std::vector<ColumnRange>> ComputeRanges(
    const storage::Table& table, const std::vector<std::string>& columns) {
  if (!table.finalized()) {
    return Status::InvalidArgument("table must be finalized for range statistics");
  }
  std::vector<ColumnRange> ranges;
  for (const std::string& name : columns) {
    INDBML_ASSIGN_OR_RETURN(int col, table.ColumnIndex(name));
    ColumnRange range;
    range.column = name;
    const auto& stats = table.block_stats(col);
    if (stats.empty()) {
      return Status::InvalidArgument("table has no rows");
    }
    range.min = stats[0].min.AsDouble();
    range.max = stats[0].max.AsDouble();
    for (const auto& block : stats) {
      range.min = std::min(range.min, block.min.AsDouble());
      range.max = std::max(range.max, block.max.AsDouble());
    }
    ranges.push_back(range);
  }
  return ranges;
}

Result<std::string> GenerateMinMaxEncodingSql(
    const storage::Table& table, const std::string& id_column,
    const std::vector<std::string>& columns,
    const std::vector<std::string>& passthrough) {
  INDBML_ASSIGN_OR_RETURN(auto ranges, ComputeRanges(table, columns));
  std::string sql = "SELECT " + id_column + " AS " + id_column;
  for (const ColumnRange& r : ranges) {
    double span = r.max - r.min;
    if (span == 0) {
      sql += StrFormat(", 0.0 AS %s", r.column.c_str());
    } else {
      sql += StrFormat(", (%s - %.9g) / %.9g AS %s", r.column.c_str(), r.min, span,
                       r.column.c_str());
    }
  }
  for (const std::string& p : passthrough) {
    sql += StrFormat(", %s AS %s", p.c_str(), p.c_str());
  }
  sql += " FROM " + table.name();
  return sql;
}

std::string GenerateOneHotEncodingSql(const std::string& table,
                                      const std::string& id_column,
                                      const std::string& column,
                                      const std::vector<int64_t>& values) {
  std::string sql = "SELECT " + id_column + " AS " + id_column;
  for (int64_t v : values) {
    sql += StrFormat(", CASE WHEN %s = %lld THEN 1.0 ELSE 0.0 END AS %s_%lld",
                     column.c_str(), static_cast<long long>(v), column.c_str(),
                     static_cast<long long>(v));
  }
  sql += " FROM " + table;
  return sql;
}

}  // namespace indbml::mltosql
