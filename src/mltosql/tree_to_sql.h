#ifndef INDBML_MLTOSQL_TREE_TO_SQL_H_
#define INDBML_MLTOSQL_TREE_TO_SQL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "mltosql/mltosql.h"
#include "nn/decision_tree.h"

namespace indbml::mltosql {

/// \brief Decision trees through the ML-To-SQL building blocks.
///
/// The paper (§4) notes that the relational-representation + generated-SQL
/// approach "is also applicable for the existing approaches for decision
/// trees or classifiers" [33]. This class provides both established
/// encodings:
///
/// 1. **Relational traversal** (`GenerateInferenceSql`): the tree lives in a
///    node table `(node_id, feature, threshold, left_child, right_child,
///    value)`; the query unrolls one self-join per tree level, with leaves
///    absorbing further levels (left_child = -1 keeps the tuple on its
///    leaf). No aggregation is needed — predictions arrive after
///    `depth` joins.
/// 2. **Pure expression** (`GenerateCaseExpression`): a nested CASE WHEN
///    translation (the MASQ-style encoding), usable inside any SELECT list.
class TreeToSql {
 public:
  TreeToSql(const nn::DecisionTree* tree, std::string table_name)
      : tree_(tree), table_name_(std::move(table_name)) {}

  /// Builds the node table (sorted by node_id).
  Result<storage::TablePtr> BuildTreeTable() const;

  /// Registers the node table in the engine's catalog.
  Status Deploy(sql::QueryEngine* engine) const;

  /// Generates the relational-traversal inference query: one row per fact
  /// tuple with columns (id, payload..., prediction).
  Result<std::string> GenerateInferenceSql(const FactTableInfo& fact) const;

  /// Generates a standalone nested-CASE expression over the given column
  /// names (fact.input_columns order = tree feature order).
  Result<std::string> GenerateCaseExpression(
      const std::vector<std::string>& feature_columns) const;

 private:
  const nn::DecisionTree* tree_;
  std::string table_name_;
};

}  // namespace indbml::mltosql

#endif  // INDBML_MLTOSQL_TREE_TO_SQL_H_
