#include "mlruntime/trt_c_api.h"

#include <string>

#include "mlruntime/runtime.h"
#include "nn/model.h"

namespace {

thread_local std::string g_last_error;

trt_status Fail(trt_status code, const std::string& message) {
  g_last_error = message;
  return code;
}

}  // namespace

/// Opaque handle wrapping a C++ session.
struct trt_session {
  std::unique_ptr<indbml::mlruntime::Session> session;
};

extern "C" {

trt_status trt_session_create(const char* model_path, const char* device,
                              trt_session** out) {
  if (model_path == nullptr || out == nullptr) {
    return Fail(TRT_INVALID_ARGUMENT, "null argument");
  }
  auto model = indbml::nn::Model::LoadFromFile(model_path);
  if (!model.ok()) return Fail(TRT_RUNTIME_ERROR, model.status().ToString());
  auto session = indbml::mlruntime::Session::Create(
      *model, device != nullptr ? device : "cpu");
  if (!session.ok()) return Fail(TRT_RUNTIME_ERROR, session.status().ToString());
  *out = new trt_session{std::move(session).ValueOrDie()};
  g_last_error.clear();
  return TRT_OK;
}

trt_status trt_session_create_from_buffer(const void* data, size_t size,
                                          const char* device, trt_session** out) {
  if (data == nullptr || out == nullptr) {
    return Fail(TRT_INVALID_ARGUMENT, "null argument");
  }
  auto model = indbml::nn::Model::LoadFromBytes(
      static_cast<const uint8_t*>(data), size);
  if (!model.ok()) return Fail(TRT_RUNTIME_ERROR, model.status().ToString());
  auto session = indbml::mlruntime::Session::Create(
      *model, device != nullptr ? device : "cpu");
  if (!session.ok()) return Fail(TRT_RUNTIME_ERROR, session.status().ToString());
  *out = new trt_session{std::move(session).ValueOrDie()};
  g_last_error.clear();
  return TRT_OK;
}

trt_status trt_session_run(trt_session* session, const float* input, int64_t n,
                           float* output) {
  if (session == nullptr || input == nullptr || output == nullptr) {
    return Fail(TRT_INVALID_ARGUMENT, "null argument");
  }
  indbml::Status status = session->session->Run(input, n, output);
  if (!status.ok()) return Fail(TRT_RUNTIME_ERROR, status.ToString());
  return TRT_OK;
}

int64_t trt_session_input_width(const trt_session* session) {
  return session != nullptr ? session->session->input_width() : -1;
}

int64_t trt_session_output_dim(const trt_session* session) {
  return session != nullptr ? session->session->output_dim() : -1;
}

int64_t trt_session_memory_bytes(const trt_session* session) {
  return session != nullptr ? session->session->MemoryBytes() : 0;
}

void trt_session_destroy(trt_session* session) { delete session; }

const char* trt_last_error(void) { return g_last_error.c_str(); }

}  // extern "C"
