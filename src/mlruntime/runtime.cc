#include "mlruntime/runtime.h"

#include "nn/model_meta.h"

#include <algorithm>
#include <cstring>

namespace indbml::mlruntime {

using nn::LayerKind;

namespace {

device::Device* DefaultRuntimeDevice(const std::string& name) {
  return (name == "gpu" || name == "simgpu") ? device::SharedSimGpuDevice()
                                             : device::SharedCpuDevice();
}

}  // namespace

/// Weights live on the runtime's device in ROW-MAJOR [input x units] layout
/// (the runtime's native format). Scratch grows to the largest batch seen.
struct Session::Impl {
  device::Device* device = nullptr;
  nn::ModelMeta meta;

  struct LayerW {
    float* w[nn::kNumGates] = {nullptr, nullptr, nullptr, nullptr};
    float* u[nn::kNumGates] = {nullptr, nullptr, nullptr, nullptr};
    float* bias[nn::kNumGates] = {nullptr, nullptr, nullptr, nullptr};
    int64_t w_size = 0;
    int64_t u_size = 0;
    int64_t bias_size = 0;
  };
  std::vector<LayerW> layers;

  int64_t max_units = 1;
  int64_t capacity = 0;  ///< rows of scratch currently allocated
  float* ping = nullptr;
  float* pong = nullptr;
  float* x_dev = nullptr;  ///< device copy of the caller's input
  int64_t x_capacity = 0;
  float* z[nn::kNumGates] = {nullptr, nullptr, nullptr, nullptr};
  float* h = nullptr;
  float* c = nullptr;
  float* tmp = nullptr;
  bool has_lstm = false;
  int64_t weight_bytes = 0;

  ~Impl() {
    for (auto& layer : layers) {
      for (int g = 0; g < nn::kNumGates; ++g) {
        if (layer.w[g]) device->Free(layer.w[g], layer.w_size);
        if (layer.u[g]) device->Free(layer.u[g], layer.u_size);
        if (layer.bias[g]) device->Free(layer.bias[g], layer.bias_size);
      }
    }
    FreeScratch();
  }

  void FreeScratch() {
    if (capacity > 0) {
      device->Free(ping, capacity * max_units);
      device->Free(pong, capacity * max_units);
      if (has_lstm) {
        for (auto& g : z) device->Free(g, capacity * max_units);
        device->Free(h, capacity * max_units);
        device->Free(c, capacity * max_units);
        device->Free(tmp, capacity * max_units);
      }
      capacity = 0;
    }
    if (x_capacity > 0) {
      device->Free(x_dev, x_capacity);
      x_capacity = 0;
    }
  }

  void EnsureCapacity(int64_t n) {
    if (n <= capacity) return;
    FreeScratch();
    capacity = std::max<int64_t>(n, 1024);
    ping = device->Allocate(capacity * max_units);
    pong = device->Allocate(capacity * max_units);
    if (has_lstm) {
      for (auto& g : z) g = device->Allocate(capacity * max_units);
      h = device->Allocate(capacity * max_units);
      c = device->Allocate(capacity * max_units);
      tmp = device->Allocate(capacity * max_units);
    }
  }

  void EnsureInputCapacity(int64_t count) {
    if (count <= x_capacity) return;
    if (x_capacity > 0) device->Free(x_dev, x_capacity);
    x_capacity = count;
    x_dev = device->Allocate(x_capacity);
  }

};

Session::Session() : impl_(std::make_unique<Impl>()) {}
Session::~Session() = default;

Result<std::unique_ptr<Session>> Session::Create(const nn::Model& model,
                                                 const std::string& device_name,
                                                 device::Device* device) {
  auto session = std::unique_ptr<Session>(new Session());
  Impl& impl = *session->impl_;
  impl.device = device != nullptr ? device : DefaultRuntimeDevice(device_name);
  impl.meta = nn::MetaOf(model, "session");

  for (const nn::Layer& layer : model.layers()) {
    Impl::LayerW w;
    impl.max_units = std::max(impl.max_units, layer.units());
    if (layer.kind == LayerKind::kDense) {
      w.w_size = layer.dense.kernel.size();
      w.w[0] = impl.device->Allocate(w.w_size);
      impl.device->CopyToDevice(w.w[0], layer.dense.kernel.data(), w.w_size);
      w.bias_size = layer.dense.bias.size();
      w.bias[0] = impl.device->Allocate(w.bias_size);
      impl.device->CopyToDevice(w.bias[0], layer.dense.bias.data(), w.bias_size);
      impl.weight_bytes += (w.w_size + w.bias_size) * 4;
    } else if (layer.kind == LayerKind::kLstm) {
      impl.has_lstm = true;
      if (layer.lstm.input_dim < 1) {
        return Status::InvalidArgument("LSTM layer without input features");
      }
      w.w_size = layer.lstm.kernel[0].size();
      w.u_size = layer.lstm.recurrent[0].size();
      for (int g = 0; g < nn::kNumGates; ++g) {
        w.w[g] = impl.device->Allocate(w.w_size);
        impl.device->CopyToDevice(w.w[g], layer.lstm.kernel[g].data(), w.w_size);
        w.u[g] = impl.device->Allocate(w.u_size);
        impl.device->CopyToDevice(w.u[g], layer.lstm.recurrent[g].data(), w.u_size);
        w.bias_size = layer.lstm.bias[g].size();
        w.bias[g] = impl.device->Allocate(w.bias_size);
        impl.device->CopyToDevice(w.bias[g], layer.lstm.bias[g].data(), w.bias_size);
        impl.weight_bytes += (w.w_size + w.u_size + w.bias_size) * 4;
      }
    } else {
      impl.has_lstm = true;  // GRU reuses the recurrent scratch buffers
      w.w_size = layer.gru.kernel[0].size();
      w.u_size = layer.gru.recurrent[0].size();
      for (int g = 0; g < nn::kNumGruGates; ++g) {
        w.w[g] = impl.device->Allocate(w.w_size);
        impl.device->CopyToDevice(w.w[g], layer.gru.kernel[g].data(), w.w_size);
        w.u[g] = impl.device->Allocate(w.u_size);
        impl.device->CopyToDevice(w.u[g], layer.gru.recurrent[g].data(), w.u_size);
        w.bias_size = layer.gru.bias[g].size();
        w.bias[g] = impl.device->Allocate(w.bias_size);
        impl.device->CopyToDevice(w.bias[g], layer.gru.bias[g].data(), w.bias_size);
        impl.weight_bytes += (w.w_size + w.u_size + w.bias_size) * 4;
      }
    }
    impl.layers.push_back(std::move(w));
  }
  return session;
}

int64_t Session::input_width() const { return impl_->meta.input_width(); }
int64_t Session::output_dim() const { return impl_->meta.output_dim(); }
device::Device* Session::device() const { return impl_->device; }

int64_t Session::MemoryBytes() const {
  return impl_->weight_bytes +
         (impl_->capacity * impl_->max_units * (impl_->has_lstm ? 10 : 3) +
          impl_->x_capacity) *
             4;
}

Status Session::Run(const float* input, int64_t n, float* output) {
  Impl& impl = *impl_;
  const nn::ModelMeta& meta = impl.meta;
  if (n <= 0) return Status::OK();
  impl.EnsureCapacity(n);
  impl.EnsureInputCapacity(n * meta.input_width());
  impl.device->CopyToDevice(impl.x_dev, input, n * meta.input_width());

  const float* current = impl.x_dev;
  int64_t current_dim = meta.input_width();
  float* front = impl.ping;
  float* back = impl.pong;

  for (size_t li = 0; li < meta.layers.size(); ++li) {
    const nn::LayerMeta& layer = meta.layers[li];
    if (layer.kind == LayerKind::kDense) {
      // out[n x u] = in[n x d] * W[d x u] + broadcast bias
      impl.device->Gemm(false, false, n, layer.units, current_dim, 1.0f, current,
                        current_dim, impl.layers[li].w[0], layer.units, 0.0f, front,
                        layer.units);
      impl.device->BiasRowAdd(n, layer.units, impl.layers[li].bias[0], front);
      impl.device->Activate(layer.activation, n * layer.units, front);
    } else if (layer.kind == LayerKind::kGru) {
      const int64_t units = layer.units;
      const int64_t f = layer.input_dim;
      const int64_t m = n * units;
      for (int64_t t = 0; t < meta.timesteps; ++t) {
        const float* x_t = current + t * f;
        for (int g = 0; g < nn::kNumGruGates; ++g) {
          impl.device->Gemm(false, false, n, units, f, 1.0f, x_t, current_dim,
                            impl.layers[li].w[g], units, 0.0f, impl.z[g], units);
          impl.device->BiasRowAdd(n, units, impl.layers[li].bias[g], impl.z[g]);
        }
        if (t > 0) {
          impl.device->Gemm(false, false, n, units, units, 1.0f, impl.h, units,
                            impl.layers[li].u[nn::kGruZ], units, 1.0f,
                            impl.z[nn::kGruZ], units);
          impl.device->Gemm(false, false, n, units, units, 1.0f, impl.h, units,
                            impl.layers[li].u[nn::kGruR], units, 1.0f,
                            impl.z[nn::kGruR], units);
        }
        impl.device->Activate(nn::Activation::kSigmoid, m, impl.z[nn::kGruZ]);
        impl.device->Activate(nn::Activation::kSigmoid, m, impl.z[nn::kGruR]);
        if (t > 0) {
          // candidate input: (r * h_prev) U_h
          impl.device->EwMul(m, impl.z[nn::kGruR], impl.h, impl.tmp);
          impl.device->Gemm(false, false, n, units, units, 1.0f, impl.tmp, units,
                            impl.layers[li].u[nn::kGruH], units, 1.0f,
                            impl.z[nn::kGruH], units);
        }
        impl.device->Activate(nn::Activation::kTanh, m, impl.z[nn::kGruH]);
        // h' = z * h_prev + (1 - z) * h~ (handcrafted combine kernel).
        impl.device->GruCombine(m, impl.z[nn::kGruZ], t > 0 ? impl.h : nullptr,
                                impl.z[nn::kGruH], impl.h);
      }
      impl.device->CopyOnDevice(front, impl.h, m);
    } else {
      const int64_t units = layer.units;
      const int64_t f = layer.input_dim;
      const int64_t m = n * units;
      for (int64_t t = 0; t < meta.timesteps; ++t) {
        // x_t: columns [t*f, (t+1)*f) of the row-major input.
        const float* x_t = current + t * f;
        for (int g = 0; g < nn::kNumGates; ++g) {
          impl.device->Gemm(false, false, n, units, f, 1.0f, x_t, current_dim,
                            impl.layers[li].w[g], units, 0.0f, impl.z[g], units);
          impl.device->BiasRowAdd(n, units, impl.layers[li].bias[g], impl.z[g]);
          if (t > 0) {
            impl.device->Gemm(false, false, n, units, units, 1.0f, impl.h, units,
                              impl.layers[li].u[g], units, 1.0f, impl.z[g], units);
          }
        }
        impl.device->Activate(nn::Activation::kSigmoid, m, impl.z[nn::kGateI]);
        impl.device->Activate(nn::Activation::kSigmoid, m, impl.z[nn::kGateF]);
        impl.device->Activate(nn::Activation::kTanh, m, impl.z[nn::kGateC]);
        impl.device->Activate(nn::Activation::kSigmoid, m, impl.z[nn::kGateO]);
        impl.device->EwMul(m, impl.z[nn::kGateI], impl.z[nn::kGateC], impl.tmp);
        if (t > 0) {
          impl.device->EwMul(m, impl.z[nn::kGateF], impl.c, impl.c);
          impl.device->EwAdd(m, impl.c, impl.tmp, impl.c);
        } else {
          impl.device->CopyOnDevice(impl.c, impl.tmp, m);
        }
        impl.device->CopyOnDevice(impl.h, impl.c, m);
        impl.device->Activate(nn::Activation::kTanh, m, impl.h);
        impl.device->EwMul(m, impl.z[nn::kGateO], impl.h, impl.h);
      }
      impl.device->CopyOnDevice(front, impl.h, m);
    }
    current = front;
    current_dim = layer.units;
    std::swap(front, back);
  }

  impl.device->CopyToHost(output, current, n * meta.output_dim());
  return Status::OK();
}

}  // namespace indbml::mlruntime
