#include "mlruntime/runtime.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/config.h"
#include "inference/runtime.h"
#include "nn/model_meta.h"

namespace indbml::mlruntime {

namespace {

device::Device* DefaultRuntimeDevice(const std::string& name) {
  return (name == "gpu" || name == "simgpu") ? device::SharedSimGpuDevice()
                                             : device::SharedCpuDevice();
}

}  // namespace

/// The session compiles the model into an inference::SharedModel and runs
/// it through the shared InferenceRuntime — the same forward pass the
/// native ModelJoin uses, so the approaches differ only in how data reaches
/// it. The runtime's interface stays deliberately ROW-MAJOR: every Run
/// transposes the batch into the engine's feature-major layout and the
/// results back, which is exactly the conversion cost the paper's C-API
/// measurements include.
struct Session::Impl {
  device::Device* device = nullptr;
  nn::ModelMeta meta;
  std::shared_ptr<inference::SharedModel> model;
  /// Host transpose staging, grown to the largest batch seen.
  std::vector<float> input_t;   ///< feature-major [input_width x n]
  std::vector<float> output_t;  ///< feature-major [output_dim x n]
};

Session::Session() : impl_(std::make_unique<Impl>()) {}
Session::~Session() = default;

Result<std::unique_ptr<Session>> Session::Create(const nn::Model& model,
                                                 const std::string& device_name,
                                                 device::Device* device) {
  auto session = std::unique_ptr<Session>(new Session());
  Impl& impl = *session->impl_;
  impl.device = device != nullptr ? device : DefaultRuntimeDevice(device_name);
  impl.meta = nn::MetaOf(model, "session");
  impl.model = std::make_shared<inference::SharedModel>(
      impl.meta, impl.device, /*num_workers=*/1, kDefaultVectorSize);
  INDBML_RETURN_NOT_OK(impl.model->BuildFromModel(model));
  return session;
}

int64_t Session::input_width() const { return impl_->meta.input_width(); }
int64_t Session::output_dim() const { return impl_->meta.output_dim(); }
device::Device* Session::device() const { return impl_->device; }

int64_t Session::MemoryBytes() const {
  return impl_->model->DeviceBytes() +
         static_cast<int64_t>((impl_->input_t.capacity() +
                               impl_->output_t.capacity()) *
                              sizeof(float));
}

Status Session::Run(const float* input, int64_t n, float* output) {
  Impl& impl = *impl_;
  const nn::ModelMeta& meta = impl.meta;
  if (n <= 0) return Status::OK();
  const int64_t d = meta.input_width();
  const int64_t o = meta.output_dim();

  // Layout tax in: row-major [n x d] → feature-major [d x n].
  impl.input_t.resize(static_cast<size_t>(d * n));
  impl.output_t.resize(static_cast<size_t>(o * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t f = 0; f < d; ++f) {
      impl.input_t[static_cast<size_t>(f * n + i)] = input[i * d + f];
    }
  }

  INDBML_RETURN_NOT_OK(inference::InferenceRuntime::Global().Run(
      *impl.model, impl.input_t.data(), n, impl.output_t.data()));

  // Layout tax out: feature-major [o x n] → row-major [n x o].
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t p = 0; p < o; ++p) {
      output[i * o + p] = impl.output_t[static_cast<size_t>(p * n + i)];
    }
  }
  return Status::OK();
}

}  // namespace indbml::mlruntime
