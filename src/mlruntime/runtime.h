#ifndef INDBML_MLRUNTIME_RUNTIME_H_
#define INDBML_MLRUNTIME_RUNTIME_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "device/device.h"
#include "nn/model.h"

namespace indbml::mlruntime {

/// \brief `tensorrt_lite` — the standalone ML runtime standing in for
/// Tensorflow in the paper's evaluation (see DESIGN.md §2).
///
/// Deliberately foreign to the database engine: its batch interface is
/// ROW-MAJOR `[n x input_width]`, so integrating it from a columnar engine
/// pays the layout conversion the paper measures for the C-API approach
/// (§6.1: "moving data from a columnar format into a row-major matrix, and
/// results back to columnar layout").
class Session {
 public:
  /// Compiles a model for the given device ("cpu" or "gpu"/"simgpu").
  /// `device` may be null to use the process-default devices.
  static Result<std::unique_ptr<Session>> Create(const nn::Model& model,
                                                 const std::string& device_name,
                                                 device::Device* device = nullptr);

  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int64_t input_width() const;
  int64_t output_dim() const;
  device::Device* device() const;

  /// Runs batch inference: `input` is row-major [n x input_width],
  /// `output` receives row-major [n x output_dim]. Thread-compatible
  /// (sessions hold scratch buffers; use one session per thread).
  Status Run(const float* input, int64_t n, float* output);

  /// Device memory held by weights + scratch (Table 3 accounting).
  int64_t MemoryBytes() const;

 private:
  Session();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace indbml::mlruntime

#endif  // INDBML_MLRUNTIME_RUNTIME_H_
