#ifndef INDBML_MLRUNTIME_TRT_C_API_H_
#define INDBML_MLRUNTIME_TRT_C_API_H_

#include <stddef.h>
#include <stdint.h>

/// \file C API of the tensorrt_lite runtime.
///
/// This is the integration surface the Raven-like approach uses from inside
/// the database engine (paper class 2: "Native APIs of ML runtimes") —
/// deliberately shaped like the Tensorflow/ONNXRuntime C APIs: opaque
/// session handles, status codes, row-major float batches, and a
/// thread-local error string.

#ifdef __cplusplus
extern "C" {
#endif

typedef struct trt_session trt_session;

typedef enum trt_status {
  TRT_OK = 0,
  TRT_INVALID_ARGUMENT = 1,
  TRT_RUNTIME_ERROR = 2,
} trt_status;

/// Creates a session from a serialized model file (nn::Model format).
/// `device` is "cpu" or "gpu". On success `*out` owns the session.
trt_status trt_session_create(const char* model_path, const char* device,
                              trt_session** out);

/// Creates a session from an in-memory serialized model.
trt_status trt_session_create_from_buffer(const void* data, size_t size,
                                          const char* device, trt_session** out);

/// Batch inference: `input` is row-major [n x input_width], `output` must
/// hold n * output_dim floats.
trt_status trt_session_run(trt_session* session, const float* input, int64_t n,
                           float* output);

int64_t trt_session_input_width(const trt_session* session);
int64_t trt_session_output_dim(const trt_session* session);

/// Bytes of runtime memory held by the session (weights + scratch).
int64_t trt_session_memory_bytes(const trt_session* session);

void trt_session_destroy(trt_session* session);

/// Message of the last failing call on this thread ("" if none).
const char* trt_last_error(void);

#ifdef __cplusplus
}  // extern "C"
#endif

#endif  // INDBML_MLRUNTIME_TRT_C_API_H_
