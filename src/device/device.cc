#include "device/device.h"

#include <time.h>

#include <cstring>

#include "common/memory_tracker.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/stopwatch.h"
#include "nn/blas.h"

namespace indbml::device {

namespace {

/// CPU time of the calling thread. The simulated GPU charges its host
/// emulation in thread-CPU seconds (not wall seconds) so that parallel
/// partitions contending for cores do not double-count preemption time;
/// summed across threads this equals the total host compute the emulation
/// consumed.

inline void GruCombineKernel(int64_t n, const float* z, const float* h_prev,
                             const float* h_cand, float* h_out) {
  if (h_prev == nullptr) {
    for (int64_t i = 0; i < n; ++i) h_out[i] = (1.0f - z[i]) * h_cand[i];
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    h_out[i] = z[i] * h_prev[i] + (1.0f - z[i]) * h_cand[i];
  }
}

double ThreadCpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Plain host execution: miniblas inline, no accounting.
class CpuDevice final : public Device {
 public:
  const char* name() const override { return "cpu"; }
  bool is_gpu() const override { return false; }

  float* Allocate(int64_t count) override {
    MemoryTracker::Global().Allocate(count * 4);
    return new float[static_cast<size_t>(count)]();
  }
  void Free(float* ptr, int64_t count) override {
    MemoryTracker::Global().Free(count * 4);
    delete[] ptr;
  }

  void CopyToDevice(float* dst, const float* src, int64_t count) override {
    std::memcpy(dst, src, static_cast<size_t>(count) * sizeof(float));
  }
  void CopyToHost(float* dst, const float* src, int64_t count) override {
    std::memcpy(dst, src, static_cast<size_t>(count) * sizeof(float));
  }
  void CopyOnDevice(float* dst, const float* src, int64_t count) override {
    std::memcpy(dst, src, static_cast<size_t>(count) * sizeof(float));
  }

  void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
            const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
            float* c, int64_t ldc) override {
    blas::Sgemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  }
  void EwMul(int64_t n, const float* x, const float* y, float* z) override {
    blas::VsMul(n, x, y, z);
  }
  void EwAdd(int64_t n, const float* x, const float* y, float* z) override {
    blas::VsAdd(n, x, y, z);
  }
  void BiasRowAdd(int64_t rows, int64_t cols, const float* bias,
                  float* matrix) override {
    for (int64_t r = 0; r < rows; ++r) {
      blas::VsAdd(cols, matrix + r * cols, bias, matrix + r * cols);
    }
  }
  void Activate(nn::Activation activation, int64_t n, float* x) override {
    nn::ApplyActivation(activation, n, x);
  }
  void GruCombine(int64_t n, const float* z, const float* h_prev,
                  const float* h_cand, float* h_out) override {
    GruCombineKernel(n, z, h_prev, h_cand, h_out);
  }

  DeviceStats stats() const override { return {}; }
  void ResetStats() override {}
};

/// Simulated GPU: kernels execute on the host (so results are exact), while
/// a deterministic cost model accrues the modeled device time. See
/// SimGpuOptions and DESIGN.md for the substitution rationale.
class SimGpuDevice final : public Device {
 public:
  explicit SimGpuDevice(const SimGpuOptions& options) : options_(options) {}

  const char* name() const override { return "simgpu"; }
  bool is_gpu() const override { return true; }

  float* Allocate(int64_t count) override {
    MemoryTracker::Global().Allocate(count * 4);
    return new float[static_cast<size_t>(count)]();
  }
  void Free(float* ptr, int64_t count) override {
    MemoryTracker::Global().Free(count * 4);
    delete[] ptr;
  }

  void CopyToDevice(float* dst, const float* src, int64_t count) override {
    Transfer(dst, src, count, /*to_device=*/true);
  }
  void CopyToHost(float* dst, const float* src, int64_t count) override {
    Transfer(dst, src, count, /*to_device=*/false);
  }
  void CopyOnDevice(float* dst, const float* src, int64_t count) override {
    double t0 = ThreadCpuSeconds();
    std::memcpy(dst, src, static_cast<size_t>(count) * sizeof(float));
    // On-device copies run at HBM speed; model as a kernel.
    AccrueKernel(ThreadCpuSeconds() - t0);
  }

  void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
            const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
            float* c, int64_t ldc) override {
    double t0 = ThreadCpuSeconds();
    blas::Sgemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    AccrueKernel(ThreadCpuSeconds() - t0);
  }
  void EwMul(int64_t n, const float* x, const float* y, float* z) override {
    double t0 = ThreadCpuSeconds();
    blas::VsMul(n, x, y, z);
    AccrueKernel(ThreadCpuSeconds() - t0);
  }
  void EwAdd(int64_t n, const float* x, const float* y, float* z) override {
    double t0 = ThreadCpuSeconds();
    blas::VsAdd(n, x, y, z);
    AccrueKernel(ThreadCpuSeconds() - t0);
  }
  void BiasRowAdd(int64_t rows, int64_t cols, const float* bias,
                  float* matrix) override {
    double t0 = ThreadCpuSeconds();
    for (int64_t r = 0; r < rows; ++r) {
      blas::VsAdd(cols, matrix + r * cols, bias, matrix + r * cols);
    }
    AccrueKernel(ThreadCpuSeconds() - t0);
  }
  void Activate(nn::Activation activation, int64_t n, float* x) override {
    double t0 = ThreadCpuSeconds();
    nn::ApplyActivation(activation, n, x);
    AccrueKernel(ThreadCpuSeconds() - t0);
  }
  void GruCombine(int64_t n, const float* z, const float* h_prev,
                  const float* h_cand, float* h_out) override {
    double t0 = ThreadCpuSeconds();
    GruCombineKernel(n, z, h_prev, h_cand, h_out);
    AccrueKernel(ThreadCpuSeconds() - t0);
  }

  DeviceStats stats() const override {
    MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() override {
    MutexLock lock(mu_);
    stats_ = {};
  }

 private:
  void AccrueKernel(double real_seconds) {
    MutexLock lock(mu_);
    stats_.real_seconds += real_seconds;
    stats_.modeled_seconds +=
        real_seconds / options_.compute_speedup + options_.kernel_launch_seconds;
    ++stats_.kernel_launches;
  }

  void Transfer(float* dst, const float* src, int64_t count, bool to_device) {
    double t0 = ThreadCpuSeconds();
    std::memcpy(dst, src, static_cast<size_t>(count) * sizeof(float));
    double real = ThreadCpuSeconds() - t0;
    int64_t bytes = count * 4;
    MutexLock lock(mu_);
    stats_.real_seconds += real;
    stats_.modeled_seconds += options_.transfer_latency_seconds +
                              static_cast<double>(bytes) / options_.transfer_bandwidth;
    ++stats_.transfers;
    if (to_device) {
      stats_.bytes_to_device += bytes;
    } else {
      stats_.bytes_to_host += bytes;
    }
  }

  const SimGpuOptions options_;
  mutable Mutex mu_;
  DeviceStats stats_ INDBML_GUARDED_BY(mu_);
};

}  // namespace

std::unique_ptr<Device> MakeCpuDevice() { return std::make_unique<CpuDevice>(); }

std::unique_ptr<Device> MakeSimGpuDevice(const SimGpuOptions& options) {
  return std::make_unique<SimGpuDevice>(options);
}

Device* SharedCpuDevice() {
  static Device* device = MakeCpuDevice().release();
  return device;
}

Device* SharedSimGpuDevice() {
  static Device* device = MakeSimGpuDevice().release();
  return device;
}

}  // namespace indbml::device
