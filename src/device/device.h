#ifndef INDBML_DEVICE_DEVICE_H_
#define INDBML_DEVICE_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "nn/activation.h"

namespace indbml::device {

/// Accumulated accounting of device activity since the last Reset().
///
/// `real_seconds` is the wall-clock time the host CPU actually spent
/// emulating device work; `modeled_seconds` is what the device cost model
/// says the same work takes on the modeled hardware. The benchmark harness
/// reports `wall - real + modeled` for GPU approaches, which makes results
/// deterministic and independent of the host (see DESIGN.md §2).
struct DeviceStats {
  double real_seconds = 0;
  double modeled_seconds = 0;
  int64_t bytes_to_device = 0;
  int64_t bytes_to_host = 0;
  int64_t kernel_launches = 0;
  int64_t transfers = 0;
};

/// \brief Execution device for the BLAS kernels of the ModelJoin and the
/// external ML runtime (paper §5: CPU via MKL, GPU via cuBLAS).
///
/// Buffers are raw float arrays owned by the device. On the CPU device they
/// are ordinary host memory and every operation is free of bookkeeping; on
/// the simulated GPU they live in a tracked "device arena" and every copy or
/// kernel accrues modeled time.
class Device {
 public:
  virtual ~Device() = default;

  virtual const char* name() const = 0;
  virtual bool is_gpu() const = 0;

  /// Allocates `count` floats of device memory (zero-initialised).
  virtual float* Allocate(int64_t count) = 0;
  virtual void Free(float* ptr, int64_t count) = 0;

  /// Explicit transfers. On the CPU device these degrade to memcpy with no
  /// modeled cost; on the GPU they model PCIe latency + bandwidth.
  virtual void CopyToDevice(float* dst, const float* src, int64_t count) = 0;
  virtual void CopyToHost(float* dst, const float* src, int64_t count) = 0;
  virtual void CopyOnDevice(float* dst, const float* src, int64_t count) = 0;

  /// C := alpha * op(A)*op(B) + beta*C on device buffers (see blas::Sgemm).
  virtual void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                    float alpha, const float* a, int64_t lda, const float* b,
                    int64_t ldb, float beta, float* c, int64_t ldc) = 0;

  /// Elementwise kernels (cuBLAS/MKL vsMul/vsAdd equivalents).
  virtual void EwMul(int64_t n, const float* x, const float* y, float* z) = 0;
  virtual void EwAdd(int64_t n, const float* x, const float* y, float* z) = 0;

  /// Adds `bias[c]` to every row of the row-major [rows x cols] matrix
  /// (cuDNN-style broadcast kernel used by the external runtime).
  virtual void BiasRowAdd(int64_t rows, int64_t cols, const float* bias,
                          float* matrix) = 0;

  /// In-place activation kernel (paper §5.4: "handcrafted CUDA kernel
  /// implementations for different types of activation functions").
  virtual void Activate(nn::Activation activation, int64_t n, float* x) = 0;

  /// GRU state-combine kernel: h_out = z*h_prev + (1-z)*h_cand
  /// (h_prev == nullptr means the zero initial state).
  virtual void GruCombine(int64_t n, const float* z, const float* h_prev,
                          const float* h_cand, float* h_out) = 0;

  virtual DeviceStats stats() const = 0;
  virtual void ResetStats() = 0;
};

/// Host CPU device executing miniblas inline. Singleton-per-call-site use is
/// fine; the object is stateless apart from stats (all zero).
std::unique_ptr<Device> MakeCpuDevice();

/// Tuning constants of the simulated GPU (documented substitution for the
/// paper's A100-over-PCIe setup). Exposed so the `bench_ablation_simgpu`
/// experiment can sweep them.
struct SimGpuOptions {
  /// Compute speedup of the device over the host for BLAS kernels.
  double compute_speedup = 8.0;
  /// Fixed kernel launch overhead per kernel (seconds).
  double kernel_launch_seconds = 5e-6;
  /// Host<->device copy bandwidth (bytes/second), PCIe-class.
  double transfer_bandwidth = 20e9;
  /// Fixed per-transfer latency (seconds).
  double transfer_latency_seconds = 10e-6;
};

std::unique_ptr<Device> MakeSimGpuDevice(const SimGpuOptions& options = {});

/// Process-wide shared devices (created on first use, never destroyed).
/// The native ModelJoin's default device provider and the external
/// runtime's default devices both resolve here, so GPU accounting for one
/// benchmark run accumulates in a single place.
Device* SharedCpuDevice();
Device* SharedSimGpuDevice();

}  // namespace indbml::device

#endif  // INDBML_DEVICE_DEVICE_H_
