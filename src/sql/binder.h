#ifndef INDBML_SQL_BINDER_H_
#define INDBML_SQL_BINDER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/logical_plan.h"

namespace indbml::sql {

/// Registry of model metadata referenced by `USING MODEL '<name>'`
/// (paper §5.5: the model's layer dimensions/types/activations, which a
/// production system would keep in the catalog).
class ModelMetaRegistry {
 public:
  void Register(nn::ModelMeta meta);
  Result<const nn::ModelMeta*> Get(const std::string& name) const;
  std::vector<std::string> ListModels() const;

 private:
  std::unordered_map<std::string, nn::ModelMeta> metas_;
};

/// \brief Resolves a parsed SELECT statement into a typed logical plan.
///
/// Responsibilities: name resolution against the catalog and FROM scopes,
/// type derivation and coercion, aggregate extraction (GROUP BY handling),
/// and MODEL JOIN resolution against the model registry. The produced plan
/// is unoptimized: INNER JOINs appear as Filter(CrossJoin).
class Binder {
 public:
  Binder(storage::Catalog* catalog, const ModelMetaRegistry* models)
      : catalog_(catalog), models_(models) {}

  Result<LogicalOpPtr> Bind(const SelectStatement& stmt);

 private:
  struct ScopeEntry {
    std::string alias;  ///< lower-cased
    std::vector<BoundColumn> columns;
  };
  struct Scope {
    std::vector<ScopeEntry> entries;
  };

  int64_t NextId() { return next_id_++; }

  Result<LogicalOpPtr> BindSelect(const SelectStatement& stmt);
  Result<LogicalOpPtr> BindFrom(const TableRef& ref, Scope* scope);
  Result<exec::ExprPtr> BindExpr(const ParsedExpr& parsed, const Scope& scope);
  Result<BoundColumn> ResolveColumn(const ParsedExpr& parsed, const Scope& scope);

  /// Binds a select/order expression in the presence of GROUP BY: matches
  /// group expressions textually, extracts aggregate calls into `aggs`, and
  /// rejects bare columns that are neither.
  Result<exec::ExprPtr> BindGroupedExpr(const ParsedExpr& parsed, const Scope& scope,
                                        const std::vector<std::string>& group_texts,
                                        const std::vector<BoundColumn>& group_outputs,
                                        std::vector<exec::AggregateSpec>* aggs,
                                        std::vector<BoundColumn>* agg_outputs);

  storage::Catalog* catalog_;
  const ModelMetaRegistry* models_;
  int64_t next_id_ = 0;
};

/// True if the expression tree contains an aggregate function call.
bool ContainsAggregate(const ParsedExpr& e);

}  // namespace indbml::sql

#endif  // INDBML_SQL_BINDER_H_
