#ifndef INDBML_SQL_BINDER_H_
#define INDBML_SQL_BINDER_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "sql/ast.h"
#include "sql/logical_plan.h"

namespace indbml::sql {

/// Registry of model metadata referenced by `USING MODEL '<name>'`
/// (paper §5.5: the model's layer dimensions/types/activations, which a
/// production system would keep in the catalog).
///
/// Thread-safe: a DEPLOY re-registering a model races concurrent binds in
/// the serving stack, so Get returns a by-value snapshot (a pointer into
/// the map would dangle across a concurrent Register). Every mutation runs
/// the mutation callback — QueryEngine wires it to the catalog version
/// bump, which is what makes cached plans bound against the old model
/// version re-resolve (server/plan_cache.h keys on catalog version).
class ModelMetaRegistry {
 public:
  void Register(nn::ModelMeta meta) INDBML_EXCLUDES(mu_);
  Result<nn::ModelMeta> Get(const std::string& name) const INDBML_EXCLUDES(mu_);
  std::vector<std::string> ListModels() const INDBML_EXCLUDES(mu_);

  /// Invoked (outside the registry lock) after every Register. At most one
  /// callback; set by the owning QueryEngine before first use.
  void SetMutationCallback(std::function<void()> callback) INDBML_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, nn::ModelMeta> metas_ INDBML_GUARDED_BY(mu_);
  std::function<void()> on_mutate_ INDBML_GUARDED_BY(mu_);
};

/// \brief Resolves a parsed SELECT statement into a typed logical plan.
///
/// Responsibilities: name resolution against the catalog and FROM scopes,
/// type derivation and coercion, aggregate extraction (GROUP BY handling),
/// and MODEL JOIN resolution against the model registry. The produced plan
/// is unoptimized: INNER JOINs appear as Filter(CrossJoin).
class Binder {
 public:
  Binder(storage::Catalog* catalog, const ModelMetaRegistry* models)
      : catalog_(catalog), models_(models) {}

  Result<LogicalOpPtr> Bind(const SelectStatement& stmt);

 private:
  struct ScopeEntry {
    std::string alias;  ///< lower-cased
    std::vector<BoundColumn> columns;
  };
  struct Scope {
    std::vector<ScopeEntry> entries;
  };

  int64_t NextId() { return next_id_++; }

  Result<LogicalOpPtr> BindSelect(const SelectStatement& stmt);
  Result<LogicalOpPtr> BindFrom(const TableRef& ref, Scope* scope);
  Result<exec::ExprPtr> BindExpr(const ParsedExpr& parsed, const Scope& scope);
  Result<BoundColumn> ResolveColumn(const ParsedExpr& parsed, const Scope& scope);

  /// Binds a select/order expression in the presence of GROUP BY: matches
  /// group expressions textually, extracts aggregate calls into `aggs`, and
  /// rejects bare columns that are neither.
  Result<exec::ExprPtr> BindGroupedExpr(const ParsedExpr& parsed, const Scope& scope,
                                        const std::vector<std::string>& group_texts,
                                        const std::vector<BoundColumn>& group_outputs,
                                        std::vector<exec::AggregateSpec>* aggs,
                                        std::vector<BoundColumn>* agg_outputs);

  storage::Catalog* catalog_;
  const ModelMetaRegistry* models_;
  int64_t next_id_ = 0;
};

/// True if the expression tree contains an aggregate function call.
bool ContainsAggregate(const ParsedExpr& e);

}  // namespace indbml::sql

#endif  // INDBML_SQL_BINDER_H_
