#include "common/string_util.h"
#include "sql/logical_plan.h"

namespace indbml::sql {

namespace {

const char* KindName(LogicalKind kind) {
  switch (kind) {
    case LogicalKind::kScan:
      return "Scan";
    case LogicalKind::kFilter:
      return "Filter";
    case LogicalKind::kProject:
      return "Project";
    case LogicalKind::kHashJoin:
      return "HashJoin";
    case LogicalKind::kCrossJoin:
      return "CrossJoin";
    case LogicalKind::kAggregate:
      return "Aggregate";
    case LogicalKind::kSort:
      return "Sort";
    case LogicalKind::kLimit:
      return "Limit";
    case LogicalKind::kModelJoin:
      return "ModelJoin";
  }
  return "?";
}

}  // namespace

std::string LogicalOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string line = pad + NodeString() + "\n";
  for (const auto& child : children) {
    line += child->ToString(indent + 1);
  }
  return line;
}

// Pieces are appended one at a time instead of chained with operator+:
// GCC 12's -Wrestrict reports bogus overlapping-memcpy warnings on inlined
// string operator+ chains at -O2, which -Werror turns fatal.
std::string LogicalOp::NodeString() const {
  std::string line = KindName(kind);
  switch (kind) {
    case LogicalKind::kScan: {
      line += " ";
      line += table->name();
      line += " [";
      for (size_t i = 0; i < outputs.size(); ++i) {
        if (i) line += ", ";
        line += outputs[i].name;
      }
      line += "]";
      for (const auto& p : pushed) {
        line += StrFormat(" {col%d %s %s}", p.column, exec::BinaryOpName(p.op),
                          p.value.ToString().c_str());
      }
      break;
    }
    case LogicalKind::kFilter:
      line += " ";
      line += condition->ToString();
      break;
    case LogicalKind::kProject: {
      line += " [";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i) line += ", ";
        line += outputs[i].name;
        line += "=";
        line += exprs[i]->ToString();
      }
      line += "]";
      break;
    }
    case LogicalKind::kHashJoin: {
      line += " on ";
      for (size_t i = 0; i < probe_keys.size(); ++i) {
        if (i) line += " AND ";
        line += probe_keys[i]->ToString();
        line += "=";
        line += build_keys[i]->ToString();
      }
      break;
    }
    case LogicalKind::kAggregate: {
      line += streaming ? StrFormat(" (streaming, prefix=%d)", streaming_prefix)
                        : " (hash)";
      line += " groups=[";
      for (size_t i = 0; i < groups.size(); ++i) {
        if (i) line += ", ";
        line += groups[i]->ToString();
      }
      line += "] aggs=[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i) line += ", ";
        line += exec::AggFunctionName(aggregates[i].function);
        line += "(";
        line += aggregates[i].argument ? aggregates[i].argument->ToString() : "*";
        line += ")";
      }
      line += "]";
      break;
    }
    case LogicalKind::kSort: {
      line += " by [";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i) line += ", ";
        line += sort_keys[i]->ToString();
        line += ascending[i] ? " ASC" : " DESC";
      }
      line += "]";
      break;
    }
    case LogicalKind::kLimit:
      line += StrFormat(" %lld", static_cast<long long>(limit));
      break;
    case LogicalKind::kModelJoin:
      line += " model=";
      line += modeljoin.meta.name;
      line += " device=";
      line += modeljoin.device;
      break;
    case LogicalKind::kCrossJoin:
      break;
  }
  return line;
}

}  // namespace indbml::sql
