#ifndef INDBML_SQL_QUERY_ENGINE_H_
#define INDBML_SQL_QUERY_ENGINE_H_

#include <memory>
#include <string>

#include "common/config.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "exec/operator.h"
#include "sql/binder.h"
#include "sql/optimizer.h"
#include "sql/physical_planner.h"

namespace indbml::sql {

/// \brief The database engine facade: catalog + model registry + SQL
/// execution with morsel-driven parallelism (the stand-in for Actian Vector
/// in the paper's evaluation, see DESIGN.md §2).
///
/// Concurrency contract: the engine is safe to share across threads.
/// Options are read as an immutable per-query snapshot taken when the query
/// is submitted — a concurrent set_options() affects later queries, never a
/// running one. For multi-query *scheduling* (shared executor, admission
/// control, plan/model caches) use the serving stack in src/server/, which
/// layers sessions over this engine.
class QueryEngine {
 public:
  struct Options {
    /// Partition count of the legacy static-partitioning path, used when
    /// `morsel_driven` is false (paper §6.1 uses 12).
    int partitions = kDefaultPartitions;
    /// Pipeline worker threads; 0 = one per hardware thread. Independent of
    /// `partitions`: workers are an execution resource, partitions/morsels a
    /// work-division unit. Honored on the next query when changed.
    int worker_threads = 0;
    /// Rows per morsel handed out by the work-stealing scheduler.
    int64_t morsel_rows = kDefaultMorselRows;
    /// Schedule parallel plans morsel-wise with work stealing (default);
    /// false = one static contiguous partition per thread.
    bool morsel_driven = true;
    /// Run workers on a thread pool; false = serial (debugging).
    bool parallel = true;
    /// Scans emit zero-copy views over table storage, and filters emit
    /// selection vectors instead of copying survivors (default); false =
    /// the legacy per-row materialising scan (conversion ablation).
    bool zero_copy_scan = true;
    /// Fuse [Project][Filter*]Scan chains into one operator that computes
    /// the survivor mask with the vectorized compare kernels and emits one
    /// selection vector over table storage (default); false = discrete
    /// Scan/Filter/Project operators (fusion ablation). Requires
    /// `zero_copy_scan`.
    bool fused_pipeline = true;
    /// Resolve ModelJoin models through the process-wide
    /// SharedModelRegistry: the first query over a (model, device) pair
    /// builds it once, later and concurrent queries block-share the built
    /// weights (MorphingDB-style model management). False (default) keeps
    /// the paper's per-query build — the cost Figures 8/9 measure. Server
    /// sessions default this to true.
    bool shared_models = false;
    /// Inference batching/cache knobs handed to the ModelJoin operators
    /// (see InferenceExecOptions). Defaults leave batching and the result
    /// cache off — single-query latency must not pay for a batch partner
    /// that never comes; QueryServer::Options turns them on for serving.
    InferenceExecOptions inference;
    OptimizerOptions optimizer;
  };

  /// Physical execution prep shared by the engine's own ExecutePlan and the
  /// serving layer (server/session.cc): the analyzed plan, the lowered
  /// per-worker planner, and the morsel-mode decision.
  struct PhysicalPrep {
    std::unique_ptr<PhysicalPlanner> planner;
    PlanAnalysis analysis;
    bool use_morsel = false;
  };

  QueryEngine();
  explicit QueryEngine(Options options);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  storage::Catalog* catalog() { return &catalog_; }
  ModelMetaRegistry* models() { return &models_; }

  /// Snapshot copy of the current options (thread-safe). Queries already
  /// running keep the snapshot they were submitted with.
  Options options() const INDBML_EXCLUDES(options_mu_);
  void set_options(const Options& options) INDBML_EXCLUDES(options_mu_);

  /// Parses, binds, optimizes and runs one SELECT; returns the materialised
  /// result. With a non-null `profile`, per-operator statistics (rows,
  /// chunks, Open/Next/Close time, operator phase timings) and the query's
  /// peak tracked memory are collected into it.
  Result<exec::QueryResult> ExecuteQuery(const std::string& sql,
                                         exec::QueryProfile* profile = nullptr);

  /// Parses/binds/optimizes only (tests and EXPLAIN). The no-options
  /// overload snapshots the engine options.
  Result<LogicalOpPtr> PlanQuery(const std::string& sql);
  Result<LogicalOpPtr> PlanQuery(const std::string& sql, const Options& opts);

  /// Optimized plan rendering ("EXPLAIN").
  Result<std::string> Explain(const std::string& sql);

  /// Runs the query with profiling and renders the annotated plan tree:
  /// per-operator row/chunk counts, cumulative Open/Next/Close time and
  /// operator-specific phase timings (ModelJoin build vs. inference,
  /// C-API layout conversion, UDF marshalling), plus the query's wall time
  /// and peak tracked memory.
  Result<std::string> ExplainAnalyze(const std::string& sql);

  /// Registers the native ModelJoin implementation (called by the modeljoin
  /// module's RegisterModelJoin). Call before the first query.
  void SetModelJoinFactories(ModelJoinStateFactory state_factory,
                             ModelJoinOperatorFactory operator_factory) {
    modeljoin_state_factory_ = std::move(state_factory);
    modeljoin_operator_factory_ = std::move(operator_factory);
  }

  /// Executes a pre-bound plan (used by approach drivers that build plans
  /// programmatically); `profile` as in ExecuteQuery. The options overload
  /// runs under the given immutable snapshot (the serving layer's per-query
  /// snapshot semantics); the other snapshots the engine options.
  Result<exec::QueryResult> ExecutePlan(const LogicalOp& plan,
                                        exec::QueryProfile* profile = nullptr);
  Result<exec::QueryResult> ExecutePlan(const LogicalOp& plan, const Options& opts,
                                        exec::QueryProfile* profile);

  /// Analyzes `plan` and lowers it for up to `max_workers` parallel worker
  /// instances under the given options snapshot. Used by ExecutePlan and by
  /// the shared executor path (server/session.cc), which schedules the
  /// returned planner's instances itself. ModelJoin shared state is created
  /// here (registry lookup when `opts.shared_models`).
  Result<PhysicalPrep> PreparePhysical(const LogicalOp& plan, const Options& opts,
                                       int max_workers,
                                       exec::QueryProfile* profile);

  /// Effective pipeline worker count: `worker_threads` if set, one per
  /// hardware thread otherwise.
  int EffectiveWorkers() const;

  /// The engine's worker pool (shared with the native ModelJoin build),
  /// lazily (re)created at EffectiveWorkers() threads. The raw pointer stays
  /// valid for the engine's lifetime as long as no concurrent caller
  /// changes `worker_threads`; concurrent callers use SharedPool.
  ThreadPool* pool();

  /// Ref-counted handle on a pool with `want` threads. Re-sizing creates a
  /// fresh pool while in-flight queries keep their old one alive — the
  /// thread-safe form of the lazy recreation `pool()` performs.
  std::shared_ptr<ThreadPool> SharedPool(int want) INDBML_EXCLUDES(pool_mu_);

 private:
  mutable Mutex options_mu_;
  Options options_ INDBML_GUARDED_BY(options_mu_);
  storage::Catalog catalog_;
  ModelMetaRegistry models_;
  mutable Mutex pool_mu_;
  std::shared_ptr<ThreadPool> pool_ INDBML_GUARDED_BY(pool_mu_);
  ModelJoinStateFactory modeljoin_state_factory_;
  ModelJoinOperatorFactory modeljoin_operator_factory_;
};

}  // namespace indbml::sql

#endif  // INDBML_SQL_QUERY_ENGINE_H_
