#ifndef INDBML_SQL_QUERY_ENGINE_H_
#define INDBML_SQL_QUERY_ENGINE_H_

#include <memory>
#include <string>

#include "common/config.h"
#include "common/thread_pool.h"
#include "exec/operator.h"
#include "sql/binder.h"
#include "sql/optimizer.h"
#include "sql/physical_planner.h"

namespace indbml::sql {

/// \brief The database engine facade: catalog + model registry + SQL
/// execution with morsel-driven parallelism (the stand-in for Actian Vector
/// in the paper's evaluation, see DESIGN.md §2).
class QueryEngine {
 public:
  struct Options {
    /// Partition count of the legacy static-partitioning path, used when
    /// `morsel_driven` is false (paper §6.1 uses 12).
    int partitions = kDefaultPartitions;
    /// Pipeline worker threads; 0 = one per hardware thread. Independent of
    /// `partitions`: workers are an execution resource, partitions/morsels a
    /// work-division unit. Honored on the next query when changed.
    int worker_threads = 0;
    /// Rows per morsel handed out by the work-stealing scheduler.
    int64_t morsel_rows = kDefaultMorselRows;
    /// Schedule parallel plans morsel-wise with work stealing (default);
    /// false = one static contiguous partition per thread.
    bool morsel_driven = true;
    /// Run workers on a thread pool; false = serial (debugging).
    bool parallel = true;
    /// Scans emit zero-copy views over table storage, and filters emit
    /// selection vectors instead of copying survivors (default); false =
    /// the legacy per-row materialising scan (conversion ablation).
    bool zero_copy_scan = true;
    /// Fuse [Project][Filter*]Scan chains into one operator that computes
    /// the survivor mask with the vectorized compare kernels and emits one
    /// selection vector over table storage (default); false = discrete
    /// Scan/Filter/Project operators (fusion ablation). Requires
    /// `zero_copy_scan`.
    bool fused_pipeline = true;
    OptimizerOptions optimizer;
  };

  QueryEngine();
  explicit QueryEngine(Options options);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  storage::Catalog* catalog() { return &catalog_; }
  ModelMetaRegistry* models() { return &models_; }
  const Options& options() const { return options_; }
  void set_options(const Options& options) { options_ = options; }

  /// Parses, binds, optimizes and runs one SELECT; returns the materialised
  /// result. With a non-null `profile`, per-operator statistics (rows,
  /// chunks, Open/Next/Close time, operator phase timings) and the query's
  /// peak tracked memory are collected into it.
  Result<exec::QueryResult> ExecuteQuery(const std::string& sql,
                                         exec::QueryProfile* profile = nullptr);

  /// Parses/binds/optimizes only (tests and EXPLAIN).
  Result<LogicalOpPtr> PlanQuery(const std::string& sql);

  /// Optimized plan rendering ("EXPLAIN").
  Result<std::string> Explain(const std::string& sql);

  /// Runs the query with profiling and renders the annotated plan tree:
  /// per-operator row/chunk counts, cumulative Open/Next/Close time and
  /// operator-specific phase timings (ModelJoin build vs. inference,
  /// C-API layout conversion, UDF marshalling), plus the query's wall time
  /// and peak tracked memory.
  Result<std::string> ExplainAnalyze(const std::string& sql);

  /// Registers the native ModelJoin implementation (called by the modeljoin
  /// module's RegisterModelJoin).
  void SetModelJoinFactories(ModelJoinStateFactory state_factory,
                             ModelJoinOperatorFactory operator_factory) {
    modeljoin_state_factory_ = std::move(state_factory);
    modeljoin_operator_factory_ = std::move(operator_factory);
  }

  /// Executes a pre-bound plan (used by approach drivers that build plans
  /// programmatically); `profile` as in ExecuteQuery.
  Result<exec::QueryResult> ExecutePlan(const LogicalOp& plan,
                                        exec::QueryProfile* profile = nullptr);

  /// Effective pipeline worker count: `worker_threads` if set, one per
  /// hardware thread otherwise.
  int EffectiveWorkers() const;

  /// The engine's worker pool (shared with the native ModelJoin build).
  /// Lazily (re)created at EffectiveWorkers() threads, so option changes
  /// between queries take effect.
  ThreadPool* pool();

 private:
  Options options_;
  storage::Catalog catalog_;
  ModelMetaRegistry models_;
  std::unique_ptr<ThreadPool> pool_;
  ModelJoinStateFactory modeljoin_state_factory_;
  ModelJoinOperatorFactory modeljoin_operator_factory_;
};

}  // namespace indbml::sql

#endif  // INDBML_SQL_QUERY_ENGINE_H_
