#ifndef INDBML_SQL_LOGICAL_PLAN_H_
#define INDBML_SQL_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/expression.h"
#include "exec/scan.h"
#include "nn/model_meta.h"
#include "storage/table.h"

namespace indbml::sql {

/// A column produced by a logical operator: a binder-assigned unique id plus
/// name and type. Expressions reference columns by this id until the
/// physical planner rewrites them to chunk positions.
struct BoundColumn {
  int64_t id = -1;
  std::string name;
  exec::DataType type = exec::DataType::kInt64;
};

enum class LogicalKind {
  kScan,
  kFilter,
  kProject,
  kHashJoin,
  kCrossJoin,
  kAggregate,
  kSort,
  kLimit,
  kModelJoin,
};

/// Bound ModelJoin description (parser `MODEL JOIN ... USING MODEL 'x'`).
struct ModelJoinInfo {
  storage::TablePtr model_table;
  nn::ModelMeta meta;
  std::string device = "cpu";
  /// Binding ids (into the child's outputs) of the model input columns, in
  /// model input order.
  std::vector<int64_t> input_column_ids;
};

/// \brief One node of the bound logical plan.
///
/// A deliberately "fat" struct (DuckDB-style early IR): only the members
/// relevant to `kind` are populated. Children: kScan has none; kFilter /
/// kProject / kAggregate / kSort / kLimit / kModelJoin have one;
/// joins have two (child 0 = probe/left — the side whose order and
/// partitioning are preserved).
struct LogicalOp {
  LogicalKind kind;
  std::vector<std::unique_ptr<LogicalOp>> children;
  std::vector<BoundColumn> outputs;

  // kScan
  storage::TablePtr table;
  std::vector<int> scan_columns;                ///< table column index per output
  std::vector<exec::ScanPredicate> pushed;      ///< on table column indexes

  // kFilter
  exec::ExprPtr condition;

  // kProject
  std::vector<exec::ExprPtr> exprs;

  // kHashJoin
  std::vector<exec::ExprPtr> probe_keys;
  std::vector<exec::ExprPtr> build_keys;

  // kAggregate
  std::vector<exec::ExprPtr> groups;
  std::vector<exec::AggregateSpec> aggregates;
  bool streaming = false;  ///< set by the order-based aggregation rule
  /// Number of leading group keys that arrive as a sorted/grouped prefix
  /// (valid when streaming is set).
  int streaming_prefix = 0;

  // kSort
  std::vector<exec::ExprPtr> sort_keys;
  std::vector<bool> ascending;

  // kLimit
  int64_t limit = -1;

  // kModelJoin
  ModelJoinInfo modeljoin;

  /// Indented plan rendering for EXPLAIN-style debugging.
  std::string ToString(int indent = 0) const;

  /// One node's line of ToString (no indentation, no newline, no children);
  /// used as the operator label in EXPLAIN ANALYZE output.
  std::string NodeString() const;
};

using LogicalOpPtr = std::unique_ptr<LogicalOp>;

}  // namespace indbml::sql

#endif  // INDBML_SQL_LOGICAL_PLAN_H_
