#include "sql/query_engine.h"

#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "exec/parallel.h"
#include "sql/parser.h"

namespace indbml::sql {

QueryEngine::QueryEngine() : QueryEngine(Options()) {}

QueryEngine::QueryEngine(Options options) : options_(options) {}

QueryEngine::~QueryEngine() = default;

ThreadPool* QueryEngine::pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(std::max(1, options_.partitions));
  }
  return pool_.get();
}

Result<LogicalOpPtr> QueryEngine::PlanQuery(const std::string& sql) {
  INDBML_ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  Binder binder(&catalog_, &models_);
  INDBML_ASSIGN_OR_RETURN(auto plan, binder.Bind(*stmt));
  Optimizer optimizer(options_.optimizer);
  return optimizer.Optimize(std::move(plan));
}

Result<exec::QueryResult> QueryEngine::ExecuteQuery(const std::string& sql,
                                                    exec::QueryProfile* profile) {
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql));
  return ExecutePlan(*plan, profile);
}

Result<exec::QueryResult> QueryEngine::ExecutePlan(const LogicalOp& plan,
                                                   exec::QueryProfile* profile) {
  trace::Span query_span("query");
  Optimizer optimizer(options_.optimizer);
  PlanAnalysis analysis = optimizer.Analyze(plan);
  // Serial mode must plan one partition: multi-partition plans synchronise
  // inside operators (ModelJoin build barrier) and require all partition
  // trees to run concurrently.
  int requested = options_.parallel ? options_.partitions : 1;
  PhysicalPlanner planner(&plan, analysis, requested, modeljoin_state_factory_,
                          modeljoin_operator_factory_, profile);
  INDBML_RETURN_NOT_OK(planner.Prepare());

  // Peak tracked memory is process-wide; the reset makes the recorded peak
  // per-query as long as queries don't overlap (Table 3 methodology).
  if (profile != nullptr) MemoryTracker::Global().ResetPeak();
  Stopwatch stopwatch;

  exec::OperatorFactory factory = [&](int partition) {
    return planner.Instantiate(partition);
  };
  ThreadPool* run_pool =
      options_.parallel && planner.num_partitions() > 1 ? pool() : nullptr;
  auto result = exec::ExecuteParallel(factory, planner.num_partitions(), &catalog_,
                                      run_pool);

  int64_t wall_micros = stopwatch.ElapsedMicros();
  metrics::Registry& registry = metrics::Registry::Global();
  registry.counter("engine.queries")->Increment();
  registry.histogram("engine.query_micros")->Record(wall_micros);
  if (profile != nullptr) {
    int64_t peak = MemoryTracker::Global().peak_bytes();
    profile->set_wall_nanos(wall_micros * 1000);
    profile->set_peak_memory_bytes(peak);
    registry.gauge("memory.query_peak_bytes")->Set(peak);
  }
  return result;
}

Result<std::string> QueryEngine::ExplainAnalyze(const std::string& sql) {
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql));
  exec::QueryProfile profile;
  INDBML_ASSIGN_OR_RETURN(auto result, ExecutePlan(*plan, &profile));
  (void)result;
  return profile.ToString();
}

Result<std::string> QueryEngine::Explain(const std::string& sql) {
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql));
  Optimizer optimizer(options_.optimizer);
  PlanAnalysis analysis = optimizer.Analyze(*plan);
  std::string out = plan->ToString();
  out += analysis.parallel_safe ? "[parallel-safe]\n" : "[serial]\n";
  return out;
}

}  // namespace indbml::sql
