#include "sql/query_engine.h"

#include "exec/parallel.h"
#include "sql/parser.h"

namespace indbml::sql {

QueryEngine::QueryEngine() : QueryEngine(Options()) {}

QueryEngine::QueryEngine(Options options) : options_(options) {}

QueryEngine::~QueryEngine() = default;

ThreadPool* QueryEngine::pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(std::max(1, options_.partitions));
  }
  return pool_.get();
}

Result<LogicalOpPtr> QueryEngine::PlanQuery(const std::string& sql) {
  INDBML_ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  Binder binder(&catalog_, &models_);
  INDBML_ASSIGN_OR_RETURN(auto plan, binder.Bind(*stmt));
  Optimizer optimizer(options_.optimizer);
  return optimizer.Optimize(std::move(plan));
}

Result<exec::QueryResult> QueryEngine::ExecuteQuery(const std::string& sql) {
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql));
  return ExecutePlan(*plan);
}

Result<exec::QueryResult> QueryEngine::ExecutePlan(const LogicalOp& plan) {
  Optimizer optimizer(options_.optimizer);
  PlanAnalysis analysis = optimizer.Analyze(plan);
  // Serial mode must plan one partition: multi-partition plans synchronise
  // inside operators (ModelJoin build barrier) and require all partition
  // trees to run concurrently.
  int requested = options_.parallel ? options_.partitions : 1;
  PhysicalPlanner planner(&plan, analysis, requested, modeljoin_state_factory_,
                          modeljoin_operator_factory_);
  INDBML_RETURN_NOT_OK(planner.Prepare());

  exec::OperatorFactory factory = [&](int partition) {
    return planner.Instantiate(partition);
  };
  ThreadPool* run_pool =
      options_.parallel && planner.num_partitions() > 1 ? pool() : nullptr;
  return exec::ExecuteParallel(factory, planner.num_partitions(), &catalog_,
                               run_pool);
}

Result<std::string> QueryEngine::Explain(const std::string& sql) {
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql));
  Optimizer optimizer(options_.optimizer);
  PlanAnalysis analysis = optimizer.Analyze(*plan);
  std::string out = plan->ToString();
  out += analysis.parallel_safe ? "[parallel-safe]\n" : "[serial]\n";
  return out;
}

}  // namespace indbml::sql
