#include "sql/query_engine.h"

#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "common/validation.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "sql/parser.h"
#include "sql/plan_validate.h"

namespace indbml::sql {

namespace {

int WorkersFor(const QueryEngine::Options& opts) {
  return opts.worker_threads > 0 ? opts.worker_threads : HardwareConcurrency();
}

}  // namespace

QueryEngine::QueryEngine() : QueryEngine(Options()) {}

QueryEngine::QueryEngine(Options options) : options_(options) {
  // A model DEPLOY (Register) is a DDL-like mutation: bump the catalog
  // version so cached plans bound against the old model metadata re-resolve
  // (server/plan_cache.h keys on the version).
  models_.SetMutationCallback([this] { catalog_.BumpVersion(); });
}

QueryEngine::~QueryEngine() = default;

QueryEngine::Options QueryEngine::options() const {
  MutexLock lock(options_mu_);
  return options_;
}

void QueryEngine::set_options(const Options& options) {
  MutexLock lock(options_mu_);
  options_ = options;
}

int QueryEngine::EffectiveWorkers() const { return WorkersFor(options()); }

std::shared_ptr<ThreadPool> QueryEngine::SharedPool(int want) {
  MutexLock lock(pool_mu_);
  if (pool_ == nullptr || pool_->num_threads() != want) {
    pool_ = std::make_shared<ThreadPool>(want);
  }
  return pool_;
}

ThreadPool* QueryEngine::pool() { return SharedPool(EffectiveWorkers()).get(); }

Result<LogicalOpPtr> QueryEngine::PlanQuery(const std::string& sql,
                                            const Options& opts) {
  INDBML_ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  Binder binder(&catalog_, &models_);
  INDBML_ASSIGN_OR_RETURN(auto plan, binder.Bind(*stmt));
  Optimizer optimizer(opts.optimizer);
  return optimizer.Optimize(std::move(plan));
}

Result<LogicalOpPtr> QueryEngine::PlanQuery(const std::string& sql) {
  return PlanQuery(sql, options());
}

Result<exec::QueryResult> QueryEngine::ExecuteQuery(const std::string& sql,
                                                    exec::QueryProfile* profile) {
  const Options opts = options();
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql, opts));
  return ExecutePlan(*plan, opts, profile);
}

Result<QueryEngine::PhysicalPrep> QueryEngine::PreparePhysical(
    const LogicalOp& plan, const Options& opts, int max_workers,
    exec::QueryProfile* profile) {
  PhysicalPrep prep;
  Optimizer optimizer(opts.optimizer);
  prep.analysis = optimizer.Analyze(plan);
  prep.use_morsel = opts.morsel_driven && opts.parallel &&
                    prep.analysis.parallel_safe &&
                    prep.analysis.partitioned_table != nullptr &&
                    max_workers > 1;
  // Serial mode must plan one worker: multi-worker plans synchronise inside
  // operators (ModelJoin build barrier) and require all worker trees to run
  // concurrently.
  int requested =
      prep.use_morsel ? max_workers : (opts.parallel ? opts.partitions : 1);
  prep.planner = std::make_unique<PhysicalPlanner>(
      &plan, prep.analysis, requested, modeljoin_state_factory_,
      modeljoin_operator_factory_, profile, prep.use_morsel,
      opts.zero_copy_scan, opts.fused_pipeline, opts.shared_models,
      opts.inference);
  INDBML_RETURN_NOT_OK(prep.planner->Prepare());
  if (prep.use_morsel && validation::Enabled()) {
    INDBML_RETURN_NOT_OK(ValidateMorselSafety(plan, prep.analysis));
  }
  return prep;
}

Result<exec::QueryResult> QueryEngine::ExecutePlan(const LogicalOp& plan,
                                                   exec::QueryProfile* profile) {
  return ExecutePlan(plan, options(), profile);
}

Result<exec::QueryResult> QueryEngine::ExecutePlan(const LogicalOp& plan,
                                                   const Options& opts,
                                                   exec::QueryProfile* profile) {
  trace::Span query_span("query");
  const int pipeline_workers = WorkersFor(opts);
  INDBML_ASSIGN_OR_RETURN(auto prep,
                          PreparePhysical(plan, opts, pipeline_workers, profile));
  PhysicalPlanner& planner = *prep.planner;

  // Peak tracked memory is process-wide; the reset makes the recorded peak
  // per-query as long as queries don't overlap (Table 3 methodology).
  if (profile != nullptr) MemoryTracker::Global().ResetPeak();
  Stopwatch stopwatch;

  auto run = [&]() -> Result<exec::QueryResult> {
    if (prep.use_morsel) {
      exec::MorselSource source(
          exec::MakeMorsels(*prep.analysis.partitioned_table, opts.morsel_rows));
      exec::WorkerPlanFactory factory = [&](int worker) {
        return planner.Instantiate(worker);
      };
      // Hold the shared_ptr for the query's duration: a concurrent
      // set_options() resizing the pool must not tear it down under us.
      std::shared_ptr<ThreadPool> run_pool = SharedPool(pipeline_workers);
      return exec::ExecutePipeline(factory, &source, planner.num_workers(),
                                   &catalog_, run_pool.get());
    }
    exec::OperatorFactory factory = [&](int worker) {
      return planner.Instantiate(worker);
    };
    std::shared_ptr<ThreadPool> run_pool;
    if (opts.parallel && planner.num_workers() > 1) {
      run_pool = SharedPool(pipeline_workers);
      // The engine pool is sized for the pipeline executor; a static plan with
      // more partitions than pool threads would deadlock operators that
      // barrier across workers (ModelJoin build). Give those queries a
      // dedicated right-sized pool.
      if (planner.num_workers() > run_pool->num_threads()) {
        run_pool = std::make_shared<ThreadPool>(planner.num_workers());
      }
    }
    return exec::ExecuteParallel(factory, planner.num_workers(), &catalog_,
                                 run_pool.get());
  };
  auto result = run();

  int64_t wall_micros = stopwatch.ElapsedMicros();
  metrics::Registry& registry = metrics::Registry::Global();
  registry.counter("engine.queries")->Increment();
  registry.histogram("engine.query_micros")->Record(wall_micros);
  if (profile != nullptr) {
    int64_t peak = MemoryTracker::Global().peak_bytes();
    profile->set_wall_nanos(wall_micros * 1000);
    profile->set_peak_memory_bytes(peak);
    registry.gauge("memory.query_peak_bytes")->Set(peak);
  }
  return result;
}

Result<std::string> QueryEngine::ExplainAnalyze(const std::string& sql) {
  const Options opts = options();
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql, opts));
  exec::QueryProfile profile;
  INDBML_ASSIGN_OR_RETURN(auto result, ExecutePlan(*plan, opts, &profile));
  (void)result;
  return profile.ToString();
}

Result<std::string> QueryEngine::Explain(const std::string& sql) {
  const Options opts = options();
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql, opts));
  Optimizer optimizer(opts.optimizer);
  PlanAnalysis analysis = optimizer.Analyze(*plan);
  std::string out = plan->ToString();
  out += analysis.parallel_safe ? "[parallel-safe]\n" : "[serial]\n";
  return out;
}

}  // namespace indbml::sql
