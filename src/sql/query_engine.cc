#include "sql/query_engine.h"

#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "common/validation.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "sql/parser.h"
#include "sql/plan_validate.h"

namespace indbml::sql {

QueryEngine::QueryEngine() : QueryEngine(Options()) {}

QueryEngine::QueryEngine(Options options) : options_(options) {}

QueryEngine::~QueryEngine() = default;

int QueryEngine::EffectiveWorkers() const {
  return options_.worker_threads > 0 ? options_.worker_threads
                                     : HardwareConcurrency();
}

ThreadPool* QueryEngine::pool() {
  int want = EffectiveWorkers();
  if (pool_ == nullptr || pool_->num_threads() != want) {
    pool_ = std::make_unique<ThreadPool>(want);
  }
  return pool_.get();
}

Result<LogicalOpPtr> QueryEngine::PlanQuery(const std::string& sql) {
  INDBML_ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  Binder binder(&catalog_, &models_);
  INDBML_ASSIGN_OR_RETURN(auto plan, binder.Bind(*stmt));
  Optimizer optimizer(options_.optimizer);
  return optimizer.Optimize(std::move(plan));
}

Result<exec::QueryResult> QueryEngine::ExecuteQuery(const std::string& sql,
                                                    exec::QueryProfile* profile) {
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql));
  return ExecutePlan(*plan, profile);
}

Result<exec::QueryResult> QueryEngine::ExecutePlan(const LogicalOp& plan,
                                                   exec::QueryProfile* profile) {
  trace::Span query_span("query");
  Optimizer optimizer(options_.optimizer);
  PlanAnalysis analysis = optimizer.Analyze(plan);
  const int pipeline_workers = EffectiveWorkers();
  const bool use_morsel = options_.morsel_driven && options_.parallel &&
                          analysis.parallel_safe &&
                          analysis.partitioned_table != nullptr &&
                          pipeline_workers > 1;
  // Serial mode must plan one worker: multi-worker plans synchronise inside
  // operators (ModelJoin build barrier) and require all worker trees to run
  // concurrently.
  int requested = use_morsel ? pipeline_workers
                             : (options_.parallel ? options_.partitions : 1);
  PhysicalPlanner planner(&plan, analysis, requested, modeljoin_state_factory_,
                          modeljoin_operator_factory_, profile, use_morsel,
                          options_.zero_copy_scan, options_.fused_pipeline);
  INDBML_RETURN_NOT_OK(planner.Prepare());
  if (use_morsel && validation::Enabled()) {
    INDBML_RETURN_NOT_OK(ValidateMorselSafety(plan, analysis));
  }

  // Peak tracked memory is process-wide; the reset makes the recorded peak
  // per-query as long as queries don't overlap (Table 3 methodology).
  if (profile != nullptr) MemoryTracker::Global().ResetPeak();
  Stopwatch stopwatch;

  auto run = [&]() -> Result<exec::QueryResult> {
    if (use_morsel) {
      exec::MorselSource source(
          exec::MakeMorsels(*analysis.partitioned_table, options_.morsel_rows));
      exec::WorkerPlanFactory factory = [&](int worker) {
        return planner.Instantiate(worker);
      };
      return exec::ExecutePipeline(factory, &source, planner.num_workers(),
                                   &catalog_, pool());
    }
    exec::OperatorFactory factory = [&](int worker) {
      return planner.Instantiate(worker);
    };
    ThreadPool* run_pool =
        options_.parallel && planner.num_workers() > 1 ? pool() : nullptr;
    // The engine pool is sized for the pipeline executor; a static plan with
    // more partitions than pool threads would deadlock operators that
    // barrier across workers (ModelJoin build). Give those queries a
    // dedicated right-sized pool.
    std::unique_ptr<ThreadPool> static_pool;
    if (run_pool != nullptr && planner.num_workers() > run_pool->num_threads()) {
      static_pool = std::make_unique<ThreadPool>(planner.num_workers());
      run_pool = static_pool.get();
    }
    return exec::ExecuteParallel(factory, planner.num_workers(), &catalog_,
                                 run_pool);
  };
  auto result = run();

  int64_t wall_micros = stopwatch.ElapsedMicros();
  metrics::Registry& registry = metrics::Registry::Global();
  registry.counter("engine.queries")->Increment();
  registry.histogram("engine.query_micros")->Record(wall_micros);
  if (profile != nullptr) {
    int64_t peak = MemoryTracker::Global().peak_bytes();
    profile->set_wall_nanos(wall_micros * 1000);
    profile->set_peak_memory_bytes(peak);
    registry.gauge("memory.query_peak_bytes")->Set(peak);
  }
  return result;
}

Result<std::string> QueryEngine::ExplainAnalyze(const std::string& sql) {
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql));
  exec::QueryProfile profile;
  INDBML_ASSIGN_OR_RETURN(auto result, ExecutePlan(*plan, &profile));
  (void)result;
  return profile.ToString();
}

Result<std::string> QueryEngine::Explain(const std::string& sql) {
  INDBML_ASSIGN_OR_RETURN(auto plan, PlanQuery(sql));
  Optimizer optimizer(options_.optimizer);
  PlanAnalysis analysis = optimizer.Analyze(*plan);
  std::string out = plan->ToString();
  out += analysis.parallel_safe ? "[parallel-safe]\n" : "[serial]\n";
  return out;
}

}  // namespace indbml::sql
