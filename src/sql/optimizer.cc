#include "sql/optimizer.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "common/validation.h"
#include "sql/plan_validate.h"

namespace indbml::sql {

using exec::Expr;
using exec::ExprKind;
using exec::ExprPtr;

namespace {

/// Flattens an AND tree into conjuncts.
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr->kind == ExprKind::kBinary && expr->bin_op == exec::BinaryOp::kAnd) {
    SplitConjuncts(std::move(expr->children[0]), out);
    SplitConjuncts(std::move(expr->children[1]), out);
    return;
  }
  out->push_back(std::move(expr));
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr result;
  for (auto& c : conjuncts) {
    result = result == nullptr
                 ? std::move(c)
                 : exec::MakeBinary(exec::BinaryOp::kAnd, std::move(result),
                                    std::move(c));
  }
  return result;
}

std::unordered_set<int64_t> OutputIdSet(const LogicalOp& op) {
  std::unordered_set<int64_t> ids;
  for (const auto& c : op.outputs) ids.insert(c.id);
  return ids;
}

bool RefsSubsetOf(const Expr& e, const std::unordered_set<int64_t>& ids) {
  std::vector<int64_t> refs;
  exec::CollectColumnIds(e, &refs);
  for (int64_t r : refs) {
    if (ids.count(r) == 0) return false;
  }
  return true;
}

/// If `e` is `<colref> cmp <const>` (either side, including negated integer
/// constants like `-1`), extracts the pieces for a scan predicate.
bool MatchSimpleComparison(const Expr& e, int64_t* column_id, exec::BinaryOp* op,
                           exec::Value* value) {
  if (e.kind != ExprKind::kBinary || !exec::IsComparison(e.bin_op)) return false;
  const Expr& lhs = *e.children[0];
  const Expr& rhs = *e.children[1];
  auto flip = [](exec::BinaryOp o) {
    switch (o) {
      case exec::BinaryOp::kLt:
        return exec::BinaryOp::kGt;
      case exec::BinaryOp::kLe:
        return exec::BinaryOp::kGe;
      case exec::BinaryOp::kGt:
        return exec::BinaryOp::kLt;
      case exec::BinaryOp::kGe:
        return exec::BinaryOp::kLe;
      default:
        return o;
    }
  };
  auto as_const = [](const Expr& x, exec::Value* v) {
    if (x.kind == ExprKind::kConstant) {
      *v = x.constant;
      return true;
    }
    if (x.kind == ExprKind::kUnary && x.un_op == exec::UnaryOp::kNegate &&
        x.children[0]->kind == ExprKind::kConstant) {
      exec::Value inner = x.children[0]->constant;
      if (inner.type == exec::DataType::kInt64) {
        *v = exec::Value::Int64(-inner.i);
      } else {
        *v = exec::Value::Float(-inner.f);
      }
      return true;
    }
    return false;
  };
  exec::Value v;
  if (lhs.kind == ExprKind::kColumnRef && as_const(rhs, &v)) {
    *column_id = lhs.column_id;
    *op = e.bin_op;
    *value = v;
    return true;
  }
  if (rhs.kind == ExprKind::kColumnRef && as_const(lhs, &v)) {
    *column_id = rhs.column_id;
    *op = flip(e.bin_op);
    *value = v;
    return true;
  }
  return false;
}

/// Is the projection a pure rename (every expr a plain column ref)?
bool IsRenameOnlyProject(const LogicalOp& op) {
  for (const auto& e : op.exprs) {
    if (e->kind != ExprKind::kColumnRef) return false;
  }
  return true;
}

/// Attempts to absorb `conj` somewhere at-or-below `node`; returns true if
/// the conjunct was consumed.
bool TryPushConjunct(LogicalOp* node, ExprPtr& conj, bool allow_join_conversion) {
  switch (node->kind) {
    case LogicalKind::kScan: {
      int64_t column_id;
      exec::BinaryOp op;
      exec::Value value;
      if (!MatchSimpleComparison(*conj, &column_id, &op, &value)) return false;
      for (size_t i = 0; i < node->outputs.size(); ++i) {
        if (node->outputs[i].id == column_id) {
          exec::ScanPredicate pred;
          pred.column = node->scan_columns[i];
          pred.op = op;
          pred.value = value;
          node->pushed.push_back(pred);
          return true;
        }
      }
      return false;
    }
    case LogicalKind::kFilter: {
      if (TryPushConjunct(node->children[0].get(), conj, allow_join_conversion)) {
        return true;
      }
      node->condition = exec::MakeBinary(exec::BinaryOp::kAnd,
                                         std::move(node->condition), std::move(conj));
      return true;
    }
    case LogicalKind::kCrossJoin:
    case LogicalKind::kHashJoin: {
      for (int side = 0; side < 2; ++side) {
        LogicalOp* child = node->children[static_cast<size_t>(side)].get();
        if (!RefsSubsetOf(*conj, OutputIdSet(*child))) continue;
        if (TryPushConjunct(child, conj, allow_join_conversion)) return true;
        auto filter = std::make_unique<LogicalOp>();
        filter->kind = LogicalKind::kFilter;
        filter->condition = std::move(conj);
        filter->outputs = child->outputs;
        filter->children.push_back(
            std::move(node->children[static_cast<size_t>(side)]));
        node->children[static_cast<size_t>(side)] = std::move(filter);
        return true;
      }
      // An equality spanning both sides becomes a(nother) hash-join key —
      // this also upgrades nested cross joins reached through pushdown.
      if (allow_join_conversion && conj->kind == ExprKind::kBinary &&
          conj->bin_op == exec::BinaryOp::kEq) {
        auto left_ids = OutputIdSet(*node->children[0]);
        auto right_ids = OutputIdSet(*node->children[1]);
        Expr* a = conj->children[0].get();
        Expr* b = conj->children[1].get();
        std::vector<int64_t> a_refs, b_refs;
        exec::CollectColumnIds(*a, &a_refs);
        exec::CollectColumnIds(*b, &b_refs);
        if (!a_refs.empty() && !b_refs.empty()) {
          if (RefsSubsetOf(*a, left_ids) && RefsSubsetOf(*b, right_ids)) {
            node->probe_keys.push_back(std::move(conj->children[0]));
            node->build_keys.push_back(std::move(conj->children[1]));
            node->kind = LogicalKind::kHashJoin;
            return true;
          }
          if (RefsSubsetOf(*a, right_ids) && RefsSubsetOf(*b, left_ids)) {
            node->probe_keys.push_back(std::move(conj->children[1]));
            node->build_keys.push_back(std::move(conj->children[0]));
            node->kind = LogicalKind::kHashJoin;
            return true;
          }
        }
      }
      return false;
    }
    case LogicalKind::kProject: {
      if (!IsRenameOnlyProject(*node)) return false;
      std::unordered_map<int64_t, int64_t> mapping;
      for (size_t i = 0; i < node->exprs.size(); ++i) {
        mapping[node->outputs[i].id] = node->exprs[i]->column_id;
      }
      ExprPtr rewritten = exec::CloneExpr(*conj);
      if (!exec::RemapColumnIds(rewritten.get(), mapping)) return false;
      if (TryPushConjunct(node->children[0].get(), rewritten,
                          allow_join_conversion)) {
        return true;
      }
      auto filter = std::make_unique<LogicalOp>();
      filter->kind = LogicalKind::kFilter;
      filter->condition = std::move(rewritten);
      filter->outputs = node->children[0]->outputs;
      filter->children.push_back(std::move(node->children[0]));
      node->children[0] = std::move(filter);
      return true;
    }
    default:
      return false;
  }
}

void RecomputeJoinOutputs(LogicalOp* join) {
  join->outputs = join->children[0]->outputs;
  for (const auto& c : join->children[1]->outputs) join->outputs.push_back(c);
}

}  // namespace

Result<LogicalOpPtr> Optimizer::Optimize(LogicalOpPtr plan) {
  // With INDBML_VALIDATE=1 the plan is re-validated after every rewrite
  // pass, so a broken rule fails here with the pass named instead of
  // corrupting execution downstream.
  const bool validate = validation::Enabled();
  auto check = [&](const char* pass) -> Status {
    if (!validate) return Status::OK();
    Status status = ValidateLogicalPlan(*plan);
    if (!status.ok()) {
      return Status::Internal(std::string("optimizer pass '") + pass +
                              "' produced an invalid plan: " + status.message());
    }
    return Status::OK();
  };
  INDBML_RETURN_IF_ERROR(check("input"));

  // --- Pass 1: filter pushdown + join conversion (combined, bottom-up) ---
  struct Rewriter {
    const OptimizerOptions& options;

    LogicalOpPtr Rewrite(LogicalOpPtr op) {
      for (auto& child : op->children) child = Rewrite(std::move(child));

      if (op->kind != LogicalKind::kFilter) return op;
      LogicalOp* child = op->children[0].get();

      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(std::move(op->condition), &conjuncts);

      if (options.join_conversion && child->kind == LogicalKind::kCrossJoin) {
        auto left_ids = OutputIdSet(*child->children[0]);
        auto right_ids = OutputIdSet(*child->children[1]);
        std::vector<ExprPtr> keep;
        for (auto& c : conjuncts) {
          bool used = false;
          if (c->kind == ExprKind::kBinary && c->bin_op == exec::BinaryOp::kEq) {
            Expr* a = c->children[0].get();
            Expr* b = c->children[1].get();
            std::vector<int64_t> a_refs, b_refs;
            exec::CollectColumnIds(*a, &a_refs);
            exec::CollectColumnIds(*b, &b_refs);
            if (!a_refs.empty() && !b_refs.empty()) {
              bool a_left = RefsSubsetOf(*a, left_ids);
              bool a_right = RefsSubsetOf(*a, right_ids);
              bool b_left = RefsSubsetOf(*b, left_ids);
              bool b_right = RefsSubsetOf(*b, right_ids);
              if (a_left && b_right) {
                child->probe_keys.push_back(std::move(c->children[0]));
                child->build_keys.push_back(std::move(c->children[1]));
                used = true;
              } else if (a_right && b_left) {
                child->probe_keys.push_back(std::move(c->children[1]));
                child->build_keys.push_back(std::move(c->children[0]));
                used = true;
              }
            }
          }
          if (!used) keep.push_back(std::move(c));
        }
        if (!child->probe_keys.empty()) {
          child->kind = LogicalKind::kHashJoin;
        }
        conjuncts = std::move(keep);
      }

      if (options.predicate_pushdown) {
        std::vector<ExprPtr> keep;
        for (auto& c : conjuncts) {
          if (!TryPushConjunct(child, c, options.join_conversion)) {
            keep.push_back(std::move(c));
          }
        }
        conjuncts = std::move(keep);
      }

      if (conjuncts.empty()) {
        return std::move(op->children[0]);
      }
      op->condition = CombineConjuncts(std::move(conjuncts));
      return op;
    }
  };
  Rewriter rewriter{options_};
  plan = rewriter.Rewrite(std::move(plan));
  INDBML_RETURN_IF_ERROR(check("pushdown+join-conversion"));

  // --- Pass 2: projection pruning ---
  if (options_.projection_pruning) {
    struct Pruner {
      void Prune(LogicalOp* op, const std::unordered_set<int64_t>& needed) {
        switch (op->kind) {
          case LogicalKind::kScan: {
            std::vector<BoundColumn> outputs;
            std::vector<int> scan_columns;
            for (size_t i = 0; i < op->outputs.size(); ++i) {
              if (needed.count(op->outputs[i].id) > 0) {
                outputs.push_back(op->outputs[i]);
                scan_columns.push_back(op->scan_columns[i]);
              }
            }
            if (outputs.empty() && !op->outputs.empty()) {
              outputs.push_back(op->outputs[0]);
              scan_columns.push_back(op->scan_columns[0]);
            }
            op->outputs = std::move(outputs);
            op->scan_columns = std::move(scan_columns);
            return;
          }
          case LogicalKind::kFilter: {
            auto child_needed = needed;
            Collect(*op->condition, &child_needed);
            Prune(op->children[0].get(), child_needed);
            op->outputs = op->children[0]->outputs;
            return;
          }
          case LogicalKind::kProject: {
            std::vector<BoundColumn> outputs;
            std::vector<ExprPtr> exprs;
            std::unordered_set<int64_t> child_needed;
            for (size_t i = 0; i < op->exprs.size(); ++i) {
              if (needed.count(op->outputs[i].id) == 0) continue;
              Collect(*op->exprs[i], &child_needed);
              outputs.push_back(op->outputs[i]);
              exprs.push_back(std::move(op->exprs[i]));
            }
            if (exprs.empty()) {
              for (auto& e : op->exprs) {
                if (e != nullptr) {
                  Collect(*e, &child_needed);
                  outputs.push_back(op->outputs[0]);
                  exprs.push_back(std::move(e));
                  break;
                }
              }
            }
            op->outputs = std::move(outputs);
            op->exprs = std::move(exprs);
            Prune(op->children[0].get(), child_needed);
            return;
          }
          case LogicalKind::kHashJoin:
          case LogicalKind::kCrossJoin: {
            std::unordered_set<int64_t> probe_needed;
            std::unordered_set<int64_t> build_needed;
            auto probe_ids = OutputIdSet(*op->children[0]);
            for (int64_t id : needed) {
              if (probe_ids.count(id) > 0) {
                probe_needed.insert(id);
              } else {
                build_needed.insert(id);
              }
            }
            for (const auto& k : op->probe_keys) Collect(*k, &probe_needed);
            for (const auto& k : op->build_keys) Collect(*k, &build_needed);
            Prune(op->children[0].get(), probe_needed);
            Prune(op->children[1].get(), build_needed);
            RecomputeJoinOutputs(op);
            return;
          }
          case LogicalKind::kAggregate: {
            std::unordered_set<int64_t> child_needed;
            for (const auto& g : op->groups) Collect(*g, &child_needed);
            for (const auto& a : op->aggregates) {
              if (a.argument) Collect(*a.argument, &child_needed);
            }
            Prune(op->children[0].get(), child_needed);
            return;
          }
          case LogicalKind::kSort: {
            auto child_needed = needed;
            for (const auto& k : op->sort_keys) Collect(*k, &child_needed);
            Prune(op->children[0].get(), child_needed);
            op->outputs = op->children[0]->outputs;
            return;
          }
          case LogicalKind::kLimit: {
            Prune(op->children[0].get(), needed);
            op->outputs = op->children[0]->outputs;
            return;
          }
          case LogicalKind::kModelJoin: {
            std::unordered_set<int64_t> child_needed;
            auto child_ids = OutputIdSet(*op->children[0]);
            for (int64_t id : needed) {
              if (child_ids.count(id) > 0) child_needed.insert(id);
            }
            for (int64_t id : op->modeljoin.input_column_ids) {
              child_needed.insert(id);
            }
            Prune(op->children[0].get(), child_needed);
            std::vector<BoundColumn> predictions;
            for (const auto& c : op->outputs) {
              if (child_ids.count(c.id) == 0) predictions.push_back(c);
            }
            op->outputs = op->children[0]->outputs;
            for (const auto& c : predictions) op->outputs.push_back(c);
            return;
          }
        }
      }

      static void Collect(const Expr& e, std::unordered_set<int64_t>* ids) {
        std::vector<int64_t> refs;
        exec::CollectColumnIds(e, &refs);
        ids->insert(refs.begin(), refs.end());
      }
    };
    Pruner pruner;
    std::unordered_set<int64_t> all;
    for (const auto& c : plan->outputs) all.insert(c.id);
    pruner.Prune(plan.get(), all);
    INDBML_RETURN_IF_ERROR(check("projection-pruning"));
  }

  // --- Pass 3: ordered aggregation ---
  if (options_.ordered_aggregation) {
    struct OrderRule {
      std::vector<int64_t> Apply(LogicalOp* op) {
        std::vector<std::vector<int64_t>> child_orders;
        for (auto& child : op->children) {
          child_orders.push_back(Apply(child.get()));
        }
        switch (op->kind) {
          case LogicalKind::kScan: {
            std::vector<int64_t> order;
            for (const std::string& name : op->table->sorted_by()) {
              bool found = false;
              for (size_t i = 0; i < op->outputs.size(); ++i) {
                if (EqualsIgnoreCase(op->outputs[i].name, name)) {
                  order.push_back(op->outputs[i].id);
                  found = true;
                  break;
                }
              }
              if (!found) break;
            }
            return order;
          }
          case LogicalKind::kFilter:
          case LogicalKind::kLimit:
          case LogicalKind::kModelJoin:
            return child_orders[0];
          case LogicalKind::kProject: {
            std::vector<int64_t> order;
            for (int64_t id : child_orders[0]) {
              bool mapped = false;
              for (size_t i = 0; i < op->exprs.size(); ++i) {
                if (op->exprs[i]->kind == ExprKind::kColumnRef &&
                    op->exprs[i]->column_id == id) {
                  order.push_back(op->outputs[i].id);
                  mapped = true;
                  break;
                }
              }
              if (!mapped) break;
            }
            return order;
          }
          case LogicalKind::kHashJoin:
            return child_orders[0];  // probe order preserved
          case LogicalKind::kCrossJoin: {
            std::vector<int64_t> order = child_orders[0];
            for (int64_t id : child_orders[1]) order.push_back(id);
            return order;
          }
          case LogicalKind::kSort: {
            std::vector<int64_t> order;
            for (size_t i = 0; i < op->sort_keys.size(); ++i) {
              if (op->sort_keys[i]->kind != ExprKind::kColumnRef ||
                  !op->ascending[i]) {
                break;
              }
              order.push_back(op->sort_keys[i]->column_id);
            }
            return order;
          }
          case LogicalKind::kAggregate: {
            std::vector<int64_t> group_ids(op->groups.size(), -1);
            for (size_t g = 0; g < op->groups.size(); ++g) {
              if (op->groups[g]->kind == ExprKind::kColumnRef) {
                group_ids[g] = op->groups[g]->column_id;
              }
            }
            std::vector<size_t> prefix_groups;
            for (int64_t id : child_orders[0]) {
              auto it = std::find(group_ids.begin(), group_ids.end(), id);
              if (it == group_ids.end()) break;
              size_t g = static_cast<size_t>(it - group_ids.begin());
              if (std::find(prefix_groups.begin(), prefix_groups.end(), g) !=
                  prefix_groups.end()) {
                break;
              }
              prefix_groups.push_back(g);
            }
            if (prefix_groups.empty()) return {};
            // Reorder groups (and matching output columns) so the sorted
            // prefix comes first; the streaming operator requires it.
            std::vector<size_t> new_order = prefix_groups;
            for (size_t g = 0; g < op->groups.size(); ++g) {
              if (std::find(prefix_groups.begin(), prefix_groups.end(), g) ==
                  prefix_groups.end()) {
                new_order.push_back(g);
              }
            }
            std::vector<ExprPtr> groups;
            std::vector<BoundColumn> outputs;
            for (size_t g : new_order) {
              groups.push_back(std::move(op->groups[g]));
              outputs.push_back(op->outputs[g]);
            }
            for (size_t i = op->groups.size(); i < op->outputs.size(); ++i) {
              outputs.push_back(op->outputs[i]);
            }
            op->groups = std::move(groups);
            op->outputs = std::move(outputs);
            op->streaming = true;
            op->streaming_prefix = static_cast<int>(prefix_groups.size());
            std::vector<int64_t> order;
            for (size_t i = 0; i < prefix_groups.size(); ++i) {
              order.push_back(op->outputs[i].id);
            }
            return order;
          }
        }
        return {};
      }
    };
    OrderRule rule;
    rule.Apply(plan.get());
    INDBML_RETURN_IF_ERROR(check("ordered-aggregation"));
  }

  return plan;
}

PlanAnalysis Optimizer::Analyze(const LogicalOp& plan) const {
  PlanAnalysis analysis;

  // The partitioned table is the one scanned by the leftmost-deepest leaf
  // (the fact table in the generated ModelJoin queries). Every scan of that
  // table — it may appear on several join branches, e.g. the LSTM kernel and
  // recurrent paths — is partitioned identically, so id-equijoins between
  // branches stay partition-aligned.
  const LogicalOp* leaf = &plan;
  while (!leaf->children.empty()) leaf = leaf->children[0].get();
  if (leaf->kind != LogicalKind::kScan) {
    analysis.parallel_safe = false;
    return analysis;
  }
  analysis.partitioned_table = leaf->table.get();

  // Partition-property propagation over the whole tree. `has` marks a
  // subtree containing a partitioned scan; `col` is the binding id of the
  // partition (unique-id) column in the subtree's output, or -1 if it was
  // projected away.
  struct PInfo {
    bool has = false;
    int64_t col = -1;
  };
  struct Walker {
    const storage::Table* target;
    bool safe = true;

    PInfo Walk(const LogicalOp* op) {
      switch (op->kind) {
        case LogicalKind::kScan: {
          PInfo info;
          if (op->table.get() != target) return info;
          info.has = true;
          const std::string& unique_col = op->table->unique_id_column();
          if (!unique_col.empty()) {
            for (const auto& c : op->outputs) {
              if (EqualsIgnoreCase(c.name, unique_col)) {
                info.col = c.id;
                break;
              }
            }
          }
          return info;
        }
        case LogicalKind::kFilter:
        case LogicalKind::kModelJoin:
          return Walk(op->children[0].get());
        case LogicalKind::kLimit: {
          PInfo info = Walk(op->children[0].get());
          if (info.has) safe = false;  // global LIMIT does not decompose
          return info;
        }
        case LogicalKind::kProject: {
          PInfo info = Walk(op->children[0].get());
          if (!info.has || info.col < 0) return info;
          int64_t mapped = -1;
          for (size_t i = 0; i < op->exprs.size(); ++i) {
            if (op->exprs[i]->kind == ExprKind::kColumnRef &&
                op->exprs[i]->column_id == info.col) {
              mapped = op->outputs[i].id;
              break;
            }
          }
          info.col = mapped;
          return info;
        }
        case LogicalKind::kHashJoin: {
          PInfo l = Walk(op->children[0].get());
          PInfo r = Walk(op->children[1].get());
          if (l.has && r.has) {
            // Both branches are partitioned: a join key must align them on
            // the partition column or partition-crossing matches get lost.
            bool aligned = false;
            for (size_t i = 0; i < op->probe_keys.size(); ++i) {
              if (op->probe_keys[i]->kind == ExprKind::kColumnRef &&
                  op->probe_keys[i]->column_id == l.col && l.col >= 0 &&
                  op->build_keys[i]->kind == ExprKind::kColumnRef &&
                  op->build_keys[i]->column_id == r.col && r.col >= 0) {
                aligned = true;
                break;
              }
            }
            if (!aligned) safe = false;
            return l;
          }
          if (l.has) return l;
          if (r.has) return r;
          return {};
        }
        case LogicalKind::kCrossJoin: {
          PInfo l = Walk(op->children[0].get());
          PInfo r = Walk(op->children[1].get());
          if (l.has && r.has) {
            safe = false;  // partitioned x partitioned loses cross pairs
            return l;
          }
          return l.has ? l : r;
        }
        case LogicalKind::kSort: {
          PInfo info = Walk(op->children[0].get());
          if (!info.has) return info;
          // Concatenating per-partition results is only a global sort when
          // the leading key is the (ascending) partition column.
          if (op->sort_keys.empty() ||
              op->sort_keys[0]->kind != ExprKind::kColumnRef ||
              op->sort_keys[0]->column_id != info.col || info.col < 0 ||
              !op->ascending[0]) {
            safe = false;
          }
          return info;
        }
        case LogicalKind::kAggregate: {
          PInfo info = Walk(op->children[0].get());
          if (!info.has) return info;
          for (size_t g = 0; g < op->groups.size(); ++g) {
            if (op->groups[g]->kind == ExprKind::kColumnRef &&
                op->groups[g]->column_id == info.col && info.col >= 0) {
              info.col = op->outputs[g].id;
              return info;
            }
          }
          safe = false;  // groups may span partitions
          return info;
        }
      }
      return {};
    }
  };
  Walker walker{analysis.partitioned_table};
  PInfo root = walker.Walk(&plan);
  // A root without partition property would emit identical copies from
  // every partition.
  analysis.parallel_safe = walker.safe && root.has;
  return analysis;
}

}  // namespace indbml::sql
