#ifndef INDBML_SQL_AST_H_
#define INDBML_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace indbml::sql {

/// \file Parse-tree (unbound) representation of SELECT statements —
/// names are unresolved, types unknown. The binder turns this into a typed
/// logical plan.

struct ParsedExpr;
using ParsedExprPtr = std::unique_ptr<ParsedExpr>;

struct ParsedExpr {
  enum class Kind {
    kColumn,       ///< [qualifier.]name
    kStar,         ///< * (select list or COUNT(*))
    kIntLiteral,
    kFloatLiteral,
    kBoolLiteral,
    kBinary,       ///< op in {+,-,*,/,%,=,<>,<,<=,>,>=,AND,OR}
    kUnary,        ///< NOT, unary -
    kFunction,     ///< name(args) — scalar or aggregate
    kCase,         ///< WHEN/THEN pairs + optional ELSE in children
  };

  Kind kind;
  std::string qualifier;  ///< kColumn
  std::string name;       ///< kColumn / kFunction name / operator text
  int64_t int_value = 0;
  double float_value = 0;
  bool bool_value = false;
  std::vector<ParsedExprPtr> children;
  /// kCase: children = when1, then1, ..., [else]; has_else marks the tail.
  bool has_else = false;

  std::string ToString() const;
};

struct SelectItem {
  ParsedExprPtr expr;  ///< null for bare '*'
  std::string alias;   ///< empty if none
};

struct SelectStatement;

struct TableRef {
  enum class Kind { kBase, kSubquery, kJoin, kCrossJoin, kModelJoin };

  Kind kind;
  // kBase
  std::string table_name;
  std::string alias;
  // kSubquery
  std::unique_ptr<SelectStatement> subquery;
  // kJoin / kCrossJoin
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  ParsedExprPtr join_condition;  ///< null for cross joins
  // kModelJoin (left = input relation): MODEL JOIN <model_table>
  //   USING MODEL '<meta name>' [DEVICE '<cpu|gpu>'] [PREDICT (cols...)]
  std::string model_table;
  std::string model_name;
  std::string device = "cpu";
  std::vector<std::string> predict_columns;  ///< input columns; empty = all
};

struct OrderItem {
  ParsedExprPtr expr;
  bool ascending = true;
};

struct SelectStatement {
  std::vector<SelectItem> select_list;
  std::unique_ptr<TableRef> from;  ///< may be null (SELECT 1+1)
  ParsedExprPtr where;             ///< nullable
  std::vector<ParsedExprPtr> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< -1 = none
};

}  // namespace indbml::sql

#endif  // INDBML_SQL_AST_H_
