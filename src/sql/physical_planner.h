#ifndef INDBML_SQL_PHYSICAL_PLANNER_H_
#define INDBML_SQL_PHYSICAL_PLANNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/profile.h"
#include "sql/logical_plan.h"
#include "sql/optimizer.h"

namespace indbml::sql {

/// Inference-path knobs carried through the planner into the ModelJoin
/// operator factory. A plain struct (not inference::InferenceOptions): the
/// SQL layer sits below src/inference in the include layering, so the
/// modeljoin factory converts it at the boundary.
struct InferenceExecOptions {
  /// Cross-query coalescing window (µs) of the inference batcher; 0
  /// disables batching (engine default — the serving server turns it on).
  int64_t batch_window_us = 0;
  /// Row bound per coalesced inference launch.
  int64_t max_batch_rows = 4096;
  /// Memoize per-tuple predictions in the inference result cache.
  bool result_cache = false;
};

/// Everything the native ModelJoin operator implementation needs from the
/// planner for one worker's instance.
struct ModelJoinPhysicalArgs {
  exec::OperatorPtr child;
  storage::TablePtr model_table;
  /// Positions of the model input columns in the child's output chunk.
  std::vector<int> input_column_indexes;
  nn::ModelMeta meta;
  std::string device;
  std::vector<std::string> prediction_names;
  /// Query-wide state shared by all worker instances (the shared model
  /// of the parallel build phase, paper §5.2). Created once per query by
  /// the registered state factory.
  std::shared_ptr<void> shared_state;
  int worker = 0;
  int num_workers = 1;
  /// Batching/cache knobs for this query (QueryEngine::Options::inference).
  InferenceExecOptions inference;
};

/// Everything the ModelJoin state factory needs to create (or look up) the
/// shared model of one ModelJoin node.
struct ModelJoinStateArgs {
  nn::ModelMeta meta;
  std::string device;
  /// Build participants of the per-query barrier build (ignored when
  /// `shared` — the registry builds with a single builder).
  int num_workers = 1;
  /// The deployed relational model representation (registry identity: a
  /// replaced model table invalidates the cached model).
  storage::TablePtr model_table;
  /// True = resolve through the process-wide SharedModelRegistry so
  /// concurrent queries over the same (model, device) build it once and the
  /// state arrives pre-built (barrier-free Open — required by the shared
  /// executor's lazy per-instance opens). False = the classic per-query
  /// state whose build runs cooperatively inside the workers' Open calls.
  bool shared = false;
};

/// Creates the per-query (or registry-shared, see ModelJoinStateArgs::shared)
/// state of the native ModelJoin.
using ModelJoinStateFactory =
    std::function<Result<std::shared_ptr<void>>(const ModelJoinStateArgs&)>;

/// Creates the per-worker native ModelJoin operator.
using ModelJoinOperatorFactory =
    std::function<Result<exec::OperatorPtr>(ModelJoinPhysicalArgs args)>;

/// \brief Lowers an optimized logical plan to per-worker operator trees.
///
/// Column references (binder ids) are rewritten to chunk positions. In the
/// default (static) mode, the partitioned scan identified by the
/// PlanAnalysis receives its worker's row range; with `morsel_driven` set,
/// that scan is built morsel-bound instead (empty until the pipeline
/// executor assigns it a row range via Rewind). Every other scan reads its
/// full table in each worker.
class PhysicalPlanner {
 public:
  /// With a non-null `profile`, Prepare() registers every plan node in it
  /// and Instantiate() wraps each operator in an exec::ProfiledOperator
  /// writing that profile (EXPLAIN ANALYZE); with null, plans execute with
  /// zero profiling overhead.
  PhysicalPlanner(const LogicalOp* plan, const PlanAnalysis& analysis,
                  int requested_workers, ModelJoinStateFactory state_factory,
                  ModelJoinOperatorFactory operator_factory,
                  exec::QueryProfile* profile = nullptr,
                  bool morsel_driven = false, bool zero_copy_scan = true,
                  bool fused_pipeline = true, bool shared_models = false,
                  InferenceExecOptions inference = {});

  /// Effective worker count (1 if the plan is not parallel-safe).
  int num_workers() const { return num_workers_; }

  /// Builds the operator tree for one worker. Thread-compatible: called
  /// concurrently for distinct workers after Prepare() succeeded.
  Result<exec::OperatorPtr> Instantiate(int worker);

  /// Creates shared state (ModelJoin) once; must be called before the first
  /// Instantiate.
  Status Prepare();

 private:
  Result<exec::OperatorPtr> Build(const LogicalOp& node, int worker);
  Result<exec::OperatorPtr> BuildNode(const LogicalOp& node, int worker);
  /// Fuses a [Project(column refs)] [Filter]* Scan chain rooted at `node`
  /// into one FusedTableScanOperator. Returns nullptr (OK) when the chain
  /// does not qualify; the caller falls through to discrete operators.
  Result<exec::OperatorPtr> TryBuildFused(const LogicalOp& node, int worker);
  void RegisterProfileNodes(const LogicalOp& node, int depth);

  const LogicalOp* plan_;
  PlanAnalysis analysis_;
  int num_workers_;
  bool morsel_driven_;
  bool zero_copy_scan_;
  bool fused_pipeline_;
  bool shared_models_;
  InferenceExecOptions inference_;
  ModelJoinStateFactory state_factory_;
  ModelJoinOperatorFactory operator_factory_;
  exec::QueryProfile* profile_;
  /// Profile node ids per plan node (filled by Prepare when profiling).
  std::unordered_map<const LogicalOp*, int> profile_node_ids_;
  /// Shared states per ModelJoin node (keyed by node pointer).
  std::unordered_map<const LogicalOp*, std::shared_ptr<void>> modeljoin_states_;
};

}  // namespace indbml::sql

#endif  // INDBML_SQL_PHYSICAL_PLANNER_H_
