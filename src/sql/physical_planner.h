#ifndef INDBML_SQL_PHYSICAL_PLANNER_H_
#define INDBML_SQL_PHYSICAL_PLANNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/profile.h"
#include "sql/logical_plan.h"
#include "sql/optimizer.h"

namespace indbml::sql {

/// Everything the native ModelJoin operator implementation needs from the
/// planner for one partition's instance.
struct ModelJoinPhysicalArgs {
  exec::OperatorPtr child;
  storage::TablePtr model_table;
  /// Positions of the model input columns in the child's output chunk.
  std::vector<int> input_column_indexes;
  nn::ModelMeta meta;
  std::string device;
  std::vector<std::string> prediction_names;
  /// Query-wide state shared by all partition instances (the shared model
  /// of the parallel build phase, paper §5.2). Created once per query by
  /// the registered state factory.
  std::shared_ptr<void> shared_state;
  int partition = 0;
  int num_partitions = 1;
};

/// Creates the per-query shared state of the native ModelJoin.
using ModelJoinStateFactory = std::function<Result<std::shared_ptr<void>>(
    const nn::ModelMeta& meta, const std::string& device, int num_partitions)>;

/// Creates the per-partition native ModelJoin operator.
using ModelJoinOperatorFactory =
    std::function<Result<exec::OperatorPtr>(ModelJoinPhysicalArgs args)>;

/// \brief Lowers an optimized logical plan to per-partition operator trees.
///
/// Column references (binder ids) are rewritten to chunk positions; the
/// partitioned scan identified by the PlanAnalysis receives its partition's
/// row range, every other scan reads its full table in each partition.
class PhysicalPlanner {
 public:
  /// With a non-null `profile`, Prepare() registers every plan node in it
  /// and Instantiate() wraps each operator in an exec::ProfiledOperator
  /// writing that profile (EXPLAIN ANALYZE); with null, plans execute with
  /// zero profiling overhead.
  PhysicalPlanner(const LogicalOp* plan, const PlanAnalysis& analysis,
                  int requested_partitions, ModelJoinStateFactory state_factory,
                  ModelJoinOperatorFactory operator_factory,
                  exec::QueryProfile* profile = nullptr);

  /// Effective partition count (1 if the plan is not parallel-safe).
  int num_partitions() const { return num_partitions_; }

  /// Builds the operator tree for one partition. Thread-compatible: called
  /// concurrently for distinct partitions after Prepare() succeeded.
  Result<exec::OperatorPtr> Instantiate(int partition);

  /// Creates shared state (ModelJoin) once; must be called before the first
  /// Instantiate.
  Status Prepare();

 private:
  Result<exec::OperatorPtr> Build(const LogicalOp& node, int partition);
  Result<exec::OperatorPtr> BuildNode(const LogicalOp& node, int partition);
  void RegisterProfileNodes(const LogicalOp& node, int depth);

  const LogicalOp* plan_;
  PlanAnalysis analysis_;
  int num_partitions_;
  ModelJoinStateFactory state_factory_;
  ModelJoinOperatorFactory operator_factory_;
  exec::QueryProfile* profile_;
  /// Profile node ids per plan node (filled by Prepare when profiling).
  std::unordered_map<const LogicalOp*, int> profile_node_ids_;
  /// Shared states per ModelJoin node (keyed by node pointer).
  std::unordered_map<const LogicalOp*, std::shared_ptr<void>> modeljoin_states_;
};

}  // namespace indbml::sql

#endif  // INDBML_SQL_PHYSICAL_PLANNER_H_
