#ifndef INDBML_SQL_PARSER_H_
#define INDBML_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace indbml::sql {

/// Parses one SELECT statement (optionally ';'-terminated).
///
/// Supported grammar (the subset ML-To-SQL emits plus general conveniences):
///   SELECT item[, ...] FROM table_ref [WHERE expr]
///     [GROUP BY expr[, ...]] [ORDER BY expr [ASC|DESC][, ...]] [LIMIT n]
///   table_ref := base [AS alias] | '(' select ')' [AS] alias
///              | table_ref ',' table_ref                  (cross join)
///              | table_ref [INNER] JOIN table_ref ON expr
///              | table_ref CROSS JOIN table_ref
///              | table_ref MODEL JOIN base USING MODEL 'name'
///                  [DEVICE 'cpu'|'gpu'] [PREDICT '(' col[, ...] ')']
Result<std::unique_ptr<SelectStatement>> ParseSelect(const std::string& sql);

}  // namespace indbml::sql

#endif  // INDBML_SQL_PARSER_H_
