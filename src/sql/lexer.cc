#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "common/string_util.h"

namespace indbml::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>({
      "SELECT", "FROM",  "WHERE", "GROUP",  "BY",    "ORDER",   "ASC",
      "DESC",   "LIMIT", "AS",    "AND",    "OR",    "NOT",     "CASE",
      "WHEN",   "THEN",  "ELSE",  "END",    "JOIN",  "INNER",   "CROSS",
      "ON",     "MODEL", "USING", "DEVICE", "PREDICT", "TRUE",  "FALSE",
      "CAST",   "SUM",   "COUNT", "MIN",    "MAX",    "AVG",    "DISTINCT",
  });
  return *kKeywords;
}

}  // namespace

bool IsKeyword(const std::string& upper) { return Keywords().count(upper) > 0; }

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      tokens.push_back(tok);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string num = sql.substr(start, i - start);
      if (is_float) {
        tok.type = TokenType::kFloatLiteral;
        tok.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kIntLiteral;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tok.text = num;
      tokens.push_back(tok);
      continue;
    }
    if (c == '\'') {
      size_t start = ++i;
      while (i < n && sql[i] != '\'') ++i;
      if (i >= n) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %d", tok.position));
      }
      tok.type = TokenType::kStringLiteral;
      tok.text = sql.substr(start, i - start);
      ++i;
      tokens.push_back(tok);
      continue;
    }
    // Multi-char operators.
    if (c == '<' && i + 1 < n && (sql[i + 1] == '=' || sql[i + 1] == '>')) {
      tok.type = TokenType::kOperator;
      tok.text = sql.substr(i, 2);
      i += 2;
      tokens.push_back(tok);
      continue;
    }
    if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      tok.type = TokenType::kOperator;
      tok.text = ">=";
      i += 2;
      tokens.push_back(tok);
      continue;
    }
    if (std::strchr("+-*/%=<>(),.;", c) != nullptr) {
      tok.type = TokenType::kOperator;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(tok);
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %d", c, tok.position));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

}  // namespace indbml::sql
