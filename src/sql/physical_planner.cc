#include "sql/physical_planner.h"

#include <unordered_map>

#include "common/string_util.h"
#include "common/validation.h"
#include "exec/aggregate.h"
#include "exec/basic_operators.h"
#include "exec/fused_scan.h"
#include "exec/join.h"
#include "exec/scan.h"
#include "exec/validate.h"

namespace indbml::sql {

using exec::ExprPtr;
using exec::OperatorPtr;

namespace {

/// Mapping from binder column ids to chunk positions of an operator output.
std::unordered_map<int64_t, int64_t> PositionMap(const std::vector<BoundColumn>& cols,
                                                 int64_t offset = 0) {
  std::unordered_map<int64_t, int64_t> map;
  for (size_t i = 0; i < cols.size(); ++i) {
    map[cols[i].id] = offset + static_cast<int64_t>(i);
  }
  return map;
}

Result<ExprPtr> Remap(const exec::Expr& expr,
                      const std::unordered_map<int64_t, int64_t>& mapping) {
  ExprPtr clone = exec::CloneExpr(expr);
  if (!exec::RemapColumnIds(clone.get(), mapping)) {
    return Status::Internal("expression references a column missing from the child: " +
                            expr.ToString());
  }
  return clone;
}

/// Division and modulo can fail per row (divide by zero). The fused scan
/// evaluates residual conditions over all window rows, not just prior
/// survivors, so only conditions that cannot fail row-wise are fusable.
bool ExprHasDivOrMod(const exec::Expr& e) {
  if (e.kind == exec::ExprKind::kBinary &&
      (e.bin_op == exec::BinaryOp::kDiv || e.bin_op == exec::BinaryOp::kMod)) {
    return true;
  }
  for (const auto& c : e.children) {
    if (ExprHasDivOrMod(*c)) return true;
  }
  return false;
}

}  // namespace

PhysicalPlanner::PhysicalPlanner(const LogicalOp* plan, const PlanAnalysis& analysis,
                                 int requested_workers,
                                 ModelJoinStateFactory state_factory,
                                 ModelJoinOperatorFactory operator_factory,
                                 exec::QueryProfile* profile, bool morsel_driven,
                                 bool zero_copy_scan, bool fused_pipeline,
                                 bool shared_models,
                                 InferenceExecOptions inference)
    : plan_(plan),
      analysis_(analysis),
      num_workers_(analysis.parallel_safe ? std::max(1, requested_workers) : 1),
      morsel_driven_(morsel_driven && analysis.parallel_safe &&
                     analysis.partitioned_table != nullptr),
      zero_copy_scan_(zero_copy_scan),
      fused_pipeline_(fused_pipeline),
      shared_models_(shared_models),
      inference_(inference),
      state_factory_(std::move(state_factory)),
      operator_factory_(std::move(operator_factory)),
      profile_(profile) {}

void PhysicalPlanner::RegisterProfileNodes(const LogicalOp& node, int depth) {
  profile_node_ids_[&node] = profile_->RegisterNode(node.NodeString(), depth);
  for (const auto& child : node.children) {
    RegisterProfileNodes(*child, depth + 1);
  }
}

Status PhysicalPlanner::Prepare() {
  if (profile_ != nullptr) {
    RegisterProfileNodes(*plan_, 0);
    profile_->SetNumWorkers(num_workers_);
  }
  // Create shared ModelJoin state once per ModelJoin node, serially.
  struct Visitor {
    PhysicalPlanner* planner;
    Status Visit(const LogicalOp& node) {
      for (const auto& child : node.children) {
        INDBML_RETURN_NOT_OK(Visit(*child));
      }
      if (node.kind == LogicalKind::kModelJoin) {
        if (planner->state_factory_ == nullptr) {
          return Status::NotImplemented(
              "no native ModelJoin implementation registered with this engine");
        }
        ModelJoinStateArgs state_args;
        state_args.meta = node.modeljoin.meta;
        state_args.device = node.modeljoin.device;
        state_args.num_workers = planner->num_workers_;
        state_args.model_table = node.modeljoin.model_table;
        state_args.shared = planner->shared_models_;
        INDBML_ASSIGN_OR_RETURN(auto state,
                                planner->state_factory_(state_args));
        planner->modeljoin_states_[&node] = std::move(state);
      }
      return Status::OK();
    }
  };
  Visitor visitor{this};
  return visitor.Visit(*plan_);
}

Result<OperatorPtr> PhysicalPlanner::Instantiate(int worker) {
  return Build(*plan_, worker);
}

Result<OperatorPtr> PhysicalPlanner::Build(const LogicalOp& node, int worker) {
  INDBML_ASSIGN_OR_RETURN(auto op, BuildNode(node, worker));
  if (validation::Enabled()) {
    // Model predictions may legitimately be non-finite; every other
    // operator emitting a NaN is propagating a corrupted intermediate.
    bool allow_non_finite = node.kind == LogicalKind::kModelJoin;
    op = std::make_unique<exec::ValidatingOperator>(
        std::move(op), node.NodeString(), allow_non_finite);
  }
  if (profile_ != nullptr) {
    op = std::make_unique<exec::ProfiledOperator>(std::move(op), profile_,
                                                  profile_node_ids_.at(&node));
  }
  return op;
}

Result<OperatorPtr> PhysicalPlanner::TryBuildFused(const LogicalOp& node,
                                                   int worker) {
  // Fusion rides on the zero-copy substrate (it emits selection vectors over
  // table storage). Profiled plans keep the discrete operators so EXPLAIN
  // ANALYZE reports true per-operator row counts and timings.
  if (!zero_copy_scan_ || !fused_pipeline_ || profile_ != nullptr) {
    return OperatorPtr();
  }
  const LogicalOp* cur = &node;
  const LogicalOp* project = nullptr;
  if (cur->kind == LogicalKind::kProject) {
    // Only pure column-selection projects fuse; computed expressions keep
    // the discrete ProjectOperator.
    for (const auto& e : cur->exprs) {
      if (e->kind != exec::ExprKind::kColumnRef) return OperatorPtr();
    }
    project = cur;
    cur = cur->children[0].get();
  }
  std::vector<const LogicalOp*> filters;  // chain root first
  while (cur->kind == LogicalKind::kFilter) {
    if (ExprHasDivOrMod(*cur->condition)) return OperatorPtr();
    filters.push_back(cur);
    cur = cur->children[0].get();
  }
  if (cur->kind != LogicalKind::kScan) return OperatorPtr();
  const LogicalOp& scan = *cur;
  // A bare scan with no predicates gains nothing from fusion.
  if (filters.empty() && scan.pushed.empty()) return OperatorPtr();

  // Filter conditions and the projection both reference the scan's outputs
  // (filters preserve their child's columns), so one map serves all.
  auto scan_map = PositionMap(scan.outputs);
  std::vector<ExprPtr> residuals;
  for (auto it = filters.rbegin(); it != filters.rend(); ++it) {
    INDBML_ASSIGN_OR_RETURN(auto cond, Remap(*(*it)->condition, scan_map));
    residuals.push_back(std::move(cond));
  }
  std::vector<int> projection;
  std::vector<std::string> names;
  if (project != nullptr) {
    for (size_t i = 0; i < project->exprs.size(); ++i) {
      auto it = scan_map.find(project->exprs[i]->column_id);
      if (it == scan_map.end()) return OperatorPtr();
      projection.push_back(static_cast<int>(it->second));
      names.push_back(project->outputs[i].name);
    }
  } else {
    for (size_t i = 0; i < scan.outputs.size(); ++i) {
      projection.push_back(static_cast<int>(i));
      names.push_back(scan.outputs[i].name);
    }
  }

  if (morsel_driven_ && scan.table.get() == analysis_.partitioned_table) {
    return OperatorPtr(std::make_unique<exec::FusedTableScanOperator>(
        exec::FusedTableScanOperator::MorselBound{}, scan.table,
        scan.scan_columns, scan.pushed, std::move(residuals),
        std::move(projection), std::move(names)));
  }
  storage::PartitionRange range{0, scan.table->num_rows()};
  if (scan.table.get() == analysis_.partitioned_table && num_workers_ > 1) {
    range = scan.table->MakePartitions(num_workers_)[static_cast<size_t>(worker)];
  }
  return OperatorPtr(std::make_unique<exec::FusedTableScanOperator>(
      scan.table, range, scan.scan_columns, scan.pushed, std::move(residuals),
      std::move(projection), std::move(names)));
}

Result<OperatorPtr> PhysicalPlanner::BuildNode(const LogicalOp& node, int worker) {
  switch (node.kind) {
    case LogicalKind::kScan: {
      INDBML_ASSIGN_OR_RETURN(auto fused, TryBuildFused(node, worker));
      if (fused != nullptr) return fused;
      if (morsel_driven_ && node.table.get() == analysis_.partitioned_table) {
        // Morsel-bound: starts empty; the pipeline executor re-targets the
        // scan's row range per claimed morsel via Rewind.
        return OperatorPtr(std::make_unique<exec::TableScanOperator>(
            exec::TableScanOperator::MorselBound{}, node.table, node.scan_columns,
            node.pushed, zero_copy_scan_));
      }
      storage::PartitionRange range{0, node.table->num_rows()};
      if (node.table.get() == analysis_.partitioned_table && num_workers_ > 1) {
        range = node.table->MakePartitions(num_workers_)[static_cast<size_t>(worker)];
      }
      return OperatorPtr(std::make_unique<exec::TableScanOperator>(
          node.table, range, node.scan_columns, node.pushed, zero_copy_scan_));
    }
    case LogicalKind::kFilter: {
      INDBML_ASSIGN_OR_RETURN(auto fused, TryBuildFused(node, worker));
      if (fused != nullptr) return fused;
      INDBML_ASSIGN_OR_RETURN(auto child, Build(*node.children[0], worker));
      auto mapping = PositionMap(node.children[0]->outputs);
      INDBML_ASSIGN_OR_RETURN(auto cond, Remap(*node.condition, mapping));
      return OperatorPtr(
          std::make_unique<exec::FilterOperator>(std::move(child), std::move(cond)));
    }
    case LogicalKind::kProject: {
      INDBML_ASSIGN_OR_RETURN(auto fused, TryBuildFused(node, worker));
      if (fused != nullptr) return fused;
      INDBML_ASSIGN_OR_RETURN(auto child, Build(*node.children[0], worker));
      auto mapping = PositionMap(node.children[0]->outputs);
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (size_t i = 0; i < node.exprs.size(); ++i) {
        INDBML_ASSIGN_OR_RETURN(auto e, Remap(*node.exprs[i], mapping));
        exprs.push_back(std::move(e));
        names.push_back(node.outputs[i].name);
      }
      return OperatorPtr(std::make_unique<exec::ProjectOperator>(
          std::move(child), std::move(exprs), std::move(names)));
    }
    case LogicalKind::kHashJoin: {
      INDBML_ASSIGN_OR_RETURN(auto probe, Build(*node.children[0], worker));
      INDBML_ASSIGN_OR_RETURN(auto build, Build(*node.children[1], worker));
      auto probe_map = PositionMap(node.children[0]->outputs);
      auto build_map = PositionMap(node.children[1]->outputs);
      std::vector<ExprPtr> probe_keys;
      std::vector<ExprPtr> build_keys;
      for (const auto& k : node.probe_keys) {
        INDBML_ASSIGN_OR_RETURN(auto e, Remap(*k, probe_map));
        probe_keys.push_back(std::move(e));
      }
      for (const auto& k : node.build_keys) {
        INDBML_ASSIGN_OR_RETURN(auto e, Remap(*k, build_map));
        build_keys.push_back(std::move(e));
      }
      return OperatorPtr(std::make_unique<exec::HashJoinOperator>(
          std::move(probe), std::move(build), std::move(probe_keys),
          std::move(build_keys)));
    }
    case LogicalKind::kCrossJoin: {
      INDBML_ASSIGN_OR_RETURN(auto left, Build(*node.children[0], worker));
      INDBML_ASSIGN_OR_RETURN(auto right, Build(*node.children[1], worker));
      return OperatorPtr(std::make_unique<exec::CrossJoinOperator>(std::move(left),
                                                                   std::move(right)));
    }
    case LogicalKind::kAggregate: {
      INDBML_ASSIGN_OR_RETURN(auto child, Build(*node.children[0], worker));
      auto mapping = PositionMap(node.children[0]->outputs);
      std::vector<ExprPtr> groups;
      std::vector<std::string> group_names;
      for (size_t g = 0; g < node.groups.size(); ++g) {
        INDBML_ASSIGN_OR_RETURN(auto e, Remap(*node.groups[g], mapping));
        groups.push_back(std::move(e));
        group_names.push_back(node.outputs[g].name);
      }
      std::vector<exec::AggregateSpec> aggs;
      for (const auto& a : node.aggregates) {
        exec::AggregateSpec spec;
        spec.function = a.function;
        spec.result_type = a.result_type;
        spec.name = a.name;
        if (a.argument) {
          INDBML_ASSIGN_OR_RETURN(spec.argument, Remap(*a.argument, mapping));
        }
        aggs.push_back(std::move(spec));
      }
      if (node.streaming) {
        return OperatorPtr(std::make_unique<exec::StreamingAggregateOperator>(
            std::move(child), std::move(groups), std::move(group_names),
            std::move(aggs), node.streaming_prefix));
      }
      return OperatorPtr(std::make_unique<exec::HashAggregateOperator>(
          std::move(child), std::move(groups), std::move(group_names),
          std::move(aggs)));
    }
    case LogicalKind::kSort: {
      INDBML_ASSIGN_OR_RETURN(auto child, Build(*node.children[0], worker));
      auto mapping = PositionMap(node.children[0]->outputs);
      std::vector<ExprPtr> keys;
      for (const auto& k : node.sort_keys) {
        INDBML_ASSIGN_OR_RETURN(auto e, Remap(*k, mapping));
        keys.push_back(std::move(e));
      }
      return OperatorPtr(std::make_unique<exec::SortOperator>(
          std::move(child), std::move(keys), node.ascending));
    }
    case LogicalKind::kLimit: {
      INDBML_ASSIGN_OR_RETURN(auto child, Build(*node.children[0], worker));
      return OperatorPtr(
          std::make_unique<exec::LimitOperator>(std::move(child), node.limit));
    }
    case LogicalKind::kModelJoin: {
      if (operator_factory_ == nullptr) {
        return Status::NotImplemented(
            "no native ModelJoin implementation registered with this engine");
      }
      INDBML_ASSIGN_OR_RETURN(auto child, Build(*node.children[0], worker));
      auto mapping = PositionMap(node.children[0]->outputs);
      ModelJoinPhysicalArgs args;
      for (int64_t id : node.modeljoin.input_column_ids) {
        auto it = mapping.find(id);
        if (it == mapping.end()) {
          return Status::Internal("ModelJoin input column pruned away");
        }
        args.input_column_indexes.push_back(static_cast<int>(it->second));
      }
      args.child = std::move(child);
      args.model_table = node.modeljoin.model_table;
      args.meta = node.modeljoin.meta;
      args.device = node.modeljoin.device;
      size_t child_width = node.children[0]->outputs.size();
      for (size_t i = child_width; i < node.outputs.size(); ++i) {
        args.prediction_names.push_back(node.outputs[i].name);
      }
      args.shared_state = modeljoin_states_.at(&node);
      args.worker = worker;
      args.num_workers = num_workers_;
      args.inference = inference_;
      return operator_factory_(std::move(args));
    }
  }
  return Status::Internal("unhandled logical operator");
}

}  // namespace indbml::sql
