#include "sql/binder.h"

#include <algorithm>

#include "common/string_util.h"

namespace indbml::sql {

using exec::DataType;
using exec::Expr;
using exec::ExprPtr;

void ModelMetaRegistry::Register(nn::ModelMeta meta) {
  std::function<void()> on_mutate;
  {
    MutexLock lock(mu_);
    metas_[ToLower(meta.name)] = std::move(meta);
    on_mutate = on_mutate_;
  }
  // Outside the lock: the callback bumps the catalog version, and callers
  // of Get must never block on it.
  if (on_mutate) on_mutate();
}

Result<nn::ModelMeta> ModelMetaRegistry::Get(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = metas_.find(ToLower(name));
  if (it == metas_.end()) {
    return Status::NotFound("model '" + name + "' is not registered");
  }
  return it->second;
}

std::vector<std::string> ModelMetaRegistry::ListModels() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  for (const auto& [k, v] : metas_) names.push_back(v.name);
  std::sort(names.begin(), names.end());
  return names;
}

void ModelMetaRegistry::SetMutationCallback(std::function<void()> callback) {
  MutexLock lock(mu_);
  on_mutate_ = std::move(callback);
}

bool ContainsAggregate(const ParsedExpr& e) {
  if (e.kind == ParsedExpr::Kind::kFunction) {
    std::string lower = ToLower(e.name);
    if (lower == "sum" || lower == "count" || lower == "min" || lower == "max" ||
        lower == "avg") {
      return true;
    }
  }
  for (const auto& c : e.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

namespace {

bool IsAggregateName(const std::string& lower) {
  return lower == "sum" || lower == "count" || lower == "min" || lower == "max" ||
         lower == "avg";
}

Result<exec::AggFunction> AggFromName(const std::string& lower) {
  if (lower == "sum") return exec::AggFunction::kSum;
  if (lower == "count") return exec::AggFunction::kCount;
  if (lower == "min") return exec::AggFunction::kMin;
  if (lower == "max") return exec::AggFunction::kMax;
  if (lower == "avg") return exec::AggFunction::kAvg;
  return Status::BindError("unknown aggregate: " + lower);
}

Result<exec::ScalarFn> ScalarFromName(const std::string& lower) {
  if (lower == "sigmoid") return exec::ScalarFn::kSigmoid;
  if (lower == "tanh") return exec::ScalarFn::kTanh;
  if (lower == "relu") return exec::ScalarFn::kRelu;
  if (lower == "exp") return exec::ScalarFn::kExp;
  if (lower == "abs") return exec::ScalarFn::kAbs;
  if (lower == "sin") return exec::ScalarFn::kSin;
  return Status::BindError("unknown function: " + lower);
}

Result<exec::BinaryOp> BinaryFromText(const std::string& op) {
  if (op == "+") return exec::BinaryOp::kAdd;
  if (op == "-") return exec::BinaryOp::kSub;
  if (op == "*") return exec::BinaryOp::kMul;
  if (op == "/") return exec::BinaryOp::kDiv;
  if (op == "%") return exec::BinaryOp::kMod;
  if (op == "=") return exec::BinaryOp::kEq;
  if (op == "<>") return exec::BinaryOp::kNe;
  if (op == "<") return exec::BinaryOp::kLt;
  if (op == "<=") return exec::BinaryOp::kLe;
  if (op == ">") return exec::BinaryOp::kGt;
  if (op == ">=") return exec::BinaryOp::kGe;
  if (op == "AND") return exec::BinaryOp::kAnd;
  if (op == "OR") return exec::BinaryOp::kOr;
  return Status::BindError("unknown operator: " + op);
}

/// Normalised text used for GROUP BY expression matching.
std::string NormalizedText(const ParsedExpr& e) { return ToLower(e.ToString()); }

/// Output name for an unaliased select item.
std::string DeriveName(const ParsedExpr& e, size_t index) {
  if (e.kind == ParsedExpr::Kind::kColumn) return e.name;
  if (e.kind == ParsedExpr::Kind::kFunction) return ToLower(e.name);
  return StrFormat("col_%zu", index);
}

}  // namespace

Result<LogicalOpPtr> Binder::Bind(const SelectStatement& stmt) {
  return BindSelect(stmt);
}

Result<BoundColumn> Binder::ResolveColumn(const ParsedExpr& parsed,
                                          const Scope& scope) {
  const BoundColumn* found = nullptr;
  if (!parsed.qualifier.empty()) {
    std::string q = ToLower(parsed.qualifier);
    for (const auto& entry : scope.entries) {
      if (entry.alias != q) continue;
      for (const auto& col : entry.columns) {
        if (EqualsIgnoreCase(col.name, parsed.name)) return col;
      }
      return Status::BindError("column '" + parsed.qualifier + "." + parsed.name +
                               "' not found");
    }
    // Projection scopes (ORDER BY binding) use an empty alias: fall back to
    // matching the bare column name there, so `ORDER BY p.id` resolves to
    // the projected `id` column.
    for (const auto& entry : scope.entries) {
      if (!entry.alias.empty()) continue;
      for (const auto& col : entry.columns) {
        if (EqualsIgnoreCase(col.name, parsed.name)) return col;
      }
    }
    return Status::BindError("unknown table alias '" + parsed.qualifier + "'");
  }
  for (const auto& entry : scope.entries) {
    for (const auto& col : entry.columns) {
      if (EqualsIgnoreCase(col.name, parsed.name)) {
        if (found != nullptr) {
          return Status::BindError("ambiguous column '" + parsed.name + "'");
        }
        found = &col;
      }
    }
  }
  if (found == nullptr) {
    return Status::BindError("column '" + parsed.name + "' not found");
  }
  return *found;
}

Result<ExprPtr> Binder::BindExpr(const ParsedExpr& parsed, const Scope& scope) {
  switch (parsed.kind) {
    case ParsedExpr::Kind::kColumn: {
      INDBML_ASSIGN_OR_RETURN(BoundColumn col, ResolveColumn(parsed, scope));
      return exec::MakeColumnRef(col.id, col.type, col.name);
    }
    case ParsedExpr::Kind::kIntLiteral:
      return exec::MakeConstant(exec::Value::Int64(parsed.int_value));
    case ParsedExpr::Kind::kFloatLiteral:
      return exec::MakeConstant(
          exec::Value::Float(static_cast<float>(parsed.float_value)));
    case ParsedExpr::Kind::kBoolLiteral:
      return exec::MakeConstant(exec::Value::Bool(parsed.bool_value));
    case ParsedExpr::Kind::kStar:
      return Status::BindError("'*' is only valid in the select list or COUNT(*)");
    case ParsedExpr::Kind::kBinary: {
      INDBML_ASSIGN_OR_RETURN(auto lhs, BindExpr(*parsed.children[0], scope));
      INDBML_ASSIGN_OR_RETURN(auto rhs, BindExpr(*parsed.children[1], scope));
      INDBML_ASSIGN_OR_RETURN(exec::BinaryOp op, BinaryFromText(parsed.name));
      if ((op == exec::BinaryOp::kAnd || op == exec::BinaryOp::kOr) &&
          (lhs->type != DataType::kBool || rhs->type != DataType::kBool)) {
        return Status::BindError("AND/OR require boolean operands");
      }
      return exec::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    case ParsedExpr::Kind::kUnary: {
      INDBML_ASSIGN_OR_RETURN(auto child, BindExpr(*parsed.children[0], scope));
      if (parsed.name == "NOT") {
        if (child->type != DataType::kBool) {
          return Status::BindError("NOT requires a boolean operand");
        }
        return exec::MakeUnary(exec::UnaryOp::kNot, std::move(child));
      }
      return exec::MakeUnary(exec::UnaryOp::kNegate, std::move(child));
    }
    case ParsedExpr::Kind::kFunction: {
      std::string lower = ToLower(parsed.name);
      if (IsAggregateName(lower)) {
        return Status::BindError("aggregate '" + lower +
                                 "' is not allowed in this context");
      }
      INDBML_ASSIGN_OR_RETURN(exec::ScalarFn fn, ScalarFromName(lower));
      if (parsed.children.size() != 1) {
        return Status::BindError("function '" + lower + "' takes one argument");
      }
      INDBML_ASSIGN_OR_RETURN(auto arg, BindExpr(*parsed.children[0], scope));
      std::vector<ExprPtr> args;
      args.push_back(std::move(arg));
      return exec::MakeFunction(fn, std::move(args));
    }
    case ParsedExpr::Kind::kCase: {
      size_t pairs_len = parsed.children.size() - (parsed.has_else ? 1 : 0);
      std::vector<ExprPtr> parts;
      DataType result_type = DataType::kInt64;
      bool any_float = false;
      std::vector<ExprPtr> thens;
      for (size_t i = 0; i + 2 <= pairs_len; i += 2) {
        INDBML_ASSIGN_OR_RETURN(auto cond, BindExpr(*parsed.children[i], scope));
        if (cond->type != DataType::kBool) {
          return Status::BindError("CASE WHEN condition must be boolean");
        }
        INDBML_ASSIGN_OR_RETURN(auto then, BindExpr(*parsed.children[i + 1], scope));
        if (then->type == DataType::kFloat) any_float = true;
        parts.push_back(std::move(cond));
        parts.push_back(std::move(then));
      }
      ExprPtr els;
      if (parsed.has_else) {
        INDBML_ASSIGN_OR_RETURN(els, BindExpr(*parsed.children.back(), scope));
        if (els->type == DataType::kFloat) any_float = true;
      }
      result_type = any_float ? DataType::kFloat : DataType::kInt64;
      // Coerce all THEN/ELSE branches to the common type.
      for (size_t i = 1; i < parts.size(); i += 2) {
        parts[i] = exec::MakeCast(std::move(parts[i]), result_type);
      }
      if (els) parts.push_back(exec::MakeCast(std::move(els), result_type));
      auto out = exec::MakeCase(std::move(parts));
      out->type = result_type;
      return out;
    }
  }
  return Status::Internal("unhandled parsed expression kind");
}

Result<LogicalOpPtr> Binder::BindFrom(const TableRef& ref, Scope* scope) {
  switch (ref.kind) {
    case TableRef::Kind::kBase: {
      INDBML_ASSIGN_OR_RETURN(storage::TablePtr table,
                              catalog_->GetTable(ref.table_name));
      auto op = std::make_unique<LogicalOp>();
      op->kind = LogicalKind::kScan;
      op->table = table;
      for (int i = 0; i < table->num_columns(); ++i) {
        BoundColumn col;
        col.id = NextId();
        col.name = table->fields()[static_cast<size_t>(i)].name;
        col.type = table->fields()[static_cast<size_t>(i)].type;
        op->outputs.push_back(col);
        op->scan_columns.push_back(i);
      }
      ScopeEntry entry;
      entry.alias = ToLower(ref.alias.empty() ? ref.table_name : ref.alias);
      entry.columns = op->outputs;
      scope->entries.push_back(std::move(entry));
      return op;
    }
    case TableRef::Kind::kSubquery: {
      INDBML_ASSIGN_OR_RETURN(auto plan, BindSelect(*ref.subquery));
      ScopeEntry entry;
      entry.alias = ToLower(ref.alias);
      entry.columns = plan->outputs;
      scope->entries.push_back(std::move(entry));
      return plan;
    }
    case TableRef::Kind::kCrossJoin:
    case TableRef::Kind::kJoin: {
      INDBML_ASSIGN_OR_RETURN(auto left, BindFrom(*ref.left, scope));
      INDBML_ASSIGN_OR_RETURN(auto right, BindFrom(*ref.right, scope));
      auto join = std::make_unique<LogicalOp>();
      join->kind = LogicalKind::kCrossJoin;
      join->outputs = left->outputs;
      for (const auto& c : right->outputs) join->outputs.push_back(c);
      join->children.push_back(std::move(left));
      join->children.push_back(std::move(right));
      if (ref.kind == TableRef::Kind::kJoin) {
        auto filter = std::make_unique<LogicalOp>();
        filter->kind = LogicalKind::kFilter;
        INDBML_ASSIGN_OR_RETURN(filter->condition,
                                BindExpr(*ref.join_condition, *scope));
        if (filter->condition->type != DataType::kBool) {
          return Status::BindError("JOIN condition must be boolean");
        }
        filter->outputs = join->outputs;
        filter->children.push_back(std::move(join));
        return filter;
      }
      return join;
    }
    case TableRef::Kind::kModelJoin: {
      INDBML_ASSIGN_OR_RETURN(auto input, BindFrom(*ref.left, scope));
      INDBML_ASSIGN_OR_RETURN(storage::TablePtr model_table,
                              catalog_->GetTable(ref.model_table));
      INDBML_ASSIGN_OR_RETURN(nn::ModelMeta meta, models_->Get(ref.model_name));
      auto op = std::make_unique<LogicalOp>();
      op->kind = LogicalKind::kModelJoin;
      op->modeljoin.model_table = model_table;
      op->modeljoin.meta = meta;
      op->modeljoin.device = ref.device;

      // Resolve the model's input columns from the child outputs.
      if (!ref.predict_columns.empty()) {
        for (const std::string& name : ref.predict_columns) {
          const BoundColumn* found = nullptr;
          for (const auto& c : input->outputs) {
            if (EqualsIgnoreCase(c.name, name)) {
              found = &c;
              break;
            }
          }
          if (found == nullptr) {
            return Status::BindError("PREDICT column '" + name + "' not found");
          }
          op->modeljoin.input_column_ids.push_back(found->id);
        }
      } else {
        // Default: all columns except one named "id" (the unique row id).
        for (const auto& c : input->outputs) {
          if (EqualsIgnoreCase(c.name, "id")) continue;
          op->modeljoin.input_column_ids.push_back(c.id);
        }
      }
      if (static_cast<int64_t>(op->modeljoin.input_column_ids.size()) !=
          meta.input_width()) {
        return Status::BindError(StrFormat(
            "model '%s' expects %lld input columns, ModelJoin received %zu",
            meta.name.c_str(), static_cast<long long>(meta.input_width()),
            op->modeljoin.input_column_ids.size()));
      }

      op->outputs = input->outputs;
      int64_t out_dim = meta.output_dim();
      for (int64_t i = 0; i < out_dim; ++i) {
        BoundColumn col;
        col.id = NextId();
        col.name = out_dim == 1 ? "prediction" : StrFormat("prediction_%lld",
                                                           static_cast<long long>(i));
        col.type = DataType::kFloat;
        op->outputs.push_back(col);
      }
      op->children.push_back(std::move(input));

      ScopeEntry entry;
      entry.alias = "__modeljoin__";
      // Only the prediction columns are newly visible under this pseudo
      // alias; the input columns stay visible through their own entries.
      entry.columns.assign(op->outputs.end() - out_dim, op->outputs.end());
      scope->entries.push_back(std::move(entry));
      return op;
    }
  }
  return Status::Internal("unhandled table ref kind");
}

Result<ExprPtr> Binder::BindGroupedExpr(const ParsedExpr& parsed, const Scope& scope,
                                        const std::vector<std::string>& group_texts,
                                        const std::vector<BoundColumn>& group_outputs,
                                        std::vector<exec::AggregateSpec>* aggs,
                                        std::vector<BoundColumn>* agg_outputs) {
  // Whole-subtree match against a GROUP BY expression?
  std::string text = NormalizedText(parsed);
  for (size_t g = 0; g < group_texts.size(); ++g) {
    if (group_texts[g] == text) {
      const BoundColumn& col = group_outputs[g];
      return exec::MakeColumnRef(col.id, col.type, col.name);
    }
  }
  // Aggregate call?
  if (parsed.kind == ParsedExpr::Kind::kFunction && IsAggregateName(ToLower(parsed.name))) {
    INDBML_ASSIGN_OR_RETURN(exec::AggFunction fn, AggFromName(ToLower(parsed.name)));
    exec::AggregateSpec spec;
    spec.function = fn;
    if (parsed.children.size() == 1 &&
        parsed.children[0]->kind == ParsedExpr::Kind::kStar) {
      if (fn != exec::AggFunction::kCount) {
        return Status::BindError("'*' argument is only valid for COUNT");
      }
      spec.argument = nullptr;
      spec.result_type = DataType::kInt64;
    } else {
      if (parsed.children.size() != 1) {
        return Status::BindError("aggregates take exactly one argument");
      }
      INDBML_ASSIGN_OR_RETURN(spec.argument, BindExpr(*parsed.children[0], scope));
      switch (fn) {
        case exec::AggFunction::kCount:
          spec.result_type = DataType::kInt64;
          break;
        case exec::AggFunction::kAvg:
          spec.result_type = DataType::kFloat;
          break;
        default:
          spec.result_type = spec.argument->type;
          break;
      }
    }
    BoundColumn col;
    col.id = NextId();
    col.name = StrFormat("%s_%zu", ToLower(parsed.name).c_str(), agg_outputs->size());
    col.type = spec.result_type;
    spec.name = col.name;
    agg_outputs->push_back(col);
    aggs->push_back(std::move(spec));
    return exec::MakeColumnRef(col.id, col.type, col.name);
  }
  // Otherwise descend; bare columns at this point are errors.
  switch (parsed.kind) {
    case ParsedExpr::Kind::kColumn:
      return Status::BindError("column '" + parsed.ToString() +
                               "' must appear in GROUP BY or inside an aggregate");
    case ParsedExpr::Kind::kIntLiteral:
    case ParsedExpr::Kind::kFloatLiteral:
    case ParsedExpr::Kind::kBoolLiteral:
      return BindExpr(parsed, scope);
    case ParsedExpr::Kind::kBinary: {
      INDBML_ASSIGN_OR_RETURN(
          auto lhs, BindGroupedExpr(*parsed.children[0], scope, group_texts,
                                    group_outputs, aggs, agg_outputs));
      INDBML_ASSIGN_OR_RETURN(
          auto rhs, BindGroupedExpr(*parsed.children[1], scope, group_texts,
                                    group_outputs, aggs, agg_outputs));
      INDBML_ASSIGN_OR_RETURN(exec::BinaryOp op, BinaryFromText(parsed.name));
      return exec::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    case ParsedExpr::Kind::kUnary: {
      INDBML_ASSIGN_OR_RETURN(
          auto child, BindGroupedExpr(*parsed.children[0], scope, group_texts,
                                      group_outputs, aggs, agg_outputs));
      return exec::MakeUnary(
          parsed.name == "NOT" ? exec::UnaryOp::kNot : exec::UnaryOp::kNegate,
          std::move(child));
    }
    case ParsedExpr::Kind::kFunction: {
      INDBML_ASSIGN_OR_RETURN(exec::ScalarFn fn, ScalarFromName(ToLower(parsed.name)));
      if (parsed.children.size() != 1) {
        return Status::BindError("function takes one argument");
      }
      INDBML_ASSIGN_OR_RETURN(
          auto arg, BindGroupedExpr(*parsed.children[0], scope, group_texts,
                                    group_outputs, aggs, agg_outputs));
      std::vector<ExprPtr> args;
      args.push_back(std::move(arg));
      return exec::MakeFunction(fn, std::move(args));
    }
    case ParsedExpr::Kind::kCase: {
      size_t pairs_len = parsed.children.size() - (parsed.has_else ? 1 : 0);
      std::vector<ExprPtr> parts;
      bool any_float = false;
      for (size_t i = 0; i + 2 <= pairs_len; i += 2) {
        INDBML_ASSIGN_OR_RETURN(
            auto cond, BindGroupedExpr(*parsed.children[i], scope, group_texts,
                                       group_outputs, aggs, agg_outputs));
        INDBML_ASSIGN_OR_RETURN(
            auto then, BindGroupedExpr(*parsed.children[i + 1], scope, group_texts,
                                       group_outputs, aggs, agg_outputs));
        if (then->type == DataType::kFloat) any_float = true;
        parts.push_back(std::move(cond));
        parts.push_back(std::move(then));
      }
      ExprPtr els;
      if (parsed.has_else) {
        INDBML_ASSIGN_OR_RETURN(
            els, BindGroupedExpr(*parsed.children.back(), scope, group_texts,
                                 group_outputs, aggs, agg_outputs));
        if (els->type == DataType::kFloat) any_float = true;
      }
      DataType result_type = any_float ? DataType::kFloat : DataType::kInt64;
      for (size_t i = 1; i < parts.size(); i += 2) {
        parts[i] = exec::MakeCast(std::move(parts[i]), result_type);
      }
      if (els) parts.push_back(exec::MakeCast(std::move(els), result_type));
      auto out = exec::MakeCase(std::move(parts));
      out->type = result_type;
      return out;
    }
    case ParsedExpr::Kind::kStar:
      return Status::BindError("'*' is not valid here");
  }
  return Status::Internal("unhandled grouped expression");
}

Result<LogicalOpPtr> Binder::BindSelect(const SelectStatement& stmt) {
  Scope scope;
  LogicalOpPtr plan;
  if (stmt.from != nullptr) {
    INDBML_ASSIGN_OR_RETURN(plan, BindFrom(*stmt.from, &scope));
  } else {
    return Status::NotImplemented("SELECT without FROM is not supported");
  }

  if (stmt.where != nullptr) {
    auto filter = std::make_unique<LogicalOp>();
    filter->kind = LogicalKind::kFilter;
    INDBML_ASSIGN_OR_RETURN(filter->condition, BindExpr(*stmt.where, scope));
    if (filter->condition->type != DataType::kBool) {
      return Status::BindError("WHERE condition must be boolean");
    }
    filter->outputs = plan->outputs;
    filter->children.push_back(std::move(plan));
    plan = std::move(filter);
  }

  bool has_aggregates = !stmt.group_by.empty();
  for (const auto& item : stmt.select_list) {
    if (item.expr && ContainsAggregate(*item.expr)) has_aggregates = true;
  }

  std::vector<exec::ExprPtr> select_exprs;
  std::vector<std::string> select_names;

  if (has_aggregates) {
    // Bind GROUP BY expressions and give each an output column.
    std::vector<std::string> group_texts;
    std::vector<BoundColumn> group_outputs;
    std::vector<exec::ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    for (const auto& g : stmt.group_by) {
      INDBML_ASSIGN_OR_RETURN(auto bound, BindExpr(*g, scope));
      BoundColumn col;
      col.id = NextId();
      col.name = g->kind == ParsedExpr::Kind::kColumn
                     ? g->name
                     : StrFormat("group_%zu", group_outputs.size());
      col.type = bound->type;
      group_texts.push_back(NormalizedText(*g));
      group_outputs.push_back(col);
      group_names.push_back(col.name);
      group_exprs.push_back(std::move(bound));
    }

    std::vector<exec::AggregateSpec> aggs;
    std::vector<BoundColumn> agg_outputs;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const SelectItem& item = stmt.select_list[i];
      if (item.expr->kind == ParsedExpr::Kind::kStar) {
        return Status::BindError("SELECT * cannot be combined with GROUP BY");
      }
      INDBML_ASSIGN_OR_RETURN(
          auto bound, BindGroupedExpr(*item.expr, scope, group_texts, group_outputs,
                                      &aggs, &agg_outputs));
      select_names.push_back(item.alias.empty() ? DeriveName(*item.expr, i)
                                                : item.alias);
      select_exprs.push_back(std::move(bound));
    }

    auto agg = std::make_unique<LogicalOp>();
    agg->kind = LogicalKind::kAggregate;
    agg->groups = std::move(group_exprs);
    agg->aggregates = std::move(aggs);
    agg->outputs = group_outputs;
    for (const auto& c : agg_outputs) agg->outputs.push_back(c);
    agg->children.push_back(std::move(plan));
    plan = std::move(agg);
  } else {
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      const SelectItem& item = stmt.select_list[i];
      if (item.expr->kind == ParsedExpr::Kind::kStar) {
        for (const auto& entry : scope.entries) {
          for (const auto& col : entry.columns) {
            select_exprs.push_back(exec::MakeColumnRef(col.id, col.type, col.name));
            select_names.push_back(col.name);
          }
        }
        continue;
      }
      INDBML_ASSIGN_OR_RETURN(auto bound, BindExpr(*item.expr, scope));
      select_names.push_back(item.alias.empty() ? DeriveName(*item.expr, i)
                                                : item.alias);
      select_exprs.push_back(std::move(bound));
    }
  }

  // Final projection.
  auto project = std::make_unique<LogicalOp>();
  project->kind = LogicalKind::kProject;
  for (size_t i = 0; i < select_exprs.size(); ++i) {
    BoundColumn col;
    col.id = NextId();
    col.name = select_names[i];
    col.type = select_exprs[i]->type;
    project->outputs.push_back(col);
  }
  project->exprs = std::move(select_exprs);
  project->children.push_back(std::move(plan));
  plan = std::move(project);

  // ORDER BY binds against the projected outputs (by name/alias).
  if (!stmt.order_by.empty()) {
    Scope out_scope;
    ScopeEntry entry;
    entry.alias = "";
    entry.columns = plan->outputs;
    out_scope.entries.push_back(std::move(entry));

    auto sort = std::make_unique<LogicalOp>();
    sort->kind = LogicalKind::kSort;
    for (const auto& item : stmt.order_by) {
      INDBML_ASSIGN_OR_RETURN(auto key, BindExpr(*item.expr, out_scope));
      sort->sort_keys.push_back(std::move(key));
      sort->ascending.push_back(item.ascending);
    }
    sort->outputs = plan->outputs;
    sort->children.push_back(std::move(plan));
    plan = std::move(sort);
  }

  if (stmt.limit >= 0) {
    auto limit = std::make_unique<LogicalOp>();
    limit->kind = LogicalKind::kLimit;
    limit->limit = stmt.limit;
    limit->outputs = plan->outputs;
    limit->children.push_back(std::move(plan));
    plan = std::move(limit);
  }
  return plan;
}

}  // namespace indbml::sql
