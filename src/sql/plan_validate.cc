#include "sql/plan_validate.h"

#include <unordered_set>

#include "common/string_util.h"

namespace indbml::sql {

namespace {

using exec::Expr;
using exec::ExprPtr;

/// Label for error messages. Deliberately NOT LogicalOp::NodeString(): that
/// renders expressions, and a malformed node (the thing we are reporting)
/// may hold null expression pointers.
std::string SafeLabel(const LogicalOp& op) {
  switch (op.kind) {
    case LogicalKind::kScan:
      return op.table != nullptr ? "Scan " + op.table->name() : "Scan";
    case LogicalKind::kFilter:
      return "Filter";
    case LogicalKind::kProject:
      return "Project";
    case LogicalKind::kHashJoin:
      return "HashJoin";
    case LogicalKind::kCrossJoin:
      return "CrossJoin";
    case LogicalKind::kAggregate:
      return "Aggregate";
    case LogicalKind::kSort:
      return "Sort";
    case LogicalKind::kLimit:
      return "Limit";
    case LogicalKind::kModelJoin:
      return "ModelJoin";
  }
  return "?";
}

Status Fail(const LogicalOp& op, const std::string& what) {
  return Status::Internal("logical plan validation failed at " +
                          SafeLabel(op) + ": " + what);
}

std::unordered_set<int64_t> OutputIds(const LogicalOp& op) {
  std::unordered_set<int64_t> ids;
  for (const auto& c : op.outputs) ids.insert(c.id);
  return ids;
}

Status CheckExprRefs(const LogicalOp& op, const Expr& e,
                     const std::unordered_set<int64_t>& visible,
                     const char* role) {
  std::vector<int64_t> refs;
  exec::CollectColumnIds(e, &refs);
  for (int64_t r : refs) {
    if (visible.count(r) == 0) {
      return Fail(op, StrFormat("%s references column id %lld not produced "
                                "by any child",
                                role, static_cast<long long>(r)));
    }
  }
  return Status::OK();
}

Status CheckChildCount(const LogicalOp& op, size_t expected) {
  if (op.children.size() != expected) {
    return Fail(op, StrFormat("expected %lld children, found %lld",
                              static_cast<long long>(expected),
                              static_cast<long long>(op.children.size())));
  }
  for (const auto& child : op.children) {
    if (child == nullptr) return Fail(op, "null child");
  }
  return Status::OK();
}

/// Pass-through operators must forward their child's output columns
/// unchanged (same ids, same order).
Status CheckPassThroughOutputs(const LogicalOp& op, size_t prefix_only) {
  const LogicalOp& child = *op.children[0];
  size_t n = prefix_only > 0 ? prefix_only : op.outputs.size();
  if (prefix_only == 0 && op.outputs.size() != child.outputs.size()) {
    return Fail(op, StrFormat("%lld outputs but child produces %lld",
                              static_cast<long long>(op.outputs.size()),
                              static_cast<long long>(child.outputs.size())));
  }
  for (size_t i = 0; i < n; ++i) {
    if (op.outputs[i].id != child.outputs[i].id) {
      return Fail(op, StrFormat("output %lld id %lld != child output id %lld",
                                static_cast<long long>(i),
                                static_cast<long long>(op.outputs[i].id),
                                static_cast<long long>(child.outputs[i].id)));
    }
  }
  return Status::OK();
}

Status ValidateNode(const LogicalOp& op) {
  for (const auto& child : op.children) {
    if (child != nullptr) INDBML_RETURN_IF_ERROR(ValidateNode(*child));
  }
  if (op.outputs.empty()) return Fail(op, "operator produces no columns");

  switch (op.kind) {
    case LogicalKind::kScan: {
      INDBML_RETURN_IF_ERROR(CheckChildCount(op, 0));
      if (op.table == nullptr) return Fail(op, "scan without a table");
      if (op.scan_columns.size() != op.outputs.size()) {
        return Fail(op, "scan_columns out of sync with outputs");
      }
      for (int c : op.scan_columns) {
        if (c < 0 || c >= static_cast<int>(op.table->num_columns())) {
          return Fail(op, StrFormat("scan column index %d outside table", c));
        }
      }
      for (const auto& pred : op.pushed) {
        if (pred.column < 0 ||
            pred.column >= static_cast<int>(op.table->num_columns())) {
          return Fail(op, "pushed predicate on a column outside the table");
        }
      }
      return Status::OK();
    }
    case LogicalKind::kFilter: {
      INDBML_RETURN_IF_ERROR(CheckChildCount(op, 1));
      if (op.condition == nullptr) return Fail(op, "filter without condition");
      INDBML_RETURN_IF_ERROR(
          CheckExprRefs(op, *op.condition, OutputIds(*op.children[0]),
                        "filter condition"));
      return CheckPassThroughOutputs(op, 0);
    }
    case LogicalKind::kProject: {
      INDBML_RETURN_IF_ERROR(CheckChildCount(op, 1));
      if (op.exprs.size() != op.outputs.size()) {
        return Fail(op, "projection exprs out of sync with outputs");
      }
      auto visible = OutputIds(*op.children[0]);
      for (const auto& e : op.exprs) {
        if (e == nullptr) return Fail(op, "null projection expression");
        INDBML_RETURN_IF_ERROR(CheckExprRefs(op, *e, visible, "projection"));
      }
      return Status::OK();
    }
    case LogicalKind::kHashJoin:
    case LogicalKind::kCrossJoin: {
      INDBML_RETURN_IF_ERROR(CheckChildCount(op, 2));
      if (op.probe_keys.size() != op.build_keys.size()) {
        return Fail(op, "probe/build key count mismatch");
      }
      if (op.kind == LogicalKind::kHashJoin && op.probe_keys.empty()) {
        return Fail(op, "hash join without keys");
      }
      auto probe_ids = OutputIds(*op.children[0]);
      auto build_ids = OutputIds(*op.children[1]);
      for (size_t i = 0; i < op.probe_keys.size(); ++i) {
        INDBML_RETURN_IF_ERROR(
            CheckExprRefs(op, *op.probe_keys[i], probe_ids, "probe key"));
        INDBML_RETURN_IF_ERROR(
            CheckExprRefs(op, *op.build_keys[i], build_ids, "build key"));
      }
      size_t total = op.children[0]->outputs.size() +
                     op.children[1]->outputs.size();
      if (op.outputs.size() != total) {
        return Fail(op, "join outputs out of sync with children");
      }
      return Status::OK();
    }
    case LogicalKind::kAggregate: {
      INDBML_RETURN_IF_ERROR(CheckChildCount(op, 1));
      if (op.outputs.size() != op.groups.size() + op.aggregates.size()) {
        return Fail(op, "aggregate outputs out of sync with groups+aggregates");
      }
      auto visible = OutputIds(*op.children[0]);
      for (const auto& g : op.groups) {
        if (g == nullptr) return Fail(op, "null group expression");
        INDBML_RETURN_IF_ERROR(CheckExprRefs(op, *g, visible, "group key"));
      }
      for (const auto& a : op.aggregates) {
        if (a.argument != nullptr) {
          INDBML_RETURN_IF_ERROR(
              CheckExprRefs(op, *a.argument, visible, "aggregate argument"));
        }
      }
      if (op.streaming && (op.streaming_prefix <= 0 ||
                           op.streaming_prefix >
                               static_cast<int>(op.groups.size()))) {
        return Fail(op, "streaming prefix outside the group keys");
      }
      return Status::OK();
    }
    case LogicalKind::kSort: {
      INDBML_RETURN_IF_ERROR(CheckChildCount(op, 1));
      if (op.sort_keys.empty()) return Fail(op, "sort without keys");
      if (op.sort_keys.size() != op.ascending.size()) {
        return Fail(op, "sort keys out of sync with directions");
      }
      auto visible = OutputIds(*op.children[0]);
      for (const auto& k : op.sort_keys) {
        INDBML_RETURN_IF_ERROR(CheckExprRefs(op, *k, visible, "sort key"));
      }
      return CheckPassThroughOutputs(op, 0);
    }
    case LogicalKind::kLimit: {
      INDBML_RETURN_IF_ERROR(CheckChildCount(op, 1));
      if (op.limit < 0) return Fail(op, "negative limit");
      return CheckPassThroughOutputs(op, 0);
    }
    case LogicalKind::kModelJoin: {
      INDBML_RETURN_IF_ERROR(CheckChildCount(op, 1));
      if (op.modeljoin.model_table == nullptr) {
        return Fail(op, "model join without a model table");
      }
      if (op.modeljoin.input_column_ids.empty()) {
        return Fail(op, "model join without input columns");
      }
      auto visible = OutputIds(*op.children[0]);
      for (int64_t id : op.modeljoin.input_column_ids) {
        if (visible.count(id) == 0) {
          return Fail(op, StrFormat("model input column id %lld not produced "
                                    "by the child",
                                    static_cast<long long>(id)));
        }
      }
      if (op.outputs.size() <= op.children[0]->outputs.size()) {
        return Fail(op, "model join adds no prediction columns");
      }
      // Predictions follow the child's columns.
      return CheckPassThroughOutputs(op, op.children[0]->outputs.size());
    }
  }
  return Fail(op, "unknown operator kind");
}

bool ContainsKind(const LogicalOp& op, LogicalKind kind) {
  if (op.kind == kind) return true;
  for (const auto& child : op.children) {
    if (child != nullptr && ContainsKind(*child, kind)) return true;
  }
  return false;
}

}  // namespace

Status ValidateLogicalPlan(const LogicalOp& plan) { return ValidateNode(plan); }

Status ValidateMorselSafety(const LogicalOp& plan, const PlanAnalysis& analysis) {
  if (!analysis.parallel_safe) {
    return Status::Internal(
        "morsel-driven execution requested for a plan the analysis marked "
        "serial-only");
  }
  if (analysis.partitioned_table == nullptr) {
    return Status::Internal(
        "morsel-driven execution requested without a partitioned table");
  }
  bool order_sensitive = ContainsKind(plan, LogicalKind::kAggregate) ||
                         ContainsKind(plan, LogicalKind::kSort);
  if (order_sensitive) {
    const storage::Table& table = *analysis.partitioned_table;
    const std::string& id_name = table.unique_id_column();
    if (id_name.empty()) {
      return Status::Internal(
          "morsel-driven aggregation/sort over table '" + table.name() +
          "' which declares no unique-id column to align morsels on");
    }
    auto index = table.ColumnIndex(id_name);
    if (!index.ok() ||
        table.column(*index).type() != storage::DataType::kInt64) {
      return Status::Internal(
          "unique-id column '" + id_name + "' of table '" + table.name() +
          "' does not resolve to an Int64 column; morsel alignment impossible");
    }
  }
  return Status::OK();
}

}  // namespace indbml::sql
