#ifndef INDBML_SQL_PLAN_VALIDATE_H_
#define INDBML_SQL_PLAN_VALIDATE_H_

#include "common/status.h"
#include "sql/logical_plan.h"
#include "sql/optimizer.h"

namespace indbml::sql {

/// \brief Structural validation of a bound logical plan.
///
/// Re-checked after every optimizer pass when `INDBML_VALIDATE=1`, so a
/// broken rewrite (dangling column reference, join losing a key side,
/// outputs out of sync with children) fails the query with a descriptive
/// error instead of corrupting execution. Verifies per node: child counts
/// for the node kind, non-empty outputs, expression column references
/// resolving against child outputs, probe/build key symmetry on hash
/// joins, scan column indexes within the table, and output-column
/// consistency of pass-through nodes (filter/sort/limit).
Status ValidateLogicalPlan(const LogicalOp& plan);

/// \brief Safety check of the morsel-driven execution gate.
///
/// Run (under `INDBML_VALIDATE=1`) right before a plan is handed to the
/// pipeline executor. Verifies the facts the morsel path relies on: the
/// analysis marked the plan parallel-safe and identified a partitioned
/// table, and — when the plan contains an aggregation or sort, whose
/// decomposition depends on partition boundaries never splitting a group —
/// that the partitioned table declares a unique-id column resolving to an
/// Int64 column (MakeMorsels aligns morsel boundaries on it).
Status ValidateMorselSafety(const LogicalOp& plan, const PlanAnalysis& analysis);

}  // namespace indbml::sql

#endif  // INDBML_SQL_PLAN_VALIDATE_H_
