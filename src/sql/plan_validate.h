#ifndef INDBML_SQL_PLAN_VALIDATE_H_
#define INDBML_SQL_PLAN_VALIDATE_H_

#include "common/status.h"
#include "sql/logical_plan.h"

namespace indbml::sql {

/// \brief Structural validation of a bound logical plan.
///
/// Re-checked after every optimizer pass when `INDBML_VALIDATE=1`, so a
/// broken rewrite (dangling column reference, join losing a key side,
/// outputs out of sync with children) fails the query with a descriptive
/// error instead of corrupting execution. Verifies per node: child counts
/// for the node kind, non-empty outputs, expression column references
/// resolving against child outputs, probe/build key symmetry on hash
/// joins, scan column indexes within the table, and output-column
/// consistency of pass-through nodes (filter/sort/limit).
Status ValidateLogicalPlan(const LogicalOp& plan);

}  // namespace indbml::sql

#endif  // INDBML_SQL_PLAN_VALIDATE_H_
