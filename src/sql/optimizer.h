#ifndef INDBML_SQL_OPTIMIZER_H_
#define INDBML_SQL_OPTIMIZER_H_

#include "common/status.h"
#include "sql/logical_plan.h"

namespace indbml::sql {

/// Toggleable optimizations, defaults matching the paper's final setup
/// (§4.4). The ablation bench switches these off individually.
struct OptimizerOptions {
  /// Split WHERE conjuncts and push them towards (and into) scans;
  /// simple comparisons become zone-map scan predicates.
  bool predicate_pushdown = true;
  /// Turn Filter(CrossJoin) equality conjuncts into hash joins.
  bool join_conversion = true;
  /// Remove columns that no ancestor needs (late projection on the
  /// 16-column model table).
  bool projection_pruning = true;
  /// Replace hash aggregation with the sorted-prefix streaming aggregation
  /// when the input order allows it.
  bool ordered_aggregation = true;
};

/// Post-optimization facts the physical planner needs.
struct PlanAnalysis {
  /// True if the plan decomposes over contiguous partitions of the
  /// partitioned table (every aggregate groups by the partition column,
  /// joins between partitioned branches align on it, no global sort/limit
  /// conflicts).
  bool parallel_safe = false;
  /// The table whose scans are partitioned across threads (the fact table
  /// at the leftmost-deepest leaf); null if the plan has no scan.
  const storage::Table* partitioned_table = nullptr;
};

/// \brief Rule-based optimizer over the bound logical plan.
class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options = {}) : options_(options) {}

  /// Rewrites `plan` in place (ownership returned).
  Result<LogicalOpPtr> Optimize(LogicalOpPtr plan);

  /// Analyses order/partition properties; call after Optimize.
  PlanAnalysis Analyze(const LogicalOp& plan) const;

 private:
  OptimizerOptions options_;
};

}  // namespace indbml::sql

#endif  // INDBML_SQL_OPTIMIZER_H_
