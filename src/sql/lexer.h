#ifndef INDBML_SQL_LEXER_H_
#define INDBML_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace indbml::sql {

enum class TokenType {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kOperator,  // + - * / % = <> < <= > >= ( ) , . ;
  kEnd
};

struct Token {
  TokenType type;
  std::string text;  ///< keywords upper-cased, identifiers as written
  int64_t int_value = 0;
  double float_value = 0;
  int position = 0;  ///< byte offset in the input (error messages)
};

/// Tokenises a SQL string. Keywords are recognised case-insensitively and
/// normalised to upper case in `text`. Fails on unterminated strings or
/// unexpected characters.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// True if `word` (upper-cased) is a reserved keyword.
bool IsKeyword(const std::string& upper);

}  // namespace indbml::sql

#endif  // INDBML_SQL_LEXER_H_
