#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace indbml::sql {

namespace {

/// Recursive-descent parser with precedence climbing for expressions.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseStatement() {
    INDBML_ASSIGN_OR_RETURN(auto stmt, ParseSelectBody());
    if (PeekOp(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const char* kw, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kKeyword && t.text == kw;
  }
  bool PeekOp(const char* op, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kOperator && t.text == op;
  }
  bool AcceptKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptOp(const char* op) {
    if (PeekOp(op)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return Status::OK();
  }
  Status ExpectOp(const char* op) {
    if (!AcceptOp(op)) {
      return Error(std::string("expected '") + op + "'");
    }
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(StrFormat("%s at offset %d (near '%s')", msg.c_str(),
                                        t.position, t.text.c_str()));
  }

  Result<std::unique_ptr<SelectStatement>> ParseSelectBody() {
    INDBML_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStatement>();

    // Select list.
    do {
      SelectItem item;
      if (PeekOp("*")) {
        Advance();
        auto star = std::make_unique<ParsedExpr>();
        star->kind = ParsedExpr::Kind::kStar;
        item.expr = std::move(star);
      } else {
        INDBML_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          if (Peek().type != TokenType::kIdentifier) return Error("expected alias");
          item.alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier) {
          // Implicit alias: SELECT x y.
          item.alias = Advance().text;
        }
      }
      stmt->select_list.push_back(std::move(item));
    } while (AcceptOp(","));

    if (AcceptKeyword("FROM")) {
      INDBML_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
    }
    if (AcceptKeyword("WHERE")) {
      INDBML_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      INDBML_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        INDBML_ASSIGN_OR_RETURN(auto e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (AcceptOp(","));
    }
    if (AcceptKeyword("ORDER")) {
      INDBML_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        OrderItem item;
        INDBML_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          item.ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (AcceptOp(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral) return Error("expected LIMIT count");
      stmt->limit = Advance().int_value;
    }
    return stmt;
  }

  /// table_ref with left-associative join chaining.
  Result<std::unique_ptr<TableRef>> ParseTableRef() {
    INDBML_ASSIGN_OR_RETURN(auto left, ParsePrimaryTableRef());
    for (;;) {
      if (AcceptOp(",")) {
        INDBML_ASSIGN_OR_RETURN(auto right, ParsePrimaryTableRef());
        auto join = std::make_unique<TableRef>();
        join->kind = TableRef::Kind::kCrossJoin;
        join->left = std::move(left);
        join->right = std::move(right);
        left = std::move(join);
        continue;
      }
      if (PeekKeyword("CROSS")) {
        Advance();
        INDBML_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        INDBML_ASSIGN_OR_RETURN(auto right, ParsePrimaryTableRef());
        auto join = std::make_unique<TableRef>();
        join->kind = TableRef::Kind::kCrossJoin;
        join->left = std::move(left);
        join->right = std::move(right);
        left = std::move(join);
        continue;
      }
      if (PeekKeyword("INNER") || PeekKeyword("JOIN")) {
        AcceptKeyword("INNER");
        INDBML_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        INDBML_ASSIGN_OR_RETURN(auto right, ParsePrimaryTableRef());
        INDBML_RETURN_NOT_OK(ExpectKeyword("ON"));
        auto join = std::make_unique<TableRef>();
        join->kind = TableRef::Kind::kJoin;
        join->left = std::move(left);
        join->right = std::move(right);
        INDBML_ASSIGN_OR_RETURN(join->join_condition, ParseExpr());
        left = std::move(join);
        continue;
      }
      if (PeekKeyword("MODEL") && PeekKeyword("JOIN", 1)) {
        Advance();
        Advance();
        auto mj = std::make_unique<TableRef>();
        mj->kind = TableRef::Kind::kModelJoin;
        mj->left = std::move(left);
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected model table name");
        }
        mj->model_table = Advance().text;
        INDBML_RETURN_NOT_OK(ExpectKeyword("USING"));
        INDBML_RETURN_NOT_OK(ExpectKeyword("MODEL"));
        if (Peek().type != TokenType::kStringLiteral) {
          return Error("expected model name string");
        }
        mj->model_name = Advance().text;
        if (AcceptKeyword("DEVICE")) {
          if (Peek().type != TokenType::kStringLiteral) {
            return Error("expected device string");
          }
          mj->device = ToLower(Advance().text);
        }
        if (AcceptKeyword("PREDICT")) {
          INDBML_RETURN_NOT_OK(ExpectOp("("));
          do {
            if (Peek().type != TokenType::kIdentifier) {
              return Error("expected column name in PREDICT list");
            }
            mj->predict_columns.push_back(Advance().text);
          } while (AcceptOp(","));
          INDBML_RETURN_NOT_OK(ExpectOp(")"));
        }
        left = std::move(mj);
        continue;
      }
      break;
    }
    return left;
  }

  Result<std::unique_ptr<TableRef>> ParsePrimaryTableRef() {
    if (AcceptOp("(")) {
      auto ref = std::make_unique<TableRef>();
      ref->kind = TableRef::Kind::kSubquery;
      INDBML_ASSIGN_OR_RETURN(ref->subquery, ParseSelectBody());
      INDBML_RETURN_NOT_OK(ExpectOp(")"));
      AcceptKeyword("AS");
      if (Peek().type != TokenType::kIdentifier) {
        return Error("derived table requires an alias");
      }
      ref->alias = Advance().text;
      return ref;
    }
    if (Peek().type != TokenType::kIdentifier) return Error("expected table name");
    auto ref = std::make_unique<TableRef>();
    ref->kind = TableRef::Kind::kBase;
    ref->table_name = Advance().text;
    if (AcceptKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) return Error("expected alias");
      ref->alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      ref->alias = Advance().text;
    }
    return ref;
  }

  // ---- Expressions (precedence climbing) ----
  // OR < AND < NOT < comparison < additive < multiplicative < unary < primary

  Result<ParsedExprPtr> ParseExpr() { return ParseOr(); }

  Result<ParsedExprPtr> ParseOr() {
    INDBML_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      INDBML_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      lhs = MakeBinaryAst("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ParsedExprPtr> ParseAnd() {
    INDBML_ASSIGN_OR_RETURN(auto lhs, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      INDBML_ASSIGN_OR_RETURN(auto rhs, ParseNot());
      lhs = MakeBinaryAst("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ParsedExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      INDBML_ASSIGN_OR_RETURN(auto child, ParseNot());
      auto e = std::make_unique<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kUnary;
      e->name = "NOT";
      e->children.push_back(std::move(child));
      return e;
    }
    return ParseComparison();
  }

  Result<ParsedExprPtr> ParseComparison() {
    INDBML_ASSIGN_OR_RETURN(auto lhs, ParseAdditive());
    static const char* kOps[] = {"=", "<>", "<=", ">=", "<", ">"};
    for (const char* op : kOps) {
      if (PeekOp(op)) {
        Advance();
        INDBML_ASSIGN_OR_RETURN(auto rhs, ParseAdditive());
        return MakeBinaryAst(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ParsedExprPtr> ParseAdditive() {
    INDBML_ASSIGN_OR_RETURN(auto lhs, ParseMultiplicative());
    for (;;) {
      if (PeekOp("+") || PeekOp("-")) {
        std::string op = Advance().text;
        INDBML_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
        lhs = MakeBinaryAst(op, std::move(lhs), std::move(rhs));
        continue;
      }
      return lhs;
    }
  }

  Result<ParsedExprPtr> ParseMultiplicative() {
    INDBML_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    for (;;) {
      if (PeekOp("*") || PeekOp("/") || PeekOp("%")) {
        std::string op = Advance().text;
        INDBML_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
        lhs = MakeBinaryAst(op, std::move(lhs), std::move(rhs));
        continue;
      }
      return lhs;
    }
  }

  Result<ParsedExprPtr> ParseUnary() {
    if (AcceptOp("-")) {
      INDBML_ASSIGN_OR_RETURN(auto child, ParseUnary());
      auto e = std::make_unique<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kUnary;
      e->name = "-";
      e->children.push_back(std::move(child));
      return e;
    }
    AcceptOp("+");
    return ParsePrimary();
  }

  Result<ParsedExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.type == TokenType::kIntLiteral) {
      Advance();
      auto e = std::make_unique<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kIntLiteral;
      e->int_value = t.int_value;
      return e;
    }
    if (t.type == TokenType::kFloatLiteral) {
      Advance();
      auto e = std::make_unique<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kFloatLiteral;
      e->float_value = t.float_value;
      return e;
    }
    if (PeekKeyword("TRUE") || PeekKeyword("FALSE")) {
      auto e = std::make_unique<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kBoolLiteral;
      e->bool_value = Advance().text == "TRUE";
      return e;
    }
    if (PeekKeyword("CASE")) {
      Advance();
      auto e = std::make_unique<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kCase;
      while (AcceptKeyword("WHEN")) {
        INDBML_ASSIGN_OR_RETURN(auto cond, ParseExpr());
        INDBML_RETURN_NOT_OK(ExpectKeyword("THEN"));
        INDBML_ASSIGN_OR_RETURN(auto then, ParseExpr());
        e->children.push_back(std::move(cond));
        e->children.push_back(std::move(then));
      }
      if (e->children.empty()) return Error("CASE requires at least one WHEN");
      if (AcceptKeyword("ELSE")) {
        INDBML_ASSIGN_OR_RETURN(auto els, ParseExpr());
        e->children.push_back(std::move(els));
        e->has_else = true;
      }
      INDBML_RETURN_NOT_OK(ExpectKeyword("END"));
      return e;
    }
    // Aggregate keywords and identifiers both may start a function call.
    bool is_agg_kw = PeekKeyword("SUM") || PeekKeyword("COUNT") ||
                     PeekKeyword("MIN") || PeekKeyword("MAX") || PeekKeyword("AVG");
    if (t.type == TokenType::kIdentifier || is_agg_kw) {
      std::string name = Advance().text;
      if (AcceptOp("(")) {
        auto e = std::make_unique<ParsedExpr>();
        e->kind = ParsedExpr::Kind::kFunction;
        e->name = ToLower(name);
        if (PeekOp("*")) {
          Advance();
          auto star = std::make_unique<ParsedExpr>();
          star->kind = ParsedExpr::Kind::kStar;
          e->children.push_back(std::move(star));
        } else if (!PeekOp(")")) {
          do {
            INDBML_ASSIGN_OR_RETURN(auto arg, ParseExpr());
            e->children.push_back(std::move(arg));
          } while (AcceptOp(","));
        }
        INDBML_RETURN_NOT_OK(ExpectOp(")"));
        return e;
      }
      auto e = std::make_unique<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kColumn;
      if (AcceptOp(".")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected column name after '.'");
        }
        e->qualifier = name;
        e->name = Advance().text;
      } else {
        e->name = name;
      }
      return e;
    }
    if (AcceptOp("(")) {
      INDBML_ASSIGN_OR_RETURN(auto e, ParseExpr());
      INDBML_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }
    return Error("expected expression");
  }

  static ParsedExprPtr MakeBinaryAst(std::string op, ParsedExprPtr lhs,
                                     ParsedExprPtr rhs) {
    auto e = std::make_unique<ParsedExpr>();
    e->kind = ParsedExpr::Kind::kBinary;
    e->name = std::move(op);
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string ParsedExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kStar:
      return "*";
    case Kind::kIntLiteral:
      return std::to_string(int_value);
    case Kind::kFloatLiteral:
      return StrFormat("%g", float_value);
    case Kind::kBoolLiteral:
      return bool_value ? "TRUE" : "FALSE";
    case Kind::kBinary:
      return "(" + children[0]->ToString() + " " + name + " " +
             children[1]->ToString() + ")";
    case Kind::kUnary:
      return name + " " + children[0]->ToString();
    case Kind::kFunction: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kCase: {
      std::string out = "CASE";
      size_t pairs_len = children.size() - (has_else ? 1 : 0);
      for (size_t i = 0; i + 2 <= pairs_len; i += 2) {
        out += " WHEN " + children[i]->ToString() + " THEN " +
               children[i + 1]->ToString();
      }
      if (has_else) out += " ELSE " + children.back()->ToString();
      return out + " END";
    }
  }
  return "?";
}

Result<std::unique_ptr<SelectStatement>> ParseSelect(const std::string& sql) {
  INDBML_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace indbml::sql
