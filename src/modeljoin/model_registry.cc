#include "modeljoin/model_registry.h"

#include <algorithm>

#include "common/config.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "inference/cache.h"

namespace indbml::modeljoin {

namespace {

/// A registry entry leaving the registry takes its memoized predictions
/// with it: the InferenceCache keys on the model *instance* id, so dropping
/// the instance's entries is what makes redeploys unable to serve stale
/// cached results.
void DropCachedPredictions(const std::shared_ptr<SharedModel>& model) {
  if (model != nullptr) {
    inference::InferenceCache::Global().InvalidateModel(model->model_id());
  }
}

std::string MakeKey(const std::string& model_name, const std::string& device) {
  return model_name + "|" + device;
}

metrics::Counter* RegistryCounter(const char* which) {
  return metrics::Registry::Global().counter(std::string("modeljoin.registry_") +
                                             which);
}

void SetSizeGauge(int64_t size) {
  metrics::Registry::Global().gauge("modeljoin.registry_models")->Set(size);
}

}  // namespace

SharedModelRegistry& SharedModelRegistry::Global() {
  static SharedModelRegistry* registry = new SharedModelRegistry();
  return *registry;
}

SharedModelRegistry::SharedModelRegistry(int64_t capacity)
    : capacity_(std::max<int64_t>(1, capacity)) {}

Result<std::shared_ptr<SharedModel>> SharedModelRegistry::GetOrBuild(
    const nn::ModelMeta& meta, device::Device* device,
    const std::string& device_name, storage::TablePtr model_table,
    int vector_size) {
  const std::string key = MakeKey(meta.name, device_name);
  std::shared_ptr<Entry> entry;
  bool builder = false;
  {
    MutexLock lock(mu_);
    for (;;) {
      auto it = entries_.find(key);
      if (it == entries_.end()) break;
      entry = it->second;
      if (!entry->ready) {
        // Another thread is building this entry right now: single-flight —
        // wait for its outcome instead of building a duplicate.
        while (!entry->ready) build_done_.Wait(mu_);
        // Re-check from scratch: the build may have failed (entry removed)
        // or an invalidation may have raced in.
        entry.reset();
        continue;
      }
      if (entry->table != model_table) {
        // The catalog holds a different physical model table than the one
        // this model was built from: the model was re-deployed. Stale —
        // evict and rebuild.
        RegistryCounter("invalidations")->Increment();
        DropCachedPredictions(entry->model);
        entries_.erase(it);
        entry.reset();
        break;
      }
      entry->last_used = ++use_tick_;
      RegistryCounter("hits")->Increment();
      return entry->model;
    }
    RegistryCounter("misses")->Increment();
    entry = std::make_shared<Entry>();
    entry->table = model_table;
    entry->last_used = ++use_tick_;
    entries_[key] = entry;
    EvictOverCapacityLocked();
    SetSizeGauge(static_cast<int64_t>(entries_.size()));
    builder = true;
  }
  INDBML_CHECK(builder);

  // Build outside the lock: concurrent queries over *other* models proceed;
  // queries over this model wait on the condvar above.
  auto model = std::make_shared<SharedModel>(meta, device, /*num_workers=*/1,
                                             vector_size);
  Status status = model->BuildSerial(*model_table);
  RegistryCounter("builds")->Increment();

  MutexLock lock(mu_);
  entry->status = status;
  entry->model = status.ok() ? std::move(model) : nullptr;
  entry->ready = true;
  if (!status.ok()) {
    // Failed builds are not cached: drop the entry (if it is still ours)
    // so the next query retries instead of inheriting the failure forever.
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second == entry) entries_.erase(it);
    SetSizeGauge(static_cast<int64_t>(entries_.size()));
  }
  build_done_.NotifyAll();
  if (!status.ok()) return status;
  return entry->model;
}

void SharedModelRegistry::InvalidateModel(const std::string& model_name) {
  MutexLock lock(mu_);
  const std::string prefix = model_name + "|";
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.rfind(prefix, 0) == 0 && it->second->ready) {
      RegistryCounter("invalidations")->Increment();
      DropCachedPredictions(it->second->model);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  SetSizeGauge(static_cast<int64_t>(entries_.size()));
}

void SharedModelRegistry::Clear() {
  MutexLock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second->ready) {
      DropCachedPredictions(it->second->model);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  SetSizeGauge(static_cast<int64_t>(entries_.size()));
}

int64_t SharedModelRegistry::size() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

void SharedModelRegistry::set_capacity(int64_t capacity) {
  MutexLock lock(mu_);
  capacity_ = std::max<int64_t>(1, capacity);
}

void SharedModelRegistry::EvictOverCapacityLocked() {
  while (static_cast<int64_t>(entries_.size()) > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second->ready) continue;  // never evict an in-flight build
      if (victim == entries_.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything is building
    RegistryCounter("evictions")->Increment();
    DropCachedPredictions(victim->second->model);
    entries_.erase(victim);
  }
}

}  // namespace indbml::modeljoin
