#ifndef INDBML_MODELJOIN_MODELJOIN_OPERATOR_H_
#define INDBML_MODELJOIN_MODELJOIN_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "exec/operator.h"
#include "modeljoin/shared_model.h"

namespace indbml::modeljoin {

/// \brief The native ModelJoin query operator (paper §5).
///
/// Volcano-style two-phase join: Open() runs this worker's share of the
/// parallel model build (blocking until the shared model is complete);
/// Next() pulls a chunk from the input flow, converts the input columns
/// into a transposed [input_width x vectorsize] device matrix (one
/// contiguous copy per column, §5.3), runs the vectorized layer-forward
/// functions on the device (§5.4) and appends the prediction columns to the
/// pass-through child columns. The operator is fully pipelined — not a
/// pipeline breaker (§5.4).
class ModelJoinOperator final : public exec::Operator {
 public:
  ModelJoinOperator(exec::OperatorPtr child, std::shared_ptr<SharedModel> model,
                    storage::TablePtr model_table,
                    std::vector<int> input_column_indexes,
                    std::vector<std::string> prediction_names, int worker);
  ~ModelJoinOperator() override;

  const std::vector<exec::DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(exec::ExecContext* ctx) override;
  Status Next(exec::ExecContext* ctx, exec::DataChunk* out, bool* eof) override;
  void Close(exec::ExecContext* ctx) override;
  /// Re-arms only the input flow: the shared model is built once per query
  /// in Open and survives every morsel.
  Status Rewind(exec::ExecContext* ctx) override { return child_->Rewind(ctx); }
  bool MorselDriven() const override { return child_->MorselDriven(); }

 private:
  /// Runs the model on the device input matrix `x` ([input_width x n],
  /// transposed layout); returns the device buffer holding the final
  /// [output_dim x n] activations (owned by scratch_).
  Status Infer(const float* x, int64_t n, const float** result);

  /// Dense layer forward: z = W * x + bias_matrix; activation in place.
  void DenseForward(size_t li, const float* x, int64_t in_dim, int64_t n, float* z);
  /// LSTM layer forward over all time steps (paper Listing 5).
  void LstmForward(size_t li, const float* x, int64_t n, float* h_out);
  /// GRU layer forward over all time steps (§2 extension).
  void GruForward(size_t li, const float* x, int64_t n, float* h_out);

  exec::OperatorPtr child_;
  std::shared_ptr<SharedModel> model_;
  storage::TablePtr model_table_;
  std::vector<int> input_columns_;
  std::vector<exec::DataType> types_;
  std::vector<std::string> names_;
  int worker_;
  exec::DataChunk in_;  ///< reused input buffer (no per-batch reallocation)

  /// Device scratch buffers sized for one vector (allocated in Open,
  /// released in Close / destructor).
  struct Scratch;
  std::unique_ptr<Scratch> scratch_;
  bool opened_ = false;

  /// Process-wide metrics, resolved once in the constructor so per-chunk
  /// updates are plain relaxed atomics (no registry lookup on the hot path).
  metrics::Counter* rows_metric_;
  metrics::Histogram* build_micros_metric_;
  metrics::Histogram* convert_micros_metric_;
  metrics::Histogram* infer_micros_metric_;
};

}  // namespace indbml::modeljoin

#endif  // INDBML_MODELJOIN_MODELJOIN_OPERATOR_H_
