#ifndef INDBML_MODELJOIN_MODELJOIN_OPERATOR_H_
#define INDBML_MODELJOIN_MODELJOIN_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "exec/operator.h"
#include "inference/batcher.h"
#include "modeljoin/shared_model.h"

namespace indbml::modeljoin {

/// \brief The native ModelJoin query operator (paper §5).
///
/// Volcano-style two-phase join: Open() runs this worker's share of the
/// parallel model build (blocking until the shared model is complete);
/// Next() pulls a chunk from the input flow, gathers the input columns into
/// a feature-major staging matrix (one contiguous copy per column, §5.3),
/// hands it to the shared inference path — InferenceBatcher (cache +
/// cross-query coalescing) in front of InferenceRuntime, which owns the
/// forward-pass math this operator used to carry — and appends the
/// prediction columns to the pass-through child columns. The operator is
/// fully pipelined — not a pipeline breaker (§5.4).
class ModelJoinOperator final : public exec::Operator {
 public:
  ModelJoinOperator(exec::OperatorPtr child, std::shared_ptr<SharedModel> model,
                    storage::TablePtr model_table,
                    std::vector<int> input_column_indexes,
                    std::vector<std::string> prediction_names, int worker,
                    inference::InferenceOptions inference = {});
  ~ModelJoinOperator() override;

  const std::vector<exec::DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(exec::ExecContext* ctx) override;
  Status Next(exec::ExecContext* ctx, exec::DataChunk* out, bool* eof) override;
  void Close(exec::ExecContext* ctx) override;
  /// Re-arms only the input flow: the shared model is built once per query
  /// in Open and survives every morsel.
  Status Rewind(exec::ExecContext* ctx) override { return child_->Rewind(ctx); }
  bool MorselDriven() const override { return child_->MorselDriven(); }

 private:
  exec::OperatorPtr child_;
  std::shared_ptr<SharedModel> model_;
  storage::TablePtr model_table_;
  std::vector<int> input_columns_;
  std::vector<exec::DataType> types_;
  std::vector<std::string> names_;
  int worker_;
  inference::InferenceOptions inference_;
  exec::DataChunk in_;  ///< reused input buffer (no per-batch reallocation)

  /// Host staging for one chunk: the feature-major [input_width x n] input
  /// matrix and the [output_dim x n] predictions (allocated in Open,
  /// released in Close).
  std::vector<float> input_staging_;
  std::vector<float> output_staging_;
  bool opened_ = false;

  /// Process-wide metrics, resolved once in the constructor so per-chunk
  /// updates are plain relaxed atomics (no registry lookup on the hot path).
  metrics::Counter* rows_metric_;
  metrics::Histogram* build_micros_metric_;
  metrics::Histogram* convert_micros_metric_;
  metrics::Histogram* infer_micros_metric_;
};

}  // namespace indbml::modeljoin

#endif  // INDBML_MODELJOIN_MODELJOIN_OPERATOR_H_
