#ifndef INDBML_MODELJOIN_MODEL_REGISTRY_H_
#define INDBML_MODELJOIN_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "modeljoin/shared_model.h"

namespace indbml::modeljoin {

/// \brief Process-wide registry of built SharedModels, keyed on
/// (model name, device name).
///
/// The per-query SharedModel of the original ModelJoin makes every query
/// rebuild the model from the model table — the paper's headline per-query
/// build cost, which compounds linearly under concurrent load. The registry
/// lifts the model out of per-query state (MorphingDB's model-management
/// idea): the first query over a (model, device) pair builds it once via
/// SharedModel::BuildSerial, every concurrent and later query block-shares
/// the finished weights, and ModelJoinOperator::Open on a registry model is
/// barrier-free (required by the shared executor's lazy instantiation).
///
/// Concurrency: lookups are single-flight. The first caller inserts a
/// pending entry and builds outside the lock; callers that race it wait on
/// a condvar for the build outcome (shared — including a shared failure).
///
/// Invalidation: each entry pins the model-table TablePtr it was built
/// from. A lookup presenting a *different* table pointer for the same key
/// (the catalog replaced the model table, i.e. the model was re-deployed)
/// evicts the stale entry and rebuilds — version-by-identity, exploiting
/// that tables are frozen by Finalize() before catalog registration.
///
/// Metrics: modeljoin.registry_{hits,misses,builds,evictions,invalidations}
/// counters and the modeljoin.registry_models gauge. `registry_builds` is
/// the build-exactly-once assertion hook for the serving stress tests.
class SharedModelRegistry {
 public:
  /// The process-wide instance used by the registered ModelJoin state
  /// factory when a query opts into shared models.
  static SharedModelRegistry& Global();

  explicit SharedModelRegistry(int64_t capacity = 8);

  SharedModelRegistry(const SharedModelRegistry&) = delete;
  SharedModelRegistry& operator=(const SharedModelRegistry&) = delete;

  /// Returns the built model for (meta.name, device_name), building it
  /// (once, serially, on the calling thread) on miss. Blocks while another
  /// thread is building the same entry. A failed build is removed, so a
  /// later call retries.
  Result<std::shared_ptr<SharedModel>> GetOrBuild(
      const nn::ModelMeta& meta, device::Device* device,
      const std::string& device_name, storage::TablePtr model_table,
      int vector_size) INDBML_EXCLUDES(mu_);

  /// Drops every entry for this model name (all devices) — explicit DDL
  /// invalidation (model undeployed / re-registered).
  void InvalidateModel(const std::string& model_name) INDBML_EXCLUDES(mu_);

  /// Drops everything (tests and benches isolating build-count metrics).
  void Clear() INDBML_EXCLUDES(mu_);

  int64_t size() const INDBML_EXCLUDES(mu_);
  /// Max resident models; least-recently-used ready entries are evicted
  /// beyond it. Takes effect on the next insertion.
  void set_capacity(int64_t capacity) INDBML_EXCLUDES(mu_);

 private:
  /// One (model, device) slot. `ready` flips exactly once, under mu_, after
  /// the single-flight build finished; waiters re-check it in a condvar
  /// loop. The entry is shared_ptr-held so an invalidation racing a build
  /// cannot free it under the builder.
  struct Entry {
    std::shared_ptr<SharedModel> model;  ///< null until ready && status.ok()
    Status status;                       ///< build outcome, valid once ready
    storage::TablePtr table;             ///< model table the build consumed
    bool ready = false;
    int64_t last_used = 0;  ///< LRU stamp (ticks of use_tick_)
  };

  void EvictOverCapacityLocked() INDBML_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar build_done_;
  int64_t capacity_ INDBML_GUARDED_BY(mu_);
  int64_t use_tick_ INDBML_GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_
      INDBML_GUARDED_BY(mu_);
};

}  // namespace indbml::modeljoin

#endif  // INDBML_MODELJOIN_MODEL_REGISTRY_H_
