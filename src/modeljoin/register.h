#ifndef INDBML_MODELJOIN_REGISTER_H_
#define INDBML_MODELJOIN_REGISTER_H_

#include <functional>
#include <string>

#include "device/device.h"
#include "sql/query_engine.h"

namespace indbml::modeljoin {

/// Maps a `DEVICE '<name>'` string from the MODEL JOIN syntax to a live
/// Device. The devices must outlive the engine's queries; the provider is
/// how benchmarks hand in instrumented devices whose stats they read.
using DeviceProvider = std::function<device::Device*(const std::string& name)>;

/// Installs the native ModelJoin implementation into `engine`, making
/// `SELECT ... FROM t MODEL JOIN model_table USING MODEL 'name'
/// [DEVICE 'cpu'|'gpu']` executable. With the default provider, "cpu" maps
/// to a shared CpuDevice and "gpu" to a shared SimGpuDevice.
void RegisterNativeModelJoin(sql::QueryEngine* engine,
                             DeviceProvider provider = nullptr);

/// The process-wide default devices used when no provider is given.
device::Device* DefaultDevice(const std::string& name);

}  // namespace indbml::modeljoin

#endif  // INDBML_MODELJOIN_REGISTER_H_
