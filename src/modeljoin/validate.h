#ifndef INDBML_MODELJOIN_VALIDATE_H_
#define INDBML_MODELJOIN_VALIDATE_H_

#include "inference/validate.h"

namespace indbml::modeljoin {

/// Model-table validation moved to the inference layer together with the
/// SharedModel it checks (src/inference/validate.h); aliases keep the
/// historical spelling for callers and tests.
using ModelTableReport = inference::ModelTableReport;

using inference::ValidateModelTable;
using inference::ValidateSharedModelShape;

}  // namespace indbml::modeljoin

#endif  // INDBML_MODELJOIN_VALIDATE_H_
