#ifndef INDBML_MODELJOIN_SHARED_MODEL_H_
#define INDBML_MODELJOIN_SHARED_MODEL_H_

#include "inference/shared_model.h"
#include "inference/validate.h"

namespace indbml::modeljoin {

/// The shared model moved to the inference layer (src/inference) so every
/// approach — native ModelJoin, the C-API operator, mlruntime sessions —
/// runs the same forward pass through InferenceRuntime. This alias keeps
/// the historical spelling for the operator, the registry and the tests.
using SharedModel = inference::SharedModel;

using inference::ValidateSharedModelShape;

}  // namespace indbml::modeljoin

#endif  // INDBML_MODELJOIN_SHARED_MODEL_H_
