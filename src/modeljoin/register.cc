#include "modeljoin/register.h"

#include "common/config.h"
#include "modeljoin/modeljoin_operator.h"

namespace indbml::modeljoin {

device::Device* DefaultDevice(const std::string& name) {
  if (name == "gpu" || name == "simgpu") return device::SharedSimGpuDevice();
  return device::SharedCpuDevice();
}

void RegisterNativeModelJoin(sql::QueryEngine* engine, DeviceProvider provider) {
  if (provider == nullptr) {
    provider = [](const std::string& name) { return DefaultDevice(name); };
  }

  sql::ModelJoinStateFactory state_factory =
      [provider](const nn::ModelMeta& meta, const std::string& device_name,
                 int num_workers) -> Result<std::shared_ptr<void>> {
    device::Device* device = provider(device_name);
    if (device == nullptr) {
      return Status::InvalidArgument("unknown ModelJoin device: " + device_name);
    }
    return std::shared_ptr<void>(std::make_shared<SharedModel>(
        meta, device, num_workers, kDefaultVectorSize));
  };

  sql::ModelJoinOperatorFactory operator_factory =
      [](sql::ModelJoinPhysicalArgs args) -> Result<exec::OperatorPtr> {
    auto model = std::static_pointer_cast<SharedModel>(args.shared_state);
    return exec::OperatorPtr(std::make_unique<ModelJoinOperator>(
        std::move(args.child), std::move(model), std::move(args.model_table),
        std::move(args.input_column_indexes), std::move(args.prediction_names),
        args.worker));
  };

  engine->SetModelJoinFactories(std::move(state_factory),
                                std::move(operator_factory));
}

}  // namespace indbml::modeljoin
