#include "modeljoin/register.h"

#include "common/config.h"
#include "modeljoin/model_registry.h"
#include "modeljoin/modeljoin_operator.h"

namespace indbml::modeljoin {

device::Device* DefaultDevice(const std::string& name) {
  if (name == "gpu" || name == "simgpu") return device::SharedSimGpuDevice();
  return device::SharedCpuDevice();
}

void RegisterNativeModelJoin(sql::QueryEngine* engine, DeviceProvider provider) {
  if (provider == nullptr) {
    provider = [](const std::string& name) { return DefaultDevice(name); };
  }

  sql::ModelJoinStateFactory state_factory =
      [provider](const sql::ModelJoinStateArgs& args)
      -> Result<std::shared_ptr<void>> {
    device::Device* device = provider(args.device);
    if (device == nullptr) {
      return Status::InvalidArgument("unknown ModelJoin device: " + args.device);
    }
    if (args.shared) {
      // Serving path: resolve through the process-wide registry so
      // concurrent queries over the same (model, device) build once and the
      // operator's Open is barrier-free.
      INDBML_ASSIGN_OR_RETURN(
          auto model, SharedModelRegistry::Global().GetOrBuild(
                          args.meta, device, args.device, args.model_table,
                          kDefaultVectorSize));
      return std::shared_ptr<void>(std::move(model));
    }
    return std::shared_ptr<void>(std::make_shared<SharedModel>(
        args.meta, device, args.num_workers, kDefaultVectorSize));
  };

  sql::ModelJoinOperatorFactory operator_factory =
      [](sql::ModelJoinPhysicalArgs args) -> Result<exec::OperatorPtr> {
    auto model = std::static_pointer_cast<SharedModel>(args.shared_state);
    // The SQL layer carries the knobs as a plain struct (it sits below
    // src/inference in the include layering); convert at this boundary.
    inference::InferenceOptions inference;
    inference.batch_window_us = args.inference.batch_window_us;
    inference.max_batch_rows = args.inference.max_batch_rows;
    inference.use_cache = args.inference.result_cache;
    return exec::OperatorPtr(std::make_unique<ModelJoinOperator>(
        std::move(args.child), std::move(model), std::move(args.model_table),
        std::move(args.input_column_indexes), std::move(args.prediction_names),
        args.worker, inference));
  };

  engine->SetModelJoinFactories(std::move(state_factory),
                                std::move(operator_factory));
}

}  // namespace indbml::modeljoin
