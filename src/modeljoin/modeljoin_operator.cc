#include "modeljoin/modeljoin_operator.h"

#include <algorithm>
#include <cstring>

#include "common/config.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "exec/gather.h"
#include "exec/profile.h"

namespace indbml::modeljoin {

using nn::LayerKind;
using nn::LayerMeta;

/// Device buffers reused across Next() calls: the input matrix, two
/// ping-pong activation buffers sized for the widest layer, and the LSTM
/// gate/state buffers.
struct ModelJoinOperator::Scratch {
  device::Device* device = nullptr;
  int64_t vs = 0;
  int64_t input_width = 0;
  int64_t max_units = 0;
  bool has_lstm = false;

  float* x = nullptr;        ///< [input_width x vs]
  float* a = nullptr;        ///< [max_units x vs]
  float* b = nullptr;        ///< [max_units x vs]
  float* z[nn::kNumGates] = {nullptr, nullptr, nullptr, nullptr};
  float* h = nullptr;
  float* c = nullptr;
  float* tmp = nullptr;
  std::vector<float> host_staging;  ///< column gather/scatter buffer

  ~Scratch() {
    if (device == nullptr) return;
    device->Free(x, input_width * vs);
    device->Free(a, max_units * vs);
    device->Free(b, max_units * vs);
    if (has_lstm) {
      for (auto& g : z) device->Free(g, max_units * vs);
      device->Free(h, max_units * vs);
      device->Free(c, max_units * vs);
      device->Free(tmp, max_units * vs);
    }
  }
};

ModelJoinOperator::ModelJoinOperator(exec::OperatorPtr child,
                                     std::shared_ptr<SharedModel> model,
                                     storage::TablePtr model_table,
                                     std::vector<int> input_column_indexes,
                                     std::vector<std::string> prediction_names,
                                     int worker)
    : child_(std::move(child)),
      model_(std::move(model)),
      model_table_(std::move(model_table)),
      input_columns_(std::move(input_column_indexes)),
      worker_(worker),
      rows_metric_(metrics::Registry::Global().counter("modeljoin.rows")),
      build_micros_metric_(
          metrics::Registry::Global().histogram("modeljoin.build_micros")),
      convert_micros_metric_(
          metrics::Registry::Global().histogram("modeljoin.convert_micros")),
      infer_micros_metric_(
          metrics::Registry::Global().histogram("modeljoin.infer_micros")) {
  types_ = child_->output_types();
  names_ = child_->output_names();
  for (const std::string& name : prediction_names) {
    types_.push_back(exec::DataType::kFloat);
    names_.push_back(name);
  }
}

ModelJoinOperator::~ModelJoinOperator() = default;

Status ModelJoinOperator::Open(exec::ExecContext* ctx) {
  INDBML_RETURN_NOT_OK(child_->Open(ctx));

  // Build phase: claim and parse model-table rows into the shared model,
  // synchronising with the other workers. A registry-shared model
  // (modeljoin/model_registry.h) arrives already built — the build was paid
  // once by the first query over this (model, device) pair — so Open is
  // barrier-free and this operator can be instantiated lazily by a shared
  // executor without deadlocking on absent build partners.
  if (!model_->built()) {
    trace::Span span("modeljoin.build");
    Stopwatch build_watch;
    INDBML_RETURN_NOT_OK(model_->BuildPartition(*model_table_, worker_));
    int64_t nanos = build_watch.ElapsedNanos();
    build_micros_metric_->Record(nanos / 1000);
    if (ctx->active_stats != nullptr) ctx->active_stats->AddPhase("build", nanos);
  }

  // Allocate inference scratch.
  const nn::ModelMeta& meta = model_->meta();
  scratch_ = std::make_unique<Scratch>();
  scratch_->device = model_->device();
  scratch_->vs = model_->vector_size();
  scratch_->input_width = std::max<int64_t>(1, meta.input_width());
  int64_t max_units = 1;
  for (const LayerMeta& layer : meta.layers) {
    max_units = std::max(max_units, layer.units);
    if (layer.kind != LayerKind::kDense) scratch_->has_lstm = true;
  }
  scratch_->max_units = max_units;
  device::Device* device = scratch_->device;
  scratch_->x = device->Allocate(scratch_->input_width * scratch_->vs);
  scratch_->a = device->Allocate(max_units * scratch_->vs);
  scratch_->b = device->Allocate(max_units * scratch_->vs);
  if (scratch_->has_lstm) {
    for (auto& g : scratch_->z) g = device->Allocate(max_units * scratch_->vs);
    scratch_->h = device->Allocate(max_units * scratch_->vs);
    scratch_->c = device->Allocate(max_units * scratch_->vs);
    scratch_->tmp = device->Allocate(max_units * scratch_->vs);
  }
  scratch_->host_staging.resize(static_cast<size_t>(scratch_->vs));
  opened_ = true;
  return Status::OK();
}

void ModelJoinOperator::DenseForward(size_t li, const float* x, int64_t in_dim,
                                     int64_t n, float* z) {
  const LayerMeta& layer = model_->meta().layers[li];
  device::Device* device = scratch_->device;
  // Bias first (the replicated bias matrix is [units x vectorsize]; copy
  // the first n columns of each row).
  if (n == scratch_->vs) {
    device->CopyOnDevice(z, model_->dense_bias_matrix(li), layer.units * n);
  } else {
    for (int64_t u = 0; u < layer.units; ++u) {
      device->CopyOnDevice(z + u * n,
                           model_->dense_bias_matrix(li) + u * scratch_->vs, n);
    }
  }
  // z += W[units x in] * x[in x n]
  device->Gemm(false, false, layer.units, n, in_dim, 1.0f, model_->dense_kernel(li),
               in_dim, x, n, 1.0f, z, n);
  device->Activate(layer.activation, layer.units * n, z);
}

void ModelJoinOperator::LstmForward(size_t li, const float* x, int64_t n,
                                    float* h_out) {
  const LayerMeta& layer = model_->meta().layers[li];
  const nn::ModelMeta& meta = model_->meta();
  device::Device* device = scratch_->device;
  const int64_t units = layer.units;
  const int64_t f = layer.input_dim;  // 1 (univariate)
  const int64_t m = units * n;
  float* h = scratch_->h;
  float* c = scratch_->c;
  float* tmp = scratch_->tmp;

  for (int64_t t = 0; t < meta.timesteps; ++t) {
    const float* x_t = x + t * f * n;  // rows [t*f, (t+1)*f) of the input
    for (int g = 0; g < nn::kNumGates; ++g) {
      float* z = scratch_->z[g];
      // z = bias matrix
      if (n == scratch_->vs) {
        device->CopyOnDevice(z, model_->lstm_bias_matrix(li, g), m);
      } else {
        for (int64_t u = 0; u < units; ++u) {
          device->CopyOnDevice(z + u * n,
                               model_->lstm_bias_matrix(li, g) + u * scratch_->vs, n);
        }
      }
      // z += W_g[units x f] * x_t[f x n]
      device->Gemm(false, false, units, n, f, 1.0f, model_->lstm_kernel(li, g), f,
                   x_t, n, 1.0f, z, n);
      if (t > 0) {
        // z += U_g[units x units] * h[units x n]
        device->Gemm(false, false, units, n, units, 1.0f,
                     model_->lstm_recurrent(li, g), units, h, n, 1.0f, z, n);
      }
    }
    device->Activate(nn::Activation::kSigmoid, m, scratch_->z[nn::kGateI]);
    device->Activate(nn::Activation::kSigmoid, m, scratch_->z[nn::kGateF]);
    device->Activate(nn::Activation::kTanh, m, scratch_->z[nn::kGateC]);
    device->Activate(nn::Activation::kSigmoid, m, scratch_->z[nn::kGateO]);

    // c = (t > 0 ? f_gate * c : 0) + i_gate * c~
    device->EwMul(m, scratch_->z[nn::kGateI], scratch_->z[nn::kGateC], tmp);
    if (t > 0) {
      device->EwMul(m, scratch_->z[nn::kGateF], c, c);
      device->EwAdd(m, c, tmp, c);
    } else {
      device->CopyOnDevice(c, tmp, m);
    }
    // h = o_gate * tanh(c)
    device->CopyOnDevice(h, c, m);
    device->Activate(nn::Activation::kTanh, m, h);
    device->EwMul(m, scratch_->z[nn::kGateO], h, h);
  }
  if (h_out != h) device->CopyOnDevice(h_out, h, m);
}

void ModelJoinOperator::GruForward(size_t li, const float* x, int64_t n,
                                   float* h_out) {
  const LayerMeta& layer = model_->meta().layers[li];
  const nn::ModelMeta& meta = model_->meta();
  device::Device* device = scratch_->device;
  const int64_t units = layer.units;
  const int64_t f = layer.input_dim;  // 1 (univariate)
  const int64_t m = units * n;
  float* h = scratch_->h;
  float* tmp = scratch_->tmp;

  for (int64_t t = 0; t < meta.timesteps; ++t) {
    const float* x_t = x + t * f * n;
    for (int g = 0; g < nn::kNumGruGates; ++g) {
      float* z = scratch_->z[g];
      if (n == scratch_->vs) {
        device->CopyOnDevice(z, model_->lstm_bias_matrix(li, g), m);
      } else {
        for (int64_t u = 0; u < units; ++u) {
          device->CopyOnDevice(z + u * n,
                               model_->lstm_bias_matrix(li, g) + u * scratch_->vs, n);
        }
      }
      device->Gemm(false, false, units, n, f, 1.0f, model_->lstm_kernel(li, g), f,
                   x_t, n, 1.0f, z, n);
    }
    if (t > 0) {
      device->Gemm(false, false, units, n, units, 1.0f,
                   model_->lstm_recurrent(li, nn::kGruZ), units, h, n, 1.0f,
                   scratch_->z[nn::kGruZ], n);
      device->Gemm(false, false, units, n, units, 1.0f,
                   model_->lstm_recurrent(li, nn::kGruR), units, h, n, 1.0f,
                   scratch_->z[nn::kGruR], n);
    }
    device->Activate(nn::Activation::kSigmoid, m, scratch_->z[nn::kGruZ]);
    device->Activate(nn::Activation::kSigmoid, m, scratch_->z[nn::kGruR]);
    if (t > 0) {
      // Candidate input: U_h * (r * h_prev).
      device->EwMul(m, scratch_->z[nn::kGruR], h, tmp);
      device->Gemm(false, false, units, n, units, 1.0f,
                   model_->lstm_recurrent(li, nn::kGruH), units, tmp, n, 1.0f,
                   scratch_->z[nn::kGruH], n);
    }
    device->Activate(nn::Activation::kTanh, m, scratch_->z[nn::kGruH]);
    device->GruCombine(m, scratch_->z[nn::kGruZ], t > 0 ? h : nullptr,
                       scratch_->z[nn::kGruH], h);
  }
  if (h_out != h) device->CopyOnDevice(h_out, h, m);
}

Status ModelJoinOperator::Infer(const float* x, int64_t n, const float** result) {
  const nn::ModelMeta& meta = model_->meta();
  const float* current = x;
  int64_t current_dim = meta.input_width();
  float* front = scratch_->a;
  float* back = scratch_->b;
  for (size_t li = 0; li < meta.layers.size(); ++li) {
    const LayerMeta& layer = meta.layers[li];
    if (layer.kind == LayerKind::kLstm) {
      LstmForward(li, current, n, front);
    } else if (layer.kind == LayerKind::kGru) {
      GruForward(li, current, n, front);
    } else {
      DenseForward(li, current, current_dim, n, front);
    }
    current = front;
    current_dim = layer.units;
    std::swap(front, back);
  }
  *result = current;
  return Status::OK();
}

Status ModelJoinOperator::Next(exec::ExecContext* ctx, exec::DataChunk* out,
                               bool* eof) {
  in_.Reset(child_->output_types());
  INDBML_RETURN_NOT_OK(child_->Next(ctx, &in_, eof));
  exec::DataChunk& in = in_;
  const int64_t n = in.size;
  const int64_t child_width = in.num_columns();
  if (n == 0) {
    return Status::OK();
  }
  device::Device* device = scratch_->device;
  const nn::ModelMeta& meta = model_->meta();

  // Input conversion (§5.3): one contiguous transfer per input column into
  // the transposed input matrix.
  Stopwatch phase_watch;
  for (size_t ci = 0; ci < input_columns_.size(); ++ci) {
    const exec::Vector& col = in.column(input_columns_[ci]);
    const float* src;
    if (col.type() == exec::DataType::kFloat && !col.has_selection()) {
      // Flat float column (possibly a zero-copy view over table storage):
      // transfer straight from the column's window, no staging copy.
      src = col.floats();
    } else {
      // Selected or non-float columns: typed gather through the selection
      // vector into the staging buffer — one indexed load per row, no
      // per-row Value boxing.
      exec::GatherToFloat(col, scratch_->host_staging.data());
      src = scratch_->host_staging.data();
    }
    device->CopyToDevice(scratch_->x + static_cast<int64_t>(ci) * n, src, n);
  }

  int64_t convert_nanos = phase_watch.ElapsedNanos();

  const float* predictions = nullptr;
  int64_t infer_nanos;
  {
    trace::Span span("modeljoin.infer");
    phase_watch.Restart();
    INDBML_RETURN_NOT_OK(Infer(scratch_->x, n, &predictions));
    infer_nanos = phase_watch.ElapsedNanos();
  }

  // Pass-through columns.
  for (int64_t c = 0; c < child_width; ++c) {
    out->column(c) = std::move(in.column(c));
  }
  // Output conversion: one contiguous transfer per prediction column.
  phase_watch.Restart();
  int64_t out_dim = meta.output_dim();
  for (int64_t p = 0; p < out_dim; ++p) {
    exec::Vector& col = out->column(child_width + p);
    col.Resize(n);
    device->CopyToHost(col.floats(), predictions + p * n, n);
  }
  convert_nanos += phase_watch.ElapsedNanos();
  out->size = n;

  rows_metric_->Increment(n);
  convert_micros_metric_->Record(convert_nanos / 1000);
  infer_micros_metric_->Record(infer_nanos / 1000);
  if (ctx->active_stats != nullptr) {
    ctx->active_stats->AddPhase("convert", convert_nanos);
    ctx->active_stats->AddPhase("inference", infer_nanos);
  }
  return Status::OK();
}

void ModelJoinOperator::Close(exec::ExecContext* ctx) {
  child_->Close(ctx);
  scratch_.reset();
}

}  // namespace indbml::modeljoin
