#include "modeljoin/modeljoin_operator.h"

#include <algorithm>
#include <cstring>

#include "common/config.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "exec/gather.h"
#include "exec/profile.h"

namespace indbml::modeljoin {

ModelJoinOperator::ModelJoinOperator(exec::OperatorPtr child,
                                     std::shared_ptr<SharedModel> model,
                                     storage::TablePtr model_table,
                                     std::vector<int> input_column_indexes,
                                     std::vector<std::string> prediction_names,
                                     int worker,
                                     inference::InferenceOptions inference)
    : child_(std::move(child)),
      model_(std::move(model)),
      model_table_(std::move(model_table)),
      input_columns_(std::move(input_column_indexes)),
      worker_(worker),
      inference_(inference),
      rows_metric_(metrics::Registry::Global().counter("modeljoin.rows")),
      build_micros_metric_(
          metrics::Registry::Global().histogram("modeljoin.build_micros")),
      convert_micros_metric_(
          metrics::Registry::Global().histogram("modeljoin.convert_micros")),
      infer_micros_metric_(
          metrics::Registry::Global().histogram("modeljoin.infer_micros")) {
  types_ = child_->output_types();
  names_ = child_->output_names();
  for (const std::string& name : prediction_names) {
    types_.push_back(exec::DataType::kFloat);
    names_.push_back(name);
  }
}

ModelJoinOperator::~ModelJoinOperator() = default;

Status ModelJoinOperator::Open(exec::ExecContext* ctx) {
  INDBML_RETURN_NOT_OK(child_->Open(ctx));

  // Build phase: claim and parse model-table rows into the shared model,
  // synchronising with the other workers. A registry-shared model
  // (modeljoin/model_registry.h) arrives already built — the build was paid
  // once by the first query over this (model, device) pair — so Open is
  // barrier-free and this operator can be instantiated lazily by a shared
  // executor without deadlocking on absent build partners.
  if (!model_->built()) {
    trace::Span span("modeljoin.build");
    Stopwatch build_watch;
    INDBML_RETURN_NOT_OK(model_->BuildPartition(*model_table_, worker_));
    int64_t nanos = build_watch.ElapsedNanos();
    build_micros_metric_->Record(nanos / 1000);
    if (ctx->active_stats != nullptr) ctx->active_stats->AddPhase("build", nanos);
  }

  // Host staging for one vector of rows.
  const nn::ModelMeta& meta = model_->meta();
  const int64_t vs = model_->vector_size();
  input_staging_.resize(
      static_cast<size_t>(std::max<int64_t>(1, meta.input_width()) * vs));
  output_staging_.resize(static_cast<size_t>(meta.output_dim() * vs));
  opened_ = true;
  return Status::OK();
}

Status ModelJoinOperator::Next(exec::ExecContext* ctx, exec::DataChunk* out,
                               bool* eof) {
  in_.Reset(child_->output_types());
  INDBML_RETURN_NOT_OK(child_->Next(ctx, &in_, eof));
  exec::DataChunk& in = in_;
  const int64_t n = in.size;
  const int64_t child_width = in.num_columns();
  if (n == 0) {
    return Status::OK();
  }
  const nn::ModelMeta& meta = model_->meta();

  // Input conversion (§5.3): one contiguous copy per input column into the
  // feature-major staging matrix.
  Stopwatch phase_watch;
  for (size_t ci = 0; ci < input_columns_.size(); ++ci) {
    const exec::Vector& col = in.column(input_columns_[ci]);
    float* dst = input_staging_.data() + static_cast<int64_t>(ci) * n;
    if (col.type() == exec::DataType::kFloat && !col.has_selection()) {
      // Flat float column (possibly a zero-copy view over table storage).
      std::memcpy(dst, col.floats(), static_cast<size_t>(n) * sizeof(float));
    } else {
      // Selected or non-float columns: typed gather through the selection
      // vector — one indexed load per row, no per-row Value boxing.
      exec::GatherToFloat(col, dst);
    }
  }
  int64_t convert_nanos = phase_watch.ElapsedNanos();

  // The forward pass lives in src/inference; the batcher adds the result
  // cache and cross-query coalescing in front of it.
  inference::InferenceCallStats call_stats;
  int64_t infer_nanos;
  {
    trace::Span span("modeljoin.infer");
    phase_watch.Restart();
    INDBML_RETURN_NOT_OK(inference::InferenceBatcher::Global().Run(
        model_, input_staging_.data(), n, output_staging_.data(), inference_,
        ctx->interrupt, &call_stats));
    infer_nanos = phase_watch.ElapsedNanos();
  }

  // Pass-through columns.
  for (int64_t c = 0; c < child_width; ++c) {
    out->column(c) = std::move(in.column(c));
  }
  // Output conversion: one contiguous copy per prediction column.
  phase_watch.Restart();
  int64_t out_dim = meta.output_dim();
  for (int64_t p = 0; p < out_dim; ++p) {
    exec::Vector& col = out->column(child_width + p);
    col.Resize(n);
    std::memcpy(col.floats(), output_staging_.data() + p * n,
                static_cast<size_t>(n) * sizeof(float));
  }
  convert_nanos += phase_watch.ElapsedNanos();
  out->size = n;

  rows_metric_->Increment(n);
  convert_micros_metric_->Record(convert_nanos / 1000);
  infer_micros_metric_->Record(infer_nanos / 1000);
  if (ctx->active_stats != nullptr) {
    ctx->active_stats->AddPhase("convert", convert_nanos);
    // Split the inference time so EXPLAIN ANALYZE shows how much of it was
    // spent waiting for batch partners vs. running the NN.
    const int64_t wait_nanos =
        std::min(infer_nanos, call_stats.wait_micros * 1000);
    if (wait_nanos > 0) {
      ctx->active_stats->AddPhase("batch_wait", wait_nanos);
    }
    ctx->active_stats->AddPhase("inference", infer_nanos - wait_nanos);
  }
  return Status::OK();
}

void ModelJoinOperator::Close(exec::ExecContext* ctx) {
  child_->Close(ctx);
  input_staging_.clear();
  input_staging_.shrink_to_fit();
  output_staging_.clear();
  output_staging_.shrink_to_fit();
}

}  // namespace indbml::modeljoin
