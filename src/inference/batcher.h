#ifndef INDBML_INFERENCE_BATCHER_H_
#define INDBML_INFERENCE_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "inference/runtime.h"
#include "inference/shared_model.h"

namespace indbml::inference {

/// Per-call inference knobs, plumbed from QueryEngine::Options (the SQL
/// layer carries them as a plain struct so it never includes this header).
struct InferenceOptions {
  /// Cross-query coalescing window: a call willing to wait this long for
  /// other queries' rows against the same model before launching the GEMM.
  /// 0 disables batching entirely (the engine default — single-query
  /// workloads must not pay latency for a batch partner that never comes;
  /// the serving server turns it on).
  int64_t batch_window_us = 0;
  /// Upper bound on coalesced rows per launch; a full batch launches
  /// immediately without waiting out the window.
  int64_t max_batch_rows = 4096;
  /// Consult the InferenceCache before running the NN.
  bool use_cache = false;
};

/// What one Run call experienced, for EXPLAIN ANALYZE phase attribution.
struct InferenceCallStats {
  int64_t wait_micros = 0;  ///< time blocked in the coalescing wait
  int64_t cache_hits = 0;   ///< rows answered from the cache
  int64_t batch_rows = 0;   ///< rows in the coalesced launch this call rode
};

/// \brief Cross-query micro-batcher in front of the InferenceRuntime
/// (ISSUE 10 layer 2; the paper's Figure-8 finding that small per-query
/// batches kill in-database inference throughput).
///
/// Concurrent Run calls against the same model *instance* (keyed by
/// SharedModel::model_id(), so redeployed versions never mix) are coalesced
/// into one GEMM launch. The first call to arrive becomes the batch
/// *leader*: it waits up to `batch_window_us` for followers, then closes
/// the batch, gathers every member's rows into one feature-major matrix,
/// runs the runtime once, and slices the results back. Followers block
/// until the leader marks the batch done. No extra threads: the leader is
/// a borrowed caller thread, so the shared executor's workers keep
/// scheduling other morsels while at most one of them waits per model.
///
/// A call leads (or joins) only when a batch partner is plausible: another
/// call is inside the batcher right now, or a call against the same model
/// arrived within the last window and leading has not recently proven
/// futile (window waited out with no follower). Otherwise it runs inline —
/// a lone query must not pay the window for a partner that never comes.
/// The recency signal matters on few-core machines, where "concurrent"
/// queries interleave instead of overlap: the first recency-triggered
/// leader's wait yields the core, the interleaved partners catch up and
/// join, and from then on real overlap sustains the batching.
///
/// Cancellation: the per-query interrupt flag is polled inside every wait.
/// A *follower* may detach from a batch that is still open (its buffers
/// are not yet being read) and return Cancelled immediately; once the
/// batch closed, it waits out the µs-scale launch and then reports
/// Cancelled. A *leader*'s interrupt simply shortens the window — it must
/// still launch, because followers depend on it. QueryHandle::Cancel calls
/// KickWaiters() so blocked waiters re-check their flag promptly.
///
/// Determinism: every runtime kernel is column-independent, so the
/// coalesced launch is bit-identical to per-query launches (tested across
/// dense/LSTM/GRU in inference_test.cc).
class InferenceBatcher {
 public:
  /// The process-wide batcher.
  static InferenceBatcher& Global();

  InferenceBatcher();

  InferenceBatcher(const InferenceBatcher&) = delete;
  InferenceBatcher& operator=(const InferenceBatcher&) = delete;

  /// Runs `n` feature-major input tuples ([input_width x n]) through the
  /// cache (optional) and the coalesced runtime, writing [output_dim x n]
  /// into `out`. `interrupt` may be null; `stats` may be null.
  Status Run(const std::shared_ptr<SharedModel>& model, const float* in,
             int64_t n, float* out, const InferenceOptions& opts,
             const std::atomic<bool>* interrupt, InferenceCallStats* stats)
      INDBML_EXCLUDES(mu_);

  /// Wakes every thread blocked inside a batcher wait so it re-checks its
  /// interrupt flag. Called by QueryHandle::Cancel.
  void KickWaiters() INDBML_EXCLUDES(mu_);

 private:
  /// One caller's slice of a pending batch.
  struct Request {
    const float* in = nullptr;
    int64_t n = 0;
    float* out = nullptr;
  };

  /// A pending coalesced launch for one model instance. Fields are guarded
  /// by the batcher mutex except `combined`/`combined_out`, which only the
  /// leader touches after the batch is closed.
  ///
  /// Each batch owns its condition variable: waking a batch must not wake
  /// waiters of unrelated batches. With one shared condvar every completion
  /// was a process-wide thundering herd — on a saturated few-core machine
  /// the spurious wakeups (each re-acquiring the batcher mutex just to go
  /// back to sleep) cost more than the coalescing saved.
  struct Batch {
    std::shared_ptr<SharedModel> model;
    CondVar cv;  ///< leader waits pre-close, followers wait for `done`
    std::vector<Request*> members;
    int64_t rows = 0;
    bool closed = false;  ///< no more joins/detaches; leader owns buffers
    bool done = false;    ///< results scattered, status valid
    Status status;
    std::vector<float> combined;
    std::vector<float> combined_out;
  };

  /// The coalescing core: joins or leads a batch for the given rows.
  Status Submit(const std::shared_ptr<SharedModel>& model, const float* in,
                int64_t n, float* out, const InferenceOptions& opts,
                const std::atomic<bool>* interrupt, InferenceCallStats* stats)
      INDBML_EXCLUDES(mu_);

  /// Per-model coalescing state: the bootstrap signal for the lead-or-inline
  /// decision (see class comment) and the joinable-call count that lets a
  /// leader close its window early once every call that could join has.
  struct ArrivalState {
    int64_t last_micros = 0;  ///< monotonic time of the last Submit; 0 = never
    bool futile = false;      ///< last recency-led window expired partnerless
    /// Calls on the batch path for this model not yet bound to a closed
    /// batch. When this equals the open batch's member count, no joiner is
    /// in flight and waiting further can only gain brand-new arrivals.
    int64_t pending = 0;
  };

  Mutex mu_;
  /// Open (still joinable) batch per model instance id.
  std::unordered_map<int64_t, std::shared_ptr<Batch>> open_
      INDBML_GUARDED_BY(mu_);
  /// Every batch with possible waiters (open or closed-but-not-done), so
  /// KickWaiters can reach them; entries leave when the batch is done.
  std::vector<std::shared_ptr<Batch>> live_ INDBML_GUARDED_BY(mu_);
  /// Last-arrival tracking per model instance id.
  std::unordered_map<int64_t, ArrivalState> arrivals_ INDBML_GUARDED_BY(mu_);
  /// Calls currently inside Submit; when ≤ 1 there is nobody to coalesce
  /// with and the window wait is skipped (single-query latency guard).
  std::atomic<int64_t> active_calls_{0};

  metrics::Counter* batches_metric_;        ///< inference.batches
  metrics::Histogram* batch_rows_metric_;   ///< inference.batch_rows
  metrics::Histogram* wait_micros_metric_;  ///< inference.batch_wait_micros
};

}  // namespace indbml::inference

#endif  // INDBML_INFERENCE_BATCHER_H_
