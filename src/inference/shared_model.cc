#include "inference/shared_model.h"

#include <algorithm>
#include <cstring>

#include "common/config.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/validation.h"
#include "inference/validate.h"

namespace indbml::inference {

using nn::LayerKind;
using nn::LayerMeta;

namespace {

/// Column order of the unique-node-id relational representation.
struct ModelTableColumns {
  int node_in = -1;
  int node = -1;
  int w[nn::kNumGates] = {-1, -1, -1, -1};
  int u[nn::kNumGates] = {-1, -1, -1, -1};
  int b[nn::kNumGates] = {-1, -1, -1, -1};
};

Result<ModelTableColumns> ResolveColumns(const storage::Table& table) {
  ModelTableColumns cols;
  auto get = [&](const char* name) -> Result<int> { return table.ColumnIndex(name); };
  INDBML_ASSIGN_OR_RETURN(cols.node_in, get("node_in"));
  INDBML_ASSIGN_OR_RETURN(cols.node, get("node"));
  const char* gates = "ifco";
  for (int g = 0; g < nn::kNumGates; ++g) {
    char name[8];
    std::snprintf(name, sizeof(name), "w_%c", gates[g]);
    INDBML_ASSIGN_OR_RETURN(cols.w[g], get(name));
    std::snprintf(name, sizeof(name), "u_%c", gates[g]);
    INDBML_ASSIGN_OR_RETURN(cols.u[g], get(name));
    std::snprintf(name, sizeof(name), "b_%c", gates[g]);
    INDBML_ASSIGN_OR_RETURN(cols.b[g], get(name));
  }
  if (table.ColumnIndex("layer").ok()) {
    return Status::InvalidArgument(
        "the native ModelJoin expects the unique-node-id model representation "
        "(no layer columns); regenerate the model table with "
        "MlToSqlOptions::unique_node_ids");
  }
  return cols;
}

/// Process-unique model-instance ids (cache/batcher keying; see model_id()).
int64_t NextModelId() {
  static std::atomic<int64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

SharedModel::SharedModel(nn::ModelMeta meta, device::Device* device,
                         int num_workers, int vector_size)
    : meta_(std::move(meta)),
      device_(device),
      num_workers_(num_workers),
      vector_size_(vector_size),
      model_id_(NextModelId()),
      build_barrier_(num_workers),
      upload_barrier_(num_workers) {
  // Unique-node-id layout: input nodes first for dense-input models.
  const bool dense_input =
      meta_.layers.empty() || meta_.layers[0].kind == LayerKind::kDense;
  input_nodes_ = dense_input ? meta_.input_width() : 0;
  int64_t next = input_nodes_;
  for (const LayerMeta& layer : meta_.layers) {
    first_node_.push_back(next);
    next += layer.units;
  }

  // Allocate staging and device buffers.
  host_.resize(meta_.layers.size());
  layers_.resize(meta_.layers.size());
  const bool gpu = device_->is_gpu();
  for (size_t li = 0; li < meta_.layers.size(); ++li) {
    const LayerMeta& layer = meta_.layers[li];
    HostBuffers& h = host_[li];
    LayerBuffers& d = layers_[li];
    int gates = layer.kind == LayerKind::kDense  ? 1
                : layer.kind == LayerKind::kLstm ? nn::kNumGates
                                                 : nn::kNumGruGates;
    d.w_size = layer.units * layer.input_dim;
    d.u_size = layer.kind == LayerKind::kDense ? 0 : layer.units * layer.units;
    d.bias_size = layer.units;
    for (int g = 0; g < gates; ++g) {
      h.w[g].assign(static_cast<size_t>(d.w_size), 0.0f);
      h.bias[g].assign(static_cast<size_t>(d.bias_size), 0.0f);
      if (d.u_size > 0) h.u[g].assign(static_cast<size_t>(d.u_size), 0.0f);
      if (gpu) {
        d.w[g] = device_->Allocate(d.w_size);
        d.bias_mat[g] = device_->Allocate(layer.units * vector_size_);
        if (d.u_size > 0) d.u[g] = device_->Allocate(d.u_size);
      } else {
        d.w[g] = h.w[g].data();
        d.bias_mat[g] = device_->Allocate(layer.units * vector_size_);
        d.u[g] = d.u_size > 0 ? h.u[g].data() : nullptr;
      }
      device_bytes_ += (d.w_size + layer.units * vector_size_ + d.u_size) * 4;
    }
  }
}

SharedModel::~SharedModel() {
  const bool gpu = device_->is_gpu();
  for (size_t li = 0; li < meta_.layers.size(); ++li) {
    const LayerMeta& layer = meta_.layers[li];
    int gates = layer.kind == LayerKind::kDense  ? 1
                : layer.kind == LayerKind::kLstm ? nn::kNumGates
                                                 : nn::kNumGruGates;
    for (int g = 0; g < gates; ++g) {
      if (gpu) {
        device_->Free(layers_[li].w[g], layers_[li].w_size);
        if (layers_[li].u[g] != nullptr) {
          device_->Free(layers_[li].u[g], layers_[li].u_size);
        }
      }
      device_->Free(layers_[li].bias_mat[g], layer.units * vector_size_);
    }
  }
}

Status SharedModel::LocateLayer(int64_t node, size_t* layer_index) const {
  for (size_t li = meta_.layers.size(); li-- > 0;) {
    if (node >= first_node_[li]) {
      if (node >= first_node_[li] + meta_.layers[li].units) break;
      *layer_index = li;
      return Status::OK();
    }
  }
  return Status::ExecutionError(
      StrFormat("model-table node id %lld outside the registered model layout",
                static_cast<long long>(node)));
}

Status SharedModel::ParsePartition(const storage::Table& model_table,
                                   storage::PartitionRange range) {
  INDBML_ASSIGN_OR_RETURN(ModelTableColumns cols, ResolveColumns(model_table));
  const storage::Column& node_in_col = model_table.column(cols.node_in);
  const storage::Column& node_col = model_table.column(cols.node);

  for (int64_t r = range.begin; r < range.end; ++r) {
    int64_t node_in = node_in_col.GetInt64(r);
    int64_t node = node_col.GetInt64(r);
    if (node < input_nodes_) {
      // Artificial-input edge of a dense-input model (weight 1): the native
      // operator reads the input columns directly, nothing to store.
      continue;
    }
    size_t li;
    INDBML_RETURN_IF_ERROR(LocateLayer(node, &li));
    const LayerMeta& layer = meta_.layers[li];
    HostBuffers& h = host_[li];
    int64_t out = node - first_node_[li];

    if (layer.kind == LayerKind::kDense) {
      int64_t prev_first = li == 0 ? 0 : first_node_[li - 1];
      int64_t in = node_in - prev_first;
      if (in < 0 || in >= layer.input_dim) {
        return Status::ExecutionError("dense edge with out-of-range node_in");
      }
      // Transposed storage: w[out][in].
      h.w[0][out * layer.input_dim + in] =
          model_table.column(cols.w[0]).GetFloat(r);
      if (in == 0) {
        // Exactly one edge per output node carries the bias write (the
        // value is replicated on every in-edge, §4.3).
        h.bias[0][out] = model_table.column(cols.b[0]).GetFloat(r);
      }
    } else {
      if (layer.input_dim != 1) {
        return Status::NotImplemented(
            "native ModelJoin supports univariate recurrent input");
      }
      int gates =
          layer.kind == LayerKind::kLstm ? nn::kNumGates : nn::kNumGruGates;
      if (node_in == -1) {
        // Kernel edge (+ biases).
        for (int g = 0; g < gates; ++g) {
          h.w[g][out] = model_table.column(cols.w[g]).GetFloat(r);
          h.bias[g][out] = model_table.column(cols.b[g]).GetFloat(r);
        }
      } else {
        int64_t in = node_in - first_node_[li];
        if (in < 0 || in >= layer.units) {
          return Status::ExecutionError("recurrent edge with out-of-range node_in");
        }
        for (int g = 0; g < gates; ++g) {
          h.u[g][out * layer.units + in] =
              model_table.column(cols.u[g]).GetFloat(r);
        }
      }
    }
  }
  return Status::OK();
}

void SharedModel::UploadToDevice() {
  const bool gpu = device_->is_gpu();
  for (size_t li = 0; li < meta_.layers.size(); ++li) {
    const LayerMeta& layer = meta_.layers[li];
    int gates = layer.kind == LayerKind::kDense  ? 1
                : layer.kind == LayerKind::kLstm ? nn::kNumGates
                                                 : nn::kNumGruGates;
    for (int g = 0; g < gates; ++g) {
      if (gpu) {
        device_->CopyToDevice(layers_[li].w[g], host_[li].w[g].data(),
                              layers_[li].w_size);
        if (layers_[li].u_size > 0) {
          device_->CopyToDevice(layers_[li].u[g], host_[li].u[g].data(),
                                layers_[li].u_size);
        }
      }
      // Replicate the bias vector into the [units x vectorsize] matrix
      // (§5.4: one-time effort so bias addition is a single large copy).
      std::vector<float> expanded(
          static_cast<size_t>(layer.units * vector_size_));
      for (int64_t u = 0; u < layer.units; ++u) {
        float b = host_[li].bias[g][u];
        for (int v = 0; v < vector_size_; ++v) {
          expanded[static_cast<size_t>(u * vector_size_ + v)] = b;
        }
      }
      device_->CopyToDevice(layers_[li].bias_mat[g], expanded.data(),
                            layer.units * vector_size_);
    }
  }
}

Status SharedModel::BuildPartition(const storage::Table& model_table, int worker) {
  // Work-stealing build: every worker claims fixed-size row ranges from the
  // shared cursor until the table is exhausted. ParsePartition writes are
  // disjoint per model-table row, so claimed ranges never conflict.
  const int64_t n = model_table.num_rows();
  const int64_t step = kRowsPerBlock;
  for (;;) {
    if (failed_.load()) break;
    int64_t begin = build_cursor_.fetch_add(step);
    if (begin >= n) break;
    storage::PartitionRange range{begin, std::min(begin + step, n)};
    Status status = ParsePartition(model_table, range);
    if (!status.ok()) {
      RecordFailure(status);
      break;
    }
  }
  // All participants must reach the barrier even on failure, or the others
  // would deadlock (paper §5.2: single synchronisation point).
  build_barrier_.Wait();
  if (failed_.load()) return FailureStatus();
  // One thread moves the finished model to the device (§5.2 optimisation:
  // build on host memory, upload once at the end).
  if (worker == 0) {
    UploadToDevice();
    if (validation::Enabled()) {
      Status shape = ValidateSharedModelShape(*this);
      if (!shape.ok()) RecordFailure(shape);
    }
  }
  upload_barrier_.Wait();
  if (failed_.load()) return FailureStatus();
  // Idempotent across the workers leaving the barrier: all of them observed
  // the completed upload, so any of them may publish the model as built.
  built_.store(true, std::memory_order_release);
  return Status::OK();
}

Status SharedModel::BuildSerial(const storage::Table& model_table) {
  INDBML_CHECK(num_workers_ == 1)
      << "BuildSerial is the registry's single-builder path; barrier-built "
         "models must use BuildPartition";
  INDBML_RETURN_NOT_OK(
      ParsePartition(model_table, {0, model_table.num_rows()}));
  UploadToDevice();
  if (validation::Enabled()) {
    INDBML_RETURN_NOT_OK(ValidateSharedModelShape(*this));
  }
  built_.store(true, std::memory_order_release);
  return Status::OK();
}

Status SharedModel::BuildFromModel(const nn::Model& model) {
  INDBML_CHECK(num_workers_ == 1)
      << "BuildFromModel is a single-builder path; barrier-built models must "
         "use BuildPartition";
  if (model.layers().size() != meta_.layers.size()) {
    return Status::InvalidArgument(
        "model layer count does not match the meta this SharedModel was "
        "constructed with");
  }
  for (size_t li = 0; li < meta_.layers.size(); ++li) {
    const nn::Layer& src = model.layers()[li];
    const LayerMeta& layer = meta_.layers[li];
    if (src.kind != layer.kind || src.units() != layer.units ||
        src.input_dim() != layer.input_dim) {
      return Status::InvalidArgument("model layer shape does not match meta");
    }
    HostBuffers& h = host_[li];
    if (layer.kind == LayerKind::kDense) {
      // nn kernels are row-major [input_dim x units]; the shared layout is
      // the transposed [units x input_dim].
      for (int64_t in = 0; in < layer.input_dim; ++in) {
        for (int64_t u = 0; u < layer.units; ++u) {
          h.w[0][u * layer.input_dim + in] = src.dense.kernel[in * layer.units + u];
        }
      }
      for (int64_t u = 0; u < layer.units; ++u) h.bias[0][u] = src.dense.bias[u];
    } else {
      const bool lstm = layer.kind == LayerKind::kLstm;
      const int gates = lstm ? nn::kNumGates : nn::kNumGruGates;
      for (int g = 0; g < gates; ++g) {
        const nn::Tensor& kernel = lstm ? src.lstm.kernel[g] : src.gru.kernel[g];
        const nn::Tensor& recurrent =
            lstm ? src.lstm.recurrent[g] : src.gru.recurrent[g];
        const nn::Tensor& bias = lstm ? src.lstm.bias[g] : src.gru.bias[g];
        for (int64_t in = 0; in < layer.input_dim; ++in) {
          for (int64_t u = 0; u < layer.units; ++u) {
            h.w[g][u * layer.input_dim + in] = kernel[in * layer.units + u];
          }
        }
        for (int64_t in = 0; in < layer.units; ++in) {
          for (int64_t u = 0; u < layer.units; ++u) {
            h.u[g][u * layer.units + in] = recurrent[in * layer.units + u];
          }
        }
        for (int64_t u = 0; u < layer.units; ++u) h.bias[g][u] = bias[u];
      }
    }
  }
  UploadToDevice();
  if (validation::Enabled()) {
    INDBML_RETURN_NOT_OK(ValidateSharedModelShape(*this));
  }
  built_.store(true, std::memory_order_release);
  return Status::OK();
}

void SharedModel::RecordFailure(const Status& status) {
  {
    MutexLock lock(failure_mu_);
    // First failure wins: a second worker failing concurrently must not
    // overwrite the root-cause message the first one recorded.
    if (failure_message_.empty()) failure_message_ = status.ToString();
  }
  failed_.store(true);
}

Status SharedModel::FailureStatus() const {
  MutexLock lock(failure_mu_);
  return Status::ExecutionError("ModelJoin build failed: " + failure_message_);
}

Status ValidateSharedModelShape(const SharedModel& model) {
  const nn::ModelMeta& meta = model.meta_;
  for (size_t li = 0; li < meta.layers.size(); ++li) {
    const LayerMeta& layer = meta.layers[li];
    auto fail = [&](const char* what) {
      return Status::Internal(
          StrFormat("shared-model shape validation failed at layer %lld: %s",
                    static_cast<long long>(li), what));
    };
    if (layer.units <= 0 || layer.input_dim <= 0) {
      return fail("non-positive layer dimensions");
    }
    // Layer dimension chain: each layer consumes exactly what the previous
    // one produces (the first dense layer consumes the model input width).
    if (li > 0 && layer.kind == LayerKind::kDense &&
        layer.input_dim != meta.layers[li - 1].units) {
      return fail("input_dim does not chain to the previous layer's units");
    }
    const SharedModel::LayerBuffers& d = model.layers_[li];
    // Transposed-weight extents: kernel is [units x input_dim], recurrent
    // [units x units], bias staging [units].
    if (d.w_size != layer.units * layer.input_dim) {
      return fail("transposed kernel extent != units x input_dim");
    }
    int64_t expected_u =
        layer.kind == LayerKind::kDense ? 0 : layer.units * layer.units;
    if (d.u_size != expected_u) {
      return fail("recurrent weight extent != units x units");
    }
    if (d.bias_size != layer.units) return fail("bias extent != units");
    int gates = layer.kind == LayerKind::kDense  ? 1
                : layer.kind == LayerKind::kLstm ? nn::kNumGates
                                                 : nn::kNumGruGates;
    for (int g = 0; g < gates; ++g) {
      if (d.w[g] == nullptr || d.bias_mat[g] == nullptr) {
        return fail("missing device buffer");
      }
      if (expected_u > 0 && d.u[g] == nullptr) {
        return fail("missing recurrent device buffer");
      }
      // Replicated bias rows: every row of the [units x vectorsize] bias
      // matrix must hold one constant (§5.4 replication). The simulated
      // device keeps buffers host-readable, so this is directly checkable.
      const float* bias_mat = d.bias_mat[g];
      const std::vector<float>& bias = model.host_[li].bias[g];
      for (int64_t u = 0; u < layer.units; ++u) {
        const float expected = bias[static_cast<size_t>(u)];
        for (int v = 0; v < model.vector_size_; ++v) {
          float got = bias_mat[u * model.vector_size_ + v];
          if (got != expected) {
            return fail("bias matrix row not a replication of the bias vector");
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace indbml::inference
