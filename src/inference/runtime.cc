#include "inference/runtime.h"

#include <algorithm>
#include <utility>

namespace indbml::inference {

using nn::LayerKind;
using nn::LayerMeta;

struct InferenceRuntime::Scratch {
  device::Device* device = nullptr;
  int64_t vs = 0;
  int64_t input_width = 0;
  int64_t max_units = 0;
  bool has_lstm = false;

  float* x = nullptr;        ///< [input_width x vs]
  float* a = nullptr;        ///< [max_units x vs]
  float* b = nullptr;        ///< [max_units x vs]
  float* z[nn::kNumGates] = {nullptr, nullptr, nullptr, nullptr};
  float* h = nullptr;
  float* c = nullptr;
  float* tmp = nullptr;

  ~Scratch() {
    if (device == nullptr) return;
    device->Free(x, input_width * vs);
    device->Free(a, max_units * vs);
    device->Free(b, max_units * vs);
    if (has_lstm) {
      for (auto& g : z) device->Free(g, max_units * vs);
      device->Free(h, max_units * vs);
      device->Free(c, max_units * vs);
      device->Free(tmp, max_units * vs);
    }
  }
};

InferenceRuntime& InferenceRuntime::Global() {
  static InferenceRuntime* runtime = new InferenceRuntime();
  return *runtime;
}

InferenceRuntime::InferenceRuntime()
    : runs_metric_(metrics::Registry::Global().counter("inference.runs")),
      rows_metric_(metrics::Registry::Global().counter("inference.rows")) {}

InferenceRuntime::~InferenceRuntime() = default;

std::unique_ptr<InferenceRuntime::Scratch> InferenceRuntime::AcquireScratch(
    const SharedModel& model) {
  const nn::ModelMeta& meta = model.meta();
  const int64_t input_width = std::max<int64_t>(1, meta.input_width());
  int64_t max_units = 1;
  bool has_lstm = false;
  for (const LayerMeta& layer : meta.layers) {
    max_units = std::max(max_units, layer.units);
    if (layer.kind != LayerKind::kDense) has_lstm = true;
  }
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < pool_.size(); ++i) {
      Scratch* s = pool_[i].get();
      if (s->device == model.device() && s->vs == model.vector_size() &&
          s->input_width >= input_width && s->max_units >= max_units &&
          (s->has_lstm || !has_lstm)) {
        std::unique_ptr<Scratch> out = std::move(pool_[i]);
        pool_.erase(pool_.begin() + static_cast<ptrdiff_t>(i));
        return out;
      }
    }
  }
  auto s = std::make_unique<Scratch>();
  s->device = model.device();
  s->vs = model.vector_size();
  s->input_width = input_width;
  s->max_units = max_units;
  s->has_lstm = has_lstm;
  device::Device* device = s->device;
  s->x = device->Allocate(s->input_width * s->vs);
  s->a = device->Allocate(max_units * s->vs);
  s->b = device->Allocate(max_units * s->vs);
  if (has_lstm) {
    for (auto& g : s->z) g = device->Allocate(max_units * s->vs);
    s->h = device->Allocate(max_units * s->vs);
    s->c = device->Allocate(max_units * s->vs);
    s->tmp = device->Allocate(max_units * s->vs);
  }
  return s;
}

void InferenceRuntime::ReleaseScratch(std::unique_ptr<Scratch> scratch) {
  MutexLock lock(mu_);
  // Bound the freelist: enough for every executor worker to hold one plus
  // headroom; beyond that the scratch frees its device buffers on drop.
  constexpr size_t kMaxPooled = 32;
  if (pool_.size() < kMaxPooled) pool_.push_back(std::move(scratch));
}

void InferenceRuntime::DenseForward(const SharedModel& model, Scratch* s,
                                    size_t li, const float* x, int64_t in_dim,
                                    int64_t n, float* z) {
  const LayerMeta& layer = model.meta().layers[li];
  device::Device* device = s->device;
  // Bias first (the replicated bias matrix is [units x vectorsize]; copy
  // the first n columns of each row).
  if (n == s->vs) {
    device->CopyOnDevice(z, model.dense_bias_matrix(li), layer.units * n);
  } else {
    for (int64_t u = 0; u < layer.units; ++u) {
      device->CopyOnDevice(z + u * n,
                           model.dense_bias_matrix(li) + u * s->vs, n);
    }
  }
  // z += W[units x in] * x[in x n]
  device->Gemm(false, false, layer.units, n, in_dim, 1.0f, model.dense_kernel(li),
               in_dim, x, n, 1.0f, z, n);
  device->Activate(layer.activation, layer.units * n, z);
}

void InferenceRuntime::LstmForward(const SharedModel& model, Scratch* s,
                                   size_t li, const float* x, int64_t n,
                                   float* h_out) {
  const LayerMeta& layer = model.meta().layers[li];
  const nn::ModelMeta& meta = model.meta();
  device::Device* device = s->device;
  const int64_t units = layer.units;
  const int64_t f = layer.input_dim;  // 1 (univariate)
  const int64_t m = units * n;
  float* h = s->h;
  float* c = s->c;
  float* tmp = s->tmp;

  for (int64_t t = 0; t < meta.timesteps; ++t) {
    const float* x_t = x + t * f * n;  // rows [t*f, (t+1)*f) of the input
    for (int g = 0; g < nn::kNumGates; ++g) {
      float* z = s->z[g];
      // z = bias matrix
      if (n == s->vs) {
        device->CopyOnDevice(z, model.lstm_bias_matrix(li, g), m);
      } else {
        for (int64_t u = 0; u < units; ++u) {
          device->CopyOnDevice(z + u * n,
                               model.lstm_bias_matrix(li, g) + u * s->vs, n);
        }
      }
      // z += W_g[units x f] * x_t[f x n]
      device->Gemm(false, false, units, n, f, 1.0f, model.lstm_kernel(li, g), f,
                   x_t, n, 1.0f, z, n);
      if (t > 0) {
        // z += U_g[units x units] * h[units x n]
        device->Gemm(false, false, units, n, units, 1.0f,
                     model.lstm_recurrent(li, g), units, h, n, 1.0f, z, n);
      }
    }
    device->Activate(nn::Activation::kSigmoid, m, s->z[nn::kGateI]);
    device->Activate(nn::Activation::kSigmoid, m, s->z[nn::kGateF]);
    device->Activate(nn::Activation::kTanh, m, s->z[nn::kGateC]);
    device->Activate(nn::Activation::kSigmoid, m, s->z[nn::kGateO]);

    // c = (t > 0 ? f_gate * c : 0) + i_gate * c~
    device->EwMul(m, s->z[nn::kGateI], s->z[nn::kGateC], tmp);
    if (t > 0) {
      device->EwMul(m, s->z[nn::kGateF], c, c);
      device->EwAdd(m, c, tmp, c);
    } else {
      device->CopyOnDevice(c, tmp, m);
    }
    // h = o_gate * tanh(c)
    device->CopyOnDevice(h, c, m);
    device->Activate(nn::Activation::kTanh, m, h);
    device->EwMul(m, s->z[nn::kGateO], h, h);
  }
  if (h_out != h) device->CopyOnDevice(h_out, h, m);
}

void InferenceRuntime::GruForward(const SharedModel& model, Scratch* s,
                                  size_t li, const float* x, int64_t n,
                                  float* h_out) {
  const LayerMeta& layer = model.meta().layers[li];
  const nn::ModelMeta& meta = model.meta();
  device::Device* device = s->device;
  const int64_t units = layer.units;
  const int64_t f = layer.input_dim;  // 1 (univariate)
  const int64_t m = units * n;
  float* h = s->h;
  float* tmp = s->tmp;

  for (int64_t t = 0; t < meta.timesteps; ++t) {
    const float* x_t = x + t * f * n;
    for (int g = 0; g < nn::kNumGruGates; ++g) {
      float* z = s->z[g];
      if (n == s->vs) {
        device->CopyOnDevice(z, model.lstm_bias_matrix(li, g), m);
      } else {
        for (int64_t u = 0; u < units; ++u) {
          device->CopyOnDevice(z + u * n,
                               model.lstm_bias_matrix(li, g) + u * s->vs, n);
        }
      }
      device->Gemm(false, false, units, n, f, 1.0f, model.lstm_kernel(li, g), f,
                   x_t, n, 1.0f, z, n);
    }
    if (t > 0) {
      device->Gemm(false, false, units, n, units, 1.0f,
                   model.lstm_recurrent(li, nn::kGruZ), units, h, n, 1.0f,
                   s->z[nn::kGruZ], n);
      device->Gemm(false, false, units, n, units, 1.0f,
                   model.lstm_recurrent(li, nn::kGruR), units, h, n, 1.0f,
                   s->z[nn::kGruR], n);
    }
    device->Activate(nn::Activation::kSigmoid, m, s->z[nn::kGruZ]);
    device->Activate(nn::Activation::kSigmoid, m, s->z[nn::kGruR]);
    if (t > 0) {
      // Candidate input: U_h * (r * h_prev).
      device->EwMul(m, s->z[nn::kGruR], h, tmp);
      device->Gemm(false, false, units, n, units, 1.0f,
                   model.lstm_recurrent(li, nn::kGruH), units, tmp, n, 1.0f,
                   s->z[nn::kGruH], n);
    }
    device->Activate(nn::Activation::kTanh, m, s->z[nn::kGruH]);
    device->GruCombine(m, s->z[nn::kGruZ], t > 0 ? h : nullptr,
                       s->z[nn::kGruH], h);
  }
  if (h_out != h) device->CopyOnDevice(h_out, h, m);
}

Status InferenceRuntime::Infer(const SharedModel& model, Scratch* s,
                               const float* x, int64_t n, const float** result) {
  const nn::ModelMeta& meta = model.meta();
  const float* current = x;
  int64_t current_dim = meta.input_width();
  float* front = s->a;
  float* back = s->b;
  for (size_t li = 0; li < meta.layers.size(); ++li) {
    const LayerMeta& layer = meta.layers[li];
    if (layer.kind == LayerKind::kLstm) {
      LstmForward(model, s, li, current, n, front);
    } else if (layer.kind == LayerKind::kGru) {
      GruForward(model, s, li, current, n, front);
    } else {
      DenseForward(model, s, li, current, current_dim, n, front);
    }
    current = front;
    current_dim = layer.units;
    std::swap(front, back);
  }
  *result = current;
  return Status::OK();
}

Status InferenceRuntime::Run(const SharedModel& model, const float* input,
                             int64_t n, float* output) {
  if (n == 0) return Status::OK();
  if (!model.built()) {
    return Status::ExecutionError("InferenceRuntime::Run on an unbuilt model");
  }
  const nn::ModelMeta& meta = model.meta();
  const int64_t d = meta.input_width();
  const int64_t o = meta.output_dim();
  const int64_t vs = model.vector_size();
  std::unique_ptr<Scratch> s = AcquireScratch(model);
  device::Device* device = s->device;

  // Blocked execution at the model's vector size: each block is the exact
  // chunk-sized forward pass of the original operator, so results are
  // bit-identical no matter how callers slice `n`.
  for (int64_t j0 = 0; j0 < n; j0 += vs) {
    const int64_t bn = std::min<int64_t>(vs, n - j0);
    for (int64_t f = 0; f < d; ++f) {
      device->CopyToDevice(s->x + f * bn, input + f * n + j0, bn);
    }
    const float* result = nullptr;
    Status status = Infer(model, s.get(), s->x, bn, &result);
    if (!status.ok()) {
      ReleaseScratch(std::move(s));
      return status;
    }
    for (int64_t p = 0; p < o; ++p) {
      device->CopyToHost(output + p * n + j0, result + p * bn, bn);
    }
    runs_metric_->Increment(1);
  }
  rows_metric_->Increment(n);
  ReleaseScratch(std::move(s));
  return Status::OK();
}

}  // namespace indbml::inference
