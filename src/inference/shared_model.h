#ifndef INDBML_INFERENCE_SHARED_MODEL_H_
#define INDBML_INFERENCE_SHARED_MODEL_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "device/device.h"
#include "nn/model.h"
#include "nn/model_meta.h"
#include "storage/table.h"

namespace indbml::inference {

/// \brief The shared model of the native ModelJoin (paper §5.2), now owned
/// by the inference layer so every approach runs the same forward pass.
///
/// One instance exists per query (or one per (model, device) pair under the
/// serving registry); all execution workers fill disjoint parts of the
/// shared weight matrices from the model table and synchronise on a barrier
/// before inference starts. Build work is claimed morsel-wise from a shared
/// atomic cursor (mirroring exec/morsel.h), so a worker that finishes its
/// rows early steals more instead of idling at the barrier.
/// Weights are stored *transposed* ([units x input] row-major) and biases
/// replicated into [units x vectorsize] matrices (§5.4) so the per-chunk
/// inference is plain GEMM + one large addition.
///
/// On a GPU device the build writes host staging buffers; after the barrier
/// one thread uploads the finished model to device memory (the §5.2
/// optimisation avoiding fine-grained transfers).
class SharedModel {
 public:
  /// `num_workers` build participants will call BuildPartition.
  SharedModel(nn::ModelMeta meta, device::Device* device, int num_workers,
              int vector_size);
  ~SharedModel();

  SharedModel(const SharedModel&) = delete;
  SharedModel& operator=(const SharedModel&) = delete;

  /// Participates in the parallel build: claims row ranges of `model_table`
  /// (unique-node-id relational representation, 14 columns) from the shared
  /// build cursor and parses them into the shared weights, then waits on
  /// the build barrier. Every worker must call this exactly once; the call
  /// returns only after the whole model is built (and uploaded to the
  /// device). `worker` identifies the caller; worker 0 performs the upload.
  Status BuildPartition(const storage::Table& model_table, int worker);

  /// Builds the whole model on the calling thread — the registry path
  /// (modeljoin/model_registry.h): the first query to need a (model,
  /// device) pair builds it once, every later query block-shares the
  /// finished weights. No barrier is involved, so the instance must have
  /// been constructed with `num_workers` == 1. Marks the model built; after
  /// an OK return, ModelJoinOperator::Open skips its build phase entirely.
  Status BuildSerial(const storage::Table& model_table);

  /// Builds directly from in-memory nn::Model weights (the mlruntime path:
  /// no relational model table involved). Transposes the row-major kernels
  /// into the [units x input] layout and replicates biases, then uploads.
  /// Requires `num_workers` == 1; marks the model built.
  Status BuildFromModel(const nn::Model& model);

  /// True once the weights (and device upload) are complete and immutable.
  /// Release/acquire-paired with the end of BuildSerial, so an operator
  /// observing true also observes the finished weights.
  bool built() const { return built_.load(std::memory_order_acquire); }

  const nn::ModelMeta& meta() const { return meta_; }
  device::Device* device() const { return device_; }
  int vector_size() const { return vector_size_; }

  /// Process-unique id of this built-model instance. Rebuilding a model
  /// (redeploy) produces a new SharedModel and therefore a new id — the
  /// InferenceCache and InferenceBatcher key on it, so stale cached results
  /// can never be served for a replaced model and requests against
  /// different versions are never coalesced into one batch.
  int64_t model_id() const { return model_id_; }

  /// Device pointers, valid after BuildPartition returned OK.
  /// Dense layer li: kernel() is [units x input_dim] (transposed).
  const float* dense_kernel(size_t li) const { return layers_[li].w[0]; }
  const float* dense_bias_matrix(size_t li) const { return layers_[li].bias_mat[0]; }
  /// Recurrent-layer gate weights (LSTM g in [0,4), GRU g in [0,3)):
  /// kernel [units x input_dim], recurrent [units x units], bias matrix
  /// [units x vectorsize].
  const float* lstm_kernel(size_t li, int g) const { return layers_[li].w[g]; }
  const float* lstm_recurrent(size_t li, int g) const { return layers_[li].u[g]; }
  const float* lstm_bias_matrix(size_t li, int g) const {
    return layers_[li].bias_mat[g];
  }

  /// Bytes of device memory held by the model (Table 3 accounting).
  int64_t DeviceBytes() const { return device_bytes_; }

 private:
  struct LayerBuffers {
    // Device buffers; on CPU w/u point into the host staging vectors.
    float* w[nn::kNumGates] = {nullptr, nullptr, nullptr, nullptr};
    float* u[nn::kNumGates] = {nullptr, nullptr, nullptr, nullptr};
    float* bias_mat[nn::kNumGates] = {nullptr, nullptr, nullptr, nullptr};
    int64_t w_size = 0;
    int64_t u_size = 0;
    int64_t bias_size = 0;
  };

  /// Host staging buffers the build phase writes into (owned storage;
  /// uploaded to the device buffers after the build barrier).
  struct HostBuffers {
    std::vector<float> w[nn::kNumGates];
    std::vector<float> u[nn::kNumGates];
    std::vector<float> bias[nn::kNumGates];
  };

  /// Shape-invariant check run at build-phase exit under INDBML_VALIDATE=1.
  friend Status ValidateSharedModelShape(const SharedModel& model);

  /// Locates the layer owning node id `node`; kept in `first_node_` order.
  Status LocateLayer(int64_t node, size_t* layer_index) const;

  Status ParsePartition(const storage::Table& model_table,
                        storage::PartitionRange range);
  void UploadToDevice();

  /// Marks the build failed, keeping the first recorded message.
  void RecordFailure(const Status& status) INDBML_EXCLUDES(failure_mu_);
  /// The build-failed status carrying the first failure's message.
  Status FailureStatus() const INDBML_EXCLUDES(failure_mu_);

  nn::ModelMeta meta_;
  device::Device* device_;
  int num_workers_;
  int vector_size_;
  int64_t model_id_;

  std::vector<int64_t> first_node_;  ///< unique-id layout per layer
  int64_t input_nodes_ = 0;          ///< ids reserved for input nodes

  std::vector<HostBuffers> host_;     ///< staging (owned host storage)
  std::vector<LayerBuffers> layers_;  ///< device buffers (== host on CPU)
  int64_t device_bytes_ = 0;

  /// Next unclaimed model-table row of the work-stealing build phase.
  /// lock-free: relaxed-equivalent fetch_add hands each row range to exactly
  /// one worker; the parsed weights become visible to every worker through
  /// the build barrier, not through this cursor.
  std::atomic<int64_t> build_cursor_{0};
  Barrier build_barrier_;
  Barrier upload_barrier_;
  /// lock-free: sticky failure flag; workers poll it to stop claiming work
  /// early. The barrier orders it before the post-build checks.
  std::atomic<bool> failed_{false};
  /// lock-free: set (release) once by BuildSerial after upload + validation;
  /// read (acquire) by every operator Open deciding whether to build.
  std::atomic<bool> built_{false};
  mutable Mutex failure_mu_;
  /// First failure wins; later failures keep the original message.
  std::string failure_message_ INDBML_GUARDED_BY(failure_mu_);
};

}  // namespace indbml::inference

#endif  // INDBML_INFERENCE_SHARED_MODEL_H_
