#include "inference/batcher.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/stopwatch.h"
#include "inference/cache.h"

namespace indbml::inference {

namespace {

/// Decrements the in-Submit call count on every exit path.
struct ActiveGuard {
  std::atomic<int64_t>& count;
  ~ActiveGuard() { count.fetch_sub(1, std::memory_order_acq_rel); }
};

/// Follower poll interval: completion and cancellation are signalled
/// through NotifyAll (batch done, KickWaiters), this only bounds the wait
/// if a signal is lost to a race. Coarse on purpose — timed wakeups on a
/// saturated machine steal the core from the work the follower is waiting
/// on.
constexpr int64_t kFollowerPollMicros = 1000;

/// Past this many tracked models, arrival entries idle for longer than this
/// are pruned (redeploy churn mints a fresh model id per deploy).
constexpr size_t kMaxArrivalEntries = 4096;
constexpr int64_t kArrivalIdleMicros = 1'000'000;

int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

InferenceBatcher& InferenceBatcher::Global() {
  static InferenceBatcher* batcher = new InferenceBatcher();
  return *batcher;
}

InferenceBatcher::InferenceBatcher()
    : batches_metric_(metrics::Registry::Global().counter("inference.batches")),
      batch_rows_metric_(
          metrics::Registry::Global().histogram("inference.batch_rows")),
      wait_micros_metric_(
          metrics::Registry::Global().histogram("inference.batch_wait_micros")) {}

Status InferenceBatcher::Run(const std::shared_ptr<SharedModel>& model,
                             const float* in, int64_t n, float* out,
                             const InferenceOptions& opts,
                             const std::atomic<bool>* interrupt,
                             InferenceCallStats* stats) {
  if (n == 0) return Status::OK();
  const nn::ModelMeta& meta = model->meta();
  const int64_t d = meta.input_width();
  const int64_t o = meta.output_dim();

  // Cache layer: answer hit rows immediately, run only the misses.
  const float* run_in = in;
  float* run_out = out;
  int64_t run_n = n;
  int64_t hit_count = 0;
  std::vector<char> hits;
  std::vector<float> miss_in;
  std::vector<float> miss_out;
  std::vector<int64_t> miss_idx;
  if (opts.use_cache) {
    hits.assign(static_cast<size_t>(n), 0);
    hit_count = InferenceCache::Global().Lookup(model->model_id(), in, n, d, o,
                                                out, &hits);
    if (stats != nullptr) stats->cache_hits += hit_count;
    if (hit_count == n) return Status::OK();  // the NN is skipped entirely
    if (hit_count > 0) {
      // Compact the miss rows into a dense matrix so the coalesced launch
      // (and the cache insert) sees contiguous columns.
      const int64_t mn = n - hit_count;
      miss_idx.reserve(static_cast<size_t>(mn));
      for (int64_t j = 0; j < n; ++j) {
        if (hits[static_cast<size_t>(j)] == 0) miss_idx.push_back(j);
      }
      miss_in.resize(static_cast<size_t>(d * mn));
      miss_out.resize(static_cast<size_t>(o * mn));
      for (int64_t f = 0; f < d; ++f) {
        for (int64_t j = 0; j < mn; ++j) {
          miss_in[static_cast<size_t>(f * mn + j)] = in[f * n + miss_idx[j]];
        }
      }
      run_in = miss_in.data();
      run_out = miss_out.data();
      run_n = mn;
    }
  }

  INDBML_RETURN_NOT_OK(
      Submit(model, run_in, run_n, run_out, opts, interrupt, stats));

  if (opts.use_cache) {
    InferenceCache::Global().Insert(model->model_id(), run_in, run_n, d, o,
                                    run_out);
    if (hit_count > 0) {
      // Scatter the compacted miss results into their original columns.
      const int64_t mn = run_n;
      for (int64_t p = 0; p < o; ++p) {
        for (int64_t j = 0; j < mn; ++j) {
          out[p * n + miss_idx[j]] = miss_out[static_cast<size_t>(p * mn + j)];
        }
      }
    }
  }
  return Status::OK();
}

Status InferenceBatcher::Submit(const std::shared_ptr<SharedModel>& model,
                                const float* in, int64_t n, float* out,
                                const InferenceOptions& opts,
                                const std::atomic<bool>* interrupt,
                                InferenceCallStats* stats) {
  active_calls_.fetch_add(1, std::memory_order_acq_rel);
  ActiveGuard guard{active_calls_};

  // Inline fast path: batching disabled, or no batch partner is plausible —
  // waiting out the window would then be pure added latency. Partners are
  // plausible when another call is inside the batcher right now, or when
  // any call against this model arrived within the last window. The second
  // signal is what bootstraps coalescing on few-core machines: concurrent
  // queries there run interleaved rather than overlapped, so two calls are
  // almost never inside Submit at the same instant until a leader's window
  // wait yields the core and lets the partners catch up. If leading proves
  // futile (the window expires with no follower), recency is distrusted for
  // the model until real overlap is observed again, so a lone stream of
  // back-to-back calls pays at most one wasted window.
  bool partners_likely = opts.batch_window_us > 0;
  if (partners_likely &&
      active_calls_.load(std::memory_order_acquire) <= 1) {
    MutexLock lock(mu_);
    const int64_t now = MonotonicMicros();
    if (arrivals_.size() > kMaxArrivalEntries) {
      for (auto it = arrivals_.begin(); it != arrivals_.end();) {
        it = now - it->second.last_micros > kArrivalIdleMicros
                 ? arrivals_.erase(it)
                 : std::next(it);
      }
    }
    ArrivalState& arrival = arrivals_[model->model_id()];
    partners_likely = arrival.last_micros != 0 && !arrival.futile &&
                      now - arrival.last_micros <= opts.batch_window_us;
    arrival.last_micros = now;
  } else if (partners_likely) {
    MutexLock lock(mu_);
    ArrivalState& arrival = arrivals_[model->model_id()];
    arrival.last_micros = MonotonicMicros();
    arrival.futile = false;  // overlap observed: recency is trustworthy
  }
  if (!partners_likely) {
    batches_metric_->Increment(1);
    batch_rows_metric_->Record(n);
    if (stats != nullptr) stats->batch_rows += n;
    return InferenceRuntime::Global().Run(*model, in, n, out);
  }

  Request req;
  req.in = in;
  req.n = n;
  req.out = out;
  std::shared_ptr<Batch> batch;

  {
    MutexLock lock(mu_);
    arrivals_[model->model_id()].pending += 1;
    auto it = open_.find(model->model_id());
    if (it != open_.end() && !it->second->closed &&
        it->second->rows + n <= opts.max_batch_rows) {
      // Follower: join the open batch and wait for its leader.
      batch = it->second;
      batch->members.push_back(&req);
      batch->rows += n;
      if (batch->rows + n > opts.max_batch_rows) {
        // Full enough that the next same-sized call couldn't join anyway:
        // launch now instead of waiting out the window.
        batch->closed = true;
      }
      if (batch->closed || arrivals_[model->model_id()].pending ==
                               static_cast<int64_t>(batch->members.size())) {
        // Wake the leader only when this join changes its decision (batch
        // full, or everyone who could join has): every wakeup on a
        // saturated machine steals the core from the scans that would feed
        // this very batch.
        batch->cv.NotifyAll();
      }
      Stopwatch wait_watch;
      while (!batch->done) {
        if (interrupt != nullptr &&
            interrupt->load(std::memory_order_acquire) && !batch->closed) {
          // Detach: the leader has not started reading member buffers (it
          // gathers only after `closed`), so this request can leave the
          // batch and its stack-owned buffers safely.
          auto& members = batch->members;
          members.erase(std::find(members.begin(), members.end(), &req));
          batch->rows -= n;
          arrivals_[model->model_id()].pending -= 1;
          return Status::Cancelled("query cancelled in inference batch wait");
        }
        batch->cv.WaitFor(mu_, kFollowerPollMicros);
      }
      const int64_t waited = wait_watch.ElapsedMicros();
      wait_micros_metric_->Record(waited);
      if (stats != nullptr) {
        stats->wait_micros += waited;
        stats->batch_rows += batch->rows;
      }
      return batch->status;
    }

    // Leader: open a batch, wait out the window (shortened by a full batch
    // or by cancellation — a cancelled leader still launches, followers
    // depend on it), then close and gather while the lock pins membership.
    batch = std::make_shared<Batch>();
    batch->model = model;
    batch->members.push_back(&req);
    batch->rows = n;
    open_[model->model_id()] = batch;
    live_.push_back(batch);
    Stopwatch wait_watch;
    bool yielded = false;
    while (!batch->closed) {
      if (interrupt != nullptr && interrupt->load(std::memory_order_acquire)) {
        break;
      }
      if (yielded && arrivals_[model->model_id()].pending ==
                         static_cast<int64_t>(batch->members.size())) {
        // All-present early close: every batch-path call for this model has
        // joined, so waiting out the rest of the window can only gain
        // brand-new arrivals — and on a saturated few-core machine it would
        // stall the whole worker pool (everyone is blocked right here). The
        // first wait is never skipped: it is the yield that lets partners
        // on the same core catch up at all.
        break;
      }
      const int64_t remaining = opts.batch_window_us - wait_watch.ElapsedMicros();
      if (remaining <= 0) break;
      batch->cv.WaitFor(mu_, remaining);
      yielded = true;
    }
    const int64_t waited = wait_watch.ElapsedMicros();
    wait_micros_metric_->Record(waited);
    if (stats != nullptr) stats->wait_micros += waited;
    batch->closed = true;
    arrivals_[model->model_id()].pending -=
        static_cast<int64_t>(batch->members.size());
    auto oit = open_.find(model->model_id());
    if (oit != open_.end() && oit->second == batch) open_.erase(oit);

    if (batch->members.size() > 1) {
      // Gather member inputs into one feature-major matrix. Under the lock:
      // membership is final but followers' stack buffers must not be read
      // while a detach could still be mid-flight on another core.
      const int64_t total = batch->rows;
      const int64_t d = model->meta().input_width();
      batch->combined.resize(static_cast<size_t>(d * total));
      batch->combined_out.resize(
          static_cast<size_t>(model->meta().output_dim() * total));
      int64_t offset = 0;
      for (Request* member : batch->members) {
        for (int64_t f = 0; f < d; ++f) {
          std::memcpy(batch->combined.data() + f * total + offset,
                      member->in + f * member->n,
                      static_cast<size_t>(member->n) * sizeof(float));
        }
        offset += member->n;
      }
    }
  }

  // Leader launch, outside the lock: followers sleep, other models batch.
  const int64_t total = batch->rows;
  Status run_status;
  if (batch->members.size() == 1) {
    run_status = InferenceRuntime::Global().Run(*model, in, n, out);
  } else {
    run_status = InferenceRuntime::Global().Run(
        *model, batch->combined.data(), total, batch->combined_out.data());
  }
  batches_metric_->Increment(1);
  batch_rows_metric_->Record(total);
  if (stats != nullptr) stats->batch_rows += total;

  {
    MutexLock lock(mu_);
    if (batch->members.size() > 1 && run_status.ok()) {
      // Slice the coalesced result back into each member's output buffer.
      const int64_t o = model->meta().output_dim();
      int64_t offset = 0;
      for (Request* member : batch->members) {
        for (int64_t p = 0; p < o; ++p) {
          std::memcpy(member->out + p * member->n,
                      batch->combined_out.data() + p * total + offset,
                      static_cast<size_t>(member->n) * sizeof(float));
        }
        offset += member->n;
      }
    }
    batch->done = true;
    batch->status = run_status;
    // A solo launch means the window was waited out for nothing: stop
    // trusting arrival recency for this model until overlap is seen again.
    auto ait = arrivals_.find(model->model_id());
    if (ait != arrivals_.end()) ait->second.futile = batch->members.size() == 1;
    batch->cv.NotifyAll();
    live_.erase(std::find(live_.begin(), live_.end(), batch));
  }
  return run_status;
}

void InferenceBatcher::KickWaiters() {
  MutexLock lock(mu_);
  for (const std::shared_ptr<Batch>& batch : live_) batch->cv.NotifyAll();
}

}  // namespace indbml::inference
