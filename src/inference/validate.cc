#include "inference/validate.h"

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/string_util.h"

namespace indbml::inference {

using nn::LayerKind;
using nn::LayerMeta;

namespace {

Status Fail(const char* what, int64_t row) {
  return Status::InvalidArgument(
      StrFormat("model table validation failed: %s (row %lld)", what,
                static_cast<long long>(row)));
}

}  // namespace

Result<ModelTableReport> ValidateModelTable(const storage::Table& table,
                                            const nn::ModelMeta& meta) {
  if (table.num_columns() != 14) {
    return Status::InvalidArgument(StrFormat(
        "model table must have the 14-column unique-node-id schema, got %lld "
        "columns",
        static_cast<long long>(table.num_columns())));
  }
  INDBML_ASSIGN_OR_RETURN(int node_in_col, table.ColumnIndex("node_in"));
  INDBML_ASSIGN_OR_RETURN(int node_col, table.ColumnIndex("node"));
  INDBML_ASSIGN_OR_RETURN(int w_i_col, table.ColumnIndex("w_i"));
  INDBML_ASSIGN_OR_RETURN(int b_i_col, table.ColumnIndex("b_i"));

  // Unique-id layout.
  const bool dense_input =
      meta.layers.empty() || meta.layers[0].kind == LayerKind::kDense;
  const int64_t input_nodes = dense_input ? meta.input_width() : 0;
  std::vector<int64_t> first_node;
  int64_t next = input_nodes;
  for (const LayerMeta& layer : meta.layers) {
    first_node.push_back(next);
    next += layer.units;
  }
  const int64_t max_node = next;

  auto locate = [&](int64_t node) -> int {
    for (size_t li = meta.layers.size(); li-- > 0;) {
      if (node >= first_node[li]) {
        return node < first_node[li] + meta.layers[li].units ? static_cast<int>(li)
                                                             : -1;
      }
    }
    return -1;
  };

  ModelTableReport report;
  // Edge multiset per layer + bias consistency per node.
  std::map<std::pair<int64_t, int64_t>, int64_t> edge_count;
  std::map<int64_t, float> bias_by_node;
  int64_t prev_node = std::numeric_limits<int64_t>::min();
  int64_t prev_node_in = std::numeric_limits<int64_t>::min();
  report.sorted = true;

  for (int64_t r = 0; r < table.num_rows(); ++r) {
    int64_t node_in = table.column(node_in_col).GetInt64(r);
    int64_t node = table.column(node_col).GetInt64(r);
    if (node < 0 || node >= max_node) return Fail("node id out of layout range", r);
    if (node_in < -1 || node_in >= max_node) {
      return Fail("node_in id out of layout range", r);
    }
    if (++edge_count[{node_in, node}] > 1) return Fail("duplicate edge", r);
    if (node < prev_node || (node == prev_node && node_in < prev_node_in)) {
      report.sorted = false;
    }
    prev_node = node;
    prev_node_in = node_in;

    if (node < input_nodes) {
      // Artificial input edge: weight W_i must be exactly 1 (§4.3.1).
      if (node_in != -1) return Fail("input edge must originate from node -1", r);
      if (table.column(w_i_col).GetFloat(r) != 1.0f) {
        return Fail("input edge weight must be 1", r);
      }
      ++report.input_edges;
      continue;
    }
    int li = locate(node);
    if (li < 0) return Fail("node id between layers", r);
    const LayerMeta& layer = meta.layers[static_cast<size_t>(li)];
    if (layer.kind == LayerKind::kDense) {
      int64_t prev_first = li == 0 ? 0 : first_node[static_cast<size_t>(li - 1)];
      int64_t in = node_in - prev_first;
      if (in < 0 || in >= layer.input_dim) {
        return Fail("dense edge from a node outside the previous layer", r);
      }
      // Replicated bias must agree across all in-edges of a node (§4.3).
      float bias = table.column(b_i_col).GetFloat(r);
      auto [it, inserted] = bias_by_node.emplace(node, bias);
      if (!inserted && it->second != bias) {
        return Fail("inconsistent replicated bias", r);
      }
      ++report.dense_edges;
    } else {
      if (node_in == -1) {
        ++report.lstm_kernel_edges;
      } else {
        int64_t in = node_in - first_node[static_cast<size_t>(li)];
        if (in < 0 || in >= layer.units) {
          return Fail("recurrent edge from a node outside the LSTM layer", r);
        }
        ++report.lstm_recurrent_edges;
      }
    }
  }

  // Completeness: expected edge counts per layer.
  int64_t expected_input = dense_input ? meta.input_width() : 0;
  if (report.input_edges != expected_input) {
    return Status::InvalidArgument(
        StrFormat("expected %lld input edges, found %lld",
                  static_cast<long long>(expected_input),
                  static_cast<long long>(report.input_edges)));
  }
  int64_t expected_dense = 0;
  int64_t expected_kernel = 0;
  int64_t expected_recurrent = 0;
  for (const LayerMeta& layer : meta.layers) {
    if (layer.kind == LayerKind::kDense) {
      expected_dense += layer.input_dim * layer.units;
    } else {
      expected_kernel += layer.input_dim * layer.units;
      expected_recurrent += layer.units * layer.units;
    }
  }
  if (report.dense_edges != expected_dense ||
      report.lstm_kernel_edges != expected_kernel ||
      report.lstm_recurrent_edges != expected_recurrent) {
    return Status::InvalidArgument(StrFormat(
        "incomplete edge set: dense %lld/%lld, kernel %lld/%lld, recurrent "
        "%lld/%lld",
        static_cast<long long>(report.dense_edges),
        static_cast<long long>(expected_dense),
        static_cast<long long>(report.lstm_kernel_edges),
        static_cast<long long>(expected_kernel),
        static_cast<long long>(report.lstm_recurrent_edges),
        static_cast<long long>(expected_recurrent)));
  }
  return report;
}

}  // namespace indbml::inference
