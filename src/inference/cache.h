#ifndef INDBML_INFERENCE_CACHE_H_
#define INDBML_INFERENCE_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace indbml::inference {

/// \brief Memoizing inference result cache: hot-entity repeat traffic skips
/// the NN entirely (ISSUE 10 layer 3).
///
/// Keys are (model instance id, exact input-tuple bytes): the id is the
/// process-unique SharedModel::model_id(), so a redeployed model gets a new
/// id and can never serve a stale cached prediction, and the input floats
/// are compared byte-exact (no lossy hashing — hash collisions fall back to
/// a miss-free byte comparison inside the map). Values are the
/// [output_dim] prediction floats. Eviction is LRU bounded by
/// `set_capacity_bytes`. Correctness leans on the runtime's determinism: a
/// cached value is bit-identical to re-running the forward pass.
///
/// Thread safe; Lookup/Insert take whole batches so a 1024-row chunk costs
/// one lock round-trip, not 1024.
class InferenceCache {
 public:
  /// The process-wide cache.
  static InferenceCache& Global();

  InferenceCache();

  InferenceCache(const InferenceCache&) = delete;
  InferenceCache& operator=(const InferenceCache&) = delete;

  /// LRU bound in bytes (keys + values). Shrinking evicts immediately.
  /// A capacity of 0 disables the cache (Lookup misses, Insert drops).
  void set_capacity_bytes(int64_t bytes) INDBML_EXCLUDES(mu_);
  int64_t capacity_bytes() const INDBML_EXCLUDES(mu_);

  /// Looks up the `n` input tuples of the feature-major matrix `in`
  /// ([d x n]: row f holds feature f of every tuple). For each hit row j,
  /// writes the cached prediction into column j of `out` ([o x n]) and sets
  /// (*hits)[j] = 1; `hits` must arrive sized n and zeroed. Returns the hit
  /// count and records the hit/miss metrics.
  int64_t Lookup(int64_t model_id, const float* in, int64_t n, int64_t d,
                 int64_t o, float* out, std::vector<char>* hits)
      INDBML_EXCLUDES(mu_);

  /// Inserts the `n` tuples of `in` ([d x n]) with their predictions from
  /// `results` ([o x n]). Existing entries are refreshed (moved to the LRU
  /// front); the deterministic runtime guarantees the value is unchanged.
  void Insert(int64_t model_id, const float* in, int64_t n, int64_t d,
              int64_t o, const float* results) INDBML_EXCLUDES(mu_);

  /// Drops every entry of this model instance (redeploy invalidation:
  /// called when the model registry evicts or replaces the instance).
  void InvalidateModel(int64_t model_id) INDBML_EXCLUDES(mu_);

  /// Drops everything (tests and registry Clear()).
  void Clear() INDBML_EXCLUDES(mu_);

  struct Stats {
    int64_t entries = 0;
    int64_t bytes = 0;
  };
  Stats GetStats() const INDBML_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string key;            ///< model id bytes + input-tuple bytes
    std::vector<float> values;  ///< [output_dim] prediction
  };
  using Lru = std::list<Entry>;

  static std::string MakeKey(int64_t model_id, const float* in, int64_t n,
                             int64_t d, int64_t row);

  void EvictToCapacity() INDBML_REQUIRES(mu_);

  mutable Mutex mu_;
  Lru lru_ INDBML_GUARDED_BY(mu_);  ///< front = most recently used
  std::unordered_map<std::string, Lru::iterator> index_ INDBML_GUARDED_BY(mu_);
  int64_t bytes_ INDBML_GUARDED_BY(mu_) = 0;
  int64_t capacity_bytes_ INDBML_GUARDED_BY(mu_) = 32 << 20;

  metrics::Counter* hits_metric_;    ///< inference.cache_hits
  metrics::Counter* misses_metric_;  ///< inference.cache_misses
};

}  // namespace indbml::inference

#endif  // INDBML_INFERENCE_CACHE_H_
