#include "inference/cache.h"

#include <cstring>

namespace indbml::inference {

InferenceCache& InferenceCache::Global() {
  static InferenceCache* cache = new InferenceCache();
  return *cache;
}

InferenceCache::InferenceCache()
    : hits_metric_(metrics::Registry::Global().counter("inference.cache_hits")),
      misses_metric_(
          metrics::Registry::Global().counter("inference.cache_misses")) {}

void InferenceCache::set_capacity_bytes(int64_t bytes) {
  MutexLock lock(mu_);
  capacity_bytes_ = bytes;
  EvictToCapacity();
}

int64_t InferenceCache::capacity_bytes() const {
  MutexLock lock(mu_);
  return capacity_bytes_;
}

std::string InferenceCache::MakeKey(int64_t model_id, const float* in,
                                    int64_t n, int64_t d, int64_t row) {
  // model id bytes followed by the tuple's d feature floats, byte-exact.
  // The features sit strided in the feature-major matrix (column `row`).
  std::string key(sizeof(model_id) + static_cast<size_t>(d) * sizeof(float),
                  '\0');
  std::memcpy(key.data(), &model_id, sizeof(model_id));
  char* p = key.data() + sizeof(model_id);
  for (int64_t f = 0; f < d; ++f) {
    std::memcpy(p + f * sizeof(float), in + f * n + row, sizeof(float));
  }
  return key;
}

int64_t InferenceCache::Lookup(int64_t model_id, const float* in, int64_t n,
                               int64_t d, int64_t o, float* out,
                               std::vector<char>* hits) {
  int64_t hit_count = 0;
  {
    MutexLock lock(mu_);
    if (capacity_bytes_ > 0) {
      for (int64_t j = 0; j < n; ++j) {
        auto it = index_.find(MakeKey(model_id, in, n, d, j));
        if (it == index_.end()) continue;
        lru_.splice(lru_.begin(), lru_, it->second);
        const std::vector<float>& values = it->second->values;
        for (int64_t p = 0; p < o; ++p) out[p * n + j] = values[p];
        (*hits)[j] = 1;
        ++hit_count;
      }
    }
  }
  hits_metric_->Increment(hit_count);
  misses_metric_->Increment(n - hit_count);
  return hit_count;
}

void InferenceCache::Insert(int64_t model_id, const float* in, int64_t n,
                            int64_t d, int64_t o, const float* results) {
  MutexLock lock(mu_);
  if (capacity_bytes_ <= 0) return;
  for (int64_t j = 0; j < n; ++j) {
    std::string key = MakeKey(model_id, in, n, d, j);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Deterministic runtime: the value cannot have changed; refresh LRU.
      lru_.splice(lru_.begin(), lru_, it->second);
      continue;
    }
    Entry entry;
    entry.values.resize(static_cast<size_t>(o));
    for (int64_t p = 0; p < o; ++p) entry.values[p] = results[p * n + j];
    bytes_ += static_cast<int64_t>(key.size() + entry.values.size() * sizeof(float));
    entry.key = key;
    lru_.push_front(std::move(entry));
    index_.emplace(std::move(key), lru_.begin());
  }
  EvictToCapacity();
}

void InferenceCache::EvictToCapacity() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= static_cast<int64_t>(victim.key.size() +
                                   victim.values.size() * sizeof(float));
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

void InferenceCache::InvalidateModel(int64_t model_id) {
  MutexLock lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    int64_t id;
    std::memcpy(&id, it->key.data(), sizeof(id));
    if (id == model_id) {
      bytes_ -= static_cast<int64_t>(it->key.size() +
                                     it->values.size() * sizeof(float));
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void InferenceCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

InferenceCache::Stats InferenceCache::GetStats() const {
  MutexLock lock(mu_);
  Stats stats;
  stats.entries = static_cast<int64_t>(lru_.size());
  stats.bytes = bytes_;
  return stats;
}

}  // namespace indbml::inference
