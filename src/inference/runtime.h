#ifndef INDBML_INFERENCE_RUNTIME_H_
#define INDBML_INFERENCE_RUNTIME_H_

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "inference/shared_model.h"

namespace indbml::inference {

/// \brief The shared forward-pass engine (ROADMAP item 2): one
/// implementation of dense/LSTM/GRU inference over a SharedModel, used
/// identically by the native ModelJoin operator, the C-API operator (via
/// mlruntime) and standalone mlruntime sessions. Operators hold no inference
/// math of their own — the raw-forward-pass analyzer pass enforces it.
///
/// The math is byte-for-byte the former ModelJoinOperator forward pass
/// (paper §5.4): per layer, bias-matrix copy + one GEMM on the transposed
/// weights + in-place activation, ping-ponging between two activation
/// buffers. Every device kernel involved is column-independent (one IEEE
/// operation per lane, no FMA), so running rows in one call or split across
/// calls produces bit-identical results — the property the batcher's
/// coalescing and the cache's memoization both rest on.
///
/// Thread safe: concurrent Run calls draw device scratch from a pooled
/// freelist, so the runtime is a process-wide singleton with no per-query
/// state.
class InferenceRuntime {
 public:
  /// The process-wide runtime.
  static InferenceRuntime& Global();

  InferenceRuntime();
  ~InferenceRuntime();

  InferenceRuntime(const InferenceRuntime&) = delete;
  InferenceRuntime& operator=(const InferenceRuntime&) = delete;

  /// Synchronous forward pass over a built model.
  ///
  /// `input` is host memory in feature-major layout [input_width x n]: row f
  /// holds feature f of all n tuples (the transposed layout of §5.3, which
  /// a columnar engine produces with one contiguous copy per column).
  /// `output` receives [output_dim x n] in the same layout. Internally the
  /// rows are run in blocks of the model's vector size, so `n` may exceed
  /// it freely. `n == 0` is a no-op.
  Status Run(const SharedModel& model, const float* input, int64_t n,
             float* output);

 private:
  /// Device buffers for one in-flight forward pass (the former operator
  /// scratch): input matrix, ping-pong activation buffers, recurrent gate
  /// and state buffers. Pooled per (device, extents) so concurrent queries
  /// reuse allocations instead of thrashing the device allocator.
  struct Scratch;

  std::unique_ptr<Scratch> AcquireScratch(const SharedModel& model)
      INDBML_EXCLUDES(mu_);
  void ReleaseScratch(std::unique_ptr<Scratch> scratch) INDBML_EXCLUDES(mu_);

  /// One ≤vector_size block on the device. `x` is the device input matrix
  /// [input_width x n]; `*result` points at the scratch buffer holding the
  /// final [output_dim x n] activations.
  Status Infer(const SharedModel& model, Scratch* s, const float* x, int64_t n,
               const float** result);
  void DenseForward(const SharedModel& model, Scratch* s, size_t li,
                    const float* x, int64_t in_dim, int64_t n, float* z);
  void LstmForward(const SharedModel& model, Scratch* s, size_t li,
                   const float* x, int64_t n, float* h_out);
  void GruForward(const SharedModel& model, Scratch* s, size_t li,
                  const float* x, int64_t n, float* h_out);

  Mutex mu_;
  /// Scratch freelist; entries are compatible with any model whose extents
  /// fit (checked in AcquireScratch).
  std::vector<std::unique_ptr<Scratch>> pool_ INDBML_GUARDED_BY(mu_);

  metrics::Counter* runs_metric_;  ///< inference.runs — GEMM launches
  metrics::Counter* rows_metric_;  ///< inference.rows — rows through the NN
};

}  // namespace indbml::inference

#endif  // INDBML_INFERENCE_RUNTIME_H_
