#ifndef INDBML_INFERENCE_VALIDATE_H_
#define INDBML_INFERENCE_VALIDATE_H_

#include <string>

#include "common/status.h"
#include "nn/model_meta.h"
#include "storage/table.h"

namespace indbml::inference {

/// Summary of a validated model table.
struct ModelTableReport {
  int64_t input_edges = 0;
  int64_t dense_edges = 0;
  int64_t lstm_kernel_edges = 0;
  int64_t lstm_recurrent_edges = 0;
  bool sorted = false;
};

/// \brief Sanity-checks a relational model table against registered model
/// metadata (paper §5.5: "Making the DBMS aware that a table is a model
/// additionally enables ... sanity checks").
///
/// Verifies: the unique-node-id schema (14 columns), node ids within the
/// layout implied by `meta`, exactly one kernel weight per dense edge pair,
/// complete edge counts per layer (a dense layer of m x n needs m*n edges;
/// an LSTM layer f*u kernel + u*u recurrent edges), and consistent
/// replicated biases. Returns a report on success, a descriptive error on
/// the first violation.
Result<ModelTableReport> ValidateModelTable(const storage::Table& table,
                                            const nn::ModelMeta& meta);

class SharedModel;

/// \brief Shape invariants of a built SharedModel, asserted at build-phase
/// exit under `INDBML_VALIDATE=1` (see common/validation.h).
///
/// Verifies the layer dimension chain (each layer's input_dim equals the
/// previous layer's units), the transposed-weight extents ([units x
/// input_dim] kernels, [units x units] recurrent weights), and that every
/// row of the replicated [units x vectorsize] bias matrices holds the
/// layer's bias constant (§5.4).
Status ValidateSharedModelShape(const SharedModel& model);

}  // namespace indbml::inference

#endif  // INDBML_INFERENCE_VALIDATE_H_
