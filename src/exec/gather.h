#ifndef INDBML_EXEC_GATHER_H_
#define INDBML_EXEC_GATHER_H_

#include <cstdint>

#include "exec/vector.h"

namespace indbml::exec {

/// \brief Typed gather kernels for the columnar ↔ matrix boundary.
///
/// These are the only sanctioned way to move a Vector's rows into an
/// inference engine's input layout. They hoist the base pointer, element
/// type, and selection vector out of the row loop, so a filtered zero-copy
/// chunk is packed with one indexed load per row — no per-row Value boxing
/// and no intermediate flatten copy.

/// Writes the vector's `v.size()` logical rows into `dst[0..n)` as floats,
/// applying the selection and converting from bool/int64 as needed. For a
/// flat float vector this is a straight memcpy.
void GatherToFloat(const Vector& v, float* dst);

/// Strided variant for row-major packs: logical row i is written to
/// `dst[i * stride]`. Used by the C-API boundary, where column c of a
/// [n x width] row-major matrix lives at `base + c` with stride `width`.
void GatherToFloatStrided(const Vector& v, float* dst, int64_t stride);

/// \brief Selection-aware per-row reader for boundaries that must keep
/// per-value semantics (the UDF approach boxes every value into a PyValue —
/// that tax is the experiment) but should not also pay Value boxing or a
/// per-row selection branch chain.
///
/// Construct once per (vector, batch), then call DoubleAt in the row loop.
class TypedDoubleReader {
 public:
  explicit TypedDoubleReader(const Vector& v)
      : type_(v.type()), sel_(v.selection()) {
    switch (type_) {
      case DataType::kBool:
        bools_ = v.BaseBools();
        break;
      case DataType::kInt64:
        ints_ = v.BaseInts();
        break;
      case DataType::kFloat:
        floats_ = v.BaseFloats();
        break;
    }
  }

  double DoubleAt(int64_t row) const {
    const int64_t r = sel_ != nullptr ? (*sel_)[row] : row;
    switch (type_) {
      case DataType::kBool:
        return bools_[r] != 0 ? 1.0 : 0.0;
      case DataType::kInt64:
        return static_cast<double>(ints_[r]);
      case DataType::kFloat:
        return static_cast<double>(floats_[r]);
    }
    return 0.0;
  }

 private:
  DataType type_;
  const SelectionVector* sel_ = nullptr;
  const uint8_t* bools_ = nullptr;
  const int64_t* ints_ = nullptr;
  const float* floats_ = nullptr;
};

}  // namespace indbml::exec

#endif  // INDBML_EXEC_GATHER_H_
