#include "exec/parallel.h"

#include <string>

#include "common/trace.h"
#include "exec/morsel.h"

namespace indbml::exec {

Result<QueryResult> ExecuteParallel(const OperatorFactory& factory, int num_partitions,
                                    storage::Catalog* catalog, ThreadPool* pool) {
  if (num_partitions <= 0) num_partitions = 1;
  // Partitions are contiguous row ranges in partition order, so reassembling
  // them through the collector (one slot per partition) preserves the global
  // row order, exactly as it does for morsels.
  ResultCollector collector(num_partitions);
  FirstError first_error;

  auto run_one = [&](int p) {
    trace::Span span("partition " + std::to_string(p));
    ExecContext ctx;
    ctx.catalog = catalog;
    ctx.worker_id = p;
    Result<OperatorPtr> op = factory(p);
    if (!op.ok()) {
      first_error.Record(op.status());
      return;
    }
    Result<QueryResult> result = DrainOperator(op.ValueOrDie().get(), &ctx);
    if (!result.ok()) {
      first_error.Record(result.status());
      return;
    }
    QueryResult& qr = result.ValueOrDie();
    collector.SetSchema(qr.names, qr.types);
    collector.Add(p, std::move(qr.chunks), qr.num_rows);
  };

  if (pool != nullptr && num_partitions > 1) {
    pool->ParallelFor(num_partitions, run_one);
  } else {
    for (int p = 0; p < num_partitions; ++p) run_one(p);
  }

  Status first = first_error.Get();
  if (!first.ok()) return first;
  return collector.Assemble();
}

}  // namespace indbml::exec
