#include "exec/parallel.h"

#include <mutex>
#include <string>

#include "common/trace.h"

namespace indbml::exec {

Result<QueryResult> ExecuteParallel(const OperatorFactory& factory, int num_partitions,
                                    storage::Catalog* catalog, ThreadPool* pool) {
  if (num_partitions <= 0) num_partitions = 1;
  std::vector<Result<QueryResult>> partial(
      static_cast<size_t>(num_partitions),
      Result<QueryResult>(Status::Internal("partition not executed")));

  auto run_one = [&](int p) {
    trace::Span span("partition " + std::to_string(p));
    ExecContext ctx;
    ctx.catalog = catalog;
    ctx.partition_id = p;
    Result<OperatorPtr> op = factory(p);
    if (!op.ok()) {
      partial[static_cast<size_t>(p)] = op.status();
      return;
    }
    partial[static_cast<size_t>(p)] = DrainOperator(op->get(), &ctx);
  };

  if (pool != nullptr && num_partitions > 1) {
    pool->ParallelFor(num_partitions, run_one);
  } else {
    for (int p = 0; p < num_partitions; ++p) run_one(p);
  }

  QueryResult merged;
  bool first = true;
  for (int p = 0; p < num_partitions; ++p) {
    Result<QueryResult>& r = partial[static_cast<size_t>(p)];
    if (!r.ok()) return r.status();
    QueryResult& qr = r.ValueOrDie();
    if (first) {
      merged.names = qr.names;
      merged.types = qr.types;
      first = false;
    }
    merged.num_rows += qr.num_rows;
    for (auto& chunk : qr.chunks) merged.chunks.push_back(std::move(chunk));
  }
  return merged;
}

}  // namespace indbml::exec
