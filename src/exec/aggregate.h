#ifndef INDBML_EXEC_AGGREGATE_H_
#define INDBML_EXEC_AGGREGATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"

namespace indbml::exec {

enum class AggFunction { kSum, kCount, kMin, kMax, kAvg };

const char* AggFunctionName(AggFunction fn);

/// One aggregate to compute: FUNCTION(argument). For COUNT(*) the argument
/// is null.
struct AggregateSpec {
  AggFunction function;
  ExprPtr argument;  ///< nullable for COUNT(*)
  DataType result_type;
  std::string name;
};

/// Running state of one aggregate within one group. Sums accumulate in
/// double precision so float summation matches the BLAS reference closely.
struct AggState {
  double sum = 0;
  int64_t count = 0;
  double min = 0;
  double max = 0;
  bool seen = false;

  void Update(double v) {
    sum += v;
    ++count;
    if (!seen || v < min) min = v;
    if (!seen || v > max) max = v;
    seen = true;
  }
  Value Finalize(AggFunction fn, DataType result_type) const;
};

/// \brief Hash-based grouped aggregation (pipeline breaker): the default
/// physical choice when the input carries no usable order.
class HashAggregateOperator final : public Operator {
 public:
  HashAggregateOperator(OperatorPtr child, std::vector<ExprPtr> groups,
                        std::vector<std::string> group_names,
                        std::vector<AggregateSpec> aggregates);
  ~HashAggregateOperator() override;

  const std::vector<DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(ExecContext* ctx) override;
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  void Close(ExecContext* ctx) override { child_->Close(ctx); }
  Status Rewind(ExecContext* ctx) override;
  bool MorselDriven() const override { return child_->MorselDriven(); }

  /// Approximate bytes held by the hash table (memory experiments).
  int64_t HashTableBytes() const;

 private:
  struct GroupEntry {
    std::vector<Value> key_values;
    std::vector<AggState> states;
  };

  /// Drains the (already open) child into the group table. Runs lazily on
  /// the first Next after Open/Rewind so each morsel aggregates only its
  /// own rows.
  Status Consume(ExecContext* ctx);

  OperatorPtr child_;
  std::vector<ExprPtr> groups_;
  std::vector<AggregateSpec> aggregates_;
  std::vector<DataType> types_;
  std::vector<std::string> names_;

  std::unordered_map<uint64_t, std::vector<GroupEntry>> table_;
  std::vector<const GroupEntry*> emit_order_;
  size_t emit_cursor_ = 0;
  int64_t tracked_bytes_ = 0;
  bool consumed_ = false;
  DataChunk in_;  ///< reused input buffer (no per-batch reallocation)
};

/// \brief Order-based (streaming) aggregation (paper §4.4).
///
/// The first `prefix_count` group keys are guaranteed by the optimizer to be
/// a sorted/grouped prefix of the input (all rows with equal prefix values
/// arrive contiguously, e.g. the unique tuple ID after an order-preserving
/// join). The remaining keys are hashed *within* the current prefix group,
/// and all groups of a prefix are emitted as soon as the prefix changes.
///
/// With prefix_count == #groups this degenerates to a classic order-based
/// aggregation with O(1) state; with a shorter prefix the state is bounded
/// by the number of distinct remaining-key values per prefix group (one
/// layer's node count in the ModelJoin queries) instead of the whole input —
/// which is what makes the generated inference pipeline low-memory and
/// fully pipelined.
class StreamingAggregateOperator final : public Operator {
 public:
  StreamingAggregateOperator(OperatorPtr child, std::vector<ExprPtr> groups,
                             std::vector<std::string> group_names,
                             std::vector<AggregateSpec> aggregates, int prefix_count);

  const std::vector<DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override { return names_; }

  Status Open(ExecContext* ctx) override;
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  void Close(ExecContext* ctx) override { child_->Close(ctx); }
  Status Rewind(ExecContext* ctx) override;
  bool MorselDriven() const override { return child_->MorselDriven(); }

  /// Peak number of concurrently-held groups (memory observability).
  int64_t peak_group_count() const { return peak_group_count_; }

 private:
  struct GroupEntry {
    std::vector<Value> rest_key;
    std::vector<AggState> states;
  };

  void FlushPrefixGroup(DataChunk* out);

  OperatorPtr child_;
  std::vector<ExprPtr> groups_;
  std::vector<AggregateSpec> aggregates_;
  std::vector<DataType> types_;
  std::vector<std::string> names_;
  int prefix_count_;

  bool group_active_ = false;
  bool input_eof_ = false;
  std::vector<Value> current_prefix_;
  std::unordered_map<uint64_t, std::vector<GroupEntry>> rest_groups_;
  std::vector<uint64_t> rest_insertion_order_;
  int64_t peak_group_count_ = 0;
  DataChunk in_;  ///< reused input buffer (no per-batch reallocation)
};

}  // namespace indbml::exec

#endif  // INDBML_EXEC_AGGREGATE_H_
