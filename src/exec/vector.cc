#include "exec/vector.h"

#include <algorithm>
#include <cstring>

#include "common/metrics.h"

namespace indbml::exec {

namespace {

metrics::Counter* FlattenCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Global().counter("vector.flattens");
  return counter;
}

metrics::Counter* FlattenRowsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Global().counter("vector.flatten_rows");
  return counter;
}

metrics::Counter* CowCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Global().counter("vector.cow_copies");
  return counter;
}

/// Copies `n` logical rows of (`base`, `sel`) into contiguous `dst`.
template <typename T>
void GatherRows(const T* base, const SelectionVector* sel, int64_t n, T* dst) {
  if (sel == nullptr) {
    std::memcpy(dst, base, static_cast<size_t>(n) * sizeof(T));
    return;
  }
  const int32_t* idx = sel->data();
  for (int64_t i = 0; i < n; ++i) dst[i] = base[idx[i]];
}

}  // namespace

void Vector::EnsureWritable(int64_t min_rows) {
  const int64_t elem = ElemSize();
  const bool writable = buffer_ != nullptr && buffer_.use_count() == 1 &&
                        offset_ == 0 && sel_ == nullptr;
  if (writable && buffer_->capacity() >= min_rows * elem) return;
  if (buffer_ == nullptr && min_rows == 0) return;
  if (buffer_ != nullptr && !writable) CowCounter()->Increment();

  // Geometric growth so repeated Append stays amortised O(1).
  int64_t new_rows = std::max<int64_t>(
      min_rows, std::max<int64_t>(size_ * 2, int64_t{16}));
  BufferPtr fresh = Buffer::New(new_rows * elem);
  if (size_ > 0) {
    switch (type_) {
      case DataType::kBool:
        GatherRows(BaseBools(), sel_.get(), size_, fresh->data());
        break;
      case DataType::kInt64:
        GatherRows(BaseInts(), sel_.get(), size_,
                   reinterpret_cast<int64_t*>(fresh->data()));
        break;
      case DataType::kFloat:
        GatherRows(BaseFloats(), sel_.get(), size_,
                   reinterpret_cast<float*>(fresh->data()));
        break;
    }
  }
  buffer_ = std::move(fresh);
  offset_ = 0;
  sel_.reset();
  base_rows_ = size_;
}

void Vector::Flatten() {
  if (sel_ == nullptr) return;
  FlattenCounter()->Increment();
  FlattenRowsCounter()->Increment(size_);
  EnsureWritable(size_);
}

}  // namespace indbml::exec
