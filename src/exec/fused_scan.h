#ifndef INDBML_EXEC_FUSED_SCAN_H_
#define INDBML_EXEC_FUSED_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/scan.h"

namespace indbml::exec {

/// \brief Scan + filter + project collapsed into one operator
/// (Options::fused_pipeline; planner-selected for
/// [Project(column refs)] [Filter]* Scan chains, see sql/physical_planner).
///
/// A morsel goes from the table's column buffers to an output chunk in one
/// pass: the window's survivor set is computed as a byte mask — pushed
/// predicates via the vectorized compare-against-constant kernels, residual
/// filter conditions via one expression evaluation over the flat window —
/// and the mask becomes a single selection vector over direct views of
/// table storage. No intermediate chunks, no per-operator selection
/// composition, no flatten copies between the operators it replaces.
///
/// Semantics are bit-identical to the unfused chain: pushed predicates use
/// the scan's double-comparison rule (float columns via exact predicate
/// normalization to a float bound, int64/bool columns via the same scalar
/// double compare), residual conditions use the expression evaluator
/// itself. Residual conditions are evaluated on all window rows (survivors
/// of the mask AND are unchanged because conditions are row-local); the
/// planner only fuses conditions that cannot fail per-row (no div/mod).
class FusedTableScanOperator final : public Operator {
 public:
  /// Tag type selecting the morsel-bound constructor.
  struct MorselBound {};

  /// `columns`: table column indexes scanned (the fused chain's working
  /// set, in the scan node's output order). `residual_conditions`:
  /// bool-typed expressions over scan output *positions*. `projection`:
  /// scan output positions to emit, with `names` labeling them.
  FusedTableScanOperator(storage::TablePtr table, storage::PartitionRange range,
                         std::vector<int> columns,
                         std::vector<ScanPredicate> predicates,
                         std::vector<ExprPtr> residual_conditions,
                         std::vector<int> projection,
                         std::vector<std::string> names);

  FusedTableScanOperator(MorselBound, storage::TablePtr table,
                         std::vector<int> columns,
                         std::vector<ScanPredicate> predicates,
                         std::vector<ExprPtr> residual_conditions,
                         std::vector<int> projection,
                         std::vector<std::string> names);

  const std::vector<DataType>& output_types() const override { return types_; }
  const std::vector<std::string>& output_names() const override {
    return names_;
  }

  Status Open(ExecContext* ctx) override;
  Status Next(ExecContext* ctx, DataChunk* out, bool* eof) override;
  Status Rewind(ExecContext* ctx) override;
  bool MorselDriven() const override { return morsel_bound_; }

  const ScanStats& stats() const { return stats_; }

 private:
  bool CanPruneBlock(int64_t block_index) const;
  /// ANDs predicate `p` over window rows [begin, begin + rows) into mask_.
  void ApplyPredicate(const ScanPredicate& p, int64_t begin, int64_t rows);
  /// ANDs all residual conditions over the window into mask_.
  Status ApplyResiduals(int64_t begin, int64_t rows);

  storage::TablePtr table_;
  storage::PartitionRange range_;
  std::vector<int> columns_;
  std::vector<ScanPredicate> predicates_;
  std::vector<ExprPtr> residual_conditions_;
  std::vector<int> projection_;
  std::vector<DataType> types_;        // projected output types
  std::vector<std::string> names_;     // projected output names
  std::vector<DataType> scan_types_;   // all scanned columns' types
  bool morsel_bound_ = false;
  int64_t cursor_ = 0;
  ScanStats stats_;
  // Per-window scratch, reused across Next calls.
  std::vector<uint8_t> mask_;
  std::vector<int32_t> passing_;
  DataChunk window_;
  Vector cond_{DataType::kBool};
};

}  // namespace indbml::exec

#endif  // INDBML_EXEC_FUSED_SCAN_H_
