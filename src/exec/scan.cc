#include "exec/scan.h"

#include <algorithm>

namespace indbml::exec {

namespace {

/// Evaluates `lhs op rhs` over doubles (types are homogeneous per column, so
/// numeric comparison is exact for the int ranges the workloads use).
bool CompareDoubles(double lhs, BinaryOp op, double rhs) {
  switch (op) {
    case BinaryOp::kEq:
      return lhs == rhs;
    case BinaryOp::kNe:
      return lhs != rhs;
    case BinaryOp::kLt:
      return lhs < rhs;
    case BinaryOp::kLe:
      return lhs <= rhs;
    case BinaryOp::kGt:
      return lhs > rhs;
    case BinaryOp::kGe:
      return lhs >= rhs;
    default:
      return true;
  }
}

}  // namespace

TableScanOperator::TableScanOperator(storage::TablePtr table,
                                     storage::PartitionRange range,
                                     std::vector<int> columns,
                                     std::vector<ScanPredicate> predicates,
                                     bool zero_copy)
    : table_(std::move(table)),
      range_(range),
      columns_(std::move(columns)),
      predicates_(std::move(predicates)),
      zero_copy_(zero_copy) {
  for (int c : columns_) {
    types_.push_back(table_->fields()[static_cast<size_t>(c)].type);
    names_.push_back(table_->fields()[static_cast<size_t>(c)].name);
  }
}

TableScanOperator::TableScanOperator(MorselBound, storage::TablePtr table,
                                     std::vector<int> columns,
                                     std::vector<ScanPredicate> predicates,
                                     bool zero_copy)
    : TableScanOperator(std::move(table), storage::PartitionRange{0, 0},
                        std::move(columns), std::move(predicates), zero_copy) {
  morsel_bound_ = true;
}

Status TableScanOperator::Open(ExecContext*) {
  if (!table_->finalized()) {
    return Status::Internal("scanning a non-finalized table: " + table_->name());
  }
  if (morsel_bound_) range_ = {0, 0};
  cursor_ = range_.begin;
  stats_ = {};  // stats accumulate across Rewinds, reset only here
  return Status::OK();
}

Status TableScanOperator::Rewind(ExecContext* ctx) {
  if (morsel_bound_) {
    range_ = {ctx->morsel_begin, ctx->morsel_end};
  }
  cursor_ = range_.begin;
  return Status::OK();
}

bool TableScanOperator::CanPruneBlock(int64_t block_index) const {
  for (const ScanPredicate& p : predicates_) {
    const auto& stats = table_->block_stats(p.column);
    const storage::BlockStats& bs = stats[static_cast<size_t>(block_index)];
    double lo = bs.min.AsDouble();
    double hi = bs.max.AsDouble();
    double v = p.value.AsDouble();
    bool may_match = true;
    switch (p.op) {
      case BinaryOp::kEq:
        may_match = lo <= v && v <= hi;
        break;
      case BinaryOp::kLt:
        may_match = lo < v;
        break;
      case BinaryOp::kLe:
        may_match = lo <= v;
        break;
      case BinaryOp::kGt:
        may_match = hi > v;
        break;
      case BinaryOp::kGe:
        may_match = hi >= v;
        break;
      case BinaryOp::kNe:
        may_match = !(lo == v && hi == v);
        break;
      default:
        may_match = true;
        break;
    }
    if (!may_match) return true;
  }
  return false;
}

bool TableScanOperator::RowPasses(int64_t r) const {
  for (const ScanPredicate& p : predicates_) {
    const storage::Column& col = table_->column(p.column);
    double v;
    switch (col.type()) {
      case DataType::kInt64:
        v = static_cast<double>(col.GetInt64(r));
        break;
      case DataType::kFloat:
        v = col.GetFloat(r);
        break;
      default:
        v = col.GetBool(r) ? 1 : 0;
        break;
    }
    if (!CompareDoubles(v, p.op, p.value.AsDouble())) return false;
  }
  return true;
}

Status TableScanOperator::Next(ExecContext*, DataChunk* out, bool* eof) {
  if (!zero_copy_) return NextMaterialized(out, eof);
  const int64_t rows_per_block = table_->rows_per_block();
  while (cursor_ < range_.end) {
    // Block pruning (unchanged from the materialising path): at a block
    // boundary, consult the zone maps before touching rows.
    if (!predicates_.empty()) {
      int64_t block = cursor_ / rows_per_block;
      int64_t block_end = std::min((block + 1) * rows_per_block, range_.end);
      if (cursor_ % rows_per_block == 0 && block_end <= range_.end) {
        ++stats_.blocks_total;
        if (CanPruneBlock(block)) {
          ++stats_.blocks_pruned;
          cursor_ = block_end;
          continue;
        }
      }
    }

    // One contiguous window per Next: up to kDefaultVectorSize base rows,
    // clipped to the block when predicates are present so pruning decisions
    // stay per-block.
    int64_t window_end = std::min(cursor_ + kDefaultVectorSize, range_.end);
    if (!predicates_.empty()) {
      window_end = std::min(window_end,
                            ((cursor_ / rows_per_block) + 1) * rows_per_block);
    }
    const int64_t window_rows = window_end - cursor_;

    SelectionPtr sel;
    if (!predicates_.empty()) {
      std::vector<int32_t> passing;
      for (int64_t r = cursor_; r < window_end; ++r) {
        if (RowPasses(r)) passing.push_back(static_cast<int32_t>(r - cursor_));
      }
      if (passing.empty()) {
        cursor_ = window_end;
        continue;  // nothing survived this window; keep scanning
      }
      sel = std::make_shared<const SelectionVector>(std::move(passing));
    }

    // Emit views over the table's column buffers — no row data is copied.
    for (size_t ci = 0; ci < columns_.size(); ++ci) {
      const storage::Column& col = table_->column(columns_[ci]);
      Vector view = Vector::View(col.type(), col.buffer(), cursor_, window_rows);
      out->column(static_cast<int64_t>(ci)) =
          sel != nullptr ? view.WithSelection(sel) : std::move(view);
    }
    out->size = sel != nullptr ? sel->size() : window_rows;
    cursor_ = window_end;
    stats_.rows_emitted += out->size;
    *eof = cursor_ >= range_.end;
    return Status::OK();
  }
  *eof = true;
  return Status::OK();
}

Status TableScanOperator::NextMaterialized(DataChunk* out, bool* eof) {
  const int64_t rows_per_block = table_->rows_per_block();
  while (cursor_ < range_.end) {
    // Block pruning: if the cursor is at a block boundary within the
    // partition, consult the zone maps before touching rows.
    if (!predicates_.empty()) {
      int64_t block = cursor_ / rows_per_block;
      int64_t block_end = std::min((block + 1) * rows_per_block, range_.end);
      if (cursor_ % rows_per_block == 0 && block_end <= range_.end) {
        ++stats_.blocks_total;
        if (CanPruneBlock(block)) {
          ++stats_.blocks_pruned;
          cursor_ = block_end;
          continue;
        }
      }
    }

    int64_t block_limit =
        std::min(((cursor_ / rows_per_block) + 1) * rows_per_block, range_.end);
    int64_t want = kDefaultVectorSize - out->size;
    int64_t scan_end = std::min(block_limit, cursor_ + want);

    for (int64_t r = cursor_; r < scan_end; ++r) {
      if (!predicates_.empty() && !RowPasses(r)) continue;
      for (size_t ci = 0; ci < columns_.size(); ++ci) {
        const storage::Column& col = table_->column(columns_[ci]);
        out->column(static_cast<int64_t>(ci)).Append(col.GetValue(r));
      }
      ++out->size;
    }
    cursor_ = scan_end;
    if (out->size >= kDefaultVectorSize) {
      stats_.rows_emitted += out->size;
      *eof = false;
      return Status::OK();
    }
  }
  stats_.rows_emitted += out->size;
  *eof = true;
  return Status::OK();
}

}  // namespace indbml::exec
