#include "exec/validate.h"

#include <cmath>

#include "common/metrics.h"
#include "common/string_util.h"

namespace indbml::exec {

namespace {

const char* TypeName(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat:
      return "float";
  }
  return "?";
}

metrics::Counter* ChunksChecked() {
  static metrics::Counter* counter =
      metrics::Registry::Global().counter("validate.chunks_checked");
  return counter;
}

metrics::Counter* Violations() {
  static metrics::Counter* counter =
      metrics::Registry::Global().counter("validate.violations");
  return counter;
}

}  // namespace

Status ValidateChunk(const DataChunk& chunk, const std::vector<DataType>& types,
                     const std::string& where,
                     const ChunkValidationOptions& options) {
  ChunksChecked()->Increment();
  auto fail = [&](std::string msg) {
    Violations()->Increment();
    return Status::Internal("chunk validation failed at " + where + ": " +
                            std::move(msg));
  };
  if (chunk.num_columns() != static_cast<int64_t>(types.size())) {
    return fail(StrFormat("%lld columns, schema has %lld",
                          static_cast<long long>(chunk.num_columns()),
                          static_cast<long long>(types.size())));
  }
  if (chunk.size < 0) {
    return fail(StrFormat("negative cardinality %lld",
                          static_cast<long long>(chunk.size)));
  }
  for (int64_t c = 0; c < chunk.num_columns(); ++c) {
    const Vector& v = chunk.column(c);
    if (v.type() != types[static_cast<size_t>(c)]) {
      return fail(StrFormat("column %lld is %s, schema says %s",
                            static_cast<long long>(c), TypeName(v.type()),
                            TypeName(types[static_cast<size_t>(c)])));
    }
    if (v.size() != chunk.size) {
      return fail(StrFormat(
          "column %lld length %lld != chunk cardinality %lld",
          static_cast<long long>(c), static_cast<long long>(v.size()),
          static_cast<long long>(chunk.size)));
    }
    if (v.has_selection()) {
      INDBML_RETURN_IF_ERROR(ValidateSelection(
          v.selection()->data(), v.size(), v.base_rows(),
          where + StrFormat(" column %lld", static_cast<long long>(c))));
    }
    if (v.type() == DataType::kFloat && !options.allow_non_finite) {
      // GetFloatAt applies the selection, so selected views validate
      // without being flattened first.
      for (int64_t r = 0; r < v.size(); ++r) {
        if (!std::isfinite(v.GetFloatAt(r))) {
          return fail(StrFormat("non-finite float at column %lld row %lld",
                                static_cast<long long>(c),
                                static_cast<long long>(r)));
        }
      }
    }
  }
  return Status::OK();
}

Status ValidateSelection(const int32_t* sel, int64_t n, int64_t input_size,
                         const std::string& where) {
  for (int64_t i = 0; i < n; ++i) {
    if (sel[i] < 0 || sel[i] >= input_size) {
      Violations()->Increment();
      return Status::Internal(StrFormat(
          "selection validation failed at %s: index %lld at position %lld "
          "outside input of %lld rows",
          where.c_str(), static_cast<long long>(sel[i]),
          static_cast<long long>(i), static_cast<long long>(input_size)));
    }
  }
  return Status::OK();
}

Status ValidatingOperator::Next(ExecContext* ctx, DataChunk* out, bool* eof) {
  INDBML_RETURN_IF_ERROR(inner_->Next(ctx, out, eof));
  if (out->size > 0) {
    ChunkValidationOptions options;
    options.allow_non_finite = allow_non_finite_;
    INDBML_RETURN_IF_ERROR(
        ValidateChunk(*out, inner_->output_types(), label_, options));
  }
  return Status::OK();
}

}  // namespace indbml::exec
