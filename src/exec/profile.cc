#include "exec/profile.h"

#include <chrono>

#include "common/logging.h"
#include "common/memory_tracker.h"
#include "common/string_util.h"

namespace indbml::exec {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FormatNanos(int64_t nanos) {
  return StrFormat("%.3fms", static_cast<double>(nanos) / 1e6);
}

}  // namespace

void OperatorStats::MergeFrom(const OperatorStats& other) {
  rows += other.rows;
  chunks += other.chunks;
  open_nanos += other.open_nanos;
  next_nanos += other.next_nanos;
  close_nanos += other.close_nanos;
  rewind_nanos += other.rewind_nanos;
  for (const auto& [name, nanos] : other.phase_nanos) phase_nanos[name] += nanos;
}

int QueryProfile::RegisterNode(std::string label, int depth) {
  INDBML_CHECK(num_workers_ == 0) << "RegisterNode after SetNumWorkers";
  nodes_.push_back(Node{std::move(label), depth});
  return static_cast<int>(nodes_.size()) - 1;
}

void QueryProfile::SetNumWorkers(int n) {
  INDBML_CHECK(n > 0);
  num_workers_ = n;
  slots_.assign(nodes_.size() * static_cast<size_t>(n), OperatorStats());
}

OperatorStats QueryProfile::Aggregate(int node) const {
  OperatorStats total;
  for (int p = 0; p < num_workers_; ++p) {
    total.MergeFrom(
        slots_[static_cast<size_t>(node) * static_cast<size_t>(num_workers_) +
               static_cast<size_t>(p)]);
  }
  return total;
}

std::string QueryProfile::ToString() const {
  std::string out =
      StrFormat("EXPLAIN ANALYZE  workers=%d  wall=%s", num_workers_,
                FormatNanos(wall_nanos_).c_str());
  if (peak_memory_bytes_ >= 0) {
    out += "  peak_memory=" + FormatBytes(peak_memory_bytes_);
  }
  out += "\n";
  for (int node = 0; node < num_nodes(); ++node) {
    OperatorStats stats = Aggregate(node);
    out += std::string(static_cast<size_t>(nodes_[static_cast<size_t>(node)].depth) * 2,
                       ' ');
    out += nodes_[static_cast<size_t>(node)].label;
    out += StrFormat("  rows=%lld chunks=%lld open=%s next=%s close=%s",
                     static_cast<long long>(stats.rows),
                     static_cast<long long>(stats.chunks),
                     FormatNanos(stats.open_nanos).c_str(),
                     FormatNanos(stats.next_nanos).c_str(),
                     FormatNanos(stats.close_nanos).c_str());
    if (stats.rewind_nanos > 0) {
      out += " rewind=" + FormatNanos(stats.rewind_nanos);
    }
    if (!stats.phase_nanos.empty()) {
      out += " [";
      bool first = true;
      for (const auto& [name, nanos] : stats.phase_nanos) {
        if (!first) out += " ";
        first = false;
        out += name + "=" + FormatNanos(nanos);
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

Status ProfiledOperator::Open(ExecContext* ctx) {
  OperatorStats* stats = profile_->slot(node_id_, ctx->worker_id);
  OperatorStats* saved = ctx->active_stats;
  ctx->active_stats = stats;
  int64_t start = NowNanos();
  Status status = inner_->Open(ctx);
  stats->open_nanos += NowNanos() - start;
  ctx->active_stats = saved;
  return status;
}

Status ProfiledOperator::Rewind(ExecContext* ctx) {
  OperatorStats* stats = profile_->slot(node_id_, ctx->worker_id);
  OperatorStats* saved = ctx->active_stats;
  ctx->active_stats = stats;
  int64_t start = NowNanos();
  Status status = inner_->Rewind(ctx);
  stats->rewind_nanos += NowNanos() - start;
  ctx->active_stats = saved;
  return status;
}

Status ProfiledOperator::Next(ExecContext* ctx, DataChunk* out, bool* eof) {
  OperatorStats* stats = profile_->slot(node_id_, ctx->worker_id);
  OperatorStats* saved = ctx->active_stats;
  ctx->active_stats = stats;
  int64_t start = NowNanos();
  Status status = inner_->Next(ctx, out, eof);
  stats->next_nanos += NowNanos() - start;
  ctx->active_stats = saved;
  if (status.ok() && out->size > 0) {
    stats->rows += out->size;
    ++stats->chunks;
  }
  return status;
}

void ProfiledOperator::Close(ExecContext* ctx) {
  OperatorStats* stats = profile_->slot(node_id_, ctx->worker_id);
  OperatorStats* saved = ctx->active_stats;
  ctx->active_stats = stats;
  int64_t start = NowNanos();
  inner_->Close(ctx);
  stats->close_nanos += NowNanos() - start;
  ctx->active_stats = saved;
}

}  // namespace indbml::exec
