#include "exec/basic_operators.h"

#include <algorithm>
#include <utility>

#include "common/config.h"

namespace indbml::exec {

FilterOperator::FilterOperator(OperatorPtr child, ExprPtr condition)
    : child_(std::move(child)), condition_(std::move(condition)) {}

Status FilterOperator::Next(ExecContext* ctx, DataChunk* out, bool* eof) {
  *eof = false;
  while (out->size == 0) {
    in_.Reset(child_->output_types());
    bool child_eof = false;
    INDBML_RETURN_NOT_OK(child_->Next(ctx, &in_, &child_eof));
    if (in_.size > 0) {
      Vector mask(DataType::kBool);
      INDBML_RETURN_NOT_OK(EvaluateExpr(*condition_, in_, &mask));
      // A bare column-ref condition yields a view that may carry the
      // input's selection; flatten so the mask scan is one linear pass.
      mask.Flatten();
      const uint8_t* m = std::as_const(mask).bools();
      std::vector<int32_t> passing;
      passing.reserve(static_cast<size_t>(in_.size));
      AppendMaskIndices(m, in_.size, 0, &passing);
      // Survivors become a selection over the input's views — no row data
      // moves; WithSelection composes with any selection already present.
      if (!passing.empty()) {
        auto sel = std::make_shared<const SelectionVector>(std::move(passing));
        for (int64_t c = 0; c < in_.num_columns(); ++c) {
          out->column(c) = in_.column(c).WithSelection(sel);
        }
        out->size = sel->size();
      }
    }
    if (child_eof) {
      *eof = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

ProjectOperator::ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                                 std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)), names_(std::move(names)) {
  for (const auto& e : exprs_) types_.push_back(e->type);
}

Status ProjectOperator::Next(ExecContext* ctx, DataChunk* out, bool* eof) {
  in_.Reset(child_->output_types());
  INDBML_RETURN_NOT_OK(child_->Next(ctx, &in_, eof));
  if (in_.size == 0) return Status::OK();
  for (size_t i = 0; i < exprs_.size(); ++i) {
    INDBML_RETURN_NOT_OK(
        EvaluateExpr(*exprs_[i], in_, &out->column(static_cast<int64_t>(i))));
  }
  out->size = in_.size;
  return Status::OK();
}

Status LimitOperator::Next(ExecContext* ctx, DataChunk* out, bool* eof) {
  if (remaining_ <= 0) {
    *eof = true;
    return Status::OK();
  }
  INDBML_RETURN_NOT_OK(child_->Next(ctx, out, eof));
  if (out->size > remaining_) {
    out->SetCardinality(remaining_);
  }
  remaining_ -= out->size;
  if (remaining_ <= 0) *eof = true;
  return Status::OK();
}

SortOperator::SortOperator(OperatorPtr child, std::vector<ExprPtr> keys,
                           std::vector<bool> ascending)
    : child_(std::move(child)), keys_(std::move(keys)), ascending_(std::move(ascending)) {}

Status SortOperator::Open(ExecContext* ctx) {
  sorted_ = false;
  return child_->Open(ctx);
}

Status SortOperator::Rewind(ExecContext* ctx) {
  materialized_ = QueryResult();
  order_.clear();
  cursor_ = 0;
  sorted_ = false;
  return child_->Rewind(ctx);
}

Status SortOperator::Materialize(ExecContext* ctx) {
  materialized_ = QueryResult();
  materialized_.names = child_->output_names();
  materialized_.types = child_->output_types();
  INDBML_RETURN_NOT_OK(DrainAppend(child_.get(), ctx, &materialized_));
  // Evaluate the sort keys per chunk, then sort a (chunk,row) index vector.
  std::vector<std::vector<Vector>> key_cols;  // [chunk][key]
  key_cols.reserve(materialized_.chunks.size());
  for (const DataChunk& chunk : materialized_.chunks) {
    std::vector<Vector> keys;
    keys.reserve(keys_.size());
    for (const auto& k : keys_) {
      Vector v(k->type);
      INDBML_RETURN_NOT_OK(EvaluateExpr(*k, chunk, &v));
      keys.push_back(std::move(v));
    }
    key_cols.push_back(std::move(keys));
  }
  order_.clear();
  order_.reserve(static_cast<size_t>(materialized_.num_rows));
  for (size_t c = 0; c < materialized_.chunks.size(); ++c) {
    for (int64_t r = 0; r < materialized_.chunks[c].size; ++r) {
      order_.emplace_back(static_cast<int64_t>(c), r);
    }
  }
  std::stable_sort(order_.begin(), order_.end(),
                   [&](const auto& a, const auto& b) {
                     for (size_t k = 0; k < keys_.size(); ++k) {
                       double va = key_cols[static_cast<size_t>(a.first)][k]
                                       .GetValue(a.second)
                                       .AsDouble();
                       double vb = key_cols[static_cast<size_t>(b.first)][k]
                                       .GetValue(b.second)
                                       .AsDouble();
                       if (va == vb) continue;
                       bool lt = va < vb;
                       return ascending_[k] ? lt : !lt;
                     }
                     return false;
                   });
  cursor_ = 0;
  sorted_ = true;
  return Status::OK();
}

Status SortOperator::Next(ExecContext* ctx, DataChunk* out, bool* eof) {
  if (!sorted_) INDBML_RETURN_NOT_OK(Materialize(ctx));
  while (cursor_ < order_.size() && out->size < kDefaultVectorSize) {
    auto [c, r] = order_[cursor_++];
    AppendRowTo(materialized_.chunks[static_cast<size_t>(c)], r, out);
  }
  *eof = cursor_ >= order_.size();
  return Status::OK();
}

}  // namespace indbml::exec
