#include "exec/gather.h"

#include <cstring>

#include "common/simd.h"

namespace indbml::exec {

namespace {

using simd::F32x8;

template <typename T>
void GatherAsFloat(const T* base, const SelectionVector* sel, int64_t n,
                   float* dst) {
  if (sel == nullptr) {
    for (int64_t i = 0; i < n; ++i) dst[i] = static_cast<float>(base[i]);
    return;
  }
  const int32_t* idx = sel->data();
  for (int64_t i = 0; i < n; ++i) dst[i] = static_cast<float>(base[idx[i]]);
}

// Float + selection is the hot shape (a filtered chunk feeding inference):
// 8-lane indexed gather, pure loads, so the SIMD and scalar paths are
// trivially bit-identical. Bool/int64 sources convert per lane (AVX2 has no
// int64->float conversion) and stay in the scalar template above.
void GatherFloatSelected(const float* base, const int32_t* idx, int64_t n,
                         float* dst) {
  int64_t i = 0;
  if (simd::UseSimd()) {
    for (; i + simd::kWidth <= n; i += simd::kWidth) {
      F32x8::Gather(base, idx + i).Store(dst + i);
    }
  }
  for (; i < n; ++i) dst[i] = base[idx[i]];
}

template <typename T>
void GatherAsFloatStrided(const T* base, const SelectionVector* sel, int64_t n,
                          float* dst, int64_t stride) {
  if (sel == nullptr) {
    for (int64_t i = 0; i < n; ++i) dst[i * stride] = static_cast<float>(base[i]);
    return;
  }
  const int32_t* idx = sel->data();
  for (int64_t i = 0; i < n; ++i) {
    dst[i * stride] = static_cast<float>(base[idx[i]]);
  }
}

// Strided float + selection: vector gather on the load side, lane stores on
// the scatter side (there is no strided store in AVX2/NEON).
void GatherFloatSelectedStrided(const float* base, const int32_t* idx,
                                int64_t n, float* dst, int64_t stride) {
  int64_t i = 0;
  if (simd::UseSimd()) {
    float lanes[simd::kWidth];
    for (; i + simd::kWidth <= n; i += simd::kWidth) {
      F32x8::Gather(base, idx + i).Store(lanes);
      for (int64_t l = 0; l < simd::kWidth; ++l) {
        dst[(i + l) * stride] = lanes[l];
      }
    }
  }
  for (; i < n; ++i) dst[i * stride] = base[idx[i]];
}

}  // namespace

void GatherToFloat(const Vector& v, float* dst) {
  const int64_t n = v.size();
  const SelectionVector* sel = v.selection();
  switch (v.type()) {
    case DataType::kBool:
      GatherAsFloat(v.BaseBools(), sel, n, dst);
      return;
    case DataType::kInt64:
      GatherAsFloat(v.BaseInts(), sel, n, dst);
      return;
    case DataType::kFloat:
      if (sel == nullptr) {
        std::memcpy(dst, v.BaseFloats(), static_cast<size_t>(n) * sizeof(float));
      } else {
        GatherFloatSelected(v.BaseFloats(), sel->data(), n, dst);
      }
      return;
  }
}

void GatherToFloatStrided(const Vector& v, float* dst, int64_t stride) {
  const int64_t n = v.size();
  const SelectionVector* sel = v.selection();
  switch (v.type()) {
    case DataType::kBool:
      GatherAsFloatStrided(v.BaseBools(), sel, n, dst, stride);
      return;
    case DataType::kInt64:
      GatherAsFloatStrided(v.BaseInts(), sel, n, dst, stride);
      return;
    case DataType::kFloat:
      if (sel == nullptr) {
        GatherAsFloatStrided(v.BaseFloats(), nullptr, n, dst, stride);
      } else {
        GatherFloatSelectedStrided(v.BaseFloats(), sel->data(), n, dst, stride);
      }
      return;
  }
}

}  // namespace indbml::exec
