#include "exec/gather.h"

#include <cstring>

namespace indbml::exec {

namespace {

template <typename T>
void GatherAsFloat(const T* base, const SelectionVector* sel, int64_t n,
                   float* dst) {
  if (sel == nullptr) {
    for (int64_t i = 0; i < n; ++i) dst[i] = static_cast<float>(base[i]);
    return;
  }
  const int32_t* idx = sel->data();
  for (int64_t i = 0; i < n; ++i) dst[i] = static_cast<float>(base[idx[i]]);
}

template <typename T>
void GatherAsFloatStrided(const T* base, const SelectionVector* sel, int64_t n,
                          float* dst, int64_t stride) {
  if (sel == nullptr) {
    for (int64_t i = 0; i < n; ++i) dst[i * stride] = static_cast<float>(base[i]);
    return;
  }
  const int32_t* idx = sel->data();
  for (int64_t i = 0; i < n; ++i) {
    dst[i * stride] = static_cast<float>(base[idx[i]]);
  }
}

}  // namespace

void GatherToFloat(const Vector& v, float* dst) {
  const int64_t n = v.size();
  const SelectionVector* sel = v.selection();
  switch (v.type()) {
    case DataType::kBool:
      GatherAsFloat(v.BaseBools(), sel, n, dst);
      return;
    case DataType::kInt64:
      GatherAsFloat(v.BaseInts(), sel, n, dst);
      return;
    case DataType::kFloat:
      if (sel == nullptr) {
        std::memcpy(dst, v.BaseFloats(), static_cast<size_t>(n) * sizeof(float));
      } else {
        GatherAsFloat(v.BaseFloats(), sel, n, dst);
      }
      return;
  }
}

void GatherToFloatStrided(const Vector& v, float* dst, int64_t stride) {
  const int64_t n = v.size();
  const SelectionVector* sel = v.selection();
  switch (v.type()) {
    case DataType::kBool:
      GatherAsFloatStrided(v.BaseBools(), sel, n, dst, stride);
      return;
    case DataType::kInt64:
      GatherAsFloatStrided(v.BaseInts(), sel, n, dst, stride);
      return;
    case DataType::kFloat:
      GatherAsFloatStrided(v.BaseFloats(), sel, n, dst, stride);
      return;
  }
}

}  // namespace indbml::exec
